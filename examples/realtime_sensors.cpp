// An embedded real-time application shape (the paper's §I contrast with
// "heavyweight parallelism"): two periodic sensor tasks on separate cores
// sample at different rates and stream readings to a fusion core, which
// services whichever channel fires first with the event-driven SEL2
// instruction and timestamps every reading against its deadline.
//
// Time-determinism makes the deadline check meaningful: arrival jitter
// comes only from network contention, which this placement avoids.
//
//   $ ./realtime_sensors
#include <cstdio>

#include "arch/assembler.h"
#include "board/system.h"
#include "common/strings.h"
#include "sim/simulator.h"

int main() {
  using namespace swallow;

  Simulator sim;
  SystemConfig cfg;
  SwallowSystem sys(sim, cfg);

  Core& fast_sensor = sys.core(0, 0, Layer::kVertical);   // 100 us period
  Core& slow_sensor = sys.core(1, 0, Layer::kVertical);   // 250 us period
  Core& fusion = sys.core(0, 0, Layer::kHorizontal);

  // Sensors: every period, "sample" (synthesise a ramp) and send one word.
  auto sensor_src = [&](int period_ticks, int samples, int chanend_idx,
                        int base) {
    return strprintf(R"(
        getr  r0, 2
        ldc   r1, 0x%x
        ldch  r1, 0x%02x02
        setd  r0, r1
        ldc   r5, %d       # reading ramp
        gettime r9
        ldc   r2, %d       # samples
    loop:
        ldc   r3, %d
        add   r9, r9, r3
        timewait r9        # exact period, no drift
        out   r0, r5
        outct r0, 1
        addi  r5, r5, 1
        subi  r2, r2, 1
        bt    r2, loop
        texit
    )", static_cast<unsigned>(fusion.node_id()), chanend_idx, base, samples,
        period_ticks);
  };
  const int fast_n = 50, slow_n = 20;
  fast_sensor.load(assemble(sensor_src(10'000, fast_n, 0, 1000)));
  slow_sensor.load(assemble(sensor_src(25'000, slow_n, 1, 2000)));

  // Fusion: SEL2 on both inputs; accumulate both streams and track the
  // worst observed gap between consecutive fast-sensor readings.
  const std::string fusion_src = strprintf(R"(
      getr  r0, 2          # fast sensor -> chanend 0
      getr  r1, 2          # slow sensor -> chanend 1
      ldc   r4, %d         # total readings expected
      ldc   r5, 0          # checksum
      ldc   r8, 0          # worst fast-sensor gap (ticks)
      ldc   r9, 0          # previous fast timestamp (0 = none yet)
  loop:
      sel2  r2, r0, r1     # block until either sensor fires
      in    r3, r2
      chkct r2, 1
      add   r5, r5, r3
      eq    r6, r2, r0     # was it the fast sensor?
      bf    r6, not_fast
      gettime r7
      bf    r9, first
      sub   r6, r7, r9
      lss   r10, r8, r6
      bf    r10, keep
      or    r8, r6, r6     # new worst gap
  keep:
  first:
      or    r9, r7, r7
  not_fast:
      subi  r4, r4, 1
      bt    r4, loop
      printi r5
      ldc   r6, 44
      printc r6
      printi r8
      texit
  )", fast_n + slow_n);
  fusion.load(assemble(fusion_src));

  for (Core* c : {&fast_sensor, &slow_sensor, &fusion}) c->start();
  sim.run_until(milliseconds(20.0));

  for (Core* c : {&fast_sensor, &slow_sensor, &fusion}) {
    if (c->trapped()) {
      std::fprintf(stderr, "trap: %s\n", c->trap().message.c_str());
      return 1;
    }
  }
  // Host reference for the checksum.
  std::uint32_t expected = 0;
  for (int i = 0; i < fast_n; ++i) expected += 1000u + static_cast<std::uint32_t>(i);
  for (int i = 0; i < slow_n; ++i) expected += 2000u + static_cast<std::uint32_t>(i);

  const std::string console = fusion.console();
  std::printf("fusion console (checksum, worst fast-sensor gap in 10 ns "
              "ticks): %s\n", console.c_str());
  std::printf("expected checksum: %u; fast-sensor period: 10000 ticks\n",
              expected);

  const auto comma = console.find(',');
  const bool checksum_ok =
      comma != std::string::npos &&
      console.substr(0, comma) == std::to_string(expected);
  const long gap = comma != std::string::npos
                       ? std::stol(console.substr(comma + 1))
                       : -1;
  // The worst inter-arrival gap stays within 2 % of the period: periodic
  // deadlines hold on the time-deterministic platform.
  const bool deadline_ok = gap > 9'800 && gap < 10'200;
  std::printf("checksum %s, worst gap %ld ticks (%s)\n",
              checksum_ok ? "OK" : "BAD", gap,
              deadline_ok ? "within 2% of period" : "DEADLINE JITTER");
  return checksum_ok && deadline_ok && fusion.finished() ? 0 : 1;
}
