// A signal-processing pipeline in the paper's embedded application domain:
// source -> FIR -> FIR -> sink across four cores of a slice, written in
// Swallow assembly using the multiply-accumulate DSP instructions.  The
// sink's checksum is verified against a host-side reference computation,
// and the run's time/energy are reported.
//
//   $ ./dsp_pipeline
#include <cstdint>
#include <cstdio>
#include <vector>

#include "arch/assembler.h"
#include "board/system.h"
#include "common/strings.h"
#include "sim/simulator.h"

namespace {

using namespace swallow;

constexpr int kSamples = 256;
constexpr std::uint32_t kCoefs[4] = {3, 5, 7, 2};

/// Host reference: the exact fixed-point arithmetic the stages perform.
std::uint32_t reference_checksum() {
  auto fir = [](const std::vector<std::uint32_t>& in) {
    std::vector<std::uint32_t> out;
    std::uint32_t d1 = 0, d2 = 0, d3 = 0;
    for (std::uint32_t x : in) {
      std::uint32_t acc = kCoefs[0] * x + kCoefs[1] * d1 + kCoefs[2] * d2 +
                          kCoefs[3] * d3;
      out.push_back(static_cast<std::uint32_t>(
          static_cast<std::int32_t>(acc) >> 4));
      d3 = d2;
      d2 = d1;
      d1 = x;
    }
    return out;
  };
  std::vector<std::uint32_t> samples;
  std::uint32_t x = 11;
  for (int i = 0; i < kSamples; ++i) {
    samples.push_back(x);
    x = (x + 37) & 0xFFFF;
  }
  std::uint32_t sum = 0;
  for (std::uint32_t y : fir(fir(samples))) sum += y;
  return sum;
}

std::string source_program(NodeId next) {
  return strprintf(R"(
      getr  r1, 2
      ldc   r0, 0x%x
      ldch  r0, 2
      setd  r1, r0
      ldc   r2, %d
      ldc   r3, 11
      ldc   r5, 0xffff
  gen:
      out   r1, r3
      outct r1, 1
      ldc   r4, 37
      add   r3, r3, r4
      and   r3, r3, r5
      subi  r2, r2, 1
      bt    r2, gen
      texit
  )", static_cast<unsigned>(next), kSamples);
}

std::string fir_program(NodeId next) {
  return strprintf(R"(
      getr  r0, 2            # input  (chanend 0)
      getr  r1, 2            # output (chanend 1)
      ldc   r9, 0x%x
      ldch  r9, 2
      setd  r1, r9
      ldc   r2, %d
      ldc   r9, coefs
      ldc   r5, 0            # delay line x[n-1]
      ldc   r6, 0            # x[n-2]
      ldc   r7, 0            # x[n-3]
  stage:
      in    r3, r0
      chkct r0, 1
      ldc   r4, 0
      ldw   r10, r9, 0
      macc  r4, r10, r3
      ldw   r10, r9, 1
      macc  r4, r10, r5
      ldw   r10, r9, 2
      macc  r4, r10, r6
      ldw   r10, r9, 3
      macc  r4, r10, r7
      ashri r4, r4, 4        # fixed-point scale
      or    r7, r6, r6
      or    r6, r5, r5
      or    r5, r3, r3
      out   r1, r4
      outct r1, 1
      subi  r2, r2, 1
      bt    r2, stage
      texit
  coefs: .word 3, 5, 7, 2
  )", static_cast<unsigned>(next), kSamples);
}

std::string sink_program() {
  return strprintf(R"(
      getr  r0, 2
      ldc   r2, %d
      ldc   r5, 0
  drain:
      in    r3, r0
      chkct r0, 1
      add   r5, r5, r3
      subi  r2, r2, 1
      bt    r2, drain
      printi r5
      texit
  )", kSamples);
}

}  // namespace

int main() {
  Simulator sim;
  SystemConfig cfg;
  SwallowSystem sys(sim, cfg);

  // Four neighbouring cores along the first chip row.
  Core& source = sys.core(0, 0, Layer::kVertical);
  Core& fir1 = sys.core(0, 0, Layer::kHorizontal);
  Core& fir2 = sys.core(1, 0, Layer::kVertical);
  Core& sink = sys.core(1, 0, Layer::kHorizontal);

  source.load(assemble(source_program(fir1.node_id())));
  fir1.load(assemble(fir_program(fir2.node_id())));
  fir2.load(assemble(fir_program(sink.node_id())));
  sink.load(assemble(sink_program()));
  for (Core* c : {&source, &fir1, &fir2, &sink}) c->start();

  // Step until the whole pipeline drains (or a 50 ms safety limit).
  TimePs t = 0;
  auto all_done = [&] {
    for (Core* c : {&source, &fir1, &fir2, &sink}) {
      if (!c->finished()) return false;
    }
    return true;
  };
  while (t < milliseconds(50.0) && !all_done()) {
    t += microseconds(10.0);
    sim.run_until(t);
  }
  sys.settle_energy();

  for (Core* c : {&source, &fir1, &fir2, &sink}) {
    if (c->trapped()) {
      std::fprintf(stderr, "core trapped: %s\n", c->trap().message.c_str());
      return 1;
    }
  }
  const std::uint32_t expected = reference_checksum();
  std::printf("pipeline finished in %.1f us\n", to_microseconds(sim.now()));
  std::printf("sink checksum: %s (host reference: %d)\n",
              sink.console().c_str(),
              static_cast<std::int32_t>(expected));
  std::printf("instructions: source %llu, fir1 %llu, fir2 %llu, sink %llu\n",
              static_cast<unsigned long long>(source.instructions_retired()),
              static_cast<unsigned long long>(fir1.instructions_retired()),
              static_cast<unsigned long long>(fir2.instructions_retired()),
              static_cast<unsigned long long>(sink.instructions_retired()));
  std::printf("energy so far: cores %.1f uJ, links %.3f uJ\n",
              (sys.ledger().total(EnergyAccount::kCoreBaseline) +
               sys.ledger().total(EnergyAccount::kCoreInstructions)) * 1e6,
              sys.ledger().link_total() * 1e6);

  const bool ok =
      sink.console() == std::to_string(static_cast<std::int32_t>(expected));
  std::printf("checksum %s\n", ok ? "MATCHES" : "MISMATCH");
  return ok ? 0 : 1;
}
