// The full machine (Fig. 1): assemble the 480-core, 30-slice system, boot
// a program onto a far core over the Ethernet bridge (§V.E), load every
// other core with work, and report the headline numbers: ~134 W input
// power, 240 GIPS, and the per-account energy breakdown.
//
//   $ ./grid_system
#include <cstdio>

#include "arch/assembler.h"
#include "bench/bench_util.h"
#include "board/system.h"
#include "common/table.h"

int main() {
  using namespace swallow;

  Simulator sim;
  SystemConfig cfg;
  cfg.slices_x = 5;
  cfg.slices_y = 6;  // 30 slices = 480 cores, the largest built machine
  cfg.ethernet_bridges = 1;
  SwallowSystem sys(sim, cfg);
  sys.enable_loss_integration();
  std::printf("built %d cores on %d slices; %zu switches in the network\n",
              sys.core_count(), cfg.slices_x * cfg.slices_y,
              sys.network().switch_count());

  // ---- Boot a program over Ethernet into the far corner of the machine.
  Core& far = sys.core(19, 11, Layer::kHorizontal);
  const Image hello = assemble(R"(
      ldc    r0, 480
      printi r0
      texit
  )");
  sys.boot_image(0, far.node_id(), hello);
  sim.run_until(milliseconds(5.0));
  std::printf("network boot over the Ethernet bridge: console='%s' (%llu "
              "bytes of program travelled through the NoC)\n",
              far.console().c_str(),
              static_cast<unsigned long long>(sys.bridge(0).bytes_from_host()));

  // ---- Load everything and measure the headline numbers.
  const Image spin = assemble(bench::spin_program(4));
  for (int i = 0; i < sys.core_count(); ++i) {
    Core& core = sys.core_by_index(i);
    if (&core == &far) continue;  // already ran
    core.load(spin);
    core.start();
  }
  const TimePs t0 = sim.now();
  sim.run_until(t0 + microseconds(2.0));  // warm-up
  std::uint64_t base = 0;
  for (int i = 0; i < sys.core_count(); ++i) {
    base += sys.core_by_index(i).instructions_retired();
  }
  const TimePs window = microseconds(8.0);
  sim.run_until(t0 + microseconds(2.0) + window);
  std::uint64_t total = 0;
  for (int i = 0; i < sys.core_count(); ++i) {
    total += sys.core_by_index(i).instructions_retired();
  }
  sys.settle_energy();

  const double gips =
      static_cast<double>(total - base) / to_seconds(window) / 1e9;
  std::printf("\nfully loaded machine: %.1f W input (paper: ~134 W), "
              "%.1f GIPS (paper: up to 240 GIPS)\n",
              sys.total_input_power(), gips);
  std::printf("cores only: %.1f W (paper: 3.1 W/slice x 30 = 93 W)\n",
              sys.total_cores_power());

  TextTable t("energy ledger by account");
  t.header({"account", "energy (uJ)"});
  for (int a = 0; a < static_cast<int>(EnergyAccount::kCount); ++a) {
    const auto account = static_cast<EnergyAccount>(a);
    const Joules j = sys.ledger().total(account);
    if (j > 0) {
      t.row({std::string(to_string(account)), strprintf("%.1f", j * 1e6)});
    }
  }
  std::printf("\n%s\n", t.render().c_str());

  const bool ok = far.console() == "480" && gips > 225.0 &&
                  sys.total_input_power() > 110 &&
                  sys.total_input_power() < 150;
  std::printf("headline checks: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
