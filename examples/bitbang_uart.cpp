// Bit-banged UART transmitter on a GPIO port — the xCORE signature trick
// that the platform's time-determinism makes trivial: OUTPT drives each
// bit edge at an exact reference-clock tick, so the serial timing is
// cycle-perfect without a hardware UART.
//
// A core transmits "SWALLOW" at 1 Mbaud (100 reference ticks per bit,
// 8N1); the host decodes the recorded pin waveform and checks both the
// payload and the bit-edge jitter (which is exactly zero).
//
//   $ ./bitbang_uart
#include <cstdio>
#include <string>
#include <vector>

#include "arch/assembler.h"
#include "board/system.h"
#include "common/strings.h"
#include "sim/simulator.h"

namespace {

using namespace swallow;

constexpr int kBitTicks = 100;  // 1 Mbaud at the 100 MHz reference clock

/// Decode 8N1 frames from a recorded pin waveform.
std::string decode_uart(const std::vector<Core::PortEdge>& waveform,
                        TimePs bit_time) {
  auto level_at = [&](TimePs t) {
    int level = 0;
    for (const auto& e : waveform) {
      if (e.time <= t) level = e.level;
    }
    return level;
  };
  std::string out;
  std::size_t i = 0;
  while (i < waveform.size()) {
    // Find a falling edge (start bit) from idle high.
    if (!(waveform[i].level == 0 && i > 0 && waveform[i - 1].level == 1)) {
      ++i;
      continue;
    }
    const TimePs start = waveform[i].time;
    int byte = 0;
    for (int bit = 0; bit < 8; ++bit) {
      // Sample mid-bit.
      const TimePs at = start + bit_time * (bit + 1) + bit_time / 2;
      byte |= level_at(at) << bit;
    }
    out += static_cast<char>(byte);
    // Skip past the stop bit.
    const TimePs frame_end = start + bit_time * 10;
    while (i < waveform.size() && waveform[i].time < frame_end) ++i;
  }
  return out;
}

}  // namespace

int main() {
  Simulator sim;
  SystemConfig cfg;
  SwallowSystem sys(sim, cfg);
  Core& core = sys.core(0, 0, Layer::kVertical);

  // Message bytes in a table; transmit LSB-first, 8N1, 100 ticks/bit.
  const std::string message = "SWALLOW";
  std::string table;
  for (char c : message) table += strprintf("%d, ", c);
  table += "0";  // terminator

  const std::string src = strprintf(R"(
      getr  r0, 6          # the TX pin
      ldc   r1, 1
      outp  r0, r1         # idle high
      ldc   r8, msg
      gettime r9
      addi  r9, r9, 200    # first start bit 2 us from now
  next_byte:
      ldw   r4, r8, 0
      bf    r4, done
      # start bit (low) at r9
      ldc   r1, 0
      outpt r0, r1, r9
      # eight data bits, LSB first
      ldc   r5, 8
  bits:
      addi  r9, r9, %d
      ldc   r6, 1
      and   r1, r4, r6
      outpt r0, r1, r9
      shri  r4, r4, 1
      subi  r5, r5, 1
      bt    r5, bits
      # stop bit (high)
      addi  r9, r9, %d
      ldc   r1, 1
      outpt r0, r1, r9
      addi  r9, r9, %d     # stop bit duration + one idle bit
      addi  r9, r9, %d
      addi  r8, r8, 4
      bu    next_byte
  done:
      texit
  msg: .word %s
  )", kBitTicks, kBitTicks, kBitTicks, kBitTicks, table.c_str());

  core.load(assemble(src));
  core.start();
  sim.run_until(milliseconds(5.0));
  if (core.trapped()) {
    std::fprintf(stderr, "trap: %s\n", core.trap().message.c_str());
    return 1;
  }

  const auto& waveform = core.port_waveform(0);
  const TimePs bit_time = kBitTicks * period_ps(kReferenceClockMhz);
  const std::string decoded = decode_uart(waveform, bit_time);
  std::printf("pin edges recorded: %zu\n", waveform.size());
  std::printf("decoded at 1 Mbaud: \"%s\" (expected \"%s\")\n",
              decoded.c_str(), message.c_str());

  // Jitter check: every edge lands exactly on a bit boundary.
  std::int64_t worst_jitter = 0;
  const TimePs t0 = waveform.size() > 2 ? waveform[2].time : 0;  // first start
  for (std::size_t i = 2; i < waveform.size(); ++i) {
    const std::int64_t off = (waveform[i].time - t0) % bit_time;
    worst_jitter = std::max(worst_jitter,
                            std::min(off, static_cast<std::int64_t>(bit_time) - off));
  }
  std::printf("worst bit-edge jitter: %lld ps (time-deterministic: 0)\n",
              static_cast<long long>(worst_jitter));

  const bool ok = decoded == message && worst_jitter == 0;
  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
