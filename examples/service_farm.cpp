// A production-style request/response farm on nOS-lite (ROADMAP item 3,
// docs/load.md): eight cores run a single-service server, the host drives
// them closed-loop through the Ethernet bridge — a fixed window of
// outstanding requests, one in flight per server at a time, exactly the
// admission discipline src/load/ uses at scale — and reports latency
// percentiles and energy per request.
//
//   $ ./service_farm
//
// The heavy-lifting version of this pattern (multiple bridges, open-loop
// arrival processes, scatter-gather and pipeline topologies, SLO reports,
// fault composition) is the swallow_load tool.
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "api/nos.h"
#include "board/system.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

int main() {
  using namespace swallow;

  Simulator sim;
  SystemConfig cfg;
  cfg.slices_x = 2;
  cfg.slices_y = 1;
  cfg.ethernet_bridges = 1;
  SwallowSystem sys(sim, cfg);

  // The service: burn a fixed compute hold, then reply with the request
  // id XOR'd by a magic so the host can verify every completion.
  const char* work = R"(
      ldc   r2, 100
  burn:
      subi  r2, r2, 1
      bt    r2, burn
      ldc   r2, 0x600D
      ldch  r2, 0xF00D
      xor   r0, r0, r2
      ret
  )";
  std::vector<std::unique_ptr<NosNode>> servers;
  for (int i = 0; i < 8; ++i) {
    servers.push_back(std::make_unique<NosNode>(
        sys.core(i % 4, 0, i < 4 ? Layer::kVertical : Layer::kHorizontal)));
    servers.back()->add_service("work", work);
    servers.back()->start();
  }

  // Closed-loop host driver: keep `kWindow` requests outstanding, one in
  // flight per (single-threaded) server, the rest queued host-side.
  constexpr std::uint32_t kRequests = 512;
  constexpr int kWindow = 16;
  EthernetBridge& bridge = sys.bridge(0);
  const ResourceId reply_to = bridge.chanend_id();

  std::map<std::uint32_t, TimePs> issue_time;   // id -> generation time
  std::map<std::uint32_t, int> target_of;       // id -> server index
  std::deque<std::uint32_t> pending;            // generated, not yet sent
  std::vector<bool> busy(servers.size(), false);
  LogHistogram latency_ns;
  std::uint32_t next_id = 1;
  std::uint32_t completed = 0, mismatched = 0;

  auto pump = [&] {
    for (auto it = pending.begin(); it != pending.end();) {
      const std::uint32_t id = *it;
      const int tgt = target_of.at(id);
      if (busy[tgt] || !bridge.ingress_can_accept(12)) {
        ++it;
        continue;
      }
      busy[tgt] = true;
      bridge.host_try_send(servers[tgt]->request_chanend(),
                           NosNode::encode_request(reply_to, 0, id));
      it = pending.erase(it);
    }
  };
  auto inject = [&] {
    if (next_id > kRequests) return;
    const std::uint32_t id = next_id++;
    issue_time[id] = sim.now();
    target_of[id] = static_cast<int>(id % servers.size());
    pending.push_back(id);
    pump();
  };

  bridge.set_host_receiver([&](std::vector<std::uint8_t> p) {
    if (p.size() != 4) return;
    const std::uint32_t r = static_cast<std::uint32_t>(p[0]) | (p[1] << 8) |
                            (p[2] << 16) |
                            (static_cast<std::uint32_t>(p[3]) << 24);
    const std::uint32_t id = r ^ 0x600DF00Du;
    const auto it = issue_time.find(id);
    if (it == issue_time.end()) {
      ++mismatched;
      return;
    }
    latency_ns.add(static_cast<std::uint64_t>(sim.now() - it->second) / 1000);
    issue_time.erase(it);
    busy[target_of.at(id)] = false;
    target_of.erase(id);
    ++completed;
    inject();  // closed loop: each completion admits the next request
    pump();
  });
  bridge.subscribe_ingress_space(pump);

  sys.settle_energy();
  const Joules e0 = sys.ledger().grand_total();
  for (int i = 0; i < kWindow; ++i) inject();
  const TimePs t0 = sim.now();
  while (completed < kRequests && sim.now() < milliseconds(100.0)) {
    sim.run_until(sim.now() + microseconds(50.0));
  }
  sys.settle_energy();

  const double span_s = to_seconds(sim.now() - t0);
  std::printf("closed-loop farm: %u/%u replies, %u mismatches\n", completed,
              kRequests, mismatched);
  std::printf("throughput: %.0f requests per simulated second\n",
              span_s > 0 ? completed / span_s : 0.0);
  std::printf("latency: p50 %.1f us, p95 %.1f us, p99 %.1f us (mean %.1f)\n",
              latency_ns.percentile(0.50) / 1e3,
              latency_ns.percentile(0.95) / 1e3,
              latency_ns.percentile(0.99) / 1e3, latency_ns.mean() / 1e3);
  std::printf("energy: %.2f uJ per request\n",
              completed ? (sys.ledger().grand_total() - e0) * 1e6 / completed
                        : 0.0);

  // Shut the servers down cleanly and let the grid drain.
  for (auto& s : servers) {
    bridge.host_send(s->request_chanend(),
                     NosNode::encode_request(0, NosNode::kShutdownService, 0));
  }
  sim.run_until(sim.now() + microseconds(200.0));

  const bool ok = completed == kRequests && mismatched == 0;
  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
