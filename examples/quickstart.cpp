// Quickstart: build one Swallow slice, run a two-core message-passing
// program written in Swallow assembly, and read the energy ledger — the
// smallest end-to-end tour of the simulator's public API.
//
//   $ ./quickstart
#include <cstdio>

#include "arch/assembler.h"
#include "common/strings.h"
#include "board/system.h"
#include "sim/simulator.h"

int main() {
  using namespace swallow;

  // A slice is 16 XS1-L cores on 8 chips in the unwoven lattice (Fig. 7).
  Simulator sim;
  SystemConfig cfg;  // defaults: 1 slice, 500 MHz, Table I link rates
  SwallowSystem sys(sim, cfg);

  // Pick two cores on opposite corners of the slice.
  Core& producer = sys.core(0, 0, Layer::kVertical);
  Core& consumer = sys.core(3, 1, Layer::kHorizontal);

  // The producer allocates a channel end, points it at the consumer's
  // chanend 0 and sends a word followed by an END control token.
  const std::string producer_src = strprintf(R"(
      getr  r0, 2          # allocate a channel end
      ldc   r1, 0x%x       # destination node id
      ldch  r1, 2          # ...chanend 0, resource type 2
      setd  r0, r1
      ldc   r2, 0x1234
      ldch  r2, 0x5678     # r2 = 0x12345678
      out   r0, r2         # four data tokens
      outct r0, 1          # END: closes the wormhole route
      texit
  )", static_cast<unsigned>(consumer.node_id()));

  const char* consumer_src = R"(
      getr  r0, 2
      in    r1, r0         # blocks until the word arrives
      chkct r0, 1          # consume the END
      printi r1            # simulator console
      texit
  )";

  producer.load(assemble(producer_src));
  consumer.load(assemble(consumer_src));
  producer.start();
  consumer.start();

  sim.run_until(milliseconds(1.0));
  sys.settle_energy();

  std::printf("consumer console: %s\n", consumer.console().c_str());
  std::printf("finished: producer=%d consumer=%d after %.2f us\n",
              producer.finished(), consumer.finished(),
              to_microseconds(sim.now()));

  const EnergyLedger& ledger = sys.ledger();
  std::printf("\nEnergy ledger after 1 ms:\n");
  for (int a = 0; a < static_cast<int>(EnergyAccount::kCount); ++a) {
    const auto account = static_cast<EnergyAccount>(a);
    const Joules j = ledger.total(account);
    if (j > 0) {
      std::printf("  %-22s %10.2f uJ\n",
                  std::string(to_string(account)).c_str(), j * 1e6);
    }
  }
  std::printf("  %-22s %10.2f uJ\n", "grand total",
              ledger.grand_total() * 1e6);
  std::printf("\nslice input power right now: %.2f W (16 idle cores)\n",
              sys.total_input_power());
  return producer.finished() && consumer.finished() ? 0 : 1;
}
