// The paper's §II novelty: "it is possible to create a program that can
// measure its own power consumption and adapt to the results."
//
// A core runs four busy threads at 500 MHz.  A control loop on the same
// core reads its own supply rail through the slice's shunt/ADC
// instrumentation (GETPWR) every 50 us and scales its clock frequency
// (SETFREQ) to keep the rail under a power budget.
//
//   $ ./self_aware_power
#include <cstdio>

#include "arch/assembler.h"
#include "common/strings.h"
#include "board/system.h"
#include "sim/simulator.h"

int main() {
  using namespace swallow;

  Simulator sim;
  SystemConfig cfg;
  SwallowSystem sys(sim, cfg);
  sys.start_sampling();  // the §II ADC daughter-board, 1 MS/s x 5 channels

  // Rail 0 carries four cores; three sit idle (~113 mW each) while this
  // one runs hot.  Budget: 480 mW on the rail -> the governor must settle
  // near 46 + 0.3 f + 3*113 = 480  =>  f ~= 317 MHz.
  const int budget_mw = 480;

  Core& core = sys.core(0, 0, Layer::kVertical);
  const std::string src = strprintf(R"(
      # three spinning worker threads (heavy load)
      getr  r4, 3
      getst r5, r4
      tinitpc r5, spin
      getst r5, r4
      tinitpc r5, spin
      getst r5, r4
      tinitpc r5, spin
      msync r4

      ldc   r11, 500         # current frequency (MHz)
      ldc   r10, 40          # governor iterations
  main:
      gettime r0
      ldc   r1, 5000         # 50 us in 10 ns reference ticks
      add   r0, r0, r1
      timewait r0
      getpwr r2, 0           # own rail, milliwatts
      printi r2
      ldc   r3, 44
      printc r3              # ','
      printi r11
      ldc   r3, 10
      printc r3              # newline
      ldc   r3, %d           # budget
      lss   r5, r3, r2       # budget < reading -> over budget
      bf    r5, under
      ldc   r6, 150          # floor
      lss   r7, r6, r11
      bf    r7, next
      subi  r11, r11, 25
      setfreq r11
      bu    next
  under:
      subi  r6, r3, 30       # hysteresis band
      lss   r7, r2, r6
      bf    r7, next
      ldc   r7, 500
      lss   r8, r11, r7
      bf    r8, next
      addi  r11, r11, 25
      setfreq r11
  next:
      subi  r10, r10, 1
      bt    r10, main
      texit
  spin:
      add   r0, r0, r1
      bu    spin
  )", budget_mw);

  core.load(assemble(src));
  core.start();
  sim.run_until(milliseconds(3.0));

  std::printf("governor trace (rail mW, frequency MHz) printed by the "
              "program itself:\n%s\n", core.console().c_str());
  std::printf("final core frequency: %.0f MHz\n", core.frequency());
  std::printf("rail 0 power now: %.0f mW (budget %d mW)\n",
              to_milliwatts(sys.slice(0, 0).supplies().rail(0).power()),
              budget_mw);

  const bool settled = core.frequency() > 250 && core.frequency() < 400;
  std::printf("governor %s within the expected band (275-350 MHz)\n",
              settled ? "settled" : "did NOT settle");
  return settled ? 0 : 1;
}
