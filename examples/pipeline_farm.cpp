// Parallel program structures on a slice (§I aims, §V.D recommendations):
// a pipeline and a client/server task farm built with the task-level API,
// each run twice — once placed on neighbouring cores (chip-local
// communication) and once scattered across the slice (external links) —
// comparing completion time, energy and the measured computation-to-
// communication ratio.
//
//   $ ./pipeline_farm
#include <cstdio>
#include <vector>

#include "analysis/ec.h"
#include "api/patterns.h"
#include "api/taskgen.h"
#include "board/system.h"
#include "common/strings.h"
#include "common/table.h"

namespace {

using namespace swallow;

struct RunResult {
  double ms;
  double core_uj;
  double link_uj;
  double ec;
};

RunResult run_pipeline(bool near_placement) {
  Simulator sim;
  SystemConfig cfg;
  SwallowSystem sys(sim, cfg);
  AppBuilder app(sys);

  PipelineConfig pcfg;
  pcfg.stages = 8;
  pcfg.items = 24;
  pcfg.work_per_item = 12000;
  pcfg.bytes_per_item = 256;

  std::vector<Placement> places;
  for (int i = 0; i < pcfg.stages; ++i) {
    if (near_placement) {
      places.push_back(linear_placement(sys.config(), i));  // packed
    } else {
      // Scatter: stride 2 chips so every hop crosses board links.
      places.push_back(linear_placement(sys.config(), (i * 4 + i / 4) % 16));
    }
  }
  const auto tasks = build_pipeline(app, pcfg, places);
  app.start();
  if (!app.run_to_completion(milliseconds(500.0))) {
    std::fprintf(stderr, "pipeline did not complete\n");
    return {};
  }
  sys.settle_energy();

  RunResult r;
  r.ms = to_seconds(app.completion_time()) * 1e3;
  r.core_uj = (sys.ledger().total(EnergyAccount::kCoreBaseline) +
               sys.ledger().total(EnergyAccount::kCoreInstructions)) * 1e6;
  r.link_uj = sys.ledger().link_total() * 1e6;
  std::uint64_t instructions = 0, bytes = 0;
  for (int t : tasks) {
    instructions += app.task_core(t).instructions_retired();
    bytes += app.bytes_sent(t);
  }
  r.ec = measured_ec(instructions, bytes);
  return r;
}

RunResult run_farm(bool near_placement) {
  Simulator sim;
  SystemConfig cfg;
  SwallowSystem sys(sim, cfg);
  AppBuilder app(sys);

  FarmConfig fcfg;
  fcfg.workers = 6;
  fcfg.rounds = 12;
  fcfg.work_per_item = 15000;
  fcfg.bytes_per_item = 128;

  std::vector<Placement> places;
  for (int i = 0; i <= fcfg.workers; ++i) {
    places.push_back(near_placement
                         ? linear_placement(sys.config(), i)
                         : linear_placement(sys.config(), (i * 5) % 16));
  }
  const auto tasks = build_farm(app, fcfg, places);
  app.start();
  if (!app.run_to_completion(milliseconds(500.0))) {
    std::fprintf(stderr, "farm did not complete\n");
    return {};
  }
  sys.settle_energy();

  RunResult r;
  r.ms = to_seconds(app.completion_time()) * 1e3;
  r.core_uj = (sys.ledger().total(EnergyAccount::kCoreBaseline) +
               sys.ledger().total(EnergyAccount::kCoreInstructions)) * 1e6;
  r.link_uj = sys.ledger().link_total() * 1e6;
  std::uint64_t instructions = 0, bytes = 0;
  for (int t : tasks) {
    instructions += app.task_core(t).instructions_retired();
    bytes += app.bytes_sent(t);
  }
  r.ec = measured_ec(instructions, bytes);
  return r;
}

}  // namespace

int main() {
  std::printf("== parallel program structures on one slice ==\n\n");

  TextTable t("pipeline (8 stages x 24 items) and farm (1+6, 12 rounds)");
  t.header({"structure", "placement", "completion (ms)", "core energy (uJ)",
            "link energy (uJ)", "measured E/C"});

  const RunResult pn = run_pipeline(true);
  const RunResult pf = run_pipeline(false);
  const RunResult fn = run_farm(true);
  const RunResult ff = run_farm(false);

  auto row = [&](const char* s, const char* p, const RunResult& r) {
    t.row({s, p, strprintf("%.3f", r.ms), strprintf("%.1f", r.core_uj),
           strprintf("%.2f", r.link_uj), strprintf("%.1f", r.ec)});
  };
  row("pipeline", "neighbouring cores", pn);
  row("pipeline", "scattered", pf);
  row("farm", "neighbouring cores", fn);
  row("farm", "scattered", ff);
  std::printf("%s\n", t.render().c_str());

  std::printf("§V.D recommendation check: scattered placement spends more "
              "link energy (%.2f vs %.2f uJ pipeline) for the same work — "
              "\"prefer core-local communication where possible\".\n",
              pf.link_uj, pn.link_uj);
  const bool ok = pn.ms > 0 && fn.ms > 0 && pf.link_uj > pn.link_uj;
  return ok ? 0 : 1;
}
