// Distributed services with nOS-lite (the paper's companion operating
// system, [3]): four cores run service kernels; the host farms requests
// over the Ethernet bridge (client/server — one of the §I data-sharing
// methods) and collects results; a fifth core makes a core-to-core call.
//
//   $ ./nos_services
#include <cstdio>
#include <vector>

#include "api/nos.h"
#include "arch/assembler.h"
#include "board/system.h"
#include "sim/simulator.h"

int main() {
  using namespace swallow;

  Simulator sim;
  SystemConfig cfg;
  cfg.ethernet_bridges = 1;
  SwallowSystem sys(sim, cfg);

  // Four service nodes across the slice, each offering "square" and
  // "triangle" (n*(n+1)/2, computed iteratively).
  const char* square = R"(
      mul   r0, r0, r0
      ret
  )";
  const char* triangle = R"(
      ldc   r1, 0
  tri_loop:
      add   r1, r1, r0
      subi  r0, r0, 1
      bt    r0, tri_loop
      or    r0, r1, r1
      ret
  )";
  std::vector<std::unique_ptr<NosNode>> nodes;
  for (int i = 0; i < 4; ++i) {
    nodes.push_back(std::make_unique<NosNode>(
        sys.core(i, 0, Layer::kVertical)));
    nodes.back()->add_service("square", square);
    nodes.back()->add_service("triangle", triangle);
    nodes.back()->start();
  }

  // Host: farm 32 requests round-robin over the four servers.
  std::vector<std::uint32_t> replies;
  sys.bridge(0).set_host_receiver([&](std::vector<std::uint8_t> p) {
    if (p.size() == 4) {
      replies.push_back(static_cast<std::uint32_t>(p[0]) | (p[1] << 8) |
                        (p[2] << 16) |
                        (static_cast<std::uint32_t>(p[3]) << 24));
    }
  });
  const ResourceId reply_to = sys.bridge(0).chanend_id();
  std::uint64_t expected_sum = 0;
  for (std::uint32_t n = 1; n <= 32; ++n) {
    NosNode& server = *nodes[n % 4];
    const std::uint32_t svc = n % 2;  // alternate square / triangle
    sys.bridge(0).host_send(server.request_chanend(),
                            NosNode::encode_request(reply_to, svc, n));
    expected_sum += svc == 0 ? n * n : n * (n + 1) / 2;
  }

  // A fifth core calls a service directly, core to core.
  Core& client = sys.core(0, 1, Layer::kHorizontal);
  const std::string client_src =
      NosNode::client_source(nodes[2]->request_chanend(), client.node_id(),
                             0 /*square*/, 12);
  client.load(assemble(client_src));
  client.start();

  sim.run_until(milliseconds(20.0));
  sys.settle_energy();

  std::uint64_t sum = 0;
  for (std::uint32_t r : replies) sum += r;
  std::printf("host farm: %zu/32 replies, checksum %llu (expected %llu)\n",
              replies.size(), static_cast<unsigned long long>(sum),
              static_cast<unsigned long long>(expected_sum));
  const std::uint32_t core_result =
      client.peek_word(assemble(client_src).symbol("result") * 4);
  std::printf("core-to-core call: square(12) = %u\n", core_result);
  std::printf("energy so far: %.1f uJ total, %.2f uJ on links\n",
              sys.ledger().grand_total() * 1e6,
              sys.ledger().link_total() * 1e6);

  const bool ok = replies.size() == 32 && sum == expected_sum &&
                  core_result == 144 && client.finished();
  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
