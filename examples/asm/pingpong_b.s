# Pong side: echo one word back to node 0 chanend 0.
    getr  r0, 2
    ldc   r1, 0
    ldch  r1, 2
    setd  r0, r1
    in    r2, r0
    chkct r0, 1
    out   r0, r2
    outct r0, 1
    texit
