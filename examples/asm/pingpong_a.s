# Ping side: send a word to node 1 chanend 0, await the echo.
    getr  r0, 2
    ldc   r1, 1
    ldch  r1, 2
    setd  r0, r1
    ldc   r2, 7777
    out   r0, r2
    outct r0, 1
    in    r3, r0
    chkct r0, 1
    printi r3
    texit
