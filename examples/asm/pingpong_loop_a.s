# Looping ping: 5000 round trips to node 1 chanend 2 (~3.5 ms of simulated
# time), then print the last echoed word.  Long enough that a checkpointed
# run interrupted at --time 1 leaves real work for --resume to finish —
# the CI kill-and-resume soak pairs this with pingpong_loop_b.s.
    getr  r0, 2
    ldc   r1, 1
    ldch  r1, 2
    setd  r0, r1
    ldc   r4, 5000
loop:
    out   r0, r4
    outct r0, 1
    in    r3, r0
    chkct r0, 1
    ldc   r5, 1
    sub   r4, r4, r5
    bt    r4, loop
    printi r3
    texit
