# Hello from a Swallow core: print a number and exit.
    ldc    r0, 42
    printi r0
    ldc    r1, 10
    printc r1
    texit
