# Looping pong: echo 5000 words back to node 0 chanend 2.
    getr  r0, 2
    ldc   r1, 0
    ldch  r1, 2
    setd  r0, r1
    ldc   r4, 5000
loop:
    in    r2, r0
    chkct r0, 1
    out   r0, r2
    outct r0, 1
    ldc   r5, 1
    sub   r4, r4, r5
    bt    r4, loop
    texit
