// swallow_asm: assemble a Swallow assembly file and inspect the result.
//
//   swallow_asm program.s            # assemble, print summary + listing
//   swallow_asm --hex program.s      # also dump the image words
//   swallow_asm --symbols program.s  # dump the symbol table
//   swallow_asm --timing program.s   # static timing analysis (XTA-style)
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "arch/assembler.h"
#include "arch/timing.h"
#include "common/error.h"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw swallow::Error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swallow;
  bool hex = false, symbols = false, timing = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--hex") {
      hex = true;
    } else if (arg == "--symbols") {
      symbols = true;
    } else if (arg == "--timing") {
      timing = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: swallow_asm [--hex] [--symbols] [--timing] program.s\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return 2;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: swallow_asm [--hex] [--symbols] program.s\n");
    return 2;
  }

  try {
    const Image image = assemble(read_file(path));
    std::printf("%s: %zu words (%zu bytes), entry at word %u\n", path.c_str(),
                image.words.size(), image.size_bytes(), image.entry);
    if (symbols) {
      std::printf("\nsymbols:\n");
      for (const auto& [name, addr] : image.symbols) {
        std::printf("  %-24s word %u (byte 0x%x)\n", name.c_str(), addr,
                    addr * 4);
      }
    }
    std::printf("\n%s", disassemble_image(image).c_str());
    if (hex) {
      std::printf("\nimage:\n");
      for (std::size_t i = 0; i < image.words.size(); ++i) {
        std::printf("  %04zx: %08x\n", i * 4, image.words[i]);
      }
    }
    if (timing) {
      const TimingResult r = analyze_timing(image, image.entry);
      std::printf("\nstatic timing (single thread):\n");
      if (r.exact) {
        std::printf("  exact: %llu instructions, %llu thread cycles\n",
                    static_cast<unsigned long long>(r.instructions),
                    static_cast<unsigned long long>(r.thread_cycles));
        std::printf("  at 500 MHz: %.1f ns;  at 71 MHz: %.1f ns\n",
                    to_nanoseconds(r.duration(500.0)),
                    to_nanoseconds(r.duration(71.0)));
      } else {
        std::printf("  not statically timeable: %s\n", r.reason.c_str());
        std::printf("  (%llu instructions analysed before giving up)\n",
                    static_cast<unsigned long long>(r.instructions));
      }
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
