// swallow_top: a "top"-style dashboard over a traced run
// (docs/observability.md).
//
//   swallow_top [--top N] [--at US] [--watch] [--metrics FILE] trace.json
//
// The dashboard replays the windowed power counters a swallow_run
// --energy-attr --trace run embeds in its Chrome trace ("power W" per core,
// "sliceN W" + "input W" on the system track) together with the per-port
// FIFO occupancy counters, and — when a --metrics dump is given — each
// core's end-of-run per-thread IPC.  One frame is rendered per power
// window:
//   * default: the final frame (machine state at end of run),
//   * --at US: the frame covering simulated time US,
//   * --watch: every frame in sequence (the replay form of a live top).
// Rendering is deterministic: rows sort by power, ties by node id, so the
// output is byte-identical for any --jobs value of the producing run.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/json.h"
#include "common/strings.h"

namespace {

using swallow::Error;
using swallow::Json;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void usage() {
  std::printf(
      "usage: swallow_top [--top N] [--at US] [--watch] [--metrics FILE]\n"
      "                   trace.json\n"
      "\n"
      "  trace.json      Chrome trace of a swallow_run --energy-attr\n"
      "                  --trace run (carries the windowed power counters)\n"
      "  --top N         core rows per frame (default 16)\n"
      "  --at US         render the frame covering simulated time US\n"
      "  --watch         render every power-window frame in sequence\n"
      "  --metrics FILE  add per-core IPC from a --metrics dump\n");
}

double num_or(const Json& e, const char* key, double fallback) {
  const Json* v = e.get(key);
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

std::string str_or(const Json& e, const char* key) {
  const Json* v = e.get(key);
  return v != nullptr && v->is_string() ? v->as_string() : std::string();
}

// One counter's samples in trace order (ts is non-decreasing by schema).
using Series = std::vector<std::pair<double, double>>;  // (ts us, value)

// Latest sample at or before t; fallback when none.
double value_at(const Series& s, double t, double fallback) {
  double v = fallback;
  for (const auto& [ts, val] : s) {
    if (ts > t) break;
    v = val;
  }
  return v;
}

constexpr long long kSystemPid = 65536;

struct Dashboard {
  std::map<long long, Series> core_power;                  // node -> power W
  std::map<long long, std::map<std::string, Series>> fifo; // node -> port
  std::map<std::string, Series> system;   // "input W", "sliceN W", "total uJ"
  std::map<long long, double> ipc;        // node -> sum of thread IPC
  std::vector<double> frames;             // distinct power-sample times
};

Dashboard scan(const Json& doc, const std::string& metrics_path) {
  Dashboard d;
  for (const Json& e : doc.at("traceEvents").as_array()) {
    if (str_or(e, "ph") != "C") continue;
    const std::string name = str_or(e, "name");
    const auto pid = static_cast<long long>(num_or(e, "pid", 0));
    const double ts = num_or(e, "ts", 0);
    const double value = num_or(e.at("args"), "value", 0);
    if (pid == kSystemPid) {
      d.system[name].emplace_back(ts, value);
      continue;
    }
    if (name == "power W") {
      d.core_power[pid].emplace_back(ts, value);
      d.frames.push_back(ts);
    } else if (name.rfind("fifo", 0) == 0) {
      d.fifo[pid][name].emplace_back(ts, value);
    }
  }
  std::sort(d.frames.begin(), d.frames.end());
  d.frames.erase(std::unique(d.frames.begin(), d.frames.end()),
                 d.frames.end());
  if (!metrics_path.empty()) {
    const Json m = Json::parse(read_file(metrics_path));
    const Json* gauges = m.get("gauges");
    if (gauges != nullptr && gauges->is_object()) {
      for (const auto& [name, per_owner] : gauges->items()) {
        if (name.rfind("core.ipc.t", 0) != 0 || !per_owner.is_object())
          continue;
        for (const auto& [owner, v] : per_owner.items()) {
          if (!v.is_number()) continue;
          d.ipc[swallow::parse_int(owner)] += v.as_number();
        }
      }
    }
  }
  return d;
}

void render_frame(const Dashboard& d, double t, int top, bool have_metrics) {
  std::printf("swallow_top  t=%.1f us\n", t);
  const Series* input = nullptr;
  if (const auto it = d.system.find("input W"); it != d.system.end())
    input = &it->second;
  std::string slice_line;
  for (const auto& [name, series] : d.system) {
    if (name.size() < 2 || name.compare(name.size() - 2, 2, " W") != 0 ||
        name == "input W")
      continue;
    slice_line += swallow::strprintf("  %s=%.3f", name.c_str(),
                                     value_at(series, t, 0.0));
  }
  std::printf("machine: input %.3f W%s\n",
              input != nullptr ? value_at(*input, t, 0.0) : 0.0,
              slice_line.c_str());

  struct Row {
    long long node = 0;
    double power = 0.0;
    double fifo = 0.0;
  };
  std::vector<Row> rows;
  for (const auto& [node, series] : d.core_power) {
    Row r;
    r.node = node;
    r.power = value_at(series, t, 0.0);
    if (const auto it = d.fifo.find(node); it != d.fifo.end()) {
      for (const auto& [port, s] : it->second)
        r.fifo += value_at(s, t, 0.0);
    }
    rows.push_back(r);
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.power != b.power) return a.power > b.power;
    return a.node < b.node;
  });
  std::printf("  %-8s %12s %8s %6s\n", "core", "power mW", "ipc", "fifo");
  for (int i = 0; i < static_cast<int>(rows.size()) && i < top; ++i) {
    const Row& r = rows[static_cast<std::size_t>(i)];
    std::string ipc = "-";
    if (have_metrics) {
      const auto it = d.ipc.find(r.node);
      ipc = swallow::strprintf("%.4g", it != d.ipc.end() ? it->second : 0.0);
    }
    std::printf("  0x%04llx %13.3f %8s %6.0f\n",
                static_cast<unsigned long long>(r.node), r.power * 1e3,
                ipc.c_str(), r.fifo);
  }
}

}  // namespace

int main(int argc, char** argv) {
  int top = 16;
  bool watch = false;
  double at_us = -1.0;
  std::string trace_path, metrics_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw Error("missing value for " + arg);
      return argv[++i];
    };
    try {
      if (arg == "--top") {
        top = static_cast<int>(swallow::parse_int(next()));
      } else if (arg == "--at") {
        at_us = static_cast<double>(swallow::parse_int(next()));
      } else if (arg == "--watch") {
        watch = true;
      } else if (arg == "--metrics") {
        metrics_path = next();
      } else if (arg == "--help" || arg == "-h") {
        usage();
        return 0;
      } else if (!arg.empty() && arg[0] == '-') {
        std::fprintf(stderr, "unknown option %s\n", arg.c_str());
        return 2;
      } else if (trace_path.empty()) {
        trace_path = arg;
      } else {
        std::fprintf(stderr, "more than one trace file given\n");
        return 2;
      }
    } catch (const Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }
  if (trace_path.empty()) {
    usage();
    return 2;
  }

  try {
    const Json doc = Json::parse(read_file(trace_path));
    if (!doc.is_object() || doc.get("traceEvents") == nullptr) {
      std::fprintf(stderr, "%s is not a Chrome trace\n", trace_path.c_str());
      return 2;
    }
    const Dashboard d = scan(doc, metrics_path);
    if (d.frames.empty()) {
      std::fprintf(stderr,
                   "%s has no \"power W\" counters — produce it with "
                   "swallow_run --energy-attr --trace\n",
                   trace_path.c_str());
      return 1;
    }
    const bool have_metrics = !metrics_path.empty();
    if (watch) {
      for (std::size_t i = 0; i < d.frames.size(); ++i) {
        if (i > 0) std::printf("\n");
        render_frame(d, d.frames[i], top, have_metrics);
      }
      return 0;
    }
    double t = d.frames.back();
    if (at_us >= 0.0) {
      // The frame covering --at: the first power sample at or after it
      // (each sample closes the window that contains its time).
      t = d.frames.back();
      for (const double f : d.frames) {
        if (f >= at_us) {
          t = f;
          break;
        }
      }
    }
    render_frame(d, t, top, have_metrics);
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
