// swallow_load: production traffic generator for the simulated machine
// (ROADMAP item 3, docs/load.md).
//
//   swallow_load [options]
//
// Two modes:
//
//  * Service workloads (--workload farm|scatter|pipeline): deploys NOS
//    request/response programs across the grid and injects framed requests
//    through every Ethernet bridge, closed-loop (--closed N outstanding per
//    bridge) or open-loop (--open with a seeded --arrivals process).  The
//    run ends when --requests requests have completed; the SLO report —
//    p50/p95/p99/p999 latency, throughput, per-request energy by account —
//    is printed as a single `load_json:` machine line.
//
//  * Synthetic switch-level traffic (--workload synthetic): every core
//    node sources timestamped packets to a --pattern destination at a
//    seeded --rate for --window simulated microseconds; the report is the
//    offered vs accepted throughput and packet latency percentiles (one
//    point of an offered-load curve).
//
// Same seed + same machine config => byte-identical `load_json:` for any
// --jobs value, and (service workloads) across checkpoint/resume.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "board/system.h"
#include "common/error.h"
#include "common/strings.h"
#include "fault/fault.h"
#include "load/load.h"
#include "load/synthetic.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "snap/machine.h"
#include "snap/snapfile.h"

namespace {

void write_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw swallow::Error("cannot write " + path);
  out << body;
}

void usage() {
  std::printf(
      "usage: swallow_load [options]\n"
      "\n"
      "machine:\n"
      "  --slices WxH    grid of slices                  (default 1x1)\n"
      "  --jobs N        parallel engine worker threads  (default 0)\n"
      "  --freq MHZ      core frequency in MHz           (default 500)\n"
      "  --bridges N     Ethernet bridges along the south edge (default 1)\n"
      "  --grade-max     architectural link rates 500/125\n"
      "  --reliable      CRC/retry framing on every link\n"
      "\n"
      "workload:\n"
      "  --workload W    farm | scatter | pipeline | synthetic (default "
      "farm)\n"
      "  --requests N    total requests to complete      (default 10000)\n"
      "  --closed N      closed loop, N outstanding per bridge (default "
      "32)\n"
      "  --open          open loop (offered by --arrivals instead)\n"
      "  --arrivals A    poisson | uniform | burst       (default poisson)\n"
      "  --rate R        open-loop offered requests/s of simulated time\n"
      "                  per bridge (default 1e6); synthetic: packets/s\n"
      "                  per node\n"
      "  --burst N       arrivals per burst tick         (default 16)\n"
      "  --work N        instructions burned per request (default 200)\n"
      "  --fanout K      scatter: workers per frontend   (default 4)\n"
      "  --stages S      pipeline: stages per pipeline   (default 4)\n"
      "  --groups N      service groups per bridge (default 0 = all cores)\n"
      "  --ingress-cap T bridge ingress FIFO bound in tokens (default "
      "4096;\n"
      "                  0 = unbounded, disables backpressure)\n"
      "  --seed N        arrival + target selection rng  (default 1)\n"
      "\n"
      "synthetic traffic (--workload synthetic):\n"
      "  --pattern P     uniform | hotspot | transpose | bitrev\n"
      "  --window US     injection window, simulated us  (default 200)\n"
      "  --drain US      settle time after the window    (default 200)\n"
      "  --payload B     packet payload bytes, >= 8      (default 16)\n"
      "\n"
      "faults (src/fault):\n"
      "  --fault-seed N                FaultPlan rng seed (default 1)\n"
      "  --fault-corrupt NODE:DIR:RATE corrupt tokens on node's DIR link\n"
      "  --fault-kill NODE:DIR:AT_US   permanently kill a link at AT_US\n"
      "\n"
      "observability (src/obs):\n"
      "  --metrics FILE  metrics registry JSON (load.* SLO instruments)\n"
      "  --trace FILE    Chrome/Perfetto trace-event JSON\n"
      "\n"
      "checkpoint/resume (src/snap; service workloads only —\n"
      "synthetic traffic refuses to snapshot by design):\n"
      "  --checkpoint-every US  write a snapshot every US simulated us\n"
      "  --checkpoint-dir DIR   checkpoint rotation directory\n"
      "  --checkpoint-keep N    snapshots kept in rotation (default 3)\n"
      "  --resume auto|FILE     restore and continue the load run\n"
      "\n"
      "run control / reports:\n"
      "  --time MS       simulated time limit in ms      (default 2000)\n"
      "  --step US       host chop granularity           (default 50)\n"
      "  --report FILE   also write the load_json block to FILE\n"
      "  --no-shutdown   leave the service kernels running at exit\n"
      "  --help, -h      this message\n");
}

struct LinkRef {
  swallow::NodeId node = 0;
  int direction = 0;
  std::string rest;
};

LinkRef parse_link_ref(const std::string& v) {
  const auto c1 = v.find(':');
  swallow::require(c1 != std::string::npos, "expected NODE:DIR:VALUE");
  const auto c2 = v.find(':', c1 + 1);
  swallow::require(c2 != std::string::npos, "expected NODE:DIR:VALUE");
  LinkRef ref;
  ref.node =
      static_cast<swallow::NodeId>(swallow::parse_int(v.substr(0, c1)));
  ref.direction =
      static_cast<int>(swallow::parse_int(v.substr(c1 + 1, c2 - c1 - 1)));
  swallow::require(ref.direction >= 0 && ref.direction < 4,
                   "link direction must be 0..3 (N/E/S/W)");
  ref.rest = v.substr(c2 + 1);
  return ref;
}

// Mirror of swallow_run's resume helper, with the load config folded into
// the expected hash (a snapshot of a load run only restores into the same
// workload).
bool resume_snapshot(const std::string& resume, const std::string& dir,
                     const swallow::SnapTargets& targets) {
  using namespace swallow;
  std::vector<std::string> candidates;
  if (resume == "auto") {
    if (dir.empty()) throw Error("--resume auto needs --checkpoint-dir");
    candidates = list_checkpoints(dir);
    if (candidates.empty()) {
      std::fprintf(stderr, "resume: no checkpoints in %s\n", dir.c_str());
      return false;
    }
  } else {
    candidates.push_back(resume);
  }
  const std::uint64_t expect = snapshot_config_hash(
      targets.system->config(),
      targets.fault != nullptr ? &targets.fault->plan() : nullptr,
      targets.obs != nullptr ? &targets.obs->config() : nullptr,
      targets.load != nullptr ? &targets.load->config() : nullptr);
  for (const std::string& path : candidates) {
    SnapshotFile f;
    try {
      f = SnapshotFile::read_file(path);
      if (f.config_hash != expect) {
        throw SnapError(SnapError::Code::kConfigMismatch,
                        "snapshot was taken under a different machine or "
                        "load configuration than this command line rebuilds");
      }
    } catch (const SnapError& e) {
      std::fprintf(stderr, "resume: refused %s [%s]: %s\n", path.c_str(),
                   e.code_name(), e.what());
      continue;
    }
    try {
      restore_machine(f, targets);
    } catch (const SnapError& e) {
      std::fprintf(stderr, "resume: %s failed mid-restore [%s]: %s\n",
                   path.c_str(), e.code_name(), e.what());
      return false;
    }
    std::fprintf(stderr, "resume: restored %s (t = %.3f ms)\n", path.c_str(),
                 to_seconds(targets.system->now()) * 1e3);
    return true;
  }
  std::fprintf(stderr, "resume: no restorable checkpoint found\n");
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swallow;

  SystemConfig cfg;
  cfg.ethernet_bridges = 1;
  LoadConfig lcfg;
  SyntheticConfig scfg;
  bool synthetic = false;
  bool rate_given = false;
  double limit_ms = 2000.0;
  long long step_us = 50;
  long long window_us = 200;
  long long drain_us = 200;
  bool do_shutdown = true;
  std::string metrics_path, trace_path, report_path;
  FaultPlan plan;
  bool have_faults = false;
  long long ckpt_every_us = 0;
  std::string ckpt_dir;
  int ckpt_keep = 3;
  std::string resume_from;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw Error("missing value for " + arg);
      return argv[++i];
    };
    try {
      if (arg == "--slices") {
        const std::string v = next();
        const auto x = v.find('x');
        require(x != std::string::npos, "--slices expects WxH");
        cfg.slices_x = static_cast<int>(parse_int(v.substr(0, x)));
        cfg.slices_y = static_cast<int>(parse_int(v.substr(x + 1)));
      } else if (arg == "--jobs") {
        cfg.jobs = static_cast<int>(parse_int(next()));
      } else if (arg == "--freq") {
        cfg.core_freq = static_cast<MegaHertz>(parse_int(next()));
      } else if (arg == "--bridges") {
        cfg.ethernet_bridges = static_cast<int>(parse_int(next()));
      } else if (arg == "--grade-max") {
        cfg.link_grade = LinkGrade::kArchitecturalMax;
      } else if (arg == "--reliable") {
        cfg.reliable_links = true;
      } else if (arg == "--workload") {
        const std::string v = next();
        if (v == "farm") {
          lcfg.workload = LoadWorkload::kFarm;
        } else if (v == "scatter") {
          lcfg.workload = LoadWorkload::kScatterGather;
        } else if (v == "pipeline") {
          lcfg.workload = LoadWorkload::kPipeline;
        } else if (v == "synthetic") {
          synthetic = true;
        } else {
          throw Error("--workload expects farm|scatter|pipeline|synthetic");
        }
      } else if (arg == "--requests") {
        lcfg.requests = static_cast<std::uint64_t>(parse_int(next()));
      } else if (arg == "--closed") {
        lcfg.closed_loop = true;
        lcfg.concurrency = static_cast<int>(parse_int(next()));
      } else if (arg == "--open") {
        lcfg.closed_loop = false;
      } else if (arg == "--arrivals") {
        const std::string v = next();
        if (v == "poisson") {
          lcfg.arrivals.kind = ArrivalKind::kPoisson;
        } else if (v == "uniform") {
          lcfg.arrivals.kind = ArrivalKind::kUniform;
        } else if (v == "burst") {
          lcfg.arrivals.kind = ArrivalKind::kBurst;
        } else {
          throw Error("--arrivals expects poisson|uniform|burst");
        }
      } else if (arg == "--rate") {
        char* end = nullptr;
        const std::string v = next();
        const double r = std::strtod(v.c_str(), &end);
        require(end != v.c_str() && r > 0.0, "--rate must be positive");
        lcfg.arrivals.rate_rps = r;
        scfg.rate_pps = r;
        rate_given = true;
      } else if (arg == "--burst") {
        lcfg.arrivals.burst_size = static_cast<int>(parse_int(next()));
        require(lcfg.arrivals.burst_size > 0, "--burst must be positive");
      } else if (arg == "--work") {
        lcfg.service_work = static_cast<std::uint64_t>(parse_int(next()));
      } else if (arg == "--fanout") {
        lcfg.scatter_fanout = static_cast<int>(parse_int(next()));
        require(lcfg.scatter_fanout >= 1, "--fanout must be >= 1");
      } else if (arg == "--stages") {
        lcfg.pipeline_stages = static_cast<int>(parse_int(next()));
      } else if (arg == "--groups") {
        lcfg.groups_per_bridge = static_cast<int>(parse_int(next()));
      } else if (arg == "--ingress-cap") {
        lcfg.ingress_capacity =
            static_cast<std::size_t>(parse_int(next()));
      } else if (arg == "--seed") {
        lcfg.seed = static_cast<std::uint64_t>(parse_int(next()));
        scfg.seed = lcfg.seed;
      } else if (arg == "--pattern") {
        scfg.pattern = parse_traffic_pattern(next());
      } else if (arg == "--window") {
        window_us = parse_int(next());
        require(window_us > 0, "--window must be positive");
      } else if (arg == "--drain") {
        drain_us = parse_int(next());
        require(drain_us >= 0, "--drain must be >= 0");
      } else if (arg == "--payload") {
        scfg.payload_bytes = static_cast<std::size_t>(parse_int(next()));
      } else if (arg == "--fault-seed") {
        plan.seed = static_cast<std::uint64_t>(parse_int(next()));
      } else if (arg == "--fault-corrupt") {
        const LinkRef ref = parse_link_ref(next());
        char* end = nullptr;
        const double rate = std::strtod(ref.rest.c_str(), &end);
        require(end != ref.rest.c_str() && rate >= 0.0 && rate <= 1.0,
                "--fault-corrupt rate must be a probability in [0, 1]");
        plan.corrupt_link(ref.node, ref.direction, rate);
        have_faults = true;
      } else if (arg == "--fault-kill") {
        const LinkRef ref = parse_link_ref(next());
        plan.kill_link(ref.node, ref.direction,
                       microseconds(static_cast<double>(parse_int(ref.rest))));
        have_faults = true;
      } else if (arg == "--metrics") {
        metrics_path = next();
      } else if (arg == "--trace") {
        trace_path = next();
      } else if (arg == "--checkpoint-every") {
        ckpt_every_us = parse_int(next());
        require(ckpt_every_us > 0, "--checkpoint-every must be positive");
      } else if (arg == "--checkpoint-dir") {
        ckpt_dir = next();
      } else if (arg == "--checkpoint-keep") {
        ckpt_keep = static_cast<int>(parse_int(next()));
        require(ckpt_keep >= 1, "--checkpoint-keep must be at least 1");
      } else if (arg == "--resume") {
        resume_from = next();
        require(!resume_from.empty(), "--resume expects auto or a file");
      } else if (arg == "--time") {
        limit_ms = static_cast<double>(parse_int(next()));
      } else if (arg == "--step") {
        step_us = parse_int(next());
        require(step_us > 0, "--step must be positive");
      } else if (arg == "--report") {
        report_path = next();
      } else if (arg == "--no-shutdown") {
        do_shutdown = false;
      } else if (arg == "--help" || arg == "-h") {
        usage();
        return 0;
      } else {
        std::fprintf(stderr, "unknown option %s\n", arg.c_str());
        return 2;
      }
    } catch (const Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }

  try {
    TraceConfig tcfg;
    tcfg.tracing = !trace_path.empty();
    tcfg.metrics = !metrics_path.empty();
    TraceSession session(tcfg);

    Simulator sim;
    SwallowSystem sys(sim, cfg);
    if (session.active()) sys.attach_observability(session);

    if (synthetic) {
      require(resume_from.empty() && ckpt_every_us == 0,
              "synthetic traffic cannot checkpoint or resume: its injection "
              "ticks are deliberately undescribed events (docs/load.md)");
      if (!rate_given) scfg.rate_pps = 1e6;
      SyntheticTraffic traffic(sys, scfg);
      traffic.deploy();
      sys.start_sampling();
      traffic.arm(microseconds(static_cast<double>(window_us)));
      const TimePs until =
          sys.now() + microseconds(static_cast<double>(window_us + drain_us));
      while (sys.now() < until) {
        sys.run_until(sys.now() +
                      microseconds(static_cast<double>(step_us)));
      }
      if (session.active()) sys.finish_observability();
      const std::string report = traffic.report_json();
      std::printf("load_json: %s\n", report.c_str());
      if (!report_path.empty()) write_file(report_path, report + "\n");
      if (!metrics_path.empty()) {
        write_file(metrics_path, session.metrics().dump_json());
      }
      if (!trace_path.empty()) write_file(trace_path, session.chrome_json());
      return traffic.delivered() > 0 ? 0 : 1;
    }

    const bool resuming = !resume_from.empty();
    std::unique_ptr<FaultInjector> injector;
    if (have_faults) {
      injector = std::make_unique<FaultInjector>(sys, plan);
      if (!resuming) injector->arm();
    }

    LoadGenerator gen(sys, lcfg);
    gen.deploy(resuming);
    if (session.active()) gen.attach_metrics(session.metrics());

    const SnapTargets targets{&sys, session.active() ? &session : nullptr,
                              injector.get(), &gen};
    if (resuming) {
      if (!resume_snapshot(resume_from, ckpt_dir, targets)) return 1;
    } else {
      sys.start_sampling();
      gen.arm();
    }

    const TimePs limit = milliseconds(limit_ms);
    const TimePs step = microseconds(static_cast<double>(step_us));
    const bool checkpointing = ckpt_every_us > 0;
    if (checkpointing) {
      require(!ckpt_dir.empty(), "--checkpoint-every needs --checkpoint-dir");
      std::filesystem::create_directories(ckpt_dir);
    }
    const TimePs every =
        checkpointing ? microseconds(static_cast<double>(ckpt_every_us)) : 0;
    TimePs t = sys.now();
    TimePs next_ckpt = checkpointing ? (t / every + 1) * every : 0;
    while (t < limit && !gen.done()) {
      TimePs chop = t + step;
      if (checkpointing && next_ckpt < chop) chop = next_ckpt;
      t = chop;
      sys.run_until(t);
      if (checkpointing && t >= next_ckpt) {
        save_machine(targets).write_file(checkpoint_path(
            ckpt_dir, static_cast<std::uint64_t>(t / every)));
        prune_checkpoints(ckpt_dir, ckpt_keep);
        next_ckpt += every;
      }
    }
    if (session.active()) sys.finish_observability();

    const std::string report = gen.report_json();
    std::printf("load_json: %s\n", report.c_str());
    if (!report_path.empty()) write_file(report_path, report + "\n");
    if (!metrics_path.empty()) {
      write_file(metrics_path, session.metrics().dump_json());
    }
    if (!trace_path.empty()) write_file(trace_path, session.chrome_json());

    bool failed = false;
    if (!gen.done()) {
      std::fprintf(stderr,
                   "swallow_load: time limit at %.3f ms with %llu of %llu "
                   "requests completed\n",
                   to_seconds(sys.now()) * 1e3,
                   static_cast<unsigned long long>(gen.completed()),
                   static_cast<unsigned long long>(lcfg.requests));
      failed = true;
    }
    if (gen.mismatches() > 0) {
      std::fprintf(stderr, "swallow_load: %llu reply mismatches\n",
                   static_cast<unsigned long long>(gen.mismatches()));
      failed = true;
    }
    if (do_shutdown && gen.done()) {
      gen.shutdown(step, microseconds(100.0));
    }
    return failed ? 1 : 0;
  } catch (const SnapError& e) {
    std::fprintf(stderr, "snapshot error [%s]: %s\n", e.code_name(), e.what());
    return 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
