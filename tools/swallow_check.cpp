// swallow_check: differential conformance checker (src/check/,
// docs/testing.md).
//
//   swallow_check --seeds 500          sweep seeds 1..500
//   swallow_check --seed  123          one seed, verbose
//   swallow_check --repro FILE         re-run a saved repro file
//
// Each seed generates a typed random workload (single-core compute-only,
// or 2/4 cores with matched channel traffic across the 2x2-slice machine)
// and runs it under every engine configuration — --jobs {0,1,2,4} x
// tracing {on,off} x seeded fault plan {on,off} — cross-checking
// architectural state, retired counts, console output, energy ledgers,
// trace JSON and wire token conservation, plus the golden reference
// interpreter for single-core programs.  On divergence the failing
// program is delta-shrunk to a minimal repro file with the exact re-run
// command, and the tool exits 1.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/differ.h"
#include "check/progen.h"
#include "check/ref_isa.h"
#include "check/shrink.h"
#include "check/snapdiff.h"
#include "common/error.h"
#include "common/strings.h"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw swallow::Error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw swallow::Error("cannot write " + path);
  out << body;
}

void usage() {
  std::printf(
      "usage: swallow_check [options]\n"
      "\n"
      "workload:\n"
      "  --seeds N          sweep seeds first..first+N-1   (default 50)\n"
      "  --first-seed S     first seed of the sweep        (default 1)\n"
      "  --seed S           check exactly one seed\n"
      "  --repro FILE       re-run a saved repro file instead of generating\n"
      "\n"
      "matrix:\n"
      "  --jobs LIST        comma list of worker counts    (default 0,1,2,4)\n"
      "  --no-trace         drop the tracing-on runs\n"
      "  --no-faults        drop the fault-plan runs\n"
      "  --time-cap MS      per-run simulated time cap     (default 20)\n"
      "  --sync-sweep       add the bounded-sync column: per-chip domain\n"
      "                     runs (sequential / exact / bounded:0, strict\n"
      "                     bit-identity) plus fault-free bounded:N drift\n"
      "                     runs checked for architectural convergence and\n"
      "                     bounded energy drift\n"
      "  --sync-bounds LIST comma list of bounded-sync N values (default\n"
      "                     16,64; implies --sync-sweep)\n"
      "\n"
      "snapshot modes (src/snap, docs/testing.md):\n"
      "  --snap-roundtrip   for each seed and each --jobs value, prove\n"
      "                     run-to-T / snapshot / restore / run-to-2T is\n"
      "                     bit-identical to an uninterrupted run to 2T\n"
      "  --time-bisect      checkpoint a reference and a divergence-planted\n"
      "                     run every --interval-us, then binary-search the\n"
      "                     state digests to localise the divergence to one\n"
      "                     interval (self-test of the bisection workflow)\n"
      "  --interval-us US   bisect checkpoint cadence       (default 50)\n"
      "  --plant-at-us US   when the planted divergence fires (default 730)\n"
      "  --horizon-us US    bisect run length               (default 2000)\n"
      "\n"
      "failure handling:\n"
      "  --no-shrink        report the divergence without minimising it\n"
      "  --out DIR          directory for repro files      (default .)\n"
      "  --inject-ref-bug   plant a known bug in the golden model; the\n"
      "                     sweep must then FIND it (harness self-test)\n"
      "  --help, -h         this message\n"
      "\n"
      "exit status: 0 = all seeds agree, 1 = divergence found.\n");
}

std::vector<int> parse_jobs(const std::string& arg) {
  std::vector<int> jobs;
  std::size_t pos = 0;
  while (pos < arg.size()) {
    std::size_t comma = arg.find(',', pos);
    if (comma == std::string::npos) comma = arg.size();
    jobs.push_back(std::atoi(arg.substr(pos, comma - pos).c_str()));
    pos = comma + 1;
  }
  if (jobs.empty()) throw swallow::Error("--jobs: empty list");
  return jobs;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swallow;

  std::uint64_t seeds = 50;
  std::uint64_t first_seed = 1;
  bool single_seed = false;
  std::string repro_path;
  std::string out_dir = ".";
  bool do_shrink = true;
  bool dump = false;
  bool snap_mode = false;
  bool bisect_mode = false;
  long long interval_us = 50;
  long long plant_at_us = 730;
  long long horizon_us = 2000;
  DifferOptions opts;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw Error(a + ": missing argument");
        return argv[++i];
      };
      if (a == "--seeds") {
        seeds = std::strtoull(next().c_str(), nullptr, 10);
      } else if (a == "--first-seed") {
        first_seed = std::strtoull(next().c_str(), nullptr, 10);
      } else if (a == "--seed") {
        first_seed = std::strtoull(next().c_str(), nullptr, 10);
        seeds = 1;
        single_seed = true;
      } else if (a == "--repro") {
        repro_path = next();
      } else if (a == "--jobs") {
        opts.jobs = parse_jobs(next());
      } else if (a == "--no-trace") {
        opts.with_tracing = false;
      } else if (a == "--no-faults") {
        opts.with_faults = false;
      } else if (a == "--time-cap") {
        opts.time_cap = milliseconds(std::atof(next().c_str()));
      } else if (a == "--sync-sweep") {
        opts.with_sync = true;
      } else if (a == "--sync-bounds") {
        opts.sync_bounds = parse_jobs(next());
        opts.with_sync = true;
      } else if (a == "--snap-roundtrip") {
        snap_mode = true;
      } else if (a == "--time-bisect") {
        bisect_mode = true;
      } else if (a == "--interval-us") {
        interval_us = std::strtoll(next().c_str(), nullptr, 10);
        if (interval_us <= 0) throw Error("--interval-us must be positive");
      } else if (a == "--plant-at-us") {
        plant_at_us = std::strtoll(next().c_str(), nullptr, 10);
      } else if (a == "--horizon-us") {
        horizon_us = std::strtoll(next().c_str(), nullptr, 10);
        if (horizon_us <= 0) throw Error("--horizon-us must be positive");
      } else if (a == "--no-shrink") {
        do_shrink = false;
      } else if (a == "--out") {
        out_dir = next();
      } else if (a == "--dump") {
        dump = true;
      } else if (a == "--inject-ref-bug") {
        opts.inject_ref_bug = kRefBugAddOddOperands;
      } else if (a == "--help" || a == "-h") {
        usage();
        return 0;
      } else {
        std::fprintf(stderr, "swallow_check: unknown flag '%s'\n", a.c_str());
        usage();
        return 2;
      }
    }

    // ---- snapshot round-trip mode ----
    if (snap_mode) {
      std::uint64_t tested = 0;
      for (std::uint64_t seed = first_seed; seed < first_seed + seeds;
           ++seed) {
        const SourceSet sources = render_sources(differ_generate(seed));
        for (int jobs : opts.jobs) {
          for (int f = 0; f <= (opts.with_faults ? 1 : 0); ++f) {
            SnapRoundtripOptions ropts;
            ropts.jobs = jobs;
            ropts.tracing = opts.with_tracing;
            ropts.faults = f == 1;
            const std::string diff = snap_roundtrip(sources, ropts);
            ++tested;
            if (!diff.empty()) {
              std::printf(
                  "seed %llu jobs %d faults %d: ROUNDTRIP DIVERGED: %s\n",
                  static_cast<unsigned long long>(seed), jobs, f,
                  diff.c_str());
              return 1;
            }
          }
        }
      }
      std::printf(
          "%llu snapshot round-trip(s) bit-identical (seeds %llu..%llu, "
          "jobs {%s}%s%s).\n",
          static_cast<unsigned long long>(tested),
          static_cast<unsigned long long>(first_seed),
          static_cast<unsigned long long>(first_seed + seeds - 1),
          [&] {
            std::string list;
            for (int j : opts.jobs) {
              if (!list.empty()) list += ",";
              list += std::to_string(j);
            }
            return list;
          }()
              .c_str(),
          opts.with_faults ? ", faults on/off" : "",
          opts.with_tracing ? ", traced" : "");
      return 0;
    }

    // ---- time-bisection mode ----
    if (bisect_mode) {
      const SourceSet sources = render_sources(differ_generate(first_seed));
      TimeBisectOptions bopts;
      bopts.jobs = opts.jobs.front();
      bopts.faults = opts.with_faults;
      bopts.interval = microseconds(static_cast<double>(interval_us));
      bopts.horizon = microseconds(static_cast<double>(horizon_us));
      bopts.plant_at = microseconds(static_cast<double>(plant_at_us));
      const TimeBisectResult r = time_bisect(sources, bopts);
      if (!r.diverged) {
        std::printf("no divergence across %d checkpoints.\n", r.checkpoints);
        // A planted divergence the bisection cannot see is a harness bug.
        return bopts.plant_at > 0 ? 1 : 0;
      }
      std::printf(
          "divergence localised to (%lld us, %lld us] with %d digest "
          "probe(s) over %d checkpoints\n",
          static_cast<long long>(r.lo / microseconds(1.0)),
          static_cast<long long>(r.hi / microseconds(1.0)), r.probes,
          r.checkpoints);
      if (bopts.plant_at > 0) {
        // The plant fires at the first chop point >= plant_at, so the
        // found interval must contain that instant.
        if (bopts.plant_at <= r.lo || bopts.plant_at > r.hi) {
          std::printf("FAILED: divergence was planted at %lld us, outside "
                      "the found interval\n",
                      static_cast<long long>(plant_at_us));
          return 1;
        }
        std::printf("planted at %lld us: localised to within one "
                    "checkpoint interval.\n",
                    static_cast<long long>(plant_at_us));
      }
      return 0;
    }

    // ---- repro mode ----
    if (!repro_path.empty()) {
      const SourceSet s = parse_repro(read_file(repro_path));
      std::printf("re-running repro %s (seed %llu, %zu core(s))...\n",
                  repro_path.c_str(),
                  static_cast<unsigned long long>(s.seed), s.sources.size());
      const DiffResult d = run_differential(s, opts);
      if (d.diverged()) {
        std::printf("DIVERGENCE: %s\n", d.divergence.c_str());
        return 1;
      }
      std::printf("repro agrees across %zu configurations.\n",
                  d.runs.size());
      return 0;
    }

    // ---- sweep mode ----
    std::uint64_t checked = 0;
    for (std::uint64_t seed = first_seed; seed < first_seed + seeds; ++seed) {
      const GenProgram prog = differ_generate(seed);
      const SourceSet sources = render_sources(prog);
      if (dump) std::fputs(format_repro(sources, "").c_str(), stdout);
      DiffResult d = run_differential(sources, opts);
      ++checked;
      if (single_seed) {
        std::printf("seed %llu: %zu core(s), %zu unit(s), %zu run(s), %s\n",
                    static_cast<unsigned long long>(seed),
                    sources.sources.size(), prog.units.size(), d.runs.size(),
                    d.diverged() ? "DIVERGED" : "agree");
      } else if (checked % 50 == 0) {
        std::printf("...%llu/%llu seeds agree\n",
                    static_cast<unsigned long long>(checked),
                    static_cast<unsigned long long>(seeds));
        std::fflush(stdout);
      }
      if (!d.diverged()) continue;

      std::printf("seed %llu DIVERGED: %s\n",
                  static_cast<unsigned long long>(seed),
                  d.divergence.c_str());

      SourceSet repro = sources;
      std::string divergence = d.divergence;
      if (do_shrink) {
        ShrinkOptions sopts;
        sopts.differ = opts;
        const ShrinkResult sr = shrink_program(prog, sopts);
        if (sr.reproduced) {
          repro = sr.sources;
          divergence = sr.divergence;
          std::printf(
              "shrunk to %d instruction(s) in %d differential run(s)\n",
              sr.instruction_count, sr.attempts);
        }
      }

      const std::string path = strprintf(
          "%s/swallow_check_repro_seed%llu.s", out_dir.c_str(),
          static_cast<unsigned long long>(seed));
      write_file(path, format_repro(repro, divergence));
      std::printf("repro written: %s\n", path.c_str());
      std::printf("re-run with: swallow_check --repro %s%s%s\n", path.c_str(),
                  opts.with_faults ? "" : " --no-faults",
                  opts.inject_ref_bug != kRefBugNone ? " --inject-ref-bug"
                                                     : "");
      return 1;
    }
    std::printf("%llu seed(s) agree across the full configuration matrix.\n",
                static_cast<unsigned long long>(checked));
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "swallow_check: %s\n", e.what());
    return 2;
  }
}
