// bench_json: machine-readable engine benchmark.
//
//   bench_json [--slices WxH] [--time MS] [--jobs N[,N...]]
//
// Runs one fixed workload — a pipeline threaded through every slice of the
// grid, with ADC sampling keeping each event domain busy — once on the
// sequential reference engine and once per requested worker count on the
// parallel engine, and prints a JSON object with wall-clock seconds and
// simulated core-cycles per wall second for each run, plus parallel
// speedups over sequential.  CI redirects this into BENCH_PR2.json.
//
// The "tracing" section re-runs the sequential workload with no
// observability session (the instrumented hot paths cost one null-pointer
// test each) and with a full trace+metrics+profile session attached, and
// reports the overhead of each — CI redirects this into BENCH_PR3.json.
//
// The "attribution" section re-runs the traced workload with the energy
// attribution sink additionally mirroring every ledger charge into
// (core, thread, function) buckets, and reports its cost over the
// trace-only session — CI redirects this into BENCH_PR8.json.
//
// The "load" section drives the production-traffic subsystem (src/load/)
// end to end — a closed-loop request/response farm injected through the
// Ethernet bridges — and reports requests completed per wall second and
// simulated MIPS under load; CI redirects this into BENCH_PR9.json and
// the perf ratchet re-measures it with --load-only.
//
// The "sync_json" section measures the relaxed-sync engine (--sync
// bounded:N at per-chip granularity): wall-clock speedup over exact
// conservative sync and the measured drift per bound at 16/64/480 cores;
// the nightly drift sweep re-measures it with --sync-only and CI commits
// it as BENCH_PR10.json.
//
// The engines are bit-identical (tests/parallel_test.cpp), so every run
// also cross-checks total retired instructions and aborts on mismatch —
// a benchmark that quietly diverged would be measuring a different machine.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "api/patterns.h"
#include "api/taskgen.h"
#include "arch/assembler.h"
#include "bench/bench_util.h"
#include "board/system.h"
#include "common/error.h"
#include "load/load.h"
#include "obs/trace.h"
#include "common/strings.h"
#include "sim/simulator.h"
#include "snap/machine.h"
#include "snap/snapfile.h"

namespace {

struct BenchResult {
  int jobs = 0;
  double wall_s = 0;
  double sim_ms = 0;
  double cycles_per_sec = 0;  // simulated 500 MHz core cycles / wall second
  std::uint64_t instructions = 0;
  std::uint64_t quanta = 0;
  std::uint64_t trace_events = 0;
  std::uint64_t attr_buckets = 0;
  double ckpt_write_s = 0;      // total wall time spent in save+write
  std::uint64_t ckpt_bytes = 0; // on-disk size of the last snapshot
};

BenchResult run_bench(int slices_x, int slices_y, double limit_ms, int jobs,
                      bool traced = false, int checkpoints = 0,
                      bool energy = false) {
  using namespace swallow;
  Simulator sim;
  SystemConfig cfg;
  cfg.slices_x = slices_x;
  cfg.slices_y = slices_y;
  cfg.jobs = jobs;
  TraceConfig tcfg;
  tcfg.tracing = tcfg.metrics = tcfg.profile = traced;
  tcfg.energy = energy;
  TraceSession session(tcfg);
  SwallowSystem sys(sim, cfg);
  if (traced) sys.attach_observability(session);
  sys.start_sampling();

  // One pipeline stage per slice (round-robin over the grid) keeps every
  // event domain busy and pushes traffic across every domain boundary.
  AppBuilder app(sys);
  PipelineConfig pcfg;
  pcfg.stages = 2 * slices_x * slices_y;
  pcfg.items = 48;
  pcfg.work_per_item = 2000;
  pcfg.bytes_per_item = 64;
  std::vector<Placement> places;
  for (int i = 0; i < pcfg.stages; ++i) {
    const int s = i % (slices_x * slices_y);
    const int sx = s % slices_x;
    const int sy = s / slices_x;
    places.push_back(Placement{sx * Slice::kChipCols + (i / (slices_x * slices_y)) % Slice::kChipCols,
                               sy * Slice::kChipRows,
                               Layer::kHorizontal});
  }
  build_pipeline(app, pcfg, places);
  app.start();

  double ckpt_write_s = 0;
  std::uint64_t ckpt_bytes = 0;
  const auto t0 = std::chrono::steady_clock::now();
  if (checkpoints <= 0) {
    sys.run_until(milliseconds(limit_ms));
  } else {
    // Same total simulated span, chopped so `checkpoints` snapshots hit
    // the full crash-safe write path (encode + tmp + fsync + rename).
    const std::string dir =
        (std::filesystem::temp_directory_path() / "swallow_bench_ckpt")
            .string();
    std::filesystem::create_directories(dir);
    const TimePs limit = milliseconds(limit_ms);
    const SnapTargets targets{&sys, traced ? &session : nullptr, nullptr};
    for (int k = 1; k <= checkpoints + 1; ++k) {
      sys.run_until(limit * k / (checkpoints + 1));
      if (k > checkpoints) break;
      const auto w0 = std::chrono::steady_clock::now();
      const std::string path =
          checkpoint_path(dir, static_cast<std::uint64_t>(k));
      save_machine(targets).write_file(path);
      const auto w1 = std::chrono::steady_clock::now();
      ckpt_write_s += std::chrono::duration<double>(w1 - w0).count();
      ckpt_bytes = static_cast<std::uint64_t>(
          std::filesystem::file_size(path));
    }
    prune_checkpoints(dir, 0);
  }
  if (traced) sys.finish_observability();
  const auto t1 = std::chrono::steady_clock::now();

  BenchResult r;
  r.ckpt_write_s = ckpt_write_s;
  r.ckpt_bytes = ckpt_bytes;
  if (traced) r.trace_events = session.events().size();
  if (energy) {
    const std::string folded = session.energy_attribution().folded();
    r.attr_buckets = static_cast<std::uint64_t>(
        std::count(folded.begin(), folded.end(), '\n'));
  }
  r.jobs = jobs;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.sim_ms = to_seconds(sys.now()) * 1e3;
  // Simulated machine cycles delivered per wall second: one 500 MHz core
  // cycle is 2000 ps; the machine has core_count() cores running at once.
  const double cycles =
      to_seconds(sys.now()) * cfg.core_freq * 1e6 * sys.core_count();
  r.cycles_per_sec = r.wall_s > 0 ? cycles / r.wall_s : 0;
  for (int i = 0; i < sys.core_count(); ++i) {
    r.instructions += sys.core_by_index(i).instructions_retired();
  }
  if (sys.parallel()) r.quanta = sys.engine()->stats().quanta;
  return r;
}

// One interpreter hot-path measurement: simulated MIPS (retired
// instructions per wall second) on a fixed workload at a given issue batch
// bound.  core_batch = 1 is the historical one-event-per-instruction
// engine; the default is the shipping batched path.  The two are
// bit-identical (the differential checker proves it), so retired counts
// must match exactly between them.
struct MipsResult {
  double wall_s = 0;
  std::uint64_t retired = 0;
  std::uint64_t events = 0;  // queue dispatches (shows the elision factor)
  double sim_mips = 0;
};

MipsResult run_sim_mips_once(int slices_x, int slices_y, double window_ms,
                             int core_batch, bool ring) {
  using namespace swallow;
  Simulator sim;
  SystemConfig cfg;
  cfg.slices_x = slices_x;
  cfg.slices_y = slices_y;
  cfg.core_batch = core_batch;
  SwallowSystem sys(sim, cfg);
  if (ring) {
    bench::load_ring(sys, 2000);
  } else {
    bench::load_all_spinning(sys, 4);
  }
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t events = sys.run_until(milliseconds(window_ms));
  const auto t1 = std::chrono::steady_clock::now();
  MipsResult r;
  r.events = events;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  for (int i = 0; i < sys.core_count(); ++i) {
    r.retired += sys.core_by_index(i).instructions_retired();
  }
  r.sim_mips = r.wall_s > 0 ? static_cast<double>(r.retired) / r.wall_s / 1e6
                            : 0.0;
  return r;
}

// Best-of-3 wall time: the measurement windows are a few milliseconds, so
// a single scheduler hiccup can halve a reported speedup.  Retired/event
// counts are deterministic across repeats (the simulation itself never
// varies), so only the timing is taken from the fastest run.
MipsResult run_sim_mips(int slices_x, int slices_y, double window_ms,
                        int core_batch, bool ring) {
  MipsResult best =
      run_sim_mips_once(slices_x, slices_y, window_ms, core_batch, ring);
  for (int rep = 1; rep < 3; ++rep) {
    const MipsResult r =
        run_sim_mips_once(slices_x, slices_y, window_ms, core_batch, ring);
    if (r.retired != best.retired || r.events != best.events) {
      std::fprintf(stderr,
                   "sim_mips: nondeterministic repeat (retired %llu vs %llu)\n",
                   static_cast<unsigned long long>(r.retired),
                   static_cast<unsigned long long>(best.retired));
      std::exit(1);
    }
    if (r.wall_s < best.wall_s) best = r;
  }
  return best;
}

void print_result(const char* key, const BenchResult& r, bool last) {
  std::printf(
      "  \"%s\": {\"jobs\": %d, \"wall_s\": %.6f, \"sim_ms\": %.3f, "
      "\"sim_cycles_per_sec\": %.0f, \"instructions\": %llu, "
      "\"quanta\": %llu}%s\n",
      key, r.jobs, r.wall_s, r.sim_ms, r.cycles_per_sec,
      static_cast<unsigned long long>(r.instructions),
      static_cast<unsigned long long>(r.quanta), last ? "" : ",");
}

// The PR7 KPI: interpreter throughput, stepped (core_batch=1) vs batched
// (shipping default), on the paper's 30-slice / 480-core machine.  The
// ring workload is the batched path's best case (empty queue during each
// compute hold); the dense all-spinning load is its worst (every batch
// chops at a concurrent peer's issue event, leaving only the predecode
// and ready-mask wins).  Returns false on stepped/batched divergence.
bool print_sim_mips_section(bool last) {
  const int kx = 5, ky = 6;  // 30 slices, 480 cores
  const MipsResult ring_step = run_sim_mips(kx, ky, 2.0, 1, true);
  const MipsResult ring_batch = run_sim_mips(
      kx, ky, 2.0, swallow::SystemConfig{}.core_batch, true);
  const MipsResult dense_step = run_sim_mips(kx, ky, 0.03, 1, false);
  const MipsResult dense_batch = run_sim_mips(
      kx, ky, 0.03, swallow::SystemConfig{}.core_batch, false);
  if (ring_step.retired != ring_batch.retired ||
      dense_step.retired != dense_batch.retired) {
    std::fprintf(stderr,
                 "batched/stepped divergence: ring %llu vs %llu, dense %llu "
                 "vs %llu instructions\n",
                 static_cast<unsigned long long>(ring_step.retired),
                 static_cast<unsigned long long>(ring_batch.retired),
                 static_cast<unsigned long long>(dense_step.retired),
                 static_cast<unsigned long long>(dense_batch.retired));
    return false;
  }
  auto row = [](const char* key, const MipsResult& step,
                const MipsResult& batch, bool row_last) {
    std::printf(
        "    \"%s\": {\"instructions\": %llu, \"stepped_events\": %llu, "
        "\"batched_events\": %llu, \"stepped_wall_s\": %.6f, "
        "\"batched_wall_s\": %.6f, \"stepped_sim_mips\": %.3f, "
        "\"batched_sim_mips\": %.3f, \"speedup\": %.3f}%s\n",
        key, static_cast<unsigned long long>(step.retired),
        static_cast<unsigned long long>(step.events),
        static_cast<unsigned long long>(batch.events), step.wall_s,
        batch.wall_s, step.sim_mips, batch.sim_mips,
        step.wall_s > 0 && batch.wall_s > 0 ? step.wall_s / batch.wall_s
                                            : 0.0,
        row_last ? "" : ",");
  };
  std::printf("  \"sim_mips\": {\n");
  std::printf("    \"grid\": \"%dx%d\", \"cores\": %d, \"batch\": %d,\n", kx,
              ky, kx * ky * swallow::Slice::kCores,
              swallow::SystemConfig{}.core_batch);
  row("ring", ring_step, ring_batch, false);
  row("dense", dense_step, dense_batch, true);
  std::printf("  }%s\n", last ? "" : ",");
  return true;
}

// One end-to-end run of the production-traffic subsystem: a closed-loop
// request/response farm on a fixed 2x2-slice grid (64 cores, 2 bridges),
// measured wall-to-wall from arm() to the chop where the last reply
// lands.  The load report itself (latency percentiles, per-request
// energy) is machine-deterministic, so runs on different engines must
// render byte-identical reports — that is the section's divergence check.
struct LoadBenchResult {
  int jobs = 0;
  double wall_s = 0;
  std::uint64_t completed = 0;
  std::uint64_t retired = 0;
  std::string report;  // the deterministic load_json block
};

LoadBenchResult run_load_bench(int jobs) {
  using namespace swallow;
  Simulator sim;
  SystemConfig cfg;
  cfg.slices_x = 2;
  cfg.slices_y = 2;
  cfg.jobs = jobs;
  cfg.ethernet_bridges = 2;
  SwallowSystem sys(sim, cfg);

  LoadConfig lcfg;
  lcfg.workload = LoadWorkload::kFarm;
  lcfg.requests = 2000;
  lcfg.concurrency = 16;
  lcfg.service_work = 200;
  lcfg.seed = 1;
  LoadGenerator gen(sys, lcfg);
  gen.deploy();
  sys.start_sampling();

  const auto t0 = std::chrono::steady_clock::now();
  gen.arm();
  gen.run_to_completion(microseconds(50.0), milliseconds(2000.0));
  const auto t1 = std::chrono::steady_clock::now();
  require(gen.done(), "load bench did not complete its request quota");
  require(gen.mismatches() == 0, "load bench saw reply mismatches");

  LoadBenchResult r;
  r.jobs = jobs;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.completed = gen.completed();
  r.report = gen.report_json();
  for (int i = 0; i < sys.core_count(); ++i) {
    r.retired += sys.core_by_index(i).instructions_retired();
  }
  return r;
}

// The PR9 KPI: wall-clock throughput of the full request path (host
// framing -> bridge pacing -> switch fabric -> NOS service -> reply) and
// the interpreter rate while the machine serves it.  Sequential best-of-2
// for the ratcheted numbers; one parallel run proves the report is
// engine-independent.  Returns false on divergence.
bool print_load_section(bool last) {
  LoadBenchResult seq = run_load_bench(0);
  const LoadBenchResult seq2 = run_load_bench(0);
  const LoadBenchResult par = run_load_bench(2);
  if (seq.report != seq2.report || seq.report != par.report) {
    std::fprintf(stderr,
                 "load report divergence across runs/engines (seq repeat "
                 "%s, jobs2 %s)\n",
                 seq.report == seq2.report ? "identical" : "DIFFERS",
                 seq.report == par.report ? "identical" : "DIFFERS");
    return false;
  }
  if (seq2.wall_s < seq.wall_s) seq.wall_s = seq2.wall_s;
  std::printf(
      "  \"load\": {\"grid\": \"2x2\", \"cores\": 64, \"bridges\": 2, "
      "\"requests\": %llu, \"closed_window\": 16, \"seq_wall_s\": %.6f, "
      "\"par2_wall_s\": %.6f, \"req_per_wall_s\": %.1f, "
      "\"sim_mips_under_load\": %.3f, \"reports_identical\": true}%s\n",
      static_cast<unsigned long long>(seq.completed), seq.wall_s, par.wall_s,
      seq.wall_s > 0 ? static_cast<double>(seq.completed) / seq.wall_s : 0.0,
      seq.wall_s > 0
          ? static_cast<double>(seq.retired) / seq.wall_s / 1e6
          : 0.0,
      last ? "" : ",");
  return true;
}

// ----- PR 10: bounded-sync KPI -----
//
// The "sync_json" section measures the relaxed-synchronization engine
// (SystemConfig::sync = kBounded, per-chip domains): wall-clock speedup of
// bounded:N over exact conservative sync at the same worker count, plus
// the measured drift — per-core retired-instruction deviation, maximum
// per-account energy deviation, and the engine's own skew/straggler
// counters — for each N at 16, 64 and 480 cores.  CI redirects this into
// BENCH_PR10.json; the differential tier (swallow_check --sync-sweep)
// enforces the same convergence bounds on randomized programs.
struct SyncRunResult {
  double wall_s = 0;
  std::vector<std::uint64_t> retired;
  std::vector<double> energy;
  std::uint64_t quanta = 0;
  std::uint64_t stragglers = 0;
  std::uint64_t max_skew_ps = 0;
};

// bound < 0 selects exact mode; otherwise bounded:bound.
SyncRunResult run_sync_once(int slices_x, int slices_y, double window_ms,
                            int jobs, int bound, bool ring) {
  using namespace swallow;
  Simulator sim;
  SystemConfig cfg;
  cfg.slices_x = slices_x;
  cfg.slices_y = slices_y;
  cfg.jobs = jobs;
  cfg.granularity = DomainGranularity::kChip;
  if (bound >= 0) {
    cfg.sync = SyncMode::kBounded;
    cfg.sync_bound = bound;
  }
  SwallowSystem sys(sim, cfg);
  if (ring) {
    bench::load_ring(sys, 2000);
  } else {
    bench::load_all_spinning(sys, 4);
  }
  const auto t0 = std::chrono::steady_clock::now();
  sys.run_until(milliseconds(window_ms));
  const auto t1 = std::chrono::steady_clock::now();
  sys.settle_energy();

  SyncRunResult r;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  for (int i = 0; i < sys.core_count(); ++i) {
    r.retired.push_back(sys.core_by_index(i).instructions_retired());
  }
  for (int a = 0; a < static_cast<int>(EnergyAccount::kCount); ++a) {
    r.energy.push_back(sys.ledger().total(static_cast<EnergyAccount>(a)));
  }
  if (sys.parallel()) {
    r.quanta = sys.engine()->stats().quanta;
    const auto ss = sys.engine()->sync_state();
    r.stragglers = ss.stragglers;
    r.max_skew_ps = ss.max_skew_ps;
  }
  return r;
}

SyncRunResult run_sync(int slices_x, int slices_y, double window_ms, int jobs,
                       int bound, bool ring, int reps) {
  SyncRunResult best =
      run_sync_once(slices_x, slices_y, window_ms, jobs, bound, ring);
  for (int rep = 1; rep < reps; ++rep) {
    SyncRunResult r =
        run_sync_once(slices_x, slices_y, window_ms, jobs, bound, ring);
    if (r.retired != best.retired) {
      std::fprintf(stderr, "sync bench: nondeterministic repeat\n");
      std::exit(1);
    }
    if (r.wall_s < best.wall_s) best = r;
  }
  return best;
}

// Returns the best bounded speedup over exact, or a negative value on a
// bounded:0 / exact divergence (they must be bit-identical).
double print_sync_workload(const char* key, int slices_x, int slices_y,
                           double window_ms, int jobs, bool ring, int reps,
                           bool last) {
  using namespace swallow;
  const std::vector<int> bounds = {0, 16, 64, 256};
  const SyncRunResult exact =
      run_sync(slices_x, slices_y, window_ms, jobs, -1, ring, reps);
  std::printf(
      "    \"%s\": {\"grid\": \"%dx%d\", \"cores\": %d, \"window_ms\": %g, "
      "\"exact_wall_s\": %.6f, \"exact_quanta\": %llu, \"bounded\": [\n",
      key, slices_x, slices_y, slices_x * slices_y * Slice::kCores, window_ms,
      exact.wall_s, static_cast<unsigned long long>(exact.quanta));
  double best_speedup = 0.0;
  bool b0_identical = true;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    const int bound = bounds[i];
    const SyncRunResult b =
        run_sync(slices_x, slices_y, window_ms, jobs, bound, ring, reps);
    if (bound == 0) {
      b0_identical = b.retired == exact.retired && b.energy == exact.energy;
    }
    std::uint64_t retired_drift = 0;
    for (std::size_t c = 0; c < exact.retired.size(); ++c) {
      const std::uint64_t d = b.retired[c] > exact.retired[c]
                                  ? b.retired[c] - exact.retired[c]
                                  : exact.retired[c] - b.retired[c];
      retired_drift = std::max(retired_drift, d);
    }
    double energy_drift = 0.0;
    for (std::size_t a = 0; a < exact.energy.size(); ++a) {
      const double scale = std::max(std::abs(exact.energy[a]), 1e-12);
      energy_drift =
          std::max(energy_drift, std::abs(b.energy[a] - exact.energy[a]) / scale);
    }
    const double speedup = b.wall_s > 0 ? exact.wall_s / b.wall_s : 0.0;
    if (bound > 0) best_speedup = std::max(best_speedup, speedup);
    std::printf(
        "      {\"bound\": %d, \"wall_s\": %.6f, \"speedup\": %.3f, "
        "\"quanta\": %llu, \"retired_drift_max\": %llu, "
        "\"energy_drift_rel_max\": %.3e, \"max_skew_ps\": %llu, "
        "\"stragglers\": %llu}%s\n",
        bound, b.wall_s, speedup,
        static_cast<unsigned long long>(b.quanta),
        static_cast<unsigned long long>(retired_drift), energy_drift,
        static_cast<unsigned long long>(b.max_skew_ps),
        static_cast<unsigned long long>(b.stragglers),
        i + 1 < bounds.size() ? "," : "");
  }
  std::printf("    ]}%s\n", last ? "" : ",");
  if (!b0_identical) {
    std::fprintf(stderr, "%s: bounded:0 diverged from exact mode\n", key);
    return -1.0;
  }
  return best_speedup;
}

bool print_sync_section(bool last) {
  const int jobs = 8;  // every grid has >= 8 chip partitions
  std::printf("  \"sync_json\": {\n");
  std::printf("    \"granularity\": \"chip\", \"jobs\": %d,\n", jobs);
  // Ring: channel traffic crosses every domain boundary, so the bounded
  // engine's straggler clamping and skew tracking genuinely engage.
  // Dense: every core spinning — the all-compute scaling case where the
  // adaptive lookahead should widen to the full budget (this is the
  // 480-core workload the >= 1.5x acceptance gate is measured on).
  double worst = 1e9;
  worst = std::min(worst, print_sync_workload("ring_16", 1, 1, 0.1, jobs,
                                              true, 1, false));
  worst = std::min(worst, print_sync_workload("ring_64", 2, 2, 0.1, jobs,
                                              true, 1, false));
  worst = std::min(worst, print_sync_workload("ring_480", 5, 6, 0.05, jobs,
                                              true, 1, false));
  worst = std::min(worst, print_sync_workload("dense_16", 1, 1, 0.1, jobs,
                                              false, 1, false));
  worst = std::min(worst, print_sync_workload("dense_64", 2, 2, 0.05, jobs,
                                              false, 1, false));
  const double dense480 = print_sync_workload("dense_480", 5, 6, 0.02, jobs,
                                              false, 2, true);
  worst = std::min(worst, dense480);
  std::printf("  }%s\n", last ? "" : ",");
  if (worst < 0) return false;  // a bounded:0 run diverged from exact
  if (dense480 < 1.5) {
    std::fprintf(stderr,
                 "sync bench: best bounded speedup on dense_480 is %.3f, "
                 "below the 1.5x acceptance gate\n",
                 dense480);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swallow;
  int slices_x = 2, slices_y = 2;
  double limit_ms = 2.0;
  bool sim_mips_only = false;
  bool load_only = false;
  bool sync_only = false;
  std::vector<int> jobs_list = {2, 4};

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw Error("missing value for " + arg);
      return argv[++i];
    };
    try {
      if (arg == "--slices") {
        const std::string v = next();
        const auto x = v.find('x');
        require(x != std::string::npos, "--slices expects WxH");
        slices_x = static_cast<int>(parse_int(v.substr(0, x)));
        slices_y = static_cast<int>(parse_int(v.substr(x + 1)));
      } else if (arg == "--time") {
        limit_ms = static_cast<double>(parse_int(next()));
      } else if (arg == "--jobs") {
        const std::string v = next();
        jobs_list.clear();
        for (std::string_view tok : split(v, ",")) {
          jobs_list.push_back(static_cast<int>(parse_int(tok)));
        }
      } else if (arg == "--sim-mips-only") {
        sim_mips_only = true;
      } else if (arg == "--load-only") {
        load_only = true;
      } else if (arg == "--sync-only") {
        sync_only = true;
      } else {
        std::fprintf(stderr, "unknown option %s\n", arg.c_str());
        return 2;
      }
    } catch (const Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }

  try {
    if (sim_mips_only) {
      // CI's perf ratchet re-measures just the interpreter KPI.
      std::printf("{\n");
      const bool ok = print_sim_mips_section(true);
      std::printf("}\n");
      return ok ? 0 : 1;
    }
    if (load_only) {
      // CI's perf ratchet re-measures just the load-subsystem KPI.
      std::printf("{\n");
      const bool ok = print_load_section(true);
      std::printf("}\n");
      return ok ? 0 : 1;
    }
    if (sync_only) {
      // The nightly drift sweep records just the bounded-sync KPI
      // (committed as BENCH_PR10.json).
      std::printf("{\n");
      const bool ok = print_sync_section(true);
      std::printf("}\n");
      return ok ? 0 : 1;
    }
    const BenchResult seq = run_bench(slices_x, slices_y, limit_ms, 0);
    std::vector<BenchResult> par;
    for (int j : jobs_list) {
      par.push_back(run_bench(slices_x, slices_y, limit_ms, j));
      if (par.back().instructions != seq.instructions) {
        std::fprintf(stderr,
                     "engine divergence: jobs=%d retired %llu instructions, "
                     "sequential retired %llu\n",
                     j,
                     static_cast<unsigned long long>(par.back().instructions),
                     static_cast<unsigned long long>(seq.instructions));
        return 1;
      }
    }

    std::printf("{\n");
    std::printf("  \"bench\": \"pipeline_%dx%d_slices\",\n", slices_x,
                slices_y);
    std::printf("  \"hw_threads\": %u,\n",
                std::thread::hardware_concurrency());
    print_result("sequential", seq, false);
    for (std::size_t i = 0; i < par.size(); ++i) {
      const std::string key = "parallel_jobs" + std::to_string(par[i].jobs);
      print_result(key.c_str(), par[i], false);
    }
    std::printf("  \"speedup\": {");
    for (std::size_t i = 0; i < par.size(); ++i) {
      std::printf("%s\"jobs%d\": %.3f", i > 0 ? ", " : "", par[i].jobs,
                  par[i].wall_s > 0 ? seq.wall_s / par[i].wall_s : 0.0);
    }
    std::printf("},\n");

    // Tracing overhead (sequential engine).  "off" is the same
    // no-session configuration as the main sequential bench — the
    // instrumentation's disabled cost is one pointer test per hook, so
    // off_overhead should sit within run-to-run noise.
    const BenchResult off = run_bench(slices_x, slices_y, limit_ms, 0);
    const BenchResult on = run_bench(slices_x, slices_y, limit_ms, 0, true);
    if (off.instructions != seq.instructions ||
        on.instructions != seq.instructions) {
      std::fprintf(stderr,
                   "tracing perturbed the machine: off=%llu on=%llu "
                   "baseline=%llu instructions\n",
                   static_cast<unsigned long long>(off.instructions),
                   static_cast<unsigned long long>(on.instructions),
                   static_cast<unsigned long long>(seq.instructions));
      return 1;
    }
    std::printf(
        "  \"tracing\": {\"off_wall_s\": %.6f, \"on_wall_s\": %.6f, "
        "\"off_overhead\": %.3f, \"on_overhead\": %.3f, "
        "\"trace_events\": %llu},\n",
        off.wall_s, on.wall_s,
        seq.wall_s > 0 ? off.wall_s / seq.wall_s - 1.0 : 0.0,
        seq.wall_s > 0 ? on.wall_s / seq.wall_s - 1.0 : 0.0,
        static_cast<unsigned long long>(on.trace_events));

    // Energy-attribution overhead (sequential engine): the trace-only
    // session above versus the same session with the attribution sink
    // mirroring every ledger charge into (core, thread, function) / link
    // buckets.  Like tracing, attribution observes the machine without
    // perturbing it — retired instructions must not move.
    const BenchResult attr =
        run_bench(slices_x, slices_y, limit_ms, 0, true, 0, true);
    if (attr.instructions != seq.instructions) {
      std::fprintf(stderr,
                   "attribution perturbed the machine: attr=%llu "
                   "baseline=%llu instructions\n",
                   static_cast<unsigned long long>(attr.instructions),
                   static_cast<unsigned long long>(seq.instructions));
      return 1;
    }
    std::printf(
        "  \"attribution\": {\"trace_wall_s\": %.6f, \"attr_wall_s\": %.6f, "
        "\"attr_overhead\": %.3f, \"attr_vs_trace\": %.3f, "
        "\"attr_buckets\": %llu},\n",
        on.wall_s, attr.wall_s,
        seq.wall_s > 0 ? attr.wall_s / seq.wall_s - 1.0 : 0.0,
        on.wall_s > 0 ? attr.wall_s / on.wall_s - 1.0 : 0.0,
        static_cast<unsigned long long>(attr.attr_buckets));

    // Checkpoint overhead (sequential engine): the same workload with 1
    // and 10 snapshots written through the full crash-safe path.  Retired
    // instructions must not move — a checkpoint that perturbed the
    // machine would be corrupting what it claims to preserve.
    const BenchResult ck1 =
        run_bench(slices_x, slices_y, limit_ms, 0, false, 1);
    const BenchResult ck10 =
        run_bench(slices_x, slices_y, limit_ms, 0, false, 10);
    if (ck1.instructions != seq.instructions ||
        ck10.instructions != seq.instructions) {
      std::fprintf(stderr,
                   "checkpointing perturbed the machine: ckpt1=%llu "
                   "ckpt10=%llu baseline=%llu instructions\n",
                   static_cast<unsigned long long>(ck1.instructions),
                   static_cast<unsigned long long>(ck10.instructions),
                   static_cast<unsigned long long>(seq.instructions));
      return 1;
    }
    std::printf(
        "  \"checkpointing\": {\"baseline_wall_s\": %.6f, "
        "\"ckpt1_wall_s\": %.6f, \"ckpt10_wall_s\": %.6f, "
        "\"ckpt1_overhead\": %.3f, \"ckpt10_overhead\": %.3f, "
        "\"write_s_per_snapshot\": %.6f, \"snapshot_bytes\": %llu},\n",
        seq.wall_s, ck1.wall_s, ck10.wall_s,
        seq.wall_s > 0 ? ck1.wall_s / seq.wall_s - 1.0 : 0.0,
        seq.wall_s > 0 ? ck10.wall_s / seq.wall_s - 1.0 : 0.0,
        ck10.ckpt_write_s / 10.0,
        static_cast<unsigned long long>(ck10.ckpt_bytes));

    // Production-traffic KPI (src/load/): closed-loop farm throughput and
    // sim-MIPS under load, fixed 2x2 grid so the committed baseline is
    // comparable run to run.
    const bool load_ok = print_load_section(false);

    // Bounded-sync KPI: relaxed-sync speedup and measured drift at
    // 16/64/480 cores (fixed grids regardless of --slices).
    const bool sync_ok = print_sync_section(false);

    // Interpreter hot-path KPI (predecode + batched issue), fixed 5x6 grid
    // regardless of --slices so the committed baseline is comparable run
    // to run.
    const bool mips_ok = print_sim_mips_section(true);
    std::printf("}\n");
    return load_ok && sync_ok && mips_ok ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
