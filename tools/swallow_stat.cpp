// swallow_stat: analyse the observability output of a swallow_run
// (docs/observability.md).
//
//   swallow_stat [--check] [--top N] [--metrics FILE] [--profile FILE]
//                [--fold] [--energy-diff BASELINE] trace-or-attr.json
//
// Default reports, all derived from the Chrome trace-event JSON:
//   * top links by wire energy (the "tok" transit instants carry the
//     per-token picojoule cost),
//   * hottest program counters by run-span wall time,
//   * route-hold latency percentiles (wormhole circuit open -> close).
// With --metrics, token end-to-end latency percentiles come from the
// metrics dump's histograms; with --profile, the hottest flamegraph
// stacks from the collapsed profile are listed too.
//
// Energy-attribution dumps (swallow_run --energy-attr) are recognised by
// their top-level "energyAttribution" key: the default report lists the
// account totals and the hottest energy stacks, --fold re-emits the
// flamegraph-collapsed form (stack + integer picojoules, ready for
// flamegraph.pl), and --energy-diff BASELINE reports the largest energy
// regressions of the input against a baseline attribution dump.
//
// --check runs the checked-in schema validation (src/obs/schema) and
// exits 0/1 — this is what CI runs on every produced trace and
// attribution dump.  Snapshot files (src/snap, the "SWSN" magic) are
// recognised by content, so the same CI step validates checkpoint
// manifests: magic, version, section table and every per-section CRC.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/json.h"
#include "common/strings.h"
#include "obs/schema.h"
#include "snap/snapfile.h"

namespace {

using swallow::Error;
using swallow::Json;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void usage() {
  std::printf(
      "usage: swallow_stat [--check] [--top N] [--metrics FILE]\n"
      "                    [--profile FILE] [--fold]\n"
      "                    [--energy-diff BASELINE] trace-or-attr.json\n"
      "\n"
      "  --check         validate the input against its schema contract\n"
      "                  (docs/observability.md) and exit 0/1; snapshot\n"
      "                  checkpoints (*.swsnap) are detected by magic and\n"
      "                  their manifest + section CRCs validated, energy\n"
      "                  attribution dumps (swallow_run --energy-attr) by\n"
      "                  their \"energyAttribution\" key\n"
      "  --top N         rows per report (default 10)\n"
      "  --metrics FILE  also report latency percentiles from a\n"
      "                  swallow_run --metrics dump\n"
      "  --profile FILE  also report the hottest stacks of a collapsed\n"
      "                  profile (swallow_run --profile)\n"
      "  --fold          re-emit an attribution dump flamegraph-collapsed\n"
      "                  (one \"stack picojoules\" line per bucket)\n"
      "  --energy-diff BASELINE\n"
      "                  report the largest per-stack energy regressions\n"
      "                  of the input attribution dump vs BASELINE\n");
}

// Content sniff: snapshot checkpoints start with the little-endian "SWSN"
// magic (bytes 53 57 53 4e) — never valid JSON, so the dispatch is exact.
bool looks_like_snapshot(const std::string& body) {
  return body.size() >= 4 && body[0] == 'S' && body[1] == 'W' &&
         body[2] == 'S' && body[3] == 'N';
}

int check_snapshot(const std::string& path, const std::string& body) {
  using swallow::SnapSection;
  using swallow::SnapshotFile;
  try {
    const SnapshotFile f = SnapshotFile::decode(
        reinterpret_cast<const std::uint8_t*>(body.data()), body.size());
    std::string sections;
    for (SnapSection s :
         {SnapSection::kMeta, SnapSection::kSystem, SnapSection::kEvents,
          SnapSection::kObs, SnapSection::kFault}) {
      const std::vector<std::uint8_t>* bytes = f.find(s);
      if (bytes == nullptr) continue;
      if (!sections.empty()) sections += ", ";
      sections += swallow::strprintf("%s %zu B", swallow::snap_section_name(s),
                                     bytes->size());
    }
    std::printf("%s: ok (snapshot v%u, config %016llx, %zu sections: %s)\n",
                path.c_str(), SnapshotFile::kVersion,
                static_cast<unsigned long long>(f.config_hash),
                f.section_count(), sections.c_str());
    return 0;
  } catch (const swallow::SnapError& e) {
    std::fprintf(stderr, "%s: INVALID [%s]: %s\n", path.c_str(),
                 e.code_name(), e.what());
    return 1;
  }
}

double num_or(const Json& e, const char* key, double fallback) {
  const Json* v = e.get(key);
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

std::string str_or(const Json& e, const char* key) {
  const Json* v = e.get(key);
  return v != nullptr && v->is_string() ? v->as_string() : std::string();
}

std::string dir_name(int d) {
  static const char* kNames[] = {"N", "E", "S", "W"};
  // Directions past the four compass links are a chip's internal
  // vertical<->horizontal ports.
  return d >= 0 && d < 4 ? kNames[d] : swallow::strprintf("d%d", d);
}

void report_links(const std::vector<Json>& events, int top) {
  struct LinkAgg {
    double pj = 0.0;
    long long tokens = 0;
    long long bits = 0;
  };
  std::map<std::pair<long long, int>, LinkAgg> links;  // (node, dir)
  for (const Json& e : events) {
    if (str_or(e, "ph") != "i" || str_or(e, "cat") != "link") continue;
    const Json* args = e.get("args");
    if (args == nullptr) continue;
    LinkAgg& agg = links[{static_cast<long long>(num_or(e, "pid", 0)),
                          static_cast<int>(num_or(*args, "dir", 0))}];
    agg.pj += num_or(*args, "pj", 0);
    agg.tokens += 1;
    agg.bits += static_cast<long long>(num_or(*args, "bits", 0));
  }
  std::vector<std::pair<std::pair<long long, int>, LinkAgg>> rows(
      links.begin(), links.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.pj != b.second.pj) return a.second.pj > b.second.pj;
    return a.first < b.first;
  });
  std::printf("top links by wire energy:\n");
  if (rows.empty()) std::printf("  (no link transit events in trace)\n");
  for (int i = 0; i < static_cast<int>(rows.size()) && i < top; ++i) {
    const auto& [key, agg] = rows[static_cast<std::size_t>(i)];
    std::printf("  node 0x%04llx %-3s %12.1f pJ  %8lld tokens  %10lld bits\n",
                static_cast<unsigned long long>(key.first),
                dir_name(key.second).c_str(), agg.pj, agg.tokens, agg.bits);
  }
}

void report_hot_pcs(const std::vector<Json>& events, int top) {
  // Wall time inside "run" spans, attributed to the span's entry pc.
  struct Open {
    double ts = 0.0;
    long long pc = -1;
  };
  std::map<std::pair<long long, long long>, std::vector<Open>> open;
  std::map<std::pair<long long, long long>, double> by_pc;  // (node, pc)
  for (const Json& e : events) {
    const std::string ph = str_or(e, "ph");
    if (ph != "B" && ph != "E") continue;
    if (str_or(e, "cat") != "thread") continue;
    const std::pair<long long, long long> key{
        static_cast<long long>(num_or(e, "pid", 0)),
        static_cast<long long>(num_or(e, "tid", 0))};
    if (ph == "B") {
      Open o;
      o.ts = num_or(e, "ts", 0);
      const Json* args = e.get("args");
      o.pc = str_or(e, "name") == "run" && args != nullptr
                 ? static_cast<long long>(num_or(*args, "pc", -1))
                 : -1;
      open[key].push_back(o);
    } else if (!open[key].empty()) {
      const Open o = open[key].back();
      open[key].pop_back();
      if (o.pc >= 0) by_pc[{key.first, o.pc}] += num_or(e, "ts", 0) - o.ts;
    }
  }
  std::vector<std::pair<std::pair<long long, long long>, double>> rows(
      by_pc.begin(), by_pc.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::printf("\nhottest pcs by run-span time:\n");
  if (rows.empty()) std::printf("  (no thread run spans in trace)\n");
  for (int i = 0; i < static_cast<int>(rows.size()) && i < top; ++i) {
    const auto& [key, us] = rows[static_cast<std::size_t>(i)];
    std::printf("  node 0x%04llx pc %5lld  %12.3f us\n",
                static_cast<unsigned long long>(key.first), key.second, us);
  }
}

void percentile_line(const char* label, std::vector<double>& v) {
  std::sort(v.begin(), v.end());
  auto pct = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(v.size() - 1));
    return v[idx];
  };
  std::printf("  %-24s n=%-8zu p50=%.3f p90=%.3f p99=%.3f max=%.3f us\n",
              label, v.size(), pct(0.50), pct(0.90), pct(0.99), v.back());
}

void report_latency(const std::vector<Json>& events) {
  std::map<std::pair<long long, long long>, std::vector<double>> open;
  std::vector<double> holds;  // route open -> close, us
  for (const Json& e : events) {
    const std::string ph = str_or(e, "ph");
    if (ph != "B" && ph != "E") continue;
    if (str_or(e, "cat") != "route") continue;
    const std::pair<long long, long long> key{
        static_cast<long long>(num_or(e, "pid", 0)),
        static_cast<long long>(num_or(e, "tid", 0))};
    if (ph == "B") {
      open[key].push_back(num_or(e, "ts", 0));
    } else if (!open[key].empty()) {
      holds.push_back(num_or(e, "ts", 0) - open[key].back());
      open[key].pop_back();
    }
  }
  std::printf("\nlatency percentiles:\n");
  if (holds.empty()) {
    std::printf("  (no route spans in trace)\n");
  } else {
    percentile_line("route hold", holds);
  }
}

void report_metrics(const std::string& path) {
  const Json doc = Json::parse(read_file(path));
  const Json* hists = doc.get("histograms");
  std::printf("\nmetrics histograms (%s):\n", path.c_str());
  if (hists == nullptr || !hists->is_object() || hists->size() == 0) {
    std::printf("  (none)\n");
    return;
  }
  for (const auto& [name, h] : hists->items()) {
    std::printf("  %-28s n=%-8.0f p50=%.0f p90=%.0f p99=%.0f max=%.0f\n",
                name.c_str(), num_or(h, "count", 0), num_or(h, "p50", 0),
                num_or(h, "p90", 0), num_or(h, "p99", 0),
                num_or(h, "max", 0));
  }
}

void report_profile(const std::string& path, int top) {
  std::istringstream in(read_file(path));
  std::vector<std::pair<long long, std::string>> stacks;
  std::string line;
  while (std::getline(in, line)) {
    const auto space = line.rfind(' ');
    if (space == std::string::npos) continue;
    stacks.emplace_back(swallow::parse_int(line.substr(space + 1)),
                        line.substr(0, space));
  }
  std::sort(stacks.begin(), stacks.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::printf("\nhottest stacks (%s):\n", path.c_str());
  if (stacks.empty()) std::printf("  (empty profile)\n");
  for (int i = 0; i < static_cast<int>(stacks.size()) && i < top; ++i) {
    std::printf("  %8lld  %s\n", stacks[static_cast<std::size_t>(i)].first,
                stacks[static_cast<std::size_t>(i)].second.c_str());
  }
}

// ---- Energy attribution reports (swallow_run --energy-attr dumps) ----

// The bucket map of an attribution dump; stacks are unique by schema.
std::map<std::string, double> attr_buckets(const Json& doc) {
  std::map<std::string, double> out;
  for (const Json& b : doc.at("energyAttribution").at("buckets").as_array()) {
    out[b.at("stack").as_string()] = b.at("j").as_number();
  }
  return out;
}

void report_attr(const std::string& path, const Json& doc, int top) {
  const Json& attr = doc.at("energyAttribution");
  std::printf("energy attribution (%s): %.3f uJ over %.0f shard(s)\n",
              path.c_str(), attr.at("totalJ").as_number() * 1e6,
              attr.at("shards").as_number());
  std::printf("\naccounts:\n");
  for (const auto& [name, j] : attr.at("accounts").items()) {
    if (j.as_number() <= 0) continue;
    std::printf("  %-22s %14.3f uJ\n", name.c_str(), j.as_number() * 1e6);
  }
  std::vector<std::pair<double, std::string>> rows;
  for (const auto& [stack, j] : attr_buckets(doc)) rows.emplace_back(j, stack);
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::printf("\nhottest energy stacks:\n");
  for (int i = 0; i < static_cast<int>(rows.size()) && i < top; ++i) {
    std::printf("  %14.3f uJ  %s\n", rows[static_cast<std::size_t>(i)].first * 1e6,
                rows[static_cast<std::size_t>(i)].second.c_str());
  }
}

// Re-emit the folded flamegraph form; matches EnergyAttribution::folded().
void report_fold(const Json& doc) {
  for (const auto& [stack, j] : attr_buckets(doc)) {
    const long long pj = std::llround(j * 1e12);
    if (pj <= 0) continue;
    std::printf("%s %lld\n", stack.c_str(), pj);
  }
}

int report_energy_diff(const std::string& base_path, const Json& base_doc,
                       const std::string& new_path, const Json& new_doc,
                       int top) {
  const std::map<std::string, double> base = attr_buckets(base_doc);
  const std::map<std::string, double> cur = attr_buckets(new_doc);
  struct Row {
    double delta = 0.0, from = 0.0, to = 0.0;
    std::string stack;
  };
  std::vector<Row> rows;
  for (const auto& [stack, j] : cur) {
    const auto it = base.find(stack);
    rows.push_back({j - (it != base.end() ? it->second : 0.0),
                    it != base.end() ? it->second : 0.0, j, stack});
  }
  for (const auto& [stack, j] : base) {
    if (cur.find(stack) == cur.end()) rows.push_back({-j, j, 0.0, stack});
  }
  const double base_total =
      base_doc.at("energyAttribution").at("totalJ").as_number();
  const double new_total =
      new_doc.at("energyAttribution").at("totalJ").as_number();
  std::printf("energy diff: %s -> %s\n", base_path.c_str(), new_path.c_str());
  std::printf("total: %.3f uJ -> %.3f uJ (%+.3f uJ)\n", base_total * 1e6,
              new_total * 1e6, (new_total - base_total) * 1e6);
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.delta != b.delta) return a.delta > b.delta;
    return a.stack < b.stack;
  });
  std::printf("\nlargest regressions:\n");
  int shown = 0;
  for (const Row& r : rows) {
    if (r.delta <= 0 || shown >= top) break;
    std::printf("  %+14.3f uJ  %s (%.3f -> %.3f uJ)\n", r.delta * 1e6,
                r.stack.c_str(), r.from * 1e6, r.to * 1e6);
    ++shown;
  }
  if (shown == 0) std::printf("  (none)\n");
  std::printf("\nlargest improvements:\n");
  shown = 0;
  for (auto it = rows.rbegin(); it != rows.rend(); ++it) {
    if (it->delta >= 0 || shown >= top) break;
    std::printf("  %+14.3f uJ  %s (%.3f -> %.3f uJ)\n", it->delta * 1e6,
                it->stack.c_str(), it->from * 1e6, it->to * 1e6);
    ++shown;
  }
  if (shown == 0) std::printf("  (none)\n");
  return 0;
}

bool is_attr_doc(const Json& doc) {
  return doc.is_object() && doc.get("energyAttribution") != nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  bool fold = false;
  int top = 10;
  std::string trace_path, metrics_path, profile_path, diff_base_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw Error("missing value for " + arg);
      return argv[++i];
    };
    try {
      if (arg == "--check") {
        check = true;
      } else if (arg == "--fold") {
        fold = true;
      } else if (arg == "--energy-diff") {
        diff_base_path = next();
      } else if (arg == "--top") {
        top = static_cast<int>(swallow::parse_int(next()));
      } else if (arg == "--metrics") {
        metrics_path = next();
      } else if (arg == "--profile") {
        profile_path = next();
      } else if (arg == "--help" || arg == "-h") {
        usage();
        return 0;
      } else if (!arg.empty() && arg[0] == '-') {
        std::fprintf(stderr, "unknown option %s\n", arg.c_str());
        return 2;
      } else if (trace_path.empty()) {
        trace_path = arg;
      } else {
        std::fprintf(stderr, "more than one trace file given\n");
        return 2;
      }
    } catch (const Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }
  if (trace_path.empty()) {
    usage();
    return 2;
  }

  try {
    const std::string body = read_file(trace_path);
    if (looks_like_snapshot(body)) {
      if (!check) {
        std::fprintf(stderr,
                     "%s is a snapshot checkpoint; only --check applies\n",
                     trace_path.c_str());
        return 2;
      }
      return check_snapshot(trace_path, body);
    }
    const Json doc = Json::parse(body);

    if (check) {
      // Dispatch on content: attribution dumps carry "energyAttribution",
      // anything else is checked as a Chrome trace.
      const bool attr = is_attr_doc(doc);
      const std::string violation = attr
                                        ? swallow::check_energy_attribution(doc)
                                        : swallow::check_chrome_trace(doc);
      if (!violation.empty()) {
        std::fprintf(stderr, "%s: INVALID: %s\n", trace_path.c_str(),
                     violation.c_str());
        return 1;
      }
      if (attr) {
        const Json& a = doc.at("energyAttribution");
        std::printf("%s: ok (%zu buckets, %.3f uJ, %.0f shards)\n",
                    trace_path.c_str(), a.at("buckets").as_array().size(),
                    a.at("totalJ").as_number() * 1e6,
                    a.at("shards").as_number());
      } else {
        const Json& other = doc.at("otherData");
        std::printf("%s: ok (%.0f events, %.0f tracks, %.0f dropped)\n",
                    trace_path.c_str(), num_or(other, "events", 0),
                    num_or(other, "tracks", 0),
                    num_or(other, "dropped_events", 0));
      }
      return 0;
    }

    if (is_attr_doc(doc)) {
      if (fold) {
        report_fold(doc);
        return 0;
      }
      if (!diff_base_path.empty()) {
        const Json base = Json::parse(read_file(diff_base_path));
        if (!is_attr_doc(base)) {
          std::fprintf(stderr, "%s is not an energy attribution dump\n",
                       diff_base_path.c_str());
          return 2;
        }
        return report_energy_diff(diff_base_path, base, trace_path, doc, top);
      }
      report_attr(trace_path, doc, top);
      return 0;
    }
    if (fold || !diff_base_path.empty()) {
      std::fprintf(stderr,
                   "%s is not an energy attribution dump; --fold and "
                   "--energy-diff need swallow_run --energy-attr output\n",
                   trace_path.c_str());
      return 2;
    }

    const std::vector<Json>& events = doc.at("traceEvents").as_array();
    report_links(events, top);
    report_hot_pcs(events, top);
    report_latency(events);
    if (!metrics_path.empty()) report_metrics(metrics_path);
    if (!profile_path.empty()) report_profile(profile_path, top);
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
