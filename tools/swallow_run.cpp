// swallow_run: run Swallow assembly programs on a simulated machine.
//
//   swallow_run [options] prog0.s [prog1.s ...]
//
// Programs are placed on consecutive cores (chip-major order, vertical
// node first).  After the run, each core's console, finish state, timing
// and — optionally — the energy ledger and network statistics are printed.
//
// Options:
//   --freq MHZ     core frequency in MHz            (default 500)
//   --dvfs         voltage follows Vmin(f)          (default off)
//   --grade-max    architectural link rates 500/125 (default Table I rates)
//   --slices WxH   grid of slices                   (default 1x1)
//   --jobs N       parallel engine worker threads   (default 0 = sequential;
//                  results are bit-identical either way)
//   --time MS      simulation limit in ms           (default 100)
//   --trace        print an instruction trace of core 0 (first 100 lines)
//   --energy       print the energy ledger and slice power
//   --netstat      print per-link-class network statistics
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/netstat.h"
#include "api/patterns.h"
#include "arch/assembler.h"
#include "board/system.h"
#include "common/error.h"
#include "common/strings.h"
#include "sim/simulator.h"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw swallow::Error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void usage() {
  std::printf(
      "usage: swallow_run [--freq MHZ] [--dvfs] [--grade-max] [--slices WxH]\n"
      "                   [--jobs N] [--time MS] [--trace] [--energy]\n"
      "                   [--netstat] prog0.s [prog1.s ...]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swallow;

  SystemConfig cfg;
  double limit_ms = 100.0;
  bool trace = false, energy = false, netstat = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw Error("missing value for " + arg);
      return argv[++i];
    };
    try {
      if (arg == "--freq") {
        cfg.core_freq = static_cast<MegaHertz>(parse_int(next()));
      } else if (arg == "--dvfs") {
        cfg.auto_dvfs = true;
      } else if (arg == "--grade-max") {
        cfg.link_grade = LinkGrade::kArchitecturalMax;
      } else if (arg == "--slices") {
        const std::string v = next();
        const auto x = v.find('x');
        require(x != std::string::npos, "--slices expects WxH");
        cfg.slices_x = static_cast<int>(parse_int(v.substr(0, x)));
        cfg.slices_y = static_cast<int>(parse_int(v.substr(x + 1)));
      } else if (arg == "--jobs") {
        cfg.jobs = static_cast<int>(parse_int(next()));
      } else if (arg == "--time") {
        limit_ms = static_cast<double>(parse_int(next()));
      } else if (arg == "--trace") {
        trace = true;
      } else if (arg == "--energy") {
        energy = true;
      } else if (arg == "--netstat") {
        netstat = true;
      } else if (arg == "--help" || arg == "-h") {
        usage();
        return 0;
      } else if (!arg.empty() && arg[0] == '-') {
        std::fprintf(stderr, "unknown option %s\n", arg.c_str());
        return 2;
      } else {
        paths.push_back(arg);
      }
    } catch (const Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }
  if (paths.empty()) {
    usage();
    return 2;
  }

  try {
    Simulator sim;
    SwallowSystem sys(sim, cfg);
    require(static_cast<int>(paths.size()) <= sys.core_count(),
            "more programs than cores");

    std::vector<Core*> cores;
    TraceBuffer trace_buffer;
    trace_buffer.set_max_lines(100);
    for (std::size_t i = 0; i < paths.size(); ++i) {
      const Placement p = linear_placement(cfg, static_cast<int>(i));
      Core& core = sys.core(p.chip_x, p.chip_y, p.layer);
      core.load(assemble(read_file(paths[i])));
      if (i == 0 && trace) core.set_trace_sink(trace_buffer.sink());
      cores.push_back(&core);
    }
    sys.start_sampling();
    const NetworkStats before = collect_network_stats(sys.network(),
                                                      sys.ledger());
    for (Core* core : cores) core->start();

    // Step until every program finishes or the limit passes.
    const TimePs limit = milliseconds(limit_ms);
    TimePs t = 0;
    auto all_done = [&] {
      for (Core* c : cores) {
        if (!c->finished() && !c->trapped()) return false;
      }
      return true;
    };
    while (t < limit && !all_done()) {
      t += microseconds(50.0);
      sys.run_until(t);
    }
    sys.settle_energy();

    bool failed = false;
    for (std::size_t i = 0; i < cores.size(); ++i) {
      Core& core = *cores[i];
      std::printf("-- %s on node 0x%04x --\n", paths[i].c_str(),
                  core.node_id());
      if (core.trapped()) {
        std::printf("  TRAP [%s] thread %d pc %u: %s\n",
                    std::string(to_string(core.trap().kind)).c_str(),
                    core.trap().thread, core.trap().pc,
                    core.trap().message.c_str());
        failed = true;
      } else {
        std::printf("  %s, %llu instructions\n",
                    core.finished() ? "finished" : "STILL RUNNING",
                    static_cast<unsigned long long>(
                        core.instructions_retired()));
        failed |= !core.finished();
      }
      if (!core.console().empty()) {
        std::printf("  console: %s\n", core.console().c_str());
      }
    }
    std::printf("\nsimulated time: %.3f ms\n", to_seconds(sys.now()) * 1e3);

    if (failed) {
      const std::string report = sys.diagnose();
      if (!report.empty()) {
        std::printf("\ndiagnostics:\n%s", report.c_str());
      }
    }

    if (trace) {
      std::printf("\ninstruction trace (core 0, first %zu of %llu):\n",
                  trace_buffer.lines().size(),
                  static_cast<unsigned long long>(trace_buffer.count()));
      for (const std::string& line : trace_buffer.lines()) {
        std::printf("%s\n", line.c_str());
      }
    }
    if (energy) {
      std::printf("\nenergy ledger:\n");
      for (int a = 0; a < static_cast<int>(EnergyAccount::kCount); ++a) {
        const auto account = static_cast<EnergyAccount>(a);
        const Joules j = sys.ledger().total(account);
        if (j > 0) {
          std::printf("  %-22s %12.3f uJ\n",
                      std::string(to_string(account)).c_str(), j * 1e6);
        }
      }
      std::printf("  %-22s %12.3f uJ\n", "total",
                  sys.ledger().grand_total() * 1e6);
      std::printf("machine input power now: %.3f W\n",
                  sys.total_input_power());
    }
    if (netstat) {
      const NetworkStats stats =
          stats_delta(collect_network_stats(sys.network(), sys.ledger()),
                      before);
      std::printf("\n%s", render_network_stats(stats, sys.now()).c_str());
    }
    return failed ? 1 : 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
