// swallow_run: run Swallow assembly programs on a simulated machine.
//
//   swallow_run [options] prog0.s [prog1.s ...]
//
// Programs are placed on consecutive cores (chip-major order, vertical
// node first).  After the run, each core's console, finish state, timing
// and — optionally — the energy ledger and network statistics are printed.
// The observability flags export the run as a Chrome/Perfetto trace, a
// metrics JSON dump and a flamegraph-collapsed profile (src/obs/,
// docs/observability.md); all three are byte-identical for any --jobs
// value.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/netstat.h"
#include "api/patterns.h"
#include "arch/assembler.h"
#include "board/system.h"
#include "common/error.h"
#include "common/strings.h"
#include "fault/fault.h"
#include "fault/watchdog.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "snap/machine.h"
#include "snap/snapfile.h"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw swallow::Error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw swallow::Error("cannot write " + path);
  out << body;
}

void usage() {
  std::printf(
      "usage: swallow_run [options] prog0.s [prog1.s ...]\n"
      "\n"
      "machine:\n"
      "  --freq MHZ      core frequency in MHz          (default 500)\n"
      "  --dvfs          voltage follows Vmin(f)        (default off)\n"
      "  --grade-max     architectural link rates 500/125 (default Table I)\n"
      "  --slices WxH    grid of slices                 (default 1x1)\n"
      "  --jobs N        parallel engine worker threads (default 0 =\n"
      "                  sequential reference engine; 1..partition-count\n"
      "                  shards one event domain per partition — results and\n"
      "                  all observability output are bit-identical either\n"
      "                  way in exact mode)\n"
      "  --domains G     event-domain granularity: slice (default), chip,\n"
      "                  or core (finer sharding for more --jobs headroom)\n"
      "  --sync M        engine synchronization: exact (default), or\n"
      "                  bounded:N — domains may run up to N simulated core\n"
      "                  cycles ahead of the slowest peer (requires --jobs;\n"
      "                  bounded:0 is bit-identical to exact; N>0 trades\n"
      "                  exact event order for fewer barriers, with drift\n"
      "                  measured in the sync.* metrics gauges)\n"
      "  --time MS       simulation limit in ms         (default 100)\n"
      "\n"
      "faults (src/fault):\n"
      "  --reliable                    CRC/retry framing on every link\n"
      "  --fault-seed N                FaultPlan rng seed (default 1)\n"
      "  --fault-corrupt NODE:DIR:RATE corrupt tokens on node's DIR link\n"
      "                                with per-token probability RATE\n"
      "  --fault-kill NODE:DIR:AT_US   permanently kill a link at AT_US\n"
      "                                (NODE takes hex, DIR is 0..3 NESW)\n"
      "\n"
      "observability (src/obs, docs/observability.md):\n"
      "  --trace FILE    Chrome/Perfetto trace-event JSON of the run\n"
      "  --metrics FILE  metrics registry JSON (latency histograms, IPC)\n"
      "  --profile FILE  flamegraph-collapsed sampling profile\n"
      "  --itrace        print an instruction trace of core 0 (first 100\n"
      "                  lines; was --trace before the trace flag grew a\n"
      "                  file argument)\n"
      "\n"
      "checkpoint/resume (src/snap, docs/architecture.md):\n"
      "  --checkpoint-every US  write a snapshot every US simulated "
      "microseconds\n"
      "  --checkpoint-dir DIR   checkpoint rotation directory\n"
      "  --checkpoint-keep N    snapshots kept in rotation (default 3)\n"
      "  --resume auto|FILE     restore FILE, or the newest restorable\n"
      "                         checkpoint in --checkpoint-dir; corrupt or\n"
      "                         mismatched snapshots are refused with a\n"
      "                         structured error and the rotation falls\n"
      "                         back to the previous one\n"
      "  --stall-window US      exit non-zero when global progress is flat\n"
      "                         for US microseconds while threads are\n"
      "                         blocked or routes held (default 2000;\n"
      "                         0 disables the check)\n"
      "\n"
      "reports:\n"
      "  --energy        print the energy ledger and slice power\n"
      "  --netstat       print per-link-class network statistics\n"
      "  --help, -h      this message\n");
}

// NODE:DIR[:MORE] triple used by the fault flags; NODE accepts hex.
struct LinkRef {
  swallow::NodeId node = 0;
  int direction = 0;
  std::string rest;
};

LinkRef parse_link_ref(const std::string& v) {
  const auto c1 = v.find(':');
  swallow::require(c1 != std::string::npos, "expected NODE:DIR:VALUE");
  const auto c2 = v.find(':', c1 + 1);
  swallow::require(c2 != std::string::npos, "expected NODE:DIR:VALUE");
  LinkRef ref;
  ref.node =
      static_cast<swallow::NodeId>(swallow::parse_int(v.substr(0, c1)));
  ref.direction =
      static_cast<int>(swallow::parse_int(v.substr(c1 + 1, c2 - c1 - 1)));
  swallow::require(ref.direction >= 0 && ref.direction < 4,
                   "link direction must be 0..3 (N/E/S/W)");
  ref.rest = v.substr(c2 + 1);
  return ref;
}

// Restore the freshly built (unstarted, unarmed) machine in `targets` from
// `resume` — either a snapshot path or "auto", which walks the checkpoint
// rotation newest-first.  A snapshot that fails to decode (truncated, bad
// CRC, wrong magic/version) or that was taken on a differently configured
// machine is refused with its structured SnapError code and the walk falls
// back to the previous one.  Returns true on success; on failure the
// machine is untouched and still runnable from scratch — except when
// restore_machine itself throws mid-apply, which is fatal (partial state).
bool resume_snapshot(const std::string& resume, const std::string& dir,
                     const swallow::SnapTargets& targets) {
  using namespace swallow;
  std::vector<std::string> candidates;
  if (resume == "auto") {
    if (dir.empty()) throw Error("--resume auto needs --checkpoint-dir");
    candidates = list_checkpoints(dir);
    if (candidates.empty()) {
      std::fprintf(stderr, "resume: no checkpoints in %s\n", dir.c_str());
      return false;
    }
  } else {
    candidates.push_back(resume);
  }
  const std::uint64_t expect = snapshot_config_hash(
      targets.system->config(),
      targets.fault != nullptr ? &targets.fault->plan() : nullptr,
      targets.obs != nullptr ? &targets.obs->config() : nullptr);
  for (const std::string& path : candidates) {
    SnapshotFile f;
    try {
      f = SnapshotFile::read_file(path);
      if (f.config_hash != expect) {
        throw SnapError(SnapError::Code::kConfigMismatch,
                        "snapshot was taken under a different machine "
                        "configuration than this command line rebuilds");
      }
    } catch (const SnapError& e) {
      std::fprintf(stderr, "resume: refused %s [%s]: %s\n", path.c_str(),
                   e.code_name(), e.what());
      continue;  // fall back to the previous checkpoint in the rotation
    }
    try {
      restore_machine(f, targets);
    } catch (const SnapError& e) {
      // Past the config-hash gate a failure can leave partial state; the
      // machine must not run.  (Validation that can fall back happened
      // above, before anything was touched.)
      std::fprintf(stderr, "resume: %s failed mid-restore [%s]: %s\n",
                   path.c_str(), e.code_name(), e.what());
      return false;
    }
    std::printf("resume: restored %s (t = %.3f ms)\n", path.c_str(),
                to_seconds(targets.system->now()) * 1e3);
    return true;
  }
  std::fprintf(stderr, "resume: no restorable checkpoint found\n");
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swallow;

  SystemConfig cfg;
  double limit_ms = 100.0;
  bool itrace = false, energy = false, netstat = false;
  std::string trace_path, metrics_path, profile_path, attr_path;
  long long power_window_us = 0;
  FaultPlan plan;
  bool have_faults = false;
  long long ckpt_every_us = 0;
  std::string ckpt_dir;
  int ckpt_keep = 3;
  std::string resume_from;
  long long stall_window_us = 2000;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw Error("missing value for " + arg);
      return argv[++i];
    };
    try {
      if (arg == "--freq") {
        cfg.core_freq = static_cast<MegaHertz>(parse_int(next()));
      } else if (arg == "--dvfs") {
        cfg.auto_dvfs = true;
      } else if (arg == "--grade-max") {
        cfg.link_grade = LinkGrade::kArchitecturalMax;
      } else if (arg == "--slices") {
        const std::string v = next();
        const auto x = v.find('x');
        require(x != std::string::npos, "--slices expects WxH");
        cfg.slices_x = static_cast<int>(parse_int(v.substr(0, x)));
        cfg.slices_y = static_cast<int>(parse_int(v.substr(x + 1)));
      } else if (arg == "--jobs") {
        cfg.jobs = static_cast<int>(parse_int(next()));
      } else if (arg == "--domains") {
        const std::string v = next();
        if (v == "slice") {
          cfg.granularity = DomainGranularity::kSlice;
        } else if (v == "chip") {
          cfg.granularity = DomainGranularity::kChip;
        } else if (v == "core") {
          cfg.granularity = DomainGranularity::kCore;
        } else {
          throw Error("--domains expects slice, chip or core");
        }
      } else if (arg == "--sync") {
        const std::string v = next();
        if (v == "exact") {
          cfg.sync = SyncMode::kExact;
          cfg.sync_bound = 0;
        } else if (v.rfind("bounded:", 0) == 0) {
          cfg.sync = SyncMode::kBounded;
          cfg.sync_bound = static_cast<int>(parse_int(v.substr(8)));
          require(cfg.sync_bound >= 0, "--sync bounded:N needs N >= 0");
        } else {
          throw Error("--sync expects exact or bounded:N");
        }
      } else if (arg == "--time") {
        limit_ms = static_cast<double>(parse_int(next()));
      } else if (arg == "--reliable") {
        cfg.reliable_links = true;
      } else if (arg == "--fault-seed") {
        plan.seed = static_cast<std::uint64_t>(parse_int(next()));
      } else if (arg == "--fault-corrupt") {
        const LinkRef ref = parse_link_ref(next());
        char* end = nullptr;
        const double rate = std::strtod(ref.rest.c_str(), &end);
        require(end != ref.rest.c_str() && rate >= 0.0 && rate <= 1.0,
                "--fault-corrupt rate must be a probability in [0, 1]");
        plan.corrupt_link(ref.node, ref.direction, rate);
        have_faults = true;
      } else if (arg == "--fault-kill") {
        const LinkRef ref = parse_link_ref(next());
        plan.kill_link(ref.node, ref.direction,
                       microseconds(static_cast<double>(parse_int(ref.rest))));
        have_faults = true;
      } else if (arg == "--checkpoint-every") {
        ckpt_every_us = parse_int(next());
        require(ckpt_every_us > 0, "--checkpoint-every must be positive");
      } else if (arg == "--checkpoint-dir") {
        ckpt_dir = next();
      } else if (arg == "--checkpoint-keep") {
        ckpt_keep = static_cast<int>(parse_int(next()));
        require(ckpt_keep >= 1, "--checkpoint-keep must be at least 1");
      } else if (arg == "--resume") {
        resume_from = next();
        require(!resume_from.empty(), "--resume expects auto or a file");
      } else if (arg == "--stall-window") {
        stall_window_us = parse_int(next());
        require(stall_window_us >= 0, "--stall-window must be >= 0");
      } else if (arg == "--trace") {
        trace_path = next();
      } else if (arg == "--metrics") {
        metrics_path = next();
      } else if (arg == "--profile") {
        profile_path = next();
      } else if (arg == "--energy-attr") {
        attr_path = next();
      } else if (arg == "--power-window") {
        power_window_us = parse_int(next());
        require(power_window_us > 0, "--power-window must be positive");
      } else if (arg == "--itrace") {
        itrace = true;
      } else if (arg == "--energy") {
        energy = true;
      } else if (arg == "--netstat") {
        netstat = true;
      } else if (arg == "--help" || arg == "-h") {
        usage();
        return 0;
      } else if (!arg.empty() && arg[0] == '-') {
        std::fprintf(stderr, "unknown option %s\n", arg.c_str());
        return 2;
      } else {
        paths.push_back(arg);
      }
    } catch (const Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }
  if (paths.empty()) {
    usage();
    return 2;
  }

  try {
    TraceConfig tcfg;
    tcfg.tracing = !trace_path.empty();
    tcfg.metrics = !metrics_path.empty();
    tcfg.profile = !profile_path.empty();
    tcfg.energy = !attr_path.empty();
    if (power_window_us > 0) {
      tcfg.power_window = microseconds(static_cast<double>(power_window_us));
    }
    TraceSession session(tcfg);  // outlives the system: models hold Track*

    Simulator sim;
    SwallowSystem sys(sim, cfg);
    require(static_cast<int>(paths.size()) <= sys.core_count(),
            "more programs than cores");
    if (session.active()) sys.attach_observability(session);

    const bool resuming = !resume_from.empty();
    std::unique_ptr<FaultInjector> injector;
    if (have_faults) {
      injector = std::make_unique<FaultInjector>(sys, plan);
      // On resume the injector stays unarmed: restore_machine arms its
      // corruption hooks and re-injects its pending events itself.
      if (!resuming) injector->arm();
    }

    std::vector<Core*> cores;
    TraceBuffer trace_buffer;
    trace_buffer.set_max_lines(100);
    for (std::size_t i = 0; i < paths.size(); ++i) {
      const Placement p = linear_placement(cfg, static_cast<int>(i));
      Core& core = sys.core(p.chip_x, p.chip_y, p.layer);
      // On resume the program image (SRAM contents and symbols) comes back
      // from the snapshot; loading it again would clobber restored state.
      if (!resuming) core.load(assemble(read_file(paths[i])));
      if (i == 0 && itrace) core.set_trace_sink(trace_buffer.sink());
      cores.push_back(&core);
    }

    const SnapTargets targets{&sys, session.active() ? &session : nullptr,
                              injector.get()};
    if (resuming) {
      // Everything start_sampling()/start() would schedule is already in
      // the snapshot's event section — starting again would double it.
      if (!resume_snapshot(resume_from, ckpt_dir, targets)) return 1;
    } else {
      sys.start_sampling();
      for (Core* core : cores) core->start();
    }
    const NetworkStats before = collect_network_stats(sys.network(),
                                                      sys.ledger());

    // Step until every program finishes or the limit passes, checkpointing
    // at --checkpoint-every boundaries.  The boundary chop adds run_until
    // calls but cannot change results: simulation output is bit-identical
    // for any chop pattern (the PR 1 invariant the snapshot layer builds
    // on), so a checkpointed or resumed run matches an uninterrupted one.
    const TimePs limit = milliseconds(limit_ms);
    const bool checkpointing = ckpt_every_us > 0;
    if (checkpointing) {
      require(!ckpt_dir.empty(), "--checkpoint-every needs --checkpoint-dir");
      std::filesystem::create_directories(ckpt_dir);
    }
    const TimePs every =
        checkpointing ? microseconds(static_cast<double>(ckpt_every_us)) : 0;
    TimePs t = sys.now();
    TimePs next_ckpt = checkpointing ? (t / every + 1) * every : 0;
    auto all_done = [&] {
      for (Core* c : cores) {
        if (!c->finished() && !c->trapped()) return false;
      }
      return true;
    };
    // Stall detection (the run-level face of fault/watchdog.h): the host
    // polls the watchdog's progress metric at step boundaries instead of
    // arming it, so the event queues stay free of watchdog events and
    // snapshots remain possible.  Flat progress with blocked threads or
    // held routes for --stall-window simulated us aborts the run.
    Watchdog dog(sys);
    std::uint64_t last_progress = dog.progress_metric();
    int flat_steps = 0;
    bool stalled = false;
    TimePs stalled_at = 0;
    const long long stall_steps = (stall_window_us + 49) / 50;
    while (t < limit && !all_done()) {
      TimePs step = t + microseconds(50.0);
      if (checkpointing && next_ckpt < step) step = next_ckpt;
      t = step;
      sys.run_until(t);
      if (checkpointing && t >= next_ckpt) {
        save_machine(targets).write_file(checkpoint_path(
            ckpt_dir, static_cast<std::uint64_t>(t / every)));
        prune_checkpoints(ckpt_dir, ckpt_keep);
        next_ckpt += every;
      }
      if (stall_window_us > 0) {
        const std::uint64_t progress = dog.progress_metric();
        if (progress != last_progress) {
          last_progress = progress;
          flat_steps = 0;
        } else if (++flat_steps >= stall_steps &&
                   !sys.diagnose_report().healthy()) {
          stalled = true;
          stalled_at = t;
          break;
        }
      }
    }
    if (session.active()) sys.finish_observability();
    sys.settle_energy();

    bool failed = false;
    for (std::size_t i = 0; i < cores.size(); ++i) {
      Core& core = *cores[i];
      std::printf("-- %s on node 0x%04x --\n", paths[i].c_str(),
                  core.node_id());
      if (core.trapped()) {
        std::printf("  TRAP [%s] thread %d pc %u: %s\n",
                    std::string(to_string(core.trap().kind)).c_str(),
                    core.trap().thread, core.trap().pc,
                    core.trap().message.c_str());
        failed = true;
      } else {
        std::printf("  %s, %llu instructions\n",
                    core.finished() ? "finished" : "STILL RUNNING",
                    static_cast<unsigned long long>(
                        core.instructions_retired()));
        failed |= !core.finished();
      }
      if (!core.console().empty()) {
        std::printf("  console: %s\n", core.console().c_str());
      }
    }
    std::printf("\nsimulated time: %.3f ms\n", to_seconds(sys.now()) * 1e3);

    if (stalled) {
      failed = true;
      std::printf(
          "\nWATCHDOG STALL at %.3f ms: no global progress for %lld us "
          "with blocked threads or held routes\n",
          to_seconds(stalled_at) * 1e3,
          static_cast<long long>(stall_window_us));
    }
    if (failed) {
      const std::string report = sys.diagnose();
      if (!report.empty()) {
        std::printf("\ndiagnostics:\n%s", report.c_str());
      }
    }

    if (!trace_path.empty()) {
      write_file(trace_path, session.chrome_json());
      std::printf("trace: %s (%zu events, %llu dropped)\n",
                  trace_path.c_str(), session.events().size(),
                  static_cast<unsigned long long>(session.dropped_total()));
    }
    if (!metrics_path.empty()) {
      write_file(metrics_path, session.metrics().dump_json());
      std::printf("metrics: %s\n", metrics_path.c_str());
    }
    if (!profile_path.empty()) {
      write_file(profile_path, session.profiler().collapsed());
      std::printf("profile: %s\n", profile_path.c_str());
    }
    if (!attr_path.empty()) {
      write_file(attr_path, session.energy_attribution().to_json());
      std::printf("energy-attr: %s\n", attr_path.c_str());
    }

    if (itrace) {
      std::printf("\ninstruction trace (core 0, first %zu of %llu):\n",
                  trace_buffer.lines().size(),
                  static_cast<unsigned long long>(trace_buffer.count()));
      for (const std::string& line : trace_buffer.lines()) {
        std::printf("%s\n", line.c_str());
      }
    }
    if (energy) {
      std::printf("\nenergy ledger:\n");
      for (int a = 0; a < static_cast<int>(EnergyAccount::kCount); ++a) {
        const auto account = static_cast<EnergyAccount>(a);
        const Joules j = sys.ledger().total(account);
        if (j > 0) {
          std::printf("  %-22s %12.3f uJ\n",
                      std::string(to_string(account)).c_str(), j * 1e6);
        }
      }
      std::printf("  %-22s %12.3f uJ\n", "total",
                  sys.ledger().grand_total() * 1e6);
      std::printf("machine input power now: %.3f W\n",
                  sys.total_input_power());
    }
    if (netstat) {
      const NetworkStats stats =
          stats_delta(collect_network_stats(sys.network(), sys.ledger()),
                      before);
      std::printf("\n%s", render_network_stats(stats, sys.now()).c_str());
    }
    return failed ? 1 : 0;
  } catch (const SnapError& e) {
    std::fprintf(stderr, "snapshot error [%s]: %s\n", e.code_name(),
                 e.what());
    return 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
