// swallow_run: run Swallow assembly programs on a simulated machine.
//
//   swallow_run [options] prog0.s [prog1.s ...]
//
// Programs are placed on consecutive cores (chip-major order, vertical
// node first).  After the run, each core's console, finish state, timing
// and — optionally — the energy ledger and network statistics are printed.
// The observability flags export the run as a Chrome/Perfetto trace, a
// metrics JSON dump and a flamegraph-collapsed profile (src/obs/,
// docs/observability.md); all three are byte-identical for any --jobs
// value.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/netstat.h"
#include "api/patterns.h"
#include "arch/assembler.h"
#include "board/system.h"
#include "common/error.h"
#include "common/strings.h"
#include "fault/fault.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw swallow::Error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw swallow::Error("cannot write " + path);
  out << body;
}

void usage() {
  std::printf(
      "usage: swallow_run [options] prog0.s [prog1.s ...]\n"
      "\n"
      "machine:\n"
      "  --freq MHZ      core frequency in MHz          (default 500)\n"
      "  --dvfs          voltage follows Vmin(f)        (default off)\n"
      "  --grade-max     architectural link rates 500/125 (default Table I)\n"
      "  --slices WxH    grid of slices                 (default 1x1)\n"
      "  --jobs N        parallel engine worker threads (default 0 =\n"
      "                  sequential reference engine; 1..slice-count shards\n"
      "                  one event domain per slice — results and all\n"
      "                  observability output are bit-identical either way)\n"
      "  --time MS       simulation limit in ms         (default 100)\n"
      "\n"
      "faults (src/fault):\n"
      "  --reliable                    CRC/retry framing on every link\n"
      "  --fault-seed N                FaultPlan rng seed (default 1)\n"
      "  --fault-corrupt NODE:DIR:RATE corrupt tokens on node's DIR link\n"
      "                                with per-token probability RATE\n"
      "  --fault-kill NODE:DIR:AT_US   permanently kill a link at AT_US\n"
      "                                (NODE takes hex, DIR is 0..3 NESW)\n"
      "\n"
      "observability (src/obs, docs/observability.md):\n"
      "  --trace FILE    Chrome/Perfetto trace-event JSON of the run\n"
      "  --metrics FILE  metrics registry JSON (latency histograms, IPC)\n"
      "  --profile FILE  flamegraph-collapsed sampling profile\n"
      "  --itrace        print an instruction trace of core 0 (first 100\n"
      "                  lines; was --trace before the trace flag grew a\n"
      "                  file argument)\n"
      "\n"
      "reports:\n"
      "  --energy        print the energy ledger and slice power\n"
      "  --netstat       print per-link-class network statistics\n"
      "  --help, -h      this message\n");
}

// NODE:DIR[:MORE] triple used by the fault flags; NODE accepts hex.
struct LinkRef {
  swallow::NodeId node = 0;
  int direction = 0;
  std::string rest;
};

LinkRef parse_link_ref(const std::string& v) {
  const auto c1 = v.find(':');
  swallow::require(c1 != std::string::npos, "expected NODE:DIR:VALUE");
  const auto c2 = v.find(':', c1 + 1);
  swallow::require(c2 != std::string::npos, "expected NODE:DIR:VALUE");
  LinkRef ref;
  ref.node =
      static_cast<swallow::NodeId>(swallow::parse_int(v.substr(0, c1)));
  ref.direction =
      static_cast<int>(swallow::parse_int(v.substr(c1 + 1, c2 - c1 - 1)));
  swallow::require(ref.direction >= 0 && ref.direction < 4,
                   "link direction must be 0..3 (N/E/S/W)");
  ref.rest = v.substr(c2 + 1);
  return ref;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swallow;

  SystemConfig cfg;
  double limit_ms = 100.0;
  bool itrace = false, energy = false, netstat = false;
  std::string trace_path, metrics_path, profile_path;
  FaultPlan plan;
  bool have_faults = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw Error("missing value for " + arg);
      return argv[++i];
    };
    try {
      if (arg == "--freq") {
        cfg.core_freq = static_cast<MegaHertz>(parse_int(next()));
      } else if (arg == "--dvfs") {
        cfg.auto_dvfs = true;
      } else if (arg == "--grade-max") {
        cfg.link_grade = LinkGrade::kArchitecturalMax;
      } else if (arg == "--slices") {
        const std::string v = next();
        const auto x = v.find('x');
        require(x != std::string::npos, "--slices expects WxH");
        cfg.slices_x = static_cast<int>(parse_int(v.substr(0, x)));
        cfg.slices_y = static_cast<int>(parse_int(v.substr(x + 1)));
      } else if (arg == "--jobs") {
        cfg.jobs = static_cast<int>(parse_int(next()));
      } else if (arg == "--time") {
        limit_ms = static_cast<double>(parse_int(next()));
      } else if (arg == "--reliable") {
        cfg.reliable_links = true;
      } else if (arg == "--fault-seed") {
        plan.seed = static_cast<std::uint64_t>(parse_int(next()));
      } else if (arg == "--fault-corrupt") {
        const LinkRef ref = parse_link_ref(next());
        char* end = nullptr;
        const double rate = std::strtod(ref.rest.c_str(), &end);
        require(end != ref.rest.c_str() && rate >= 0.0 && rate <= 1.0,
                "--fault-corrupt rate must be a probability in [0, 1]");
        plan.corrupt_link(ref.node, ref.direction, rate);
        have_faults = true;
      } else if (arg == "--fault-kill") {
        const LinkRef ref = parse_link_ref(next());
        plan.kill_link(ref.node, ref.direction,
                       microseconds(static_cast<double>(parse_int(ref.rest))));
        have_faults = true;
      } else if (arg == "--trace") {
        trace_path = next();
      } else if (arg == "--metrics") {
        metrics_path = next();
      } else if (arg == "--profile") {
        profile_path = next();
      } else if (arg == "--itrace") {
        itrace = true;
      } else if (arg == "--energy") {
        energy = true;
      } else if (arg == "--netstat") {
        netstat = true;
      } else if (arg == "--help" || arg == "-h") {
        usage();
        return 0;
      } else if (!arg.empty() && arg[0] == '-') {
        std::fprintf(stderr, "unknown option %s\n", arg.c_str());
        return 2;
      } else {
        paths.push_back(arg);
      }
    } catch (const Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }
  if (paths.empty()) {
    usage();
    return 2;
  }

  try {
    TraceConfig tcfg;
    tcfg.tracing = !trace_path.empty();
    tcfg.metrics = !metrics_path.empty();
    tcfg.profile = !profile_path.empty();
    TraceSession session(tcfg);  // outlives the system: models hold Track*

    Simulator sim;
    SwallowSystem sys(sim, cfg);
    require(static_cast<int>(paths.size()) <= sys.core_count(),
            "more programs than cores");
    if (session.active()) sys.attach_observability(session);

    std::unique_ptr<FaultInjector> injector;
    if (have_faults) {
      injector = std::make_unique<FaultInjector>(sys, plan);
      injector->arm();
    }

    std::vector<Core*> cores;
    TraceBuffer trace_buffer;
    trace_buffer.set_max_lines(100);
    for (std::size_t i = 0; i < paths.size(); ++i) {
      const Placement p = linear_placement(cfg, static_cast<int>(i));
      Core& core = sys.core(p.chip_x, p.chip_y, p.layer);
      core.load(assemble(read_file(paths[i])));
      if (i == 0 && itrace) core.set_trace_sink(trace_buffer.sink());
      cores.push_back(&core);
    }
    sys.start_sampling();
    const NetworkStats before = collect_network_stats(sys.network(),
                                                      sys.ledger());
    for (Core* core : cores) core->start();

    // Step until every program finishes or the limit passes.
    const TimePs limit = milliseconds(limit_ms);
    TimePs t = 0;
    auto all_done = [&] {
      for (Core* c : cores) {
        if (!c->finished() && !c->trapped()) return false;
      }
      return true;
    };
    while (t < limit && !all_done()) {
      t += microseconds(50.0);
      sys.run_until(t);
    }
    if (session.active()) sys.finish_observability();
    sys.settle_energy();

    bool failed = false;
    for (std::size_t i = 0; i < cores.size(); ++i) {
      Core& core = *cores[i];
      std::printf("-- %s on node 0x%04x --\n", paths[i].c_str(),
                  core.node_id());
      if (core.trapped()) {
        std::printf("  TRAP [%s] thread %d pc %u: %s\n",
                    std::string(to_string(core.trap().kind)).c_str(),
                    core.trap().thread, core.trap().pc,
                    core.trap().message.c_str());
        failed = true;
      } else {
        std::printf("  %s, %llu instructions\n",
                    core.finished() ? "finished" : "STILL RUNNING",
                    static_cast<unsigned long long>(
                        core.instructions_retired()));
        failed |= !core.finished();
      }
      if (!core.console().empty()) {
        std::printf("  console: %s\n", core.console().c_str());
      }
    }
    std::printf("\nsimulated time: %.3f ms\n", to_seconds(sys.now()) * 1e3);

    if (failed) {
      const std::string report = sys.diagnose();
      if (!report.empty()) {
        std::printf("\ndiagnostics:\n%s", report.c_str());
      }
    }

    if (!trace_path.empty()) {
      write_file(trace_path, session.chrome_json());
      std::printf("trace: %s (%zu events, %llu dropped)\n",
                  trace_path.c_str(), session.events().size(),
                  static_cast<unsigned long long>(session.dropped_total()));
    }
    if (!metrics_path.empty()) {
      write_file(metrics_path, session.metrics().dump_json());
      std::printf("metrics: %s\n", metrics_path.c_str());
    }
    if (!profile_path.empty()) {
      write_file(profile_path, session.profiler().collapsed());
      std::printf("profile: %s\n", profile_path.c_str());
    }

    if (itrace) {
      std::printf("\ninstruction trace (core 0, first %zu of %llu):\n",
                  trace_buffer.lines().size(),
                  static_cast<unsigned long long>(trace_buffer.count()));
      for (const std::string& line : trace_buffer.lines()) {
        std::printf("%s\n", line.c_str());
      }
    }
    if (energy) {
      std::printf("\nenergy ledger:\n");
      for (int a = 0; a < static_cast<int>(EnergyAccount::kCount); ++a) {
        const auto account = static_cast<EnergyAccount>(a);
        const Joules j = sys.ledger().total(account);
        if (j > 0) {
          std::printf("  %-22s %12.3f uJ\n",
                      std::string(to_string(account)).c_str(), j * 1e6);
        }
      }
      std::printf("  %-22s %12.3f uJ\n", "total",
                  sys.ledger().grand_total() * 1e6);
      std::printf("machine input power now: %.3f W\n",
                  sys.total_input_power());
    }
    if (netstat) {
      const NetworkStats stats =
          stats_delta(collect_network_stats(sys.network(), sys.ledger()),
                      before);
      std::printf("\n%s", render_network_stats(stats, sys.now()).c_str());
    }
    return failed ? 1 : 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
