// Reproduces the §III.A headline system numbers and the energy
// proportionality claim (§III):
//   * 193 mW max per core; 71–193 mW dependent on workload,
//   * 3.1 W of cores per slice; ~4.5 W per slice with conversion losses,
//   * 134 W for the 480-core / 30-slice machine,
//   * up to 240 GIPS aggregate throughput,
//   * power proportional to load (linear in active cores and frequency).
#include <cmath>
#include <cstdio>
#include <vector>

#include "analysis/report.h"
#include "arch/assembler.h"
#include "bench/bench_util.h"
#include "common/table.h"

namespace swallow {
namespace {

struct SliceNumbers {
  double cores_w;
  double slice_w;
  double node_mw;
};

SliceNumbers loaded_slice() {
  Simulator sim;
  auto sys = bench::one_slice(sim);
  bench::load_all_spinning(*sys, 4);
  sim.run_until(microseconds(20.0));
  SliceNumbers n;
  n.cores_w = sys->total_cores_power();
  n.slice_w = sys->total_input_power();
  n.node_mw = to_milliwatts(n.slice_w) / Slice::kCores;
  return n;
}

/// Slice core power with a fraction of cores loaded (proportionality).
double partial_load_w(int loaded_cores) {
  Simulator sim;
  auto sys = bench::one_slice(sim);
  const Image img = assemble(bench::spin_program(4));
  for (int i = 0; i < loaded_cores; ++i) {
    sys->core_by_index(i).load(img);
    sys->core_by_index(i).start();
  }
  sim.run_until(microseconds(20.0));
  return sys->total_cores_power();
}

struct MachineNumbers {
  double input_w;
  double gips;
};

MachineNumbers full_machine() {
  Simulator sim;
  SystemConfig cfg;
  cfg.slices_x = 5;
  cfg.slices_y = 6;  // 30 slices, 480 cores
  SwallowSystem sys(sim, cfg);
  bench::load_all_spinning(sys, 4);
  const TimePs warmup = microseconds(2.0);
  sim.run_until(warmup);
  std::uint64_t base = 0;
  for (int i = 0; i < sys.core_count(); ++i) {
    base += sys.core_by_index(i).instructions_retired();
  }
  const TimePs window = microseconds(8.0);
  sim.run_until(warmup + window);
  std::uint64_t total = 0;
  for (int i = 0; i < sys.core_count(); ++i) {
    total += sys.core_by_index(i).instructions_retired();
  }
  MachineNumbers m;
  m.input_w = sys.total_input_power();
  m.gips = static_cast<double>(total - base) / to_seconds(window) / 1e9;
  return m;
}

}  // namespace
}  // namespace swallow

int main() {
  using namespace swallow;
  std::printf("== §III: energy efficiency and proportionality ==\n\n");

  // ---- One fully loaded slice.
  const SliceNumbers s = loaded_slice();
  Comparison slice_cmp("Loaded slice (16 cores, 4 threads each, 500 MHz)");
  slice_cmp.add("cores power (W)", 3.1, s.cores_w, "W");
  slice_cmp.add("slice input power (W)", 4.5, s.slice_w, "W");
  slice_cmp.add("per-node power (mW)", 260.0, s.node_mw, "mW");
  std::printf("%s\n", slice_cmp.render().c_str());

  // ---- Workload dependence: 71–193 mW per core.
  {
    Simulator sim;
    auto sys = bench::one_slice(sim, 71.0);
    bench::load_all_spinning(*sys, 4);
    sim.run_until(microseconds(40.0));
    const double low_mw =
        to_milliwatts(sys->total_cores_power()) / Slice::kCores;
    std::printf("Workload/frequency envelope per core: %.0f mW at 71 MHz "
                "loaded .. %.0f mW at 500 MHz loaded (paper: 71-193 mW; "
                "65 mW at 71 MHz from Eq. (1)).\n\n",
                low_mw, to_milliwatts(s.cores_w) / Slice::kCores);
  }

  // ---- Proportionality in active cores.
  TextTable prop("Core power vs number of loaded cores (one slice)");
  prop.header({"loaded cores", "cores power (W)"});
  std::vector<double> xs, ys;
  for (int n : {0, 4, 8, 12, 16}) {
    const double w = partial_load_w(n);
    xs.push_back(n);
    ys.push_back(w);
    prop.row({strprintf("%d", n), strprintf("%.3f", w)});
  }
  std::printf("%s\n", prop.render().c_str());
  // Linearity: endpoints vs midpoint.
  const double mid_expected = 0.5 * (ys.front() + ys.back());
  const double lin_dev = std::abs(ys[2] - mid_expected) / mid_expected;
  std::printf("linearity deviation at half load: %.2f %%\n\n", lin_dev * 100);

  // ---- The full 480-core machine.
  std::printf("Building and loading the 480-core, 30-slice machine...\n");
  const MachineNumbers m = full_machine();
  Comparison machine_cmp("480-core machine, fully loaded");
  machine_cmp.add("total input power (W)", 134.0, m.input_w, "W");
  machine_cmp.add("aggregate throughput (GIPS)", 240.0, m.gips, "GIPS");
  std::printf("%s\n", machine_cmp.render().c_str());

  const bool ok = std::abs(s.cores_w - 3.1) < 0.2 &&
                  std::abs(m.gips - 240.0) < 12.0 &&
                  m.input_w > 110.0 && m.input_w < 150.0 && lin_dev < 0.05;
  return ok ? 0 : 1;
}
