// Reproduces Fig. 4: impact of voltage and frequency scaling on power
// (one core, four active threads).
//
// The paper computes the DVFS savings from P = C V^2 f with the
// experimentally determined minimum voltages (0.6 V at 71 MHz, 0.95 V at
// 500 MHz); our CorePowerModel implements exactly that calculation.
#include <cstdio>
#include <vector>

#include "analysis/report.h"
#include "common/table.h"
#include "energy/core_power.h"

int main() {
  using namespace swallow;
  std::printf("== Fig. 4: voltage + frequency scaling, one core ==\n\n");

  CorePowerModel model;
  TextTable t("Active core power");
  t.header({"f (MHz)", "Vmin (V)", "P @ 1V (mW)", "P after voltage scaling (mW)",
            "saving"});
  std::vector<double> freqs;
  double save_lo = 0, save_hi = 0;
  for (double f = 71.0; f <= 500.0; f += 33.0) {
    freqs.push_back(f);
    const Volts v = model.min_voltage(f);
    const double p1 = to_milliwatts(model.active_power(f, 1.0));
    const double pv = to_milliwatts(model.active_power(f, v));
    const double saving = 1.0 - pv / p1;
    if (f == 71.0) save_lo = saving;
    save_hi = saving;
    t.row({fmt_double(f, 0), fmt_double(v, 3), fmt_double(p1, 1),
           fmt_double(pv, 1), fmt_percent(saving)});
  }
  std::printf("%s\n", t.render().c_str());

  Comparison cmp("Fig. 4 anchors");
  cmp.add("P @ 1V, 500 MHz (Eq. 1)", 196.0,
          to_milliwatts(model.active_power(500, 1.0)), "mW");
  cmp.add("P @ 1V, 71 MHz (Eq. 1)", 67.3,
          to_milliwatts(model.active_power(71, 1.0)), "mW");
  std::printf("%s\n", cmp.render().c_str());

  std::printf("DVFS saving grows from %.1f %% at 500 MHz to %.1f %% at "
              "71 MHz — the Fig. 4 shape (the gap between the curves widens "
              "at low frequency).\n",
              save_hi * 100.0, save_lo * 100.0);

  const bool ok = save_lo > save_hi && save_lo > 0.4 &&
                  cmp.worst_deviation() < 0.01;
  return ok ? 0 : 1;
}
