// Reproduces the platform aim the paper opens with (§I): "Scale to
// hundreds of cores and beyond" with "proportional scaling in performance
// and energy".
//
// Machines from 1 slice (16 cores) to 30 slices (480 cores) are built,
// fully loaded, and measured: aggregate GIPS and input power must both
// grow linearly with core count, with the per-core figures flat — the
// energy-proportional scaling of §III made visible as a sweep.
#include <cstdio>
#include <vector>

#include "arch/assembler.h"
#include "bench/bench_util.h"
#include "common/mathutil.h"
#include "common/strings.h"
#include "common/table.h"

namespace swallow {
namespace {

struct ScalePoint {
  int slices;
  int cores;
  double gips;
  double input_w;
  double idle_w;
};

ScalePoint measure(int sx, int sy) {
  ScalePoint p;
  p.slices = sx * sy;
  // Idle power first.
  {
    Simulator sim;
    SystemConfig cfg;
    cfg.slices_x = sx;
    cfg.slices_y = sy;
    SwallowSystem sys(sim, cfg);
    sim.run_until(microseconds(1.0));
    p.idle_w = sys.total_input_power();
  }
  Simulator sim;
  SystemConfig cfg;
  cfg.slices_x = sx;
  cfg.slices_y = sy;
  SwallowSystem sys(sim, cfg);
  p.cores = sys.core_count();
  bench::load_all_spinning(sys, 4);
  const TimePs warmup = microseconds(2.0);
  sim.run_until(warmup);
  std::uint64_t base = 0;
  for (int i = 0; i < sys.core_count(); ++i) {
    base += sys.core_by_index(i).instructions_retired();
  }
  const TimePs window = microseconds(6.0);
  sim.run_until(warmup + window);
  std::uint64_t total = 0;
  for (int i = 0; i < sys.core_count(); ++i) {
    total += sys.core_by_index(i).instructions_retired();
  }
  p.gips = static_cast<double>(total - base) / to_seconds(window) / 1e9;
  p.input_w = sys.total_input_power();
  return p;
}

}  // namespace
}  // namespace swallow

int main() {
  using namespace swallow;
  std::printf("== §I/§III: proportional scaling, 16 to 480 cores ==\n\n");

  const std::pair<int, int> grids[] = {{1, 1}, {2, 1}, {2, 2},
                                       {3, 3},  {4, 4}, {5, 6}};
  TextTable t("Fully loaded machines (500 MHz, 4 threads/core)");
  t.header({"slices", "cores", "GIPS", "GIPS/core", "input W", "mW/core",
            "idle W"});
  std::vector<double> cores_axis, gips_axis, power_axis;
  for (const auto& [sx, sy] : grids) {
    const ScalePoint p = measure(sx, sy);
    cores_axis.push_back(p.cores);
    gips_axis.push_back(p.gips);
    power_axis.push_back(p.input_w);
    t.row({strprintf("%d", p.slices), strprintf("%d", p.cores),
           strprintf("%.1f", p.gips), strprintf("%.3f", p.gips / p.cores),
           strprintf("%.2f", p.input_w),
           strprintf("%.0f", p.input_w / p.cores * 1e3),
           strprintf("%.2f", p.idle_w)});
  }
  std::printf("%s\n", t.render().c_str());

  const LineFit perf = fit_line(cores_axis, gips_axis);
  const LineFit power = fit_line(cores_axis, power_axis);
  std::printf("performance fit: %.4f GIPS/core (R^2 = %.6f)\n", perf.slope,
              perf.r_squared);
  std::printf("power fit:       %.1f mW/core + %.2f W fixed (R^2 = %.6f)\n",
              power.slope * 1e3, power.intercept, power.r_squared);
  std::printf("\nBoth scale linearly through 480 cores: the paper's "
              "proportional-scaling aim, with 0.5 GIPS/core (Eq. 2) and "
              "~283 mW/core (§III.A) preserved at every size.\n");

  const bool ok = perf.r_squared > 0.9999 && power.r_squared > 0.9999 &&
                  perf.slope > 0.48 && perf.slope < 0.52;
  std::printf("\nshape: %s\n", ok ? "OK" : "VIOLATED");
  return ok ? 0 : 1;
}
