// Reproduces the platform aim the paper opens with (§I): "Scale to
// hundreds of cores and beyond" with "proportional scaling in performance
// and energy".
//
// Machines from 1 slice (16 cores) to 30 slices (480 cores) are built,
// fully loaded, and measured: aggregate GIPS and input power must both
// grow linearly with core count, with the per-core figures flat — the
// energy-proportional scaling of §III made visible as a sweep.
#include <chrono>
#include <cstdio>
#include <vector>

#include "arch/assembler.h"
#include "bench/bench_util.h"
#include "common/mathutil.h"
#include "common/strings.h"
#include "common/table.h"

namespace swallow {
namespace {

struct ScalePoint {
  int slices;
  int cores;
  double gips;
  double input_w;
  double idle_w;
  double wall_s;    // host wall time for the measurement window
  double sim_mips;  // simulated instructions per host second, in millions
  double sync_exact_wall_s;  // same window, parallel exact sync (8 workers)
  double sync_b64_wall_s;    // same window, --sync bounded:64 (8 workers)
};

/// Host wall time of the measurement window on the parallel engine at
/// per-chip granularity (PR 10): exact conservative sync versus
/// bounded:64.  Same workload and simulated span as measure(), so the
/// bounded column shows what relaxed sync buys wall-clock-wise at each
/// machine size.
double sync_window_wall_s(int sx, int sy, SyncMode sync, int bound) {
  Simulator sim;
  SystemConfig cfg;
  cfg.slices_x = sx;
  cfg.slices_y = sy;
  cfg.jobs = 8;
  cfg.granularity = DomainGranularity::kChip;
  cfg.sync = sync;
  cfg.sync_bound = bound;
  SwallowSystem sys(sim, cfg);
  bench::load_all_spinning(sys, 4);
  const TimePs warmup = microseconds(2.0);
  sys.run_until(warmup);
  const auto host_start = std::chrono::steady_clock::now();
  sys.run_until(warmup + microseconds(6.0));
  const auto host_end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(host_end - host_start).count();
}

ScalePoint measure(int sx, int sy) {
  ScalePoint p;
  p.slices = sx * sy;
  // Idle power first.
  {
    Simulator sim;
    SystemConfig cfg;
    cfg.slices_x = sx;
    cfg.slices_y = sy;
    SwallowSystem sys(sim, cfg);
    sim.run_until(microseconds(1.0));
    p.idle_w = sys.total_input_power();
  }
  Simulator sim;
  SystemConfig cfg;
  cfg.slices_x = sx;
  cfg.slices_y = sy;
  SwallowSystem sys(sim, cfg);
  p.cores = sys.core_count();
  bench::load_all_spinning(sys, 4);
  const TimePs warmup = microseconds(2.0);
  sim.run_until(warmup);
  std::uint64_t base = 0;
  for (int i = 0; i < sys.core_count(); ++i) {
    base += sys.core_by_index(i).instructions_retired();
  }
  const TimePs window = microseconds(6.0);
  const auto host_start = std::chrono::steady_clock::now();
  sim.run_until(warmup + window);
  const auto host_end = std::chrono::steady_clock::now();
  std::uint64_t total = 0;
  for (int i = 0; i < sys.core_count(); ++i) {
    total += sys.core_by_index(i).instructions_retired();
  }
  p.gips = static_cast<double>(total - base) / to_seconds(window) / 1e9;
  p.input_w = sys.total_input_power();
  p.wall_s = std::chrono::duration<double>(host_end - host_start).count();
  p.sim_mips =
      p.wall_s > 0.0 ? static_cast<double>(total - base) / p.wall_s / 1e6 : 0.0;
  p.sync_exact_wall_s = sync_window_wall_s(sx, sy, SyncMode::kExact, 0);
  p.sync_b64_wall_s = sync_window_wall_s(sx, sy, SyncMode::kBounded, 64);
  return p;
}

}  // namespace
}  // namespace swallow

int main() {
  using namespace swallow;
  std::printf("== §I/§III: proportional scaling, 16 to 480 cores ==\n\n");

  const std::pair<int, int> grids[] = {{1, 1}, {2, 1}, {2, 2},
                                       {3, 3},  {4, 4}, {5, 6}};
  TextTable t("Fully loaded machines (500 MHz, 4 threads/core)");
  t.header({"slices", "cores", "GIPS", "GIPS/core", "input W", "mW/core",
            "idle W", "wall s", "sim MIPS", "sync x"});
  std::vector<double> cores_axis, gips_axis, power_axis;
  std::vector<ScalePoint> points;
  for (const auto& [sx, sy] : grids) {
    const ScalePoint p = measure(sx, sy);
    points.push_back(p);
    cores_axis.push_back(p.cores);
    gips_axis.push_back(p.gips);
    power_axis.push_back(p.input_w);
    t.row({strprintf("%d", p.slices), strprintf("%d", p.cores),
           strprintf("%.1f", p.gips), strprintf("%.3f", p.gips / p.cores),
           strprintf("%.2f", p.input_w),
           strprintf("%.0f", p.input_w / p.cores * 1e3),
           strprintf("%.2f", p.idle_w), strprintf("%.3f", p.wall_s),
           strprintf("%.1f", p.sim_mips),
           strprintf("%.2f", p.sync_b64_wall_s > 0.0
                                 ? p.sync_exact_wall_s / p.sync_b64_wall_s
                                 : 0.0)});
  }
  std::printf("%s\n", t.render().c_str());

  // Machine-readable mirror of the sweep so CI and plotting scripts don't
  // have to scrape the table.  One self-contained JSON line per point.
  std::printf("scaling_json: [");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ScalePoint& p = points[i];
    std::printf("%s\n  {\"slices\": %d, \"cores\": %d, \"gips\": %.4f, "
                "\"sim_mips\": %.3f, \"wall_s\": %.6f, \"input_w\": %.4f, "
                "\"idle_w\": %.4f, \"sync_exact_wall_s\": %.6f, "
                "\"sync_b64_wall_s\": %.6f, \"sync_speedup\": %.3f}",
                i == 0 ? "" : ",", p.slices, p.cores, p.gips, p.sim_mips,
                p.wall_s, p.input_w, p.idle_w, p.sync_exact_wall_s,
                p.sync_b64_wall_s,
                p.sync_b64_wall_s > 0.0
                    ? p.sync_exact_wall_s / p.sync_b64_wall_s
                    : 0.0);
  }
  std::printf("\n]\n\n");

  const LineFit perf = fit_line(cores_axis, gips_axis);
  const LineFit power = fit_line(cores_axis, power_axis);
  std::printf("performance fit: %.4f GIPS/core (R^2 = %.6f)\n", perf.slope,
              perf.r_squared);
  std::printf("power fit:       %.1f mW/core + %.2f W fixed (R^2 = %.6f)\n",
              power.slope * 1e3, power.intercept, power.r_squared);
  std::printf("\nBoth scale linearly through 480 cores: the paper's "
              "proportional-scaling aim, with 0.5 GIPS/core (Eq. 2) and "
              "~283 mW/core (§III.A) preserved at every size.\n");

  const bool ok = perf.r_squared > 0.9999 && power.r_squared > 0.9999 &&
                  perf.slope > 0.48 && perf.slope < 0.52;
  std::printf("\nshape: %s\n", ok ? "OK" : "VIOLATED");
  return ok ? 0 : 1;
}
