// Reproduces the §V.B claim that packet overhead (3-byte route header plus
// END token) reduces throughput to "approximately 87 % of the link speed,
// dependent upon the packet size", and the link-grade ablation (Table I
// operating rates vs §V.C architectural rates).
#include <cstdio>
#include <memory>

#include "arch/assembler.h"
#include "bench/bench_util.h"
#include "common/table.h"
#include "noc/network.h"

namespace swallow {
namespace {

/// Payload throughput streaming `packets` packets of `words` words over a
/// single on-chip link, as a fraction of the line rate.
double efficiency(int words, LinkGrade grade) {
  Simulator sim;
  EnergyLedger ledger;
  Network net(sim, ledger, grade);
  auto east = std::make_shared<TableRouter>();
  east->set_default(kDirEast);
  auto west = std::make_shared<TableRouter>();
  west->set_default(kDirWest);
  Core::Config ca;
  ca.node_id = 0;
  Core a(sim, ledger, ca);
  Core::Config cb;
  cb.node_id = 1;
  Core b(sim, ledger, cb);
  Switch& sa = net.add_switch(0, east);
  Switch& sb = net.add_switch(1, west);
  sa.attach_core(a);
  sb.attach_core(b);
  net.connect(sa, kDirEast, sb, kDirWest, LinkClass::kOnChip);

  const int packets = 2048 / words + 8;  // keep run lengths similar
  a.load(assemble(bench::stream_sender(1, 0, packets, words)));
  b.load(assemble(bench::stream_receiver(packets, words)));
  a.start();
  b.start();
  sim.run();
  const double payload_bits = static_cast<double>(packets) * words * 32.0;
  const double line_rate =
      link_rate(LinkClass::kOnChip, grade) * 1e6;  // bit/s
  return payload_bits / to_seconds(sim.now()) / line_rate;
}

}  // namespace
}  // namespace swallow

int main() {
  using namespace swallow;
  std::printf("== §V.B: packet overhead vs packet size ==\n\n");

  TextTable t("Payload throughput as a fraction of link speed (on-chip link)");
  t.header({"payload (bytes)", "tokens incl. header+END", "ideal",
            "measured (Table I rates)", "measured (max rates)"});
  double at_28 = 0;
  for (int words : {1, 2, 4, 7, 8, 16, 32, 64}) {
    const int payload = words * 4;
    const int tokens = payload + 4;
    const double ideal = static_cast<double>(payload) / tokens;
    const double slow = efficiency(words, LinkGrade::kSwallowDefault);
    const double fast = efficiency(words, LinkGrade::kArchitecturalMax);
    if (words == 7) at_28 = slow;
    t.row({strprintf("%d", payload), strprintf("%d", tokens),
           strprintf("%.1f %%", ideal * 100.0),
           strprintf("%.1f %%", slow * 100.0),
           strprintf("%.1f %%", fast * 100.0)});
  }
  std::printf("%s\n", t.render().c_str());

  std::printf("Paper: \"overhead of packet data reduces throughput to "
              "approximately 87%% of the link speed, but is dependent upon "
              "the packet size\".\n");
  std::printf("Measured at 28-byte packets: %.1f %%\n", at_28 * 100.0);
  const bool ok = at_28 > 0.82 && at_28 < 0.92;
  return ok ? 0 : 1;
}
