// A small embedded benchmark suite — the paper's stated future work ("a
// wider study of benchmarks and program structures for Swallow", §I) made
// runnable.  Each program is Swallow assembly, self-checked against a
// host-computed reference, and reported with instructions, cycles, energy
// and — where control flow is statically resolvable — the XTA-style static
// cycle prediction next to the simulated count.
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "arch/assembler.h"
#include "arch/core.h"
#include "arch/timing.h"
#include "common/strings.h"
#include "common/table.h"
#include "sim/simulator.h"

namespace swallow {
namespace {

struct Program {
  std::string name;
  std::string source;
  std::string expected_console;
  bool statically_timeable;
};

std::string words_list(const std::vector<std::uint32_t>& v) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    out += (i ? ", " : "") + strprintf("%u", v[i]);
  }
  return out;
}

Program make_dotprod() {
  std::vector<std::uint32_t> a, b;
  for (int i = 0; i < 32; ++i) {
    a.push_back(static_cast<std::uint32_t>(3 * i + 1));
    b.push_back(static_cast<std::uint32_t>(7 * i + 2));
  }
  std::uint32_t expected = 0;
  for (int i = 0; i < 32; ++i) expected += a[static_cast<std::size_t>(i)] *
                                           b[static_cast<std::size_t>(i)];
  Program p;
  p.name = "dotprod-32";
  p.statically_timeable = true;
  p.expected_console = std::to_string(static_cast<std::int32_t>(expected));
  p.source = strprintf(R"(
      ldc   r8, veca
      ldc   r9, vecb
      ldc   r2, 32
      ldc   r0, 0
  loop:
      ldw   r3, r8, 0
      ldw   r4, r9, 0
      macc  r0, r3, r4
      addi  r8, r8, 4
      addi  r9, r9, 4
      subi  r2, r2, 1
      bt    r2, loop
      printi r0
      texit
  veca: .word %s
  vecb: .word %s
  )", words_list(a).c_str(), words_list(b).c_str());
  return p;
}

Program make_matmul() {
  // 4x4 integer matrix product, checksum of the result.
  std::uint32_t A[4][4], B[4][4], C[4][4] = {};
  std::vector<std::uint32_t> a_flat, b_flat;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      A[i][j] = static_cast<std::uint32_t>(i * 4 + j + 1);
      B[i][j] = static_cast<std::uint32_t>((i * 7 + j * 3) % 11);
      a_flat.push_back(A[i][j]);
      b_flat.push_back(B[i][j]);
    }
  }
  std::uint32_t checksum = 0;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      for (int k = 0; k < 4; ++k) C[i][j] += A[i][k] * B[k][j];
      checksum += C[i][j];
    }
  }
  Program p;
  p.name = "matmul-4x4";
  p.statically_timeable = true;
  p.expected_console = std::to_string(static_cast<std::int32_t>(checksum));
  p.source = strprintf(R"(
      ldc   r0, 0          # checksum
      ldc   r1, 0          # i
  iloop:
      ldc   r2, 0          # j
  jloop:
      ldc   r3, 0          # k
      ldc   r4, 0          # acc
  kloop:
      # A[i][k]: base + (i*4+k)*4
      shli  r5, r1, 2
      add   r5, r5, r3
      shli  r5, r5, 2
      ldc   r6, mata
      add   r6, r6, r5
      ldw   r7, r6, 0
      # B[k][j]
      shli  r5, r3, 2
      add   r5, r5, r2
      shli  r5, r5, 2
      ldc   r6, matb
      add   r6, r6, r5
      ldw   r8, r6, 0
      macc  r4, r7, r8
      addi  r3, r3, 1
      eqi   r5, r3, 4
      bf    r5, kloop
      add   r0, r0, r4
      addi  r2, r2, 1
      eqi   r5, r2, 4
      bf    r5, jloop
      addi  r1, r1, 1
      eqi   r5, r1, 4
      bf    r5, iloop
      printi r0
      texit
  mata: .word %s
  matb: .word %s
  )", words_list(a_flat).c_str(), words_list(b_flat).c_str());
  return p;
}

Program make_crc32() {
  std::vector<std::uint32_t> data;
  for (int i = 0; i < 16; ++i) {
    data.push_back(0xA5000000u + static_cast<std::uint32_t>(i * 0x10327));
  }
  // Bitwise CRC-32 (poly 0xEDB88320), word at a time, matching the asm.
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::uint32_t w : data) {
    crc ^= w;
    for (int b = 0; b < 32; ++b) {
      crc = (crc >> 1) ^ (crc & 1 ? 0xEDB88320u : 0);
    }
  }
  Program p;
  p.name = "crc32-16w";
  p.statically_timeable = false;  // data-dependent branches on crc bits
  p.expected_console = std::to_string(static_cast<std::int32_t>(crc));
  p.source = strprintf(R"(
      ldc   r0, 0xffff
      ldch  r0, 0xffff     # crc = 0xffffffff
      ldc   r8, data
      ldc   r9, 16         # words
      ldc   r10, 0xedb8
      ldch  r10, 0x8320    # polynomial
  wloop:
      ldw   r1, r8, 0
      xor   r0, r0, r1
      ldc   r2, 32
  bloop:
      ldc   r3, 1
      and   r3, r0, r3
      shri  r0, r0, 1
      bf    r3, nopoly
      xor   r0, r0, r10
  nopoly:
      subi  r2, r2, 1
      bt    r2, bloop
      addi  r8, r8, 4
      subi  r9, r9, 1
      bt    r9, wloop
      printi r0
      texit
  data: .word %s
  )", words_list(data).c_str());
  return p;
}

Program make_sort() {
  std::vector<std::uint32_t> data = {42, 7, 999, 3,  512, 88, 1,  64,
                                     31, 5, 777, 19, 256, 90, 11, 4};
  std::vector<std::uint32_t> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  std::uint32_t check = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    check += sorted[i] * static_cast<std::uint32_t>(i + 1);
  }
  Program p;
  p.name = "bubblesort-16";
  p.statically_timeable = false;  // swap decisions are data-dependent
  p.expected_console = std::to_string(static_cast<std::int32_t>(check));
  p.source = strprintf(R"(
      ldc   r9, 15         # passes
  pass:
      ldc   r8, arr
      ldc   r2, 15         # comparisons this pass
  cmp:
      ldw   r3, r8, 0
      ldw   r4, r8, 1
      lsu   r5, r4, r3     # next < cur -> swap
      bf    r5, noswap
      stw   r4, r8, 0
      stw   r3, r8, 1
  noswap:
      addi  r8, r8, 4
      subi  r2, r2, 1
      bt    r2, cmp
      subi  r9, r9, 1
      bt    r9, pass
      # weighted checksum
      ldc   r8, arr
      ldc   r2, 16
      ldc   r0, 0
      ldc   r6, 1
  sum:
      ldw   r3, r8, 0
      macc  r0, r3, r6
      addi  r6, r6, 1
      addi  r8, r8, 4
      subi  r2, r2, 1
      bt    r2, sum
      printi r0
      texit
  arr: .word %s
  )", words_list(data).c_str());
  return p;
}

Program make_fib() {
  // Recursive fib(15) = 610: exercises calls and the stack.
  Program p;
  p.name = "fib-15 (recursive)";
  p.statically_timeable = false;  // return addresses pass through memory
  p.expected_console = "610";
  p.source = R"(
      ldc   r0, 15
      bl    fib
      printi r0
      texit
  fib:
      ldc   r1, 2
      lsu   r2, r0, r1
      bf    r2, recurse
      ret                  # fib(0)=0, fib(1)=1
  recurse:
      extsp 2
      stwsp lr, 0
      stwsp r0, 1
      subi  r0, r0, 1
      bl    fib            # fib(n-1)
      ldwsp r3, 1
      stwsp r0, 1          # stash fib(n-1)
      subi  r0, r3, 2
      bl    fib            # fib(n-2)
      ldwsp r3, 1
      add   r0, r0, r3
      ldwsp lr, 0
      ldawsp sp, 2
      ret
  )";
  return p;
}

struct RunResult {
  bool passed = false;
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  double energy_uj = 0;
  std::string console;
};

RunResult run_program(const Program& p) {
  Simulator sim;
  EnergyLedger ledger;
  Core::Config cfg;
  Core core(sim, ledger, cfg);
  core.load(assemble(p.source));
  core.start();
  sim.run();  // all programs terminate: the queue drains at the last retire
  core.settle_energy(sim.now());
  RunResult r;
  r.console = core.console();
  r.passed = !core.trapped() && core.finished() &&
             core.console() == p.expected_console;
  r.instructions = core.instructions_retired();
  r.cycles = static_cast<std::uint64_t>(sim.now() / 2000);  // 2 ns cycles
  r.energy_uj = ledger.grand_total() * 1e6;
  return r;
}

}  // namespace
}  // namespace swallow

int main() {
  using namespace swallow;
  std::printf("== embedded benchmark suite (single core, 500 MHz) ==\n\n");

  const Program programs[] = {make_dotprod(), make_matmul(), make_crc32(),
                              make_sort(), make_fib()};
  TextTable t("All results self-checked against host references");
  t.header({"program", "check", "instructions", "cycles", "XTA predicted",
            "energy (uJ)"});
  bool all_ok = true;
  for (const Program& p : programs) {
    const RunResult r = run_program(p);
    all_ok &= r.passed;
    std::string predicted = "-";
    const TimingResult tr = analyze_timing(assemble(p.source));
    if (p.statically_timeable) {
      predicted = tr.exact ? strprintf("%llu%s",
                                       static_cast<unsigned long long>(
                                           tr.thread_cycles),
                                       tr.thread_cycles == r.cycles ? " ✓"
                                                                    : " ✗")
                           : "analysis failed";
      all_ok &= tr.exact && tr.thread_cycles == r.cycles;
    } else {
      all_ok &= !tr.exact;  // the analyzer must refuse, not guess
    }
    t.row({p.name, r.passed ? "ok" : "FAIL (" + r.console + ")",
           strprintf("%llu", static_cast<unsigned long long>(r.instructions)),
           strprintf("%llu", static_cast<unsigned long long>(r.cycles)),
           predicted, strprintf("%.2f", r.energy_uj)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("XTA column: static cycle prediction for statically resolvable "
              "programs equals the simulated count exactly (the §IV.A "
              "time-determinism property).\n");
  std::printf("\n%s\n", all_ok ? "all checks OK" : "CHECK FAILURES");
  return all_ok ? 0 : 1;
}
