// Ablation: energy proportionality *in practice* (§III.B).
//
// The XS1-L "supports dynamic frequency scaling, based on run-time load
// factors".  A rate-limited task (fixed work per period) runs under three
// policies — fixed 500 MHz, DFS (governor, 1 V), and DFS + DVFS (voltage
// follows Fig. 4's Vmin curve) — comparing energy, settled frequency and
// delivered work.
#include <cstdio>

#include "api/governor.h"
#include "arch/assembler.h"
#include "common/strings.h"
#include "common/table.h"
#include "sim/simulator.h"

namespace swallow {
namespace {

/// ~500 instructions of work every 10 us (a 50 MIPS demand).
const char* kRateLimited = R"(
    gettime r9
loop:
    ldc r2, 166
w:
    add r6, r6, r7
    subi r2, r2, 1
    bt r2, w
    ldc r1, 1000
    add r9, r9, r1
    timewait r9
    bu loop
)";

struct PolicyResult {
  double energy_uj;
  double final_mhz;
  std::uint64_t retired;
};

PolicyResult run_policy(bool governed, bool dvfs) {
  Simulator sim;
  EnergyLedger ledger;
  Core::Config cfg;
  cfg.auto_dvfs = dvfs;
  Core core(sim, ledger, cfg);
  core.load(assemble(kRateLimited));
  core.start();
  DfsGovernor governor(sim, core, {});
  if (governed) governor.start();
  sim.run_until(milliseconds(10.0));
  core.settle_energy(sim.now());
  return PolicyResult{ledger.grand_total() * 1e6, core.frequency(),
                      core.instructions_retired()};
}

}  // namespace
}  // namespace swallow

int main() {
  using namespace swallow;
  std::printf("== DFS/DVFS ablation: rate-limited task, 10 ms window ==\n\n");

  const PolicyResult fixed = run_policy(false, false);
  const PolicyResult dfs = run_policy(true, false);
  const PolicyResult dvfs = run_policy(true, true);

  TextTable t("50 MIPS demand on one core");
  t.header({"policy", "energy (uJ)", "settled f (MHz)", "instructions",
            "energy saving"});
  auto row = [&](const char* name, const PolicyResult& r) {
    t.row({name, strprintf("%.1f", r.energy_uj),
           strprintf("%.0f", r.final_mhz),
           strprintf("%llu", static_cast<unsigned long long>(r.retired)),
           strprintf("%.1f %%", (1.0 - r.energy_uj / fixed.energy_uj) * 100)});
  };
  row("fixed 500 MHz", fixed);
  row("DFS (governor, 1 V)", dfs);
  row("DFS + DVFS (Vmin)", dvfs);
  std::printf("%s\n", t.render().c_str());

  const double work_kept = static_cast<double>(dvfs.retired) /
                           static_cast<double>(fixed.retired);
  std::printf("work delivered under DFS+DVFS: %.1f %% of fixed-frequency\n",
              work_kept * 100.0);
  std::printf("(the task is rate-limited, so a good governor saves energy "
              "without losing work — the paper's proportionality story)\n");

  const bool ok = dfs.energy_uj < 0.85 * fixed.energy_uj &&
                  dvfs.energy_uj < dfs.energy_uj && work_kept > 0.95;
  std::printf("\nshape: %s\n", ok ? "OK" : "VIOLATED");
  return ok ? 0 : 1;
}
