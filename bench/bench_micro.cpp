// Simulator micro-benchmarks (google-benchmark): host-side performance of
// the event kernel, the ISA interpreter, the assembler and the NoC — useful
// for sizing how large a Swallow machine can be simulated interactively.
#include <benchmark/benchmark.h>

#include <memory>

#include "arch/assembler.h"
#include "arch/core.h"
#include "bench/bench_util.h"
#include "board/system.h"
#include "sim/simulator.h"

namespace swallow {
namespace {

void BM_EventQueueScheduleDispatch(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.after(i * 10, [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_dispatched());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleDispatch);

void BM_IsaInterpreterMips(benchmark::State& state) {
  const Image img = assemble(bench::spin_program(4));
  for (auto _ : state) {
    Simulator sim;
    EnergyLedger ledger;
    Core::Config cfg;
    Core core(sim, ledger, cfg);
    core.load(img);
    core.start();
    sim.run_until(microseconds(100.0));
    benchmark::DoNotOptimize(core.instructions_retired());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(core.instructions_retired()));
  }
}
BENCHMARK(BM_IsaInterpreterMips);

void BM_Assembler(benchmark::State& state) {
  const std::string src = bench::stream_sender(1, 0, 16, 16);
  for (auto _ : state) {
    const Image img = assemble(src);
    benchmark::DoNotOptimize(img.words.data());
  }
}
BENCHMARK(BM_Assembler);

void BM_SliceConstruction(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    auto sys = bench::one_slice(sim);
    benchmark::DoNotOptimize(sys->core_count());
  }
}
BENCHMARK(BM_SliceConstruction);

void BM_NocStreamTokensPerSecond(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    SystemConfig cfg;
    SwallowSystem sys(sim, cfg);
    Core& a = sys.core(0, 0, Layer::kVertical);
    Core& b = sys.core(0, 1, Layer::kVertical);
    a.load(assemble(bench::stream_sender(
        b.node_id(), 0, 8, 32)));
    b.load(assemble(bench::stream_receiver(8, 32)));
    a.start();
    b.start();
    sim.run();
    benchmark::DoNotOptimize(sys.network().total_tokens_forwarded());
    state.SetItemsProcessed(
        state.items_processed() +
        static_cast<std::int64_t>(sys.network().total_tokens_forwarded()));
  }
}
BENCHMARK(BM_NocStreamTokensPerSecond);

}  // namespace
}  // namespace swallow

BENCHMARK_MAIN();
