// Shared helpers for the benchmark harnesses that regenerate the paper's
// tables and figures.  Each bench prints the paper's rows/series next to
// the values measured from the simulator.
#pragma once

#include <memory>
#include <string>

#include "arch/assembler.h"
#include "arch/core.h"
#include "board/system.h"
#include "common/strings.h"
#include "sim/simulator.h"

namespace swallow::bench {

/// Assembly for a program that brings `threads` (1..8) hardware threads to
/// a spinning compute loop (the paper's "heavy load" state).
inline std::string spin_program(int threads) {
  std::string src;
  if (threads > 1) {
    src += "    getr  r4, 3\n";
    for (int i = 1; i < threads; ++i) {
      src += "    getst r5, r4\n    tinitpc r5, spin\n";
    }
    src += "    msync r4\n";
  }
  src += "spin:\n    add   r0, r0, r1\n    bu    spin\n";
  return src;
}

/// Sender streaming `packets` packets of `words_per_packet` words to
/// (node, chanend 0), END-framed.
inline std::string stream_sender(NodeId dest_node, int chanend, int packets,
                                 int words_per_packet) {
  return strprintf(R"(
      getr  r0, 2
      ldc   r1, 0x%x
      ldch  r1, 0x%02x02
      setd  r0, r1
      ldc   r3, %d
  ploop:
      ldc   r2, %d
  wloop:
      out   r0, r2
      subi  r2, r2, 1
      bt    r2, wloop
      outct r0, 1
      subi  r3, r3, 1
      bt    r3, ploop
      texit
  )",
                   static_cast<unsigned>(dest_node),
                   static_cast<unsigned>(chanend), packets, words_per_packet);
}

/// Matching receiver.
inline std::string stream_receiver(int packets, int words_per_packet) {
  return strprintf(R"(
      getr  r0, 2
      ldc   r3, %d
  ploop:
      ldc   r2, %d
  wloop:
      in    r1, r0
      subi  r2, r2, 1
      bt    r2, wloop
      chkct r0, 1
      subi  r3, r3, 1
      bt    r3, ploop
      texit
  )",
                   packets, words_per_packet);
}

/// One node of a machine-wide token-ring handoff: block on channel input,
/// compute `hold_n` ALU instructions, pass the token to `next_node`'s
/// chanend 0.  Exactly one core computes at any instant, so the event
/// queue is empty for the whole hold — the batched issue path's best case
/// (the dense all-spinning load is its worst).  `first` injects the token.
inline std::string ring_node_program(NodeId next_node, int hold_n,
                                     bool first) {
  std::string src = strprintf(
      "    getr  r0, 2\n"
      "    ldc   r1, 0x%x\n"
      "    ldch  r1, 0x0002\n"
      "    setd  r0, r1\n",
      static_cast<unsigned>(next_node));
  if (first) {
    src +=
        "    ldc   r1, 1\n"
        "    out   r0, r1\n";
  }
  src += strprintf(
      "loop:\n"
      "    in    r1, r0\n"
      "    ldc   r2, %d\n"
      "work:\n"
      "    add   r3, r3, r1\n"
      "    subi  r2, r2, 1\n"
      "    bt    r2, work\n"
      "    out   r0, r1\n"
      "    bu    loop\n",
      hold_n);
  return src;
}

/// Load the token-ring handoff over every core of a system, in
/// core_by_index order, wrapping at the end.
inline void load_ring(SwallowSystem& sys, int hold_n) {
  const int n = sys.core_count();
  for (int i = 0; i < n; ++i) {
    const NodeId next = sys.core_by_index((i + 1) % n).node_id();
    const Image img = assemble(ring_node_program(next, hold_n, i == 0));
    sys.core_by_index(i).load(img);
    sys.core_by_index(i).start();
  }
}

/// Load the spinning program on every core of a system.
inline void load_all_spinning(SwallowSystem& sys, int threads = 4) {
  const Image img = assemble(spin_program(threads));
  for (int i = 0; i < sys.core_count(); ++i) {
    sys.core_by_index(i).load(img);
    sys.core_by_index(i).start();
  }
}

/// One-slice system at a given core frequency.
inline std::unique_ptr<SwallowSystem> one_slice(Simulator& sim,
                                                MegaHertz freq = 500.0) {
  SystemConfig cfg;
  cfg.core_freq = freq;
  return std::make_unique<SwallowSystem>(sim, cfg);
}

}  // namespace swallow::bench
