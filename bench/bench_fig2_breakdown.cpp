// Reproduces Fig. 2: power distribution for each Swallow processor node
// (260 mW total: computation 78, static 68, network interface 58,
// DC-DC & I/O 46, other 10).
//
// Two views are printed: the analytic node model at the nominal operating
// point (the paper's pie chart), and a live-simulation reconciliation in
// which a fully loaded, fully communicating slice's energy ledger is
// divided per node.
#include <cstdio>

#include "analysis/report.h"
#include "arch/assembler.h"
#include "bench/bench_util.h"
#include "common/table.h"
#include "energy/node_power.h"

namespace swallow {
namespace {

void live_reconciliation() {
  Simulator sim;
  auto sys = bench::one_slice(sim);
  sys->enable_loss_integration();

  // Full compute load everywhere, plus neighbour streams to exercise the
  // network interface and links.
  bench::load_all_spinning(*sys, 4);
  const TimePs window = microseconds(200.0);
  sim.run_until(window);
  sys->settle_energy();

  const EnergyLedger& ledger = sys->ledger();
  const double seconds = to_seconds(window);
  auto per_node_mw = [&](EnergyAccount a) {
    return to_milliwatts(ledger.total(a) / seconds) / Slice::kCores;
  };

  TextTable t("Live ledger, fully loaded slice, per node");
  t.header({"component", "mW/node"});
  const double baseline = per_node_mw(EnergyAccount::kCoreBaseline);
  const double instr = per_node_mw(EnergyAccount::kCoreInstructions);
  const double ni = per_node_mw(EnergyAccount::kNetworkInterface);
  const double dcdc = per_node_mw(EnergyAccount::kDcDcIo);
  const double other = per_node_mw(EnergyAccount::kOther);
  t.row({"core baseline (static + clock)", strprintf("%.1f", baseline)});
  t.row({"core instruction issue", strprintf("%.1f", instr)});
  t.row({"network interface", strprintf("%.1f", ni)});
  t.row({"DC-DC conversion", strprintf("%.1f", dcdc)});
  t.row({"support/other", strprintf("%.1f", other)});
  t.rule();
  t.row({"total", strprintf("%.1f", baseline + instr + ni + dcdc + other)});
  std::printf("%s\n", t.render().c_str());
}

}  // namespace
}  // namespace swallow

int main() {
  using namespace swallow;
  std::printf("== Fig. 2: power distribution per Swallow node ==\n\n");

  NodePowerModel model;
  const NodePowerBreakdown b = model.breakdown(NodeOperatingPoint{});

  Comparison cmp("Node power model at 500 MHz / 1 V / full load");
  cmp.add("computation & memory ops", 78.0, to_milliwatts(b.compute), "mW");
  cmp.add("static", 68.0, to_milliwatts(b.statics), "mW");
  cmp.add("network interface", 58.0, to_milliwatts(b.network_interface), "mW");
  cmp.add("DC-DC & I/O", 46.0, to_milliwatts(b.dcdc_io), "mW");
  cmp.add("other", 10.0, to_milliwatts(b.other), "mW");
  cmp.add("total per node", 260.0, to_milliwatts(b.total()), "mW");
  std::printf("%s\n", cmp.render().c_str());

  TextTable shares("Fig. 2 shares");
  shares.header({"component", "model", "paper"});
  shares.row({"computation", fmt_percent(b.compute / b.total()), "30 %"});
  shares.row({"static", fmt_percent(b.statics / b.total()), "26 %"});
  shares.row({"network interface",
              fmt_percent(b.network_interface / b.total()), "22 %"});
  shares.row({"DC-DC & I/O", fmt_percent(b.dcdc_io / b.total()), "18 %"});
  std::printf("%s\n", shares.render().c_str());

  live_reconciliation();

  return cmp.worst_deviation() < 0.01 ? 0 : 1;
}
