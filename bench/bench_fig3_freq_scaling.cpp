// Reproduces Fig. 3 (power consumption with frequency scaling, four cores,
// four active threads vs zero active threads) and re-derives Eq. (1)
// Pc = (46 + 0.30 f) mW by least-squares fit over the measured series.
//
// Measurement path is the paper's: the four cores of one 1 V supply rail
// are observed through the slice's shunt/ADC instrumentation while running
// either a four-thread compute loop or nothing.
#include <cstdio>
#include <vector>

#include "analysis/report.h"
#include "arch/assembler.h"
#include "bench/bench_util.h"
#include "common/mathutil.h"
#include "common/table.h"

namespace swallow {
namespace {

/// Average rail-0 power (four cores) at frequency f, via the ADC sampler.
double rail_power_mw(MegaHertz f, bool loaded) {
  Simulator sim;
  SystemConfig cfg;
  cfg.core_freq = f;
  SwallowSystem sys(sim, cfg);
  if (loaded) {
    const Image img = assemble(bench::spin_program(4));
    for (int chip = 0; chip < 2; ++chip) {
      for (Layer l : {Layer::kVertical, Layer::kHorizontal}) {
        sys.core(chip, 0, l).load(img);
        sys.core(chip, 0, l).start();
      }
    }
  }
  // Sample the rail with the slice ADC for 100 us and integrate.
  Slice& slice = sys.slice(0, 0);
  slice.sampler().start(PowerSampler::Mode::kSingleChannel,
                        kAdcSingleChannelSps, 0);
  const TimePs window = microseconds(100.0);
  sim.run_until(window);
  return to_milliwatts(slice.sampler().energy(0) / to_seconds(window));
}

}  // namespace
}  // namespace swallow

int main() {
  using namespace swallow;
  std::printf("== Fig. 3: power vs frequency, four cores ==\n\n");

  std::vector<double> freqs, active_mw, idle_mw;
  for (double f = 71.0; f <= 500.0; f += 33.0) {
    freqs.push_back(f);
    active_mw.push_back(rail_power_mw(f, true));
    idle_mw.push_back(rail_power_mw(f, false));
  }

  TextTable t("Measured rail power (four cores, via slice ADC)");
  t.header({"f (MHz)", "4 active threads (mW)", "idle (mW)",
            "Eq.(1) x4 (mW)"});
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    t.row({strprintf("%.0f", freqs[i]), strprintf("%.1f", active_mw[i]),
           strprintf("%.1f", idle_mw[i]),
           strprintf("%.1f", 4 * (46.0 + 0.30 * freqs[i]))});
  }
  std::printf("%s\n", t.render().c_str());

  // Per-core fit of the active series recovers Eq. (1).
  std::vector<double> per_core;
  per_core.reserve(active_mw.size());
  for (double p : active_mw) per_core.push_back(p / 4.0);
  const LineFit fit = fit_line(freqs, per_core);

  Comparison cmp("Equation (1) fit: Pc = static + slope * f");
  cmp.add("static power (mW)", 46.0, fit.intercept, "mW");
  cmp.add("dynamic slope (mW/MHz)", 0.30, fit.slope);
  std::printf("%s\n", cmp.render().c_str());
  std::printf("fit R^2 = %.6f\n\n", fit.r_squared);

  // Fig. 3 endpoint anchors.
  Comparison ends("Fig. 3 endpoints (per core)");
  ends.add("193 mW @ 500 MHz loaded (paper rounds 196)", 193.0,
           active_mw.back() / 4.0, "mW");
  ends.add("65 mW @ 71 MHz loaded (paper rounds 67)", 65.0,
           active_mw.front() / 4.0, "mW");
  ends.add("113 mW @ 500 MHz idle", 113.0, idle_mw.back() / 4.0, "mW");
  ends.add("50 mW @ 71 MHz idle", 50.0, idle_mw.front() / 4.0, "mW");
  std::printf("%s\n", ends.render().c_str());

  const bool ok = std::abs(fit.intercept - 46.0) < 2.0 &&
                  std::abs(fit.slope - 0.30) < 0.01 && fit.r_squared > 0.999;
  return ok ? 0 : 1;
}
