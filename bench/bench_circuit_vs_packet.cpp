// Ablation (§V.B): packet mode vs circuit switching.
//
// "Any network links utilized along the route are held open until the
//  source channel emits a closing control token.  If the close token is
//  never emitted, links are permanently held open, effectively creating a
//  dedicated circuit between two endpoints."
//
// Two effects are measured on a 3-node chain (A - M - B):
//   1. latency: a held-open circuit skips the 3-byte header on every
//      message after the first, so per-message latency drops;
//   2. the cost: while A-B hold their circuit, a rival packet stream from
//      M to B is blocked outright (wormhole output held) — link
//      reservation gives predictability to the owner and starvation to
//      everyone else, which is why §V.D recommends reserving only
//      chip-local links.
#include <cstdio>
#include <memory>

#include "arch/assembler.h"
#include "bench/bench_util.h"
#include "common/strings.h"
#include "common/table.h"
#include "noc/network.h"

namespace swallow {
namespace {

struct Chain {
  Simulator sim;
  EnergyLedger ledger;
  std::unique_ptr<Network> net;
  std::unique_ptr<Core> a, m, b;
  Switch *sa = nullptr, *sm = nullptr, *sb = nullptr;

  Chain() {
    net = std::make_unique<Network>(sim, ledger, LinkGrade::kSwallowDefault);
    auto make_router = [](NodeId self) {
      auto r = std::make_shared<TableRouter>();
      for (NodeId dest = 0; dest < 3; ++dest) {
        if (dest != self) r->set_route(dest, dest > self ? kDirEast : kDirWest);
      }
      return r;
    };
    Core::Config c0, c1, c2;
    c0.node_id = 0;
    c1.node_id = 1;
    c2.node_id = 2;
    a = std::make_unique<Core>(sim, ledger, c0);
    m = std::make_unique<Core>(sim, ledger, c1);
    b = std::make_unique<Core>(sim, ledger, c2);
    sa = &net->add_switch(0, make_router(0));
    sm = &net->add_switch(1, make_router(1));
    sb = &net->add_switch(2, make_router(2));
    sa->attach_core(*a);
    sm->attach_core(*m);
    sb->attach_core(*b);
    net->connect(*sa, kDirEast, *sm, kDirWest, LinkClass::kBoardHorizontal);
    net->connect(*sm, kDirEast, *sb, kDirWest, LinkClass::kBoardHorizontal);
  }
};

constexpr int kIters = 100;

/// One-way word latency A->B over the chain, packet or circuit framing.
double latency_ns(bool circuit) {
  Chain c;
  // In circuit mode no END is sent inside the loop; the route (both
  // directions) stays open after the first exchange.
  const char* a_close = circuit ? "" : "      outct r0, 1\n";
  const char* b_close = circuit ? "" : "      outct r0, 1\n";
  const char* a_chk = circuit ? "" : "      chkct r0, 1\n";
  const char* b_chk = circuit ? "" : "      chkct r0, 1\n";
  const std::string src_a = strprintf(R"(
      getr  r0, 2
      ldc   r1, 2
      ldch  r1, 2
      setd  r0, r1
      gettime r4
      ldc   r2, %d
  loop:
      out   r0, r5
%s      in    r6, r0
%s      subi  r2, r2, 1
      bt    r2, loop
      gettime r5
      sub   r6, r5, r4
      ldc   r7, res
      stw   r6, r7, 0
      texit
  res: .word 0
  )", kIters, a_close, a_chk);
  const std::string src_b = strprintf(R"(
      getr  r0, 2
      ldc   r1, 0
      ldch  r1, 2
      setd  r0, r1
      ldc   r2, %d
  loop:
      in    r3, r0
%s      out   r0, r3
%s      subi  r2, r2, 1
      bt    r2, loop
      texit
  )", kIters, b_chk, b_close);
  c.a->load(assemble(src_a));
  c.b->load(assemble(src_b));
  c.a->start();
  c.b->start();
  c.sim.run_until(milliseconds(50.0));
  if (!c.a->finished()) return -1;
  const std::uint32_t ticks = c.a->peek_word(assemble(src_a).symbol("res") * 4);
  return static_cast<double>(ticks) * 10.0 / (2.0 * kIters);
}

/// Rival stream M->B while A->B either packets politely or holds a
/// circuit.  Returns true if the rival's packet completed.
bool rival_completes(bool circuit_held) {
  Chain c;
  // A sends 64 words to B chanend 0; in circuit mode it never emits a
  // closing token, so its route across both links stays open even after
  // it has finished sending (§V.B "permanently held open").
  const char* closing = circuit_held ? "" : "      outct r0, 1\n";
  c.a->load(assemble(strprintf(R"(
      getr  r0, 2
      ldc   r1, 2
      ldch  r1, 2
      setd  r0, r1
      ldc   r2, 64
  loop:
      out   r0, r2
%s      subi  r2, r2, 1
      bt    r2, loop
      texit
  )", closing)));
  // Rival: M waits 20 us (so A's stream/circuit is established), then
  // sends 16 words to B chanend 1 as one packet.
  c.m->load(assemble(R"(
      getr  r0, 2
      ldc   r1, 2
      ldch  r1, 0x0102
      setd  r0, r1
      gettime r3
      ldc   r4, 2000
      add   r3, r3, r4
      timewait r3
      ldc   r2, 16
  loop:
      out   r0, r2
      subi  r2, r2, 1
      bt    r2, loop
      outct r0, 1
      texit
  )"));
  // B drains both endpoints with two threads, so only route holding — not
  // backpressure — can stall the rival.  Both chanends are allocated by
  // the main thread before the slave starts (deterministic indices).
  const char* a_chk = circuit_held ? "" : "      chkct r0, 1\n";
  c.b->load(assemble(strprintf(R"(
      getr  r0, 2        # chanend 0: A's stream
      getr  r1, 2        # chanend 1: the rival
      getr  r4, 3
      getst r5, r4
      tinitpc r5, rivaldrain
      ldc   r6, 0xff00
      tinitsp r5, r6
      tsetr r5, r1, 1    # hand the rival chanend to the slave
      msync r4
      ldc   r2, 64
  aloop:
      in    r3, r0
%s      subi  r2, r2, 1
      bt    r2, aloop
      tjoin r4
      texit
  rivaldrain:
      ldc   r2, 16
  rloop:
      in    r3, r1
      subi  r2, r2, 1
      bt    r2, rloop
      chkct r1, 1
      texit
  )", a_chk)));
  c.a->start();
  c.m->start();
  c.b->start();
  c.sim.run_until(milliseconds(20.0));
  return c.m->finished();
}

}  // namespace
}  // namespace swallow

int main() {
  using namespace swallow;
  std::printf("== §V.B ablation: packet mode vs held-open circuit ==\n\n");

  const double packet_ns = latency_ns(false);
  const double circuit_ns = latency_ns(true);

  TextTable t("One-way word latency across two hops (A - M - B)");
  t.header({"mode", "latency (ns)", "headers per message"});
  t.row({"packet (END each message)", strprintf("%.0f", packet_ns), "1"});
  t.row({"held circuit", strprintf("%.0f", circuit_ns), "0 after the first"});
  std::printf("%s\n", t.render().c_str());
  std::printf("circuit saves %.0f ns/message (the 3-byte header + route "
              "setup on both directions)\n\n", packet_ns - circuit_ns);

  const bool rival_packet = rival_completes(false);
  const bool rival_circuit = rival_completes(true);
  std::printf("Rival packet stream (M->B) sharing the M-B link:\n");
  std::printf("  with A in packet mode : %s\n",
              rival_packet ? "completes" : "STARVED");
  std::printf("  with A holding circuit: %s\n",
              rival_circuit ? "completes" : "STARVED (link held open, "
              "as §V.B warns)");

  const bool ok = circuit_ns < packet_ns && rival_packet && !rival_circuit;
  std::printf("\nshape: %s\n", ok ? "OK" : "VIOLATED");
  return ok ? 0 : 1;
}
