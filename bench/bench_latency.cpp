// Reproduces the §V.C latency figures:
//   * core-to-network injection: 3 cycles / 6 ns (model constant),
//   * core-local word: 50 ns ~= 6 thread instructions,
//   * in-package word: 40 thread instructions,
//   * package-to-package word: 360 ns ~= 45 thread instructions,
//   * package-to-package 8-bit token: 270 ns.
//
// Latencies are measured the way the authors must have measured them: a
// program timestamps a ping-pong loop with the 100 MHz reference clock, so
// the figures include OUT/IN instruction issue and thread wake-up time.
// Links run at the §V.C architectural rates (500 / 125 Mbit/s).
#include <cstdio>

#include "analysis/report.h"
#include "arch/assembler.h"
#include "bench/bench_util.h"
#include "common/table.h"

namespace swallow {
namespace {

constexpr int kIters = 200;

/// Ping-pong word (or token) round trip between two cores; returns one-way
/// nanoseconds including software overhead.
double pingpong_ns(SwallowSystem& sys, Simulator& sim, Core& a, Core& b,
                   bool token) {
  const char* tx_op = token ? "outt" : "out";
  const char* rx_op = token ? "int " : "in  ";
  const std::string src_a = strprintf(R"(
      getr  r0, 2
      ldc   r1, 0x%x
      ldch  r1, 2
      setd  r0, r1
      gettime r4
      ldc   r2, %d
  loop:
      %s   r0, r5
      outct r0, 1
      %s   r6, r0
      chkct r0, 1
      subi  r2, r2, 1
      bt    r2, loop
      gettime r5
      sub   r6, r5, r4
      ldc   r7, res
      stw   r6, r7, 0
      texit
  res: .word 0
  )",
                                      static_cast<unsigned>(b.node_id()),
                                      kIters, tx_op, rx_op);
  const std::string src_b = strprintf(R"(
      getr  r0, 2
      ldc   r1, 0x%x
      ldch  r1, 2
      setd  r0, r1
      ldc   r2, %d
  loop:
      %s   r3, r0
      chkct r0, 1
      %s   r0, r3
      outct r0, 1
      subi  r2, r2, 1
      bt    r2, loop
      texit
  )",
                                      static_cast<unsigned>(a.node_id()),
                                      kIters, rx_op, tx_op);
  a.load(assemble(src_a));
  b.load(assemble(src_b));
  a.start();
  b.start();
  sim.run_until(sim.now() + milliseconds(20.0));
  if (a.trapped() || b.trapped() || !a.finished()) {
    std::fprintf(stderr, "pingpong failed: %s %s\n", a.trap().message.c_str(),
                 b.trap().message.c_str());
    return -1;
  }
  const std::uint32_t ticks =
      a.peek_word(assemble(src_a).symbol("res") * 4);
  (void)sys;
  return static_cast<double>(ticks) * 10.0 / (2.0 * kIters);
}

/// Core-local: one thread sends a word out of chanend 0 and reads it back
/// on chanend 1 of the same core; returns nanoseconds per transfer.
double core_local_ns(Simulator& sim, Core& core) {
  const std::string src = strprintf(R"(
      getr  r0, 2            # chanend 0
      getr  r1, 2            # chanend 1
      ldc   r2, 0x%x
      ldch  r2, 0x0102       # own chanend 1
      setd  r0, r2
      gettime r4
      ldc   r2, %d
  loop:
      out   r0, r5
      outct r0, 1
      in    r6, r1
      chkct r1, 1
      subi  r2, r2, 1
      bt    r2, loop
      gettime r5
      sub   r6, r5, r4
      ldc   r7, res
      stw   r6, r7, 0
      texit
  res: .word 0
  )",
                                    static_cast<unsigned>(core.node_id()),
                                    kIters);
  core.load(assemble(src));
  core.start();
  sim.run_until(sim.now() + milliseconds(20.0));
  const std::uint32_t ticks = core.peek_word(assemble(src).symbol("res") * 4);
  return static_cast<double>(ticks) * 10.0 / kIters;
}

}  // namespace
}  // namespace swallow

int main() {
  using namespace swallow;
  std::printf("== §V.C: network latencies (architectural link rates) ==\n\n");

  auto fresh = [](Simulator& sim) {
    SystemConfig cfg;
    cfg.link_grade = LinkGrade::kArchitecturalMax;
    return std::make_unique<SwallowSystem>(sim, cfg);
  };

  // Core-local.
  double local_ns;
  {
    Simulator sim;
    auto sys = fresh(sim);
    local_ns = core_local_ns(sim, sys->core(0, 0, Layer::kVertical));
  }
  // In-package: the two nodes of chip (0,0).
  double in_pkg_ns;
  {
    Simulator sim;
    auto sys = fresh(sim);
    in_pkg_ns = pingpong_ns(*sys, sim, sys->core(0, 0, Layer::kVertical),
                            sys->core(0, 0, Layer::kHorizontal), false);
  }
  // Package-to-package: vertically adjacent chips, word and token.
  double pkg_word_ns, pkg_token_ns;
  {
    Simulator sim;
    auto sys = fresh(sim);
    pkg_word_ns = pingpong_ns(*sys, sim, sys->core(0, 0, Layer::kVertical),
                              sys->core(0, 1, Layer::kVertical), false);
  }
  {
    Simulator sim;
    auto sys = fresh(sim);
    pkg_token_ns = pingpong_ns(*sys, sim, sys->core(0, 0, Layer::kVertical),
                               sys->core(0, 1, Layer::kVertical), true);
  }

  // One thread retires an instruction every 8 ns at 500 MHz (Eq. 2).
  const double instr_ns = 8.0;

  TextTable t("Measured one-way latencies (incl. software overhead)");
  t.header({"path", "measured", "in instructions", "paper"});
  t.row({"core-to-network injection", "6 ns (model constant)", "-",
         "6 ns (3 cycles)"});
  t.row({"core-local word", strprintf("%.0f ns", local_ns),
         strprintf("%.1f", local_ns / instr_ns), "50 ns / ~6 instructions"});
  t.row({"in-package word", strprintf("%.0f ns", in_pkg_ns),
         strprintf("%.1f", in_pkg_ns / instr_ns), "~40 instructions"});
  t.row({"package-to-package word", strprintf("%.0f ns", pkg_word_ns),
         strprintf("%.1f", pkg_word_ns / instr_ns),
         "360 ns / ~45 instructions"});
  t.row({"package-to-package 8-bit token", strprintf("%.0f ns", pkg_token_ns),
         "-", "270 ns"});
  std::printf("%s\n", t.render().c_str());

  std::printf("BlueGene/Q core-to-network comparison point (§V.A): 80 ns vs "
              "Swallow's 6 ns.\n\n");

  // Shape checks: ordering must hold and package-to-package figures must be
  // within a factor ~1.6 of the paper's measurements.
  const bool ordered = local_ns < in_pkg_ns && in_pkg_ns < pkg_word_ns &&
                       pkg_token_ns < pkg_word_ns;
  const bool close = pkg_token_ns > 270.0 * 0.6 && pkg_token_ns < 270.0 * 1.6 &&
                     pkg_word_ns > 360.0 * 0.6 && pkg_word_ns < 360.0 * 1.7;
  std::printf("shape: ordering %s, package latencies within band %s\n",
              ordered ? "OK" : "VIOLATED", close ? "OK" : "VIOLATED");
  return ordered && close ? 0 : 1;
}
