// Telemetry capacity analysis (§II).
//
// The measurement subsystem samples up to 2 MS/s (1 MS/s across all five
// channels simultaneously), but the Ethernet bridge carries at most
// 80 Mbit/s (§V.E).  With 7-byte sample records, full-rate simultaneous
// sampling produces 5 M x 7 B = 280 Mbit/s — so streamed telemetry must be
// decimated, while on-slice consumption (GETPWR) sees every sample.  This
// bench measures the achieved streamed record rate across requested
// sampling rates and reports where the export path saturates.
#include <cstdio>
#include <vector>

#include "board/system.h"
#include "board/telemetry.h"
#include "common/strings.h"
#include "common/table.h"

namespace swallow {
namespace {

struct StreamResult {
  double requested_sps;
  double converted_sps;  // per channel, by the ADC
  double streamed_rps;   // records/s actually delivered to the host
};

StreamResult run(double sample_rate_sps, TimePs streamer_period) {
  Simulator sim;
  SystemConfig cfg;
  cfg.ethernet_bridges = 1;
  SwallowSystem sys(sim, cfg);
  Slice& slice = sys.slice(0, 0);
  slice.sampler().start(PowerSampler::Mode::kSimultaneous, sample_rate_sps);

  std::uint64_t received = 0;
  sys.bridge(0).set_host_receiver([&](std::vector<std::uint8_t> p) {
    received += TelemetryStreamer::decode(p).size();
  });
  TelemetryStreamer streamer(sim, slice, sys.bridge(0), streamer_period);
  streamer.start();
  const TimePs window = milliseconds(5.0);
  sim.run_until(window);

  StreamResult r;
  r.requested_sps = sample_rate_sps;
  r.converted_sps =
      static_cast<double>(slice.sampler().samples(0)) / to_seconds(window);
  r.streamed_rps = static_cast<double>(received) / to_seconds(window);
  return r;
}

}  // namespace
}  // namespace swallow

int main() {
  using namespace swallow;
  std::printf("== §II telemetry: on-slice sampling vs Ethernet export ==\n\n");

  TextTable t("Simultaneous 5-channel sampling, one streamer batch / 100 us");
  t.header({"requested S/s/ch", "converted S/s/ch", "streamed records/s",
            "export share of conversions"});
  std::vector<StreamResult> results;
  for (double rate : {10e3, 50e3, 200e3, 1000e3}) {
    const StreamResult r = run(rate, microseconds(100.0));
    results.push_back(r);
    t.row({strprintf("%.0fk", r.requested_sps / 1e3),
           strprintf("%.0fk", r.converted_sps / 1e3),
           strprintf("%.0fk", r.streamed_rps / 1e3),
           strprintf("%.1f %%",
                     100.0 * r.streamed_rps / (5.0 * r.converted_sps))});
  }
  std::printf("%s\n", t.render().c_str());

  std::printf(
      "The streamer batches the latest sample per channel per period, so the\n"
      "export rate caps at one record/channel/period (10k records/s here)\n"
      "while the ADC keeps converting at full §II rate for on-slice readers\n"
      "(GETPWR).  Full-rate export would need 280 Mbit/s against the\n"
      "bridge's 80 Mbit/s (§V.E) — decimated telemetry is a necessity, not\n"
      "a simplification.\n");

  // Shape: conversion tracks the request; export saturates near the
  // streamer period.
  const bool ok =
      results.back().converted_sps > 0.95e6 &&
      results.back().streamed_rps < 1.1 * 5.0 * 10'000 &&
      results.front().streamed_rps > 0.8 * 5.0 * 10'000;
  std::printf("\nshape: %s\n", ok ? "OK" : "VIOLATED");
  return ok ? 0 : 1;
}
