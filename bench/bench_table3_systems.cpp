// Reproduces Table III: scale, technology and power properties of recent
// many-core systems.  Swallow's power-per-core entry is re-measured from
// the live simulator (a fully loaded core at 500 MHz) rather than copied.
#include <cstdio>

#include "analysis/registry.h"
#include "arch/assembler.h"
#include "bench/bench_util.h"
#include "common/strings.h"
#include "common/table.h"

namespace swallow {
namespace {

/// Measure the per-core power of a loaded Swallow core from the supply
/// rail, the way the paper's §II instrumentation would.
double measure_swallow_core_mw() {
  Simulator sim;
  auto sys = bench::one_slice(sim);
  // Load the four cores of rail 0 (chips 0 and 1) with four threads each.
  const Image img = assemble(bench::spin_program(4));
  for (int chip = 0; chip < 2; ++chip) {
    for (Layer l : {Layer::kVertical, Layer::kHorizontal}) {
      sys->core(chip, 0, l).load(img);
      sys->core(chip, 0, l).start();
    }
  }
  sim.run_until(microseconds(50.0));
  return to_milliwatts(sys->slice(0, 0).supplies().rail(0).power()) / 4.0;
}

}  // namespace
}  // namespace swallow

int main() {
  using namespace swallow;
  std::printf(
      "== Table III: scale, technology and power of many-core systems ==\n\n");

  const double measured_mw = measure_swallow_core_mw();

  TextTable table;
  table.header({"System", "ISA", "Cores/chip", "Total cores", "Tech node",
                "Power/core", "Frequency", "uW/MHz (computed)"});
  for (const auto& s : table3_systems()) {
    std::string power = s.power_per_core_txt + " mW";
    if (s.name == "Swallow") {
      power += strprintf(" (measured: %.0f)", measured_mw);
    }
    table.row({s.name, s.isa, strprintf("%d", s.cores_per_chip), s.total_cores,
               strprintf("%d nm", s.tech_node_nm), power,
               strprintf("%.0f MHz", s.frequency_mhz),
               strprintf("%.1f", uw_per_mhz(s))});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Swallow loaded core, measured from simulated supply rail: "
              "%.1f mW (paper: 193 mW; Eq. (1) at 500 MHz: 196 mW)\n",
              measured_mw);
  std::printf("Paper's uW/MHz column quotes the Eq. (1) dynamic slope "
              "(0.30 mW/MHz -> 300 uW/MHz) for Swallow.\n");
  const bool ok = measured_mw > 185.0 && measured_mw < 205.0;
  return ok ? 0 : 1;
}
