// Reproduces Equation (2): per-thread and per-core instruction throughput
// as a function of the number of active threads,
//   IPSt = f / max(4, Nt),    IPSc = f * min(4, Nt) / 4.
//
// Nt = 1..8 spinning threads are run on the ISA interpreter and retire
// rates are measured, including the per-thread split for the 8-thread
// round-robin case.
#include <cmath>
#include <cstdio>

#include "analysis/report.h"
#include "arch/assembler.h"
#include "bench/bench_util.h"
#include "common/table.h"

namespace swallow {
namespace {

struct ThroughputPoint {
  double ipsc_mips;
  double ipst_min_mips;  // slowest thread (fairness check)
  double ipst_max_mips;
};

ThroughputPoint measure(int threads, MegaHertz f) {
  Simulator sim;
  EnergyLedger ledger;
  Core::Config cfg;
  cfg.frequency_mhz = f;
  Core core(sim, ledger, cfg);
  core.load(assemble(bench::spin_program(threads)));
  core.start();
  const TimePs warmup = microseconds(5.0);
  sim.run_until(warmup);
  const std::uint64_t base = core.instructions_retired();
  std::uint64_t base_thread[8];
  for (int t = 0; t < 8; ++t) base_thread[t] = core.thread_instructions(t);
  const TimePs window = microseconds(100.0);
  sim.run_until(warmup + window);
  const double secs = to_seconds(window);

  ThroughputPoint p;
  p.ipsc_mips =
      static_cast<double>(core.instructions_retired() - base) / secs / 1e6;
  p.ipst_min_mips = 1e12;
  p.ipst_max_mips = 0;
  for (int t = 0; t < threads; ++t) {
    const double tips =
        static_cast<double>(core.thread_instructions(t) - base_thread[t]) /
        secs / 1e6;
    p.ipst_min_mips = std::min(p.ipst_min_mips, tips);
    p.ipst_max_mips = std::max(p.ipst_max_mips, tips);
  }
  return p;
}

}  // namespace
}  // namespace swallow

int main() {
  using namespace swallow;
  std::printf("== Eq. (2): throughput vs active thread count (500 MHz) ==\n\n");

  const double f = 500.0;
  TextTable t("Measured instruction throughput");
  t.header({"Nt", "IPSc measured (MIPS)", "IPSc Eq.(2)", "IPSt min..max",
            "IPSt Eq.(2)"});
  double worst = 0;
  for (int nt = 1; nt <= 8; ++nt) {
    const ThroughputPoint p = measure(nt, f);
    const double ipsc_model = f * std::min(nt, 4) / 4.0;
    const double ipst_model = f / std::max(4, nt);
    worst = std::max(worst, std::abs(p.ipsc_mips - ipsc_model) / ipsc_model);
    worst = std::max(worst,
                     std::abs(p.ipst_max_mips - ipst_model) / ipst_model);
    t.row({strprintf("%d", nt), strprintf("%.1f", p.ipsc_mips),
           strprintf("%.1f", ipsc_model),
           strprintf("%.1f..%.1f", p.ipst_min_mips, p.ipst_max_mips),
           strprintf("%.1f", ipst_model)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("Worst deviation from Eq. (2): %.2f %%\n", worst * 100.0);
  std::printf("(500 MIPS potential per core, §IV.A; 125 MIPS single "
              "thread, §V.D.)\n");
  return worst < 0.03 ? 0 : 1;
}
