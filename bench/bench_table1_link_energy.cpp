// Reproduces Table I: per-bit energies of Swallow links.
//
// For each link class we build a two-node network of that class, stream a
// known payload through it, and recover energy-per-bit and maximum link
// power from the energy ledger and the transfer time — the same quantities
// the paper derives from its shunt measurements.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

#include "analysis/report.h"
#include "arch/assembler.h"
#include "bench/bench_util.h"
#include "common/table.h"
#include "energy/link_energy.h"
#include "noc/network.h"

namespace swallow {
namespace {

struct LinkResult {
  double rate_mbps;
  double max_power_mw;
  double energy_pj_per_bit;
};

LinkResult measure_link(LinkClass cls) {
  Simulator sim;
  EnergyLedger ledger;
  Network net(sim, ledger, LinkGrade::kSwallowDefault);
  auto east = std::make_shared<TableRouter>();
  east->set_default(kDirEast);
  auto west = std::make_shared<TableRouter>();
  west->set_default(kDirWest);
  Core::Config ca;
  ca.node_id = 0;
  Core a(sim, ledger, ca);
  Core::Config cb;
  cb.node_id = 1;
  Core b(sim, ledger, cb);
  Switch& sa = net.add_switch(0, east);
  Switch& sb = net.add_switch(1, west);
  sa.attach_core(a);
  sb.attach_core(b);
  net.connect(sa, kDirEast, sb, kDirWest, cls);

  const int packets = 16, words = 16;
  a.load(assemble(bench::stream_sender(1, 0, packets, words)));
  b.load(assemble(bench::stream_receiver(packets, words)));
  a.start();
  b.start();
  // Mark the start of transmission, then drain.
  sim.run();

  const std::uint64_t tokens = sa.link_tokens_sent(cls);
  const double bits = static_cast<double>(tokens) * kBitsPerToken;
  const Joules link_energy = ledger.total(link_account(cls));
  LinkResult r;
  r.energy_pj_per_bit = to_picojoules(link_energy) / bits;
  r.rate_mbps = link_rate(cls, LinkGrade::kSwallowDefault);
  // Maximum link power: the driver burns rate x energy/bit while the wire
  // is busy.
  r.max_power_mw = r.rate_mbps * 1e6 * r.energy_pj_per_bit * 1e-12 * 1e3;
  return r;
}

}  // namespace
}  // namespace swallow

int main() {
  using namespace swallow;
  std::printf("== Table I: per-bit energies of Swallow links ==\n\n");

  struct Row {
    LinkClass cls;
    const char* paper_rate;
    double paper_power_mw;
    double paper_pj_bit;
  };
  const Row rows[] = {
      {LinkClass::kOnChip, "250 Mbit/s", 1.4, 5.6},
      {LinkClass::kBoardVertical, "62.5 Mbit/s", 13.3, 212.8},
      {LinkClass::kBoardHorizontal, "62.5 Mbit/s", 12.6, 201.6},
      {LinkClass::kOffBoardCable, "62.5 Mbit/s", 680.0, 10880.0},
  };

  TextTable table("Measured from simulation (16 packets x 16 words each)");
  table.header({"Link type", "Data rate", "Max link power", "Energy per bit",
                "paper pJ/bit"});
  double max_dev = 0;
  for (const Row& row : rows) {
    const LinkResult r = measure_link(row.cls);
    table.row({std::string(to_string(row.cls)), row.paper_rate,
               strprintf("%.1f mW", r.max_power_mw),
               strprintf("%.1f pJ/bit", r.energy_pj_per_bit),
               strprintf("%.1f", row.paper_pj_bit)});
    max_dev = std::max(max_dev, std::abs(r.energy_pj_per_bit - row.paper_pj_bit) /
                                    row.paper_pj_bit);
  }
  std::printf("%s\n", table.render().c_str());

  const double off_on_ratio = 10880.0 / 201.6;
  std::printf("Off-board vs on-board energy ratio: %.1fx (paper: ~50x)\n",
              off_on_ratio);
  std::printf("Worst deviation from Table I: %.2f %%\n", max_dev * 100.0);
  return max_dev < 0.01 ? 0 : 1;
}
