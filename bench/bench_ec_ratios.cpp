// Reproduces §V.D: the computation-to-communication (E/C) ladder
//   core-local 1, chip-local 16, external 64, contended 256, bisection 512,
// the related-work range comparison (0.42–55), and the routing-priority
// ablation called out in DESIGN.md.
#include <cstdio>
#include <vector>

#include "analysis/ec.h"
#include "api/patterns.h"
#include "api/taskgen.h"
#include "arch/assembler.h"
#include "bench/bench_util.h"
#include "common/table.h"

namespace swallow {
namespace {

/// Achieved single-stream payload bandwidth between two cores, Gbit/s.
double stream_gbps(Layer src_layer, int dst_x, int dst_y, Layer dst_layer,
                   std::uint64_t bytes) {
  Simulator sim;
  auto sys = bench::one_slice(sim);
  AppBuilder app(*sys);
  TaskSpec tx, rx;
  const int a = app.add_task(tx, 0, 0, src_layer);
  const int b = app.add_task(rx, dst_x, dst_y, dst_layer);
  const int ch = app.connect(a, b);
  app.set_steps(a, {TaskStep::send(ch, bytes)});
  app.set_steps(b, {TaskStep::recv(ch, bytes)});
  app.start();
  if (!app.run_to_completion(milliseconds(200.0))) return 0;
  return static_cast<double>(bytes) * 8.0 /
         to_seconds(app.completion_time()) / 1e9;
}

/// Aggregate bisection bandwidth achieved by the §V.D worst-case pattern.
double bisection_gbps(RoutePriority priority, TimePs* completion) {
  Simulator sim;
  SystemConfig cfg;
  cfg.routing = priority;
  SwallowSystem sys(sim, cfg);
  AppBuilder app(sys);
  BisectionConfig bcfg;
  bcfg.bytes_per_pair = 8192;
  const auto senders = build_bisection_stress(app, sys.config(), bcfg);
  app.start();
  if (!app.run_to_completion(milliseconds(200.0))) return 0;
  if (completion != nullptr) *completion = app.completion_time();
  const double total_bytes =
      static_cast<double>(bcfg.bytes_per_pair) * senders.size();
  return total_bytes * 8.0 / to_seconds(app.completion_time()) / 1e9;
}

/// Completion time of a diagonal exchange (both dimensions corrected) —
/// where routing priority actually matters.
TimePs diagonal_exchange(RoutePriority priority) {
  Simulator sim;
  SystemConfig cfg;
  cfg.routing = priority;
  SwallowSystem sys(sim, cfg);
  AppBuilder app(sys);
  for (int x = 0; x < 4; ++x) {
    TaskSpec tx, rx;
    const int a = app.add_task(tx, x, 0, Layer::kVertical);
    const int b = app.add_task(rx, (x + 2) % 4, 1, Layer::kHorizontal);
    const int ch = app.connect(a, b);
    app.set_steps(a, {TaskStep::send(ch, 4096)});
    app.set_steps(b, {TaskStep::recv(ch, 4096)});
  }
  app.start();
  app.run_to_completion(milliseconds(200.0));
  return app.completion_time();
}

}  // namespace
}  // namespace swallow

int main() {
  using namespace swallow;
  std::printf("== §V.D: computation-to-communication ratios ==\n\n");

  // ---- Analytic ladder (the paper's numbers).
  TextTable ladder("Analytic E/C ladder (500 MHz, four threads)");
  ladder.header({"scope", "E (Gbit/s)", "C (Gbit/s)", "E/C", "paper"});
  const char* paper_vals[] = {"1", "16", "64", "256", "512"};
  int i = 0;
  for (const EcEntry& e : ec_ladder()) {
    ladder.row({e.scope, strprintf("%.2f", e.e_gbps),
                strprintf("%.3f", e.c_gbps), strprintf("%.0f", e.ratio()),
                paper_vals[i++]});
  }
  std::printf("%s\n", ladder.render().c_str());

  // ---- Measured achieved bandwidths (Table I operating rates).
  const double chip_gbps =
      stream_gbps(Layer::kVertical, 0, 0, Layer::kHorizontal, 16384);
  const double ext_gbps =
      stream_gbps(Layer::kVertical, 0, 1, Layer::kVertical, 8192);
  TimePs bisect_time = 0;
  const double bisect_gbps = bisection_gbps(RoutePriority::kVerticalFirst,
                                            &bisect_time);

  // Contended: four sender threads co-located on one core, all streaming
  // across the same single vertical link (the paper's E/C = 256 case).
  double contended_gbps = 0;
  {
    Simulator sim;
    auto sys = bench::one_slice(sim);
    AppBuilder app(*sys);
    const std::uint64_t bytes = 4096;
    for (int i = 0; i < 4; ++i) {
      TaskSpec tx, rx;
      const int a = app.add_task(tx, 0, 0, Layer::kVertical);
      const int b = app.add_task(rx, 0, 1, Layer::kVertical);
      const int ch = app.connect(a, b);
      app.set_steps(a, {TaskStep::send(ch, bytes)});
      app.set_steps(b, {TaskStep::recv(ch, bytes)});
    }
    app.start();
    if (app.run_to_completion(milliseconds(200.0))) {
      contended_gbps =
          4.0 * bytes * 8.0 / to_seconds(app.completion_time()) / 1e9;
    }
  }

  TextTable meas("Measured achieved bandwidth (one slice)");
  meas.header({"scope", "achieved (Gbit/s)", "line rate", "measured E/C for "
               "a 16 Gbit/s core"});
  meas.row({"chip-local (1 of 4 links)", strprintf("%.3f", chip_gbps),
            "0.250", strprintf("%.0f", 16.0 / (4 * chip_gbps))});
  meas.row({"external vertical (1 link)", strprintf("%.3f", ext_gbps),
            "0.0625", strprintf("%.0f", 16.0 / (4 * ext_gbps))});
  meas.row({"4 threads contending, 1 link", strprintf("%.3f", contended_gbps),
            "0.0625", strprintf("%.0f", 16.0 / contended_gbps)});
  meas.row({"slice bisection (8 senders)", strprintf("%.3f", bisect_gbps),
            "0.250", strprintf("%.0f", 128.0 / bisect_gbps)});
  std::printf("%s\n", meas.render().c_str());
  std::printf("(Achieved rates sit below line rate by the §V.B packet "
              "overhead; E/C columns scale a 4-link chip / 4-link bisection "
              "accordingly.)\n\n");

  // ---- Related work range (§V.D / §VI).
  TextTable rel("System-wide E/C of related systems (§V.D: 0.42–55)");
  rel.header({"system", "E/C"});
  rel.row({"Tile64", "2.4"});
  rel.row({"Centip3De", "55"});
  rel.row({"best surveyed", "0.42"});
  rel.row({"Swallow core-local", "1"});
  rel.row({"Swallow slice bisection", "512"});
  std::printf("%s\n", rel.render().c_str());

  // ---- Ablation: routing priority.
  const TimePs vert = diagonal_exchange(RoutePriority::kVerticalFirst);
  const TimePs horiz = diagonal_exchange(RoutePriority::kHorizontalFirst);
  std::printf("Routing ablation (diagonal exchange, 4 pairs x 4 KiB):\n");
  std::printf("  vertical-first   : %.1f us\n", to_microseconds(vert));
  std::printf("  horizontal-first : %.1f us\n", to_microseconds(horiz));
  std::printf("  (both deliver; the paper's choice prioritises the vertical "
              "dimension, §V.A)\n\n");

  // Shape checks.
  const auto l = ec_ladder();
  const bool ladder_ok = l[0].ratio() == 1 && l[1].ratio() == 16 &&
                         l[2].ratio() == 64 && l[3].ratio() == 256 &&
                         l[4].ratio() == 512;
  const bool meas_ok = chip_gbps > ext_gbps && bisect_gbps > ext_gbps &&
                       bisect_gbps < 4.5 * ext_gbps;
  std::printf("ladder %s, measured ordering %s\n", ladder_ok ? "OK" : "BAD",
              meas_ok ? "OK" : "BAD");
  return ladder_ok && meas_ok ? 0 : 1;
}
