// Reproduces Table II: comparison of candidate Swallow processors.
//
// The qualifying column ("only the XS1-L meets all requirements", §IV.A)
// is evaluated from the feature predicates, not hard-coded.
#include <cstdio>

#include "analysis/registry.h"
#include "common/strings.h"
#include "common/table.h"

int main() {
  using namespace swallow;
  std::printf("== Table II: comparison of candidate Swallow processors ==\n\n");

  TextTable table;
  table.header({"Processor", "Cores x width", "Superscalar", "Cache",
                "Memory configuration", "Multi-core interconnect",
                "Time deterministic", "Meets all requirements"});
  int qualifying = 0;
  for (const auto& p : table2_candidates()) {
    const bool ok = meets_requirements(p);
    qualifying += ok;
    table.row({p.name, strprintf("%dx%d-bit", p.cores, p.data_width_bits),
               p.superscalar ? "Yes" : "No", cache_cell(p), p.memory_config,
               interconnect_cell(p), deterministic_cell(p), ok ? "YES" : "no"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Processors meeting every requirement: %d (paper: 1, the XMOS "
              "XS1-L)\n",
              qualifying);
  return qualifying == 1 ? 0 : 1;
}
