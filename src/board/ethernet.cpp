#include "board/ethernet.h"

#include "common/error.h"
#include "energy/params.h"
#include "noc/routing.h"

namespace swallow {

EthernetBridge::EthernetBridge(Simulator& sim, EnergyLedger& ledger,
                               Network& net, NodeId bridge_node)
    : sim_(sim), ledger_(ledger), node_(bridge_node) {
  auto router = std::make_shared<TableRouter>();
  router->set_default(kDirNorth);  // everything not for us goes up the cable
  // The bridge's switch lives in the bridge's own event domain and ledger
  // (identical to the network defaults in sequential mode).
  switch_ = &net.add_switch(bridge_node, std::move(router), 500.0, &sim_,
                            &ledger_);
  out_port_ = switch_->attach_endpoint(0, this);
  out_port_->subscribe_space([this] { pump(); });
  token_interval_ = transfer_time_ps(kBitsPerToken, kEthernetBridgeMbps);
}

void EthernetBridge::host_send(ResourceId dest,
                               const std::vector<std::uint8_t>& payload) {
  require(host_try_send(dest, payload),
          "EthernetBridge: bounded ingress FIFO full (use host_try_send and "
          "subscribe_ingress_space to apply backpressure)");
}

bool EthernetBridge::host_try_send(ResourceId dest,
                                   const std::vector<std::uint8_t>& payload) {
  if (!ingress_can_accept(payload.size())) {
    ++ingress_rejects_;
    return false;
  }
  const HeaderDest hd = chanend_dest(dest);
  for (int i = 0; i < kHeaderTokens; ++i) {
    tx_queue_.push_back(Token::data(header_byte(hd, i)));
  }
  for (std::uint8_t b : payload) tx_queue_.push_back(Token::data(b));
  tx_queue_.push_back(Token::control(ControlToken::kEnd));
  bytes_from_host_ += payload.size();
  if (tx_queue_.size() > ingress_peak_tokens_) {
    ingress_peak_tokens_ = tx_queue_.size();
  }
  pump();
  return true;
}

void EthernetBridge::pump() {
  if (pump_scheduled_) return;
  const TimePs now = sim_.now();
  if (now < next_emit_) {
    pump_scheduled_ = true;
    sim_.at(next_emit_, EventDesc{EventKind::kBridgePump, node_}, [this] {
      pump_scheduled_ = false;
      pump();
    });
    return;
  }
  if (!tx_queue_.empty() && out_port_->can_accept()) {
    out_port_->push(tx_queue_.front());
    tx_queue_.pop_front();
    ledger_.add(EnergyAccount::kEthernetBridge, 1e-9);  // ~1 nJ per token
    next_emit_ = sim_.now() + token_interval_;
    if (!tx_queue_.empty()) {
      pump_scheduled_ = true;
      sim_.at(next_emit_, EventDesc{EventKind::kBridgePump, node_}, [this] {
        pump_scheduled_ = false;
        pump();
      });
    }
    // One token per pacing interval.  With pump_scheduled_ settled first,
    // ingress subscribers may re-enter host_try_send safely from here.
    if (ingress_capacity_ != 0 && tx_queue_.size() < ingress_capacity_) {
      for (const auto& cb : ingress_subs_) cb();
    }
    return;
  }
  // Queue non-empty but port full: the space subscription re-drives us.
}

void EthernetBridge::save_state(StateWriter& w) const {
  w.seq(tx_queue_, [&](const Token& t) { save_token(w, t); });
  w.i64(next_emit_);
  w.b(pump_scheduled_);
  w.seq(rx_buffer_, [&](std::uint8_t b) { w.u8(b); });
  w.u64(bytes_to_host_);
  w.u64(bytes_from_host_);
  w.u64(ingress_rejects_);
  w.u64(ingress_peak_tokens_);
}

void EthernetBridge::load_state(StateReader& r) {
  tx_queue_.clear();
  r.seq([&](std::size_t) { tx_queue_.push_back(load_token(r)); });
  next_emit_ = r.i64();
  pump_scheduled_ = r.b();
  rx_buffer_.clear();
  r.seq([&](std::size_t) { rx_buffer_.push_back(r.u8()); });
  bytes_to_host_ = r.u64();
  bytes_from_host_ = r.u64();
  ingress_rejects_ = r.u64();
  ingress_peak_tokens_ = r.u64();
}

void EthernetBridge::restore_event(const LiveEvent& ev) {
  invariant(ev.desc.kind == EventKind::kBridgePump,
            "EthernetBridge: unexpected event kind");
  sim_.inject(ev.time, ev.stamp, ev.tie, ev.desc, [this] {
    pump_scheduled_ = false;
    pump();
  });
}

void EthernetBridge::receive(const Token& t) {
  if (t.is_end()) {
    bytes_to_host_ += rx_buffer_.size();
    if (host_receiver_) host_receiver_(std::move(rx_buffer_));
    rx_buffer_ = {};
  } else if (!t.is_control) {
    rx_buffer_.push_back(t.value);
  }
  for (const auto& cb : drain_subs_) cb();
}

}  // namespace swallow
