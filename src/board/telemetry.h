// Telemetry streaming (§II): "the results can be streamed out of the
// system using an Ethernet interface".
//
// A TelemetryStreamer is the slice-side agent that batches fresh ADC
// samples from the slice's PowerSampler and sends them *through the
// network* to an Ethernet bridge — so telemetry traffic has real routing,
// bandwidth and energy cost, visible in the ledger like any other traffic.
// The host decodes the packets with TelemetryStreamer::decode.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "board/ethernet.h"
#include "board/slice.h"
#include "sim/simulator.h"

namespace swallow {

class TelemetryStreamer : public TokenReceiver {
 public:
  /// Endpoint index the streamer occupies on its slice's south-west switch.
  static constexpr int kTelemetryChanend = 33;

  /// Channel ids at or above this value carry slice fault counters
  /// (channel - base indexes FaultCounters::field_name); below are ADC
  /// power channels.
  static constexpr int kFaultChannelBase = 0xE0;

  /// One decoded sample record (7 bytes on the wire:
  /// [channel u8][reference ticks u32][ADC code u16]).  For fault-counter
  /// channels `code` is the counter value, saturated at 0xFFFF.
  struct Record {
    int channel = 0;
    std::uint32_t ticks = 0;
    std::uint16_t code = 0;
    Watts watts = 0;  // reconstructed by decode(); 0 for fault channels
  };

  TelemetryStreamer(Simulator& sim, Slice& slice, EthernetBridge& bridge,
                    TimePs period = microseconds(100.0));

  /// Begin periodic streaming (the slice's sampler must be running for
  /// fresh samples to appear).
  void start();
  void stop() { running_ = false; }

  /// Also stream the slice's fault/resilience counters: each tick, any
  /// counter that changed is sent as a record on channel
  /// kFaultChannelBase + counter index — degraded links are visible at the
  /// host, not just in the ledger.
  void enable_fault_stream() { stream_faults_ = true; }

  std::uint64_t records_streamed() const { return records_streamed_; }

  /// Host-side decode of one telemetry packet.
  static std::vector<Record> decode(const std::vector<std::uint8_t>& packet,
                                    const AnalogFrontEnd& fe = {});

  // TokenReceiver (the streamer never receives; required for attachment).
  bool can_receive() const override { return true; }
  std::size_t free_space() const override { return 64; }
  void receive(const Token&) override {}
  void subscribe_drain(std::function<void()>) override {}

 private:
  void tick();
  void pump();

  Simulator& sim_;
  Slice& slice_;
  ResourceId bridge_chanend_;
  TokenOutPort* port_ = nullptr;
  TimePs period_;
  bool running_ = false;
  bool stream_faults_ = false;
  std::deque<Token> tx_queue_;
  std::vector<std::uint64_t> last_count_;
  std::array<std::uint64_t, FaultCounters::kFieldCount> last_faults_{};
  std::uint64_t records_streamed_ = 0;
};

}  // namespace swallow
