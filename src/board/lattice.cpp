#include "board/lattice.h"

namespace swallow {

int LatticeRouter::route(NodeId self, NodeId dest) const {
  if (self == dest) return kDirUnroutable;
  const int cx = node_chip_x(self), cy = node_chip_y(self);
  const int dx = node_chip_x(dest), dy = node_chip_y(dest);
  const Layer layer = node_layer(self);

  if (dx == cx && dy == cy) {
    // Same package, other node.
    return kDirInternal;
  }

  if (dy == kBridgeRow) {
    // South-edge bridge pseudo-chips: match the column first (only columns
    // with a bridge have a south exit link), then drop south.
    if (dx != cx) {
      if (layer != Layer::kHorizontal) return kDirInternal;
      return dx < cx ? kDirWest : kDirEast;
    }
    if (layer != Layer::kVertical) return kDirInternal;
    return kDirSouth;
  }

  const bool need_v = dy != cy;
  const bool need_h = dx != cx;
  const bool v_first = priority_ == RoutePriority::kVerticalFirst;

  // Which dimension do we correct next?
  const bool go_vertical = v_first ? need_v : (need_v && !need_h);
  if (go_vertical) {
    if (layer != Layer::kVertical) return kDirInternal;
    return dy < cy ? kDirNorth : kDirSouth;
  }
  // Horizontal correction.
  if (layer != Layer::kHorizontal) return kDirInternal;
  return dx < cx ? kDirWest : kDirEast;
}

std::shared_ptr<TableRouter> lattice_table_router(
    NodeId self, const std::vector<NodeId>& all_nodes, RoutePriority priority) {
  const LatticeRouter model(priority);
  auto table = std::make_shared<TableRouter>();
  for (NodeId dest : all_nodes) {
    if (dest == self) continue;
    table->set_route(dest, model.route(self, dest));
  }
  return table;
}

}  // namespace swallow
