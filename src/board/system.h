// Whole-machine assembly: a grid of slices joined by FFC ribbon cables
// (§IV.B, Fig. 1), optional Ethernet bridges on south edge links (§V.E),
// network boot, and system-wide power/energy accounting.
//
// The largest configuration the paper demonstrates is 30 slices / 480
// cores; this builder goes up to the full 40-slice / 640-core manufactured
// fleet and beyond.
#pragma once

#include <memory>
#include <vector>

#include "board/ethernet.h"
#include "board/lattice.h"
#include "board/slice.h"
#include "energy/ledger.h"
#include "noc/network.h"
#include "obs/trace.h"
#include "sim/domain.h"
#include "sim/parallel_engine.h"
#include "sim/simulator.h"

namespace swallow {

/// Parallel-engine synchronization model (docs/architecture.md §sync-modes).
enum class SyncMode {
  kExact,    // conservative lookahead sync; bit-identical to sequential
  kBounded,  // relaxed: domains may run up to N cycles ahead (drift bounded)
};

/// Event-domain decomposition for the parallel engine, and the matching
/// energy-ledger partitioning (applied under both engines so totals are
/// bit-identical across jobs values at a fixed granularity).
enum class DomainGranularity {
  kSlice,  // one domain per slice (the default; today's layout)
  kChip,   // one domain per chip (8 per slice) + a per-slice hub domain
  kCore,   // one domain per node (16 per slice) + a per-slice hub domain
};

struct SystemConfig {
  int slices_x = 1;
  int slices_y = 1;
  MegaHertz core_freq = kMaxCoreFrequencyMhz;
  LinkGrade link_grade = LinkGrade::kSwallowDefault;
  RoutePriority routing = RoutePriority::kVerticalFirst;
  /// Use explicit per-switch software routing tables instead of the shared
  /// computed router (identical decisions; exercises the §V.A mechanism).
  bool use_table_routers = false;
  double cable_length_cm = kFfcReferenceLengthCm;
  /// Ethernet bridges below the south edge; bridge i hangs under global
  /// chip column 2*i (up to two per slice column, per §V.E).
  int ethernet_bridges = 0;
  CorePowerModel power_model{};
  /// Voltage follows Vmin(f) on every frequency change (§III.B DVFS).
  bool auto_dvfs = false;
  /// Run every link with the CRC/retry framing protocol (src/fault/):
  /// corrupted or dropped tokens are detected and retransmitted, at
  /// kReliableFramingBits extra wire bits per token.
  bool reliable_links = false;
  std::uint64_t seed = 1;
  /// Worker threads for the parallel sharded engine.  0 (the default)
  /// selects the sequential reference engine on the caller's Simulator;
  /// 1..slice-count shards the system into one event domain per slice and
  /// drives them with that many workers under quantum barrier
  /// synchronization (results are bit-identical to sequential; drive the
  /// run with SwallowSystem::run_until).  Values above the slice count are
  /// rejected — a worker with no domain to own can never be scheduled.
  int jobs = 0;
  /// Per-core issue batch bound (Core::Config::max_batch).  Batching is
  /// conservative, so results are bit-identical for any value; 1 restores
  /// one-event-per-instruction stepping (the perf baseline, and the
  /// differential checker's cross-check engine).
  int core_batch = Core::Config{}.max_batch;
  /// Synchronization model for the parallel engine (ignored when jobs = 0;
  /// kBounded additionally requires jobs > 0).  kBounded with sync_bound 0
  /// is bit-identical to kExact — the relaxation only begins at 1 cycle.
  SyncMode sync = SyncMode::kExact;
  /// Bounded mode's skew budget N, in simulated core cycles: domains may
  /// transiently run up to lookahead + N cycles ahead of the slowest peer.
  int sync_bound = 0;
  /// Event-domain refinement.  kSlice reproduces today's machine exactly;
  /// kChip/kCore shard each slice into 8/16 partitions (plus one hub
  /// domain per slice for the ADC sampler, loss integration and other
  /// slice-wide agents) and partition the energy ledgers to match.
  DomainGranularity granularity = DomainGranularity::kSlice;

  int chip_cols() const { return slices_x * Slice::kChipCols; }
  int chip_rows() const { return slices_y * Slice::kChipRows; }
  int core_count() const { return slices_x * slices_y * Slice::kCores; }
  /// Event-domain partitions per slice at the configured granularity.
  int parts_per_slice() const {
    switch (granularity) {
      case DomainGranularity::kSlice: return 1;
      case DomainGranularity::kChip: return Slice::kChips;
      case DomainGranularity::kCore: return Slice::kCores;
    }
    return 1;
  }
  int partition_count() const { return slices_x * slices_y * parts_per_slice(); }
};

/// Machine-readable health snapshot of the whole machine (the watchdog and
/// tests consume this; SwallowSystem::diagnose() renders it for humans).
struct SystemDiagnosis {
  /// One blocked hardware thread somewhere in the machine.
  struct StallInfo {
    NodeId core = 0;
    int thread = -1;
    std::uint32_t pc = 0;                                // word index
    Core::WaitKind waiting_on = Core::WaitKind::kNone;   // what it waits for
    std::uint32_t resource = 0;      // resource id operand, when meaningful
    bool self_waking = false;        // timer wait: will resume by itself
  };
  /// One trapped core.
  struct TrapInfo {
    NodeId core = 0;
    int thread = -1;
    std::uint32_t pc = 0;
    TrapKind kind = TrapKind::kNone;
    std::string message;
  };

  std::vector<TrapInfo> traps;
  std::vector<StallInfo> blocked;
  std::vector<Switch::OpenRoute> routes;  // open/parked wormhole routes
  FaultCounters faults;                   // network-wide fault totals

  /// True when nothing is trapped, genuinely blocked (timer waits are
  /// fine) or holding a route — the machine is quiescent and healthy.
  bool healthy() const {
    if (!traps.empty() || !routes.empty()) return false;
    for (const StallInfo& s : blocked) {
      if (!s.self_waking) return false;
    }
    return true;
  }
};

class SwallowSystem {
 public:
  SwallowSystem(Simulator& sim, SystemConfig cfg);
  ~SwallowSystem();

  SwallowSystem(const SwallowSystem&) = delete;
  SwallowSystem& operator=(const SwallowSystem&) = delete;

  Simulator& sim() { return sim_; }

  /// Whole-machine energy totals, merged on every call from the per-slice,
  /// per-bridge and system ledgers in a fixed order (slices row-major,
  /// then bridges, then the system ledger) — so totals are bit-identical
  /// across engines and worker counts.  Snapshot semantics: re-call after
  /// further simulation; writes belong in system_ledger() or a component
  /// ledger.
  EnergyLedger& ledger();

  /// Ledger for machine-level costs owned by no slice (e.g. the resilience
  /// manager's reroute energy).
  EnergyLedger& system_ledger() { return system_ledger_; }
  /// The ledger all of slice (sx, sy)'s components charge into.
  EnergyLedger& slice_ledger(int sx, int sy);

  Network& network() { return *net_; }
  const SystemConfig& config() const { return cfg_; }

  // ----- Engine -----
  /// True when SystemConfig::jobs selected the parallel sharded engine.
  bool parallel() const { return engine_ != nullptr; }
  ParallelEngine* engine() { return engine_.get(); }

  /// Advance the machine to `deadline` on whichever engine is configured;
  /// returns the number of events dispatched.  With the parallel engine
  /// this is the only way to advance time (the caller's Simulator carries
  /// no machine events there; anything host code schedules on sim() fires
  /// between calls, at the deadline).
  std::uint64_t run_until(TimePs deadline);

  /// Machine time: the caller's Simulator clock under the sequential
  /// engine, the engine barrier clock under the parallel one.
  TimePs now() const { return engine_ != nullptr ? engine_->now() : sim_.now(); }

  /// The event domain slice (sx, sy) schedules in — pass this to
  /// slice-side agents like TelemetryStreamer (equals sim() when
  /// sequential).
  Simulator& sim_for_slice(int sx, int sy);
  /// The event domain owning `node` (a slice switch/core, or a bridge —
  /// bridges share their attached slice's domain).
  Simulator& sim_for_node(NodeId node);

  int core_count() const { return cfg_.core_count(); }
  Slice& slice(int sx, int sy);
  /// Core by global chip coordinate and layer.
  Core& core(int chip_x, int chip_y, Layer layer);
  /// Core by flat index (slice-major, then chip*2+layer).
  Core& core_by_index(int i);
  Switch& switch_at(int chip_x, int chip_y, Layer layer);
  static NodeId node_id(int chip_x, int chip_y, Layer layer) {
    return lattice_node_id(chip_x, chip_y, layer);
  }
  /// Core by node id; nullptr when the id names no core (e.g. a bridge).
  Core* find_core(NodeId node);

  int bridge_count() const { return static_cast<int>(bridges_.size()); }
  EthernetBridge& bridge(int i) { return *bridges_.at(static_cast<std::size_t>(i)); }

  /// Load and start an image on a node *through the network* via a bridge
  /// (write packets + start command; see board/boot.h).
  void boot_image(int bridge_idx, NodeId node, const Image& image);

  /// Same, but addressed to a resident in-ISA loader listening on the
  /// node's chanend 0 (see board/loader.h) instead of the native BootRom.
  void boot_image_via_resident_loader(int bridge_idx, NodeId node,
                                      const Image& image);

  // ----- Power / energy -----
  /// Bring all power traces up to date (call before reading the ledger).
  void settle_energy();

  /// Instantaneous machine input power (all slices, including conversion
  /// losses) — the paper's 134 W headline for 30 slices.
  Watts total_input_power() const;

  /// Instantaneous power of all cores only (3.1 W per loaded slice).
  Watts total_cores_power() const;

  /// Start the measurement ADCs of every slice (simultaneous mode).
  void start_sampling(double rate_sps = kAdcSimultaneousSps);

  /// Periodically integrate SMPS conversion losses into the ledger's
  /// DC-DC account (the losses are otherwise only visible as instantaneous
  /// power).  Call once, before running.
  void enable_loss_integration(TimePs period = microseconds(10.0));

  // ----- Observability (src/obs/, ISSUE 3) -----
  /// Attach a trace/metrics/profiling session.  Creates the event tracks
  /// in a fixed machine order (slices row-major, per node a core track
  /// then a switch track, then bridges, then the system track) and points
  /// every core/switch probe at them.  Call once, before running; while a
  /// session is attached run_until() chops the run at flush-period
  /// multiples so both engines merge/sample at identical times — the
  /// byte-identical trace contract.
  void attach_observability(TraceSession& session);

  /// End-of-run pass: closes still-open trace spans, records end-of-run
  /// gauges (per-thread IPC, machine fault totals), captures profiler
  /// symbol tables, and performs the final flush.  Call once, after the
  /// last run_until and before exporting the session.
  void finish_observability();

  /// Deadlock / stall diagnostics: blocked threads (core, thread, pc,
  /// waiting-resource), open or parked routes at every switch, and trap
  /// reports.  Empty when the machine is quiescent and healthy.
  std::string diagnose();

  /// The structured form of diagnose() — what the fault layer's watchdog
  /// samples.
  SystemDiagnosis diagnose_report();

  // ----- Snapshot (src/snap/) -----
  /// Serialise the complete machine state (ledgers, slices, bridges,
  /// loss-integration progress, observability sample cursor).  Event-queue
  /// contents are saved separately by the snapshot orchestrator via each
  /// domain's Simulator.  The machine must be at a run_until chop point.
  void save_state(StateWriter& w) const;
  /// Mirror of save_state into a freshly built system with an *identical*
  /// SystemConfig (the orchestrator verifies the config hash first).
  void load_state(StateReader& r);
  /// Re-inject one live machine event (anything except kFault*, which the
  /// FaultInjector owns) into the owning component with its original queue
  /// keys.
  void restore_event(const LiveEvent& ev);
  /// Number of event domains to snapshot: the host Simulator plus (under
  /// the parallel engine) one per partition, then one hub per slice at
  /// finer-than-slice granularity.  domain_sim(0) is always the host
  /// Simulator; domain_sim(1 + i) walks partitions slice-major, then hubs
  /// row-major.
  int domain_count() const {
    return 1 + static_cast<int>(domains_.size() + hub_domains_.size());
  }
  Simulator& domain_sim(int i) {
    if (i == 0) return sim_;
    const std::size_t k = static_cast<std::size_t>(i - 1);
    if (k < domains_.size()) return domains_[k]->sim();
    return hub_domains_[k - domains_.size()]->sim();
  }

 private:
  Simulator& slice_sim(std::size_t idx);
  /// The Simulator of global partition `pidx` (host sim when sequential).
  Simulator& part_sim(std::size_t pidx);
  /// Global partition index of a (non-bridge) lattice node.
  std::size_t partition_of(NodeId node) const;
  /// Ledger a node's components charge: the partition ledger at kChip /
  /// kCore granularity, the slice ledger at kSlice.
  EnergyLedger& node_ledger(std::size_t slice_idx, int local_chip,
                            Layer layer);
  /// Whole-slice energy: the slice (hub) ledger plus its partition ledgers.
  Joules slice_energy_total(std::size_t idx) const;
  void integrate_slice_losses(std::size_t idx);
  std::uint64_t run_until_impl(TimePs deadline);
  void obs_sample(TimePs t);
  void obs_power_sample(TimePs t);

  Simulator& sim_;
  SystemConfig cfg_;
  EnergyLedger system_ledger_;
  EnergyLedger merged_;  // ledger() scratch; rebuilt on every call
  std::vector<std::unique_ptr<EnergyLedger>> slice_ledgers_;   // row-major
  // Partition ledgers at finer-than-slice granularity (slice-major, one
  // per chip/node); empty at kSlice where slice_ledgers_ is the partition.
  std::vector<std::unique_ptr<EnergyLedger>> part_ledgers_;
  std::vector<std::unique_ptr<EnergyLedger>> bridge_ledgers_;
  std::vector<std::unique_ptr<Domain>> domains_;  // partitions; jobs > 0 only
  std::vector<std::unique_ptr<Domain>> hub_domains_;  // per-slice agents
  std::unique_ptr<Network> net_;
  std::vector<std::unique_ptr<Slice>> slices_;  // row-major [sy][sx]
  std::vector<std::unique_ptr<EthernetBridge>> bridges_;
  std::unique_ptr<ParallelEngine> engine_;  // destroyed first: joins workers
  TimePs loss_period_ = 0;
  TraceSession* obs_ = nullptr;     // attached observability session
  Track* obs_system_ = nullptr;     // machine-wide counter track
  TimePs obs_last_sample_ = 0;      // last periodic-sample time
  TimePs obs_last_power_ = 0;       // last power-window sample time
  // Energy totals at the last power-window sample, per core (flat index)
  // and per slice (row-major) — the windowed power counters are the deltas.
  std::vector<double> obs_power_prev_core_;
  std::vector<double> obs_power_prev_slice_;
};

}  // namespace swallow
