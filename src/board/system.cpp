#include "board/system.h"

#include <cmath>
#include <numeric>
#include <unordered_map>

#include "common/check.h"
#include "common/error.h"
#include "common/strings.h"

namespace swallow {

SwallowSystem::SwallowSystem(Simulator& sim, SystemConfig cfg)
    : sim_(sim), cfg_(cfg) {
  require(cfg_.slices_x >= 1 && cfg_.slices_y >= 1,
          "SwallowSystem: need at least one slice");
  require(cfg_.slices_x * Slice::kChipCols <= 128 &&
              cfg_.slices_y * Slice::kChipRows < kBridgeRow,
          "SwallowSystem: grid exceeds the node id space");
  require(cfg_.ethernet_bridges <= 2 * cfg_.slices_x,
          "SwallowSystem: at most two bridges per slice column (§V.E)");

  const int slice_count = cfg_.slices_x * cfg_.slices_y;
  const int partition_count = cfg_.partition_count();
  require(cfg_.jobs >= 0, "SystemConfig::jobs must be >= 0");
  require(cfg_.jobs <= partition_count,
          strprintf("SystemConfig::jobs = %d exceeds the %d available "
                    "event-domain partition(s): the parallel engine shards "
                    "one domain per partition, so extra workers would own "
                    "nothing — use jobs <= %d, a finer granularity, or a "
                    "larger grid",
                    cfg_.jobs, partition_count, partition_count));
  require(cfg_.sync_bound >= 0, "SystemConfig::sync_bound must be >= 0");
  require(cfg_.sync == SyncMode::kBounded || cfg_.sync_bound == 0,
          "SystemConfig::sync_bound is only meaningful with SyncMode::kBounded");
  require(cfg_.sync == SyncMode::kExact || cfg_.jobs > 0,
          "SystemConfig::sync = kBounded relaxes the parallel engine's "
          "barriers and requires jobs > 0 (the sequential engine is always "
          "exact)");
  if (cfg_.jobs > 0) {
    for (int i = 0; i < partition_count; ++i) {
      domains_.push_back(std::make_unique<Domain>(i));
    }
    // At finer-than-slice granularity each slice keeps a hub domain for
    // its slice-wide agents (ADC sampler, loss integration, telemetry);
    // the engine advances hubs only at serial fences.
    if (cfg_.granularity != DomainGranularity::kSlice) {
      for (int s = 0; s < slice_count; ++s) {
        hub_domains_.push_back(std::make_unique<Domain>(partition_count + s));
      }
    }
  }
  // Both engines partition energy identically (per partition, per slice
  // hub, per bridge, plus the system ledger) so that merged totals are
  // bit-identical across jobs values at a fixed granularity; see ledger().
  for (int i = 0; i < slice_count; ++i) {
    slice_ledgers_.push_back(std::make_unique<EnergyLedger>());
  }
  if (cfg_.granularity != DomainGranularity::kSlice) {
    for (int i = 0; i < partition_count; ++i) {
      part_ledgers_.push_back(std::make_unique<EnergyLedger>());
    }
  }
  obs_power_prev_core_.assign(static_cast<std::size_t>(cfg_.core_count()), 0.0);
  obs_power_prev_slice_.assign(static_cast<std::size_t>(slice_count), 0.0);

  net_ = std::make_unique<Network>(sim_, system_ledger_, cfg_.link_grade);

  // Routing strategy.
  Slice::RouterFactory router_for;
  if (cfg_.use_table_routers) {
    // Enumerate every addressable node, then give each switch its own
    // explicit software table.
    std::vector<NodeId> all;
    for (int y = 0; y < cfg_.chip_rows(); ++y) {
      for (int x = 0; x < cfg_.chip_cols(); ++x) {
        all.push_back(lattice_node_id(x, y, Layer::kVertical));
        all.push_back(lattice_node_id(x, y, Layer::kHorizontal));
      }
    }
    for (int b = 0; b < cfg_.ethernet_bridges; ++b) {
      all.push_back(lattice_node_id(2 * b, kBridgeRow, Layer::kVertical));
    }
    const RoutePriority priority = cfg_.routing;
    router_for = [all, priority](NodeId self) {
      return lattice_table_router(self, all, priority);
    };
  } else {
    auto shared = std::make_shared<LatticeRouter>(cfg_.routing);
    router_for = [shared](NodeId) { return shared; };
  }

  // ---- Slices.
  for (int sy = 0; sy < cfg_.slices_y; ++sy) {
    for (int sx = 0; sx < cfg_.slices_x; ++sx) {
      Slice::Config scfg;
      scfg.slice_x = sx;
      scfg.slice_y = sy;
      scfg.core_freq = cfg_.core_freq;
      scfg.power_model = cfg_.power_model;
      scfg.auto_dvfs = cfg_.auto_dvfs;
      scfg.sampler_seed =
          cfg_.seed + static_cast<std::uint64_t>(sy) * 1000 +
          static_cast<std::uint64_t>(sx);
      scfg.core_batch = cfg_.core_batch;
      const auto idx = slices_.size();
      if (cfg_.granularity != DomainGranularity::kSlice) {
        // Bind each node's core/switch/NI to its own partition domain and
        // ledger; the Slice constructor's sim/ledger (the hub) keeps the
        // slice-wide agents.
        const std::size_t pps =
            static_cast<std::size_t>(cfg_.parts_per_slice());
        scfg.node_binding = [this, idx, pps](int local_chip, Layer layer)
            -> Slice::NodeBinding {
          const std::size_t local =
              cfg_.granularity == DomainGranularity::kChip
                  ? static_cast<std::size_t>(local_chip)
                  : static_cast<std::size_t>(local_chip * 2 +
                                             static_cast<int>(layer));
          const std::size_t pidx = idx * pps + local;
          return Slice::NodeBinding{&part_sim(pidx),
                                    part_ledgers_[pidx].get()};
        };
      }
      slices_.push_back(std::make_unique<Slice>(
          slice_sim(idx), *slice_ledgers_[idx], *net_, router_for, scfg));
      // Event descriptors identify each slice's ADC by flat row-major index.
      slices_.back()->sampler().set_snap_node(static_cast<std::uint16_t>(idx));
    }
  }

  // ---- Inter-slice FFC cables (§IV.B).
  auto S = [this](int sx, int sy) -> Slice& {
    return *slices_[static_cast<std::size_t>(sy * cfg_.slices_x + sx)];
  };
  for (int sy = 0; sy < cfg_.slices_y; ++sy) {
    for (int sx = 0; sx < cfg_.slices_x; ++sx) {
      if (sy + 1 < cfg_.slices_y) {
        for (int col = 0; col < Slice::kChipCols; ++col) {
          net_->connect(S(sx, sy).edge_bottom(col), kDirSouth,
                        S(sx, sy + 1).edge_top(col), kDirNorth,
                        LinkClass::kOffBoardCable, 1, cfg_.cable_length_cm);
        }
      }
      if (sx + 1 < cfg_.slices_x) {
        for (int row = 0; row < Slice::kChipRows; ++row) {
          net_->connect(S(sx, sy).edge_right(row), kDirEast,
                        S(sx + 1, sy).edge_left(row), kDirWest,
                        LinkClass::kOffBoardCable, 1, cfg_.cable_length_cm);
        }
      }
    }
  }

  // ---- Ethernet bridges on the south edge.
  for (int b = 0; b < cfg_.ethernet_bridges; ++b) {
    const int chip_col = 2 * b;
    const int sx = chip_col / Slice::kChipCols;
    const int col = chip_col % Slice::kChipCols;
    const NodeId bridge_node =
        lattice_node_id(chip_col, kBridgeRow, Layer::kVertical);
    // A bridge shares the event domain of the edge switch it cables to (so
    // the cable is domain-internal) but keeps its own ledger partition.
    const NodeId proxy =
        lattice_node_id(chip_col, cfg_.chip_rows() - 1, Layer::kVertical);
    Simulator& bridge_sim = part_sim(partition_of(proxy));
    bridge_ledgers_.push_back(std::make_unique<EnergyLedger>());
    auto bridge = std::make_unique<EthernetBridge>(
        bridge_sim, *bridge_ledgers_.back(), *net_, bridge_node);
    net_->connect(S(sx, cfg_.slices_y - 1).edge_bottom(col), kDirSouth,
                  bridge->bridge_switch(), kDirNorth,
                  LinkClass::kOffBoardCable, 1, cfg_.cable_length_cm);
    bridges_.push_back(std::move(bridge));
  }

  if (cfg_.reliable_links) net_->set_links_reliable(true);

  // ---- Parallel engine: one worker pool over the partition domains, with
  // lookahead equal to the fastest possible domain crossing at the
  // configured granularity — per-slice sharding only crosses FFC cables;
  // per-chip sharding adds board traces; per-core sharding adds the
  // in-package links (credits return after exactly the wire latency; token
  // deliveries additionally pay hop + serialization time).
  if (cfg_.jobs > 0) {
    TimePs lookahead =
        link_wire_latency(LinkClass::kOffBoardCable, cfg_.cable_length_cm);
    if (cfg_.granularity != DomainGranularity::kSlice) {
      lookahead = std::min(
          lookahead, std::min(link_wire_latency(LinkClass::kBoardVertical),
                              link_wire_latency(LinkClass::kBoardHorizontal)));
    }
    if (cfg_.granularity == DomainGranularity::kCore) {
      lookahead = std::min(lookahead, link_wire_latency(LinkClass::kOnChip));
    }
    require(lookahead >= 1,
            "SwallowSystem: cable_length_cm too short to give the parallel "
            "engine a lookahead window");
    ParallelEngine::SyncConfig sync;
    sync.bounded = cfg_.sync == SyncMode::kBounded;
    sync.bound_cycles = cfg_.sync_bound;
    // One simulated core cycle in picoseconds (bounded mode's skew unit).
    sync.cycle_ps = std::max<TimePs>(
        1, static_cast<TimePs>(1e6 / cfg_.core_freq + 0.5));
    std::vector<Domain*> parts;
    parts.reserve(domains_.size());
    for (auto& d : domains_) parts.push_back(d.get());
    std::vector<Domain*> hubs;
    hubs.reserve(hub_domains_.size());
    for (auto& h : hub_domains_) hubs.push_back(h.get());
    engine_ = std::make_unique<ParallelEngine>(
        std::move(parts), std::move(hubs), cfg_.jobs, lookahead, sync);
    // Route every link that joins two domains through a crossing mailbox.
    std::unordered_map<const Simulator*, Domain*> dom_of;
    for (auto& d : domains_) dom_of[&d->sim()] = d.get();
    for (std::size_t i = 0; i < net_->switch_count(); ++i) {
      Switch& sw = net_->switch_at(i);
      for (const Switch::LinkPortInfo& info : sw.link_ports()) {
        Switch* peer = net_->find_switch(info.peer);
        if (peer == nullptr || &peer->sim() == &sw.sim()) continue;
        sw.set_link_crossing(info.port,
                             engine_->crossing(*dom_of.at(&sw.sim()),
                                               *dom_of.at(&peer->sim())));
      }
    }
  }
}

SwallowSystem::~SwallowSystem() = default;

Simulator& SwallowSystem::slice_sim(std::size_t idx) {
  // The domain slice-wide agents (sampler, loss integration, telemetry)
  // schedule in: the hub at finer-than-slice granularity, the slice's own
  // partition at kSlice, the host Simulator when sequential.
  if (!hub_domains_.empty()) return hub_domains_[idx]->sim();
  return domains_.empty() ? sim_ : domains_[idx]->sim();
}

Simulator& SwallowSystem::part_sim(std::size_t pidx) {
  return domains_.empty() ? sim_ : domains_[pidx]->sim();
}

std::size_t SwallowSystem::partition_of(NodeId node) const {
  const int x = node_chip_x(node);
  const int y = node_chip_y(node);
  const std::size_t slice_idx = static_cast<std::size_t>(
      (y / Slice::kChipRows) * cfg_.slices_x + x / Slice::kChipCols);
  const int local_chip =
      (y % Slice::kChipRows) * Slice::kChipCols + x % Slice::kChipCols;
  switch (cfg_.granularity) {
    case DomainGranularity::kSlice:
      return slice_idx;
    case DomainGranularity::kChip:
      return slice_idx * Slice::kChips + static_cast<std::size_t>(local_chip);
    case DomainGranularity::kCore:
      return slice_idx * Slice::kCores +
             static_cast<std::size_t>(local_chip * 2 +
                                      static_cast<int>(node_layer(node)));
  }
  return slice_idx;
}

EnergyLedger& SwallowSystem::node_ledger(std::size_t slice_idx, int local_chip,
                                         Layer layer) {
  switch (cfg_.granularity) {
    case DomainGranularity::kSlice:
      return *slice_ledgers_[slice_idx];
    case DomainGranularity::kChip:
      return *part_ledgers_[slice_idx * Slice::kChips +
                            static_cast<std::size_t>(local_chip)];
    case DomainGranularity::kCore:
      return *part_ledgers_[slice_idx * Slice::kCores +
                            static_cast<std::size_t>(
                                local_chip * 2 + static_cast<int>(layer))];
  }
  return *slice_ledgers_[slice_idx];
}

Joules SwallowSystem::slice_energy_total(std::size_t idx) const {
  Joules e = 0;
  if (!part_ledgers_.empty()) {
    const std::size_t pps = static_cast<std::size_t>(cfg_.parts_per_slice());
    for (std::size_t p = idx * pps; p < (idx + 1) * pps; ++p) {
      e += part_ledgers_[p]->grand_total();
    }
  }
  e += slice_ledgers_[idx]->grand_total();
  return e;
}

Simulator& SwallowSystem::sim_for_slice(int sx, int sy) {
  require(sx >= 0 && sx < cfg_.slices_x && sy >= 0 && sy < cfg_.slices_y,
          "SwallowSystem: slice index out of range");
  return slice_sim(static_cast<std::size_t>(sy * cfg_.slices_x + sx));
}

Simulator& SwallowSystem::sim_for_node(NodeId node) {
  if (domains_.empty()) return sim_;
  if (node_chip_y(node) == kBridgeRow) {
    // Bridges live in the domain of the edge switch they cable to.
    const NodeId proxy = lattice_node_id(
        node_chip_x(node), cfg_.chip_rows() - 1, Layer::kVertical);
    return part_sim(partition_of(proxy));
  }
  return part_sim(partition_of(node));
}

EnergyLedger& SwallowSystem::slice_ledger(int sx, int sy) {
  require(sx >= 0 && sx < cfg_.slices_x && sy >= 0 && sy < cfg_.slices_y,
          "SwallowSystem: slice index out of range");
  return *slice_ledgers_[static_cast<std::size_t>(sy * cfg_.slices_x + sx)];
}

EnergyLedger& SwallowSystem::ledger() {
  merged_.reset();
  const std::size_t pps = static_cast<std::size_t>(cfg_.parts_per_slice());
  for (std::size_t a = 0; a < static_cast<std::size_t>(EnergyAccount::kCount);
       ++a) {
    const auto account = static_cast<EnergyAccount>(a);
    // Per slice: its partition ledgers first (slice-major order), then the
    // slice hub ledger — the same order the attribution shards are created
    // in, so attributed totals reproduce this summation bit for bit.
    for (std::size_t s = 0; s < slice_ledgers_.size(); ++s) {
      if (!part_ledgers_.empty()) {
        for (std::size_t p = s * pps; p < (s + 1) * pps; ++p) {
          merged_.add(account, part_ledgers_[p]->total(account));
        }
      }
      merged_.add(account, slice_ledgers_[s]->total(account));
    }
    for (const auto& l : bridge_ledgers_) {
      merged_.add(account, l->total(account));
    }
    merged_.add(account, system_ledger_.total(account));
  }
#if SWALLOW_CHECK_ENABLED
  // Ledger conservation: the merged grand total must equal the sum of the
  // component grand totals (up to float reassociation) — a mismatch means
  // an account was dropped or double-counted in the merge.
  Joules parts = system_ledger_.grand_total();
  for (const auto& l : slice_ledgers_) parts += l->grand_total();
  for (const auto& l : part_ledgers_) parts += l->grand_total();
  for (const auto& l : bridge_ledgers_) parts += l->grand_total();
  const Joules merged_total = merged_.grand_total();
  SWALLOW_CHECK_PROBE(
      std::abs(merged_total - parts) <=
          1e-9 * std::max(1.0, std::max(std::abs(merged_total),
                                        std::abs(parts))),
      "merged energy ledger != sum of component ledgers");
  SWALLOW_CHECK_PROBE(merged_total >= 0.0, "negative total energy");
  // Attribution conservation: every joule in the merged ledger must be
  // accounted for by the attribution shards, bit for bit (the shards see
  // the identical += stream per partition and sum in merge order).
  if (obs_ != nullptr && obs_->energy() &&
      obs_->energy_attribution().attached()) {
    const std::string err =
        obs_->energy_attribution().conservation_error(merged_);
    if (!err.empty()) {
      throw InternalError("SWALLOW_CHECK probe failed: " + err);
    }
  }
#endif
  return merged_;
}

std::uint64_t SwallowSystem::run_until(TimePs deadline) {
  if (obs_ == nullptr || !obs_->active()) return run_until_impl(deadline);
  // Chop the run at flush-period multiples.  Both engines clamp every
  // domain at the chop time, so at each chop all tracks are complete up to
  // it and the periodic samples read identical machine state — this choice
  // of chop times is what makes the merged trace byte-identical across
  // engines and worker counts.
  const TimePs flush = std::max<TimePs>(1, obs_->flush_period());
  // With energy attribution on a tracing session, the windowed power
  // counters sample at power-window multiples; chop at the gcd so both
  // grids land exactly on chop points (with the default window == flush
  // period the chop times are unchanged).
  TimePs pwin = 0;
  TimePs chop = flush;
  if (obs_->energy() && obs_->tracing()) {
    pwin = std::max<TimePs>(1, obs_->power_window());
    chop = std::gcd(flush, pwin);
  }
  TimePs cur = now();
  if (cur >= deadline) return run_until_impl(deadline);
  std::uint64_t dispatched = 0;
  while (cur < deadline) {
    const TimePs next = std::min(deadline, (cur / chop + 1) * chop);
    dispatched += run_until_impl(next);
    // Power sample first so its counter events at `next` are inside the
    // flush that obs_sample/flush_up_to performs.
    if (pwin != 0 && next % pwin == 0) obs_power_sample(next);
    if (next % flush == 0) {
      obs_sample(next);
    } else {
      obs_->flush_up_to(next);
    }
    cur = next;
  }
  return dispatched;
}

std::uint64_t SwallowSystem::run_until_impl(TimePs deadline) {
  if (engine_ == nullptr) return sim_.run_until(deadline);
  std::uint64_t before = 0;
  for (const auto& d : domains_) before += d->sim().events_dispatched();
  for (const auto& h : hub_domains_) before += h->sim().events_dispatched();
  engine_->run_until(deadline);
  std::uint64_t after = 0;
  for (const auto& d : domains_) after += d->sim().events_dispatched();
  for (const auto& h : hub_domains_) after += h->sim().events_dispatched();
  // Host-side events (anything scheduled on the caller's Simulator) fire
  // between engine runs, at the deadline.
  after += sim_.run_until(deadline);
  return after - before;
}

void SwallowSystem::attach_observability(TraceSession& session) {
  require(obs_ == nullptr, "SwallowSystem: observability already attached");
  require(session.active(),
          "SwallowSystem: the session has no pillar enabled (set tracing, "
          "metrics or profile in TraceConfig)");
  obs_ = &session;
  const bool trace = session.tracing();
  const bool metrics = session.collecting_metrics();

  // Track creation order is the deterministic merge tiebreak, so it must
  // depend only on the machine description: slices row-major, nodes by
  // flat local index (chip*2 + layer), per node the core track then the
  // switch track; then the bridge switches; the system track last.
  for (auto& slice : slices_) {
    for (int i = 0; i < Slice::kCores; ++i) {
      Core& core = slice->core_at(i);
      Switch& sw = slice->switch_of(i / 2, static_cast<Layer>(i % 2));
      const NodeId node = core.node_id();
      if (trace) core.set_obs_track(session.make_track(node, "core"));
      SwitchProbe probe;
      if (trace) probe.track = session.make_track(node, "switch");
      if (metrics) {
        MetricsRegistry& reg = session.metrics();
        probe.queue_delay_ns = reg.histogram("switch.queue_delay_ns", node);
        probe.backoff_ns = reg.histogram("switch.retransmit_backoff_ns", node);
        probe.token_latency_ns = reg.histogram("token.e2e_latency_ns", node);
        probe.tokens_delivered = reg.counter("switch.tokens_delivered", node);
        probe.parks = reg.counter("switch.parks", node);
      }
      if (trace || metrics) sw.set_obs(probe);
    }
  }
  for (auto& bridge : bridges_) {
    SwitchProbe probe;
    if (trace) probe.track = session.make_track(bridge->node_id(), "switch");
    if (metrics) {
      MetricsRegistry& reg = session.metrics();
      const NodeId node = bridge->node_id();
      probe.queue_delay_ns = reg.histogram("switch.queue_delay_ns", node);
      probe.backoff_ns = reg.histogram("switch.retransmit_backoff_ns", node);
      probe.token_latency_ns = reg.histogram("token.e2e_latency_ns", node);
      probe.tokens_delivered = reg.counter("switch.tokens_delivered", node);
      probe.parks = reg.counter("switch.parks", node);
    }
    if (trace || metrics) bridge->bridge_switch().set_obs(probe);
  }
  if (trace) obs_system_ = session.make_track(kSystemTrackNode, "system");

  // Energy attribution: one shard per ledger partition, created in the
  // exact order ledger() merges partitions (slices row-major, then
  // bridges, then the system ledger) so attributed totals reproduce the
  // merged ledger's summation order bit for bit.  Cores and switches get
  // the shard of the slice whose ledger they charge.
  if (session.energy()) {
    EnergyAttribution& attr = session.energy_attribution();
    require(!attr.attached(),
            "SwallowSystem: energy attribution already attached");
    const std::size_t pps = static_cast<std::size_t>(cfg_.parts_per_slice());
    for (std::size_t i = 0; i < slices_.size(); ++i) {
      // Shard creation order must match ledger()'s merge order: the
      // slice's partition shards (if any), then the slice hub shard.
      std::vector<AttrShard*> pshards;
      if (!part_ledgers_.empty()) {
        for (std::size_t p = 0; p < pps; ++p) {
          pshards.push_back(&attr.make_shard(
              strprintf("slice%zu.p%zu", i, p), *part_ledgers_[i * pps + p]));
        }
      }
      AttrShard& hub_shard =
          attr.make_shard(strprintf("slice%zu", i), *slice_ledgers_[i]);
      for (int c = 0; c < Slice::kCores; ++c) {
        AttrShard* shard = &hub_shard;
        if (cfg_.granularity == DomainGranularity::kChip) {
          shard = pshards[static_cast<std::size_t>(c / 2)];
        } else if (cfg_.granularity == DomainGranularity::kCore) {
          shard = pshards[static_cast<std::size_t>(c)];
        }
        slices_[i]->core_at(c).set_energy_attr(shard);
        slices_[i]
            ->switch_of(c / 2, static_cast<Layer>(c % 2))
            .set_energy_attr(shard);
      }
    }
    for (std::size_t b = 0; b < bridges_.size(); ++b) {
      AttrShard& shard =
          attr.make_shard(strprintf("bridge%zu", b), *bridge_ledgers_[b]);
      bridges_[b]->bridge_switch().set_energy_attr(&shard);
    }
    attr.make_shard("system", system_ledger_);
  }
}

void SwallowSystem::obs_sample(TimePs t) {
  settle_energy();
  if (obs_system_ != nullptr) {
    // The ledger merge walks partitions in a fixed order and both engines
    // produce bit-identical per-partition totals, so these doubles are
    // engine-independent.
    EnergyLedger& led = ledger();
    for (std::size_t a = 0;
         a < static_cast<std::size_t>(EnergyAccount::kCount); ++a) {
      obs_system_->counter(t, TraceCat::kEnergy,
                           static_cast<std::uint16_t>(a), kTidSystem,
                           led.total(static_cast<EnergyAccount>(a)) * 1e6);
    }
    obs_system_->counter(t, TraceCat::kEnergy, kEnergySubGrandTotal,
                         kTidSystem, led.grand_total() * 1e6);
    obs_system_->counter(t, TraceCat::kEnergy, kEnergySubInputPower,
                         kTidSystem, total_input_power());
  }
  if (obs_->profiling()) {
    for (auto& slice : slices_) {
      for (int i = 0; i < Slice::kCores; ++i) {
        Core& core = slice->core_at(i);
        for (const Core::ThreadSample& s : core.thread_snapshot()) {
          obs_->profiler().sample(core.node_id(), s.tid, s.pc, s.running);
        }
      }
    }
  }
  obs_->flush_up_to(t);
  obs_last_sample_ = t;
}

void SwallowSystem::obs_power_sample(TimePs t) {
  if (t <= obs_last_power_) return;
  settle_energy();
  const double dt_s = static_cast<double>(t - obs_last_power_) * 1e-12;
  // Per-core average power over the window, on the core's own track.  The
  // deltas come from the core's power traces, settled at the chop point —
  // identical under every engine and worker count.
  std::size_t ci = 0;
  for (auto& slice : slices_) {
    for (int i = 0; i < Slice::kCores; ++i, ++ci) {
      Core& core = slice->core_at(i);
      const Joules e = core.energy_consumed();
      const double watts = (e - obs_power_prev_core_[ci]) / dt_s;
      obs_power_prev_core_[ci] = e;
      if (core.obs_track() != nullptr) {
        core.obs_track()->counter(t, TraceCat::kEnergy, kEnergySubCorePower,
                                  kTidNode, watts);
      }
    }
  }
  // Per-slice average power (the whole slice's ledgers: cores, links,
  // NI, DC-DC losses) on the system track.
  for (std::size_t s = 0; s < slices_.size(); ++s) {
    const Joules e = slice_energy_total(s);
    const double watts = (e - obs_power_prev_slice_[s]) / dt_s;
    obs_power_prev_slice_[s] = e;
    if (obs_system_ != nullptr) {
      obs_system_->counter(
          t, TraceCat::kEnergy,
          static_cast<std::uint16_t>(kEnergySubSlicePowerBase + s),
          kTidSystem, watts);
    }
  }
  obs_last_power_ = t;
}

void SwallowSystem::finish_observability() {
  require(obs_ != nullptr, "SwallowSystem: no observability session attached");
  const TimePs t = now();
  // Final (possibly partial) power window, then the final periodic sample,
  // unless the run already ended on the respective grid point.
  if (obs_->energy() && obs_->tracing() && t > obs_last_power_) {
    obs_power_sample(t);
  }
  if (t > obs_last_sample_) obs_sample(t);
  if (obs_->tracing()) {
    for (auto& slice : slices_) {
      for (int i = 0; i < Slice::kCores; ++i) {
        slice->core_at(i).obs_close_spans();
        slice->switch_of(i / 2, static_cast<Layer>(i % 2)).obs_close_spans();
      }
    }
    for (auto& bridge : bridges_) bridge->bridge_switch().obs_close_spans();
  }
  if (obs_->collecting_metrics()) {
    MetricsRegistry& reg = obs_->metrics();
    // Per-thread IPC over the whole run, against the core's current clock
    // (instructions / elapsed core cycles).  Threads that never issued are
    // skipped — identically under every engine.
    const double seconds = static_cast<double>(t) * 1e-12;
    for (auto& slice : slices_) {
      for (int i = 0; i < Slice::kCores; ++i) {
        Core& core = slice->core_at(i);
        const double hz = core.frequency() * 1e6;
        for (int tid = 0; tid < kMaxHardwareThreads; ++tid) {
          const std::uint64_t n = core.thread_instructions(tid);
          if (n == 0 || seconds <= 0.0 || hz <= 0.0) continue;
          reg.gauge(strprintf("core.ipc.t%d", tid), core.node_id())
              ->set(static_cast<double>(n) / (seconds * hz));
        }
        reg.gauge("core.instructions", core.node_id())
            ->set(static_cast<double>(core.instructions_retired()));
      }
    }
    const FaultCounters faults = net_->total_fault_counters();
    const auto fields = faults.as_array();
    for (int f = 0; f < FaultCounters::kFieldCount; ++f) {
      reg.gauge(strprintf("fault.%s", FaultCounters::field_name(f)),
                kSystemTrackNode)
          ->set(static_cast<double>(fields[static_cast<std::size_t>(f)]));
    }
    // sync_drift family: only emitted when the engine may actually drift
    // (bounded mode with a nonzero budget), so exact-mode metrics stay
    // byte-identical to the sequential engine's.
    if (engine_ != nullptr && engine_->relaxed()) {
      const CrossingRelax& relax = engine_->relax();
      const ParallelEngine::Stats& stats = engine_->stats();
      reg.gauge("sync.max_skew_ps", kSystemTrackNode)
          ->set(static_cast<double>(relax.max_skew_ps));
      reg.gauge("sync.stragglers", kSystemTrackNode)
          ->set(static_cast<double>(relax.stragglers));
      reg.gauge("sync.quanta", kSystemTrackNode)
          ->set(static_cast<double>(stats.quanta));
      reg.gauge("sync.merges", kSystemTrackNode)
          ->set(static_cast<double>(stats.merges));
    }
  }
  if (obs_->profiling()) {
    for (auto& slice : slices_) {
      for (int i = 0; i < Slice::kCores; ++i) {
        Core& core = slice->core_at(i);
        obs_->profiler().note_symbols(core.node_id(), core.symbols());
      }
    }
  }
  if (obs_->energy()) {
    EnergyAttribution& attr = obs_->energy_attribution();
    for (auto& slice : slices_) {
      for (int i = 0; i < Slice::kCores; ++i) {
        Core& core = slice->core_at(i);
        attr.note_symbols(core.node_id(), core.symbols());
      }
    }
  }
  obs_->finish(t);
}

Slice& SwallowSystem::slice(int sx, int sy) {
  require(sx >= 0 && sx < cfg_.slices_x && sy >= 0 && sy < cfg_.slices_y,
          "SwallowSystem: slice index out of range");
  return *slices_[static_cast<std::size_t>(sy * cfg_.slices_x + sx)];
}

Core& SwallowSystem::core(int chip_x, int chip_y, Layer layer) {
  Slice& s = slice(chip_x / Slice::kChipCols, chip_y / Slice::kChipRows);
  const int local =
      (chip_y % Slice::kChipRows) * Slice::kChipCols + chip_x % Slice::kChipCols;
  return s.core(local, layer);
}

Core& SwallowSystem::core_by_index(int i) {
  require(i >= 0 && i < core_count(), "SwallowSystem: core index out of range");
  Slice& s = *slices_[static_cast<std::size_t>(i / Slice::kCores)];
  return s.core_at(i % Slice::kCores);
}

Core* SwallowSystem::find_core(NodeId node) {
  const int x = node_chip_x(node);
  const int y = node_chip_y(node);
  if (x >= cfg_.chip_cols() || y >= cfg_.chip_rows()) return nullptr;
  return &core(x, y, node_layer(node));
}

Switch& SwallowSystem::switch_at(int chip_x, int chip_y, Layer layer) {
  Slice& s = slice(chip_x / Slice::kChipCols, chip_y / Slice::kChipRows);
  const int local =
      (chip_y % Slice::kChipRows) * Slice::kChipCols + chip_x % Slice::kChipCols;
  return s.switch_of(local, layer);
}

void SwallowSystem::boot_image(int bridge_idx, NodeId node, const Image& image) {
  EthernetBridge& br = bridge(bridge_idx);
  const ResourceId boot_ce =
      make_resource_id(node, BootRom::kBootChanend, ResourceType::kChanend);
  for (const auto& packet : boot_packets_for_image(image)) {
    br.host_send(boot_ce, packet);
  }
}

void SwallowSystem::boot_image_via_resident_loader(int bridge_idx, NodeId node,
                                                   const Image& image) {
  EthernetBridge& br = bridge(bridge_idx);
  const ResourceId loader_ce =
      make_resource_id(node, 0, ResourceType::kChanend);
  for (const auto& packet : boot_packets_for_image(image)) {
    br.host_send(loader_ce, packet);
  }
}

void SwallowSystem::settle_energy() {
  for (std::size_t i = 0; i < slices_.size(); ++i) {
    slices_[i]->settle_energy(slice_sim(i).now());
  }
}

Watts SwallowSystem::total_input_power() const {
  Watts p = 0;
  for (const auto& s : slices_) p += s->input_power();
  return p;
}

Watts SwallowSystem::total_cores_power() const {
  Watts p = 0;
  for (const auto& s : slices_) p += s->cores_power();
  return p;
}

void SwallowSystem::start_sampling(double rate_sps) {
  for (auto& s : slices_) {
    s->sampler().start(PowerSampler::Mode::kSimultaneous, rate_sps);
  }
}

void SwallowSystem::enable_loss_integration(TimePs period) {
  require(loss_period_ == 0, "loss integration already enabled");
  require(period > 0, "loss integration period must be positive");
  loss_period_ = period;
  // Each slice integrates its own losses into its own ledger, on its own
  // event domain — identical totals under either engine.
  for (std::size_t i = 0; i < slices_.size(); ++i) {
    slice_sim(i).after(
        loss_period_,
        EventDesc{EventKind::kLossIntegrate, static_cast<std::uint16_t>(i)},
        [this, i] { integrate_slice_losses(i); });
  }
}

SystemDiagnosis SwallowSystem::diagnose_report() {
  SystemDiagnosis d;
  for (const auto& slice : slices_) {
    for (int i = 0; i < Slice::kCores; ++i) {
      Core& core = slice->core_at(i);
      if (core.trapped()) {
        SystemDiagnosis::TrapInfo t;
        t.core = core.node_id();
        t.thread = core.trap().thread;
        t.pc = core.trap().pc;
        t.kind = core.trap().kind;
        t.message = core.trap().message;
        d.traps.push_back(std::move(t));
      }
      for (const Core::BlockedThread& b : core.blocked_thread_info()) {
        SystemDiagnosis::StallInfo s;
        s.core = core.node_id();
        s.thread = b.tid;
        s.pc = b.pc;
        s.waiting_on = b.kind;
        s.resource = b.resource;
        s.self_waking = b.self_waking;
        d.blocked.push_back(s);
      }
    }
  }
  for (std::size_t i = 0; i < net_->switch_count(); ++i) {
    Switch& sw = net_->switch_at(i);
    const auto routes = sw.open_routes(sw.sim().now());
    d.routes.insert(d.routes.end(), routes.begin(), routes.end());
  }
  d.faults = net_->total_fault_counters();
  return d;
}

std::string SwallowSystem::diagnose() {
  const SystemDiagnosis d = diagnose_report();
  std::string out;
  for (const SystemDiagnosis::TrapInfo& t : d.traps) {
    out += strprintf("core %04x TRAPPED [%s] t%d pc %u: %s\n", t.core,
                     std::string(to_string(t.kind)).c_str(), t.thread, t.pc,
                     t.message.c_str());
  }
  for (const SystemDiagnosis::StallInfo& s : d.blocked) {
    out += strprintf("core %04x: thread %d blocked at pc %u on %s 0x%08x%s\n",
                     s.core, s.thread, s.pc, to_string(s.waiting_on),
                     s.resource, s.self_waking ? " (self-waking)" : "");
  }
  for (const Switch::OpenRoute& r : d.routes) {
    if (r.parked) {
      out += strprintf("  node %04x: input %d parked waiting for a free "
                       "output (%zu tokens queued)\n",
                       r.node, r.input, r.queued_tokens);
    } else {
      out += strprintf(
          "  node %04x: input %d -> output %d (%s) held %.0f ns, "
          "%zu tokens queued\n",
          r.node, r.input, r.output, r.to_link ? "link" : "endpoint",
          to_nanoseconds(r.held_for), r.queued_tokens);
    }
  }
  return out;
}

void SwallowSystem::integrate_slice_losses(std::size_t idx) {
  const Watts loss = slices_[idx]->supplies().conversion_loss();
  slice_ledgers_[idx]->add(EnergyAccount::kDcDcIo,
                           energy_over(loss, loss_period_));
  slice_sim(idx).after(
      loss_period_,
      EventDesc{EventKind::kLossIntegrate, static_cast<std::uint16_t>(idx)},
      [this, idx] { integrate_slice_losses(idx); });
}

// ---- Snapshot (src/snap/) ----

void SwallowSystem::save_state(StateWriter& w) const {
  system_ledger_.save_state(w);
  for (const auto& l : slice_ledgers_) l->save_state(w);
  for (const auto& l : part_ledgers_) l->save_state(w);
  for (const auto& l : bridge_ledgers_) l->save_state(w);
  for (const auto& s : slices_) s->save_state(w);
  for (const auto& b : bridges_) {
    b->save_state(w);
    b->bridge_switch().save_state(w);
  }
  w.i64(loss_period_);
  w.i64(obs_last_sample_);
  w.i64(obs_last_power_);
  for (const double e : obs_power_prev_core_) w.f64(e);
  for (const double e : obs_power_prev_slice_) w.f64(e);
}

void SwallowSystem::load_state(StateReader& r) {
  system_ledger_.load_state(r);
  for (const auto& l : slice_ledgers_) l->load_state(r);
  for (const auto& l : part_ledgers_) l->load_state(r);
  for (const auto& l : bridge_ledgers_) l->load_state(r);
  for (const auto& s : slices_) s->load_state(r);
  for (const auto& b : bridges_) {
    b->load_state(r);
    b->bridge_switch().load_state(r);
  }
  loss_period_ = r.i64();
  obs_last_sample_ = r.i64();
  obs_last_power_ = r.i64();
  for (double& e : obs_power_prev_core_) e = r.f64();
  for (double& e : obs_power_prev_slice_) e = r.f64();
}

void SwallowSystem::restore_event(const LiveEvent& ev) {
  switch (ev.desc.kind) {
    case EventKind::kCoreIssue:
    case EventKind::kCoreTimerWake: {
      Core* c = find_core(ev.desc.node);
      invariant(c != nullptr, "snapshot: live event names an unknown core");
      c->restore_event(ev);
      return;
    }
    case EventKind::kSwitchInject:
    case EventKind::kSwitchProcess:
    case EventKind::kSwitchLinkNak:
    case EventKind::kSwitchLinkAck:
    case EventKind::kSwitchCredit:
    case EventKind::kSwitchResendStep:
    case EventKind::kSwitchRetryTimeout:
    case EventKind::kSwitchLinkDeliver:
    case EventKind::kSwitchProcDeliver: {
      Switch* sw = net_->find_switch(ev.desc.node);
      invariant(sw != nullptr, "snapshot: live event names an unknown switch");
      sw->restore_event(ev);
      return;
    }
    case EventKind::kBridgePump: {
      for (auto& b : bridges_) {
        if (b->node_id() == ev.desc.node) {
          b->restore_event(ev);
          return;
        }
      }
      invariant(false, "snapshot: live event names an unknown bridge");
      return;
    }
    case EventKind::kSamplerTick: {
      slices_.at(ev.desc.node)->sampler().restore_event(ev);
      return;
    }
    case EventKind::kLossIntegrate: {
      const std::size_t idx = ev.desc.node;
      invariant(idx < slices_.size(),
                "snapshot: loss-integration event names an unknown slice");
      slice_sim(idx).inject(ev.time, ev.stamp, ev.tie, ev.desc,
                            [this, idx] { integrate_slice_losses(idx); });
      return;
    }
    default:
      invariant(false, "snapshot: event kind not owned by SwallowSystem");
  }
}

}  // namespace swallow
