// Network boot (§V.E: "it is possible to load programs into Swallow over
// Ethernet").
//
// Each node carries a BootRom endpoint on reserved channel-end index 32.
// On real hardware a resident first-stage loader performs this role; here
// the ROM is a small native object, but the *bytes still travel through
// the simulated network*, so boot traffic has true timing and energy cost.
//
// Wire protocol (words little-endian, one packet per command, END-framed):
//   WRITE: [byte addr][byte count n][n payload bytes]
//   START: [0xFFFFFFFF][entry word index]
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "arch/comm.h"
#include "arch/core.h"

namespace swallow {

class BootRom : public TokenReceiver {
 public:
  /// Reserved endpoint index on every node's switch.
  static constexpr int kBootChanend = 32;

  explicit BootRom(Core& core) : core_(&core) {}

  // TokenReceiver: the ROM always has room; commands apply on END.
  bool can_receive() const override { return true; }
  std::size_t free_space() const override { return 1024; }
  void receive(const Token& t) override;
  void subscribe_drain(std::function<void()> cb) override {
    subs_.push_back(std::move(cb));
  }

  std::uint64_t bytes_written() const { return bytes_written_; }
  bool started() const { return started_; }

  /// Snapshot: the partially-assembled command buffer plus counters.  The
  /// core pointer and drain subscriptions are wiring.
  void save_state(StateWriter& w) const {
    w.seq(buffer_, [&](std::uint8_t b) { w.u8(b); });
    w.u64(bytes_written_);
    w.b(started_);
  }
  void load_state(StateReader& r) {
    buffer_.clear();
    r.seq([&](std::uint32_t) { buffer_.push_back(r.u8()); });
    bytes_written_ = r.u64();
    started_ = r.b();
  }

 private:
  void apply();

  Core* core_;
  std::vector<std::uint8_t> buffer_;
  std::vector<std::function<void()>> subs_;
  std::uint64_t bytes_written_ = 0;
  bool started_ = false;
};

/// Client-side helpers: build the boot byte stream for an image.
std::vector<std::uint8_t> boot_write_command(std::uint32_t byte_addr,
                                             const std::vector<std::uint8_t>& data);
std::vector<std::uint8_t> boot_start_command(std::uint32_t entry_word);

/// Serialise a whole image into boot packets of `chunk` bytes.
std::vector<std::vector<std::uint8_t>> boot_packets_for_image(
    const Image& image, std::size_t chunk = 64);

}  // namespace swallow
