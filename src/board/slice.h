// One Swallow slice (§IV.B, Fig. 5/7): sixteen processors on eight XS1-L2
// chips in a 4-column x 2-row grid, wired as one tile of the unwoven
// lattice, plus the five measurable power supplies of §II.
//
// Per chip: the vertical-layer node's external links run North/South, the
// horizontal-layer node's run East/West, and four on-chip links join the
// two.  On-board links connect chips within the slice; the twelve edge
// positions (8 vertical + 4 horizontal) are exposed for inter-slice FFC
// cables — the paper counts ten off-board network links because two South
// positions double as Ethernet module connectors.
//
// Power: the four 1 V core rails each feed two chips (four cores) and
// carry exactly the Eq. (1)/Fig. 3 core power, which is what the real
// measurement points see; switch/NI static, link drivers and board support
// sit on the 3.3 V I/O rail.  A PowerSampler models the shunt + amplifier
// + ADC daughter-board and backs the cores' GETPWR instruction.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "arch/core.h"
#include "board/boot.h"
#include "board/lattice.h"
#include "energy/measure.h"
#include "energy/supply.h"
#include "noc/network.h"

namespace swallow {

class Slice {
 public:
  static constexpr int kChipCols = 4;
  static constexpr int kChipRows = 2;
  static constexpr int kChips = kChipCols * kChipRows;
  static constexpr int kCores = kChips * 2;

  /// Event domain and energy-ledger partition one node is built in.  The
  /// system supplies a binding per node at finer-than-slice granularity
  /// (SystemConfig::granularity); slice-wide infrastructure — the ADC
  /// sampler, board-support trace and I/O-rail wiring — always stays on
  /// the Slice constructor's own sim/ledger (the "hub").
  struct NodeBinding {
    Simulator* sim = nullptr;
    EnergyLedger* ledger = nullptr;
  };

  struct Config {
    int slice_x = 0;  // position in the system grid of slices
    int slice_y = 0;
    MegaHertz core_freq = kMaxCoreFrequencyMhz;
    CorePowerModel power_model{};
    bool auto_dvfs = false;
    std::uint64_t sampler_seed = 1;
    /// Per-core issue batch bound (Core::Config::max_batch); 1 = stepped.
    int core_batch = Core::Config{}.max_batch;
    /// Per-node domain/ledger override; null places every node on the
    /// constructor's sim and ledger (the historical slice-wide layout).
    std::function<NodeBinding(int local_chip, Layer layer)> node_binding;
  };

  /// `router_for` supplies the routing strategy per node — a shared
  /// computed router, or per-switch software tables (§V.A).
  using RouterFactory = std::function<std::shared_ptr<Router>(NodeId)>;

  Slice(Simulator& sim, EnergyLedger& ledger, Network& net,
        const RouterFactory& router_for, Config cfg);
  ~Slice();

  Slice(const Slice&) = delete;
  Slice& operator=(const Slice&) = delete;

  // ----- Geometry -----
  int chip_x0() const { return cfg_.slice_x * kChipCols; }
  int chip_y0() const { return cfg_.slice_y * kChipRows; }

  /// Core by local chip index (row-major, 0..7) and layer.
  Core& core(int local_chip, Layer layer) {
    return *node(local_chip, layer).core;
  }
  /// Core by flat local index 0..15 (chip*2 + layer).
  Core& core_at(int idx) { return core(idx / 2, static_cast<Layer>(idx % 2)); }
  Switch& switch_of(int local_chip, Layer layer) {
    return *node(local_chip, layer).sw;
  }
  BootRom& boot_rom(int local_chip, Layer layer) {
    return *node(local_chip, layer).rom;
  }

  /// Sum of the fault/resilience counters of this slice's sixteen
  /// switches (streamed by board/telemetry).
  FaultCounters fault_counters() {
    FaultCounters total;
    for (int c = 0; c < kChips; ++c) {
      total += switch_of(c, Layer::kVertical).fault_counters();
      total += switch_of(c, Layer::kHorizontal).fault_counters();
    }
    return total;
  }

  // ----- Edge switches for inter-slice cabling -----
  Switch& edge_top(int col) { return switch_of(col, Layer::kVertical); }
  Switch& edge_bottom(int col) {
    return switch_of(kChipCols + col, Layer::kVertical);
  }
  Switch& edge_left(int row) {
    return switch_of(row * kChipCols, Layer::kHorizontal);
  }
  Switch& edge_right(int row) {
    return switch_of(row * kChipCols + kChipCols - 1, Layer::kHorizontal);
  }

  // ----- Power & measurement -----
  SliceSupplies& supplies() { return supplies_; }
  const SliceSupplies& supplies() const { return supplies_; }
  PowerSampler& sampler() { return *sampler_; }

  /// Bring every power trace up to date before reading the ledger.
  void settle_energy(TimePs now);

  /// Instantaneous power of the sixteen cores (the 3.1 W/slice figure).
  Watts cores_power() const;

  /// Instantaneous slice input power including SMPS losses (§III.A's
  /// ~4.5 W/slice).
  Watts input_power() const { return supplies_.input_power(); }

  // ----- Snapshot (src/snap/) -----
  /// Serialises the sixteen nodes (core, switch, boot ROM, NI static
  /// trace), the board-support trace, and the ADC sampler.  Supplies and
  /// rails are pure wiring (instantaneous sums) and carry no state.
  void save_state(StateWriter& w) const;
  void load_state(StateReader& r);

 private:
  struct NodeSlot {
    std::unique_ptr<Core> core;
    Switch* sw = nullptr;
    std::unique_ptr<BootRom> rom;
    std::unique_ptr<PowerTrace> ni_static;  // switch static share, I/O rail
  };

  NodeSlot& node(int local_chip, Layer layer) {
    return nodes_.at(static_cast<std::size_t>(local_chip * 2 +
                                              static_cast<int>(layer)));
  }
  const NodeSlot& node(int local_chip, Layer layer) const {
    return nodes_.at(static_cast<std::size_t>(local_chip * 2 +
                                              static_cast<int>(layer)));
  }

  Simulator& sim_;
  Config cfg_;
  std::array<NodeSlot, kCores> nodes_;
  SliceSupplies supplies_;
  std::unique_ptr<PowerTrace> support_;  // board support logic, I/O rail
  std::unique_ptr<PowerSampler> sampler_;
};

}  // namespace swallow
