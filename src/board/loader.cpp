#include "board/loader.h"

#include "common/strings.h"

namespace swallow {

std::string resident_loader_source() {
  return strprintf(R"(
      .org %u
  loader:
      getr  r0, 2          # chanend 0: boot packets arrive here
  next_packet:
      in    r1, r0         # byte address, or 0xffffffff for START
      in    r2, r0         # byte count (word multiple), or entry word
      not   r3, r1
      bf    r3, start      # ~addr == 0  <=>  addr == 0xffffffff
      ldc   r4, 0          # write offset
  copy:
      bf    r2, packet_done
      in    r5, r0
      add   r6, r1, r4
      stw   r5, r6, 0
      addi  r4, r4, 4
      subi  r2, r2, 4
      bu    copy
  packet_done:
      chkct r0, 1
      bu    next_packet
  start:
      chkct r0, 1
      freer r0             # release the boot chanend for the application
      bau   r2             # jump to the loaded image's entry
  )",
                   kResidentLoaderBase);
}

void install_resident_loader(Core& core) {
  const Image loader = assemble(resident_loader_source());
  core.load(loader);
  core.start(loader.symbol("loader"));
}

}  // namespace swallow
