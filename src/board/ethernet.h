// Ethernet bridge module (§V.E).
//
// The bridge attaches to the Swallow network *as a node*: it owns a switch
// with its own node id and a single endpoint, and is cabled to a South
// edge port of a slice.  Through it the host can stream data in and out of
// the machine and load programs (see board/boot.h).  Full-duplex transfers
// are paced to the module's 80 Mbit/s capability.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "arch/comm.h"
#include "arch/resource.h"
#include "common/stateio.h"
#include "energy/ledger.h"
#include "noc/network.h"
#include "sim/event_desc.h"
#include "sim/simulator.h"

namespace swallow {

class EthernetBridge : public TokenReceiver {
 public:
  /// Creates the bridge's own switch inside `net` with `bridge_node` as its
  /// node id and an all-traffic-north router (the bridge hangs below the
  /// lattice).  Cable it to an edge switch with Network::connect using
  /// direction kDirNorth on the bridge side.
  EthernetBridge(Simulator& sim, EnergyLedger& ledger, Network& net,
                 NodeId bridge_node);

  Switch& bridge_switch() { return *switch_; }
  NodeId node_id() const { return node_; }
  /// The network address programs send host-bound data to.
  ResourceId chanend_id() const {
    return make_resource_id(node_, 0, ResourceType::kChanend);
  }

  // ----- Host side -----
  /// Callback invoked with each END-delimited packet arriving from the
  /// network.
  void set_host_receiver(std::function<void(std::vector<std::uint8_t>)> cb) {
    host_receiver_ = std::move(cb);
  }

  /// Queue a packet from the host into the network: a route header to
  /// `dest`, the payload bytes, and a closing END.  Refuses (via require)
  /// when a bounded ingress FIFO cannot take the whole packet — callers
  /// that can retry should use host_try_send instead.
  void host_send(ResourceId dest, const std::vector<std::uint8_t>& payload);

  /// Like host_send, but applies backpressure instead of failing: returns
  /// false — and counts the reject — when the bounded ingress FIFO cannot
  /// take the whole packet.  Always succeeds when the FIFO is unbounded.
  bool host_try_send(ResourceId dest, const std::vector<std::uint8_t>& payload);

  // ----- Ingress FIFO bound (backpressure instead of silent loss) -----
  /// Bound the host->network FIFO to `tokens` (0 = unbounded, the default).
  /// With a bound in place host_try_send rejects packets that don't fit and
  /// ingress-space subscribers are notified as the pump drains the FIFO.
  void set_ingress_capacity(std::size_t tokens) { ingress_capacity_ = tokens; }
  std::size_t ingress_capacity() const { return ingress_capacity_; }
  /// Tokens a packet with `payload_bytes` of payload occupies in the FIFO.
  static std::size_t packet_tokens(std::size_t payload_bytes) {
    return static_cast<std::size_t>(kHeaderTokens) + payload_bytes + 1;
  }
  /// True iff a packet with `payload_bytes` payload fits right now.
  bool ingress_can_accept(std::size_t payload_bytes) const {
    return ingress_capacity_ == 0 ||
           tx_queue_.size() + packet_tokens(payload_bytes) <= ingress_capacity_;
  }
  /// Invoked (from the bridge's event domain) whenever the pump frees FIFO
  /// space below the bound; rejected senders retry from here.
  void subscribe_ingress_space(std::function<void()> cb) {
    ingress_subs_.push_back(std::move(cb));
  }
  std::uint64_t ingress_rejects() const { return ingress_rejects_; }
  std::uint64_t ingress_peak_tokens() const { return ingress_peak_tokens_; }
  std::size_t ingress_queued_tokens() const { return tx_queue_.size(); }

  /// Total payload bytes moved in each direction.
  std::uint64_t bytes_to_host() const { return bytes_to_host_; }
  std::uint64_t bytes_from_host() const { return bytes_from_host_; }
  bool idle() const { return tx_queue_.empty(); }

  // ----- TokenReceiver (network -> bridge) -----
  bool can_receive() const override { return true; }
  std::size_t free_space() const override { return 1024; }
  void receive(const Token& t) override;
  void subscribe_drain(std::function<void()> cb) override {
    drain_subs_.push_back(std::move(cb));
  }

  // ----- Snapshot (src/snap/) -----
  /// Host-side transfer state only; the bridge's switch is saved separately.
  void save_state(StateWriter& w) const;
  void load_state(StateReader& r);
  /// Re-inject a pending pacing wake-up with its original queue keys.
  void restore_event(const LiveEvent& ev);

 private:
  void pump();

  Simulator& sim_;
  EnergyLedger& ledger_;
  NodeId node_;
  Switch* switch_ = nullptr;
  TokenOutPort* out_port_ = nullptr;

  std::deque<Token> tx_queue_;
  TimePs next_emit_ = 0;
  bool pump_scheduled_ = false;
  TimePs token_interval_;  // 80 Mbit/s pacing

  std::size_t ingress_capacity_ = 0;  // 0 = unbounded (legacy/boot path)
  std::uint64_t ingress_rejects_ = 0;
  std::uint64_t ingress_peak_tokens_ = 0;
  std::vector<std::function<void()>> ingress_subs_;

  std::vector<std::uint8_t> rx_buffer_;
  std::function<void(std::vector<std::uint8_t>)> host_receiver_;
  std::vector<std::function<void()>> drain_subs_;
  std::uint64_t bytes_to_host_ = 0;
  std::uint64_t bytes_from_host_ = 0;
};

}  // namespace swallow
