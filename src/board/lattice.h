// The unwoven lattice (§V.A, Fig. 7): node addressing and 2.5-dimensional
// dimension-order routing.
//
// Every XS1-L2 package holds two nodes.  One node's external links run
// North/South (the *vertical layer*), the other's run East/West (the
// *horizontal layer*); the two are joined by four on-chip links.  A 2D
// route must therefore weave between layers: vertical-first dimension
// order routing sends a packet to its column's vertical layer, travels to
// the destination row, transitions to the horizontal layer, and travels to
// the destination column — at most two mid-route layer transitions, plus
// the in-package hop to the destination node itself.
//
// Node ids encode the chip coordinate and layer:
//   [chip_y : 8][chip_x : 7][layer : 1]
// so a 16-bit id covers lattices up to 128 x 256 chips (65k cores).
#pragma once

#include <memory>
#include <vector>

#include "arch/resource.h"
#include "noc/routing.h"

namespace swallow {

enum class Layer : int {
  kVertical = 0,    // external links North/South
  kHorizontal = 1,  // external links East/West
};

constexpr NodeId lattice_node_id(int chip_x, int chip_y, Layer layer) {
  return static_cast<NodeId>((chip_y << 8) | (chip_x << 1) |
                             static_cast<int>(layer));
}

constexpr int node_chip_x(NodeId id) { return (id >> 1) & 0x7F; }
constexpr int node_chip_y(NodeId id) { return (id >> 8) & 0xFF; }
constexpr Layer node_layer(NodeId id) {
  return static_cast<Layer>(id & 1);
}

/// Reserved chip row for south-edge Ethernet bridge pseudo-chips.  Bridge
/// destinations route column-first (only columns with a bridge have a south
/// exit), then fall off the lattice's south edge.
inline constexpr int kBridgeRow = 255;

/// Routing priority: the paper's scheme resolves the vertical dimension
/// first; horizontal-first is provided as the ablation variant.
enum class RoutePriority { kVerticalFirst, kHorizontalFirst };

/// Dimension-order router for the unwoven lattice.  Stateless with respect
/// to the switch, so one instance can be shared by every switch in the
/// system.  Destinations outside the lattice id space (e.g. Ethernet
/// bridge pseudo-chips beyond the last row) route naturally: the bridge is
/// addressed as a chip one row beyond the edge, so vertical-first routing
/// carries packets to the edge and out of the south port.
class LatticeRouter : public Router {
 public:
  explicit LatticeRouter(RoutePriority priority = RoutePriority::kVerticalFirst)
      : priority_(priority) {}

  int route(NodeId self, NodeId dest) const override;

  RoutePriority priority() const { return priority_; }

 private:
  RoutePriority priority_;
};

/// Expand the lattice routing decision into an explicit per-switch table —
/// the software-programmed form the real platform uses (§V.A).  Behaviour
/// is identical to LatticeRouter for the listed destinations (tested).
std::shared_ptr<TableRouter> lattice_table_router(
    NodeId self, const std::vector<NodeId>& all_nodes,
    RoutePriority priority = RoutePriority::kVerticalFirst);

}  // namespace swallow
