#include "board/telemetry.h"

#include "common/error.h"

namespace swallow {

TelemetryStreamer::TelemetryStreamer(Simulator& sim, Slice& slice,
                                     EthernetBridge& bridge, TimePs period)
    : sim_(sim),
      slice_(slice),
      bridge_chanend_(bridge.chanend_id()),
      period_(period),
      last_count_(SliceSupplies::kRailCount, 0) {
  require(period_ > 0, "TelemetryStreamer: period must be positive");
  // Attach next to the slice's south-west corner switch, the natural exit
  // towards a south-edge bridge.
  Switch& sw = slice_.edge_bottom(0);
  port_ = sw.attach_endpoint(kTelemetryChanend, this);
  port_->subscribe_space([this] { pump(); });
}

void TelemetryStreamer::start() {
  require(!running_, "TelemetryStreamer: already running");
  running_ = true;
  sim_.after(period_, [this] { tick(); });
}

void TelemetryStreamer::tick() {
  if (!running_) return;
  // Collect one fresh record per channel that has converted since the
  // previous tick.
  std::vector<std::uint8_t> payload;
  PowerSampler& sampler = slice_.sampler();
  for (int ch = 0; ch < sampler.channels(); ++ch) {
    const std::uint64_t n = sampler.samples(ch);
    if (n == last_count_[static_cast<std::size_t>(ch)]) continue;
    last_count_[static_cast<std::size_t>(ch)] = n;
    const PowerSample& s = sampler.latest(ch);
    const std::uint32_t ticks =
        static_cast<std::uint32_t>(s.time / period_ps(kReferenceClockMhz));
    payload.push_back(static_cast<std::uint8_t>(ch));
    payload.push_back(static_cast<std::uint8_t>(ticks));
    payload.push_back(static_cast<std::uint8_t>(ticks >> 8));
    payload.push_back(static_cast<std::uint8_t>(ticks >> 16));
    payload.push_back(static_cast<std::uint8_t>(ticks >> 24));
    payload.push_back(static_cast<std::uint8_t>(s.code));
    payload.push_back(static_cast<std::uint8_t>(s.code >> 8));
    ++records_streamed_;
  }
  if (stream_faults_) {
    const auto faults = slice_.fault_counters().as_array();
    const std::uint32_t ticks = static_cast<std::uint32_t>(
        sim_.now() / period_ps(kReferenceClockMhz));
    for (int i = 0; i < FaultCounters::kFieldCount; ++i) {
      const std::uint64_t v = faults[static_cast<std::size_t>(i)];
      if (v == last_faults_[static_cast<std::size_t>(i)]) continue;
      last_faults_[static_cast<std::size_t>(i)] = v;
      const std::uint16_t code =
          v > 0xFFFF ? 0xFFFF : static_cast<std::uint16_t>(v);
      payload.push_back(static_cast<std::uint8_t>(kFaultChannelBase + i));
      payload.push_back(static_cast<std::uint8_t>(ticks));
      payload.push_back(static_cast<std::uint8_t>(ticks >> 8));
      payload.push_back(static_cast<std::uint8_t>(ticks >> 16));
      payload.push_back(static_cast<std::uint8_t>(ticks >> 24));
      payload.push_back(static_cast<std::uint8_t>(code));
      payload.push_back(static_cast<std::uint8_t>(code >> 8));
      ++records_streamed_;
    }
  }
  if (!payload.empty()) {
    const HeaderDest dest = chanend_dest(bridge_chanend_);
    for (int i = 0; i < kHeaderTokens; ++i) {
      tx_queue_.push_back(Token::data(header_byte(dest, i)));
    }
    for (std::uint8_t b : payload) tx_queue_.push_back(Token::data(b));
    tx_queue_.push_back(Token::control(ControlToken::kEnd));
    pump();
  }
  sim_.after(period_, [this] { tick(); });
}

void TelemetryStreamer::pump() {
  while (!tx_queue_.empty() && port_->can_accept()) {
    port_->push(tx_queue_.front());
    tx_queue_.pop_front();
  }
}

std::vector<TelemetryStreamer::Record> TelemetryStreamer::decode(
    const std::vector<std::uint8_t>& packet, const AnalogFrontEnd& fe) {
  std::vector<Record> out;
  for (std::size_t i = 0; i + 7 <= packet.size(); i += 7) {
    Record r;
    r.channel = packet[i];
    r.ticks = static_cast<std::uint32_t>(packet[i + 1]) |
              (static_cast<std::uint32_t>(packet[i + 2]) << 8) |
              (static_cast<std::uint32_t>(packet[i + 3]) << 16) |
              (static_cast<std::uint32_t>(packet[i + 4]) << 24);
    r.code = static_cast<std::uint16_t>(
        packet[i + 5] | (packet[i + 6] << 8));
    if (r.channel >= kFaultChannelBase) {
      r.watts = 0;  // fault counter, not a power sample
    } else {
      const Volts rail_v = r.channel == SliceSupplies::kIoRail ? 3.3 : 1.0;
      r.watts = fe.code_to_watts(r.code, rail_v);
    }
    out.push_back(r);
  }
  return out;
}

}  // namespace swallow
