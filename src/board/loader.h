// A resident first-stage loader written in Swallow assembly.
//
// The BootRom endpoint (board/boot.h) models the ROM handler natively; the
// resident loader is the fully authentic alternative: a small program that
// runs *on the core itself*, receives boot packets on its chanend 0, writes
// them to SRAM with ordinary store instructions and finally branches to the
// loaded image's entry point.  Loading a program this way costs real
// simulated instructions, network tokens and energy at every step.
//
// Wire protocol: identical to board/boot.h —
//   WRITE: [byte addr][byte count, word multiple][payload words]  + END
//   START: [0xFFFFFFFF][entry word index]                         + END
#pragma once

#include <string>

#include "arch/assembler.h"
#include "arch/core.h"

namespace swallow {

/// Word index the loader occupies (top of SRAM, clear of loaded images).
inline constexpr std::uint32_t kResidentLoaderBase = 15 * 1024;

/// Assembly of the resident loader.
std::string resident_loader_source();

/// Assemble the loader at its home address, load it into `core` and start
/// the core at the loader's entry.  The loader listens on chanend 0.
void install_resident_loader(Core& core);

}  // namespace swallow
