#include "board/boot.h"

#include "common/error.h"

namespace swallow {

void BootRom::receive(const Token& t) {
  if (t.is_end()) {
    apply();
    buffer_.clear();
    return;
  }
  if (!t.is_control) buffer_.push_back(t.value);
  for (const auto& cb : subs_) cb();
}

void BootRom::apply() {
  if (buffer_.size() < 8) return;  // malformed or empty command: ignored
  auto word_at = [&](std::size_t i) {
    return static_cast<std::uint32_t>(buffer_[i]) |
           (static_cast<std::uint32_t>(buffer_[i + 1]) << 8) |
           (static_cast<std::uint32_t>(buffer_[i + 2]) << 16) |
           (static_cast<std::uint32_t>(buffer_[i + 3]) << 24);
  };
  const std::uint32_t head = word_at(0);
  if (head == 0xFFFFFFFFu) {
    core_->start(word_at(4));
    started_ = true;
    return;
  }
  const std::uint32_t addr = head;
  const std::uint32_t count = word_at(4);
  if (buffer_.size() < 8 + count) return;  // truncated: ignored
  core_->poke(addr, std::span<const std::uint8_t>(buffer_.data() + 8, count));
  bytes_written_ += count;
}

namespace {
void append_word(std::vector<std::uint8_t>& out, std::uint32_t w) {
  out.push_back(static_cast<std::uint8_t>(w));
  out.push_back(static_cast<std::uint8_t>(w >> 8));
  out.push_back(static_cast<std::uint8_t>(w >> 16));
  out.push_back(static_cast<std::uint8_t>(w >> 24));
}
}  // namespace

std::vector<std::uint8_t> boot_write_command(
    std::uint32_t byte_addr, const std::vector<std::uint8_t>& data) {
  std::vector<std::uint8_t> out;
  append_word(out, byte_addr);
  append_word(out, static_cast<std::uint32_t>(data.size()));
  out.insert(out.end(), data.begin(), data.end());
  return out;
}

std::vector<std::uint8_t> boot_start_command(std::uint32_t entry_word) {
  std::vector<std::uint8_t> out;
  append_word(out, 0xFFFFFFFFu);
  append_word(out, entry_word);
  return out;
}

std::vector<std::vector<std::uint8_t>> boot_packets_for_image(
    const Image& image, std::size_t chunk) {
  require(chunk > 0 && chunk % 4 == 0, "boot chunk must be a word multiple");
  std::vector<std::uint8_t> bytes;
  bytes.reserve(image.size_bytes());
  for (std::uint32_t w : image.words) append_word(bytes, w);

  std::vector<std::vector<std::uint8_t>> packets;
  for (std::size_t off = 0; off < bytes.size(); off += chunk) {
    const std::size_t n = std::min(chunk, bytes.size() - off);
    packets.push_back(boot_write_command(
        static_cast<std::uint32_t>(off),
        std::vector<std::uint8_t>(bytes.begin() + static_cast<long>(off),
                                  bytes.begin() + static_cast<long>(off + n))));
  }
  packets.push_back(boot_start_command(image.entry));
  return packets;
}

}  // namespace swallow
