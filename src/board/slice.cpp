#include "board/slice.h"

#include <cmath>

#include "common/error.h"

namespace swallow {

namespace {
// Switch/network-interface static power per node: the non-activity half of
// Fig. 2's 58 mW network-interface share (the dynamic half accrues as
// per-token energy inside the switch model).
constexpr double kNiStaticMwPerNode = 29.0;
// Board support logic (Fig. 2 "other" 10 mW x 16 nodes) plus the slice-level
// remainder between 16 x 260 mW and the ~4.5 W/slice the paper quotes.
constexpr double kSupportMw = 10.0 * Slice::kCores + 340.0;
}  // namespace

Slice::Slice(Simulator& sim, EnergyLedger& ledger, Network& net,
             const RouterFactory& router_for, Config cfg)
    : sim_(sim), cfg_(cfg) {
  // ---- Build the sixteen nodes.
  for (int chip = 0; chip < kChips; ++chip) {
    const int gx = chip_x0() + chip % kChipCols;
    const int gy = chip_y0() + chip / kChipCols;
    for (Layer layer : {Layer::kVertical, Layer::kHorizontal}) {
      NodeSlot& slot = node(chip, layer);
      const NodeId id = lattice_node_id(gx, gy, layer);
      // The node's event domain and ledger partition: the slice-wide
      // defaults, or a finer binding supplied by the system
      // (SystemConfig::granularity).
      NodeBinding b{&sim, &ledger};
      if (cfg_.node_binding) b = cfg_.node_binding(chip, layer);
      Simulator& nsim = *b.sim;
      EnergyLedger& nledger = *b.ledger;
      Core::Config core_cfg;
      core_cfg.node_id = id;
      core_cfg.frequency_mhz = cfg_.core_freq;
      core_cfg.power_model = cfg_.power_model;
      core_cfg.auto_dvfs = cfg_.auto_dvfs;
      core_cfg.max_batch = cfg_.core_batch;
      slot.core = std::make_unique<Core>(nsim, nledger, core_cfg);
      // Place the switch in the node's event domain and ledger (identical
      // to the network defaults in sequential mode).
      slot.sw = &net.add_switch(id, router_for(id), 500.0, &nsim, &nledger);
      slot.sw->attach_core(*slot.core);
      slot.rom = std::make_unique<BootRom>(*slot.core);
      slot.sw->attach_endpoint(BootRom::kBootChanend, slot.rom.get());
      slot.ni_static = std::make_unique<PowerTrace>(
          nledger, EnergyAccount::kNetworkInterface);
      slot.ni_static->set_level(nsim.now(), milliwatts(kNiStaticMwPerNode));
    }
    // Four on-chip links join the chip's two nodes (§V.A, Fig. 6).
    net.connect(*node(chip, Layer::kVertical).sw, kDirInternal,
                *node(chip, Layer::kHorizontal).sw, kDirInternal,
                LinkClass::kOnChip, 4);
  }

  // ---- On-board lattice links (Fig. 7).
  for (int col = 0; col < kChipCols; ++col) {
    net.connect(*node(col, Layer::kVertical).sw, kDirSouth,
                *node(kChipCols + col, Layer::kVertical).sw, kDirNorth,
                LinkClass::kBoardVertical);
  }
  for (int row = 0; row < kChipRows; ++row) {
    for (int col = 0; col + 1 < kChipCols; ++col) {
      net.connect(*node(row * kChipCols + col, Layer::kHorizontal).sw,
                  kDirEast,
                  *node(row * kChipCols + col + 1, Layer::kHorizontal).sw,
                  kDirWest, LinkClass::kBoardHorizontal);
    }
  }

  // ---- Power rails (§II): each 1 V rail feeds two chips = four cores.
  for (int chip = 0; chip < kChips; ++chip) {
    Rail& rail = supplies_.rail(chip / 2);
    for (Layer layer : {Layer::kVertical, Layer::kHorizontal}) {
      const NodeSlot& slot = node(chip, layer);
      rail.attach(slot.core->baseline_trace());
      rail.attach(slot.core->instr_trace());
    }
  }
  Rail& io = supplies_.rail(SliceSupplies::kIoRail);
  for (NodeSlot& slot : nodes_) io.attach(slot.ni_static.get());
  support_ = std::make_unique<PowerTrace>(ledger, EnergyAccount::kOther);
  support_->set_level(sim.now(), milliwatts(kSupportMw));
  io.attach(support_.get());
  io.attach([this] {
    Watts p = 0;
    for (const NodeSlot& slot : nodes_) {
      p += slot.sw->instantaneous_link_power(sim_.now());
    }
    return p;
  });

  // ---- Measurement daughter-board.
  std::vector<const Rail*> rails;
  for (int i = 0; i < SliceSupplies::kRailCount; ++i) {
    rails.push_back(&supplies_.rail(i));
  }
  sampler_ = std::make_unique<PowerSampler>(sim, std::move(rails),
                                            AnalogFrontEnd{}, cfg_.sampler_seed);

  // GETPWR: a core reads the latest converted sample of any of the five
  // supply channels of its own slice, in milliwatts (§II: measurement data
  // collected on the slice itself).
  for (NodeSlot& slot : nodes_) {
    PowerSampler* sampler = sampler_.get();
    slot.core->set_power_read_hook([sampler](int channel) -> std::uint32_t {
      if (channel < 0 || channel >= sampler->channels()) return 0;
      const double mw = to_milliwatts(sampler->latest(channel).watts);
      return static_cast<std::uint32_t>(std::lround(std::max(0.0, mw)));
    });
  }
}

Slice::~Slice() = default;

void Slice::settle_energy(TimePs now) {
  for (NodeSlot& slot : nodes_) {
    slot.core->settle_energy(now);
    slot.ni_static->settle(now);
  }
  support_->settle(now);
}

void Slice::save_state(StateWriter& w) const {
  for (const NodeSlot& slot : nodes_) {
    slot.core->save_state(w);
    slot.sw->save_state(w);
    slot.rom->save_state(w);
    slot.ni_static->save_state(w);
  }
  support_->save_state(w);
  sampler_->save_state(w);
}

void Slice::load_state(StateReader& r) {
  for (NodeSlot& slot : nodes_) {
    slot.core->load_state(r);
    slot.sw->load_state(r);
    slot.rom->load_state(r);
    slot.ni_static->load_state(r);
  }
  support_->load_state(r);
  sampler_->load_state(r);
}

Watts Slice::cores_power() const {
  Watts p = 0;
  for (const NodeSlot& slot : nodes_) p += slot.core->current_power();
  return p;
}

}  // namespace swallow
