// Deterministic fault injection (the failures the real machine suffered:
// flaky FFC cables, stuck switches, locked-up cores).
//
// A FaultPlan is a seeded schedule of FaultSpecs.  Arming a FaultInjector
// installs the per-token link fault hook on every switch and schedules each
// spec's activation at its TimePs, on the event domain that owns the
// faulted node; stochastic draws (which tokens a flaky link corrupts, which
// bit flips) come from a per-rule xoshiro256** stream seeded from the plan
// and the rule index, so a given plan reproduces the same fault sequence
// bit-for-bit on every run — under either engine and any worker count (a
// rule names one node, so its stream is only ever advanced from that
// node's domain, in that domain's deterministic event order).  An empty
// plan leaves the simulation bit-identical to a run without an injector.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "board/system.h"
#include "common/rng.h"
#include "common/stateio.h"
#include "common/units.h"
#include "noc/switch.h"
#include "sim/event_desc.h"

namespace swallow {

enum class FaultKind {
  kLinkCorruption,  // per-token bit-flip probability on matching tx links
  kLinkOutage,      // tokens lost on the wire for `duration` (then repaired)
  kLinkKill,        // permanent: the link (both directions) is dead
  kSwitchStall,     // switch input processing frozen for `duration`
  kCoreFreeze,      // core stops issuing for `duration` (0 = forever)
};

/// One scheduled fault.  `node` selects the switch or core; `direction`
/// selects the link group for link faults (-1 = every direction).
struct FaultSpec {
  FaultKind kind = FaultKind::kLinkCorruption;
  TimePs at = 0;         // activation time
  TimePs duration = 0;   // 0 = permanent (corruption/outage/freeze)
  NodeId node = 0;
  int direction = -1;
  double rate = 0.0;     // kLinkCorruption: per-token probability
};

/// A seeded, replayable schedule of faults.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultSpec> faults;

  bool empty() const { return faults.empty(); }

  // Builder helpers (chainable).
  FaultPlan& corrupt_link(NodeId node, int direction, double rate,
                          TimePs at = 0, TimePs duration = 0) {
    faults.push_back({FaultKind::kLinkCorruption, at, duration, node,
                      direction, rate});
    return *this;
  }
  FaultPlan& link_outage(NodeId node, int direction, TimePs at,
                         TimePs duration) {
    faults.push_back({FaultKind::kLinkOutage, at, duration, node, direction,
                      0.0});
    return *this;
  }
  FaultPlan& kill_link(NodeId node, int direction, TimePs at) {
    faults.push_back({FaultKind::kLinkKill, at, 0, node, direction, 0.0});
    return *this;
  }
  FaultPlan& stall_switch(NodeId node, TimePs at, TimePs duration) {
    faults.push_back({FaultKind::kSwitchStall, at, duration, node, -1, 0.0});
    return *this;
  }
  FaultPlan& freeze_core(NodeId node, TimePs at, TimePs duration = 0) {
    faults.push_back({FaultKind::kCoreFreeze, at, duration, node, -1, 0.0});
    return *this;
  }
};

/// Applies a FaultPlan to a system.  Construct, then arm() once before
/// running.  Outlives the run (the installed hook points into it).
class FaultInjector {
 public:
  FaultInjector(SwallowSystem& sys, FaultPlan plan);

  /// Install hooks and schedule every FaultSpec.  Call once.
  void arm();

  const FaultPlan& plan() const { return plan_; }

  // ----- Snapshot (src/snap/) -----
  /// Restore-path arming: installs the corruption windows and the link
  /// fault hook but schedules *nothing* — pending activations, repairs and
  /// unfreezes come back through restore_event with their original queue
  /// keys.  Call instead of arm(), before load_state.
  void arm_for_restore();
  /// The mutable part only: each corruption rule's rng stream position.
  /// Windows and schedules are derived from the plan, which the config
  /// hash pins.
  void save_state(StateWriter& w) const;
  void load_state(StateReader& r);
  /// Re-inject one pending kFault* event (activation, link repair, core
  /// unfreeze, peer-side link kill).
  void restore_event(const LiveEvent& ev);

 private:
  // Corruption windows are immutable after arm(); only each rule's private
  // rng advances (and only from the owning node's domain).
  struct ActiveCorruption {
    NodeId node = 0;
    int direction = -1;
    double rate = 0.0;
    TimePs from = 0;   // inclusive start
    TimePs until = 0;  // inclusive expiry
    Rng rng;
  };

  LinkFaultAction on_token(NodeId node, int direction, Token& t, TimePs now);
  void install_windows();
  void activate(const FaultSpec& f);
  void apply_to_links(NodeId node, int direction,
                      const std::function<void(Switch&, int port)>& fn);

  SwallowSystem& sys_;
  FaultPlan plan_;
  std::vector<ActiveCorruption> corruptions_;
  bool armed_ = false;
};

}  // namespace swallow
