// System watchdog / progress monitor.
//
// The real machine's deadlocks could only be diagnosed by power signature;
// the simulator can do better.  The watchdog samples a global progress
// metric every `period`:
//
//   progress = instructions retired (all cores)
//            + tokens forwarded (all switches)
//            + fault-counter total (all switches)
//
// Retries and NAKs count as progress on purpose: a link fighting through a
// fault storm is *live*, not stalled, and must not trip the watchdog.  The
// simulator's own event count is deliberately excluded — ADC sampling and
// telemetry keep firing during a deadlock.
//
// When the metric is unchanged for `window_periods` consecutive samples the
// watchdog inspects SwallowSystem::diagnose_report():
//   * healthy (nothing blocked or routed) -> the machine has quiesced; the
//     watchdog stops sampling and records nothing;
//   * otherwise -> a StallReport naming the blocked cores/threads and held
//     routes is recorded, the on_stall callback fires, and sampling stops
//     so the surrounding run_until() terminates instead of hanging.
//
// The window must exceed the longest intentional pause in the workload
// (timer sleeps suppress the issue metric but are reported self-waking).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "board/system.h"
#include "common/units.h"

namespace swallow {

/// One detected global no-progress episode.
struct StallReport {
  TimePs detected_at = 0;   // when the watchdog declared the stall
  TimePs window = 0;        // how long progress had been flat
  std::uint64_t progress = 0;  // the metric value it froze at
  SystemDiagnosis diagnosis;   // who is blocked, on what, and where
};

class Watchdog {
 public:
  struct Config {
    TimePs period = microseconds(5.0);  // sampling period
    int window_periods = 4;             // flat samples before declaring
  };

  explicit Watchdog(SwallowSystem& sys);
  Watchdog(SwallowSystem& sys, Config cfg);

  /// Start sampling.  Call once, before (or while) the workload runs.
  /// Under the parallel engine the watchdog samples at quantum boundaries
  /// (the only points where cross-domain state is coherent), catching up on
  /// every period boundary the quantum stepped over.
  void arm();

  /// Stop sampling (idempotent; also happens on stall or quiesce).
  void disarm() { armed_ = false; }

  bool armed() const { return armed_; }
  /// True once the machine went flat in a healthy state (work complete).
  bool quiesced() const { return quiesced_; }
  /// Stalls detected so far (at most one per arm(); empty = no stall).
  const std::vector<StallReport>& reports() const { return reports_; }
  bool stalled() const { return !reports_.empty(); }

  /// Called synchronously when a stall is declared.
  void set_on_stall(std::function<void(const StallReport&)> cb) {
    on_stall_ = std::move(cb);
  }

  /// The watchdog's progress metric (exposed for tests).
  std::uint64_t progress_metric();

 private:
  void tick(TimePs now);

  SwallowSystem& sys_;
  Config cfg_;
  bool armed_ = false;
  bool quiesced_ = false;
  bool boundary_task_added_ = false;
  std::uint64_t last_metric_ = 0;
  int flat_samples_ = 0;
  TimePs next_due_ = 0;  // parallel engine: next sample time
  std::vector<StallReport> reports_;
  std::function<void(const StallReport&)> on_stall_;
};

}  // namespace swallow
