// Graceful degradation: route around dead links.
//
// When the reliable-link protocol (or the fault injector) declares a link
// permanently dead, the ResilienceManager recomputes every switch's
// software routing table (§V.A: "new routing algorithms can simply be
// programmed in software") over the surviving topology — BFS shortest
// paths with deterministic tie-breaks — reprograms the TableRouters, and
// re-resolves any packets parked on the dead direction.  The recompute has
// a modelled latency and control-plane energy cost, charged to the ledger
// and surfaced as a RerouteEvent, so degradation is visible in both time
// and energy.  Requires SystemConfig::use_table_routers.
#pragma once

#include <cstdint>
#include <vector>

#include "board/system.h"
#include "common/units.h"

namespace swallow {

/// One completed route-around of a dead link.
struct RerouteEvent {
  TimePs at = 0;          // when the new tables went live
  NodeId node = 0;        // switch that lost the link
  int direction = -1;     // direction of the dead link at `node`
  int routes_changed = 0; // table entries rewritten across the machine
  int rescued_inputs = 0; // parked packets that found a new path
};

class ResilienceManager {
 public:
  struct Config {
    /// Time from link-death detection to the new tables being live
    /// (software recompute + table writes over the control plane).
    TimePs reroute_latency = microseconds(50.0);
    /// Control-plane energy of one recompute (table traffic + core work).
    Joules reroute_energy = 1e-6;
  };

  explicit ResilienceManager(SwallowSystem& sys);
  ResilienceManager(SwallowSystem& sys, Config cfg);

  /// Install the link-dead callback on every switch.  Call once.
  void arm();

  const std::vector<RerouteEvent>& events() const { return events_; }

  /// Recompute every TableRouter over the live (non-dead) topology.
  /// Returns the number of table entries changed.  Normally invoked via
  /// the link-dead callback; exposed for tests.
  int recompute_routes();

 private:
  void on_link_dead(Switch& sw, int port, int direction);

  SwallowSystem& sys_;
  Config cfg_;
  std::vector<RerouteEvent> events_;
  bool armed_ = false;
  bool recompute_pending_ = false;
  // The deaths coalesced into the pending recompute (first one wins the
  // event attribution).
  NodeId pending_node_ = 0;
  int pending_direction_ = -1;
};

}  // namespace swallow
