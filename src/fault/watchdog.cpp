#include "fault/watchdog.h"

#include "common/error.h"

namespace swallow {

Watchdog::Watchdog(SwallowSystem& sys) : Watchdog(sys, Config()) {}

Watchdog::Watchdog(SwallowSystem& sys, Config cfg) : sys_(sys), cfg_(cfg) {
  require(cfg_.period > 0, "Watchdog: period must be positive");
  require(cfg_.window_periods >= 1, "Watchdog: window must be >= 1 period");
}

void Watchdog::arm() {
  require(!armed_, "Watchdog: already armed");
  armed_ = true;
  quiesced_ = false;
  flat_samples_ = 0;
  last_metric_ = progress_metric();
  if (sys_.parallel()) {
    // Sample at quantum boundaries, catching up on every period boundary
    // the quantum stepped over.  Boundary tasks cannot be removed, so the
    // task stays registered across re-arms and no-ops while disarmed.
    next_due_ = sys_.now() + cfg_.period;
    if (!boundary_task_added_) {
      boundary_task_added_ = true;
      sys_.engine()->add_boundary_task([this](TimePs now) {
        while (armed_ && now >= next_due_) {
          tick(next_due_);
          next_due_ += cfg_.period;
        }
      });
    }
  } else {
    sys_.sim().after(cfg_.period, [this] { tick(sys_.sim().now()); });
  }
}

std::uint64_t Watchdog::progress_metric() {
  std::uint64_t m = 0;
  for (int i = 0; i < sys_.core_count(); ++i) {
    m += sys_.core_by_index(i).instructions_retired();
  }
  m += sys_.network().total_tokens_forwarded();
  m += sys_.network().total_fault_counters().total();
  return m;
}

void Watchdog::tick(TimePs now) {
  if (!armed_) return;
  const std::uint64_t metric = progress_metric();
  if (metric != last_metric_) {
    last_metric_ = metric;
    flat_samples_ = 0;
  } else {
    ++flat_samples_;
    if (flat_samples_ >= cfg_.window_periods) {
      SystemDiagnosis d = sys_.diagnose_report();
      armed_ = false;  // either way, stop sampling so run_until terminates
      if (d.healthy()) {
        quiesced_ = true;
      } else {
        StallReport r;
        r.detected_at = now;
        r.window = static_cast<TimePs>(flat_samples_) * cfg_.period;
        r.progress = metric;
        r.diagnosis = std::move(d);
        reports_.push_back(std::move(r));
        if (on_stall_) on_stall_(reports_.back());
      }
      return;
    }
  }
  if (!sys_.parallel()) {
    sys_.sim().after(cfg_.period, [this] { tick(sys_.sim().now()); });
  }
}

}  // namespace swallow
