#include "fault/fault.h"

#include "common/error.h"

namespace swallow {

FaultInjector::FaultInjector(SwallowSystem& sys, FaultPlan plan)
    : sys_(sys), plan_(std::move(plan)) {}

void FaultInjector::install_windows() {
  // Corruption rules become immutable windows right now — no activation
  // event, no shared state mutated mid-run.  Each rule gets its own rng
  // stream, derived from the plan seed and the rule's position.
  corruptions_.clear();
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const FaultSpec& f = plan_.faults[i];
    if (f.kind != FaultKind::kLinkCorruption) continue;
    ActiveCorruption c;
    c.node = f.node;
    c.direction = f.direction;
    c.rate = f.rate;
    c.from = f.at;
    c.until = f.duration > 0 ? f.at + f.duration : kTimeNever;
    c.rng.reseed(plan_.seed ^ (0x9E3779B97F4A7C15ULL * (i + 1)));
    corruptions_.push_back(c);
  }
  if (!corruptions_.empty()) {
    sys_.network().set_link_fault_hook(
        [this](NodeId node, int direction, Token& t, TimePs now) {
          return on_token(node, direction, t, now);
        });
  }
}

void FaultInjector::arm() {
  require(!armed_, "FaultInjector: already armed");
  armed_ = true;
  install_windows();
  // Everything else activates at its scheduled time, on the event domain
  // that owns the faulted node (= the caller's Simulator when sequential).
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const FaultSpec& f = plan_.faults[i];
    if (f.kind == FaultKind::kLinkCorruption) continue;
    sys_.sim_for_node(f.node).at(
        f.at,
        EventDesc{EventKind::kFaultActivate, f.node,
                  static_cast<std::uint32_t>(i)},
        [this, f] { activate(f); });
    if (f.kind == FaultKind::kLinkKill) {
      // A cable failure takes out both directions of the full-duplex pair.
      // The reverse direction belongs to the peer switch — possibly a
      // different domain — so each peer kills its own half at f.at.
      // Topology is static, so the pairs can be enumerated at arm time.
      apply_to_links(f.node, f.direction, [&](Switch& sw, int port) {
        for (const Switch::LinkPortInfo& info : sw.link_ports()) {
          if (info.port != port) continue;
          Switch* peer = sys_.network().find_switch(info.peer);
          if (peer == nullptr) continue;
          const int peer_port = info.peer_port;
          sys_.sim_for_node(info.peer).at(
              f.at,
              EventDesc{EventKind::kFaultPeerKill, info.peer,
                        static_cast<std::uint32_t>(peer_port)},
              [peer, peer_port] { peer->kill_link(peer_port); });
        }
      });
    }
  }
}

void FaultInjector::arm_for_restore() {
  require(!armed_, "FaultInjector: already armed");
  armed_ = true;
  install_windows();
}

void FaultInjector::apply_to_links(
    NodeId node, int direction,
    const std::function<void(Switch&, int port)>& fn) {
  Switch* sw = sys_.network().find_switch(node);
  require(sw != nullptr, "FaultInjector: fault names an unknown switch");
  for (const Switch::LinkPortInfo& info : sw->link_ports()) {
    if (direction >= 0 && info.direction != direction) continue;
    fn(*sw, info.port);
  }
}

void FaultInjector::activate(const FaultSpec& f) {
  switch (f.kind) {
    case FaultKind::kLinkCorruption:
      break;  // handled entirely by the prefilled windows
    case FaultKind::kLinkOutage: {
      Switch* sw = sys_.network().find_switch(f.node);
      require(sw != nullptr, "FaultInjector: outage on an unknown switch");
      const int lo = f.direction >= 0 ? f.direction : 0;
      const int hi = f.direction >= 0 ? f.direction + 1 : kMaxDirections;
      for (int d = lo; d < hi; ++d) sw->set_links_up(d, false);
      if (f.duration > 0) {
        sw->sim().after(
            f.duration,
            EventDesc{EventKind::kFaultRepair, f.node,
                      static_cast<std::uint32_t>(lo) |
                          (static_cast<std::uint32_t>(hi) << 8)},
            [sw, lo, hi] {
              for (int d = lo; d < hi; ++d) sw->set_links_up(d, true);
            });
      }
      break;
    }
    case FaultKind::kLinkKill: {
      // The reverse halves were scheduled on their peers' domains at arm().
      apply_to_links(f.node, f.direction,
                     [](Switch& sw, int port) { sw.kill_link(port); });
      break;
    }
    case FaultKind::kSwitchStall: {
      require(f.duration > 0, "FaultInjector: switch stall needs a duration");
      Switch* sw = sys_.network().find_switch(f.node);
      require(sw != nullptr, "FaultInjector: stall on an unknown switch");
      sw->stall_inputs_until(f.at + f.duration);
      break;
    }
    case FaultKind::kCoreFreeze: {
      Core* core = sys_.find_core(f.node);
      require(core != nullptr, "FaultInjector: freeze on an unknown core");
      core->set_frozen(true);
      if (f.duration > 0) {
        sys_.sim_for_node(f.node).after(
            f.duration, EventDesc{EventKind::kFaultUnfreeze, f.node},
            [core] { core->set_frozen(false); });
      }
      break;
    }
  }
}

void FaultInjector::save_state(StateWriter& w) const {
  w.b(armed_);
  w.seq(corruptions_,
        [&](const ActiveCorruption& c) { c.rng.save_state(w); });
}

void FaultInjector::load_state(StateReader& r) {
  armed_ = r.b();
  r.seq_exactly(corruptions_.size(), "fault corruption rules",
                [&](std::size_t i) { corruptions_[i].rng.load_state(r); });
}

void FaultInjector::restore_event(const LiveEvent& ev) {
  switch (ev.desc.kind) {
    case EventKind::kFaultActivate: {
      const FaultSpec f = plan_.faults.at(ev.desc.a);
      sys_.sim_for_node(f.node).inject(ev.time, ev.stamp, ev.tie, ev.desc,
                                       [this, f] { activate(f); });
      return;
    }
    case EventKind::kFaultPeerKill: {
      Switch* peer = sys_.network().find_switch(ev.desc.node);
      invariant(peer != nullptr, "snapshot: peer-kill names an unknown switch");
      const int port = static_cast<int>(ev.desc.a);
      peer->sim().inject(ev.time, ev.stamp, ev.tie, ev.desc,
                         [peer, port] { peer->kill_link(port); });
      return;
    }
    case EventKind::kFaultRepair: {
      Switch* sw = sys_.network().find_switch(ev.desc.node);
      invariant(sw != nullptr, "snapshot: repair names an unknown switch");
      const int lo = static_cast<int>(ev.desc.a & 0xFF);
      const int hi = static_cast<int>((ev.desc.a >> 8) & 0xFF);
      sw->sim().inject(ev.time, ev.stamp, ev.tie, ev.desc, [sw, lo, hi] {
        for (int d = lo; d < hi; ++d) sw->set_links_up(d, true);
      });
      return;
    }
    case EventKind::kFaultUnfreeze: {
      Core* core = sys_.find_core(ev.desc.node);
      invariant(core != nullptr, "snapshot: unfreeze names an unknown core");
      sys_.sim_for_node(ev.desc.node)
          .inject(ev.time, ev.stamp, ev.tie, ev.desc,
                  [core] { core->set_frozen(false); });
      return;
    }
    default:
      invariant(false, "snapshot: event kind not owned by FaultInjector");
  }
}

LinkFaultAction FaultInjector::on_token(NodeId node, int direction, Token& t,
                                        TimePs now) {
  for (ActiveCorruption& c : corruptions_) {
    if (c.node != node) continue;
    if (c.direction >= 0 && c.direction != direction) continue;
    if (now < c.from || now > c.until) continue;
    // First matching rule decides, with a single draw from its own stream.
    if (c.rng.next_double() >= c.rate) return LinkFaultAction::kNone;
    // Flip one of the nine wire bits: eight data bits or the
    // control/data flag (a flipped flag is the nastiest corruption — it
    // turns data into a route-closing control token or vice versa).
    const int bit = static_cast<int>(c.rng.next_below(9));
    if (bit == 8) {
      t.is_control = !t.is_control;
    } else {
      t.value ^= static_cast<std::uint8_t>(1u << bit);
    }
    return LinkFaultAction::kCorrupt;
  }
  return LinkFaultAction::kNone;
}

}  // namespace swallow
