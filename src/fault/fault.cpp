#include "fault/fault.h"

#include "common/error.h"

namespace swallow {

FaultInjector::FaultInjector(SwallowSystem& sys, FaultPlan plan)
    : sys_(sys), plan_(std::move(plan)), rng_(plan_.seed) {}

void FaultInjector::arm() {
  require(!armed_, "FaultInjector: already armed");
  armed_ = true;
  rng_.reseed(plan_.seed);

  bool needs_hook = false;
  for (const FaultSpec& f : plan_.faults) {
    needs_hook |= f.kind == FaultKind::kLinkCorruption;
  }
  if (needs_hook) {
    sys_.network().set_link_fault_hook(
        [this](NodeId node, int direction, Token& t) {
          return on_token(node, direction, t);
        });
  }
  Simulator& sim = sys_.sim();
  for (const FaultSpec& f : plan_.faults) {
    sim.at(f.at, [this, f] { activate(f); });
  }
}

void FaultInjector::apply_to_links(
    NodeId node, int direction,
    const std::function<void(Switch&, int port)>& fn) {
  Switch* sw = sys_.network().find_switch(node);
  require(sw != nullptr, "FaultInjector: fault names an unknown switch");
  for (const Switch::LinkPortInfo& info : sw->link_ports()) {
    if (direction >= 0 && info.direction != direction) continue;
    fn(*sw, info.port);
  }
}

void FaultInjector::activate(const FaultSpec& f) {
  Simulator& sim = sys_.sim();
  switch (f.kind) {
    case FaultKind::kLinkCorruption: {
      ActiveCorruption c;
      c.node = f.node;
      c.direction = f.direction;
      c.rate = f.rate;
      c.until = f.duration > 0 ? f.at + f.duration : kTimeNever;
      corruptions_.push_back(c);
      break;
    }
    case FaultKind::kLinkOutage: {
      Switch* sw = sys_.network().find_switch(f.node);
      require(sw != nullptr, "FaultInjector: outage on an unknown switch");
      const int lo = f.direction >= 0 ? f.direction : 0;
      const int hi = f.direction >= 0 ? f.direction + 1 : kMaxDirections;
      for (int d = lo; d < hi; ++d) sw->set_links_up(d, false);
      if (f.duration > 0) {
        sim.after(f.duration, [sw, lo, hi] {
          for (int d = lo; d < hi; ++d) sw->set_links_up(d, true);
        });
      }
      break;
    }
    case FaultKind::kLinkKill: {
      // A cable failure takes out both directions of the full-duplex pair.
      std::vector<std::pair<Switch*, int>> reverse;
      apply_to_links(f.node, f.direction, [&](Switch& sw, int port) {
        for (const Switch::LinkPortInfo& info : sw.link_ports()) {
          if (info.port != port) continue;
          Switch* peer = sys_.network().find_switch(info.peer);
          if (peer != nullptr) reverse.emplace_back(peer, info.peer_port);
        }
        sw.kill_link(port);
      });
      for (auto& [peer, port] : reverse) peer->kill_link(port);
      break;
    }
    case FaultKind::kSwitchStall: {
      require(f.duration > 0, "FaultInjector: switch stall needs a duration");
      Switch* sw = sys_.network().find_switch(f.node);
      require(sw != nullptr, "FaultInjector: stall on an unknown switch");
      sw->stall_inputs_until(f.at + f.duration);
      break;
    }
    case FaultKind::kCoreFreeze: {
      Core* core = sys_.find_core(f.node);
      require(core != nullptr, "FaultInjector: freeze on an unknown core");
      core->set_frozen(true);
      if (f.duration > 0) {
        sim.after(f.duration, [core] { core->set_frozen(false); });
      }
      break;
    }
  }
}

LinkFaultAction FaultInjector::on_token(NodeId node, int direction,
                                        Token& t) {
  const TimePs now = sys_.sim().now();
  for (const ActiveCorruption& c : corruptions_) {
    if (c.node != node) continue;
    if (c.direction >= 0 && c.direction != direction) continue;
    if (now > c.until) continue;
    if (rng_.next_double() >= c.rate) return LinkFaultAction::kNone;
    // Flip one of the nine wire bits: eight data bits or the
    // control/data flag (a flipped flag is the nastiest corruption — it
    // turns data into a route-closing control token or vice versa).
    const int bit = static_cast<int>(rng_.next_below(9));
    if (bit == 8) {
      t.is_control = !t.is_control;
    } else {
      t.value ^= static_cast<std::uint8_t>(1u << bit);
    }
    return LinkFaultAction::kCorrupt;
  }
  return LinkFaultAction::kNone;
}

}  // namespace swallow
