#include "fault/reroute.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "common/error.h"

namespace swallow {

ResilienceManager::ResilienceManager(SwallowSystem& sys)
    : ResilienceManager(sys, Config()) {}

ResilienceManager::ResilienceManager(SwallowSystem& sys, Config cfg)
    : sys_(sys), cfg_(cfg) {}

void ResilienceManager::arm() {
  require(!armed_, "ResilienceManager: already armed");
  require(!sys_.parallel(),
          "ResilienceManager: needs the sequential engine (rerouting "
          "reprograms routing tables across every domain at once)");
  require(sys_.config().use_table_routers,
          "ResilienceManager: needs SystemConfig::use_table_routers (only "
          "software tables can be reprogrammed around a dead link)");
  armed_ = true;
  sys_.network().set_link_dead_callback(
      [this](Switch& sw, int port, int direction) {
        on_link_dead(sw, port, direction);
      });
}

void ResilienceManager::on_link_dead(Switch& sw, int port, int direction) {
  if (!recompute_pending_) {  // coalesce simultaneous deaths into one pass
    recompute_pending_ = true;
    pending_node_ = sw.node_id();
    pending_direction_ = direction;
    sys_.sim().after(cfg_.reroute_latency, [this] {
      recompute_pending_ = false;
      RerouteEvent ev;
      ev.at = sys_.sim().now();
      ev.node = pending_node_;
      ev.direction = pending_direction_;
      ev.routes_changed = recompute_routes();
      // Parked packets whose direction died can now re-resolve onto the
      // new tables.
      Network& net = sys_.network();
      for (std::size_t i = 0; i < net.switch_count(); ++i) {
        for (int d = 0; d < kMaxDirections; ++d) {
          ev.rescued_inputs += net.switch_at(i).reresolve_parked(d);
        }
      }
      sys_.system_ledger().add(EnergyAccount::kNetworkInterface,
                               cfg_.reroute_energy);
      events_.push_back(ev);
    });
  }
  // A dead transmit side means the physical link is gone: mark the reverse
  // direction dead too (kill_link on an already-dead port is a no-op, so
  // the mutual notification terminates).
  for (const Switch::LinkPortInfo& info : sw.link_ports()) {
    if (info.port != port) continue;
    Switch* peer = sys_.network().find_switch(info.peer);
    if (peer != nullptr) peer->kill_link(info.peer_port);
  }
}

int ResilienceManager::recompute_routes() {
  Network& net = sys_.network();
  const std::size_t n = net.switch_count();
  std::vector<Switch*> sws(n);
  std::unordered_map<NodeId, int> index;
  for (std::size_t i = 0; i < n; ++i) {
    sws[i] = &net.switch_at(i);
    index[sws[i]->node_id()] = static_cast<int>(i);
  }

  // Live adjacency, deduplicated per (direction, peer) and sorted for
  // deterministic tie-breaks.
  struct Edge {
    int dir;
    int to;
    bool operator<(const Edge& o) const {
      return dir != o.dir ? dir < o.dir : to < o.to;
    }
    bool operator==(const Edge& o) const {
      return dir == o.dir && to == o.to;
    }
  };
  std::vector<std::vector<Edge>> fwd(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const Switch::LinkPortInfo& info : sws[i]->link_ports()) {
      if (info.dead) continue;
      const auto it = index.find(info.peer);
      if (it == index.end()) continue;
      fwd[i].push_back(Edge{info.direction, it->second});
    }
    std::sort(fwd[i].begin(), fwd[i].end());
    fwd[i].erase(std::unique(fwd[i].begin(), fwd[i].end()), fwd[i].end());
  }
  // Reverse adjacency: rev[v] lists (direction at u towards v, u).
  std::vector<std::vector<Edge>> rev(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (const Edge& e : fwd[u]) {
      rev[static_cast<std::size_t>(e.to)].push_back(
          Edge{e.dir, static_cast<int>(u)});
    }
  }
  for (auto& edges : rev) std::sort(edges.begin(), edges.end());

  int changed = 0;
  std::vector<int> hop(n);
  std::vector<int> dist(n);
  for (std::size_t t = 0; t < n; ++t) {
    // BFS outwards from the destination over reversed edges; the edge that
    // first reaches a node is its first hop on a shortest path (ties
    // broken by BFS order, then by (direction, node) sort order).
    std::fill(hop.begin(), hop.end(), kDirUnroutable);
    std::fill(dist.begin(), dist.end(), -1);
    std::deque<int> q;
    dist[t] = 0;
    q.push_back(static_cast<int>(t));
    while (!q.empty()) {
      const int v = q.front();
      q.pop_front();
      for (const Edge& e : rev[static_cast<std::size_t>(v)]) {
        const auto u = static_cast<std::size_t>(e.to);
        if (dist[u] >= 0) continue;
        dist[u] = dist[static_cast<std::size_t>(v)] + 1;
        hop[u] = e.dir;
        q.push_back(e.to);
      }
    }
    const NodeId dest = sws[t]->node_id();
    for (std::size_t u = 0; u < n; ++u) {
      if (u == t) continue;
      auto* table = dynamic_cast<TableRouter*>(sws[u]->router());
      if (table == nullptr) continue;  // e.g. a bridge's built-in router
      const int old_dir = table->route(sws[u]->node_id(), dest);
      if (old_dir != hop[u]) {
        table->set_route(dest, hop[u]);
        ++changed;
      }
    }
  }
  return changed;
}

}  // namespace swallow
