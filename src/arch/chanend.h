// Channel end: the architectural endpoint of Swallow's channel
// communication (§IV.A "message passing between cores",
// §V.B packet/circuit operation).
//
// Write side: tokens are staged in a small output FIFO and drained into the
// switch's processor port.  The chanend emits the three-byte route header
// automatically whenever it starts a packet on a closed route, and closes
// the route when an END or PAUSE control token passes out.
//
// Read side: the switch delivers tokens into an input FIFO with
// credit-based backpressure (can_receive / subscribe_drain); IN/INT/CHKCT
// consume from it with XS1 blocking semantics.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <vector>

#include "arch/comm.h"
#include "arch/resource.h"
#include "common/stateio.h"
#include "noc/token.h"

namespace swallow {

class Chanend : public TokenReceiver {
 public:
  static constexpr std::size_t kOutFifoTokens = 8;
  static constexpr std::size_t kInFifoTokens = 8;

  // ----- Allocation -----
  void allocate(ResourceId id) {
    id_ = id;
    allocated_ = true;
  }
  void release();
  bool allocated() const { return allocated_; }
  ResourceId id() const { return id_; }

  // ----- Write side -----
  void set_dest(ResourceId dest) { dest_ = dest; }
  ResourceId dest() const { return dest_; }
  bool has_dest() const { return dest_ != 0; }
  bool route_open() const { return route_open_; }

  /// Connect to the switch's processor port.  The port's space
  /// notifications re-drive the output FIFO drain.
  void attach_out_port(TokenOutPort* port);

  /// Stage `tokens` for emission, prefixing a route header if the route is
  /// closed.  All-or-nothing: returns false (and stages nothing) when the
  /// output FIFO lacks space for the whole burst — the caller blocks and
  /// retries on the writable notification.
  bool try_emit(std::span<const Token> tokens);

  /// Tokens currently staged and not yet accepted by the switch.
  std::size_t out_pending() const { return out_fifo_.size(); }

  // ----- Read side (TokenReceiver: called by the switch) -----
  bool can_receive() const override { return in_fifo_.size() < kInFifoTokens; }
  std::size_t free_space() const override {
    return kInFifoTokens - in_fifo_.size();
  }
  void receive(const Token& t) override;
  void subscribe_drain(std::function<void()> cb) override {
    drain_subs_.push_back(std::move(cb));
  }

  // ----- Reader operations (called by the core) -----
  enum class ReadResult { kOk, kBlocked, kProtocolError };

  /// Consume four data tokens as a little-endian word.
  ReadResult read_word(std::uint32_t& out);

  /// Consume one data token.
  ReadResult read_token(std::uint8_t& out);

  /// Consume one control token of the expected value.
  ReadResult check_ct(std::uint8_t expected);

  std::size_t in_pending() const { return in_fifo_.size(); }

  /// One-shot wake callbacks armed by a blocking core thread.
  void arm_readable(std::function<void()> cb) { on_readable_ = std::move(cb); }
  void arm_writable(std::function<void()> cb) { on_writable_ = std::move(cb); }

  /// Snapshot: architectural state + both FIFOs.  Wiring (out port, drain
  /// subscriptions) and one-shot wake callbacks are re-established by the
  /// owning core on restore.
  void save_state(StateWriter& w) const {
    w.b(allocated_);
    w.u32(id_);
    w.u32(dest_);
    w.b(route_open_);
    w.seq(out_fifo_, [&](const Token& t) { save_token(w, t); });
    w.seq(in_fifo_, [&](const Token& t) { save_token(w, t); });
  }
  void load_state(StateReader& r) {
    allocated_ = r.b();
    id_ = r.u32();
    dest_ = r.u32();
    route_open_ = r.b();
    out_fifo_.clear();
    in_fifo_.clear();
    r.seq([&](std::uint32_t) { out_fifo_.push_back(load_token(r)); });
    r.seq([&](std::uint32_t) { in_fifo_.push_back(load_token(r)); });
  }

 private:
  void drain_out();
  void notify_drained();
  void fire_readable();

  bool allocated_ = false;
  ResourceId id_ = 0;
  ResourceId dest_ = 0;
  bool route_open_ = false;
  TokenOutPort* out_port_ = nullptr;
  std::deque<Token> out_fifo_;
  std::deque<Token> in_fifo_;
  std::vector<std::function<void()>> drain_subs_;
  std::function<void()> on_readable_;
  std::function<void()> on_writable_;
};

}  // namespace swallow
