// Static timing analysis (in the spirit of XMOS's XTA tool).
//
// The premise of the whole platform (§IV.A) is time-deterministic
// execution: instruction timing does not depend on caches or arbitration,
// so the execution time of communication-free code with statically
// resolvable control flow can be computed *exactly* — not estimated — from
// the program text.  analyze_timing() performs constant-propagating
// symbolic execution over an assembled image and returns the exact thread
// cycle count, which equals the cycle count observed in simulation
// (property-tested).  Code whose timing is not statically determined
// (data-dependent branches, channel communication, timer waits) is
// reported as such with the offending instruction.
#pragma once

#include <cstdint>
#include <string>

#include "arch/assembler.h"
#include "common/units.h"
#include "energy/params.h"

namespace swallow {

struct TimingResult {
  /// True when the path's timing is statically exact.
  bool exact = false;
  /// Instructions executed from entry to TEXIT (or the analysis limit).
  std::uint64_t instructions = 0;
  /// Thread cycles from the first issue to the final retire (a lone
  /// thread retires every 4 cycles; divides stall 32).
  std::uint64_t thread_cycles = 0;
  /// Why the analysis gave up, when !exact.
  std::string reason;

  /// Wall-clock duration at frequency f (single thread).
  TimePs duration(MegaHertz f_mhz) const {
    return static_cast<TimePs>(thread_cycles) * period_ps(f_mhz);
  }
};

/// Analyse from `entry_word` until TEXIT.  `max_instructions` bounds
/// loops that the analysis cannot prove terminate.
TimingResult analyze_timing(const Image& image, std::uint32_t entry_word = 0,
                            std::uint64_t max_instructions = 10'000'000);

}  // namespace swallow
