// XS1-style resources and resource identifiers.
//
// Resource ids follow the XS1 layout: [node:16][index:8][type:8].  Channel
// ends embed the owning node id, so a chanend id doubles as the routable
// network address carried in route headers.
#pragma once

#include <cstdint>

#include "noc/token.h"

namespace swallow {

enum class ResourceType : std::uint8_t {
  kTimer = 1,
  kChanend = 2,
  kSync = 3,
  kThread = 4,
  kLock = 5,
  kPort = 6,  // 1-bit GPIO with timestamped output (timed I/O)
};

using ResourceId = std::uint32_t;
using NodeId = std::uint16_t;

constexpr ResourceId make_resource_id(NodeId node, std::uint8_t index,
                                      ResourceType type) {
  return (static_cast<ResourceId>(node) << 16) |
         (static_cast<ResourceId>(index) << 8) |
         static_cast<ResourceId>(type);
}

constexpr NodeId resource_node(ResourceId id) {
  return static_cast<NodeId>(id >> 16);
}
constexpr std::uint8_t resource_index(ResourceId id) {
  return static_cast<std::uint8_t>((id >> 8) & 0xFF);
}
constexpr ResourceType resource_type(ResourceId id) {
  return static_cast<ResourceType>(id & 0xFF);
}

/// Network header destination for a chanend id.
constexpr HeaderDest chanend_dest(ResourceId chanend_id) {
  return HeaderDest{resource_node(chanend_id), resource_index(chanend_id)};
}

/// Chanend id reconstructed from a header.
constexpr ResourceId chanend_from_dest(HeaderDest d) {
  return make_resource_id(d.node, d.chanend, ResourceType::kChanend);
}

/// Hardware provisioning per core.
inline constexpr int kChanendsPerCore = 32;
inline constexpr int kTimersPerCore = 10;
inline constexpr int kSyncsPerCore = 7;
inline constexpr int kLocksPerCore = 4;
inline constexpr int kPortsPerCore = 8;

}  // namespace swallow
