#include "arch/chanend.h"

#include "common/error.h"

namespace swallow {

void Chanend::release() {
  allocated_ = false;
  id_ = 0;
  dest_ = 0;
  route_open_ = false;
  out_fifo_.clear();
  in_fifo_.clear();
  on_readable_ = nullptr;
  on_writable_ = nullptr;
}

void Chanend::attach_out_port(TokenOutPort* port) {
  out_port_ = port;
  if (out_port_ != nullptr) {
    out_port_->subscribe_space([this] { drain_out(); });
  }
}

bool Chanend::try_emit(std::span<const Token> tokens) {
  require(out_port_ != nullptr, "chanend has no switch attachment");
  require(has_dest(), "chanend destination not set");
  const std::size_t header = route_open_ ? 0 : kHeaderTokens;
  const std::size_t need = header + tokens.size();
  if (kOutFifoTokens - out_fifo_.size() < need) return false;
  if (!route_open_) {
    const HeaderDest dest = chanend_dest(dest_);
    for (int i = 0; i < kHeaderTokens; ++i) {
      out_fifo_.push_back(Token::data(header_byte(dest, i)));
    }
    route_open_ = true;
  }
  for (const Token& t : tokens) {
    out_fifo_.push_back(t);
    if (t.closes_route()) route_open_ = false;
  }
  drain_out();
  return true;
}

void Chanend::drain_out() {
  bool moved = false;
  while (!out_fifo_.empty() && out_port_ != nullptr && out_port_->can_accept()) {
    // Pop before pushing: push() may fire space notifications that re-enter
    // this drain loop, and the head token must not be emitted twice.
    const Token t = out_fifo_.front();
    out_fifo_.pop_front();
    out_port_->push(t);
    moved = true;
  }
  if (moved && on_writable_) {
    auto cb = std::move(on_writable_);
    on_writable_ = nullptr;
    cb();
  }
}

void Chanend::receive(const Token& t) {
  invariant(can_receive(), "chanend receive overflow");
  in_fifo_.push_back(t);
  fire_readable();
}

void Chanend::fire_readable() {
  if (on_readable_) {
    auto cb = std::move(on_readable_);
    on_readable_ = nullptr;
    cb();
  }
}

void Chanend::notify_drained() {
  for (const auto& cb : drain_subs_) cb();
}

Chanend::ReadResult Chanend::read_word(std::uint32_t& out) {
  if (in_fifo_.size() < 4) {
    // Control token ahead of a full word is a protocol error even before
    // all four bytes arrive.
    for (const Token& t : in_fifo_) {
      if (t.is_control) return ReadResult::kProtocolError;
    }
    return ReadResult::kBlocked;
  }
  for (int i = 0; i < 4; ++i) {
    if (in_fifo_[static_cast<std::size_t>(i)].is_control) {
      return ReadResult::kProtocolError;
    }
  }
  std::uint32_t word = 0;
  for (int i = 0; i < 4; ++i) {
    word |= static_cast<std::uint32_t>(in_fifo_.front().value)
            << (8 * i);  // little-endian byte order
    in_fifo_.pop_front();
  }
  out = word;
  notify_drained();
  return ReadResult::kOk;
}

Chanend::ReadResult Chanend::read_token(std::uint8_t& out) {
  if (in_fifo_.empty()) return ReadResult::kBlocked;
  if (in_fifo_.front().is_control) return ReadResult::kProtocolError;
  out = in_fifo_.front().value;
  in_fifo_.pop_front();
  notify_drained();
  return ReadResult::kOk;
}

Chanend::ReadResult Chanend::check_ct(std::uint8_t expected) {
  if (in_fifo_.empty()) return ReadResult::kBlocked;
  const Token& head = in_fifo_.front();
  if (!head.is_control || head.value != expected) {
    return ReadResult::kProtocolError;
  }
  in_fifo_.pop_front();
  notify_drained();
  return ReadResult::kOk;
}

}  // namespace swallow
