// The Swallow processor core: an interpreter for the ISA of arch/isa.h with
// the XS1-L execution model the paper's platform relies on (§IV):
//
//   * four-stage pipeline with overhead-free hardware thread switching —
//     a thread issues at most once every four core cycles, the core issues
//     at most one instruction per cycle, so throughput follows Eq. (2):
//       IPSt = f / max(4, Nt),   IPSc = f * min(4, Nt) / 4;
//   * 64 KiB of single-cycle unified SRAM (no cache: time-deterministic);
//   * channel ends, timers, synchronisers and locks as architectural
//     resources;
//   * blocking channel I/O — a blocked thread is descheduled and burns no
//     issue slots (and, in the energy model, no issue energy);
//   * run-time frequency scaling (SETFREQ) and on-slice power readings
//     (GETPWR) for the paper's energy-transparency experiments.
//
// Energy accounting: a continuous baseline PowerTrace carries the Fig. 3
// idle line; a second trace carries issue-dynamic power proportional to the
// runnable-thread fraction, with per-instruction pulses for the deviation
// of each instruction class from the average mix.  A fully loaded core
// therefore sits exactly on the Eq. (1) line.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arch/assembler.h"
#include "arch/chanend.h"
#include "arch/isa.h"
#include "arch/resource.h"
#include "arch/tracing.h"
#include "arch/trap.h"
#include "common/stateio.h"
#include "common/units.h"
#include "energy/core_power.h"
#include "energy/ledger.h"
#include "energy/params.h"
#include "sim/clock.h"
#include "sim/event_desc.h"
#include "sim/simulator.h"

namespace swallow {

class AttrShard;
class Track;

class Core {
 public:
  struct Config {
    NodeId node_id = 0;
    MegaHertz frequency_mhz = kMaxCoreFrequencyMhz;
    Volts voltage = 1.0;
    /// Full DVFS (§III.B: "newer xCORE devices do support full DVFS"):
    /// every frequency change also drops the supply to the minimum
    /// reliable voltage for that frequency (Fig. 4's lower curve).
    bool auto_dvfs = false;
    CorePowerModel power_model{};
    /// Optional Kerrison-style ([4]) refinement: issue energy depends on
    /// inter-instruction class switching and operand Hamming weight.
    DetailedEnergyConfig detailed_energy{};
    std::size_t sram_bytes = kSramBytesPerCore;
    /// Upper bound on instructions one kCoreIssue event may execute
    /// inline before re-arming through the event queue.  Batching is
    /// conservative — a batch never runs past the earliest pending event
    /// or the pump's horizon — so any value yields bit-identical results;
    /// 1 reproduces the historical one-event-per-instruction stepping
    /// (the benchmarks' baseline).
    int max_batch = 256;
  };

  Core(Simulator& sim, EnergyLedger& ledger, Config cfg);

  // ----- Program control -----
  /// Copy an image into SRAM starting at byte 0.
  void load(const Image& image);

  /// Write raw bytes into SRAM (used by the network boot loader).
  void poke(std::uint32_t byte_addr, std::span<const std::uint8_t> bytes);

  /// Start hardware thread 0 at `entry` (word index) with sp at top of RAM.
  void start(std::uint32_t entry = 0);

  /// True when a trap has halted the core.
  bool trapped() const { return static_cast<bool>(trap_); }
  const Trap& trap() const { return trap_; }

  /// True when every thread has exited cleanly.
  bool finished() const;

  /// True when no thread can issue right now (finished, deadlocked or all
  /// blocked waiting on external events).
  bool idle() const { return runnable_threads() == 0; }

  // ----- Identity / wiring -----
  NodeId node_id() const { return cfg_.node_id; }
  Chanend& chanend(int index) {
    return chanends_.at(static_cast<std::size_t>(index));
  }
  /// Locate a local chanend by full resource id; nullptr if not allocated.
  Chanend* find_chanend(ResourceId id);

  /// Hook for GETPWR: returns milliwatts for a supply channel.
  void set_power_read_hook(std::function<std::uint32_t(int)> hook) {
    power_read_hook_ = std::move(hook);
  }

  /// Install an instruction trace sink called at every retire (xsim-style;
  /// blocked attempts are not traced).  Pass nullptr to disable.
  void set_trace_sink(InstrTraceSink sink) { trace_sink_ = std::move(sink); }

  /// Attach the structured observability track (obs/trace.h): thread
  /// run/wait spans, DVFS counter tracks and freeze instants are emitted
  /// onto it.  Emits the initial frequency/voltage counter samples.
  /// nullptr detaches.  The disabled-path cost is one pointer test.
  void set_obs_track(Track* track);

  /// Close any open thread spans at the current time (end of a trace
  /// session; keeps B/E spans balanced in the exported trace).
  void obs_close_spans();

  /// Attach the energy attribution shard of this core's ledger partition
  /// (obs/energy_attr.h): instruction retires and power-trace settles are
  /// labelled with (thread, pc) / baseline context so the session can fold
  /// energy flamegraphs.  nullptr detaches; disabled cost is one pointer
  /// test per retire.
  void set_energy_attr(AttrShard* attr) { attr_ = attr; }
  AttrShard* energy_attr() const { return attr_; }

  /// Observability track attached via set_obs_track (nullptr when none);
  /// the board layer emits windowed power counters onto it.
  Track* obs_track() const { return obs_; }

  /// One live hardware thread as seen by the sampling profiler.
  struct ThreadSample {
    int tid = 0;
    std::uint32_t pc = 0;  // word index
    bool running = false;  // ready to issue vs blocked on a resource
  };
  /// Snapshot of every ready or blocked thread, in thread-id order.
  std::vector<ThreadSample> thread_snapshot() const;

  /// (word address, label) pairs of the loaded image, sorted by address —
  /// the profiler's symbolization table.
  const std::vector<std::pair<std::uint32_t, std::string>>& symbols() const {
    return symbols_;
  }

  // ----- Introspection -----
  const std::string& console() const { return console_; }
  std::uint64_t instructions_retired() const { return retired_total_; }
  std::uint64_t instructions_by_class(InstrClass c) const {
    return retired_by_class_[static_cast<std::size_t>(c)];
  }
  std::uint64_t thread_instructions(int tid) const {
    return threads_.at(static_cast<std::size_t>(tid)).retired;
  }
  int runnable_threads() const;
  int live_threads() const;  // runnable + blocked + allocated

  /// What a blocked thread is waiting for (machine-readable stall
  /// diagnostics; classified at the instruction that blocked).
  enum class WaitKind : std::uint8_t {
    kNone,     // not blocked / unclassified
    kChanOut,  // channel output: no credit or route progress downstream
    kChanIn,   // channel input: no token has arrived
    kLock,     // hardware lock held by another thread
    kSync,     // thread barrier (MSYNC/SSYNC/TJOIN)
    kTimer,    // timed wait; self-waking, never a deadlock
  };

  /// One blocked hardware thread, with what it is waiting on.
  struct BlockedThread {
    int tid = -1;
    std::uint32_t pc = 0;             // word index of the blocked instruction
    WaitKind kind = WaitKind::kNone;
    std::uint32_t resource = 0;       // resource id operand, when meaningful
    bool self_waking = false;         // a timer will wake it; not a stall
  };

  /// (thread id, pc) of every blocked thread — deadlock diagnostics.
  std::vector<std::pair<int, std::uint32_t>> blocked_threads() const;

  /// Full wait classification of every blocked thread (the watchdog's
  /// view; blocked_threads() is the legacy pair form).
  std::vector<BlockedThread> blocked_thread_info() const;

  /// Injected core lockup: a frozen core stops issuing instructions (wakes
  /// still record, so unfreezing resumes exactly where it stopped).  The
  /// baseline power trace keeps burning — a locked-up core still draws its
  /// idle power, which is how the real machine's faults were spotted.
  void set_frozen(bool frozen);
  bool frozen() const { return frozen_; }
  MegaHertz frequency() const { return clock_.frequency(); }
  Volts voltage() const { return voltage_; }
  const Clock& clock() const { return clock_; }

  /// Host-side frequency change (the SETFREQ instruction uses the same
  /// path).  With auto_dvfs the supply voltage follows Vmin(f).
  void set_frequency(MegaHertz f_mhz);

  /// Read a 32-bit word from SRAM (test/inspection backdoor).
  std::uint32_t peek_word(std::uint32_t byte_addr) const;

  /// Architectural register file of one hardware thread (inspection
  /// backdoor; the differential checker compares this against the golden
  /// reference interpreter).  Registers persist after TEXIT.
  const std::array<std::uint32_t, kNumRegisters>& thread_regs(int tid) const {
    return threads_.at(static_cast<std::size_t>(tid)).regs;
  }

  std::size_t sram_bytes() const { return sram_.size(); }

  // ----- GPIO ports (timed 1-bit I/O) -----
  /// Recorded output transitions of a port: (time, level) per change,
  /// including the initial level at allocation.
  struct PortEdge {
    TimePs time;
    int level;
  };
  const std::vector<PortEdge>& port_waveform(int index) const {
    return ports_.at(static_cast<std::size_t>(index)).waveform;
  }
  /// Drive a port's input pin from the host/testbench.
  void set_port_input(int index, bool level) {
    ports_.at(static_cast<std::size_t>(index)).input_level = level;
  }
  int port_output_level(int index) const {
    return ports_.at(static_cast<std::size_t>(index)).out_level;
  }

  // ----- Energy -----
  /// Bring both power traces up to date (call before reading the ledger).
  /// Out of line: settles run under the attribution cursor when a shard is
  /// attached.
  void settle_energy(TimePs now);
  /// Traces to attach to a supply rail.
  const PowerTrace* baseline_trace() const { return &baseline_trace_; }
  const PowerTrace* instr_trace() const { return &instr_trace_; }
  Watts current_power() const {
    return baseline_trace_.level() + instr_trace_.level();
  }
  /// Energy this core alone has consumed (settle_energy first).
  Joules energy_consumed() const {
    return baseline_trace_.total() + instr_trace_.total();
  }

  // ----- Snapshot (src/snap/) -----
  /// Serialize the complete architectural + accounting state.  Wiring
  /// (simulator, hooks, observability sinks) is not written; pending events
  /// are captured separately via the simulator's event-descriptor walk.
  void save_state(StateWriter& w) const;
  /// Restore state saved by save_state() into a freshly built core with an
  /// identical Config.  Clears any scheduled-issue bookkeeping; pending
  /// events come back through restore_event().
  void load_state(StateReader& r);
  /// Re-inject one of this core's pending events (kCoreIssue /
  /// kCoreTimerWake) with its original queue keys.
  void restore_event(const LiveEvent& ev);
  /// Re-arm the one-shot chanend wake callbacks for every thread blocked on
  /// channel I/O, by decoding the blocked instruction at its pc.  Call
  /// after load_state() once chanends are restored.
  void rearm_blocked_waits();

 private:
  enum class ThreadState : std::uint8_t {
    kUnused,     // free slot
    kAllocated,  // created by GETST, not yet started by MSYNC
    kReady,      // runnable
    kBlocked,    // descheduled, waiting on a resource event
    kExited,     // ran TEXIT; a slave awaits TJOIN reclamation
  };

  struct ThreadCtx {
    ThreadState state = ThreadState::kUnused;
    std::array<std::uint32_t, kNumRegisters> regs{};
    std::uint32_t pc = 0;       // word index
    TimePs ready_at = 0;        // pipeline constraint on next issue
    int sync = -1;              // owning sync resource for slaves
    bool ssync_waiting = false;
    bool sync_release_pending = false;
    std::uint64_t retired = 0;
    WaitKind wait_kind = WaitKind::kNone;  // valid while state == kBlocked
    std::uint32_t wait_resource = 0;
  };

  struct SyncRes {
    bool allocated = false;
    int master = -1;
    std::vector<int> slaves;
    bool master_msync_waiting = false;
    bool master_join_waiting = false;
  };

  struct LockRes {
    bool allocated = false;
    bool held = false;
    std::deque<int> waiters;
  };

  struct TimerRes {
    bool allocated = false;
  };

  struct PortRes {
    bool allocated = false;
    int out_level = 0;
    bool input_level = false;
    std::vector<PortEdge> waveform;
  };

  enum class Exec { kNext, kBranched, kBlocked, kExited };

  /// Outcome of one issue attempt inside a batch.
  enum class IssueResult : std::uint8_t {
    kRetired,       // instruction retired; batch may continue
    kBlocked,       // thread descheduled; other threads may still issue
    kHalted,        // trap: core stopped, batch must end
    kClockChanged,  // retired a SETFREQ: clock-domain boundary, end batch
  };

  // Scheduler.
  void schedule_issue();
  void do_issue();
  IssueResult issue_one(int tid, TimePs now);
  /// Batched tight loop over kPredecodeFast instructions (see do_issue).
  /// Returns the updated issued count; `now` tracks the last issue time.
  int issue_fast_run(int tid, TimePs& now, int issued, int max_batch);
  /// Same tight loop for cores with several ready threads: round-robin
  /// interleave replicated per issue, timing committed per instruction.
  int issue_fast_run_multi(TimePs& now, int issued, int max_batch);
  /// Aligned time of the next possible issue, kTimeNever when no thread is
  /// ready.
  TimePs next_issue_time() const;
  int pick_thread(TimePs now);
  void set_thread_state(int tid, ThreadState s);
  void wake(int tid);
  void block(int tid);
  void classify_wait(int tid, const Instruction& ins);
  void halt_with_trap(TrapKind kind, int tid, const std::string& msg);

  // Execution.
  Exec execute(int tid, const Instruction& ins);
  Exec exec_comm(int tid, const Instruction& ins);
  Exec exec_thread_ops(int tid, const Instruction& ins);
  Exec exec_memory(int tid, const Instruction& ins);

  // Sync helpers.
  bool barrier_ready(const SyncRes& s) const;
  void release_barrier(SyncRes& s);
  void on_slave_exited(int tid);

  // Memory helpers (return false after setting a trap).
  bool mem_check(std::uint32_t addr, std::uint32_t size, std::uint32_t align,
                 int tid);
  std::uint32_t load_word(std::uint32_t addr) const;
  void store_word(std::uint32_t addr, std::uint32_t value);
  void store_byte(std::uint32_t addr, std::uint8_t value);

  // Predecode cache: one decoded slot per SRAM word, filled lazily and
  // invalidated whenever the word is written (stores, pokes, snapshot
  // restore).  Traps are detected from the cached flags so messages and
  // ordering match the uncached decode path byte-for-byte.
  const Predecoded& fetch_predecoded(std::uint32_t pc_word);
  void invalidate_predecode(std::uint32_t byte_addr, std::size_t size);
  void invalidate_predecode_all();

  // Resource helpers.
  Chanend* chanend_for_op(int tid, std::uint32_t res_id);
  std::uint32_t ref_ticks() const;

  // Energy.
  void update_power_levels();

  // Observability emission helpers (no-ops when obs_ is null).
  void obs_begin_run(int tid);
  void obs_begin_wait(int tid);
  void obs_close_span(int tid);
  void obs_dvfs_counters();

  Simulator& sim_;
  Config cfg_;
  Clock clock_;
  Volts voltage_ = 1.0;
  std::vector<std::uint8_t> sram_;
  std::array<ThreadCtx, kMaxHardwareThreads> threads_{};
  std::vector<Chanend> chanends_{kChanendsPerCore};
  std::array<SyncRes, kSyncsPerCore> syncs_{};
  std::array<LockRes, kLocksPerCore> locks_{};
  std::array<TimerRes, kTimersPerCore> timers_{};
  std::array<PortRes, kPortsPerCore> ports_{};
  Trap trap_{};
  bool started_ = false;
  bool frozen_ = false;  // injected core lockup (fault layer)

  // Issue machinery.
  TimePs core_free_at_ = 0;
  int rr_next_ = 0;
  bool issue_scheduled_ = false;
  bool in_batch_ = false;  // suppress schedule_issue during a batch
  TimePs issue_scheduled_at_ = kTimeNever;
  EventHandle issue_event_;
  std::uint32_t ready_mask_ = 0;  // bit per thread in ThreadState::kReady

  // Predecode cache (lazily allocated on first fetch).  Backed by raw
  // byte storage: entries are placement-new'd as words are first fetched,
  // so the 256 KiB allocation only faults in the pages a program actually
  // executes from — a `new Predecoded[]` would run 16K constructors and
  // dirty every page up front, which dominates wall time on many-core
  // grids where each newly-active core pays that cost.
  std::unique_ptr<std::byte[]> predecode_storage_;
  Predecoded* predecode_ = nullptr;
  std::vector<std::uint64_t> predecode_valid_;

  // Energy.
  PowerTrace baseline_trace_;
  PowerTrace instr_trace_;
  InstrClass prev_class_ = InstrClass::kNop;  // for the detailed model

  // Stats and I/O.
  std::uint64_t retired_total_ = 0;
  std::array<std::uint64_t, 10> retired_by_class_{};
  std::string console_;
  std::function<std::uint32_t(int)> power_read_hook_;
  InstrTraceSink trace_sink_;

  // Observability (obs/trace.h).  obs_span_ holds the sub code of each
  // thread's currently open span (kObsNoSpan when none) so every B gets a
  // matching E even across wake/block races.
  static constexpr std::uint16_t kObsNoSpan = 0xFFFF;
  Track* obs_ = nullptr;
  std::array<std::uint16_t, kMaxHardwareThreads> obs_span_{};
  std::vector<std::pair<std::uint32_t, std::string>> symbols_;

  // Energy attribution shard (obs/energy_attr.h); wiring, never serialized.
  AttrShard* attr_ = nullptr;
};

/// Short human name for a wait kind ("chan-out", "lock", ...).
const char* to_string(Core::WaitKind kind);

}  // namespace swallow
