// Processor traps: unrecoverable program errors detected by the core.
// The core latches the first trap and halts, preserving full context for
// inspection — the simulator equivalent of the XS1 exception mechanism.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace swallow {

enum class TrapKind {
  kNone,
  kBadOpcode,
  kMemoryBounds,
  kMemoryAlignment,
  kBadResource,     // use of an unallocated / wrong-type resource
  kProtocol,        // channel protocol violation (e.g. CT where data expected)
  kResourceExhausted,
  kBadOperand,      // e.g. out-of-range SETFREQ
};

constexpr std::string_view to_string(TrapKind k) {
  switch (k) {
    case TrapKind::kNone: return "none";
    case TrapKind::kBadOpcode: return "bad-opcode";
    case TrapKind::kMemoryBounds: return "memory-bounds";
    case TrapKind::kMemoryAlignment: return "memory-alignment";
    case TrapKind::kBadResource: return "bad-resource";
    case TrapKind::kProtocol: return "protocol";
    case TrapKind::kResourceExhausted: return "resource-exhausted";
    case TrapKind::kBadOperand: return "bad-operand";
  }
  return "?";
}

struct Trap {
  TrapKind kind = TrapKind::kNone;
  int thread = -1;
  std::uint32_t pc = 0;  // word index of the faulting instruction
  std::string message;

  explicit operator bool() const { return kind != TrapKind::kNone; }
};

}  // namespace swallow
