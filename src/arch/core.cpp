#include "arch/core.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <new>
#include <span>

#include "common/error.h"
#include "common/strings.h"
#include "obs/trace.h"

namespace swallow {

namespace {
// Pipeline reissue gap (§IV.C) and the long-latency divide stall.
constexpr std::int64_t kIssueGapCycles = 4;
constexpr std::int64_t kDivStallCycles = 32;
}  // namespace

Core::Core(Simulator& sim, EnergyLedger& ledger, Config cfg)
    : sim_(sim),
      cfg_(cfg),
      clock_(cfg.frequency_mhz),
      sram_(cfg.sram_bytes, 0),
      baseline_trace_(ledger, EnergyAccount::kCoreBaseline),
      instr_trace_(ledger, EnergyAccount::kCoreInstructions) {
  require(cfg.sram_bytes % 4 == 0, "Core: SRAM size must be word aligned");
  predecode_valid_.assign((sram_.size() / 4 + 63) / 64, 0);
  obs_span_.fill(kObsNoSpan);
  voltage_ = cfg_.auto_dvfs
                 ? cfg_.power_model.min_voltage(cfg_.frequency_mhz)
                 : cfg_.voltage;
  // The core burns baseline power from construction (it is powered even
  // before a program starts).
  update_power_levels();
}

void Core::set_frequency(MegaHertz f_mhz) {
  require(f_mhz >= 1 && f_mhz <= 1000, "Core::set_frequency: out of range");
  clock_.set_frequency(sim_.now(), f_mhz);
  if (cfg_.auto_dvfs) {
    voltage_ = cfg_.power_model.min_voltage(f_mhz);
  }
  obs_dvfs_counters();
  update_power_levels();
  schedule_issue();
}

void Core::set_obs_track(Track* track) {
  obs_ = track;
  obs_dvfs_counters();  // seed the DVFS counter tracks at attach time
}

void Core::obs_dvfs_counters() {
  if (!obs_) return;
  const TimePs now = sim_.now();
  obs_->counter(now, TraceCat::kDvfs, kDvfsSubFreqMhz, kTidNode,
                clock_.frequency());
  obs_->counter(now, TraceCat::kDvfs, kDvfsSubVoltage, kTidNode, voltage_);
}

void Core::obs_begin_run(int tid) {
  if (!obs_) return;
  obs_span_[static_cast<std::size_t>(tid)] = kThreadSubRun;
  obs_->begin(sim_.now(), TraceCat::kThread, kThreadSubRun,
              kTidThreadBase + tid,
              threads_[static_cast<std::size_t>(tid)].pc);
}

void Core::obs_begin_wait(int tid) {
  if (!obs_) return;
  const ThreadCtx& t = threads_[static_cast<std::size_t>(tid)];
  // WaitKind values 1..5 are the thread-span sub codes directly; an
  // unclassified block renders as "wait:other".
  const auto sub = t.wait_kind == WaitKind::kNone
                       ? kThreadSubWaitOther
                       : static_cast<std::uint16_t>(t.wait_kind);
  obs_span_[static_cast<std::size_t>(tid)] = sub;
  obs_->begin(sim_.now(), TraceCat::kThread, sub, kTidThreadBase + tid, t.pc,
              t.wait_resource);
}

void Core::obs_close_span(int tid) {
  if (!obs_) return;
  std::uint16_t& span = obs_span_[static_cast<std::size_t>(tid)];
  if (span == kObsNoSpan) return;
  obs_->end(sim_.now(), TraceCat::kThread, span, kTidThreadBase + tid);
  span = kObsNoSpan;
}

void Core::obs_close_spans() {
  for (int tid = 0; tid < kMaxHardwareThreads; ++tid) obs_close_span(tid);
}

std::vector<Core::ThreadSample> Core::thread_snapshot() const {
  std::vector<ThreadSample> out;
  for (int tid = 0; tid < kMaxHardwareThreads; ++tid) {
    const ThreadCtx& t = threads_[static_cast<std::size_t>(tid)];
    if (t.state != ThreadState::kReady && t.state != ThreadState::kBlocked)
      continue;
    out.push_back(ThreadSample{tid, t.pc, t.state == ThreadState::kReady});
  }
  return out;
}

void Core::load(const Image& image) {
  require(image.size_bytes() <= sram_.size(), "Core::load: image too large");
  for (std::size_t i = 0; i < image.words.size(); ++i) {
    store_word(static_cast<std::uint32_t>(i * 4), image.words[i]);
  }
  symbols_.clear();
  for (const auto& [name, addr] : image.symbols) symbols_.emplace_back(addr, name);
  std::sort(symbols_.begin(), symbols_.end());
}

void Core::poke(std::uint32_t byte_addr, std::span<const std::uint8_t> bytes) {
  require(byte_addr + bytes.size() <= sram_.size(), "Core::poke: out of range");
  std::copy(bytes.begin(), bytes.end(), sram_.begin() + byte_addr);
  invalidate_predecode(byte_addr, bytes.size());
}

std::uint32_t Core::peek_word(std::uint32_t byte_addr) const {
  require(byte_addr + 4 <= sram_.size() && byte_addr % 4 == 0,
          "Core::peek_word: bad address");
  return load_word(byte_addr);
}

void Core::start(std::uint32_t entry) {
  require(!started_, "Core::start: already started");
  started_ = true;
  ThreadCtx& t0 = threads_[0];
  set_thread_state(0, ThreadState::kReady);
  t0.regs.fill(0);
  t0.regs[kRegSp] = static_cast<std::uint32_t>(sram_.size());
  t0.pc = entry;
  t0.ready_at = sim_.now();
  obs_begin_run(0);
  update_power_levels();
  schedule_issue();
}

bool Core::finished() const {
  if (!started_ || trapped()) return false;
  for (const ThreadCtx& t : threads_) {
    if (t.state == ThreadState::kReady || t.state == ThreadState::kBlocked ||
        t.state == ThreadState::kAllocated) {
      return false;
    }
  }
  return true;
}

int Core::runnable_threads() const { return std::popcount(ready_mask_); }

int Core::live_threads() const {
  int n = 0;
  for (const ThreadCtx& t : threads_) {
    n += t.state == ThreadState::kReady || t.state == ThreadState::kBlocked ||
         t.state == ThreadState::kAllocated;
  }
  return n;
}

std::vector<std::pair<int, std::uint32_t>> Core::blocked_threads() const {
  std::vector<std::pair<int, std::uint32_t>> out;
  for (int tid = 0; tid < kMaxHardwareThreads; ++tid) {
    const ThreadCtx& t = threads_[static_cast<std::size_t>(tid)];
    if (t.state == ThreadState::kBlocked) out.emplace_back(tid, t.pc);
  }
  return out;
}

std::vector<Core::BlockedThread> Core::blocked_thread_info() const {
  std::vector<BlockedThread> out;
  for (int tid = 0; tid < kMaxHardwareThreads; ++tid) {
    const ThreadCtx& t = threads_[static_cast<std::size_t>(tid)];
    if (t.state != ThreadState::kBlocked) continue;
    BlockedThread b;
    b.tid = tid;
    b.pc = t.pc;
    b.kind = t.wait_kind;
    b.resource = t.wait_resource;
    b.self_waking = t.wait_kind == WaitKind::kTimer;
    out.push_back(b);
  }
  return out;
}

const char* to_string(Core::WaitKind kind) {
  switch (kind) {
    case Core::WaitKind::kNone: return "none";
    case Core::WaitKind::kChanOut: return "chan-out";
    case Core::WaitKind::kChanIn: return "chan-in";
    case Core::WaitKind::kLock: return "lock";
    case Core::WaitKind::kSync: return "sync";
    case Core::WaitKind::kTimer: return "timer";
  }
  return "?";
}

Chanend* Core::find_chanend(ResourceId id) {
  if (resource_type(id) != ResourceType::kChanend ||
      resource_node(id) != cfg_.node_id) {
    return nullptr;
  }
  const int idx = resource_index(id);
  if (idx >= kChanendsPerCore) return nullptr;
  Chanend& ce = chanends_[static_cast<std::size_t>(idx)];
  return ce.allocated() && ce.id() == id ? &ce : nullptr;
}

// ---------------------------------------------------------------- scheduler

void Core::set_thread_state(int tid, ThreadState s) {
  threads_[static_cast<std::size_t>(tid)].state = s;
  const std::uint32_t bit = std::uint32_t{1} << tid;
  if (s == ThreadState::kReady) {
    ready_mask_ |= bit;
  } else {
    ready_mask_ &= ~bit;
  }
}

TimePs Core::next_issue_time() const {
  TimePs earliest = kTimeNever;
  for (std::uint32_t m = ready_mask_; m != 0; m &= m - 1) {
    const auto tid = static_cast<std::size_t>(std::countr_zero(m));
    earliest = std::min(earliest, threads_[tid].ready_at);
  }
  if (earliest == kTimeNever) return kTimeNever;  // nothing runnable
  return clock_.align_up(std::max({earliest, core_free_at_, sim_.now()}));
}

void Core::schedule_issue() {
  if (in_batch_ || trapped() || frozen_) return;
  const TimePs earliest = next_issue_time();
  if (earliest == kTimeNever) return;  // nothing runnable; wakes re-arm us
  if (issue_scheduled_) {
    if (issue_scheduled_at_ <= earliest) return;  // already armed early enough
    // Pull the pending event earlier in place; the callback is untouched.
    if (sim_.rearm(issue_event_, earliest)) {
      issue_scheduled_at_ = earliest;
      return;
    }
  }
  issue_scheduled_ = true;
  issue_scheduled_at_ = earliest;
  issue_event_ = sim_.at(
      earliest, EventDesc{EventKind::kCoreIssue, cfg_.node_id}, [this] {
        issue_scheduled_ = false;
        issue_scheduled_at_ = kTimeNever;
        do_issue();
      });
}

int Core::pick_thread(TimePs now) {
  for (int i = 0; i < kMaxHardwareThreads; ++i) {
    int tid = rr_next_ + i;
    if (tid >= kMaxHardwareThreads) tid -= kMaxHardwareThreads;
    if ((ready_mask_ >> tid) & 1u) {
      if (threads_[static_cast<std::size_t>(tid)].ready_at <= now) {
        rr_next_ = tid + 1 == kMaxHardwareThreads ? 0 : tid + 1;
        return tid;
      }
    }
  }
  return -1;
}

void Core::do_issue() {
  if (trapped()) return;
  const int max_batch = std::max(cfg_.max_batch, 1);
  TimePs now = sim_.now();
  in_batch_ = true;
  for (int issued = 0;;) {
    // Tight-loop fast path for straight-line whitelisted instructions
    // (kPredecodeFast) when nothing per-instruction can observe the
    // machine: no instruction trace sink, average (class-weight) energy
    // model.  A single ready thread takes the leanest loop; several ready
    // threads take the interleaving variant, which replicates the
    // round-robin pick per issue.  Falls through with `issued` unchanged
    // whenever any precondition fails.
    if (issued < max_batch && trace_sink_ == nullptr &&
        !cfg_.detailed_energy.enabled && ready_mask_ != 0) {
      const int before = issued;
      issued = std::has_single_bit(ready_mask_)
                   ? issue_fast_run(
                         static_cast<int>(std::countr_zero(ready_mask_)), now,
                         issued, max_batch)
                   : issue_fast_run_multi(now, issued, max_batch);
      if (issued != before) {
        if (issued >= max_batch) break;
        const TimePs next = next_issue_time();
        if (next == kTimeNever) break;
        if (next > sim_.horizon() || next >= sim_.next_event_time()) break;
        sim_.advance_in_dispatch(next);
        now = next;
        continue;
      }
    }
    const int tid = pick_thread(now);
    if (tid < 0) break;
    const IssueResult r = issue_one(tid, now);
    if (r == IssueResult::kHalted) break;
    ++issued;
    if (issued >= max_batch || r == IssueResult::kClockChanged) break;
    const TimePs next = next_issue_time();
    if (next == kTimeNever) break;
    // The batch may only swallow this core's own re-arm when the pump
    // would have dispatched it next with nothing in between: no event
    // pending at or before `next` (an equal-time event must win, exactly
    // as it beat the freshly drawn re-arm under stepped issue), and the
    // caller's horizon — a trace flush, checkpoint or measurement chop
    // point — not yet reached.  Stopping here re-arms through the queue,
    // which is always equivalent to the stepped engine.
    if (next > sim_.horizon() || next >= sim_.next_event_time()) break;
    sim_.advance_in_dispatch(next);
    now = next;
  }
  in_batch_ = false;
  schedule_issue();
}

int Core::issue_fast_run(int tid, TimePs& now, int issued, int max_batch) {
  ThreadCtx& t = threads_[static_cast<std::size_t>(tid)];
  // The thread must be issueable at `now` itself and `now` must sit on the
  // core clock grid: then every subsequent issue time is now + span(gap),
  // already aligned, and align_up/max in next_issue_time are identities —
  // the tight loop's time arithmetic is bit-identical to stepped issue.
  if (t.ready_at > now || core_free_at_ > now) return issued;
  if (clock_.align_up(now) != now) return issued;
  if (predecode_ == nullptr) return issued;  // general path allocates it
  const TimePs gap = clock_.span(kIssueGapCycles);
  const TimePs busy = clock_.span(1);
  const TimePs horizon = sim_.horizon();
  // Whitelisted instructions never schedule, so the queue head is fixed
  // for the whole run — one peek replaces one per instruction.
  const TimePs queue_next = sim_.next_event_time();
  const std::uint32_t words = static_cast<std::uint32_t>(sram_.size() / 4);
  const Joules instr_energy =
      cfg_.power_model.instruction_energy(clock_.frequency(), voltage_);
  const TimePs entry = now;
  TimePs issued_at = kTimeNever;  // issue time of the last retired instruction
  bool picked = false;
  while (true) {
    if (t.pc >= words) break;
    if ((predecode_valid_[t.pc >> 6] & (std::uint64_t{1} << (t.pc & 63))) ==
        0) {
      break;  // cold word: the general path fills the cache
    }
    const Predecoded& pd = predecode_[t.pc];
    if ((pd.flags & kPredecodeFast) == 0) break;
    if (!picked) {
      // What pick_thread would do on every one of these issues.
      rr_next_ = tid + 1 == kMaxHardwareThreads ? 0 : tid + 1;
      picked = true;
    }
    const std::uint32_t pc = t.pc;  // fetch address: kNext/branches move pc
    const Exec result = execute(tid, pd.ins);
    if (result == Exec::kNext) t.pc += 1;
    ++t.retired;
    ++retired_total_;
    ++retired_by_class_[static_cast<std::size_t>(pd.cls)];
    const InstrClass cls = static_cast<InstrClass>(pd.cls);
    const double w = instr_weight(cls);
    if (attr_ != nullptr) {
      attr_->note_instr(cfg_.node_id, tid, pc);
      if (w != 1.0) {
        attr_->cursor_instr(cfg_.node_id, tid, pc);
        instr_trace_.add_pulse((w - 1.0) * instr_energy);
        attr_->cursor_clear();
      }
    } else if (w != 1.0) {
      instr_trace_.add_pulse((w - 1.0) * instr_energy);
    }
    prev_class_ = cls;
    issued_at = now;
    ++issued;
    const TimePs next = now + gap;
    if (issued >= max_batch || next > horizon || next >= queue_next) break;
    now = next;
  }
  // Simulated time is advanced once, not per instruction: no whitelisted
  // instruction reads Simulator::now() and none schedules an event, so
  // nothing could have observed the intermediate times.
  if (issued_at != kTimeNever) {
    t.ready_at = issued_at + gap;
    core_free_at_ = issued_at + busy;
  }
  if (now != entry) sim_.advance_in_dispatch(now);
  return issued;
}

int Core::issue_fast_run_multi(TimePs& now, int issued, int max_batch) {
  // Multi-thread variant of issue_fast_run.  The single-thread loop can
  // defer all timing to its epilogue because one thread's ready_at never
  // feeds back into thread selection; with several ready threads the
  // round-robin pick depends on every intermediate ready_at, so the pick,
  // the timing commit and the next-issue-time computation are replicated
  // per instruction, bit-identically to stepped issue.
  if (core_free_at_ > now) return issued;
  if (clock_.align_up(now) != now) return issued;
  if (predecode_ == nullptr) return issued;  // general path allocates it
  const TimePs gap = clock_.span(kIssueGapCycles);
  const TimePs busy = clock_.span(1);
  const TimePs horizon = sim_.horizon();
  // Whitelisted instructions never schedule and never block or wake a
  // thread, so both the queue head and ready_mask_ are fixed for the whole
  // run.
  const TimePs queue_next = sim_.next_event_time();
  const std::uint32_t words = static_cast<std::uint32_t>(sram_.size() / 4);
  const Joules instr_energy =
      cfg_.power_model.instruction_energy(clock_.frequency(), voltage_);
  const TimePs entry = now;
  while (true) {
    // What pick_thread would do at `now`, with rr_next_ committed only
    // once the selected instruction is known to be on the fast path — a
    // break before issuing must leave the rotation for the general path.
    int tid = -1;
    for (int i = 0; i < kMaxHardwareThreads; ++i) {
      int cand = rr_next_ + i;
      if (cand >= kMaxHardwareThreads) cand -= kMaxHardwareThreads;
      if (((ready_mask_ >> cand) & 1u) != 0 &&
          threads_[static_cast<std::size_t>(cand)].ready_at <= now) {
        tid = cand;
        break;
      }
    }
    if (tid < 0) break;
    ThreadCtx& t = threads_[static_cast<std::size_t>(tid)];
    if (t.pc >= words) break;
    if ((predecode_valid_[t.pc >> 6] & (std::uint64_t{1} << (t.pc & 63))) ==
        0) {
      break;  // cold word: the general path fills the cache
    }
    const Predecoded& pd = predecode_[t.pc];
    if ((pd.flags & kPredecodeFast) == 0) break;
    rr_next_ = tid + 1 == kMaxHardwareThreads ? 0 : tid + 1;
    const std::uint32_t pc = t.pc;  // fetch address: kNext/branches move pc
    const Exec result = execute(tid, pd.ins);
    if (result == Exec::kNext) t.pc += 1;
    ++t.retired;
    ++retired_total_;
    ++retired_by_class_[static_cast<std::size_t>(pd.cls)];
    const InstrClass cls = static_cast<InstrClass>(pd.cls);
    const double w = instr_weight(cls);
    if (attr_ != nullptr) {
      attr_->note_instr(cfg_.node_id, tid, pc);
      if (w != 1.0) {
        attr_->cursor_instr(cfg_.node_id, tid, pc);
        instr_trace_.add_pulse((w - 1.0) * instr_energy);
        attr_->cursor_clear();
      }
    } else if (w != 1.0) {
      instr_trace_.add_pulse((w - 1.0) * instr_energy);
    }
    prev_class_ = cls;
    t.ready_at = now + gap;
    core_free_at_ = now + busy;
    ++issued;
    if (issued >= max_batch) break;
    // next_issue_time over the (fixed) ready set, on the local clock.
    TimePs earliest = kTimeNever;
    for (std::uint32_t m = ready_mask_; m != 0; m &= m - 1) {
      const auto rt = static_cast<std::size_t>(std::countr_zero(m));
      earliest = std::min(earliest, threads_[rt].ready_at);
    }
    const TimePs next =
        clock_.align_up(std::max({earliest, core_free_at_, now}));
    if (next > horizon || next >= queue_next) break;
    now = next;
  }
  // As in issue_fast_run: no whitelisted instruction reads Simulator::now()
  // and none schedules, so one advance covers the whole run.
  if (now != entry) sim_.advance_in_dispatch(now);
  return issued;
}

Core::IssueResult Core::issue_one(int tid, TimePs now) {
  ThreadCtx& t = threads_[static_cast<std::size_t>(tid)];

  // Fetch.  Compare word indices: pc * 4 could wrap for garbage pc values
  // (e.g. a BAU through an uninitialised register).
  if (t.pc >= sram_.size() / 4) {
    halt_with_trap(TrapKind::kMemoryBounds, tid,
                   strprintf("fetch beyond SRAM at pc=%u", t.pc));
    return IssueResult::kHalted;
  }
  const std::uint32_t pc_bytes = t.pc * 4;
  const Predecoded pd = fetch_predecoded(t.pc);
  const Instruction& ins = pd.ins;
  if (pd.flags & (kPredecodeBadOpcode | kPredecodeBadRegs)) {
    if (pd.flags & kPredecodeBadOpcode) {
      halt_with_trap(
          TrapKind::kBadOpcode, tid,
          strprintf("undefined opcode 0x%02x at pc=%u", ins.imm, t.pc));
    } else {
      halt_with_trap(TrapKind::kBadOpcode, tid,
                     strprintf("bad register operand at pc=%u", t.pc));
    }
    return IssueResult::kHalted;
  }

  // Capture source operands before execution overwrites them (for the
  // detailed data-dependent energy model).
  std::uint32_t op_a = 0, op_b = 0;
  if (cfg_.detailed_energy.enabled) {
    const auto& R = t.regs;
    switch (static_cast<Format>(pd.format)) {
      case Format::kR3:
        op_a = R[ins.rb];
        op_b = R[ins.rc];
        break;
      case Format::kR2:
      case Format::kR2I:
        op_a = R[ins.rb];
        op_b = static_cast<std::uint32_t>(ins.imm);
        break;
      case Format::kR1:
      case Format::kR1I:
        op_a = R[ins.ra];
        op_b = static_cast<std::uint32_t>(ins.imm);
        break;
      default:
        break;
    }
  }

  const Exec result = execute(tid, ins);
  if (trapped()) return IssueResult::kHalted;

  if (result == Exec::kBlocked) {
    // A blocked thread deschedules: the slot is not consumed and no issue
    // energy is charged (pc stays on the instruction for re-execution).
    classify_wait(tid, ins);
    block(tid);
    return IssueResult::kBlocked;
  }

  // Retire.
  if (trace_sink_) {
    // pc here is still the address of the retired instruction (kNext has
    // not advanced it yet); branches have already redirected, so capture
    // the fetch address instead.
    trace_sink_(InstrTraceRecord{now, tid, pc_bytes / 4, ins});
  }
  if (result == Exec::kNext) t.pc += 1;
  ++t.retired;
  ++retired_total_;
  const InstrClass cls = static_cast<InstrClass>(pd.cls);
  ++retired_by_class_[static_cast<std::size_t>(pd.cls)];
  // Per-instruction energy: deviation of this instruction from the average
  // mix (the average itself is carried by the continuous instr trace
  // level).  The detailed model adds class-switching and operand-data
  // dependence per [4].
  const double w =
      cfg_.detailed_energy.enabled
          ? detailed_weight(cfg_.detailed_energy, cls, prev_class_, op_a, op_b)
          : instr_weight(cls);
  prev_class_ = cls;
  if (attr_ != nullptr) attr_->note_instr(cfg_.node_id, tid, pc_bytes / 4);
  if (w != 1.0) {
    if (attr_ != nullptr) attr_->cursor_instr(cfg_.node_id, tid, pc_bytes / 4);
    instr_trace_.add_pulse((w - 1.0) * cfg_.power_model.instruction_energy(
                                           clock_.frequency(), voltage_));
    if (attr_ != nullptr) attr_->cursor_clear();
  }

  t.ready_at = now + clock_.span((pd.flags & kPredecodeLongOp)
                                     ? kDivStallCycles
                                     : kIssueGapCycles);
  core_free_at_ = now + clock_.span(1);
  return ins.op == Opcode::kSetfreq ? IssueResult::kClockChanged
                                    : IssueResult::kRetired;
}

void Core::wake(int tid) {
  if (trapped()) return;
  ThreadCtx& t = threads_.at(static_cast<std::size_t>(tid));
  if (t.state != ThreadState::kBlocked) return;
  set_thread_state(tid, ThreadState::kReady);
  t.wait_kind = WaitKind::kNone;
  t.wait_resource = 0;
  obs_close_span(tid);  // ends the wait span
  obs_begin_run(tid);
  update_power_levels();
  schedule_issue();
}

void Core::classify_wait(int tid, const Instruction& ins) {
  ThreadCtx& t = threads_.at(static_cast<std::size_t>(tid));
  const auto& R = t.regs;
  WaitKind kind = WaitKind::kNone;
  std::uint32_t res = 0;
  switch (ins.op) {
    case Opcode::kOut:
    case Opcode::kOutt:
    case Opcode::kOutct:
      kind = WaitKind::kChanOut;
      res = R[ins.ra];
      break;
    case Opcode::kIn:
      res = R[ins.rb];
      kind = resource_type(res) == ResourceType::kLock ? WaitKind::kLock
                                                       : WaitKind::kChanIn;
      break;
    case Opcode::kInt:
    case Opcode::kSel2:
      kind = WaitKind::kChanIn;
      res = R[ins.rb];
      break;
    case Opcode::kChkct:
      kind = WaitKind::kChanIn;
      res = R[ins.ra];
      break;
    case Opcode::kMsync:
    case Opcode::kTjoin:
      kind = WaitKind::kSync;
      res = R[ins.ra];
      break;
    case Opcode::kSsync:
      kind = WaitKind::kSync;
      res = t.sync >= 0 ? static_cast<std::uint32_t>(t.sync) : 0;
      break;
    case Opcode::kTimewait:
    case Opcode::kOutpt:
      kind = WaitKind::kTimer;
      break;
    default:
      break;
  }
  t.wait_kind = kind;
  t.wait_resource = res;
}

void Core::set_frozen(bool frozen) {
  if (frozen == frozen_) return;
  frozen_ = frozen;
  if (obs_) {
    obs_->instant(sim_.now(), TraceCat::kFault,
                  frozen_ ? kFaultSubFreeze : kFaultSubUnfreeze, kTidNode, 1);
  }
  if (frozen_) {
    if (issue_scheduled_) {
      sim_.cancel(issue_event_);
      issue_scheduled_ = false;
      issue_scheduled_at_ = kTimeNever;
    }
  } else {
    schedule_issue();
  }
}

void Core::block(int tid) {
  set_thread_state(tid, ThreadState::kBlocked);
  obs_close_span(tid);  // ends the run span
  obs_begin_wait(tid);
  update_power_levels();
}

void Core::halt_with_trap(TrapKind kind, int tid, const std::string& msg) {
  trap_ = Trap{kind, tid, threads_[static_cast<std::size_t>(tid)].pc, msg};
  if (issue_scheduled_) {
    sim_.cancel(issue_event_);
    issue_scheduled_ = false;
  }
  update_power_levels();
}

void Core::update_power_levels() {
  const TimePs now = sim_.now();
  const MegaHertz f = clock_.frequency();
  const Volts v = voltage_;
  if (attr_ != nullptr) attr_->cursor_baseline(cfg_.node_id);
  baseline_trace_.set_level(now, cfg_.power_model.baseline_power(f, v));
  const double active = trapped() ? 0.0 : static_cast<double>(runnable_threads());
  const double frac = std::min(active, 4.0) / 4.0;
  const Watts gap = cfg_.power_model.active_power(f, v) -
                    cfg_.power_model.baseline_power(f, v);
  if (attr_ != nullptr) attr_->cursor_instr_spread(cfg_.node_id);
  instr_trace_.set_level(now, frac * gap);
  if (attr_ != nullptr) attr_->cursor_clear();
}

void Core::settle_energy(TimePs now) {
  if (attr_ != nullptr) attr_->cursor_baseline(cfg_.node_id);
  baseline_trace_.settle(now);
  if (attr_ != nullptr) attr_->cursor_instr_spread(cfg_.node_id);
  instr_trace_.settle(now);
  if (attr_ != nullptr) attr_->cursor_clear();
}

// ------------------------------------------------------------------ memory

bool Core::mem_check(std::uint32_t addr, std::uint32_t size,
                     std::uint32_t align, int tid) {
  if (addr % align != 0) {
    halt_with_trap(TrapKind::kMemoryAlignment, tid,
                   strprintf("unaligned access at 0x%x", addr));
    return false;
  }
  if (addr + size > sram_.size() || addr + size < addr) {
    halt_with_trap(TrapKind::kMemoryBounds, tid,
                   strprintf("access at 0x%x beyond %zu-byte SRAM", addr,
                             sram_.size()));
    return false;
  }
  return true;
}

std::uint32_t Core::load_word(std::uint32_t addr) const {
  std::uint32_t v;
  std::memcpy(&v, sram_.data() + addr, 4);
  return v;
}

void Core::store_word(std::uint32_t addr, std::uint32_t value) {
  std::memcpy(sram_.data() + addr, &value, 4);
  invalidate_predecode(addr, 4);
}

void Core::store_byte(std::uint32_t addr, std::uint8_t value) {
  sram_[addr] = value;
  invalidate_predecode(addr, 1);
}

// -------------------------------------------------------- predecode cache

const Predecoded& Core::fetch_predecoded(std::uint32_t pc_word) {
  if (!predecode_) {
    predecode_storage_ = std::make_unique_for_overwrite<std::byte[]>(
        (sram_.size() / 4) * sizeof(Predecoded));
    predecode_ = reinterpret_cast<Predecoded*>(predecode_storage_.get());
  }
  std::uint64_t& bits = predecode_valid_[pc_word >> 6];
  const std::uint64_t bit = std::uint64_t{1} << (pc_word & 63);
  if ((bits & bit) == 0) {
    ::new (static_cast<void*>(&predecode_[pc_word]))
        Predecoded(predecode(load_word(pc_word * 4)));
    bits |= bit;
  }
  return predecode_[pc_word];
}

void Core::invalidate_predecode(std::uint32_t byte_addr, std::size_t size) {
  if (!predecode_ || size == 0) return;
  const std::uint32_t first = byte_addr / 4;
  const auto last = static_cast<std::uint32_t>((byte_addr + size - 1) / 4);
  for (std::uint32_t w = first; w <= last; ++w) {
    predecode_valid_[w >> 6] &= ~(std::uint64_t{1} << (w & 63));
  }
}

void Core::invalidate_predecode_all() {
  std::fill(predecode_valid_.begin(), predecode_valid_.end(), 0);
}

// --------------------------------------------------------------- resources

Chanend* Core::chanend_for_op(int tid, std::uint32_t res_id) {
  Chanend* ce = find_chanend(res_id);
  if (ce == nullptr) {
    halt_with_trap(TrapKind::kBadResource, tid,
                   strprintf("not a local allocated chanend: 0x%08x", res_id));
  }
  return ce;
}

std::uint32_t Core::ref_ticks() const {
  // 100 MHz reference clock, independent of the core frequency.
  const TimePs ref_period = period_ps(kReferenceClockMhz);
  return static_cast<std::uint32_t>(sim_.now() / ref_period);
}

// --------------------------------------------------------------- execution

Core::Exec Core::execute(int tid, const Instruction& ins) {
  ThreadCtx& t = threads_[static_cast<std::size_t>(tid)];
  auto& R = t.regs;
  const auto ra = ins.ra, rb = ins.rb, rc = ins.rc;
  const std::int32_t imm = ins.imm;

  auto shift_amount = [](std::uint32_t v) { return v; };

  switch (ins.op) {
    case Opcode::kNop:
      return Exec::kNext;

    // ---- ALU ----
    case Opcode::kAdd: R[ra] = R[rb] + R[rc]; return Exec::kNext;
    case Opcode::kSub: R[ra] = R[rb] - R[rc]; return Exec::kNext;
    case Opcode::kAnd: R[ra] = R[rb] & R[rc]; return Exec::kNext;
    case Opcode::kOr: R[ra] = R[rb] | R[rc]; return Exec::kNext;
    case Opcode::kXor: R[ra] = R[rb] ^ R[rc]; return Exec::kNext;
    case Opcode::kEq: R[ra] = R[rb] == R[rc]; return Exec::kNext;
    case Opcode::kLss:
      R[ra] = static_cast<std::int32_t>(R[rb]) < static_cast<std::int32_t>(R[rc]);
      return Exec::kNext;
    case Opcode::kLsu: R[ra] = R[rb] < R[rc]; return Exec::kNext;
    case Opcode::kNot: R[ra] = ~R[rb]; return Exec::kNext;
    case Opcode::kNeg:
      // Unsigned negation: two's complement result, defined for INT_MIN.
      R[ra] = 0u - R[rb];
      return Exec::kNext;
    case Opcode::kMkmsk:
      R[ra] = R[rb] >= 32 ? 0xFFFFFFFFu : (1u << R[rb]) - 1u;
      return Exec::kNext;
    case Opcode::kMul: R[ra] = R[rb] * R[rc]; return Exec::kNext;
    case Opcode::kMacc: R[ra] += R[rb] * R[rc]; return Exec::kNext;
    case Opcode::kLmulh:
      R[ra] = static_cast<std::uint32_t>(
          (static_cast<std::uint64_t>(R[rb]) * R[rc]) >> 32);
      return Exec::kNext;
    case Opcode::kDivu:
    case Opcode::kRemu:
      if (R[rc] == 0) {
        halt_with_trap(TrapKind::kBadOperand, tid, "divide by zero");
        return Exec::kNext;
      }
      R[ra] = ins.op == Opcode::kDivu ? R[rb] / R[rc] : R[rb] % R[rc];
      return Exec::kNext;
    case Opcode::kShl:
      R[ra] = shift_amount(R[rc]) >= 32 ? 0 : R[rb] << R[rc];
      return Exec::kNext;
    case Opcode::kShr:
      R[ra] = shift_amount(R[rc]) >= 32 ? 0 : R[rb] >> R[rc];
      return Exec::kNext;
    case Opcode::kAshr: {
      const std::uint32_t amt = std::min<std::uint32_t>(R[rc], 31);
      R[ra] = static_cast<std::uint32_t>(static_cast<std::int32_t>(R[rb]) >> amt);
      return Exec::kNext;
    }

    // ---- Immediates ----
    case Opcode::kAddi:
      R[ra] = R[rb] + static_cast<std::uint32_t>(imm);
      return Exec::kNext;
    case Opcode::kSubi:
      R[ra] = R[rb] - static_cast<std::uint32_t>(imm);
      return Exec::kNext;
    // Shift immediates are unsigned, like register shift amounts: >= 32
    // (which includes the encodings of negative immediates) yields 0 for
    // the logical shifts and clamps to 31 for the arithmetic one.
    case Opcode::kShli:
      R[ra] = static_cast<std::uint32_t>(imm) >= 32 ? 0 : R[rb] << (imm & 31);
      return Exec::kNext;
    case Opcode::kShri:
      R[ra] = static_cast<std::uint32_t>(imm) >= 32 ? 0 : R[rb] >> (imm & 31);
      return Exec::kNext;
    case Opcode::kEqi:
      R[ra] = R[rb] == static_cast<std::uint32_t>(imm);
      return Exec::kNext;
    case Opcode::kAshri: {
      const std::uint32_t amt =
          std::min<std::uint32_t>(static_cast<std::uint32_t>(imm), 31);
      R[ra] = static_cast<std::uint32_t>(static_cast<std::int32_t>(R[rb]) >> amt);
      return Exec::kNext;
    }
    case Opcode::kLdc:
      R[ra] = static_cast<std::uint32_t>(imm) & 0xFFFF;
      return Exec::kNext;
    case Opcode::kLdch:
      R[ra] = (R[ra] << 16) | (static_cast<std::uint32_t>(imm) & 0xFFFF);
      return Exec::kNext;

    // ---- Memory / stack ----
    case Opcode::kLdw:
    case Opcode::kStw:
    case Opcode::kLdb:
    case Opcode::kStb:
    case Opcode::kLdwsp:
    case Opcode::kStwsp:
      return exec_memory(tid, ins);
    case Opcode::kLdawsp:
      R[ra] = R[kRegSp] + static_cast<std::uint32_t>(imm) * 4;
      return Exec::kNext;
    case Opcode::kExtsp:
      R[kRegSp] -= static_cast<std::uint32_t>(imm) * 4;
      return Exec::kNext;

    // ---- Control flow ----
    case Opcode::kBt:
    case Opcode::kBf: {
      const bool taken = (ins.op == Opcode::kBt) == (R[ra] != 0);
      if (!taken) return Exec::kNext;
      t.pc = static_cast<std::uint32_t>(
          static_cast<std::int64_t>(t.pc) + 1 + imm);
      return Exec::kBranched;
    }
    case Opcode::kBu:
      t.pc = static_cast<std::uint32_t>(static_cast<std::int64_t>(t.pc) + 1 + imm);
      return Exec::kBranched;
    case Opcode::kBl:
      R[kRegLr] = t.pc + 1;
      t.pc = static_cast<std::uint32_t>(static_cast<std::int64_t>(t.pc) + 1 + imm);
      return Exec::kBranched;
    case Opcode::kBau:
      t.pc = R[ra];
      return Exec::kBranched;
    case Opcode::kRet:
      t.pc = R[kRegLr];
      return Exec::kBranched;

    // ---- Resources / threads ----
    case Opcode::kGetr:
    case Opcode::kFreer:
    case Opcode::kGetst:
    case Opcode::kTinitpc:
    case Opcode::kTinitsp:
    case Opcode::kTsetr:
      return exec_thread_ops(tid, ins);

    // ---- Communication & sync ----
    case Opcode::kSetd:
    case Opcode::kOut:
    case Opcode::kOutt:
    case Opcode::kOutct:
    case Opcode::kIn:
    case Opcode::kInt:
    case Opcode::kChkct:
    case Opcode::kSel2:
    case Opcode::kMsync:
    case Opcode::kSsync:
    case Opcode::kTjoin:
      return exec_comm(tid, ins);

    case Opcode::kTexit: {
      const bool is_slave = t.sync >= 0;
      set_thread_state(tid,
                       is_slave ? ThreadState::kExited : ThreadState::kUnused);
      obs_close_span(tid);
      if (obs_) {
        obs_->instant(sim_.now(), TraceCat::kThread, kThreadSubExit,
                      kTidThreadBase + tid, t.pc);
      }
      update_power_levels();
      if (is_slave) on_slave_exited(tid);
      return Exec::kExited;
    }

    // ---- Timers / system ----
    case Opcode::kGettime:
      R[ra] = ref_ticks();
      return Exec::kNext;
    case Opcode::kTimewait: {
      const std::uint32_t target = R[ra];
      const std::int32_t delta =
          static_cast<std::int32_t>(target - ref_ticks());
      if (delta <= 0) return Exec::kNext;
      const TimePs ref_period = period_ps(kReferenceClockMhz);
      const TimePs wake_at =
          (sim_.now() / ref_period + delta) * ref_period;
      sim_.at(wake_at,
              EventDesc{EventKind::kCoreTimerWake, cfg_.node_id,
                        static_cast<std::uint32_t>(tid)},
              [this, tid] { wake(tid); });
      return Exec::kBlocked;
    }
    case Opcode::kSetfreq: {
      const std::uint32_t mhz = R[ra];
      if (mhz < 1 || mhz > 1000) {
        halt_with_trap(TrapKind::kBadOperand, tid,
                       strprintf("SETFREQ %u MHz out of range", mhz));
        return Exec::kNext;
      }
      set_frequency(static_cast<MegaHertz>(mhz));
      return Exec::kNext;
    }
    case Opcode::kGetpwr:
      R[ra] = power_read_hook_ ? power_read_hook_(imm) : 0;
      return Exec::kNext;

    // ---- Timed port I/O ----
    case Opcode::kOutp:
    case Opcode::kOutpt:
    case Opcode::kInp: {
      auto port_for_op = [&](std::uint32_t res_id) -> PortRes* {
        if (resource_type(res_id) != ResourceType::kPort ||
            resource_node(res_id) != cfg_.node_id ||
            resource_index(res_id) >= kPortsPerCore ||
            !ports_[resource_index(res_id)].allocated) {
          halt_with_trap(TrapKind::kBadResource, tid,
                         strprintf("not a local allocated port: 0x%08x",
                                   res_id));
          return nullptr;
        }
        return &ports_[resource_index(res_id)];
      };
      if (ins.op == Opcode::kInp) {
        PortRes* port = port_for_op(R[rb]);
        if (port == nullptr) return Exec::kNext;
        R[ra] = port->input_level ? 1 : 0;
        return Exec::kNext;
      }
      PortRes* port = port_for_op(R[ra]);
      if (port == nullptr) return Exec::kNext;
      if (ins.op == Opcode::kOutpt) {
        // Timed output: block until the reference clock reaches R[rc],
        // then drive — jitter-free bit timing (`p @ t <: v` in XC).
        const std::int32_t delta =
            static_cast<std::int32_t>(R[rc] - ref_ticks());
        if (delta > 0) {
          const TimePs ref_period = period_ps(kReferenceClockMhz);
          const TimePs wake_at = (sim_.now() / ref_period + delta) * ref_period;
          sim_.at(wake_at,
                  EventDesc{EventKind::kCoreTimerWake, cfg_.node_id,
                            static_cast<std::uint32_t>(tid)},
                  [this, tid] { wake(tid); });
          return Exec::kBlocked;
        }
      }
      const int level = static_cast<int>(R[rb] & 1);
      if (level != port->out_level || port->waveform.empty()) {
        port->out_level = level;
        port->waveform.push_back(PortEdge{sim_.now(), level});
      }
      return Exec::kNext;
    }
    case Opcode::kPrintc:
      console_ += static_cast<char>(R[ra] & 0xFF);
      return Exec::kNext;
    case Opcode::kPrinti:
      console_ += std::to_string(static_cast<std::int32_t>(R[ra]));
      return Exec::kNext;

    case Opcode::kOpcodeCount:
      break;
  }
  halt_with_trap(TrapKind::kBadOpcode, tid, "unhandled opcode");
  return Exec::kNext;
}

Core::Exec Core::exec_memory(int tid, const Instruction& ins) {
  ThreadCtx& t = threads_[static_cast<std::size_t>(tid)];
  auto& R = t.regs;
  const std::int32_t imm = ins.imm;
  std::uint32_t addr;
  switch (ins.op) {
    case Opcode::kLdw:
      addr = R[ins.rb] + static_cast<std::uint32_t>(imm) * 4;
      if (!mem_check(addr, 4, 4, tid)) return Exec::kNext;
      R[ins.ra] = load_word(addr);
      return Exec::kNext;
    case Opcode::kStw:
      addr = R[ins.rb] + static_cast<std::uint32_t>(imm) * 4;
      if (!mem_check(addr, 4, 4, tid)) return Exec::kNext;
      store_word(addr, R[ins.ra]);
      return Exec::kNext;
    case Opcode::kLdb:
      addr = R[ins.rb] + static_cast<std::uint32_t>(imm);
      if (!mem_check(addr, 1, 1, tid)) return Exec::kNext;
      R[ins.ra] = sram_[addr];
      return Exec::kNext;
    case Opcode::kStb:
      addr = R[ins.rb] + static_cast<std::uint32_t>(imm);
      if (!mem_check(addr, 1, 1, tid)) return Exec::kNext;
      store_byte(addr, static_cast<std::uint8_t>(R[ins.ra] & 0xFF));
      return Exec::kNext;
    case Opcode::kLdwsp:
      addr = R[kRegSp] + static_cast<std::uint32_t>(imm) * 4;
      if (!mem_check(addr, 4, 4, tid)) return Exec::kNext;
      R[ins.ra] = load_word(addr);
      return Exec::kNext;
    case Opcode::kStwsp:
      addr = R[kRegSp] + static_cast<std::uint32_t>(imm) * 4;
      if (!mem_check(addr, 4, 4, tid)) return Exec::kNext;
      store_word(addr, R[ins.ra]);
      return Exec::kNext;
    default:
      invariant(false, "exec_memory: not a memory opcode");
  }
  return Exec::kNext;
}

Core::Exec Core::exec_thread_ops(int tid, const Instruction& ins) {
  ThreadCtx& t = threads_[static_cast<std::size_t>(tid)];
  auto& R = t.regs;

  auto thread_for_op = [&](std::uint32_t res_id) -> int {
    if (resource_type(res_id) != ResourceType::kThread ||
        resource_node(res_id) != cfg_.node_id ||
        resource_index(res_id) >= kMaxHardwareThreads) {
      halt_with_trap(TrapKind::kBadResource, tid,
                     strprintf("not a local thread id: 0x%08x", res_id));
      return -1;
    }
    const int idx = resource_index(res_id);
    if (threads_[static_cast<std::size_t>(idx)].state !=
        ThreadState::kAllocated) {
      halt_with_trap(TrapKind::kBadResource, tid,
                     "TINIT*/TSETR on a thread that is not freshly allocated");
      return -1;
    }
    return idx;
  };

  switch (ins.op) {
    case Opcode::kGetr: {
      const auto type = static_cast<ResourceType>(ins.imm);
      std::uint32_t id = 0;
      switch (type) {
        case ResourceType::kChanend:
          for (int i = 0; i < kChanendsPerCore; ++i) {
            Chanend& ce = chanends_[static_cast<std::size_t>(i)];
            if (!ce.allocated()) {
              ce.allocate(make_resource_id(cfg_.node_id,
                                           static_cast<std::uint8_t>(i),
                                           ResourceType::kChanend));
              id = ce.id();
              break;
            }
          }
          break;
        case ResourceType::kTimer:
          for (int i = 0; i < kTimersPerCore; ++i) {
            TimerRes& tr = timers_[static_cast<std::size_t>(i)];
            if (!tr.allocated) {
              tr.allocated = true;
              id = make_resource_id(cfg_.node_id, static_cast<std::uint8_t>(i),
                                    ResourceType::kTimer);
              break;
            }
          }
          break;
        case ResourceType::kSync:
          for (int i = 0; i < kSyncsPerCore; ++i) {
            SyncRes& s = syncs_[static_cast<std::size_t>(i)];
            if (!s.allocated) {
              s = SyncRes{};
              s.allocated = true;
              s.master = tid;
              id = make_resource_id(cfg_.node_id, static_cast<std::uint8_t>(i),
                                    ResourceType::kSync);
              break;
            }
          }
          break;
        case ResourceType::kLock:
          for (int i = 0; i < kLocksPerCore; ++i) {
            LockRes& l = locks_[static_cast<std::size_t>(i)];
            if (!l.allocated) {
              l = LockRes{};
              l.allocated = true;
              id = make_resource_id(cfg_.node_id, static_cast<std::uint8_t>(i),
                                    ResourceType::kLock);
              break;
            }
          }
          break;
        case ResourceType::kPort:
          for (int i = 0; i < kPortsPerCore; ++i) {
            PortRes& p = ports_[static_cast<std::size_t>(i)];
            if (!p.allocated) {
              // The pin is physical: its externally driven input level
              // survives reallocation; only the drive state resets.
              p.allocated = true;
              p.out_level = 0;
              p.waveform.clear();
              p.waveform.push_back(PortEdge{sim_.now(), 0});
              id = make_resource_id(cfg_.node_id, static_cast<std::uint8_t>(i),
                                    ResourceType::kPort);
              break;
            }
          }
          break;
        default:
          halt_with_trap(TrapKind::kBadResource, tid,
                         strprintf("GETR: bad resource type %d", ins.imm));
          return Exec::kNext;
      }
      R[ins.ra] = id;  // 0 signals exhaustion, like XS1's failure return
      return Exec::kNext;
    }

    case Opcode::kFreer: {
      const std::uint32_t id = R[ins.ra];
      if (resource_node(id) != cfg_.node_id) {
        halt_with_trap(TrapKind::kBadResource, tid, "FREER: not local");
        return Exec::kNext;
      }
      const int idx = resource_index(id);
      switch (resource_type(id)) {
        case ResourceType::kChanend: {
          Chanend* ce = find_chanend(id);
          if (ce == nullptr) break;
          ce->release();
          return Exec::kNext;
        }
        case ResourceType::kTimer:
          if (idx < kTimersPerCore &&
              timers_[static_cast<std::size_t>(idx)].allocated) {
            timers_[static_cast<std::size_t>(idx)].allocated = false;
            return Exec::kNext;
          }
          break;
        case ResourceType::kSync:
          if (idx < kSyncsPerCore &&
              syncs_[static_cast<std::size_t>(idx)].allocated) {
            SyncRes& s = syncs_[static_cast<std::size_t>(idx)];
            if (!s.slaves.empty()) {
              halt_with_trap(TrapKind::kBadResource, tid,
                             "FREER: sync still has slave threads");
              return Exec::kNext;
            }
            s.allocated = false;
            return Exec::kNext;
          }
          break;
        case ResourceType::kLock:
          if (idx < kLocksPerCore &&
              locks_[static_cast<std::size_t>(idx)].allocated) {
            locks_[static_cast<std::size_t>(idx)].allocated = false;
            return Exec::kNext;
          }
          break;
        case ResourceType::kPort:
          if (idx < kPortsPerCore &&
              ports_[static_cast<std::size_t>(idx)].allocated) {
            ports_[static_cast<std::size_t>(idx)].allocated = false;
            return Exec::kNext;
          }
          break;
        default:
          break;
      }
      halt_with_trap(TrapKind::kBadResource, tid,
                     strprintf("FREER: bad resource 0x%08x", id));
      return Exec::kNext;
    }

    case Opcode::kGetst: {
      const std::uint32_t sync_id = R[ins.rb];
      if (resource_type(sync_id) != ResourceType::kSync ||
          resource_node(sync_id) != cfg_.node_id ||
          resource_index(sync_id) >= kSyncsPerCore) {
        halt_with_trap(TrapKind::kBadResource, tid, "GETST: not a local sync");
        return Exec::kNext;
      }
      SyncRes& s = syncs_[resource_index(sync_id)];
      if (!s.allocated || s.master != tid) {
        halt_with_trap(TrapKind::kBadResource, tid,
                       "GETST: sync not owned by this thread");
        return Exec::kNext;
      }
      std::uint32_t id = 0;
      for (int i = 0; i < kMaxHardwareThreads; ++i) {
        ThreadCtx& nt = threads_[static_cast<std::size_t>(i)];
        if (nt.state == ThreadState::kUnused) {
          nt = ThreadCtx{};
          set_thread_state(i, ThreadState::kAllocated);
          nt.sync = static_cast<int>(resource_index(sync_id));
          s.slaves.push_back(i);
          id = make_resource_id(cfg_.node_id, static_cast<std::uint8_t>(i),
                                ResourceType::kThread);
          break;
        }
      }
      R[ins.ra] = id;
      return Exec::kNext;
    }

    case Opcode::kTinitpc: {
      const int idx = thread_for_op(R[ins.ra]);
      if (idx < 0) return Exec::kNext;
      threads_[static_cast<std::size_t>(idx)].pc =
          static_cast<std::uint32_t>(ins.imm);
      return Exec::kNext;
    }
    case Opcode::kTinitsp: {
      const int idx = thread_for_op(R[ins.ra]);
      if (idx < 0) return Exec::kNext;
      threads_[static_cast<std::size_t>(idx)].regs[kRegSp] = R[ins.rb];
      return Exec::kNext;
    }
    case Opcode::kTsetr: {
      const int idx = thread_for_op(R[ins.ra]);
      if (idx < 0) return Exec::kNext;
      if (ins.imm < 0 || ins.imm >= kNumRegisters) {
        halt_with_trap(TrapKind::kBadOperand, tid, "TSETR: bad register index");
        return Exec::kNext;
      }
      threads_[static_cast<std::size_t>(idx)]
          .regs[static_cast<std::size_t>(ins.imm)] = R[ins.rb];
      return Exec::kNext;
    }
    default:
      invariant(false, "exec_thread_ops: unexpected opcode");
  }
  return Exec::kNext;
}

bool Core::barrier_ready(const SyncRes& s) const {
  for (int tid : s.slaves) {
    const ThreadCtx& t = threads_[static_cast<std::size_t>(tid)];
    const bool arrived = t.state == ThreadState::kAllocated ||
                         t.state == ThreadState::kExited || t.ssync_waiting;
    if (!arrived) return false;
  }
  return true;
}

void Core::release_barrier(SyncRes& s) {
  const TimePs now = sim_.now();
  for (int tid : s.slaves) {
    ThreadCtx& t = threads_[static_cast<std::size_t>(tid)];
    if (t.state == ThreadState::kAllocated) {
      set_thread_state(tid, ThreadState::kReady);  // first MSYNC starts them
      t.ready_at = now;
      obs_begin_run(tid);
    } else if (t.ssync_waiting) {
      t.ssync_waiting = false;
      t.sync_release_pending = true;
      wake(tid);
    }
  }
  if (s.master_msync_waiting) {
    s.master_msync_waiting = false;
    ThreadCtx& m = threads_[static_cast<std::size_t>(s.master)];
    m.sync_release_pending = true;
    wake(s.master);
  }
  update_power_levels();
  schedule_issue();
}

void Core::on_slave_exited(int tid) {
  ThreadCtx& t = threads_[static_cast<std::size_t>(tid)];
  invariant(t.sync >= 0 && t.sync < kSyncsPerCore, "slave without sync");
  SyncRes& s = syncs_[static_cast<std::size_t>(t.sync)];
  if (s.master_join_waiting) {
    bool all_exited = true;
    for (int slave : s.slaves) {
      all_exited &= threads_[static_cast<std::size_t>(slave)].state ==
                    ThreadState::kExited;
    }
    if (all_exited) {
      for (int slave : s.slaves) {
        set_thread_state(slave, ThreadState::kUnused);
        threads_[static_cast<std::size_t>(slave)].sync = -1;
      }
      s.slaves.clear();
      s.master_join_waiting = false;
      wake(s.master);
    }
  } else if (s.master_msync_waiting && barrier_ready(s)) {
    release_barrier(s);
  }
}

Core::Exec Core::exec_comm(int tid, const Instruction& ins) {
  ThreadCtx& t = threads_[static_cast<std::size_t>(tid)];
  auto& R = t.regs;

  auto arm_read = [&](Chanend* ce) {
    ce->arm_readable([this, tid] { wake(tid); });
  };
  auto arm_write = [&](Chanend* ce) {
    ce->arm_writable([this, tid] { wake(tid); });
  };

  switch (ins.op) {
    case Opcode::kSetd: {
      Chanend* ce = chanend_for_op(tid, R[ins.ra]);
      if (ce == nullptr) return Exec::kNext;
      ce->set_dest(R[ins.rb]);
      return Exec::kNext;
    }

    case Opcode::kOut: {
      // OUT on a lock resource releases the lock.
      if (resource_type(R[ins.ra]) == ResourceType::kLock) {
        const int idx = resource_index(R[ins.ra]);
        if (resource_node(R[ins.ra]) != cfg_.node_id || idx >= kLocksPerCore ||
            !locks_[static_cast<std::size_t>(idx)].allocated) {
          halt_with_trap(TrapKind::kBadResource, tid, "OUT: bad lock");
          return Exec::kNext;
        }
        LockRes& l = locks_[static_cast<std::size_t>(idx)];
        if (!l.waiters.empty()) {
          const int next = l.waiters.front();
          l.waiters.pop_front();
          threads_[static_cast<std::size_t>(next)].sync_release_pending = true;
          wake(next);
        } else {
          l.held = false;
        }
        return Exec::kNext;
      }
      Chanend* ce = chanend_for_op(tid, R[ins.ra]);
      if (ce == nullptr) return Exec::kNext;
      const std::uint32_t v = R[ins.rb];
      const Token tokens[4] = {
          Token::data(static_cast<std::uint8_t>(v)),
          Token::data(static_cast<std::uint8_t>(v >> 8)),
          Token::data(static_cast<std::uint8_t>(v >> 16)),
          Token::data(static_cast<std::uint8_t>(v >> 24)),
      };
      if (!ce->try_emit(tokens)) {
        arm_write(ce);
        return Exec::kBlocked;
      }
      return Exec::kNext;
    }

    case Opcode::kOutt: {
      Chanend* ce = chanend_for_op(tid, R[ins.ra]);
      if (ce == nullptr) return Exec::kNext;
      const Token tok[1] = {Token::data(static_cast<std::uint8_t>(R[ins.rb]))};
      if (!ce->try_emit(tok)) {
        arm_write(ce);
        return Exec::kBlocked;
      }
      return Exec::kNext;
    }

    case Opcode::kOutct: {
      Chanend* ce = chanend_for_op(tid, R[ins.ra]);
      if (ce == nullptr) return Exec::kNext;
      const Token tok[1] = {
          Token::control(static_cast<ControlToken>(ins.imm & 0xFF))};
      if (!ce->try_emit(tok)) {
        arm_write(ce);
        return Exec::kBlocked;
      }
      return Exec::kNext;
    }

    case Opcode::kIn: {
      // IN on a lock resource acquires the lock.
      if (resource_type(R[ins.rb]) == ResourceType::kLock) {
        const int idx = resource_index(R[ins.rb]);
        if (resource_node(R[ins.rb]) != cfg_.node_id || idx >= kLocksPerCore ||
            !locks_[static_cast<std::size_t>(idx)].allocated) {
          halt_with_trap(TrapKind::kBadResource, tid, "IN: bad lock");
          return Exec::kNext;
        }
        LockRes& l = locks_[static_cast<std::size_t>(idx)];
        if (t.sync_release_pending) {  // lock handed to us by the releaser
          t.sync_release_pending = false;
          R[ins.ra] = 0;
          return Exec::kNext;
        }
        if (!l.held) {
          l.held = true;
          R[ins.ra] = 0;
          return Exec::kNext;
        }
        l.waiters.push_back(tid);
        return Exec::kBlocked;
      }
      Chanend* ce = chanend_for_op(tid, R[ins.rb]);
      if (ce == nullptr) return Exec::kNext;
      std::uint32_t word = 0;
      switch (ce->read_word(word)) {
        case Chanend::ReadResult::kOk:
          R[ins.ra] = word;
          return Exec::kNext;
        case Chanend::ReadResult::kBlocked:
          arm_read(ce);
          return Exec::kBlocked;
        case Chanend::ReadResult::kProtocolError:
          halt_with_trap(TrapKind::kProtocol, tid,
                         "IN: control token where data expected");
          return Exec::kNext;
      }
      return Exec::kNext;
    }

    case Opcode::kInt: {
      Chanend* ce = chanend_for_op(tid, R[ins.rb]);
      if (ce == nullptr) return Exec::kNext;
      std::uint8_t byte = 0;
      switch (ce->read_token(byte)) {
        case Chanend::ReadResult::kOk:
          R[ins.ra] = byte;
          return Exec::kNext;
        case Chanend::ReadResult::kBlocked:
          arm_read(ce);
          return Exec::kBlocked;
        case Chanend::ReadResult::kProtocolError:
          halt_with_trap(TrapKind::kProtocol, tid,
                         "INT: control token where data expected");
          return Exec::kNext;
      }
      return Exec::kNext;
    }

    case Opcode::kChkct: {
      Chanend* ce = chanend_for_op(tid, R[ins.ra]);
      if (ce == nullptr) return Exec::kNext;
      switch (ce->check_ct(static_cast<std::uint8_t>(ins.imm))) {
        case Chanend::ReadResult::kOk:
          return Exec::kNext;
        case Chanend::ReadResult::kBlocked:
          arm_read(ce);
          return Exec::kBlocked;
        case Chanend::ReadResult::kProtocolError:
          halt_with_trap(TrapKind::kProtocol, tid,
                         "CHKCT: unexpected token");
          return Exec::kNext;
      }
      return Exec::kNext;
    }

    case Opcode::kSel2: {
      Chanend* first = chanend_for_op(tid, R[ins.rb]);
      if (first == nullptr) return Exec::kNext;
      Chanend* second = chanend_for_op(tid, R[ins.rc]);
      if (second == nullptr) return Exec::kNext;
      if (first->in_pending() > 0) {
        R[ins.ra] = R[ins.rb];
        return Exec::kNext;
      }
      if (second->in_pending() > 0) {
        R[ins.ra] = R[ins.rc];
        return Exec::kNext;
      }
      // Arm both; a wake on an already-ready thread is a no-op, so the
      // stale second arm is harmless.
      arm_read(first);
      arm_read(second);
      return Exec::kBlocked;
    }

    case Opcode::kMsync: {
      const std::uint32_t sync_id = R[ins.ra];
      if (resource_type(sync_id) != ResourceType::kSync ||
          resource_node(sync_id) != cfg_.node_id ||
          resource_index(sync_id) >= kSyncsPerCore ||
          !syncs_[resource_index(sync_id)].allocated ||
          syncs_[resource_index(sync_id)].master != tid) {
        halt_with_trap(TrapKind::kBadResource, tid, "MSYNC: not sync master");
        return Exec::kNext;
      }
      SyncRes& s = syncs_[resource_index(sync_id)];
      if (t.sync_release_pending) {
        t.sync_release_pending = false;
        return Exec::kNext;
      }
      if (barrier_ready(s)) {
        release_barrier(s);
        return Exec::kNext;
      }
      s.master_msync_waiting = true;
      return Exec::kBlocked;
    }

    case Opcode::kSsync: {
      if (t.sync < 0) {
        halt_with_trap(TrapKind::kBadResource, tid,
                       "SSYNC: thread is not a sync slave");
        return Exec::kNext;
      }
      if (t.sync_release_pending) {
        t.sync_release_pending = false;
        return Exec::kNext;
      }
      SyncRes& s = syncs_[static_cast<std::size_t>(t.sync)];
      t.ssync_waiting = true;
      if (s.master_msync_waiting && barrier_ready(s)) {
        release_barrier(s);
        // We were the last arrival: the release cleared our waiting flag
        // and set the pending flag — complete without blocking.
        if (t.sync_release_pending) {
          t.sync_release_pending = false;
          return Exec::kNext;
        }
      }
      return Exec::kBlocked;
    }

    case Opcode::kTjoin: {
      const std::uint32_t sync_id = R[ins.ra];
      if (resource_type(sync_id) != ResourceType::kSync ||
          resource_node(sync_id) != cfg_.node_id ||
          resource_index(sync_id) >= kSyncsPerCore ||
          !syncs_[resource_index(sync_id)].allocated ||
          syncs_[resource_index(sync_id)].master != tid) {
        halt_with_trap(TrapKind::kBadResource, tid, "TJOIN: not sync master");
        return Exec::kNext;
      }
      SyncRes& s = syncs_[resource_index(sync_id)];
      bool all_exited = true;
      for (int slave : s.slaves) {
        all_exited &= threads_[static_cast<std::size_t>(slave)].state ==
                      ThreadState::kExited;
      }
      if (all_exited) {
        for (int slave : s.slaves) {
          set_thread_state(slave, ThreadState::kUnused);
          threads_[static_cast<std::size_t>(slave)].sync = -1;
        }
        s.slaves.clear();
        return Exec::kNext;
      }
      s.master_join_waiting = true;
      return Exec::kBlocked;
    }

    default:
      invariant(false, "exec_comm: unexpected opcode");
  }
  return Exec::kNext;
}

// ---------------------------------------------------------------- snapshot

void Core::save_state(StateWriter& w) const {
  clock_.save_state(w);
  w.f64(voltage_);
  w.u32(static_cast<std::uint32_t>(sram_.size()));
  w.bytes(sram_.data(), sram_.size());
  for (const ThreadCtx& t : threads_) {
    w.u8(static_cast<std::uint8_t>(t.state));
    for (std::uint32_t reg : t.regs) w.u32(reg);
    w.u32(t.pc);
    w.i64(t.ready_at);
    w.u32(static_cast<std::uint32_t>(t.sync));
    w.b(t.ssync_waiting);
    w.b(t.sync_release_pending);
    w.u64(t.retired);
    w.u8(static_cast<std::uint8_t>(t.wait_kind));
    w.u32(t.wait_resource);
  }
  for (const Chanend& ce : chanends_) ce.save_state(w);
  for (const SyncRes& s : syncs_) {
    w.b(s.allocated);
    w.u32(static_cast<std::uint32_t>(s.master));
    w.seq(s.slaves, [&](int tid) { w.u32(static_cast<std::uint32_t>(tid)); });
    w.b(s.master_msync_waiting);
    w.b(s.master_join_waiting);
  }
  for (const LockRes& l : locks_) {
    w.b(l.allocated);
    w.b(l.held);
    w.seq(l.waiters, [&](int tid) { w.u32(static_cast<std::uint32_t>(tid)); });
  }
  for (const TimerRes& t : timers_) w.b(t.allocated);
  for (const PortRes& p : ports_) {
    w.b(p.allocated);
    w.u32(static_cast<std::uint32_t>(p.out_level));
    w.b(p.input_level);
    w.seq(p.waveform, [&](const PortEdge& e) {
      w.i64(e.time);
      w.u32(static_cast<std::uint32_t>(e.level));
    });
  }
  w.u8(static_cast<std::uint8_t>(trap_.kind));
  w.u32(static_cast<std::uint32_t>(trap_.thread));
  w.u32(trap_.pc);
  w.str(trap_.message);
  w.b(started_);
  w.b(frozen_);
  w.i64(core_free_at_);
  w.u32(static_cast<std::uint32_t>(rr_next_));
  w.u8(static_cast<std::uint8_t>(prev_class_));
  w.u64(retired_total_);
  for (std::uint64_t n : retired_by_class_) w.u64(n);
  w.str(console_);
  for (std::uint16_t span : obs_span_) w.u16(span);
  w.seq(symbols_, [&](const std::pair<std::uint32_t, std::string>& s) {
    w.u32(s.first);
    w.str(s.second);
  });
  baseline_trace_.save_state(w);
  instr_trace_.save_state(w);
}

void Core::load_state(StateReader& r) {
  clock_.load_state(r);
  voltage_ = r.f64();
  if (r.u32() != sram_.size()) {
    throw SnapError(SnapError::Code::kMalformed,
                    "snapshot: core SRAM size mismatch");
  }
  r.bytes(sram_.data(), sram_.size());
  for (ThreadCtx& t : threads_) {
    t.state = static_cast<ThreadState>(r.u8());
    for (std::uint32_t& reg : t.regs) reg = r.u32();
    t.pc = r.u32();
    t.ready_at = r.i64();
    t.sync = static_cast<std::int32_t>(r.u32());
    t.ssync_waiting = r.b();
    t.sync_release_pending = r.b();
    t.retired = r.u64();
    t.wait_kind = static_cast<WaitKind>(r.u8());
    t.wait_resource = r.u32();
  }
  for (Chanend& ce : chanends_) ce.load_state(r);
  for (SyncRes& s : syncs_) {
    s.allocated = r.b();
    s.master = static_cast<std::int32_t>(r.u32());
    s.slaves.clear();
    r.seq([&](std::uint32_t) {
      s.slaves.push_back(static_cast<std::int32_t>(r.u32()));
    });
    s.master_msync_waiting = r.b();
    s.master_join_waiting = r.b();
  }
  for (LockRes& l : locks_) {
    l.allocated = r.b();
    l.held = r.b();
    l.waiters.clear();
    r.seq([&](std::uint32_t) {
      l.waiters.push_back(static_cast<std::int32_t>(r.u32()));
    });
  }
  for (TimerRes& t : timers_) t.allocated = r.b();
  for (PortRes& p : ports_) {
    p.allocated = r.b();
    p.out_level = static_cast<std::int32_t>(r.u32());
    p.input_level = r.b();
    p.waveform.clear();
    r.seq([&](std::uint32_t) {
      PortEdge e;
      e.time = r.i64();
      e.level = static_cast<std::int32_t>(r.u32());
      p.waveform.push_back(e);
    });
  }
  trap_.kind = static_cast<TrapKind>(r.u8());
  trap_.thread = static_cast<std::int32_t>(r.u32());
  trap_.pc = r.u32();
  trap_.message = r.str();
  started_ = r.b();
  frozen_ = r.b();
  core_free_at_ = r.i64();
  rr_next_ = static_cast<std::int32_t>(r.u32());
  prev_class_ = static_cast<InstrClass>(r.u8());
  retired_total_ = r.u64();
  for (std::uint64_t& n : retired_by_class_) n = r.u64();
  console_ = r.str();
  for (std::uint16_t& span : obs_span_) span = r.u16();
  symbols_.clear();
  r.seq([&](std::uint32_t) {
    const std::uint32_t addr = r.u32();
    symbols_.emplace_back(addr, r.str());
  });
  baseline_trace_.load_state(r);
  instr_trace_.load_state(r);
  // Pending issue/timer events come back through restore_event(); start
  // from a clean scheduling slate.
  issue_scheduled_ = false;
  issue_scheduled_at_ = kTimeNever;
  issue_event_ = EventHandle{};
  // Derived caches: the ready mask follows the restored thread states, and
  // every predecoded word is refetched from the restored SRAM.
  ready_mask_ = 0;
  for (int tid = 0; tid < kMaxHardwareThreads; ++tid) {
    if (threads_[static_cast<std::size_t>(tid)].state == ThreadState::kReady) {
      ready_mask_ |= std::uint32_t{1} << tid;
    }
  }
  invalidate_predecode_all();
}

void Core::restore_event(const LiveEvent& ev) {
  switch (ev.desc.kind) {
    case EventKind::kCoreIssue:
      issue_scheduled_ = true;
      issue_scheduled_at_ = ev.time;
      issue_event_ = sim_.inject(ev.time, ev.stamp, ev.tie, ev.desc, [this] {
        issue_scheduled_ = false;
        issue_scheduled_at_ = kTimeNever;
        do_issue();
      });
      return;
    case EventKind::kCoreTimerWake: {
      const int tid = static_cast<int>(ev.desc.a);
      sim_.inject(ev.time, ev.stamp, ev.tie, ev.desc,
                  [this, tid] { wake(tid); });
      return;
    }
    default:
      invariant(false, "Core::restore_event: not a core event");
  }
}

void Core::rearm_blocked_waits() {
  for (int tid = 0; tid < kMaxHardwareThreads; ++tid) {
    const ThreadCtx& t = threads_[static_cast<std::size_t>(tid)];
    if (t.state != ThreadState::kBlocked) continue;
    if (t.wait_kind != WaitKind::kChanOut && t.wait_kind != WaitKind::kChanIn)
      continue;  // lock/sync wakes come from peer threads; timers are events
    // The blocked instruction is still at pc (a blocked thread does not
    // advance), so fetching it through the predecode cache recovers exactly
    // which chanend(s) the pre-checkpoint run had armed (and warms the slot
    // the first issue after resume would fill anyway).
    const Instruction ins = fetch_predecoded(t.pc).ins;
    const auto& R = t.regs;
    auto arm_read = [&](std::uint32_t res) {
      if (Chanend* ce = find_chanend(res)) {
        ce->arm_readable([this, tid] { wake(tid); });
      }
    };
    auto arm_write = [&](std::uint32_t res) {
      if (Chanend* ce = find_chanend(res)) {
        ce->arm_writable([this, tid] { wake(tid); });
      }
    };
    switch (ins.op) {
      case Opcode::kOut:
      case Opcode::kOutt:
      case Opcode::kOutct:
        arm_write(R[ins.ra]);
        break;
      case Opcode::kIn:
      case Opcode::kInt:
        arm_read(R[ins.rb]);
        break;
      case Opcode::kChkct:
        arm_read(R[ins.ra]);
        break;
      case Opcode::kSel2:
        arm_read(R[ins.rb]);
        arm_read(R[ins.rc]);
        break;
      default:
        break;
    }
  }
}

}  // namespace swallow
