#include "arch/loopback.h"

#include <set>

#include "arch/resource.h"
#include "common/error.h"

namespace swallow {

/// One processor port: consumes header tokens, then forwards the packet
/// body to the destination chanend while it can receive.
class LoopbackFabric::Port : public TokenOutPort {
 public:
  Port(LoopbackFabric& fabric) : fabric_(fabric) {}

  bool can_accept() const override {
    // Accept while the downstream (if a route is open) has space, or we are
    // still collecting the header.
    if (header_.size() < kHeaderTokens) return true;
    return dest_ != nullptr && dest_->can_receive();
  }

  void push(const Token& t) override {
    if (header_.size() < static_cast<std::size_t>(kHeaderTokens)) {
      require(!t.is_control, "loopback: control token inside header");
      header_.push_back(t.value);
      if (header_.size() == static_cast<std::size_t>(kHeaderTokens)) {
        open_route();
      }
      return;
    }
    invariant(dest_ != nullptr && dest_->can_receive(),
              "loopback: push without acceptance");
    const bool closes = t.closes_route();
    if (!t.is_pause()) dest_->receive(t);  // PAUSE is not delivered
    if (closes) {
      header_.clear();
      dest_ = nullptr;
    }
    fire_space();
  }

  void subscribe_space(std::function<void()> cb) override {
    space_subs_.push_back(std::move(cb));
  }

  void fire_space() {
    for (const auto& cb : space_subs_) cb();
  }

 private:
  void open_route() {
    const HeaderDest hd = header_from_bytes(header_[0], header_[1], header_[2]);
    const ResourceId dest_id = chanend_from_dest(hd);
    for (Core* core : fabric_.cores_) {
      if (core->node_id() == hd.node) {
        dest_ = core->find_chanend(dest_id);
        break;
      }
    }
    require(dest_ != nullptr, "loopback: no such destination chanend");
    // The destination may free buffer space later; propagate that to our
    // producer (subscribe once per destination).
    if (subscribed_.insert(dest_).second) {
      dest_->subscribe_drain([this] { fire_space(); });
    }
  }

  LoopbackFabric& fabric_;
  std::vector<std::uint8_t> header_;
  TokenReceiver* dest_ = nullptr;
  std::set<TokenReceiver*> subscribed_;
  std::vector<std::function<void()>> space_subs_;
};

LoopbackFabric::LoopbackFabric() = default;
LoopbackFabric::~LoopbackFabric() = default;

void LoopbackFabric::attach(Core& core) {
  cores_.push_back(&core);
  for (int i = 0; i < kChanendsPerCore; ++i) {
    ports_.push_back(std::make_unique<Port>(*this));
    core.chanend(i).attach_out_port(ports_.back().get());
  }
}

}  // namespace swallow
