// Instruction tracing: an optional per-core sink invoked at every retire,
// in the spirit of xsim's trace output.  Tracing is pull-free — the sink
// sees (time, thread, pc, instruction) and can format, filter or count.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>
#include <string>

#include "arch/isa.h"
#include "common/units.h"

namespace swallow {

struct InstrTraceRecord {
  TimePs time = 0;
  int thread = 0;
  std::uint32_t pc = 0;  // word index of the retired instruction
  Instruction ins;
};

using InstrTraceSink = std::function<void(const InstrTraceRecord&)>;

/// xsim-style one-line rendering: "  123456 ps  t2@0017: add r1, r2, r3".
std::string format_trace_record(const InstrTraceRecord& rec);

/// Convenience sink collecting formatted lines (tests, debugging).
class TraceBuffer {
 public:
  InstrTraceSink sink() {
    return [this](const InstrTraceRecord& rec) {
      ++count_;
      if (lines_.size() < max_lines_) {
        lines_.push_back(format_trace_record(rec));
      }
    };
  }

  std::uint64_t count() const { return count_; }
  const std::vector<std::string>& lines() const { return lines_; }
  void set_max_lines(std::size_t n) { max_lines_ = n; }

 private:
  std::uint64_t count_ = 0;
  std::size_t max_lines_ = 10000;
  std::vector<std::string> lines_;
};

}  // namespace swallow
