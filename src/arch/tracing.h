// Instruction tracing: an optional per-core sink invoked at every retire,
// in the spirit of xsim's trace output.  Tracing is pull-free — the sink
// sees (time, thread, pc, instruction) and can format, filter or count.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>
#include <string>

#include "arch/isa.h"
#include "common/units.h"
#include "obs/ring.h"

namespace swallow {

struct InstrTraceRecord {
  TimePs time = 0;
  int thread = 0;
  std::uint32_t pc = 0;  // word index of the retired instruction
  Instruction ins;
};

using InstrTraceSink = std::function<void(const InstrTraceRecord&)>;

/// xsim-style one-line rendering: "  123456 ps  t2@0017: add r1, r2, r3".
std::string format_trace_record(const InstrTraceRecord& rec);

/// Convenience sink collecting formatted lines (tests, debugging).
/// Backed by the observability ring buffer: bounded, drop-newest, with the
/// overflow *counted* rather than silent — records past the capacity are
/// still tallied in count() and reported by dropped().
class TraceBuffer {
 public:
  InstrTraceSink sink() {
    return [this](const InstrTraceRecord& rec) {
      ++count_;
      ring_.push(format_trace_record(rec));
    };
  }

  /// Records seen, including ones that no longer fit.
  std::uint64_t count() const { return count_; }
  /// Records refused because the buffer was at capacity.
  std::uint64_t dropped() const { return ring_.dropped(); }
  const std::vector<std::string>& lines() const { return ring_.linear(); }
  void set_max_lines(std::size_t n) { ring_.set_capacity(n); }

 private:
  std::uint64_t count_ = 0;
  RingBuffer<std::string> ring_{10000};
};

}  // namespace swallow
