// Interfaces between a core's channel ends and the network switch.
//
// The arch library owns the chanend (architectural state, blocking
// semantics); the noc library provides the switch-side implementation of
// these interfaces when a core is attached to a network.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "noc/token.h"

namespace swallow {

/// Switch-side acceptance point for tokens a chanend emits.
/// Implementations model the processor-to-switch port: finite buffering,
/// so pushes can be refused; the producer re-tries when notified.
class TokenOutPort {
 public:
  virtual ~TokenOutPort() = default;

  /// True if one more token can be accepted right now.
  virtual bool can_accept() const = 0;

  /// Push a token; only valid when can_accept().
  virtual void push(const Token& t) = 0;

  /// Register a callback fired whenever space may have become available.
  virtual void subscribe_space(std::function<void()> cb) = 0;
};

/// Core-side delivery point the switch hands arriving tokens to.
class TokenReceiver {
 public:
  virtual ~TokenReceiver() = default;

  /// True if the receiver can buffer one more token.
  virtual bool can_receive() const = 0;

  /// Number of tokens the receiver can buffer right now (used by senders
  /// to reserve space for in-flight deliveries).
  virtual std::size_t free_space() const = 0;

  /// Deliver a token; only valid when can_receive().
  virtual void receive(const Token& t) = 0;

  /// Register a callback fired whenever buffer space frees up.
  virtual void subscribe_drain(std::function<void()> cb) = 0;
};

}  // namespace swallow
