// Two-pass assembler for the Swallow core ISA.
//
// Syntax:
//   # comment, // comment, ; comment
//   label:
//       ldc   r0, 42          # immediates: 42, 0x2a, 0b101010, #42
//       add   r1, r1, r0
//       bt    r1, label       # branch targets are labels or numbers
//       .org  16              # word index
//       .word 0xdeadbeef, 12  # literal data words
//       .space 4              # reserve four zero words
//
// Label value conventions:
//   * branch/BL operands: assembler emits the word-relative offset from the
//     *next* instruction (pc := pc + 1 + imm on a taken branch);
//   * TINITPC: absolute word index of the label;
//   * LDC / .word: *byte* address of the label (word index * 4), so the
//     result can be used directly as a load/store base register.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace swallow {

/// Assembled program: a word image loaded at SRAM address 0.
struct Image {
  std::vector<std::uint32_t> words;
  std::map<std::string, std::uint32_t, std::less<>> symbols;  // word indices
  std::uint32_t entry = 0;  // word index of the first instruction

  std::uint32_t symbol(std::string_view name) const;
  std::size_t size_bytes() const { return words.size() * 4; }
};

/// Assemble `source`; throws swallow::Error with a line-numbered message on
/// any syntax or range problem.
Image assemble(std::string_view source);

/// Non-throwing form: returns the image, or nullopt with the line-numbered
/// diagnostic copied into `*error` (when non-null).  Tools that batch many
/// inputs (and the assembler fuzzers) use this to report failures without
/// unwinding.
std::optional<Image> try_assemble(std::string_view source,
                                  std::string* error = nullptr);

/// Disassemble an image back to one instruction per line (for traces and
/// round-trip tests).
std::string disassemble_image(const Image& image);

}  // namespace swallow
