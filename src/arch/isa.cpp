#include "arch/isa.h"

#include <array>
#include <unordered_map>

#include "common/error.h"
#include "common/strings.h"

namespace swallow {

namespace {

constexpr std::size_t kOpcodeCount =
    static_cast<std::size_t>(Opcode::kOpcodeCount);

constexpr std::array<OpcodeInfo, kOpcodeCount> kOpcodeTable = {{
    {"nop", Format::kR0, InstrClass::kNop},
    {"add", Format::kR3, InstrClass::kAlu},
    {"sub", Format::kR3, InstrClass::kAlu},
    {"and", Format::kR3, InstrClass::kAlu},
    {"or", Format::kR3, InstrClass::kAlu},
    {"xor", Format::kR3, InstrClass::kAlu},
    {"eq", Format::kR3, InstrClass::kAlu},
    {"lss", Format::kR3, InstrClass::kAlu},
    {"lsu", Format::kR3, InstrClass::kAlu},
    {"not", Format::kR2, InstrClass::kAlu},
    {"neg", Format::kR2, InstrClass::kAlu},
    {"mkmsk", Format::kR2, InstrClass::kAlu},
    {"mul", Format::kR3, InstrClass::kMul},
    {"divu", Format::kR3, InstrClass::kDiv},
    {"remu", Format::kR3, InstrClass::kDiv},
    {"shl", Format::kR3, InstrClass::kShift},
    {"shr", Format::kR3, InstrClass::kShift},
    {"ashr", Format::kR3, InstrClass::kShift},
    {"addi", Format::kR2I, InstrClass::kAlu},
    {"subi", Format::kR2I, InstrClass::kAlu},
    {"shli", Format::kR2I, InstrClass::kShift},
    {"shri", Format::kR2I, InstrClass::kShift},
    {"eqi", Format::kR2I, InstrClass::kAlu},
    {"ldc", Format::kR1I, InstrClass::kAlu},
    {"ldch", Format::kR1I, InstrClass::kAlu},
    {"ldw", Format::kR2I, InstrClass::kMemory},
    {"stw", Format::kR2I, InstrClass::kMemory},
    {"ldb", Format::kR2I, InstrClass::kMemory},
    {"stb", Format::kR2I, InstrClass::kMemory},
    {"ldwsp", Format::kR1I, InstrClass::kMemory},
    {"stwsp", Format::kR1I, InstrClass::kMemory},
    {"ldawsp", Format::kR1I, InstrClass::kAlu},
    {"extsp", Format::kI, InstrClass::kAlu},
    {"bt", Format::kR1I, InstrClass::kBranch},
    {"bf", Format::kR1I, InstrClass::kBranch},
    {"bu", Format::kI, InstrClass::kBranch},
    {"bl", Format::kI, InstrClass::kBranch},
    {"bau", Format::kR1, InstrClass::kBranch},
    {"ret", Format::kR0, InstrClass::kBranch},
    {"getr", Format::kR1I, InstrClass::kResource},
    {"freer", Format::kR1, InstrClass::kResource},
    {"setd", Format::kR2, InstrClass::kComm},
    {"out", Format::kR2, InstrClass::kComm},
    {"outt", Format::kR2, InstrClass::kComm},
    {"outct", Format::kR1I, InstrClass::kComm},
    {"in", Format::kR2, InstrClass::kComm},
    {"int", Format::kR2, InstrClass::kComm},
    {"chkct", Format::kR1I, InstrClass::kComm},
    {"getst", Format::kR2, InstrClass::kResource},
    {"tinitpc", Format::kR1I, InstrClass::kResource},
    {"tinitsp", Format::kR2, InstrClass::kResource},
    {"tsetr", Format::kR2I, InstrClass::kResource},
    {"msync", Format::kR1, InstrClass::kComm},
    {"ssync", Format::kR0, InstrClass::kComm},
    {"tjoin", Format::kR1, InstrClass::kComm},
    {"texit", Format::kR0, InstrClass::kSystem},
    {"gettime", Format::kR1, InstrClass::kSystem},
    {"timewait", Format::kR1, InstrClass::kSystem},
    {"setfreq", Format::kR1, InstrClass::kSystem},
    {"getpwr", Format::kR1I, InstrClass::kSystem},
    {"printc", Format::kR1, InstrClass::kSystem},
    {"printi", Format::kR1, InstrClass::kSystem},
    {"macc", Format::kR3, InstrClass::kMul},
    {"lmulh", Format::kR3, InstrClass::kMul},
    {"ashri", Format::kR2I, InstrClass::kShift},
    {"sel2", Format::kR3, InstrClass::kComm},
    {"outp", Format::kR2, InstrClass::kComm},
    {"outpt", Format::kR3, InstrClass::kComm},
    {"inp", Format::kR2, InstrClass::kComm},
}};

const std::unordered_map<std::string_view, Opcode>& mnemonic_map() {
  static const auto* map = [] {
    auto* m = new std::unordered_map<std::string_view, Opcode>();
    for (std::size_t i = 0; i < kOpcodeCount; ++i) {
      (*m)[kOpcodeTable[i].mnemonic] = static_cast<Opcode>(i);
    }
    return m;
  }();
  return *map;
}

bool format_has_imm(Format f) {
  return f == Format::kR1I || f == Format::kR2I || f == Format::kI;
}

}  // namespace

const OpcodeInfo& opcode_info(Opcode op) {
  const auto idx = static_cast<std::size_t>(op);
  invariant(idx < kOpcodeCount, "opcode_info: bad opcode");
  return kOpcodeTable[idx];
}

std::optional<Opcode> opcode_from_mnemonic(std::string_view mnemonic) {
  const auto it = mnemonic_map().find(mnemonic);
  if (it == mnemonic_map().end()) return std::nullopt;
  return it->second;
}

std::uint32_t encode(const Instruction& ins) {
  const OpcodeInfo& info = opcode_info(ins.op);
  require(ins.ra < kNumRegisters && ins.rb < kNumRegisters &&
              ins.rc < kNumRegisters,
          "encode: register index out of range");
  std::uint32_t word = static_cast<std::uint32_t>(ins.op) << 24;
  word |= static_cast<std::uint32_t>(ins.ra) << 20;
  word |= static_cast<std::uint32_t>(ins.rb) << 16;
  if (info.format == Format::kR3 || info.format == Format::kR2) {
    word |= static_cast<std::uint32_t>(ins.rc) << 12;
  } else if (format_has_imm(info.format)) {
    require(ins.imm >= -32768 && ins.imm <= 65535,
            "encode: immediate out of 16-bit range");
    word |= static_cast<std::uint32_t>(ins.imm) & 0xFFFF;
  }
  return word;
}

Instruction decode(std::uint32_t word) {
  const std::uint8_t opbyte = static_cast<std::uint8_t>(word >> 24);
  Instruction ins;
  if (opbyte >= kOpcodeCount) {
    // Unknown opcode: decode to NOP carrying the raw byte; the core traps.
    ins.op = Opcode::kNop;
    ins.imm = opbyte;
    ins.rc = 0xF;  // marker distinguishing from a genuine NOP
    return ins;
  }
  ins.op = static_cast<Opcode>(opbyte);
  const OpcodeInfo& info = opcode_info(ins.op);
  ins.ra = static_cast<std::uint8_t>((word >> 20) & 0xF);
  ins.rb = static_cast<std::uint8_t>((word >> 16) & 0xF);
  if (info.format == Format::kR3 || info.format == Format::kR2) {
    ins.rc = static_cast<std::uint8_t>((word >> 12) & 0xF);
  } else if (format_has_imm(info.format)) {
    // Sign-extend 16 bits; LDC and LDCH treat the field as unsigned.
    const std::uint16_t raw = static_cast<std::uint16_t>(word & 0xFFFF);
    if (ins.op == Opcode::kLdc || ins.op == Opcode::kLdch) {
      ins.imm = raw;
    } else {
      ins.imm = static_cast<std::int16_t>(raw);
    }
  }
  return ins;
}

bool registers_valid(const Instruction& ins) {
  const auto ok = [](std::uint8_t r) { return r < kNumRegisters; };
  switch (opcode_info(ins.op).format) {
    case Format::kR0:
    case Format::kI:
      return true;
    case Format::kR1:
    case Format::kR1I:
      return ok(ins.ra);
    case Format::kR2:
    case Format::kR2I:
      return ok(ins.ra) && ok(ins.rb);
    case Format::kR3:
      return ok(ins.ra) && ok(ins.rb) && ok(ins.rc);
  }
  return false;
}

namespace {

// The kPredecodeFast whitelist: instructions whose execute() case only
// reads/writes registers and the pc.  Every entry must return kNext or
// kBranched unconditionally — no traps (divide excluded), no memory (a
// store would invalidate the predecode cache mid-run), no resources,
// console, clock or event scheduling, and no reads of Simulator::now()
// (the fast run advances simulated time lazily, once per run — this is
// why kGettime is absent).
bool fast_opcode(Opcode op) {
  switch (op) {
    case Opcode::kNop:
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kEq:
    case Opcode::kLss:
    case Opcode::kLsu:
    case Opcode::kNot:
    case Opcode::kNeg:
    case Opcode::kMkmsk:
    case Opcode::kMul:
    case Opcode::kMacc:
    case Opcode::kLmulh:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kAshr:
    case Opcode::kAddi:
    case Opcode::kSubi:
    case Opcode::kShli:
    case Opcode::kShri:
    case Opcode::kEqi:
    case Opcode::kAshri:
    case Opcode::kLdc:
    case Opcode::kLdch:
    case Opcode::kLdawsp:
    case Opcode::kExtsp:
    case Opcode::kBt:
    case Opcode::kBf:
    case Opcode::kBu:
    case Opcode::kBl:
    case Opcode::kBau:
    case Opcode::kRet:
      return true;
    default:
      return false;
  }
}

}  // namespace

Predecoded predecode(std::uint32_t word) {
  Predecoded p;
  p.ins = decode(word);
  const OpcodeInfo& info = opcode_info(p.ins.op);
  p.format = static_cast<std::uint8_t>(info.format);
  p.cls = static_cast<std::uint8_t>(info.instr_class);
  if (p.ins.op == Opcode::kNop && p.ins.rc == 0xF) {
    p.flags |= kPredecodeBadOpcode;
  } else if (!registers_valid(p.ins)) {
    p.flags |= kPredecodeBadRegs;
  }
  if (p.ins.op == Opcode::kDivu || p.ins.op == Opcode::kRemu) {
    p.flags |= kPredecodeLongOp;
  }
  if (p.flags == 0 && fast_opcode(p.ins.op)) p.flags |= kPredecodeFast;
  return p;
}

std::string disassemble(const Instruction& ins) {
  const OpcodeInfo& info = opcode_info(ins.op);
  std::string out(info.mnemonic);
  auto reg = [](int r) { return std::string(register_name(r)); };
  switch (info.format) {
    case Format::kR0:
      break;
    case Format::kR1:
      out += " " + reg(ins.ra);
      break;
    case Format::kR2:
      out += " " + reg(ins.ra) + ", " + reg(ins.rb);
      break;
    case Format::kR3:
      out += " " + reg(ins.ra) + ", " + reg(ins.rb) + ", " + reg(ins.rc);
      break;
    case Format::kR1I:
      out += " " + reg(ins.ra) + ", " + std::to_string(ins.imm);
      break;
    case Format::kR2I:
      out += " " + reg(ins.ra) + ", " + reg(ins.rb) + ", " +
             std::to_string(ins.imm);
      break;
    case Format::kI:
      out += " " + std::to_string(ins.imm);
      break;
  }
  return out;
}

std::string_view register_name(int index) {
  static constexpr std::array<std::string_view, kNumRegisters> kNames = {
      "r0", "r1", "r2", "r3", "r4",  "r5",  "r6",
      "r7", "r8", "r9", "r10", "r11", "sp", "lr"};
  invariant(index >= 0 && index < kNumRegisters, "register_name: bad index");
  return kNames[static_cast<std::size_t>(index)];
}

std::optional<int> register_from_name(std::string_view name) {
  for (int i = 0; i < kNumRegisters; ++i) {
    if (register_name(i) == name) return i;
  }
  return std::nullopt;
}

}  // namespace swallow
