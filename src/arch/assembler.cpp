#include "arch/assembler.h"

#include <optional>

#include "arch/isa.h"
#include "common/error.h"
#include "common/strings.h"

namespace swallow {

namespace {

struct Line {
  int number = 0;
  std::string_view text;  // label and comment stripped
};

[[noreturn]] void fail(int line, const std::string& msg) {
  throw Error(strprintf("asm line %d: %s", line, msg.c_str()));
}

std::string_view strip_comment(std::string_view s) {
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '#' || s[i] == ';') return s.substr(0, i);
    if (s[i] == '/' && i + 1 < s.size() && s[i + 1] == '/') return s.substr(0, i);
  }
  return s;
}

bool is_label_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

bool valid_label(std::string_view s) {
  if (s.empty() || std::isdigit(static_cast<unsigned char>(s.front()))) {
    return false;
  }
  for (char c : s) {
    if (!is_label_char(c)) return false;
  }
  return true;
}

/// Operand: either a register, a number, or a symbol reference.
struct Operand {
  enum class Kind { kRegister, kNumber, kSymbol } kind;
  int reg = 0;
  long long number = 0;
  std::string symbol;
};

Operand parse_operand(std::string_view tok, int line) {
  const auto reg = register_from_name(tok);
  if (reg) return Operand{Operand::Kind::kRegister, *reg, 0, {}};
  const char first = tok.empty() ? '\0' : tok.front();
  if (first == '#' || first == '-' || first == '+' ||
      std::isdigit(static_cast<unsigned char>(first))) {
    try {
      return Operand{Operand::Kind::kNumber, 0, parse_int(tok), {}};
    } catch (const Error& e) {
      fail(line, e.what());
    }
  }
  if (valid_label(tok)) {
    return Operand{Operand::Kind::kSymbol, 0, 0, std::string(tok)};
  }
  fail(line, "unrecognised operand '" + std::string(tok) + "'");
}

}  // namespace

std::uint32_t Image::symbol(std::string_view name) const {
  const auto it = symbols.find(name);
  require(it != symbols.end(),
          "Image: unknown symbol '" + std::string(name) + "'");
  return it->second;
}

Image assemble(std::string_view source) {
  // ---- Pass 1: split lines, strip labels, size everything, bind symbols.
  struct Stmt {
    int line;
    std::string_view text;       // instruction or directive text
    std::uint32_t address;       // word index
  };
  Image image;
  std::vector<Stmt> stmts;
  std::uint32_t pc = 0;

  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= source.size()) {
    const std::size_t eol = source.find('\n', pos);
    std::string_view raw =
        source.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                         : eol - pos);
    pos = eol == std::string_view::npos ? source.size() + 1 : eol + 1;
    ++line_no;

    std::string_view text = trim(strip_comment(raw));
    // Peel off any leading labels ("foo: bar: op ...").
    while (true) {
      const std::size_t colon = text.find(':');
      if (colon == std::string_view::npos) break;
      const std::string_view candidate = trim(text.substr(0, colon));
      if (!valid_label(candidate)) break;
      if (image.symbols.count(std::string(candidate))) {
        fail(line_no, "duplicate label '" + std::string(candidate) + "'");
      }
      image.symbols[std::string(candidate)] = pc;
      text = trim(text.substr(colon + 1));
    }
    if (text.empty()) continue;

    // Directives that affect layout are handled in pass 1 so labels bind
    // to the right addresses.
    if (starts_with(text, ".org")) {
      const auto args = split(text.substr(4));
      if (args.size() != 1) fail(line_no, ".org takes one operand");
      const long long target = parse_int(args[0]);
      if (target < static_cast<long long>(pc)) {
        fail(line_no, ".org cannot move backwards");
      }
      pc = static_cast<std::uint32_t>(target);
      continue;
    }
    if (starts_with(text, ".space")) {
      const auto args = split(text.substr(6));
      if (args.size() != 1) fail(line_no, ".space takes one operand");
      stmts.push_back({line_no, text, pc});
      pc += static_cast<std::uint32_t>(parse_int(args[0]));
      continue;
    }
    if (starts_with(text, ".word")) {
      stmts.push_back({line_no, text, pc});
      pc += static_cast<std::uint32_t>(split(text.substr(5)).size());
      continue;
    }
    if (text.front() == '.') {
      fail(line_no, "unknown directive '" + std::string(split(text)[0]) + "'");
    }
    stmts.push_back({line_no, text, pc});
    pc += 1;
  }

  image.words.assign(pc, 0);

  // ---- Pass 2: encode.
  auto symbol_value = [&](const std::string& name, int line) -> std::uint32_t {
    const auto it = image.symbols.find(name);
    if (it == image.symbols.end()) {
      fail(line, "undefined symbol '" + name + "'");
    }
    return it->second;
  };

  for (const Stmt& st : stmts) {
    if (starts_with(st.text, ".space")) continue;  // already zeroed
    if (starts_with(st.text, ".word")) {
      std::uint32_t addr = st.address;
      for (std::string_view tok : split(st.text.substr(5))) {
        const Operand op = parse_operand(tok, st.line);
        std::uint32_t value;
        if (op.kind == Operand::Kind::kNumber) {
          value = static_cast<std::uint32_t>(op.number);
        } else if (op.kind == Operand::Kind::kSymbol) {
          value = symbol_value(op.symbol, st.line) * 4;  // byte address
        } else {
          fail(st.line, ".word operand cannot be a register");
        }
        image.words.at(addr++) = value;
      }
      continue;
    }

    const auto tokens = split(st.text);
    const std::string mnemonic = to_lower(tokens[0]);
    const auto op = opcode_from_mnemonic(mnemonic);
    if (!op) fail(st.line, "unknown mnemonic '" + mnemonic + "'");
    const OpcodeInfo& info = opcode_info(*op);

    std::vector<Operand> operands;
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      operands.push_back(parse_operand(tokens[i], st.line));
    }

    auto want = [&](std::size_t n) {
      if (operands.size() != n) {
        fail(st.line, strprintf("%s expects %zu operand(s), got %zu",
                                mnemonic.c_str(), n, operands.size()));
      }
    };
    auto as_reg = [&](std::size_t i) -> std::uint8_t {
      if (operands[i].kind != Operand::Kind::kRegister) {
        fail(st.line, strprintf("operand %zu of %s must be a register", i + 1,
                                mnemonic.c_str()));
      }
      return static_cast<std::uint8_t>(operands[i].reg);
    };
    // Resolve an immediate operand.  `mode` selects the label convention.
    enum class ImmMode { kPlain, kBranch, kByteAddress, kWordAddress };
    auto as_imm = [&](std::size_t i, ImmMode mode) -> std::int32_t {
      const Operand& o = operands[i];
      long long value;
      if (o.kind == Operand::Kind::kNumber) {
        value = o.number;
      } else if (o.kind == Operand::Kind::kSymbol) {
        const std::uint32_t sym = symbol_value(o.symbol, st.line);
        switch (mode) {
          case ImmMode::kBranch:
            value = static_cast<long long>(sym) -
                    static_cast<long long>(st.address) - 1;
            break;
          case ImmMode::kByteAddress:
            value = static_cast<long long>(sym) * 4;
            break;
          default:
            value = sym;
        }
      } else {
        fail(st.line, strprintf("operand %zu of %s must be an immediate",
                                i + 1, mnemonic.c_str()));
      }
      if (value < -32768 || value > 65535) {
        fail(st.line, strprintf("immediate %lld out of 16-bit range", value));
      }
      return static_cast<std::int32_t>(value);
    };

    const bool is_branch = *op == Opcode::kBt || *op == Opcode::kBf ||
                           *op == Opcode::kBu || *op == Opcode::kBl;
    const ImmMode imm_mode =
        is_branch ? ImmMode::kBranch
        : *op == Opcode::kTinitpc ? ImmMode::kWordAddress
        : (*op == Opcode::kLdc || *op == Opcode::kLdch) ? ImmMode::kByteAddress
                                                        : ImmMode::kPlain;

    Instruction ins;
    ins.op = *op;
    switch (info.format) {
      case Format::kR0:
        want(0);
        break;
      case Format::kR1:
        want(1);
        ins.ra = as_reg(0);
        break;
      case Format::kR2:
        want(2);
        ins.ra = as_reg(0);
        ins.rb = as_reg(1);
        break;
      case Format::kR3:
        want(3);
        ins.ra = as_reg(0);
        ins.rb = as_reg(1);
        ins.rc = as_reg(2);
        break;
      case Format::kR1I:
        want(2);
        ins.ra = as_reg(0);
        ins.imm = as_imm(1, imm_mode);
        break;
      case Format::kR2I:
        want(3);
        ins.ra = as_reg(0);
        ins.rb = as_reg(1);
        ins.imm = as_imm(2, imm_mode);
        break;
      case Format::kI:
        want(1);
        ins.imm = as_imm(0, imm_mode);
        break;
    }
    image.words.at(st.address) = encode(ins);
  }
  return image;
}

std::optional<Image> try_assemble(std::string_view source,
                                  std::string* error) {
  try {
    return assemble(source);
  } catch (const Error& e) {
    if (error != nullptr) *error = e.what();
    return std::nullopt;
  }
}

std::string disassemble_image(const Image& image) {
  std::string out;
  for (std::size_t i = 0; i < image.words.size(); ++i) {
    out += strprintf("%4zu: %s\n", i, disassemble(decode(image.words[i])).c_str());
  }
  return out;
}

}  // namespace swallow
