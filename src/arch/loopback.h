// A zero-latency software fabric connecting chanends directly, used for
// unit-testing core channel semantics in isolation from the full NoC (which
// lives in swallow_noc and adds real link timing, routing and contention).
//
// It parses route headers exactly like a switch and delivers tokens to the
// addressed chanend of any registered core, respecting receiver
// backpressure so blocking semantics are still exercised.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "arch/comm.h"
#include "arch/core.h"

namespace swallow {

class LoopbackFabric {
 public:
  LoopbackFabric();
  ~LoopbackFabric();  // out of line: Port is an implementation detail

  /// Attach every chanend of `core` to the fabric.
  void attach(Core& core);

 private:
  class Port;

  void deliver_ready();

  std::vector<Core*> cores_;
  std::vector<std::unique_ptr<Port>> ports_;
};

}  // namespace swallow
