#include "arch/timing.h"

#include <array>
#include <optional>

#include "arch/isa.h"
#include "common/strings.h"

namespace swallow {

namespace {

using Value = std::optional<std::uint32_t>;

struct State {
  std::array<Value, kNumRegisters> regs{};
  std::uint32_t pc = 0;
};

TimingResult give_up(const TimingResult& partial, std::uint32_t pc,
                     const std::string& why) {
  TimingResult r = partial;
  r.exact = false;
  r.reason = strprintf("at word %u: %s", pc, why.c_str());
  return r;
}

}  // namespace

TimingResult analyze_timing(const Image& image, std::uint32_t entry_word,
                            std::uint64_t max_instructions) {
  State s;
  s.pc = entry_word;
  // sp starts at the top of RAM, as Core::start sets it.
  s.regs[kRegSp] = static_cast<std::uint32_t>(kSramBytesPerCore);

  TimingResult result;
  std::uint64_t pending_gap = 0;  // reissue gap of the previous instruction

  auto known2 = [](Value a, Value b) { return a.has_value() && b.has_value(); };

  while (result.instructions < max_instructions) {
    if (s.pc >= image.words.size()) {
      return give_up(result, s.pc, "execution left the image");
    }
    const Instruction ins = decode(image.words[s.pc]);
    if (ins.op == Opcode::kNop && ins.rc == 0xF) {
      return give_up(result, s.pc, "undefined opcode");
    }

    // The previous instruction's reissue gap only counts if another
    // instruction follows — so add it now, before executing this one.
    result.thread_cycles += pending_gap;
    pending_gap = ins.op == Opcode::kDivu || ins.op == Opcode::kRemu ? 32 : 4;
    ++result.instructions;

    auto& R = s.regs;
    const auto ra = ins.ra, rb = ins.rb, rc = ins.rc;
    const std::uint32_t uimm = static_cast<std::uint32_t>(ins.imm);
    std::uint32_t next_pc = s.pc + 1;

    switch (ins.op) {
      case Opcode::kNop:
        break;
      // ---- Constant-foldable ALU ----
      case Opcode::kAdd:
        R[ra] = known2(R[rb], R[rc]) ? Value(*R[rb] + *R[rc]) : Value();
        break;
      case Opcode::kSub:
        R[ra] = known2(R[rb], R[rc]) ? Value(*R[rb] - *R[rc]) : Value();
        break;
      case Opcode::kAnd:
        R[ra] = known2(R[rb], R[rc]) ? Value(*R[rb] & *R[rc]) : Value();
        break;
      case Opcode::kOr:
        R[ra] = known2(R[rb], R[rc]) ? Value(*R[rb] | *R[rc]) : Value();
        break;
      case Opcode::kXor:
        R[ra] = known2(R[rb], R[rc]) ? Value(*R[rb] ^ *R[rc]) : Value();
        break;
      case Opcode::kEq:
        R[ra] = known2(R[rb], R[rc]) ? Value(*R[rb] == *R[rc]) : Value();
        break;
      case Opcode::kLss:
        R[ra] = known2(R[rb], R[rc])
                    ? Value(static_cast<std::int32_t>(*R[rb]) <
                            static_cast<std::int32_t>(*R[rc]))
                    : Value();
        break;
      case Opcode::kLsu:
        R[ra] = known2(R[rb], R[rc]) ? Value(*R[rb] < *R[rc]) : Value();
        break;
      case Opcode::kNot:
        R[ra] = R[rb] ? Value(~*R[rb]) : Value();
        break;
      case Opcode::kNeg:
        R[ra] = R[rb] ? Value(static_cast<std::uint32_t>(
                            -static_cast<std::int32_t>(*R[rb])))
                      : Value();
        break;
      case Opcode::kMkmsk:
        R[ra] = R[rb] ? Value(*R[rb] >= 32 ? 0xFFFFFFFFu : (1u << *R[rb]) - 1)
                      : Value();
        break;
      case Opcode::kMul:
        R[ra] = known2(R[rb], R[rc]) ? Value(*R[rb] * *R[rc]) : Value();
        break;
      case Opcode::kMacc:
        R[ra] = R[ra] && known2(R[rb], R[rc]) ? Value(*R[ra] + *R[rb] * *R[rc])
                                              : Value();
        break;
      case Opcode::kLmulh:
        R[ra] = known2(R[rb], R[rc])
                    ? Value(static_cast<std::uint32_t>(
                          (static_cast<std::uint64_t>(*R[rb]) * *R[rc]) >> 32))
                    : Value();
        break;
      case Opcode::kDivu:
        if (known2(R[rb], R[rc]) && *R[rc] == 0) {
          return give_up(result, s.pc, "divide by zero");
        }
        R[ra] = known2(R[rb], R[rc]) ? Value(*R[rb] / *R[rc]) : Value();
        break;
      case Opcode::kRemu:
        if (known2(R[rb], R[rc]) && *R[rc] == 0) {
          return give_up(result, s.pc, "divide by zero");
        }
        R[ra] = known2(R[rb], R[rc]) ? Value(*R[rb] % *R[rc]) : Value();
        break;
      case Opcode::kShl:
        R[ra] = known2(R[rb], R[rc])
                    ? Value(*R[rc] >= 32 ? 0 : *R[rb] << *R[rc])
                    : Value();
        break;
      case Opcode::kShr:
        R[ra] = known2(R[rb], R[rc])
                    ? Value(*R[rc] >= 32 ? 0 : *R[rb] >> *R[rc])
                    : Value();
        break;
      case Opcode::kAshr:
        R[ra] = known2(R[rb], R[rc])
                    ? Value(static_cast<std::uint32_t>(
                          static_cast<std::int32_t>(*R[rb]) >>
                          std::min<std::uint32_t>(*R[rc], 31)))
                    : Value();
        break;
      // ---- Immediates ----
      case Opcode::kAddi:
        R[ra] = R[rb] ? Value(*R[rb] + uimm) : Value();
        break;
      case Opcode::kSubi:
        R[ra] = R[rb] ? Value(*R[rb] - uimm) : Value();
        break;
      case Opcode::kShli:
        R[ra] = R[rb] ? Value(ins.imm >= 32 ? 0 : *R[rb] << (ins.imm & 31))
                      : Value();
        break;
      case Opcode::kShri:
        R[ra] = R[rb] ? Value(ins.imm >= 32 ? 0 : *R[rb] >> (ins.imm & 31))
                      : Value();
        break;
      case Opcode::kAshri:
        R[ra] = R[rb] ? Value(static_cast<std::uint32_t>(
                            static_cast<std::int32_t>(*R[rb]) >>
                            std::min(ins.imm, 31)))
                      : Value();
        break;
      case Opcode::kEqi:
        R[ra] = R[rb] ? Value(*R[rb] == uimm) : Value();
        break;
      case Opcode::kLdc:
        R[ra] = uimm & 0xFFFF;
        break;
      case Opcode::kLdch:
        R[ra] = R[ra] ? Value((*R[ra] << 16) | (uimm & 0xFFFF)) : Value();
        break;
      // ---- Memory: addresses may be checked, values become unknown ----
      case Opcode::kLdw:
      case Opcode::kLdb:
      case Opcode::kLdwsp:
        R[ra] = Value();  // loads are not tracked (memory is not modelled)
        break;
      case Opcode::kStw:
      case Opcode::kStb:
      case Opcode::kStwsp:
        break;  // stores do not affect register timing state
      case Opcode::kLdawsp:
        R[ra] = R[kRegSp] ? Value(*R[kRegSp] + uimm * 4) : Value();
        break;
      case Opcode::kExtsp:
        R[kRegSp] = R[kRegSp] ? Value(*R[kRegSp] - uimm * 4) : Value();
        break;
      // ---- Control flow ----
      case Opcode::kBt:
      case Opcode::kBf: {
        if (!R[ra]) {
          return give_up(result, s.pc,
                         "data-dependent branch (condition unknown)");
        }
        const bool taken = (ins.op == Opcode::kBt) == (*R[ra] != 0);
        if (taken) {
          next_pc = static_cast<std::uint32_t>(
              static_cast<std::int64_t>(s.pc) + 1 + ins.imm);
        }
        break;
      }
      case Opcode::kBu:
        next_pc = static_cast<std::uint32_t>(
            static_cast<std::int64_t>(s.pc) + 1 + ins.imm);
        break;
      case Opcode::kBl:
        R[kRegLr] = s.pc + 1;
        next_pc = static_cast<std::uint32_t>(
            static_cast<std::int64_t>(s.pc) + 1 + ins.imm);
        break;
      case Opcode::kBau:
        if (!R[ra]) return give_up(result, s.pc, "indirect branch target unknown");
        next_pc = *R[ra];
        break;
      case Opcode::kRet:
        if (!R[kRegLr]) return give_up(result, s.pc, "return address unknown");
        next_pc = *R[kRegLr];
        break;
      // ---- Terminal ----
      case Opcode::kTexit:
        result.exact = true;
        return result;
      // ---- Not statically timeable ----
      case Opcode::kGetr:
      case Opcode::kFreer:
      case Opcode::kGetst:
      case Opcode::kTinitpc:
      case Opcode::kTinitsp:
      case Opcode::kTsetr:
      case Opcode::kMsync:
      case Opcode::kSsync:
      case Opcode::kTjoin:
        return give_up(result, s.pc,
                       "thread/resource operation: timing depends on other "
                       "threads");
      case Opcode::kSetd:
      case Opcode::kOut:
      case Opcode::kOutt:
      case Opcode::kOutct:
      case Opcode::kIn:
      case Opcode::kInt:
      case Opcode::kChkct:
      case Opcode::kSel2:
        return give_up(result, s.pc,
                       "channel communication: timing depends on the peer");
      case Opcode::kGettime:
      case Opcode::kTimewait:
        return give_up(result, s.pc, "timer operation");
      case Opcode::kOutp:
        break;  // immediate port drive: one issue slot
      case Opcode::kInp:
        R[ra] = Value();  // pin level unknown
        break;
      case Opcode::kOutpt:
        return give_up(result, s.pc, "timed port output waits for the clock");
      case Opcode::kSetfreq:
        return give_up(result, s.pc, "frequency change mid-path");
      case Opcode::kGetpwr:
        R[ra] = Value();
        break;
      case Opcode::kPrintc:
      case Opcode::kPrinti:
        break;
      case Opcode::kOpcodeCount:
        return give_up(result, s.pc, "undefined opcode");
    }
    s.pc = next_pc;
  }
  return give_up(result, s.pc, "instruction limit reached (unbounded loop?)");
}

}  // namespace swallow
