#include "arch/tracing.h"

#include "common/strings.h"

namespace swallow {

std::string format_trace_record(const InstrTraceRecord& rec) {
  return strprintf("%10lld ps  t%d@%04x: %s",
                   static_cast<long long>(rec.time), rec.thread, rec.pc,
                   disassemble(rec.ins).c_str());
}

}  // namespace swallow
