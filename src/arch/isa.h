// The Swallow core instruction set: an XS1-inspired, 32-bit-encoded ISA
// with the properties the paper's platform depends on (§IV.A):
//   * fixed instruction completion time for most instructions,
//   * ISA-level primitives for channel I/O and networking
//     (OUT/IN/OUTT/INT/OUTCT/CHKCT/SETD),
//   * hardware thread creation with no context-switch overhead
//     (GETST/TINITPC/TSETR/MSYNC/SSYNC/TJOIN),
//   * time as an architectural resource (GETTIME/TIMEWAIT), and
//   * the energy-transparency hooks this reproduction adds explicitly:
//     run-time frequency scaling (SETFREQ) and on-slice power readings
//     (GETPWR), which the real platform reaches through memory-mapped
//     peripherals.
//
// Encoding: one 32-bit word per instruction,
//   [opcode:8][ra:4][rb:4][rc:4][unused:12]   for 3-register forms
//   [opcode:8][ra:4][rb:4][imm:16]            for immediate forms.
// The program counter and link register hold word indices.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "energy/instr_energy.h"

namespace swallow {

enum class Opcode : std::uint8_t {
  kNop = 0,
  // ALU register forms.
  kAdd, kSub, kAnd, kOr, kXor, kEq, kLss, kLsu,
  kNot, kNeg, kMkmsk,
  kMul, kDivu, kRemu,
  kShl, kShr, kAshr,
  // Immediates.
  kAddi, kSubi, kShli, kShri, kEqi,
  kLdc, kLdch,
  // Memory (byte addresses in registers; word-scaled immediates for LDW/STW).
  kLdw, kStw, kLdb, kStb,
  kLdwsp, kStwsp, kLdawsp, kExtsp,
  // Control flow (word-relative immediates).
  kBt, kBf, kBu, kBl, kBau, kRet,
  // Resources.
  kGetr, kFreer,
  // Channel communication.
  kSetd, kOut, kOutt, kOutct, kIn, kInt, kChkct,
  // Threads and synchronisation.
  kGetst, kTinitpc, kTinitsp, kTsetr, kMsync, kSsync, kTjoin, kTexit,
  // Timers.
  kGettime, kTimewait,
  // System / energy transparency.
  kSetfreq, kGetpwr, kPrintc, kPrinti,
  // DSP extensions (XS1 long-arithmetic family).
  kMacc,   // ra += rb * rc (multiply-accumulate, low 32 bits)
  kLmulh,  // ra = high 32 bits of rb * rc (unsigned)
  kAshri,  // ra = rb >> imm, arithmetic
  // Event-driven input (simplified XS1 event unit): block until either
  // chanend rb or rc has input; ra = the readable chanend's id.
  kSel2,
  // Timed 1-bit port I/O (the xCORE signature feature; GPIO on the slice
  // edge, §IV.B).
  kOutp,   // drive port ra to rb & 1 now
  kOutpt,  // wait until reference time rc, then drive port ra to rb & 1
  kInp,    // ra = current level of port rb's input
  kOpcodeCount,
};

/// Operand shape of an opcode.
enum class Format {
  kR0,   // no operands
  kR1,   // ra
  kR2,   // ra, rb
  kR3,   // ra, rb, rc
  kR1I,  // ra, imm
  kR2I,  // ra, rb, imm
  kI,    // imm
};

/// Register file indices.  r0..r11 are general purpose; sp and lr are
/// architecturally visible like XS1's.
inline constexpr int kNumRegisters = 14;
inline constexpr int kRegSp = 12;
inline constexpr int kRegLr = 13;

struct OpcodeInfo {
  std::string_view mnemonic;
  Format format;
  InstrClass instr_class;
};

const OpcodeInfo& opcode_info(Opcode op);

/// Look up an opcode by mnemonic (lower case).  Returns nullopt if unknown.
std::optional<Opcode> opcode_from_mnemonic(std::string_view mnemonic);

/// A decoded instruction.
struct Instruction {
  Opcode op = Opcode::kNop;
  std::uint8_t ra = 0;
  std::uint8_t rb = 0;
  std::uint8_t rc = 0;
  std::int32_t imm = 0;  // sign-extended 16-bit where applicable

  bool operator==(const Instruction&) const = default;
};

/// Encode to the 32-bit instruction word.  Validates field ranges.
std::uint32_t encode(const Instruction& ins);

/// Decode a 32-bit word.  Unknown opcodes decode to NOP with `imm` holding
/// the raw opcode byte — the core traps on executing them.
Instruction decode(std::uint32_t word);

/// True when every register operand the opcode's format actually uses
/// names a real register.  The 4-bit fields can encode 14 and 15, which
/// no instruction can name; executing such a word is a bad-opcode trap.
bool registers_valid(const Instruction& ins);

/// Per-word facts the issue path would otherwise recompute on every
/// execution of the same instruction word.  The core's predecode cache
/// (arch/core.cpp) stores one per SRAM word, invalidated on stores.
inline constexpr std::uint8_t kPredecodeBadOpcode = 1u << 0;  // trap at issue
inline constexpr std::uint8_t kPredecodeBadRegs = 1u << 1;    // trap at issue
inline constexpr std::uint8_t kPredecodeLongOp = 1u << 2;     // divide stall
/// Pure register/branch instruction: cannot trap, block, store to memory,
/// touch a resource, print, change the clock, or schedule an event.  The
/// batched issue path interprets runs of these in a tight loop
/// (Core::issue_fast_run) without consulting the event queue.
inline constexpr std::uint8_t kPredecodeFast = 1u << 3;

struct Predecoded {
  Instruction ins{};
  std::uint8_t flags = 0;   // kPredecode* bits
  std::uint8_t format = 0;  // cached opcode_info(ins.op).format
  std::uint8_t cls = 0;     // cached opcode_info(ins.op).instr_class
};

/// Decode plus the per-word validity/format/class facts above.
Predecoded predecode(std::uint32_t word);

/// Disassemble one instruction to assembler syntax.
std::string disassemble(const Instruction& ins);

/// Register name used by the assembler/disassembler (r0..r11, sp, lr).
std::string_view register_name(int index);

/// Parse a register name; nullopt if not a register.
std::optional<int> register_from_name(std::string_view name);

}  // namespace swallow
