#include "sim/event_queue.h"

#include <algorithm>

#include "common/error.h"

namespace swallow {

std::uint32_t EventQueue::alloc_slot() {
  if (free_head_ != kNoFree) {
    const std::uint32_t idx = free_head_;
    free_head_ = slots_[idx].next_free;
    slots_[idx].next_free = kNoFree;
    return idx;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::free_slot(std::uint32_t idx) {
  Slot& s = slots_[idx];
  s.fn.reset();
  s.desc = EventDesc{};
  ++s.gen;  // invalidate outstanding handles
  s.next_free = free_head_;
  free_head_ = idx;
}

EventHandle EventQueue::schedule(TimePs when, TimePs stamp, std::uint64_t tie,
                                 Callback cb, const EventDesc& desc) {
  const std::uint32_t idx = alloc_slot();
  Slot& s = slots_[idx];
  s.fn = std::move(cb);
  s.desc = desc;
  ++s.arm_gen;  // monotone per slot; never reset, so recycled slots can't
                // resurrect stale heap nodes
  heap_.push_back(Node{when, stamp, tie, idx, s.arm_gen});
  std::push_heap(heap_.begin(), heap_.end(), later);
  ++live_count_;
  return EventHandle(idx, s.gen);
}

bool EventQueue::rearm(EventHandle h, TimePs when, TimePs stamp,
                       std::uint64_t tie) {
  if (!h.valid() || h.slot_ >= slots_.size()) return false;
  Slot& s = slots_[h.slot_];
  if (s.gen != h.gen_) return false;
  ++s.arm_gen;  // the old heap node becomes a tombstone
  heap_.push_back(Node{when, stamp, tie, h.slot_, s.arm_gen});
  std::push_heap(heap_.begin(), heap_.end(), later);
  ++tombstones_;
  maybe_compact();
  return true;
}

void EventQueue::cancel(EventHandle h) {
  if (!h.valid() || h.slot_ >= slots_.size()) return;
  Slot& s = slots_[h.slot_];
  if (s.gen != h.gen_) return;  // already fired or cancelled
  ++s.arm_gen;
  free_slot(h.slot_);
  --live_count_;
  ++tombstones_;
  maybe_compact();
}

void EventQueue::drop_stale() const {
  while (!heap_.empty()) {
    const Node& top = heap_.front();
    if (slots_[top.slot].arm_gen == top.arm_gen) return;
    std::pop_heap(heap_.begin(), heap_.end(), later);
    heap_.pop_back();
    --tombstones_;
  }
}

void EventQueue::maybe_compact() {
  if (tombstones_ <= live_count_ || tombstones_ < kCompactMin) return;
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const Node& n) {
                               return slots_[n.slot].arm_gen != n.arm_gen;
                             }),
              heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), later);
  tombstones_ = 0;
}

TimePs EventQueue::next_time() const {
  drop_stale();
  return heap_.empty() ? kTimeNever : heap_.front().time;
}

bool EventQueue::next_key(Key& out) const {
  drop_stale();
  if (heap_.empty()) return false;
  const Node& top = heap_.front();
  out = Key{top.time, top.stamp, top.tie};
  return true;
}

EventQueue::Fired EventQueue::pop() {
  drop_stale();
  invariant(!heap_.empty(), "EventQueue::pop on empty queue");
  const Node top = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), later);
  heap_.pop_back();
  Fired fired{top.time, std::move(slots_[top.slot].fn)};
  free_slot(top.slot);
  --live_count_;
  return fired;
}

}  // namespace swallow
