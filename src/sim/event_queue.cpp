#include "sim/event_queue.h"

#include <algorithm>

#include "common/error.h"

namespace swallow {

EventHandle EventQueue::schedule(TimePs when, Callback cb) {
  const std::uint64_t id = next_seq_++;
  heap_.push(Entry{when, id, id, std::move(cb)});
  ++live_count_;
  return EventHandle(id);
}

void EventQueue::cancel(EventHandle h) {
  if (!h.valid()) return;
  // We cannot know here whether the event is still pending; drop_cancelled
  // reconciles.  Track it and adjust the live count optimistically — pop()
  // and next_time() skip stale ids.
  cancelled_.push_back(h.id_);
  if (live_count_ > 0) --live_count_;
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty()) {
    const auto it = std::find(cancelled_.begin(), cancelled_.end(), heap_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

TimePs EventQueue::next_time() const {
  drop_cancelled();
  return heap_.empty() ? kTimeNever : heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled();
  invariant(!heap_.empty(), "EventQueue::pop on empty queue");
  // priority_queue::top() returns const&; the callback must be moved out, so
  // const_cast is confined to this one extraction point.
  Entry& top = const_cast<Entry&>(heap_.top());
  Fired fired{top.time, std::move(top.callback)};
  heap_.pop();
  --live_count_;
  return fired;
}

}  // namespace swallow
