#include "sim/simulator.h"

#include "common/check.h"
#include "common/error.h"

namespace swallow {

EventHandle Simulator::after(TimePs delay, EventQueue::Callback cb) {
  require(delay >= 0, "Simulator::after: negative delay");
  return queue_.schedule(now_ + delay, now_, next_tie(), std::move(cb));
}

EventHandle Simulator::after(TimePs delay, const EventDesc& desc,
                             EventQueue::Callback cb) {
  require(delay >= 0, "Simulator::after: negative delay");
  return queue_.schedule(now_ + delay, now_, next_tie(), std::move(cb), desc);
}

EventHandle Simulator::at(TimePs when, EventQueue::Callback cb) {
  require(when >= now_, "Simulator::at: time in the past");
  return queue_.schedule(when, now_, next_tie(), std::move(cb));
}

EventHandle Simulator::at(TimePs when, const EventDesc& desc,
                          EventQueue::Callback cb) {
  require(when >= now_, "Simulator::at: time in the past");
  return queue_.schedule(when, now_, next_tie(), std::move(cb), desc);
}

bool Simulator::rearm(EventHandle h, TimePs when) {
  require(when >= now_, "Simulator::rearm: time in the past");
  return queue_.rearm(h, when, now_, next_tie());
}

EventHandle Simulator::inject(TimePs when, TimePs stamp, std::uint64_t tie,
                              EventQueue::Callback cb) {
  require(when > now_, "Simulator::inject: not in the receiver's future");
  return queue_.schedule(when, stamp, tie, std::move(cb));
}

EventHandle Simulator::inject(TimePs when, TimePs stamp, std::uint64_t tie,
                              const EventDesc& desc, EventQueue::Callback cb) {
  require(when > now_, "Simulator::inject: not in the receiver's future");
  return queue_.schedule(when, stamp, tie, std::move(cb), desc);
}

std::uint64_t Simulator::run_until(TimePs deadline) {
  const TimePs prev_horizon = horizon_;
  horizon_ = deadline;
  std::uint64_t fired = 0;
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    auto ev = queue_.pop();
    invariant(ev.time >= now_, "event scheduled in the past");
    SWALLOW_CHECK_PROBE(ev.time >= last_dispatch_time_,
                        "event dispatch time went backwards");
    now_ = ev.time;
    last_dispatch_time_ = ev.time;
    ev.callback();
    ++fired;
    ++dispatched_;
  }
  horizon_ = prev_horizon;
  if (now_ < deadline) now_ = deadline;
  return fired;
}

std::uint64_t Simulator::run() {
  const TimePs prev_horizon = horizon_;
  horizon_ = kTimeNever;
  std::uint64_t fired = 0;
  while (!queue_.empty()) {
    auto ev = queue_.pop();
    invariant(ev.time >= now_, "event scheduled in the past");
    SWALLOW_CHECK_PROBE(ev.time >= last_dispatch_time_,
                        "event dispatch time went backwards");
    now_ = ev.time;
    last_dispatch_time_ = ev.time;
    ev.callback();
    ++fired;
    ++dispatched_;
  }
  horizon_ = prev_horizon;
  return fired;
}

void Simulator::warp_to(TimePs t) {
  require(t >= now_, "Simulator::warp_to: time in the past");
  invariant(queue_.empty() || queue_.next_time() >= t,
            "Simulator::warp_to: an event is pending before t");
  now_ = t;
}

void Simulator::dispatch_one(TimePs horizon_t) {
  const TimePs prev_horizon = horizon_;
  horizon_ = horizon_t;
  auto ev = queue_.pop();
  invariant(ev.time >= now_, "event scheduled in the past");
  SWALLOW_CHECK_PROBE(ev.time >= last_dispatch_time_,
                      "event dispatch time went backwards");
  now_ = ev.time;
  last_dispatch_time_ = ev.time;
  ev.callback();
  ++dispatched_;
  horizon_ = prev_horizon;
}

void Simulator::advance_in_dispatch(TimePs t) {
  invariant(t >= now_, "advance_in_dispatch: time in the past");
  invariant(t <= horizon_, "advance_in_dispatch: beyond the run horizon");
  invariant(queue_.empty() || t < queue_.next_time(),
            "advance_in_dispatch: an event is pending at or before t");
  now_ = t;
  last_dispatch_time_ = t;
}

void Simulator::advance_to(TimePs when) {
  require(when >= now_, "advance_to: time in the past");
  run_until(when);
}

}  // namespace swallow
