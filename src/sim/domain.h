// Event domains for the parallel sharded engine.
//
// A Domain is one independently-pumped Simulator: the parallel engine gives
// every slice (and its attached bridge, if any) a domain of its own and
// advances all domains in lockstep quanta bounded by the minimum
// cross-domain link latency (the lookahead).  Events whose effects cross a
// domain boundary are never scheduled directly into the foreign queue;
// they are handed to a DomainPost, buffered, and injected at the next
// quantum barrier carrying the sender's ordering key — which is what makes
// a parallel run bit-identical to a sequential one (see event_queue.h).
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "sim/simulator.h"

namespace swallow {

class Domain {
 public:
  explicit Domain(int id) : id_(id) {
    sim_.set_lane(static_cast<std::uint16_t>(id));
  }

  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;

  int id() const { return id_; }
  Simulator& sim() { return sim_; }
  const Simulator& sim() const { return sim_; }

 private:
  int id_;
  Simulator sim_;
};

/// Posting interface a model uses to hand an event to another domain.
/// `stamp`/`tie` are the sender's ordering key, drawn exactly where a
/// same-domain schedule would have drawn them (Simulator::draw_tie), so the
/// event sorts into the receiving queue as the sequential engine would have
/// sorted it.
class DomainPost {
 public:
  virtual ~DomainPost() = default;
  /// `desc` is the event's snapshot descriptor (sim/event_desc.h); it rides
  /// the mailbox so a cross-domain event buffered or already injected at a
  /// checkpoint serializes like any locally scheduled one.
  virtual void post(TimePs fire_at, TimePs stamp, std::uint64_t tie,
                    EventFn cb, const EventDesc& desc = EventDesc{}) = 0;
};

/// Shared drift accounting for every relaxed mailbox of one engine:
/// stragglers are crossing events whose fire time had already passed in
/// the receiver when the barrier delivered them (the bounded-sync mode's
/// accuracy cost), and max_skew_ps is the largest clamp applied.
struct CrossingRelax {
  std::uint64_t stragglers = 0;
  TimePs max_skew_ps = 0;
};

/// A single-writer mailbox for one (source domain -> destination domain)
/// direction.  post() is called only from the source domain's worker while
/// a quantum runs; drain() is called only from the barrier's serial phase.
/// The quantum barrier's release/acquire edges order the two, so no lock is
/// needed.
class CrossingMailbox final : public DomainPost {
 public:
  explicit CrossingMailbox(Simulator& dst) : dst_(dst) {}

  void post(TimePs fire_at, TimePs stamp, std::uint64_t tie, EventFn cb,
            const EventDesc& desc = EventDesc{}) override;

  /// Inject every buffered event into the destination queue.  Returns the
  /// number delivered.
  std::size_t drain();

  /// Bounded-sync mode: quanta may outrun the lookahead contract, so a
  /// buffered event's fire time can land at or before the receiver's
  /// barrier-clamped clock.  When relaxed, drain() clamps such events to
  /// the receiver's next representable instant (now + 1) instead of
  /// tripping inject()'s exactness assertion, and records the drift in
  /// `relax`.  Never enabled in exact mode.
  void set_relaxed(CrossingRelax* relax) { relax_ = relax; }

 private:
  struct Pending {
    TimePs fire_at;
    TimePs stamp;
    std::uint64_t tie;
    EventFn cb;
    EventDesc desc;
  };

  Simulator& dst_;
  std::vector<Pending> buffer_;
  CrossingRelax* relax_ = nullptr;
};

}  // namespace swallow
