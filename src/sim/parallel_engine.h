// Conservative parallel driver for a set of event domains.
//
// Chandy–Misra-style synchronization with a fixed lower bound on
// cross-domain latency (the lookahead L): if every event that crosses a
// domain boundary takes at least L picoseconds to arrive, then all domains
// may safely run ahead of each other within a quantum of L — nothing a peer
// does inside the current quantum can affect this domain before the
// quantum ends.  The engine therefore advances all domains to a common
// target time in parallel, meets at a barrier, exchanges the buffered
// cross-domain events (CrossingMailbox), and picks the next target
//
//     target' = min(deadline, M + L - 1),   M = earliest pending event
//
// so idle stretches cost one quantum regardless of length.  Within a
// quantum each domain is an ordinary sequential Simulator — determinism is
// inherited, and the stamped ordering keys (event_queue.h) make the merged
// execution bit-identical to the single-queue sequential engine, for any
// worker count.
//
// Threading: `workers` persistent threads including the caller.  Workers
// own domains round-robin, park on an epoch futex between quanta, and the
// caller performs the serial barrier phase (drain mailboxes, boundary
// tasks, next target).  All cross-thread visibility rides the epoch/done
// release-acquire edges; domain state needs no locks.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/units.h"
#include "sim/domain.h"

namespace swallow {

class ParallelEngine {
 public:
  struct Stats {
    std::uint64_t quanta = 0;    // barrier synchronizations performed
    std::uint64_t messages = 0;  // cross-domain events delivered
  };

  /// `domains` are borrowed and must outlive the engine.  `workers` in
  /// [1, domains.size()] counts the calling thread; `lookahead` >= 1 is
  /// the minimum cross-domain event latency in picoseconds.
  ParallelEngine(std::vector<Domain*> domains, int workers, TimePs lookahead);
  ~ParallelEngine();

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  /// The mailbox carrying events from `src` into `dst` (created on first
  /// use).  Install the returned post on every model path that crosses the
  /// two domains in that direction.  Call only before run_until.
  DomainPost* crossing(Domain& src, Domain& dst);

  /// Run `task(now)` in the serial phase of every quantum barrier —
  /// whole-machine observers (watchdog, telemetry pulls) use this instead
  /// of scheduling events, since no single domain may scan the others
  /// mid-quantum.
  void add_boundary_task(std::function<void(TimePs)> task);

  /// Advance every domain to `deadline` (events at the deadline fire;
  /// every domain's clock ends clamped exactly there, matching sequential
  /// Simulator::run_until).
  void run_until(TimePs deadline);

  TimePs now() const { return now_; }
  /// Restore the barrier clock from a snapshot (src/snap/).  Call only
  /// between run_until calls, with every domain clock already restored to
  /// the same time; quantum targets are recomputed from scratch on the next
  /// run_until, so no other engine state needs reconstruction.
  void restore_clock(TimePs now) { now_ = now; }
  TimePs lookahead() const { return lookahead_; }
  int workers() const { return workers_; }
  const Stats& stats() const { return stats_; }

 private:
  void worker_loop(int w);
  void run_owned(int w, TimePs target);
  TimePs next_target(TimePs deadline) const;

  std::vector<Domain*> domains_;
  std::map<std::pair<int, int>, std::unique_ptr<CrossingMailbox>> mailboxes_;
  std::vector<std::function<void(TimePs)>> boundary_tasks_;
  TimePs lookahead_;
  TimePs now_ = 0;
  int workers_;
  int spin_rounds_;  // 0 when the host can't run every worker at once
  Stats stats_;

  std::vector<std::thread> threads_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<TimePs> target_{0};
  std::atomic<int> done_{0};
  std::atomic<bool> shutdown_{false};
};

}  // namespace swallow
