// Conservative parallel driver for a set of event domains, with an opt-in
// bounded-skew (relaxed) synchronization mode.
//
// Exact mode is Chandy–Misra-style synchronization with a fixed lower
// bound on cross-domain latency (the lookahead L): if every event that
// crosses a domain boundary takes at least L picoseconds to arrive, then
// all domains may safely run ahead of each other within a quantum of L —
// nothing a peer does inside the current quantum can affect this domain
// before the quantum ends.  The engine therefore advances all domains to a
// common target time in parallel, meets at a barrier, exchanges the
// buffered cross-domain events (CrossingMailbox), and picks the next target
//
//     target' = min(deadline, M + L - 1),   M = earliest pending event
//
// so idle stretches cost one quantum regardless of length.  Within a
// quantum each domain is an ordinary sequential Simulator — determinism is
// inherited, and the stamped ordering keys (event_queue.h) make the merged
// execution bit-identical to the single-queue sequential engine, for any
// worker count.
//
// Bounded mode (SyncConfig::bounded, Graphite-style lax synchronization)
// widens the quantum beyond the lookahead by an adaptive budget of up to N
// simulated core cycles: domains may transiently run up to that far ahead
// of the slowest peer, and a crossing event whose wire latency the quantum
// outran is delivered one picosecond after the receiver's barrier clock
// instead (CrossingMailbox::set_relaxed) — trading exact event order for
// fewer barriers.  The budget starts small, doubles after every quantum
// that crossed no traffic, and snaps back on mailbox activity, so idle or
// compute-bound machines pay almost no barriers while chatty phases fall
// back toward exactness.  bounded with N = 0 never widens a quantum and
// never clamps, so it remains bit-identical to exact mode.  Bounded mode
// stays deterministic for any worker count — targets, clamps and the
// budget evolve only from serial-phase state — it just deviates (within
// the measured bounds in BENCH_PR10.json) from the exact event order.
//
// Hub domains: with finer-than-slice sharding (per-chip or per-core
// partitions), slice-wide agents — the ADC sampler, loss integration,
// telemetry — keep a per-slice "hub" domain whose events must observe all
// of the slice's partitions at one consistent instant.  Hubs are never run
// in the parallel phase; instead their earliest event time fences the
// quantum, and merge_at() dispatches everything at that instant across
// every domain in exact global (time, stamp, tie) order.  With no hubs
// (per-slice sharding) the engine behaves exactly as before.
//
// Threading: `workers` persistent threads including the caller.  Workers
// own partition domains round-robin, park on an epoch futex between
// quanta, and the caller performs the serial barrier phase (drain
// mailboxes, hub fences, boundary tasks, next target).  All cross-thread
// visibility rides the epoch/done release-acquire edges; domain state
// needs no locks.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/units.h"
#include "sim/domain.h"

namespace swallow {

class ParallelEngine {
 public:
  struct Stats {
    std::uint64_t quanta = 0;    // barrier synchronizations performed
    std::uint64_t messages = 0;  // cross-domain events delivered
    std::uint64_t merges = 0;    // hub fences (serial global-order steps)
  };

  /// Relaxed-synchronization policy.  `bounded` false is the exact
  /// conservative engine; true allows quanta of up to
  /// lookahead + width * cycle_ps where the adaptive width never exceeds
  /// `bound_cycles` (N).  N = 0 keeps the quantum at the lookahead, so it
  /// is bit-identical to exact mode.
  struct SyncConfig {
    bool bounded = false;
    int bound_cycles = 0;
    TimePs cycle_ps = 2000;  // one 500 MHz core cycle
  };

  /// `partitions` and `hubs` are borrowed and must outlive the engine.
  /// `workers` in [1, partitions.size()] counts the calling thread;
  /// `lookahead` >= 1 is the minimum cross-domain event latency in
  /// picoseconds.  Hub domains are optional (empty at per-slice
  /// granularity); they are advanced only at serial fences.
  ParallelEngine(std::vector<Domain*> partitions, std::vector<Domain*> hubs,
                 int workers, TimePs lookahead, SyncConfig sync);
  /// Exact-mode engine over partition domains only (the pre-sync API).
  ParallelEngine(std::vector<Domain*> domains, int workers, TimePs lookahead)
      : ParallelEngine(std::move(domains), {}, workers, lookahead,
                       SyncConfig{}) {}
  ~ParallelEngine();

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  /// The mailbox carrying events from `src` into `dst` (created on first
  /// use).  Install the returned post on every model path that crosses the
  /// two domains in that direction.  Call only before run_until.
  DomainPost* crossing(Domain& src, Domain& dst);

  /// Run `task(now)` in the serial phase of every quantum barrier —
  /// whole-machine observers (watchdog, telemetry pulls) use this instead
  /// of scheduling events, since no single domain may scan the others
  /// mid-quantum.
  void add_boundary_task(std::function<void(TimePs)> task);

  /// Advance every domain to `deadline` (events at the deadline fire;
  /// every domain's clock ends clamped exactly there, matching sequential
  /// Simulator::run_until).
  void run_until(TimePs deadline);

  TimePs now() const { return now_; }
  /// Restore the barrier clock from a snapshot (src/snap/).  Call only
  /// between run_until calls, with every domain clock already restored to
  /// the same time; quantum targets are recomputed from scratch on the next
  /// run_until, so no other engine state needs reconstruction.
  void restore_clock(TimePs now) { now_ = now; }
  TimePs lookahead() const { return lookahead_; }
  int workers() const { return workers_; }
  const Stats& stats() const { return stats_; }
  const SyncConfig& sync() const { return sync_; }
  /// True when this engine may deviate from the exact event order (bounded
  /// mode with a nonzero cycle budget).
  bool relaxed() const { return sync_.bounded && sync_.bound_cycles > 0; }
  /// Drift accounting accumulated by relaxed crossing deliveries.
  const CrossingRelax& relax() const { return relax_; }

  // ----- Snapshot support (src/snap/) -----
  /// Adaptive-budget position and cumulative counters, saved with a
  /// snapshot so a resumed bounded run keeps the same quantum evolution
  /// and reports the same drift totals as an uninterrupted one.
  struct SyncState {
    std::uint64_t width = 0;
    std::uint64_t quanta = 0;
    std::uint64_t messages = 0;
    std::uint64_t merges = 0;
    std::uint64_t stragglers = 0;
    std::uint64_t max_skew_ps = 0;
  };
  SyncState sync_state() const {
    return SyncState{static_cast<std::uint64_t>(width_), stats_.quanta,
                     stats_.messages, stats_.merges, relax_.stragglers,
                     static_cast<std::uint64_t>(relax_.max_skew_ps)};
  }
  void restore_sync_state(const SyncState& s) {
    width_ = static_cast<int>(s.width);
    stats_.quanta = s.quanta;
    stats_.messages = s.messages;
    stats_.merges = s.merges;
    relax_.stragglers = s.stragglers;
    relax_.max_skew_ps = static_cast<TimePs>(s.max_skew_ps);
  }

 private:
  void worker_loop(int w);
  void run_owned(int w, TimePs target);
  /// One parallel phase: all partition domains to `target`, barrier.
  void run_quantum(TimePs target);
  /// Inject all buffered crossings; returns the number delivered.
  std::size_t drain_mailboxes();
  /// Dispatch every event at exactly `t` across partitions and hubs in
  /// global (stamp, tie) order (all domain clocks end warped to t).
  void merge_at(TimePs t);
  /// Grow or snap the adaptive cycle budget from this quantum's traffic.
  void adapt_width(std::size_t delivered);
  TimePs next_target(TimePs deadline) const;
  TimePs next_hub_time() const;
  /// Current quantum span beyond a pending event: lookahead plus the
  /// bounded-mode cycle budget.
  TimePs span() const;

  std::vector<Domain*> domains_;  // partitions: run in the parallel phase
  std::vector<Domain*> hubs_;     // per-slice agents: serial fences only
  std::map<std::pair<int, int>, std::unique_ptr<CrossingMailbox>> mailboxes_;
  std::vector<std::function<void(TimePs)>> boundary_tasks_;
  TimePs lookahead_;
  TimePs now_ = 0;
  int workers_;
  int spin_rounds_;  // 0 when the host can't run every worker at once
  SyncConfig sync_;
  int width_ = 0;       // adaptive budget, in cycles (bounded mode only)
  int width_base_ = 0;  // snap-back floor: max(1, N/8)
  Stats stats_;
  CrossingRelax relax_;

  std::vector<std::thread> threads_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<TimePs> target_{0};
  std::atomic<int> done_{0};
  std::atomic<bool> shutdown_{false};
};

}  // namespace swallow
