// A clock domain: converts between cycles and picoseconds at a mutable
// frequency.  Frequency changes (dynamic frequency scaling, §III.B of the
// paper) preserve phase: cycle counting continues from the moment of the
// change at the new period.
#pragma once

#include <cstdint>

#include "common/error.h"
#include "common/stateio.h"
#include "common/units.h"

namespace swallow {

class Clock {
 public:
  /// The XS1-L reference clock is 100 MHz regardless of core frequency; the
  /// core clock defaults to the 500 MHz maximum.
  explicit Clock(MegaHertz f_mhz = 500.0) { set_frequency(0, f_mhz); }

  MegaHertz frequency() const { return freq_mhz_; }
  TimePs period() const { return period_ps_; }

  /// Change frequency at time `now` (phase-preserving).
  void set_frequency(TimePs now, MegaHertz f_mhz) {
    require(f_mhz > 0, "Clock: frequency must be positive");
    epoch_cycle_ = cycles_at(now);
    epoch_time_ = now;
    freq_mhz_ = f_mhz;
    period_ps_ = period_ps(f_mhz);
  }

  /// Whole cycles elapsed by absolute time `t` (t >= last frequency change).
  std::int64_t cycles_at(TimePs t) const {
    if (t < epoch_time_) return epoch_cycle_;
    return epoch_cycle_ + (t - epoch_time_) / period_ps_;
  }

  /// Absolute time of cycle boundary `c`.
  TimePs time_of_cycle(std::int64_t c) const {
    require(c >= epoch_cycle_, "Clock: cycle before current epoch");
    return epoch_time_ + (c - epoch_cycle_) * period_ps_;
  }

  /// Duration of `n` cycles at the current frequency.
  TimePs span(std::int64_t n) const { return n * period_ps_; }

  /// Earliest cycle boundary at or after time `t`.
  TimePs align_up(TimePs t) const {
    const std::int64_t c = cycles_at(t);
    const TimePs at = time_of_cycle(c);
    return at >= t ? at : time_of_cycle(c + 1);
  }

  void save_state(StateWriter& w) const {
    w.f64(freq_mhz_);
    w.i64(period_ps_);
    w.i64(epoch_cycle_);
    w.i64(epoch_time_);
  }
  void load_state(StateReader& r) {
    freq_mhz_ = r.f64();
    period_ps_ = r.i64();
    epoch_cycle_ = r.i64();
    epoch_time_ = r.i64();
  }

 private:
  MegaHertz freq_mhz_ = 500.0;
  TimePs period_ps_ = 2000;
  std::int64_t epoch_cycle_ = 0;
  TimePs epoch_time_ = 0;
};

}  // namespace swallow
