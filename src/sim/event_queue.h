// Deterministic discrete-event queue.
//
// Events are ordered by (time, insertion sequence) so simultaneous events
// fire in the order they were scheduled — essential for the reproducible,
// time-deterministic behaviour Swallow is built around.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.h"

namespace swallow {

/// Handle used to cancel a pending event.  Default-constructed handles are
/// inert.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return id_ != 0; }

 private:
  friend class EventQueue;
  explicit EventHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

/// Min-heap of timed callbacks with stable ordering and O(log n) cancel
/// (lazy deletion).
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `cb` to fire at absolute time `when`.
  EventHandle schedule(TimePs when, Callback cb);

  /// Cancel a previously scheduled event.  Cancelling an already-fired or
  /// already-cancelled event is a harmless no-op.
  void cancel(EventHandle h);

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }

  /// Time of the earliest pending event; kTimeNever when empty.
  TimePs next_time() const;

  /// Pop and return the earliest event.  Must not be called when empty.
  struct Fired {
    TimePs time;
    Callback callback;
  };
  Fired pop();

 private:
  struct Entry {
    TimePs time;
    std::uint64_t seq;  // tie-break: schedule order
    std::uint64_t id;
    Callback callback;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  mutable std::vector<std::uint64_t> cancelled_;  // sorted lazily
  std::uint64_t next_seq_ = 1;
  std::size_t live_count_ = 0;
};

}  // namespace swallow
