// Deterministic discrete-event queue.
//
// Events are ordered by a three-part key (fire_time, stamp_time, tie):
//   fire_time  — when the event fires;
//   stamp_time — the scheduler's clock when the event was scheduled;
//   tie        — (lane << 48) | sequence, a per-scheduler monotone counter.
// With a single scheduler (one lane, one counter) this reduces exactly to
// the classic (time, insertion-sequence) order — simultaneous events fire in
// the order they were scheduled, the reproducible behaviour Swallow is built
// around.  With several schedulers (the parallel engine's per-slice
// domains), the stamped key lets cross-domain messages re-enter a foreign
// queue carrying the sender's key, so the merged firing order matches what
// one global queue would have produced.
//
// Storage is a slot array (stable callbacks, freelist-recycled) indexed by a
// binary heap of 32-byte nodes.  cancel() and rearm() are O(1): they bump
// the slot's arm generation, turning the heap node into a tombstone that
// pop()/next_time() discard lazily; when tombstones outnumber live entries
// the heap is compacted in place, so memory stays bounded under
// cancel-heavy workloads (e.g. a core re-arming its issue event every
// instruction).
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "sim/event_desc.h"
#include "sim/event_fn.h"

namespace swallow {

/// Handle used to cancel or re-arm a pending event.  Default-constructed
/// handles are inert.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return gen_ != 0; }

 private:
  friend class EventQueue;
  EventHandle(std::uint32_t slot, std::uint32_t gen)
      : slot_(slot), gen_(gen) {}
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

/// Min-heap of timed callbacks with stable ordering, O(1) cancel/rearm and
/// bounded tombstone growth.
class EventQueue {
 public:
  using Callback = EventFn;

  /// Schedule `cb` to fire at absolute time `when` with an explicit ordering
  /// key (see file comment).  `desc` is the event's serializable descriptor
  /// (sim/event_desc.h); events scheduled without one cannot be
  /// snapshotted.
  EventHandle schedule(TimePs when, TimePs stamp, std::uint64_t tie,
                       Callback cb, const EventDesc& desc = EventDesc{});

  /// Convenience form for single-scheduler use: stamp 0, insertion-order tie.
  EventHandle schedule(TimePs when, Callback cb) {
    return schedule(when, 0, fallback_tie_++, std::move(cb));
  }

  /// Move a pending event to a new fire time and ordering key without
  /// touching its callback.  Returns false when the handle no longer refers
  /// to a pending event (already fired or cancelled); the caller must then
  /// schedule afresh.  The handle remains valid on success.
  bool rearm(EventHandle h, TimePs when, TimePs stamp, std::uint64_t tie);

  /// Cancel a previously scheduled event.  Cancelling an already-fired or
  /// already-cancelled event is a harmless no-op.
  void cancel(EventHandle h);

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }

  /// Stale heap nodes awaiting lazy removal (cancelled or re-armed events).
  /// Bounded: compaction runs once tombstones outnumber live entries.
  std::size_t tombstones() const { return tombstones_; }

  /// Time of the earliest pending event; kTimeNever when empty.
  TimePs next_time() const;

  /// Full ordering key of the earliest pending event.  Returns false when
  /// the queue is empty.  The parallel engine's hub-merge step uses this to
  /// interleave several queues in exact global (time, stamp, tie) order.
  struct Key {
    TimePs time;
    TimePs stamp;
    std::uint64_t tie;
  };
  bool next_key(Key& out) const;

  /// Pop and return the earliest event.  Must not be called when empty.
  struct Fired {
    TimePs time;
    Callback callback;
  };
  Fired pop();

  // ----- Snapshot support (src/snap/) -----
  /// Visit every live (non-tombstoned) entry with its exact ordering key
  /// and descriptor.  Order is unspecified; snapshot code sorts by key.
  template <typename Fn>
  void for_each_live(Fn&& fn) const {
    for (const Node& n : heap_) {
      if (slots_[n.slot].arm_gen != n.arm_gen) continue;  // tombstone
      fn(LiveEvent{n.time, n.stamp, n.tie, slots_[n.slot].desc});
    }
  }

  /// The descriptor carried by a pending event (default-constructed when
  /// the handle no longer refers to one).
  EventDesc desc_of(EventHandle h) const {
    if (!h.valid() || h.slot_ >= slots_.size() ||
        slots_[h.slot_].gen != h.gen_) {
      return EventDesc{};
    }
    return slots_[h.slot_].desc;
  }

  /// The convenience-schedule tie counter, saved and restored with the
  /// queue so resumed runs keep drawing the same keys.
  std::uint64_t fallback_tie() const { return fallback_tie_; }
  void set_fallback_tie(std::uint64_t tie) { fallback_tie_ = tie; }

 private:
  struct Node {
    TimePs time;
    TimePs stamp;
    std::uint64_t tie;
    std::uint32_t slot;
    std::uint32_t arm_gen;
  };
  // std::push_heap builds a max-heap; ordering by "fires later" yields the
  // min-heap we want.
  static bool later(const Node& a, const Node& b) {
    if (a.time != b.time) return a.time > b.time;
    if (a.stamp != b.stamp) return a.stamp > b.stamp;
    return a.tie > b.tie;
  }

  static constexpr std::uint32_t kNoFree = 0xFFFFFFFFu;
  // Below this many tombstones compaction isn't worth the pass.
  static constexpr std::size_t kCompactMin = 32;

  struct Slot {
    Callback fn;
    EventDesc desc;             // snapshot descriptor (kNone = unsnapshottable)
    std::uint32_t gen = 1;      // handle validity; bumped when slot is freed
    std::uint32_t arm_gen = 0;  // current arming; heap nodes carry a copy
    std::uint32_t next_free = kNoFree;
  };

  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t idx);
  void drop_stale() const;
  void maybe_compact();

  // Convenience-schedule ties start in a reserved lane (0xFFFF) so they can
  // never collide with a Simulator's lane-drawn ties.  With the old start of
  // 1, a bare schedule() and a lane-0 Simulator both began at tie 1: two
  // events could carry identical (time, stamp, tie) keys, and tombstone
  // compaction's make_heap was then free to swap their pop order (see the
  // EventQueue.CompactionKeepsEqualTimeOrder regression test).
  static constexpr std::uint64_t kFallbackTieBase =
      (std::uint64_t{0xFFFF} << 48) | 1;

  mutable std::vector<Node> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoFree;
  std::uint64_t fallback_tie_ = kFallbackTieBase;
  std::size_t live_count_ = 0;
  mutable std::size_t tombstones_ = 0;
};

}  // namespace swallow
