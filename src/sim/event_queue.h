// Deterministic discrete-event queue.
//
// Events are ordered by a three-part key (fire_time, stamp_time, tie):
//   fire_time  — when the event fires;
//   stamp_time — the scheduler's clock when the event was scheduled;
//   tie        — (lane << 48) | sequence, a per-scheduler monotone counter.
// With a single scheduler (one lane, one counter) this reduces exactly to
// the classic (time, insertion-sequence) order — simultaneous events fire in
// the order they were scheduled, the reproducible behaviour Swallow is built
// around.  With several schedulers (the parallel engine's per-slice
// domains), the stamped key lets cross-domain messages re-enter a foreign
// queue carrying the sender's key, so the merged firing order matches what
// one global queue would have produced.
//
// Storage is a slot array (stable callbacks, freelist-recycled) indexed by a
// binary heap of 32-byte nodes.  cancel() and rearm() are O(1): they bump
// the slot's arm generation, turning the heap node into a tombstone that
// pop()/next_time() discard lazily; when tombstones outnumber live entries
// the heap is compacted in place, so memory stays bounded under
// cancel-heavy workloads (e.g. a core re-arming its issue event every
// instruction).
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "sim/event_fn.h"

namespace swallow {

/// Handle used to cancel or re-arm a pending event.  Default-constructed
/// handles are inert.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return gen_ != 0; }

 private:
  friend class EventQueue;
  EventHandle(std::uint32_t slot, std::uint32_t gen)
      : slot_(slot), gen_(gen) {}
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

/// Min-heap of timed callbacks with stable ordering, O(1) cancel/rearm and
/// bounded tombstone growth.
class EventQueue {
 public:
  using Callback = EventFn;

  /// Schedule `cb` to fire at absolute time `when` with an explicit ordering
  /// key (see file comment).
  EventHandle schedule(TimePs when, TimePs stamp, std::uint64_t tie,
                       Callback cb);

  /// Convenience form for single-scheduler use: stamp 0, insertion-order tie.
  EventHandle schedule(TimePs when, Callback cb) {
    return schedule(when, 0, fallback_tie_++, std::move(cb));
  }

  /// Move a pending event to a new fire time and ordering key without
  /// touching its callback.  Returns false when the handle no longer refers
  /// to a pending event (already fired or cancelled); the caller must then
  /// schedule afresh.  The handle remains valid on success.
  bool rearm(EventHandle h, TimePs when, TimePs stamp, std::uint64_t tie);

  /// Cancel a previously scheduled event.  Cancelling an already-fired or
  /// already-cancelled event is a harmless no-op.
  void cancel(EventHandle h);

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }

  /// Stale heap nodes awaiting lazy removal (cancelled or re-armed events).
  /// Bounded: compaction runs once tombstones outnumber live entries.
  std::size_t tombstones() const { return tombstones_; }

  /// Time of the earliest pending event; kTimeNever when empty.
  TimePs next_time() const;

  /// Pop and return the earliest event.  Must not be called when empty.
  struct Fired {
    TimePs time;
    Callback callback;
  };
  Fired pop();

 private:
  struct Node {
    TimePs time;
    TimePs stamp;
    std::uint64_t tie;
    std::uint32_t slot;
    std::uint32_t arm_gen;
  };
  // std::push_heap builds a max-heap; ordering by "fires later" yields the
  // min-heap we want.
  static bool later(const Node& a, const Node& b) {
    if (a.time != b.time) return a.time > b.time;
    if (a.stamp != b.stamp) return a.stamp > b.stamp;
    return a.tie > b.tie;
  }

  static constexpr std::uint32_t kNoFree = 0xFFFFFFFFu;
  // Below this many tombstones compaction isn't worth the pass.
  static constexpr std::size_t kCompactMin = 32;

  struct Slot {
    Callback fn;
    std::uint32_t gen = 1;      // handle validity; bumped when slot is freed
    std::uint32_t arm_gen = 0;  // current arming; heap nodes carry a copy
    std::uint32_t next_free = kNoFree;
  };

  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t idx);
  void drop_stale() const;
  void maybe_compact();

  mutable std::vector<Node> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoFree;
  std::uint64_t fallback_tie_ = 1;
  std::size_t live_count_ = 0;
  mutable std::size_t tombstones_ = 0;
};

}  // namespace swallow
