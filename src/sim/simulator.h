// The simulation context: a picosecond timeline and event pump that every
// model (cores, switches, links, meters) schedules against.
//
// There is one Simulator per event domain.  The sequential engine runs the
// whole system in a single domain; the parallel engine gives each slice its
// own, tagged with a distinct lane so that ordering keys — and therefore
// results — are reproducible across engines (see event_queue.h).
#pragma once

#include <cstdint>

#include "common/units.h"
#include "sim/event_queue.h"

namespace swallow {

class Simulator {
 public:
  /// Current simulation time.
  TimePs now() const { return now_; }

  /// Schedule a callback `delay` picoseconds from now (delay >= 0).  The
  /// desc-carrying forms attach a snapshot descriptor (sim/event_desc.h);
  /// events scheduled without one make the machine unsnapshottable while
  /// they are pending.
  EventHandle after(TimePs delay, EventQueue::Callback cb);
  EventHandle after(TimePs delay, const EventDesc& desc,
                    EventQueue::Callback cb);

  /// Schedule a callback at an absolute time >= now().
  EventHandle at(TimePs when, EventQueue::Callback cb);
  EventHandle at(TimePs when, const EventDesc& desc, EventQueue::Callback cb);

  /// Move a pending event to fire time `when` (>= now()) without touching
  /// its callback.  Semantically identical to cancel + at — the event
  /// re-enters the ordering as if freshly scheduled — but reuses the queue
  /// slot.  Returns false when the handle no longer refers to a pending
  /// event; the caller must then schedule anew.
  bool rearm(EventHandle h, TimePs when);

  void cancel(EventHandle h) { queue_.cancel(h); }

  /// Schedule a callback carrying an explicit ordering key (sender's stamp
  /// and tie).  Used by the parallel engine to deliver cross-domain
  /// messages so the merged firing order matches the sequential engine's.
  /// `when` must be strictly in this domain's future.
  EventHandle inject(TimePs when, TimePs stamp, std::uint64_t tie,
                     EventQueue::Callback cb);
  EventHandle inject(TimePs when, TimePs stamp, std::uint64_t tie,
                     const EventDesc& desc, EventQueue::Callback cb);

  /// Run until the queue drains or `deadline` passes, whichever is first.
  /// Events exactly at the deadline still fire.  Returns the number of
  /// events dispatched.
  std::uint64_t run_until(TimePs deadline);

  /// Run until the event queue is empty.
  std::uint64_t run();

  /// Deadline of the run_until() call currently dispatching, kTimeNever
  /// inside run() or outside the pump.  An event callback stepping a model
  /// inline (batched core issue) must not advance time beyond this: the
  /// caller of run_until() treats the deadline as a chop point (trace
  /// flushes, checkpoints, measurement boundaries).
  TimePs horizon() const { return horizon_; }

  /// Advance time from within a dispatching event callback without popping
  /// an event (batched core stepping: the core elides its own re-arm
  /// events while nothing else is pending).  `t` must be >= now(), <=
  /// horizon(), and strictly before the next pending event — the elided
  /// events must be exactly those the pump would have dispatched
  /// back-to-back with nothing in between.
  void advance_in_dispatch(TimePs t);

  /// Advance time to `deadline` even if no event is pending there (used by
  /// power integration at a measurement boundary).
  void advance_to(TimePs when);

  bool idle() const { return queue_.empty(); }
  TimePs next_event_time() const { return queue_.next_time(); }
  std::uint64_t events_dispatched() const { return dispatched_; }

  /// Full ordering key of the earliest pending event; false when idle.
  /// The parallel engine's hub-merge step compares keys across domains to
  /// reproduce the exact global dispatch order at a fence time.
  bool peek_key(EventQueue::Key& out) const { return queue_.next_key(out); }

  /// Jump the clock to `t` without dispatching: the queue must hold nothing
  /// before `t` (everything earlier already fired).  Used by the hub-merge
  /// step to line every domain up on a common fence time before
  /// dispatch_one interleaves them.
  void warp_to(TimePs t);

  /// Pop and fire exactly one event (the earliest), with the run horizon
  /// pinned to `horizon_t` so a batching callback cannot advance time past
  /// the fence.  Must not be called when idle.
  void dispatch_one(TimePs horizon_t);

  /// Tag for this simulator's ordering keys; the parallel engine assigns
  /// each domain a distinct lane.  Lane 0 (the default) with a single
  /// domain reproduces the classic global (time, insertion-seq) order.
  void set_lane(std::uint16_t lane) { lane_ = lane; }
  std::uint16_t lane() const { return lane_; }

  /// Expose the queue's tombstone count for tests and engine stats.
  std::size_t queue_tombstones() const { return queue_.tombstones(); }

  /// Consume one ordering tie, exactly as a local schedule would.  A model
  /// handing an event to another domain (DomainPost) draws the tie here so
  /// the event sorts in the foreign queue as the sequential engine would
  /// have sorted it.
  std::uint64_t draw_tie() { return next_tie(); }

  // ----- Snapshot support (src/snap/) -----
  /// Everything beyond the queue contents that a resumed run needs to keep
  /// drawing identical ordering keys and reporting identical statistics.
  struct ClockState {
    TimePs now = 0;
    TimePs last_dispatch = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t next_seq = 1;
    std::uint64_t fallback_tie = 0;
  };
  ClockState clock_state() const {
    return ClockState{now_, last_dispatch_time_, dispatched_, next_seq_,
                      queue_.fallback_tie()};
  }
  void restore_clock_state(const ClockState& s) {
    now_ = s.now;
    last_dispatch_time_ = s.last_dispatch;
    dispatched_ = s.dispatched;
    next_seq_ = s.next_seq;
    queue_.set_fallback_tie(s.fallback_tie);
  }

  /// Visit every pending event's ordering key + descriptor (lane_ is fixed
  /// by construction and not part of the walk).
  template <typename Fn>
  void for_each_pending(Fn&& fn) const {
    queue_.for_each_live(fn);
  }
  std::size_t pending_count() const { return queue_.size(); }
  EventDesc desc_of(EventHandle h) const { return queue_.desc_of(h); }

 private:
  std::uint64_t next_tie() {
    return (static_cast<std::uint64_t>(lane_) << 48) |
           (next_seq_++ & ((std::uint64_t{1} << 48) - 1));
  }

  TimePs now_ = 0;
  TimePs horizon_ = kTimeNever;    // deadline of the active run_until()
  TimePs last_dispatch_time_ = 0;  // monotonicity probe (common/check.h)
  std::uint64_t dispatched_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint16_t lane_ = 0;
  EventQueue queue_;
};

}  // namespace swallow
