// The simulation context: a global picosecond timeline and event pump that
// every model (cores, switches, links, meters) schedules against.
#pragma once

#include <cstdint>
#include <functional>

#include "common/units.h"
#include "sim/event_queue.h"

namespace swallow {

class Simulator {
 public:
  /// Current simulation time.
  TimePs now() const { return now_; }

  /// Schedule a callback `delay` picoseconds from now (delay >= 0).
  EventHandle after(TimePs delay, EventQueue::Callback cb);

  /// Schedule a callback at an absolute time >= now().
  EventHandle at(TimePs when, EventQueue::Callback cb);

  void cancel(EventHandle h) { queue_.cancel(h); }

  /// Run until the queue drains or `deadline` passes, whichever is first.
  /// Events exactly at the deadline still fire.  Returns the number of
  /// events dispatched.
  std::uint64_t run_until(TimePs deadline);

  /// Run until the event queue is empty.
  std::uint64_t run();

  /// Advance time to `deadline` even if no event is pending there (used by
  /// power integration at a measurement boundary).
  void advance_to(TimePs when);

  bool idle() const { return queue_.empty(); }
  TimePs next_event_time() const { return queue_.next_time(); }
  std::uint64_t events_dispatched() const { return dispatched_; }

 private:
  TimePs now_ = 0;
  std::uint64_t dispatched_ = 0;
  EventQueue queue_;
};

}  // namespace swallow
