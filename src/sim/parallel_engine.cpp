#include "sim/parallel_engine.h"

#include <algorithm>

#include "common/error.h"

namespace swallow {

namespace {

// Adaptive quanta can be as short as the lookahead (nanoseconds of
// simulated time), so the barrier is hot: spin briefly before parking on
// the futex.  The spin budget costs about one futex round-trip, so the
// slow path only pays when a quantum is genuinely long — and while every
// waiter spins, notify_all never has to issue a wake syscall at all.
// Spinning is only a win when every worker has a hardware thread of its
// own; on an oversubscribed host a spinning waiter burns the very
// timeslice the thread it waits on needs, so the engine parks immediately.
constexpr int kSpinRounds = 4096;

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

}  // namespace

ParallelEngine::ParallelEngine(std::vector<Domain*> partitions,
                               std::vector<Domain*> hubs, int workers,
                               TimePs lookahead, SyncConfig sync)
    : domains_(std::move(partitions)),
      hubs_(std::move(hubs)),
      lookahead_(lookahead),
      workers_(workers),
      spin_rounds_(std::thread::hardware_concurrency() >=
                           static_cast<unsigned>(workers)
                       ? kSpinRounds
                       : 0),
      sync_(sync) {
  require(!domains_.empty(), "ParallelEngine: no domains");
  require(lookahead_ >= 1, "ParallelEngine: lookahead must be >= 1 ps");
  require(workers_ >= 1 &&
              workers_ <= static_cast<int>(domains_.size()),
          "ParallelEngine: workers must be in [1, domain count]");
  require(sync_.bound_cycles >= 0,
          "ParallelEngine: sync bound must be >= 0 cycles");
  require(!sync_.bounded || sync_.cycle_ps >= 1,
          "ParallelEngine: bounded sync needs a positive cycle length");
  if (relaxed()) {
    // Start small so a chatty opening phase stays near-exact; idle quanta
    // double the budget up to N (adapt_width).
    width_base_ = std::max(1, sync_.bound_cycles / 8);
    width_ = width_base_;
  }
  threads_.reserve(static_cast<std::size_t>(workers_ - 1));
  for (int w = 1; w < workers_; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

ParallelEngine::~ParallelEngine() {
  shutdown_.store(true, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  epoch_.notify_all();
  for (std::thread& t : threads_) t.join();
}

DomainPost* ParallelEngine::crossing(Domain& src, Domain& dst) {
  auto& slot = mailboxes_[{src.id(), dst.id()}];
  if (slot == nullptr) {
    slot = std::make_unique<CrossingMailbox>(dst.sim());
    if (relaxed()) slot->set_relaxed(&relax_);
  }
  return slot.get();
}

void ParallelEngine::add_boundary_task(std::function<void(TimePs)> task) {
  boundary_tasks_.push_back(std::move(task));
}

TimePs ParallelEngine::span() const {
  if (!relaxed()) return lookahead_;
  return lookahead_ + static_cast<TimePs>(width_) * sync_.cycle_ps;
}

TimePs ParallelEngine::next_target(TimePs deadline) const {
  TimePs m = kTimeNever;
  for (const Domain* d : domains_) {
    m = std::min(m, d->sim().next_event_time());
  }
  for (const Domain* h : hubs_) {
    m = std::min(m, h->sim().next_event_time());
  }
  if (m >= deadline) return deadline;  // idle (or past the deadline): one hop
  // Saturating m + span - 1: in exact mode everything in [m, target] is
  // safe because no cross-domain effect of an event at >= m lands before
  // m + lookahead; bounded mode deliberately widens the window and clamps
  // the stragglers at the barrier.
  const TimePs s = span();
  if (m > kTimeNever - s) return deadline;
  return std::min(deadline, m + s - 1);
}

TimePs ParallelEngine::next_hub_time() const {
  TimePs m = kTimeNever;
  for (const Domain* h : hubs_) {
    m = std::min(m, h->sim().next_event_time());
  }
  return m;
}

void ParallelEngine::adapt_width(std::size_t delivered) {
  if (!relaxed()) return;
  if (delivered == 0) {
    // No crossing traffic this quantum: nothing could have straggled, so
    // widen toward the full budget.
    width_ = std::min(sync_.bound_cycles, width_ * 2);
  } else {
    // Mailbox activity: snap back so the next quantum stays close to the
    // lookahead and in-flight conversations reorder as little as possible.
    width_ = width_base_;
  }
}

std::size_t ParallelEngine::drain_mailboxes() {
  // Drain in fixed (src, dst) order — ordering keys make the injection
  // order immaterial, this just keeps the walk deterministic.
  std::size_t delivered = 0;
  for (auto& [key, mb] : mailboxes_) {
    delivered += mb->drain();
  }
  stats_.messages += delivered;
  return delivered;
}

void ParallelEngine::run_owned(int w, TimePs target) {
  for (std::size_t i = static_cast<std::size_t>(w); i < domains_.size();
       i += static_cast<std::size_t>(workers_)) {
    domains_[i]->sim().run_until(target);
  }
}

void ParallelEngine::run_quantum(TimePs target) {
  done_.store(0, std::memory_order_relaxed);
  target_.store(target, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  epoch_.notify_all();

  run_owned(0, target);

  int spins = 0;
  for (int d = done_.load(std::memory_order_acquire); d < workers_ - 1;
       d = done_.load(std::memory_order_acquire)) {
    if (spins < spin_rounds_) {
      ++spins;
      cpu_relax();
    } else {
      done_.wait(d, std::memory_order_acquire);
    }
  }
}

void ParallelEngine::merge_at(TimePs t) {
  // Line every domain up on the fence, then dispatch the events at exactly
  // t one at a time in global (stamp, tie) order — the order one global
  // queue would have produced.  Dispatching may spawn further events at t
  // (zero-delay chains), so rescan until no head remains there.
  for (Domain* d : domains_) d->sim().warp_to(t);
  for (Domain* h : hubs_) h->sim().warp_to(t);
  while (true) {
    Simulator* best = nullptr;
    EventQueue::Key best_key{};
    auto consider = [&](Simulator& s) {
      EventQueue::Key k;
      if (!s.peek_key(k) || k.time != t) return;
      if (best == nullptr || k.stamp < best_key.stamp ||
          (k.stamp == best_key.stamp && k.tie < best_key.tie)) {
        best = &s;
        best_key = k;
      }
    };
    for (Domain* d : domains_) consider(d->sim());
    for (Domain* h : hubs_) consider(h->sim());
    if (best == nullptr) return;
    best->dispatch_one(t);
  }
}

void ParallelEngine::run_until(TimePs deadline) {
  require(deadline >= now_, "ParallelEngine::run_until: deadline in the past");
  while (true) {
    const TimePs target = next_target(deadline);
    const TimePs hub_min = next_hub_time();
    if (hub_min <= target) {
      // Fence quantum: a hub event must observe every partition at one
      // consistent instant.  Run partitions up to just before it, then
      // merge everything at that instant serially.
      invariant(hub_min > now_, "hub event at or before the barrier clock");
      run_quantum(hub_min - 1);
      std::size_t delivered = drain_mailboxes();
      merge_at(hub_min);
      // Crossings posted during the merge fire at hub_min + latency.
      delivered += drain_mailboxes();
      adapt_width(delivered);
      now_ = hub_min;
      ++stats_.merges;
      continue;
    }

    run_quantum(target);

    // Serial phase: every worker is parked, so whole-machine state is safe
    // to touch.
    adapt_width(drain_mailboxes());
    now_ = target;
    ++stats_.quanta;
    for (auto& task : boundary_tasks_) task(target);
    if (target >= deadline) {
      // Clamp hub clocks to the deadline: no hub event can remain at or
      // before it (that would have forced a fence above).
      for (Domain* h : hubs_) h->sim().run_until(deadline);
      return;
    }
  }
}

void ParallelEngine::worker_loop(int w) {
  std::uint64_t seen = 0;
  while (true) {
    int spins = 0;
    std::uint64_t e = epoch_.load(std::memory_order_acquire);
    while (e == seen) {
      if (spins < spin_rounds_) {
        ++spins;
        cpu_relax();
      } else {
        epoch_.wait(seen, std::memory_order_acquire);
      }
      e = epoch_.load(std::memory_order_acquire);
    }
    seen = e;
    if (shutdown_.load(std::memory_order_relaxed)) return;
    run_owned(w, target_.load(std::memory_order_relaxed));
    done_.fetch_add(1, std::memory_order_release);
    done_.notify_all();
  }
}

}  // namespace swallow
