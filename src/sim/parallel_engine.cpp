#include "sim/parallel_engine.h"

#include <algorithm>

#include "common/error.h"

namespace swallow {

namespace {

// Adaptive quanta can be as short as the lookahead (nanoseconds of
// simulated time), so the barrier is hot: spin briefly before parking on
// the futex.  The spin budget costs about one futex round-trip, so the
// slow path only pays when a quantum is genuinely long — and while every
// waiter spins, notify_all never has to issue a wake syscall at all.
// Spinning is only a win when every worker has a hardware thread of its
// own; on an oversubscribed host a spinning waiter burns the very
// timeslice the thread it waits on needs, so the engine parks immediately.
constexpr int kSpinRounds = 4096;

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

}  // namespace

ParallelEngine::ParallelEngine(std::vector<Domain*> domains, int workers,
                               TimePs lookahead)
    : domains_(std::move(domains)),
      lookahead_(lookahead),
      workers_(workers),
      spin_rounds_(std::thread::hardware_concurrency() >=
                           static_cast<unsigned>(workers)
                       ? kSpinRounds
                       : 0) {
  require(!domains_.empty(), "ParallelEngine: no domains");
  require(lookahead_ >= 1, "ParallelEngine: lookahead must be >= 1 ps");
  require(workers_ >= 1 &&
              workers_ <= static_cast<int>(domains_.size()),
          "ParallelEngine: workers must be in [1, domain count]");
  threads_.reserve(static_cast<std::size_t>(workers_ - 1));
  for (int w = 1; w < workers_; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

ParallelEngine::~ParallelEngine() {
  shutdown_.store(true, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  epoch_.notify_all();
  for (std::thread& t : threads_) t.join();
}

DomainPost* ParallelEngine::crossing(Domain& src, Domain& dst) {
  auto& slot = mailboxes_[{src.id(), dst.id()}];
  if (slot == nullptr) slot = std::make_unique<CrossingMailbox>(dst.sim());
  return slot.get();
}

void ParallelEngine::add_boundary_task(std::function<void(TimePs)> task) {
  boundary_tasks_.push_back(std::move(task));
}

TimePs ParallelEngine::next_target(TimePs deadline) const {
  TimePs m = kTimeNever;
  for (const Domain* d : domains_) {
    m = std::min(m, d->sim().next_event_time());
  }
  if (m >= deadline) return deadline;  // idle (or past the deadline): one hop
  // Saturating m + lookahead - 1: everything in [m, target] is safe because
  // no cross-domain effect of an event at >= m lands before m + lookahead.
  if (m > kTimeNever - lookahead_) return deadline;
  return std::min(deadline, m + lookahead_ - 1);
}

void ParallelEngine::run_owned(int w, TimePs target) {
  for (std::size_t i = static_cast<std::size_t>(w); i < domains_.size();
       i += static_cast<std::size_t>(workers_)) {
    domains_[i]->sim().run_until(target);
  }
}

void ParallelEngine::run_until(TimePs deadline) {
  require(deadline >= now_, "ParallelEngine::run_until: deadline in the past");
  while (true) {
    const TimePs target = next_target(deadline);
    done_.store(0, std::memory_order_relaxed);
    target_.store(target, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    epoch_.notify_all();

    run_owned(0, target);

    int spins = 0;
    for (int d = done_.load(std::memory_order_acquire); d < workers_ - 1;
         d = done_.load(std::memory_order_acquire)) {
      if (spins < spin_rounds_) {
        ++spins;
        cpu_relax();
      } else {
        done_.wait(d, std::memory_order_acquire);
      }
    }

    // Serial phase: every worker is parked, so whole-machine state is safe
    // to touch.  Drain in fixed (src, dst) order — ordering keys make the
    // injection order immaterial, this just keeps the walk deterministic.
    for (auto& [key, mb] : mailboxes_) {
      stats_.messages += mb->drain();
    }
    now_ = target;
    ++stats_.quanta;
    for (auto& task : boundary_tasks_) task(target);
    if (target >= deadline) return;
  }
}

void ParallelEngine::worker_loop(int w) {
  std::uint64_t seen = 0;
  while (true) {
    int spins = 0;
    std::uint64_t e = epoch_.load(std::memory_order_acquire);
    while (e == seen) {
      if (spins < spin_rounds_) {
        ++spins;
        cpu_relax();
      } else {
        epoch_.wait(seen, std::memory_order_acquire);
      }
      e = epoch_.load(std::memory_order_acquire);
    }
    seen = e;
    if (shutdown_.load(std::memory_order_relaxed)) return;
    run_owned(w, target_.load(std::memory_order_relaxed));
    done_.fetch_add(1, std::memory_order_release);
    done_.notify_all();
  }
}

}  // namespace swallow
