// Serializable event descriptors for deterministic snapshot/restore
// (src/snap/, docs/architecture.md §snapshot format).
//
// The event queue stores type-erased callbacks, which cannot be written to
// disk.  Every model that schedules an event whose firing must survive a
// checkpoint attaches an EventDesc at the schedule site: a fixed-size POD
// naming the action (kind), the component that performs it (node) and the
// packed operands needed to rebuild the exact callback.  A snapshot walks
// the live heap entries and saves (fire_time, stamp, tie, desc) verbatim;
// restore resolves each desc back to a callback through the owning
// component's fire_restored_event() and re-schedules it under the original
// three-part ordering key — which is what keeps the resumed run bit-identical
// to an uninterrupted one.
//
// An event without a descriptor (kind == kNone) is legal at runtime but
// makes the machine unsnapshottable: the snapshot pass refuses with a
// structured error naming the orphan rather than silently dropping it.
#pragma once

#include <cstdint>

#include "common/units.h"

namespace swallow {

/// What a pending event does when it fires.  Values are part of the
/// snapshot format: append new kinds, never renumber.
enum class EventKind : std::uint16_t {
  kNone = 0,  // undescribed: present but not snapshottable

  // arch/core.cpp
  kCoreIssue = 1,      // do_issue() pump; a = unused
  kCoreTimerWake = 2,  // wake(tid) for TIMEWAIT / OUTPT; a = tid

  // noc/switch.cpp
  kSwitchInject = 10,        // processor-port token lands in input fifo
  kSwitchProcess = 11,       // process_input(a = input index)
  kSwitchLinkNak = 12,       // on_link_nak(a = port, b = expected seq)
  kSwitchLinkAck = 13,       // on_link_ack(a = port, b = cumulative seq)
  kSwitchCredit = 14,        // on_credit(a = port)
  kSwitchResendStep = 15,    // resend_step(a = output, b = resend gen)
  kSwitchRetryTimeout = 16,  // on_retry_timeout(a = output, b = timer gen)
  kSwitchLinkDeliver = 17,   // deliver_link_token on the receiving switch
  kSwitchProcDeliver = 18,   // endpoint delivery from output a's receiver

  // board/ethernet.cpp
  kBridgePump = 30,  // paced tx pump wake

  // energy/measure.cpp
  kSamplerTick = 40,  // ADC conversion tick; node = slice index

  // board/system.cpp
  kLossIntegrate = 41,  // SMPS loss integration; node = slice index

  // fault/fault.cpp
  kFaultActivate = 50,  // activate(plan spec a)
  kFaultRepair = 51,    // set_links_up on node for directions [a_lo, a_hi]
  kFaultUnfreeze = 52,  // un-freeze core `node`
  kFaultPeerKill = 53,  // kill_link(a) on switch `node`

  // load/load.cpp
  kLoadArrival = 60,  // open-loop arrival tick; node = bridge node id
};

/// Fixed-size serializable description of one pending event.  `node` is the
/// component that acts when the event fires (a NodeId for cores/switches, a
/// flat slice index for per-slice agents); a/b/c are kind-specific packed
/// operands (see the schedule sites).
struct EventDesc {
  EventKind kind = EventKind::kNone;
  std::uint16_t node = 0;
  std::uint32_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;

  bool described() const { return kind != EventKind::kNone; }
};

/// One live queue entry as a snapshot sees it: the exact ordering key the
/// event was scheduled under, plus its descriptor.
struct LiveEvent {
  TimePs time = 0;
  TimePs stamp = 0;
  std::uint64_t tie = 0;
  EventDesc desc;
};

}  // namespace swallow
