#include "sim/domain.h"

namespace swallow {

void CrossingMailbox::post(TimePs fire_at, TimePs stamp, std::uint64_t tie,
                           EventFn cb, const EventDesc& desc) {
  buffer_.push_back(Pending{fire_at, stamp, tie, std::move(cb), desc});
}

std::size_t CrossingMailbox::drain() {
  const std::size_t n = buffer_.size();
  for (Pending& p : buffer_) {
    // The lookahead contract guarantees fire_at is past the barrier time;
    // inject() asserts it (strictly in the receiver's future).
    dst_.inject(p.fire_at, p.stamp, p.tie, p.desc, std::move(p.cb));
  }
  buffer_.clear();
  return n;
}

}  // namespace swallow
