#include "sim/domain.h"

#include <algorithm>

namespace swallow {

void CrossingMailbox::post(TimePs fire_at, TimePs stamp, std::uint64_t tie,
                           EventFn cb, const EventDesc& desc) {
  buffer_.push_back(Pending{fire_at, stamp, tie, std::move(cb), desc});
}

std::size_t CrossingMailbox::drain() {
  const std::size_t n = buffer_.size();
  for (Pending& p : buffer_) {
    TimePs fire_at = p.fire_at;
    if (relax_ != nullptr && fire_at <= dst_.now()) {
      // Bounded sync: the quantum outran this event's wire latency, so its
      // fire time already passed in the receiver.  Deliver at the next
      // representable instant and account for the skew.
      const TimePs clamped = dst_.now() + 1;
      ++relax_->stragglers;
      relax_->max_skew_ps = std::max(relax_->max_skew_ps, clamped - fire_at);
      fire_at = clamped;
    }
    // In exact mode the lookahead contract guarantees fire_at is past the
    // barrier time; inject() asserts it (strictly in the receiver's future).
    dst_.inject(fire_at, p.stamp, p.tie, p.desc, std::move(p.cb));
  }
  buffer_.clear();
  return n;
}

}  // namespace swallow
