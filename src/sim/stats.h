// Lightweight statistics containers used by models and benches.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/stateio.h"

namespace swallow {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

  void save_state(StateWriter& w) const { w.u64(value_); }
  void load_state(StateReader& r) { value_ = r.u64(); }

 private:
  std::uint64_t value_ = 0;
};

/// Streaming min/max/mean/variance (Welford) over double samples.
class Sampler {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  std::uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }

  void save_state(StateWriter& w) const {
    w.u64(n_);
    w.f64(mean_);
    w.f64(m2_);
    w.f64(min_);
    w.f64(max_);
  }
  void load_state(StateReader& r) {
    n_ = r.u64();
    mean_ = r.f64();
    m2_ = r.f64();
    min_ = r.f64();
    max_ = r.f64();
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Per-switch fault and resilience counters (see noc/switch.h and
/// src/fault/).  Injected faults, CRC rejects and the retransmission
/// machinery all count here so analysis/netstat can render a fault summary
/// and board/telemetry can stream it — degraded links are *visible*, not
/// silent, which is the energy-transparency story extended to faults.
struct FaultCounters {
  std::uint64_t tokens_corrupted = 0;   // corruptions injected on tx links
  std::uint64_t tokens_dropped = 0;     // tokens lost to a link outage
  std::uint64_t crc_rejects = 0;        // corrupt tokens detected at rx
  std::uint64_t naks_sent = 0;          // go-back-N NAKs emitted by rx side
  std::uint64_t naks_received = 0;      // NAKs received by tx side
  std::uint64_t retransmissions = 0;    // tokens resent (NAK or timeout)
  std::uint64_t retry_timeouts = 0;     // retransmit timer expiries
  std::uint64_t links_marked_dead = 0;  // permanent failures declared
  std::uint64_t tokens_discarded_dead = 0;  // tokens dropped at a dead link

  FaultCounters& operator+=(const FaultCounters& o) {
    tokens_corrupted += o.tokens_corrupted;
    tokens_dropped += o.tokens_dropped;
    crc_rejects += o.crc_rejects;
    naks_sent += o.naks_sent;
    naks_received += o.naks_received;
    retransmissions += o.retransmissions;
    retry_timeouts += o.retry_timeouts;
    links_marked_dead += o.links_marked_dead;
    tokens_discarded_dead += o.tokens_discarded_dead;
    return *this;
  }
  FaultCounters& operator-=(const FaultCounters& o) {
    tokens_corrupted -= o.tokens_corrupted;
    tokens_dropped -= o.tokens_dropped;
    crc_rejects -= o.crc_rejects;
    naks_sent -= o.naks_sent;
    naks_received -= o.naks_received;
    retransmissions -= o.retransmissions;
    retry_timeouts -= o.retry_timeouts;
    links_marked_dead -= o.links_marked_dead;
    tokens_discarded_dead -= o.tokens_discarded_dead;
    return *this;
  }
  /// Sum of every counter — "any fault activity at all?" and the
  /// watchdog's fault-progress signal (retries count as liveness).
  std::uint64_t total() const {
    return tokens_corrupted + tokens_dropped + crc_rejects + naks_sent +
           naks_received + retransmissions + retry_timeouts +
           links_marked_dead + tokens_discarded_dead;
  }

  /// Positional access for table rendering and telemetry streaming.
  static constexpr int kFieldCount = 9;
  std::array<std::uint64_t, kFieldCount> as_array() const {
    return {tokens_corrupted, tokens_dropped,     crc_rejects,
            naks_sent,        naks_received,      retransmissions,
            retry_timeouts,   links_marked_dead,  tokens_discarded_dead};
  }
  static const char* field_name(int i) {
    constexpr const char* kNames[kFieldCount] = {
        "tokens corrupted", "tokens dropped",    "crc rejects",
        "naks sent",        "naks received",     "retransmissions",
        "retry timeouts",   "links marked dead", "tokens discarded (dead)"};
    return i >= 0 && i < kFieldCount ? kNames[i] : "?";
  }

  void save_state(StateWriter& w) const {
    for (std::uint64_t v : as_array()) w.u64(v);
  }
  void load_state(StateReader& r) {
    tokens_corrupted = r.u64();
    tokens_dropped = r.u64();
    crc_rejects = r.u64();
    naks_sent = r.u64();
    naks_received = r.u64();
    retransmissions = r.u64();
    retry_timeouts = r.u64();
    links_marked_dead = r.u64();
    tokens_discarded_dead = r.u64();
  }
};

/// Fixed-bucket histogram over [lo, hi) with overflow/underflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets)
      : lo_(lo), hi_(hi), counts_(buckets + 2, 0) {}

  void add(double x) {
    std::size_t idx;
    if (x < lo_) {
      idx = 0;
    } else if (x >= hi_) {
      idx = counts_.size() - 1;
    } else {
      const double frac = (x - lo_) / (hi_ - lo_);
      idx = 1 + static_cast<std::size_t>(frac * static_cast<double>(counts_.size() - 2));
    }
    ++counts_[idx];
    ++total_;
  }

  std::uint64_t underflow() const { return counts_.front(); }
  std::uint64_t overflow() const { return counts_.back(); }
  std::uint64_t bucket(std::size_t i) const { return counts_.at(i + 1); }
  std::size_t buckets() const { return counts_.size() - 2; }
  std::uint64_t total() const { return total_; }

  /// Bounds (lo/hi/bucket count) are construction wiring; only the counts
  /// are state.
  void save_state(StateWriter& w) const {
    w.seq(counts_, [&](std::uint64_t c) { w.u64(c); });
    w.u64(total_);
  }
  void load_state(StateReader& r) {
    r.seq_exactly(counts_.size(), "histogram buckets",
                  [&](std::uint32_t i) { counts_[i] = r.u64(); });
    total_ = r.u64();
  }

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace swallow
