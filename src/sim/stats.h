// Lightweight statistics containers used by models and benches.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace swallow {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Streaming min/max/mean/variance (Welford) over double samples.
class Sampler {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  std::uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram over [lo, hi) with overflow/underflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets)
      : lo_(lo), hi_(hi), counts_(buckets + 2, 0) {}

  void add(double x) {
    std::size_t idx;
    if (x < lo_) {
      idx = 0;
    } else if (x >= hi_) {
      idx = counts_.size() - 1;
    } else {
      const double frac = (x - lo_) / (hi_ - lo_);
      idx = 1 + static_cast<std::size_t>(frac * static_cast<double>(counts_.size() - 2));
    }
    ++counts_[idx];
    ++total_;
  }

  std::uint64_t underflow() const { return counts_.front(); }
  std::uint64_t overflow() const { return counts_.back(); }
  std::uint64_t bucket(std::size_t i) const { return counts_.at(i + 1); }
  std::size_t buckets() const { return counts_.size() - 2; }
  std::uint64_t total() const { return total_; }

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace swallow
