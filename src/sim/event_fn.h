// Small-buffer move-only callable for event callbacks.
//
// The event pump fires one callback per instruction issue, so the cost of
// std::function's type erasure (heap allocation for captures beyond its tiny
// SBO, plus copy-constructibility machinery we never use) is pure hot-path
// overhead.  EventFn stores callables up to kInlineSize bytes directly in the
// queue slot and only falls back to the heap for outsized captures.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace swallow {

class EventFn {
 public:
  // Captures up to this size live inline in the slot array; larger ones are
  // boxed.  Sized for the fattest hot-path capture (token delivery: peer
  // pointer + port + Token + seq + flag).
  static constexpr std::size_t kInlineSize = 48;

  EventFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): callable wrapper
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &boxed_ops<Fn>;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-construct into dst from src, then destroy src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineSize &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
      [](void* dst, void* src) noexcept {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* s) noexcept { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops boxed_ops = {
      [](void* s) { (**std::launder(reinterpret_cast<Fn**>(s)))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      },
      [](void* s) noexcept { delete *std::launder(reinterpret_cast<Fn**>(s)); },
  };

  void move_from(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace swallow
