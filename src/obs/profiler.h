// Sampling profiler: at every observability chop point the board layer
// snapshots each live hardware thread's PC and feeds it here.  Samples are
// symbolized against the assembler's label table (nearest label at or
// below the PC) and folded into flamegraph-collapsed stacks:
//
//     core_0x0001;t0;stage_loop 412
//
// one line per (node, thread, symbol), sorted — ready for flamegraph.pl /
// speedscope.  Sampling happens at deterministic chop times where both
// engines agree on all machine state, so the folded output is
// byte-identical across --jobs values.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/stateio.h"

namespace swallow {

class Profiler {
 public:
  /// Register a node's symbol table: (word address, label) pairs from the
  /// loaded image.  Call at attach/load time.
  void note_symbols(std::uint32_t node,
                    std::vector<std::pair<std::uint32_t, std::string>> syms);

  /// Record one sample of a live thread.  `running` distinguishes
  /// on-cpu samples from wait samples (folded with a ";[wait]" leaf).
  void sample(std::uint32_t node, int tid, std::uint32_t pc, bool running);

  std::uint64_t samples() const { return samples_; }

  /// Nearest label at or below `pc` for `node` ("+0x12" offsets omitted;
  /// "0x<pc>" when no symbol table or no label precedes the PC).
  std::string symbolize(std::uint32_t node, std::uint32_t pc) const;

  /// Flamegraph-collapsed output, one "stack count" line per bucket,
  /// sorted lexicographically.
  std::string collapsed() const;

  // ----- Snapshot (src/snap/) -----
  void save_state(StateWriter& w) const;
  void load_state(StateReader& r);

 private:
  struct Key {
    std::uint32_t node;
    int tid;
    std::uint32_t pc;
    bool running;
    bool operator<(const Key& o) const {
      if (node != o.node) return node < o.node;
      if (tid != o.tid) return tid < o.tid;
      if (pc != o.pc) return pc < o.pc;
      return running < o.running;
    }
  };

  // Per-node sorted (addr, label) tables and per-(node,tid,pc) counts.
  std::map<std::uint32_t, std::vector<std::pair<std::uint32_t, std::string>>>
      symbols_;
  std::map<Key, std::uint64_t> counts_;
  std::uint64_t samples_ = 0;
};

}  // namespace swallow
