#include "obs/trace.h"

#include <algorithm>

#include "common/strings.h"
#include "energy/ledger.h"
#include "sim/stats.h"

namespace swallow {

const char* trace_cat_name(TraceCat cat) {
  switch (cat) {
    case TraceCat::kThread: return "thread";
    case TraceCat::kRoute: return "route";
    case TraceCat::kLink: return "link";
    case TraceCat::kQueue: return "queue";
    case TraceCat::kFault: return "fault";
    case TraceCat::kDvfs: return "dvfs";
    case TraceCat::kEnergy: return "energy";
    case TraceCat::kProfile: return "profile";
    case TraceCat::kCount: break;
  }
  return "?";
}

std::string trace_event_name(TraceCat cat, std::uint16_t sub) {
  switch (cat) {
    case TraceCat::kThread: {
      static const char* kNames[] = {"run",       "wait:chan-out",
                                     "wait:chan-in", "wait:lock",
                                     "wait:sync", "wait:timer",
                                     "exit",      "wait:other"};
      if (sub < 8) return kNames[sub];
      break;
    }
    case TraceCat::kRoute:
      if (sub == kRouteSubOpen) return "route";
      if (sub == kRouteSubPark) return "park";
      break;
    case TraceCat::kLink:
      if (sub == kLinkSubToken) return "tok";
      break;
    case TraceCat::kQueue:
      // One counter series per input port (Chrome merges counters of the
      // same (pid, name), so the port index is part of the name).
      return strprintf("fifo%u", sub);
    case TraceCat::kFault:
      if (sub < FaultCounters::kFieldCount)
        return FaultCounters::field_name(static_cast<int>(sub));
      if (sub == kFaultSubFreeze) return "core-freeze";
      if (sub == kFaultSubUnfreeze) return "core-unfreeze";
      break;
    case TraceCat::kDvfs:
      if (sub == kDvfsSubFreqMhz) return "freq_mhz";
      if (sub == kDvfsSubVoltage) return "voltage_v";
      break;
    case TraceCat::kEnergy:
      if (sub < static_cast<std::uint16_t>(EnergyAccount::kCount))
        return std::string(to_string(static_cast<EnergyAccount>(sub))) + " uJ";
      if (sub == kEnergySubGrandTotal) return "total uJ";
      if (sub == kEnergySubInputPower) return "input W";
      if (sub == kEnergySubCorePower) return "power W";
      if (sub >= kEnergySubSlicePowerBase)
        return strprintf("slice%u W", sub - kEnergySubSlicePowerBase);
      break;
    case TraceCat::kProfile:
      if (sub == kProfileSubPc) return "pc";
      break;
    case TraceCat::kCount:
      break;
  }
  return strprintf("%s:%u", trace_cat_name(cat), sub);
}

TraceSession::TraceSession(TraceConfig cfg) : cfg_(cfg) {}

Track* TraceSession::make_track(std::uint32_t node, std::string name) {
  const auto index = static_cast<std::uint32_t>(tracks_.size());
  tracks_.push_back(Track(node, std::move(name), index, cfg_.track_capacity));
  return &tracks_.back();
}

void TraceSession::flush_up_to(TimePs t) {
  const std::size_t start = events_.size();
  for (auto& track : tracks_) {
    while (!track.ring_.empty() && track.ring_.front().time <= t)
      events_.push_back(track.ring_.pop_front());
  }
  // (time, track creation index, per-track seq) is a total order that does
  // not depend on engine internals — the heart of the byte-identical
  // contract.  Batches never interleave across flushes: everything emitted
  // after the previous flush is stamped at or after its flush time.
  std::sort(events_.begin() + static_cast<std::ptrdiff_t>(start),
            events_.end(), [](const TraceEvent& x, const TraceEvent& y) {
              if (x.time != y.time) return x.time < y.time;
              if (x.track != y.track) return x.track < y.track;
              return x.seq < y.seq;
            });
}

std::uint64_t TraceSession::dropped_total() const {
  std::uint64_t total = 0;
  for (const auto& track : tracks_) total += track.dropped();
  return total;
}

namespace {

// Integer-exact microsecond timestamp from picoseconds: "%llu.%06llu".
// Printing through doubles would risk engine-dependent rounding; this is a
// pure integer split.
std::string ts_us(TimePs ps) {
  const auto v = static_cast<unsigned long long>(ps);
  return strprintf("%llu.%06llu", v / 1000000ull, v % 1000000ull);
}

std::string pid_of(std::uint32_t node) {
  // Chrome pids are plain ints; the system track gets a pid above any
  // 16-bit node id.
  return node == kSystemTrackNode ? "65536"
                                  : strprintf("%u", node);
}

std::string tid_name(std::int32_t tid) {
  if (tid >= kTidThreadBase && tid < kTidRouteBase)
    return strprintf("t%d", tid - kTidThreadBase);
  if (tid >= kTidRouteBase && tid < kTidLinkBase)
    return strprintf("port %d", tid - kTidRouteBase);
  if (tid >= kTidLinkBase && tid < kTidNode)
    return strprintf("link %d", tid - kTidLinkBase);
  if (tid == kTidNode) return "node";
  if (tid == kTidSystem) return "counters";
  return strprintf("tid %d", tid);
}

std::string event_args(const TraceEvent& e) {
  switch (e.cat) {
    case TraceCat::kThread:
      if (e.kind == TraceKind::kBegin && e.sub == kThreadSubRun)
        return strprintf("{\"pc\": %lld}", static_cast<long long>(e.a));
      if (e.kind == TraceKind::kBegin || e.kind == TraceKind::kInstant)
        return strprintf("{\"pc\": %lld, \"res\": %lld}",
                         static_cast<long long>(e.a),
                         static_cast<long long>(e.b));
      return "{}";
    case TraceCat::kRoute:
      return strprintf("{\"out\": %lld, \"hdr\": %lld}",
                       static_cast<long long>(e.a),
                       static_cast<long long>(e.b));
    case TraceCat::kLink:
      return strprintf("{\"bits\": %lld, \"dir\": %lld, \"pj\": %.9g}",
                       static_cast<long long>(e.a),
                       static_cast<long long>(e.b), e.value);
    case TraceCat::kFault:
      return strprintf("{\"n\": %lld}", static_cast<long long>(e.a));
    case TraceCat::kProfile:
      return strprintf("{\"pc\": %lld, \"run\": %lld}",
                       static_cast<long long>(e.a),
                       static_cast<long long>(e.b));
    case TraceCat::kQueue:
    case TraceCat::kDvfs:
    case TraceCat::kEnergy:
    case TraceCat::kCount:
      break;
  }
  return "{}";
}

}  // namespace

std::string TraceSession::chrome_json() const {
  std::string out = "{\"traceEvents\": [\n";
  bool first = true;
  auto push = [&](std::string line) {
    out += first ? "" : ",\n";
    out += line;
    first = false;
  };

  // Metadata: process names in track creation order (one per distinct
  // node), thread names for every (node, tid) row the events use.
  std::vector<std::uint32_t> named_nodes;
  for (const auto& track : tracks_) {
    if (std::find(named_nodes.begin(), named_nodes.end(), track.node()) !=
        named_nodes.end())
      continue;
    named_nodes.push_back(track.node());
    const std::string name = track.node() == kSystemTrackNode
                                 ? "system"
                                 : strprintf("node 0x%04x", track.node());
    push(strprintf("{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %s, "
                   "\"args\": {\"name\": \"%s\"}}",
                   pid_of(track.node()).c_str(), name.c_str()));
  }
  std::vector<std::pair<std::uint32_t, std::int32_t>> rows;
  for (const auto& e : events_) rows.emplace_back(e.node, e.tid);
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  for (const auto& [node, tid] : rows)
    push(strprintf("{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": %s, "
                   "\"tid\": %d, \"args\": {\"name\": \"%s\"}}",
                   pid_of(node).c_str(), tid, tid_name(tid).c_str()));

  for (const auto& e : events_) {
    const std::string name = trace_event_name(e.cat, e.sub);
    const std::string common = strprintf(
        "\"cat\": \"%s\", \"ts\": %s, \"pid\": %s, \"tid\": %d",
        trace_cat_name(e.cat), ts_us(e.time).c_str(), pid_of(e.node).c_str(),
        e.tid);
    switch (e.kind) {
      case TraceKind::kBegin:
        push(strprintf("{\"name\": \"%s\", \"ph\": \"B\", %s, \"args\": %s}",
                       name.c_str(), common.c_str(), event_args(e).c_str()));
        break;
      case TraceKind::kEnd:
        push(strprintf("{\"name\": \"%s\", \"ph\": \"E\", %s}", name.c_str(),
                       common.c_str()));
        break;
      case TraceKind::kInstant:
        push(strprintf(
            "{\"name\": \"%s\", \"ph\": \"i\", \"s\": \"t\", %s, \"args\": %s}",
            name.c_str(), common.c_str(), event_args(e).c_str()));
        break;
      case TraceKind::kCounter:
        push(strprintf(
            "{\"name\": \"%s\", \"ph\": \"C\", %s, \"args\": {\"value\": %.9g}}",
            name.c_str(), common.c_str(), e.value));
        break;
    }
  }

  out += strprintf(
      "\n],\n\"displayTimeUnit\": \"ns\",\n"
      "\"otherData\": {\"dropped_events\": %llu, \"tracks\": %llu, "
      "\"events\": %llu}\n}\n",
      static_cast<unsigned long long>(dropped_total()),
      static_cast<unsigned long long>(tracks_.size()),
      static_cast<unsigned long long>(events_.size()));
  return out;
}

namespace {

void save_trace_event(StateWriter& w, const TraceEvent& e) {
  w.i64(e.time);
  w.u32(e.track);
  w.u32(e.seq);
  w.u32(e.node);
  w.u8(static_cast<std::uint8_t>(e.kind));
  w.u8(static_cast<std::uint8_t>(e.cat));
  w.u16(e.sub);
  w.u32(static_cast<std::uint32_t>(e.tid));
  w.u64(static_cast<std::uint64_t>(e.a));
  w.u64(static_cast<std::uint64_t>(e.b));
  w.f64(e.value);
}

TraceEvent load_trace_event(StateReader& r) {
  TraceEvent e;
  e.time = r.i64();
  e.track = r.u32();
  e.seq = r.u32();
  e.node = r.u32();
  e.kind = static_cast<TraceKind>(r.u8());
  e.cat = static_cast<TraceCat>(r.u8());
  e.sub = r.u16();
  e.tid = static_cast<std::int32_t>(r.u32());
  e.a = static_cast<std::int64_t>(r.u64());
  e.b = static_cast<std::int64_t>(r.u64());
  e.value = r.f64();
  return e;
}

}  // namespace

void Track::save_state(StateWriter& w) const {
  w.u32(seq_);
  ring_.save_state(w, [&](const TraceEvent& e) { save_trace_event(w, e); });
}

void Track::load_state(StateReader& r) {
  seq_ = r.u32();
  ring_.load_state(r, [&] { return load_trace_event(r); });
}

void TraceSession::save_state(StateWriter& w) const {
  w.u64(tracks_.size());
  for (const Track& t : tracks_) t.save_state(w);
  w.seq(events_, [&](const TraceEvent& e) { save_trace_event(w, e); });
  metrics_.save_state(w);
  profiler_.save_state(w);
  if (cfg_.energy) attr_.save_state(w);
}

void TraceSession::load_state(StateReader& r) {
  const std::uint64_t n = r.u64();
  if (n != tracks_.size()) {
    throw SnapError(SnapError::Code::kMalformed,
                    "snapshot track count does not match the attached "
                    "session's track layout");
  }
  for (Track& t : tracks_) t.load_state(r);
  events_.clear();
  r.seq([&](std::size_t) { events_.push_back(load_trace_event(r)); });
  metrics_.load_state(r);
  profiler_.load_state(r);
  if (cfg_.energy) attr_.load_state(r);
}

}  // namespace swallow
