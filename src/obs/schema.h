// Chrome trace-event schema check: the checked-in validation CI runs on
// every produced trace (`swallow_stat --check`).  Not a generic JSON
// Schema engine — a hand-rolled structural check of exactly the contract
// docs/observability.md documents, which is both stronger (cross-event
// rules like B/E balance) and dependency-free.
#pragma once

#include <string>

#include "common/json.h"

namespace swallow {

/// Validate a parsed trace document.  Returns "" when valid, otherwise a
/// human-readable description of the first violation.  Checks:
///   - top level: object with "traceEvents" array + "otherData" object
///   - every event: name/ph/pid/tid present and well-typed; ph is one of
///     M/B/E/i/C; "ts" present and non-negative on non-metadata events;
///     instants carry a scope, counters a numeric args.value
///   - ts is non-decreasing across non-metadata events (the deterministic
///     merge emits in time order)
///   - B/E spans balance per (pid, tid) and never go negative
std::string check_chrome_trace(const Json& doc);

}  // namespace swallow
