// Chrome trace-event schema check: the checked-in validation CI runs on
// every produced trace (`swallow_stat --check`).  Not a generic JSON
// Schema engine — a hand-rolled structural check of exactly the contract
// docs/observability.md documents, which is both stronger (cross-event
// rules like B/E balance) and dependency-free.
#pragma once

#include <string>

#include "common/json.h"

namespace swallow {

/// Validate a parsed trace document.  Returns "" when valid, otherwise a
/// human-readable description of the first violation.  Checks:
///   - top level: object with "traceEvents" array + "otherData" object
///   - every event: name/ph/pid/tid present and well-typed; ph is one of
///     M/B/E/i/C; "ts" present and non-negative on non-metadata events;
///     instants carry a scope, counters a numeric args.value
///   - ts is non-decreasing across non-metadata events (the deterministic
///     merge emits in time order)
///   - B/E spans balance per (pid, tid) and never go negative
///   - counters in the "energy" category are named "<series> uJ" or
///     "<series> W" (cumulative-energy vs windowed-power tracks)
std::string check_chrome_trace(const Json& doc);

/// Validate an energy-attribution export (swallow_run --energy-attr).
/// Returns "" when valid, otherwise the first violation.  Checks:
///   - top level: object with an "energyAttribution" object carrying
///     version (known), shards (positive), accounts (object of
///     non-negative numbers), totalJ (non-negative number), buckets
///   - every bucket: non-empty string "stack" + non-negative number "j"
///   - stacks strictly ascending (sorted and unique — the deterministic
///     dump contract byte-compares rely on)
///   - the bucket total matches totalJ to float-reassociation tolerance
std::string check_energy_attribution(const Json& doc);

}  // namespace swallow
