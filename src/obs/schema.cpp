#include "obs/schema.h"

#include <map>
#include <utility>

#include "common/strings.h"

namespace swallow {

std::string check_chrome_trace(const Json& doc) {
  if (!doc.is_object()) return "top level is not an object";
  const Json* events = doc.get("traceEvents");
  if (!events) return "missing \"traceEvents\"";
  if (!events->is_array()) return "\"traceEvents\" is not an array";
  const Json* other = doc.get("otherData");
  if (!other || !other->is_object())
    return "missing \"otherData\" object";
  if (!other->has("dropped_events"))
    return "otherData missing \"dropped_events\"";

  double last_ts = -1.0;
  std::map<std::pair<double, double>, long> span_depth;
  std::size_t i = 0;
  for (const Json& e : events->as_array()) {
    const std::string where = strprintf("event %zu", i++);
    if (!e.is_object()) return where + ": not an object";
    const Json* name = e.get("name");
    if (!name || !name->is_string() || name->as_string().empty())
      return where + ": bad \"name\"";
    const Json* ph = e.get("ph");
    if (!ph || !ph->is_string() || ph->as_string().size() != 1)
      return where + ": bad \"ph\"";
    const char phase = ph->as_string()[0];
    if (phase != 'M' && phase != 'B' && phase != 'E' && phase != 'i' &&
        phase != 'C')
      return where + strprintf(": unexpected phase '%c'", phase);
    const Json* pid = e.get("pid");
    if (!pid || !pid->is_number()) return where + ": bad \"pid\"";
    if (phase == 'M') continue;  // metadata: no ts, tid optional per record

    const Json* tid = e.get("tid");
    if (!tid || !tid->is_number()) return where + ": bad \"tid\"";
    const Json* ts = e.get("ts");
    if (!ts || !ts->is_number() || ts->as_number() < 0)
      return where + ": bad \"ts\"";
    if (ts->as_number() < last_ts)
      return where + ": ts decreases (merge order violated)";
    last_ts = ts->as_number();

    if (phase == 'i') {
      const Json* scope = e.get("s");
      if (!scope || !scope->is_string())
        return where + ": instant missing scope \"s\"";
    }
    if (phase == 'C') {
      const Json* args = e.get("args");
      if (!args || !args->is_object() || !args->has("value") ||
          !args->at("value").is_number())
        return where + ": counter missing numeric args.value";
    }
    if (phase == 'B' || phase == 'E') {
      long& depth = span_depth[{pid->as_number(), tid->as_number()}];
      depth += phase == 'B' ? 1 : -1;
      if (depth < 0) return where + ": \"E\" without matching \"B\"";
    }
  }
  for (const auto& [key, depth] : span_depth)
    if (depth != 0)
      return strprintf("unbalanced spans on pid %g tid %g (depth %ld)",
                       key.first, key.second, depth);
  return "";
}

}  // namespace swallow
