#include "obs/schema.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "common/strings.h"

namespace swallow {

std::string check_chrome_trace(const Json& doc) {
  if (!doc.is_object()) return "top level is not an object";
  const Json* events = doc.get("traceEvents");
  if (!events) return "missing \"traceEvents\"";
  if (!events->is_array()) return "\"traceEvents\" is not an array";
  const Json* other = doc.get("otherData");
  if (!other || !other->is_object())
    return "missing \"otherData\" object";
  if (!other->has("dropped_events"))
    return "otherData missing \"dropped_events\"";

  double last_ts = -1.0;
  std::map<std::pair<double, double>, long> span_depth;
  std::size_t i = 0;
  for (const Json& e : events->as_array()) {
    const std::string where = strprintf("event %zu", i++);
    if (!e.is_object()) return where + ": not an object";
    const Json* name = e.get("name");
    if (!name || !name->is_string() || name->as_string().empty())
      return where + ": bad \"name\"";
    const Json* ph = e.get("ph");
    if (!ph || !ph->is_string() || ph->as_string().size() != 1)
      return where + ": bad \"ph\"";
    const char phase = ph->as_string()[0];
    if (phase != 'M' && phase != 'B' && phase != 'E' && phase != 'i' &&
        phase != 'C')
      return where + strprintf(": unexpected phase '%c'", phase);
    const Json* pid = e.get("pid");
    if (!pid || !pid->is_number()) return where + ": bad \"pid\"";
    if (phase == 'M') continue;  // metadata: no ts, tid optional per record

    const Json* tid = e.get("tid");
    if (!tid || !tid->is_number()) return where + ": bad \"tid\"";
    const Json* ts = e.get("ts");
    if (!ts || !ts->is_number() || ts->as_number() < 0)
      return where + ": bad \"ts\"";
    if (ts->as_number() < last_ts)
      return where + ": ts decreases (merge order violated)";
    last_ts = ts->as_number();

    if (phase == 'i') {
      const Json* scope = e.get("s");
      if (!scope || !scope->is_string())
        return where + ": instant missing scope \"s\"";
    }
    if (phase == 'C') {
      const Json* args = e.get("args");
      if (!args || !args->is_object() || !args->has("value") ||
          !args->at("value").is_number())
        return where + ": counter missing numeric args.value";
      const Json* cat = e.get("cat");
      if (cat && cat->is_string() && cat->as_string() == "energy") {
        // Energy counter tracks are either cumulative energy ("... uJ")
        // or windowed power ("... W") — anything else is a unit bug.
        const std::string& n = name->as_string();
        const bool uj = n.size() > 3 && n.compare(n.size() - 3, 3, " uJ") == 0;
        const bool w = n.size() > 2 && n.compare(n.size() - 2, 2, " W") == 0;
        if (!uj && !w)
          return where + strprintf(": energy counter \"%s\" is neither a "
                                   "\" uJ\" nor a \" W\" series",
                                   n.c_str());
      }
    }
    if (phase == 'B' || phase == 'E') {
      long& depth = span_depth[{pid->as_number(), tid->as_number()}];
      depth += phase == 'B' ? 1 : -1;
      if (depth < 0) return where + ": \"E\" without matching \"B\"";
    }
  }
  for (const auto& [key, depth] : span_depth)
    if (depth != 0)
      return strprintf("unbalanced spans on pid %g tid %g (depth %ld)",
                       key.first, key.second, depth);
  return "";
}

std::string check_energy_attribution(const Json& doc) {
  if (!doc.is_object()) return "top level is not an object";
  const Json* attr = doc.get("energyAttribution");
  if (!attr) return "missing \"energyAttribution\"";
  if (!attr->is_object()) return "\"energyAttribution\" is not an object";

  const Json* version = attr->get("version");
  if (!version || !version->is_number()) return "bad \"version\"";
  if (version->as_number() != 1)
    return strprintf("unknown attribution version %g", version->as_number());

  const Json* shards = attr->get("shards");
  if (!shards || !shards->is_number() || shards->as_number() < 1)
    return "bad \"shards\" (need a positive count)";

  const Json* accounts = attr->get("accounts");
  if (!accounts || !accounts->is_object())
    return "missing \"accounts\" object";
  for (const auto& [name, j] : accounts->items()) {
    if (!j.is_number() || j.as_number() < 0)
      return strprintf("account \"%s\": not a non-negative number",
                       name.c_str());
  }

  const Json* total = attr->get("totalJ");
  if (!total || !total->is_number() || total->as_number() < 0)
    return "bad \"totalJ\"";

  const Json* buckets = attr->get("buckets");
  if (!buckets || !buckets->is_array()) return "missing \"buckets\" array";
  double sum = 0.0;
  const std::string* prev = nullptr;
  std::size_t i = 0;
  for (const Json& b : buckets->as_array()) {
    const std::string where = strprintf("bucket %zu", i++);
    if (!b.is_object()) return where + ": not an object";
    const Json* stack = b.get("stack");
    if (!stack || !stack->is_string() || stack->as_string().empty())
      return where + ": bad \"stack\"";
    const Json* j = b.get("j");
    if (!j || !j->is_number() || j->as_number() < 0)
      return where + ": bad \"j\" (need a non-negative number)";
    if (prev != nullptr && !(*prev < stack->as_string()))
      return where + ": stacks not strictly ascending (dump must be "
                     "sorted and deduplicated)";
    prev = &stack->as_string();
    sum += j->as_number();
  }
  // Bucket splitting reassociates the per-charge sums, so compare to a
  // float-reassociation tolerance rather than bit-exactly (the bit-exact
  // conservation contract lives in the SWALLOW_CHECK probe, against the
  // live ledger).
  const double tol = 1e-6 * std::max(1.0, std::abs(total->as_number()));
  if (std::abs(sum - total->as_number()) > tol)
    return strprintf("bucket total %.17g does not match totalJ %.17g", sum,
                     total->as_number());
  return "";
}

}  // namespace swallow
