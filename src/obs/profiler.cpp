#include "obs/profiler.h"

#include <algorithm>
#include <map>

#include "common/strings.h"

namespace swallow {

void Profiler::note_symbols(
    std::uint32_t node,
    std::vector<std::pair<std::uint32_t, std::string>> syms) {
  std::sort(syms.begin(), syms.end());
  symbols_[node] = std::move(syms);
}

void Profiler::sample(std::uint32_t node, int tid, std::uint32_t pc,
                      bool running) {
  ++counts_[Key{node, tid, pc, running}];
  ++samples_;
}

std::string Profiler::symbolize(std::uint32_t node, std::uint32_t pc) const {
  const auto it = symbols_.find(node);
  if (it != symbols_.end() && !it->second.empty()) {
    // Last label with addr <= pc.
    const auto& syms = it->second;
    auto ub = std::upper_bound(
        syms.begin(), syms.end(), pc,
        [](std::uint32_t p, const auto& s) { return p < s.first; });
    if (ub != syms.begin()) return std::prev(ub)->second;
  }
  return strprintf("0x%04x", pc);
}

std::string Profiler::collapsed() const {
  // Fold (node, tid, pc) samples by symbol: distinct PCs under the same
  // label merge into one stack line.
  std::map<std::string, std::uint64_t> folded;
  for (const auto& [key, count] : counts_) {
    std::string stack =
        strprintf("core_0x%04x;t%d;%s", key.node, key.tid,
                  symbolize(key.node, key.pc).c_str());
    if (!key.running) stack += ";[wait]";
    folded[stack] += count;
  }
  std::string out;
  for (const auto& [stack, count] : folded)
    out += strprintf("%s %llu\n", stack.c_str(),
                     static_cast<unsigned long long>(count));
  return out;
}

void Profiler::save_state(StateWriter& w) const {
  // std::map iterates in key order, so the byte stream is deterministic.
  w.u64(symbols_.size());
  for (const auto& [node, syms] : symbols_) {
    w.u32(node);
    w.seq(syms, [&](const std::pair<std::uint32_t, std::string>& s) {
      w.u32(s.first);
      w.str(s.second);
    });
  }
  w.u64(counts_.size());
  for (const auto& [key, count] : counts_) {
    w.u32(key.node);
    w.u32(static_cast<std::uint32_t>(key.tid));
    w.u32(key.pc);
    w.b(key.running);
    w.u64(count);
  }
  w.u64(samples_);
}

void Profiler::load_state(StateReader& r) {
  symbols_.clear();
  const std::uint64_t nsym = r.u64();
  for (std::uint64_t i = 0; i < nsym; ++i) {
    const std::uint32_t node = r.u32();
    std::vector<std::pair<std::uint32_t, std::string>> syms;
    r.seq([&](std::size_t) {
      const std::uint32_t addr = r.u32();
      syms.emplace_back(addr, r.str());
    });
    symbols_[node] = std::move(syms);
  }
  counts_.clear();
  const std::uint64_t ncnt = r.u64();
  for (std::uint64_t i = 0; i < ncnt; ++i) {
    Key k;
    k.node = r.u32();
    k.tid = static_cast<int>(r.u32());
    k.pc = r.u32();
    k.running = r.b();
    counts_[k] = r.u64();
  }
  samples_ = r.u64();
}

}  // namespace swallow
