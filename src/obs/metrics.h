// Metrics registry: named counters, gauges and log-bucketed histograms
// registered by the arch/noc/board layers and dumped as JSON at the end of
// a run.
//
// Determinism: instruments are keyed (name, owner node) and each instance
// is written by exactly one node — i.e. one domain — during the run, so
// parallel workers never contend.  Aggregation across owners happens only
// at dump time, walking names in sorted order and owners in creation
// order, which makes the dump a pure function of the simulated history.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <string>
#include <vector>

#include "common/stateio.h"

namespace swallow {

/// Monotonic count of events (tokens retransmitted, parks, ...).
class MetricCounter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written value (per-thread IPC, final queue depth, ...).
class MetricGauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Histogram over non-negative values with power-of-two buckets: bucket i
/// holds samples in [2^(i-1), 2^i) (bucket 0 holds the value 0).  Log
/// bucketing keeps latency distributions spanning ns..ms in ~40 slots, and
/// bucket merging across owners is exact — no rebinning error.
class LogHistogram {
 public:
  static constexpr int kBuckets = 64;

  void add(std::uint64_t v) {
    ++counts_[bucket_of(v)];
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return count_ ? max_ : 0; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }
  std::uint64_t bucket(int i) const {
    return counts_[static_cast<std::size_t>(i)];
  }
  /// Lower edge of bucket i (0, 1, 2, 4, 8, ...).
  static std::uint64_t bucket_lo(int i) {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }

  /// Approximate quantile (0..1): the upper edge of the bucket containing
  /// the q-th sample.  Coarse by design — exact enough for p50/p90/p99
  /// over log-distributed latencies.
  std::uint64_t percentile(double q) const;

  void merge(const LogHistogram& o) {
    for (int i = 0; i < kBuckets; ++i)
      counts_[static_cast<std::size_t>(i)] +=
          o.counts_[static_cast<std::size_t>(i)];
    count_ += o.count_;
    sum_ += o.sum_;
    if (o.count_) {
      min_ = std::min(min_, o.min_);
      max_ = std::max(max_, o.max_);
    }
  }

  static int bucket_of(std::uint64_t v) {
    int b = 0;
    while (v) {
      ++b;
      v >>= 1;
    }
    return std::min(b, kBuckets - 1);
  }

  void save_state(StateWriter& w) const {
    for (std::uint64_t c : counts_) w.u64(c);
    w.u64(count_);
    w.u64(sum_);
    w.u64(min_);
    w.u64(max_);
  }
  void load_state(StateReader& r) {
    for (std::uint64_t& c : counts_) c = r.u64();
    count_ = r.u64();
    sum_ = r.u64();
    min_ = r.u64();
    max_ = r.u64();
  }

 private:
  std::uint64_t counts_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ = 0;
};

class MetricsRegistry {
 public:
  /// Get-or-create the instrument for (name, owner).  Call at attach time
  /// (serial); the returned pointer is stable and safe to write from the
  /// owner's domain for the rest of the run.
  MetricCounter* counter(const std::string& name, std::uint32_t owner);
  MetricGauge* gauge(const std::string& name, std::uint32_t owner);
  LogHistogram* histogram(const std::string& name, std::uint32_t owner);

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Aggregated JSON dump: counters summed across owners, histograms
  /// merged, gauges listed per owner.  Deterministic (sorted names, owner
  /// creation order).
  std::string dump_json() const;

  // ----- Snapshot (src/snap/) -----
  /// Instruments are written keyed (name, owner) so restore tolerates any
  /// registration order; loading get-or-creates each entry.
  void save_state(StateWriter& w) const;
  void load_state(StateReader& r);

 private:
  template <typename T>
  struct Entry {
    std::string name;
    std::uint32_t owner;
    T instrument;
  };
  template <typename T>
  static T* find_or_add(std::deque<Entry<T>>& entries, const std::string& name,
                        std::uint32_t owner) {
    for (auto& e : entries)
      if (e.owner == owner && e.name == name) return &e.instrument;
    entries.push_back(Entry<T>{name, owner, T{}});
    return &entries.back().instrument;
  }
  template <typename T>
  static std::vector<std::string> sorted_names(
      const std::deque<Entry<T>>& entries) {
    std::vector<std::string> names;
    for (const auto& e : entries)
      if (std::find(names.begin(), names.end(), e.name) == names.end())
        names.push_back(e.name);
    std::sort(names.begin(), names.end());
    return names;
  }

  std::deque<Entry<MetricCounter>> counters_;
  std::deque<Entry<MetricGauge>> gauges_;
  std::deque<Entry<LogHistogram>> histograms_;
};

}  // namespace swallow
