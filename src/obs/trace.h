// TraceSession: the system-wide observability hub (ISSUE 3 tentpole).
//
// Determinism contract (docs/observability.md): every event is written to
// a *track* — a bounded ring owned by exactly one emitting node (a core or
// a switch), so each track has a single writer regardless of how domains
// are spread across parallel-engine workers.  Tracks are created at attach
// time in a fixed machine order, stamp a per-track sequence number on each
// event, and are drained only at flush points that SwallowSystem chooses
// identically for the sequential and parallel engines (quantum-aligned
// chop times).  The merged stream is ordered by (time, track index, seq) —
// none of which depend on engine internals — so the exported trace is
// byte-identical for any --jobs value, including under ring overflow
// (drop-newest is a pure function of the producer's own event sequence).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/stateio.h"
#include "common/units.h"
#include "obs/energy_attr.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/ring.h"

namespace swallow {

struct TraceConfig {
  bool tracing = false;   // structured event tracing (Chrome JSON export)
  bool metrics = false;   // metrics registry collection
  bool profile = false;   // sampling profiler
  bool energy = false;    // energy attribution + windowed power counters
  std::size_t track_capacity = 16384;  // events buffered per track per flush
  TimePs flush_period = microseconds(100.0);  // chop/merge/sample period
  TimePs power_window = microseconds(100.0);  // power-timeline window
};

/// One single-writer event stream.  Models hold a Track* and call the
/// emitters below from their own domain; the session merges at flush time.
class Track {
 public:
  void begin(TimePs t, TraceCat cat, std::uint16_t sub, int tid,
             std::int64_t a = 0, std::int64_t b = 0) {
    emit(t, TraceKind::kBegin, cat, sub, tid, a, b, 0.0);
  }
  void end(TimePs t, TraceCat cat, std::uint16_t sub, int tid) {
    emit(t, TraceKind::kEnd, cat, sub, tid, 0, 0, 0.0);
  }
  void instant(TimePs t, TraceCat cat, std::uint16_t sub, int tid,
               std::int64_t a = 0, std::int64_t b = 0, double value = 0.0) {
    emit(t, TraceKind::kInstant, cat, sub, tid, a, b, value);
  }
  void counter(TimePs t, TraceCat cat, std::uint16_t sub, int tid,
               double value) {
    emit(t, TraceKind::kCounter, cat, sub, tid, 0, 0, value);
  }

  std::uint32_t node() const { return node_; }
  const std::string& name() const { return name_; }
  std::uint64_t dropped() const { return ring_.dropped(); }
  std::size_t buffered() const { return ring_.size(); }
  std::size_t high_watermark() const { return ring_.high_watermark(); }

  // ----- Snapshot (src/snap/): sequence counter and buffered (unflushed)
  // events.  Identity (node, name, index) is wiring, re-created at attach.
  void save_state(StateWriter& w) const;
  void load_state(StateReader& r);

 private:
  friend class TraceSession;
  Track(std::uint32_t node, std::string name, std::uint32_t index,
        std::size_t capacity)
      : node_(node), name_(std::move(name)), index_(index), ring_(capacity) {}

  void emit(TimePs t, TraceKind kind, TraceCat cat, std::uint16_t sub,
            int tid, std::int64_t a, std::int64_t b, double value) {
    TraceEvent e;
    e.time = t;
    e.track = index_;
    e.seq = seq_++;  // stamped even when the push drops: drops stay
                     // deterministic and dropped() counts true emissions
    e.node = node_;
    e.kind = kind;
    e.cat = cat;
    e.sub = sub;
    e.tid = tid;
    e.a = a;
    e.b = b;
    e.value = value;
    ring_.push(std::move(e));
  }

  std::uint32_t node_;
  std::string name_;
  std::uint32_t index_;  // creation order: the merge tiebreak across tracks
  std::uint32_t seq_ = 0;
  RingBuffer<TraceEvent> ring_;
};

class TraceSession {
 public:
  explicit TraceSession(TraceConfig cfg = {});

  const TraceConfig& config() const { return cfg_; }
  bool tracing() const { return cfg_.tracing; }
  bool collecting_metrics() const { return cfg_.metrics; }
  bool profiling() const { return cfg_.profile; }
  bool energy() const { return cfg_.energy; }
  /// Any pillar active — SwallowSystem chops runs only when this is true.
  bool active() const {
    return cfg_.tracing || cfg_.metrics || cfg_.profile || cfg_.energy;
  }
  TimePs flush_period() const { return cfg_.flush_period; }
  TimePs power_window() const { return cfg_.power_window; }

  /// Create the event stream for one node.  Must be called in a fixed
  /// machine order (attach time, before the run) — the creation index is
  /// part of the deterministic merge key.  The Track lives as long as the
  /// session.
  Track* make_track(std::uint32_t node, std::string name);

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  Profiler& profiler() { return profiler_; }
  const Profiler& profiler() const { return profiler_; }
  EnergyAttribution& energy_attribution() { return attr_; }
  const EnergyAttribution& energy_attribution() const { return attr_; }

  /// Drain every track's events with time <= t into the merged stream.
  /// Call only at points where all domains have reached t (after a
  /// sequential run_until or a parallel quantum barrier).
  void flush_up_to(TimePs t);

  /// Final flush at the end-of-run time.
  void finish(TimePs t) { flush_up_to(t); }

  /// Merged events, in the deterministic (time, track, seq) order.
  const std::vector<TraceEvent>& events() const { return events_; }
  std::uint64_t dropped_total() const;
  std::size_t track_count() const { return tracks_.size(); }
  const Track& track(std::size_t i) const { return tracks_.at(i); }

  /// Chrome trace-event / Perfetto JSON of the merged stream.  Pure
  /// function of events() — byte-identical traces in, byte-identical
  /// JSON out.
  std::string chrome_json() const;

  // ----- Snapshot (src/snap/) -----
  /// Serialise the merged stream, every track's buffered events and
  /// sequence counters, the metrics instruments and the profiler.  The
  /// config and track layout are wiring: restore into a session with the
  /// same TraceConfig after the system re-ran attach_observability (the
  /// config hash pins both).
  void save_state(StateWriter& w) const;
  void load_state(StateReader& r);

 private:
  TraceConfig cfg_;
  std::deque<Track> tracks_;  // deque: Track* stays valid as tracks grow
  std::vector<TraceEvent> events_;
  MetricsRegistry metrics_;
  Profiler profiler_;
  EnergyAttribution attr_;
};

}  // namespace swallow
