// Energy attribution: where every joule goes, at function granularity.
//
// The ledger (src/energy/ledger.h) answers "how much energy per account";
// this layer answers "which code / which wire spent it".  Each ledger
// partition (per-slice, per-bridge, the system ledger) gets an AttrShard
// registered as its EnergyAttrSink: the shard mirrors the partition's exact
// charge sequence into
//   * per-account *shadow totals* — seeded from the ledger totals at attach
//     and fed the identical `+=` stream, so shadow == ledger bit for bit
//     (the SWALLOW_CHECK conservation probe compares double bits), and
//   * exactly one fine-grained *bucket* per charge, selected by a context
//     cursor the instrumented charge sites set around each ledger call:
//         core_0x0011;t0;stage_loop      instruction energy by symbol
//         core_0x0011;[baseline]         idle line: static + clock tree
//         node_0x0011;link;E             first-transmission wire energy
//         node_0x0011;link.retry;E       go-back-N retransmissions + NAKs
//         node_0x0011;ni                 per-token switch/NI dynamic energy
//         slice0;dc-dc-io                uninstrumented sites fall back to
//                                        an account-level bucket
// Charge order per shard is deterministic (one shard per event domain), so
// the folded/JSON dumps are byte-identical across --jobs values.
//
// The per-instruction *interval* energy (PowerTrace level integration)
// cannot name a PC at settle time; retires recorded via note_instr() since
// the previous settle carry the spread: the interval's joules are
// distributed over the pending (tid, pc) retire counts proportionally.
// Per-instruction *pulses* (class-weight deviation) charge their own
// (tid, pc) bucket directly.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/stateio.h"
#include "common/units.h"
#include "energy/ledger.h"
#include "obs/profiler.h"

namespace swallow {

/// One ledger partition's attribution mirror.  Single-writer: the shard is
/// only touched from its partition's event domain (plus barrier-time dumps).
class AttrShard final : public EnergyAttrSink {
 public:
  /// Fine-grained bucket classes, in render order.
  enum Kind : std::uint8_t {
    kAccount = 0,  // fallback: uninstrumented charge, detail = account index
    kBaseline,     // core idle line, per node
    kInstr,        // instruction energy, per (node, tid, pc)
    kLink,         // first-transmission wire energy, per (node, direction)
    kLinkRetry,    // go-back-N retransmission + NAK energy, per (node, dir)
    kNi,           // per-token switch/NI dynamic energy, per node
  };

  /// Sentinel pc for interval energy that arrived with no pending retires
  /// (a thread became runnable but issued nothing before the settle).
  static constexpr std::uint32_t kNoPc = 0xFFFFFFFFu;

  struct BucketKey {
    std::uint8_t kind = kAccount;
    std::uint32_t node = 0;
    std::int32_t tid = -1;
    std::uint32_t detail = 0;  // pc (kInstr) / direction (kLink*) / account
    bool operator<(const BucketKey& o) const {
      return std::tie(kind, node, tid, detail) <
             std::tie(o.kind, o.node, o.tid, o.detail);
    }
  };

  explicit AttrShard(std::string name) : name_(std::move(name)) {}

  /// Seed the shadow totals from the partition's current totals and seed an
  /// account-level bucket for any pre-attach energy, then register as the
  /// ledger's sink.  Call once, before the run.
  void attach(EnergyLedger& ledger);

  // ----- context cursor (instrumented charge sites) -----
  // Set immediately before the ledger call, clear immediately after: a
  // stale cursor would mislabel the next uninstrumented charge.
  void cursor_instr(std::uint32_t node, int tid, std::uint32_t pc) {
    ctx_ = Ctx::kInstr;
    node_ = node;
    tid_ = tid;
    detail_ = pc;
  }
  void cursor_instr_spread(std::uint32_t node) {
    ctx_ = Ctx::kSpread;
    node_ = node;
  }
  void cursor_baseline(std::uint32_t node) {
    ctx_ = Ctx::kBaseline;
    node_ = node;
  }
  void cursor_link(std::uint32_t node, int direction, bool retry) {
    ctx_ = retry ? Ctx::kLinkRetry : Ctx::kLink;
    node_ = node;
    detail_ = static_cast<std::uint32_t>(direction);
  }
  void cursor_ni(std::uint32_t node) {
    ctx_ = Ctx::kNi;
    node_ = node;
  }
  void cursor_clear() { ctx_ = Ctx::kNone; }

  /// Record one retired instruction; the next instruction-account interval
  /// settle for `node` is distributed over these counts.
  void note_instr(std::uint32_t node, int tid, std::uint32_t pc) {
    pending_[PendKey{node, tid, pc}] += 1.0;
  }

  // ----- EnergyAttrSink -----
  void on_charge(EnergyAccount account, Joules j) override;

  const std::string& name() const { return name_; }
  Joules shadow(EnergyAccount a) const {
    return shadow_[static_cast<std::size_t>(a)];
  }
  const std::map<BucketKey, Joules>& buckets() const { return buckets_; }

  void save_state(StateWriter& w) const;
  void load_state(StateReader& r);

 private:
  enum class Ctx : std::uint8_t {
    kNone,
    kInstr,
    kSpread,
    kBaseline,
    kLink,
    kLinkRetry,
    kNi,
  };
  using PendKey = std::tuple<std::uint32_t, std::int32_t, std::uint32_t>;

  void spread_instr(std::uint32_t node, Joules j);

  std::string name_;
  std::array<Joules, static_cast<std::size_t>(EnergyAccount::kCount)>
      shadow_{};
  std::map<BucketKey, Joules> buckets_;
  std::map<PendKey, double> pending_;  // (node, tid, pc) -> retire count
  Ctx ctx_ = Ctx::kNone;
  std::uint32_t node_ = 0;
  std::int32_t tid_ = -1;
  std::uint32_t detail_ = 0;
};

/// Session-level container: owns the shards (one per ledger partition, in
/// the same fixed order the system merges partition ledgers), symbolizes
/// and merges their buckets into deterministic folded / JSON dumps, and
/// proves conservation against the merged ledger.
class EnergyAttribution {
 public:
  /// Create the next shard and attach it to `ledger`.  Shard order must
  /// match SwallowSystem::ledger()'s merge order (slices row-major, then
  /// bridges, then the system ledger) so attributed totals reproduce the
  /// merged ledger's summation order bit for bit.
  AttrShard& make_shard(std::string name, EnergyLedger& ledger);

  bool attached() const { return !shards_.empty(); }
  std::size_t shard_count() const { return shards_.size(); }
  const AttrShard& shard(std::size_t i) const { return shards_[i]; }

  /// Symbol table for instruction buckets (same contract as
  /// Profiler::note_symbols); call at finish time.
  void note_symbols(std::uint32_t node,
                    std::vector<std::pair<std::uint32_t, std::string>> syms) {
    symbols_.note_symbols(node, std::move(syms));
  }

  /// Per-account attributed total: shard shadows summed in shard order —
  /// the same order SwallowSystem::ledger() merges partitions, so equality
  /// with the merged ledger is exact, not approximate.
  Joules attributed_total(EnergyAccount a) const;
  Joules attributed_grand_total() const;

  /// "" when attributed totals equal `merged`'s totals in double bits for
  /// every account; otherwise a description of the first mismatch.
  std::string conservation_error(const EnergyLedger& merged) const;

  /// Flamegraph-collapsed dump: one "stack picojoules" line per merged
  /// bucket, sorted by stack.  Integer pJ for flamegraph.pl compatibility.
  std::string folded() const;

  /// Deterministic JSON export ({"energyAttribution": ...}); doubles are
  /// %.17g so byte-compares across --jobs values are meaningful.
  std::string to_json() const;

  void save_state(StateWriter& w) const;
  void load_state(StateReader& r);

 private:
  std::string stack_of(const AttrShard& shard,
                       const AttrShard::BucketKey& key) const;
  /// Buckets of all shards merged by rendered stack, += in shard order.
  std::map<std::string, Joules> merged_buckets() const;

  std::deque<AttrShard> shards_;  // stable addresses: ledgers hold pointers
  Profiler symbols_;              // symbol tables only; no samples
};

}  // namespace swallow
