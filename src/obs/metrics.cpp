#include "obs/metrics.h"

#include "common/strings.h"
#include "obs/events.h"

namespace swallow {
namespace {

std::string owner_name(std::uint32_t owner) {
  return owner == kSystemTrackNode ? "system" : strprintf("0x%04x", owner);
}

}  // namespace

std::uint64_t LogHistogram::percentile(double q) const {
  if (!count_) return 0;
  const auto rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += counts_[static_cast<std::size_t>(i)];
    if (seen > rank) {
      // Upper edge of the bucket, clamped to the observed extremes.
      const std::uint64_t hi = i == 0 ? 0 : bucket_lo(i) * 2 - 1;
      return std::min(std::max(hi, min()), max());
    }
  }
  return max();
}

MetricCounter* MetricsRegistry::counter(const std::string& name,
                                        std::uint32_t owner) {
  return find_or_add(counters_, name, owner);
}

MetricGauge* MetricsRegistry::gauge(const std::string& name,
                                    std::uint32_t owner) {
  return find_or_add(gauges_, name, owner);
}

LogHistogram* MetricsRegistry::histogram(const std::string& name,
                                         std::uint32_t owner) {
  return find_or_add(histograms_, name, owner);
}

std::string MetricsRegistry::dump_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& name : sorted_names(counters_)) {
    std::uint64_t total = 0;
    for (const auto& e : counters_)
      if (e.name == name) total += e.instrument.value();
    out += strprintf("%s\n    \"%s\": %llu", first ? "" : ",", name.c_str(),
                     static_cast<unsigned long long>(total));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& name : sorted_names(gauges_)) {
    out += strprintf("%s\n    \"%s\": {", first ? "" : ",", name.c_str());
    bool inner_first = true;
    for (const auto& e : gauges_) {
      if (e.name != name) continue;
      out += strprintf("%s\n      \"%s\": %.9g", inner_first ? "" : ",",
                       owner_name(e.owner).c_str(), e.instrument.value());
      inner_first = false;
    }
    out += "\n    }";
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& name : sorted_names(histograms_)) {
    LogHistogram merged;
    for (const auto& e : histograms_)
      if (e.name == name) merged.merge(e.instrument);
    out += strprintf(
        "%s\n    \"%s\": {\n"
        "      \"count\": %llu, \"sum\": %llu, \"min\": %llu, \"max\": %llu,\n"
        "      \"mean\": %.9g, \"p50\": %llu, \"p90\": %llu, \"p99\": %llu,\n"
        "      \"buckets\": [",
        first ? "" : ",", name.c_str(),
        static_cast<unsigned long long>(merged.count()),
        static_cast<unsigned long long>(merged.sum()),
        static_cast<unsigned long long>(merged.min()),
        static_cast<unsigned long long>(merged.max()), merged.mean(),
        static_cast<unsigned long long>(merged.percentile(0.50)),
        static_cast<unsigned long long>(merged.percentile(0.90)),
        static_cast<unsigned long long>(merged.percentile(0.99)));
    bool bucket_first = true;
    for (int i = 0; i < LogHistogram::kBuckets; ++i) {
      if (!merged.bucket(i)) continue;
      out += strprintf("%s[%llu, %llu]", bucket_first ? "" : ", ",
                       static_cast<unsigned long long>(LogHistogram::bucket_lo(i)),
                       static_cast<unsigned long long>(merged.bucket(i)));
      bucket_first = false;
    }
    out += "]\n    }";
    first = false;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

void MetricsRegistry::save_state(StateWriter& w) const {
  w.seq(counters_, [&](const Entry<MetricCounter>& e) {
    w.str(e.name);
    w.u32(e.owner);
    w.u64(e.instrument.value());
  });
  w.seq(gauges_, [&](const Entry<MetricGauge>& e) {
    w.str(e.name);
    w.u32(e.owner);
    w.f64(e.instrument.value());
  });
  w.seq(histograms_, [&](const Entry<LogHistogram>& e) {
    w.str(e.name);
    w.u32(e.owner);
    e.instrument.save_state(w);
  });
}

void MetricsRegistry::load_state(StateReader& r) {
  r.seq([&](std::size_t) {
    const std::string name = r.str();
    const std::uint32_t owner = r.u32();
    MetricCounter fresh;
    fresh.add(r.u64());
    *counter(name, owner) = fresh;
  });
  r.seq([&](std::size_t) {
    const std::string name = r.str();
    const std::uint32_t owner = r.u32();
    gauge(name, owner)->set(r.f64());
  });
  r.seq([&](std::size_t) {
    const std::string name = r.str();
    const std::uint32_t owner = r.u32();
    histogram(name, owner)->load_state(r);
  });
}

}  // namespace swallow
