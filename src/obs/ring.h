// Bounded event log: the ring-buffer backend every observability stream
// (trace tracks, the legacy instruction TraceBuffer) records into.
//
// Policy is *drop-newest with a drop count*: once the buffer holds
// `capacity` items, further pushes are refused and counted rather than
// silently discarded or allowed to grow without bound.  Drop-newest — not
// the classic overwrite-oldest ring — because every consumer here drains
// from the front at deterministic flush points, and a refused push is a
// *reproducible* function of the producer's own event sequence, which is
// what makes overflowing traces byte-identical across engines (see
// obs/trace.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/error.h"
#include "common/stateio.h"

namespace swallow {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity = 16384) : capacity_(capacity) {}

  /// Append `v` if there is room; otherwise count the drop and return
  /// false.  Never reallocates beyond `capacity` items.
  bool push(T v) {
    if (size() >= capacity_) {
      ++dropped_;
      return false;
    }
    items_.push_back(std::move(v));
    if (size() > watermark_) watermark_ = size();
    return true;
  }

  /// Remove and return the oldest retained item.
  T pop_front() {
    require(head_ < items_.size(), "RingBuffer::pop_front: empty");
    T v = std::move(items_[head_]);
    ++head_;
    // Everything drained: release the storage so memory stays bounded by
    // the capacity plus transient slack, not by the total event count.
    if (head_ == items_.size()) {
      items_.clear();
      head_ = 0;
    }
    return v;
  }

  const T& front() const {
    require(head_ < items_.size(), "RingBuffer::front: empty");
    return items_[head_];
  }
  /// i-th oldest retained item.
  const T& at(std::size_t i) const { return items_.at(head_ + i); }

  bool empty() const { return head_ == items_.size(); }
  std::size_t size() const { return items_.size() - head_; }
  std::size_t capacity() const { return capacity_; }
  /// Items refused because the buffer was full.
  std::uint64_t dropped() const { return dropped_; }
  /// Largest size() ever reached (memory-bound assertions in tests).
  std::size_t high_watermark() const { return watermark_; }

  /// Retained items as a plain vector, oldest first.  Only valid while
  /// nothing has been popped (the TraceBuffer use case: append-only, read
  /// at the end) — a drained ring no longer has linear storage.
  const std::vector<T>& linear() const {
    require(head_ == 0, "RingBuffer::linear: items were popped");
    return items_;
  }

  /// Change the capacity.  Already-retained items are kept even if they
  /// exceed the new bound (subsequent pushes drop until drained).
  void set_capacity(std::size_t n) { capacity_ = n; }

  void clear() {
    items_.clear();
    head_ = 0;
  }

  // ----- Snapshot (src/snap/): retained items (oldest first), capacity,
  // drop count and watermark.  `fn` serialises one element.
  template <typename SaveFn>
  void save_state(StateWriter& w, SaveFn&& fn) const {
    w.u64(capacity_);
    w.u64(dropped_);
    w.u64(watermark_);
    w.u64(size());
    for (std::size_t i = 0; i < size(); ++i) fn(at(i));
  }
  template <typename LoadFn>
  void load_state(StateReader& r, LoadFn&& fn) {
    capacity_ = static_cast<std::size_t>(r.u64());
    dropped_ = r.u64();
    watermark_ = static_cast<std::size_t>(r.u64());
    items_.clear();
    head_ = 0;
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) items_.push_back(fn());
  }

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;
  std::size_t watermark_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<T> items_;
};

}  // namespace swallow
