// The structured trace-event model: one POD record per architectural
// event, tagged with the taxonomy category and enough arguments to render
// a Chrome trace-event / Perfetto line at export time.
//
// Events carry no strings — names are resolved from (cat, sub) tables at
// export so the hot emission path is a couple of stores into a bounded
// ring (obs/ring.h).
#pragma once

#include <cstdint>
#include <string>

#include "common/units.h"

namespace swallow {

/// Chrome trace-event phase the record maps to.
enum class TraceKind : std::uint8_t {
  kBegin,    // "B": span opens on (pid=node, tid)
  kEnd,      // "E": span closes
  kInstant,  // "i": point event
  kCounter,  // "C": sampled counter track
};

/// Event taxonomy (docs/observability.md "Event taxonomy").
enum class TraceCat : std::uint8_t {
  kThread,   // core hardware-thread scheduling: run / wait:<kind> spans
  kRoute,    // switch wormhole route open/close spans, parks
  kLink,     // per-token link transit (class, bits, energy)
  kQueue,    // switch input fifo occupancy
  kFault,    // CRC rejects, NAK/retransmit machinery, freezes, link death
  kDvfs,     // frequency / voltage transitions
  kEnergy,   // periodic energy-ledger counter tracks
  kProfile,  // sampling profiler PC samples
  kCount,
};

/// Trace-line (Chrome "tid") blocks within one node's pid, so core threads,
/// switch inputs and link directions render as separate named rows.
inline constexpr int kTidThreadBase = 0;    // + hardware thread id
inline constexpr int kTidRouteBase = 64;    // + switch input port
inline constexpr int kTidLinkBase = 96;     // + link direction
inline constexpr int kTidNode = 126;        // whole-node events (dvfs, fault)
inline constexpr int kTidSystem = 127;      // system track counters

/// TraceCat::kThread sub codes: 0 = run span; 1..5 = wait spans indexed by
/// Core::WaitKind (chan-out, chan-in, lock, sync, timer); 6 = exit
/// instant; 7 = unclassified wait.
inline constexpr std::uint16_t kThreadSubRun = 0;
inline constexpr std::uint16_t kThreadSubExit = 6;
inline constexpr std::uint16_t kThreadSubWaitOther = 7;

/// TraceCat::kRoute sub codes: a wormhole route span, or a park instant
/// when the wanted output is busy.
inline constexpr std::uint16_t kRouteSubOpen = 0;
inline constexpr std::uint16_t kRouteSubPark = 1;

/// TraceCat::kLink / kQueue / kProfile sub codes (single series each).
inline constexpr std::uint16_t kLinkSubToken = 0;
inline constexpr std::uint16_t kQueueSubFifo = 0;
inline constexpr std::uint16_t kProfileSubPc = 0;

/// TraceCat::kFault sub codes: 0..8 mirror FaultCounters field indices
/// (see FaultCounters::field_name); 9/10 are injected core freeze state.
inline constexpr std::uint16_t kFaultSubFreeze = 9;
inline constexpr std::uint16_t kFaultSubUnfreeze = 10;

/// TraceCat::kDvfs sub codes.
inline constexpr std::uint16_t kDvfsSubFreqMhz = 0;
inline constexpr std::uint16_t kDvfsSubVoltage = 1;

/// TraceCat::kEnergy sub codes: 0..EnergyAccount::kCount-1 are ledger
/// account totals (uJ); then the grand total and machine input power.
/// kEnergySubCorePower is a windowed per-core power counter emitted on the
/// core's own track; per-slice windowed power rides the system track at
/// kEnergySubSlicePowerBase + row-major slice index.
inline constexpr std::uint16_t kEnergySubGrandTotal = 100;
inline constexpr std::uint16_t kEnergySubInputPower = 101;
inline constexpr std::uint16_t kEnergySubCorePower = 102;
inline constexpr std::uint16_t kEnergySubSlicePowerBase = 200;

struct TraceEvent {
  TimePs time = 0;
  std::uint32_t track = 0;  // creation index of the emitting track
  std::uint32_t seq = 0;   // per-track emission sequence (merge tiebreak)
  std::uint32_t node = 0;  // emitting node id (0xFFFFFFFF = system track)
  TraceKind kind = TraceKind::kInstant;
  TraceCat cat = TraceCat::kThread;
  std::uint16_t sub = 0;   // category-specific code, see above
  std::int32_t tid = 0;    // trace line within the node's pid
  std::int64_t a = 0;      // category-specific argument
  std::int64_t b = 0;      // category-specific argument
  double value = 0;        // counter value / energy
};

/// Node id used for the machine-wide system track.
inline constexpr std::uint32_t kSystemTrackNode = 0xFFFFFFFFu;

/// Human names for the export layer ("run", "wait:chan-in", "tok", ...).
/// Export-time only — the emission path never touches strings.
const char* trace_cat_name(TraceCat cat);
std::string trace_event_name(TraceCat cat, std::uint16_t sub);

}  // namespace swallow
