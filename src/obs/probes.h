// Probe bundles: the pointers a model holds when observability is
// attached.  Null members mean "pillar disabled" — the hot-path cost of a
// disabled session is one pointer test, which is what keeps the
// tracing-off bench overhead at ~0 (BENCH_PR3.json).
//
// The board layer fills these at attach time (serial, before the run);
// every member is then written only from the owning node's domain.
#pragma once

#include "obs/metrics.h"
#include "obs/trace.h"

namespace swallow {

/// Observability hooks for one processor core.
struct CoreProbe {
  Track* track = nullptr;  // thread spans, DVFS counters, freeze instants
};

/// Observability hooks for one switch.
struct SwitchProbe {
  Track* track = nullptr;  // route spans, token transit, queue occupancy,
                           // fault instants

  // Metrics (ISSUE 3 pillar 2).  All in nanoseconds where applicable.
  LogHistogram* queue_delay_ns = nullptr;     // fifo entry -> head consumed
  LogHistogram* backoff_ns = nullptr;         // go-back-N retransmit backoff
  LogHistogram* token_latency_ns = nullptr;   // ingress stamp -> proc delivery
  MetricCounter* tokens_delivered = nullptr;  // tokens handed to proc ports
  MetricCounter* parks = nullptr;             // route blocked on busy output

  bool wants_trace() const { return track != nullptr; }
  bool wants_metrics() const { return queue_delay_ns != nullptr; }
};

}  // namespace swallow
