#include "obs/energy_attr.h"

#include <bit>
#include <cmath>
#include <limits>

#include "common/strings.h"

namespace swallow {

namespace {

constexpr std::size_t kAccounts =
    static_cast<std::size_t>(EnergyAccount::kCount);

std::string direction_name(std::uint32_t dir) {
  switch (dir) {
    case 0: return "N";
    case 1: return "S";
    case 2: return "E";
    case 3: return "W";
    case 4: return "int";
    case 5: return "bridge";
    default: return strprintf("d%u", dir);
  }
}

}  // namespace

// --------------------------------------------------------------- AttrShard

void AttrShard::attach(EnergyLedger& ledger) {
  for (std::size_t i = 0; i < kAccounts; ++i) {
    const Joules pre = ledger.total(static_cast<EnergyAccount>(i));
    shadow_[i] = pre;
    // Pre-attach energy has no finer context; park it in the account bucket
    // so the bucket tree still covers every joule the shadow claims.
    if (pre != 0.0) {
      buckets_[BucketKey{kAccount, 0, -1, static_cast<std::uint32_t>(i)}] +=
          pre;
    }
  }
  ledger.set_attr_sink(this);
}

void AttrShard::on_charge(EnergyAccount account, Joules j) {
  shadow_[static_cast<std::size_t>(account)] += j;
  switch (ctx_) {
    case Ctx::kInstr:
      buckets_[BucketKey{kInstr, node_, tid_, detail_}] += j;
      return;
    case Ctx::kSpread:
      spread_instr(node_, j);
      return;
    case Ctx::kBaseline:
      buckets_[BucketKey{kBaseline, node_, -1, 0}] += j;
      return;
    case Ctx::kLink:
      buckets_[BucketKey{kLink, node_, -1, detail_}] += j;
      return;
    case Ctx::kLinkRetry:
      buckets_[BucketKey{kLinkRetry, node_, -1, detail_}] += j;
      return;
    case Ctx::kNi:
      buckets_[BucketKey{kNi, node_, -1, 0}] += j;
      return;
    case Ctx::kNone:
      buckets_[BucketKey{kAccount, 0, -1,
                         static_cast<std::uint32_t>(account)}] += j;
      return;
  }
}

void AttrShard::spread_instr(std::uint32_t node, Joules j) {
  const auto lo = pending_.lower_bound(
      PendKey{node, std::numeric_limits<std::int32_t>::min(), 0});
  const auto hi = pending_.lower_bound(
      PendKey{node + 1, std::numeric_limits<std::int32_t>::min(), 0});
  double total = 0.0;
  for (auto it = lo; it != hi; ++it) total += it->second;
  if (total <= 0.0) {
    // Runnable-but-not-retiring interval: no PC to blame.
    buckets_[BucketKey{kInstr, node, -1, kNoPc}] += j;
    return;
  }
  for (auto it = lo; it != hi; ++it) {
    buckets_[BucketKey{kInstr, node, std::get<1>(it->first),
                       std::get<2>(it->first)}] += j * (it->second / total);
  }
  pending_.erase(lo, hi);
}

void AttrShard::save_state(StateWriter& w) const {
  for (Joules j : shadow_) w.f64(j);
  w.seq(buckets_, [&w](const auto& e) {
    w.u8(e.first.kind);
    w.u32(e.first.node);
    w.u32(static_cast<std::uint32_t>(e.first.tid));
    w.u32(e.first.detail);
    w.f64(e.second);
  });
  w.seq(pending_, [&w](const auto& e) {
    w.u32(std::get<0>(e.first));
    w.u32(static_cast<std::uint32_t>(std::get<1>(e.first)));
    w.u32(std::get<2>(e.first));
    w.f64(e.second);
  });
}

void AttrShard::load_state(StateReader& r) {
  for (Joules& j : shadow_) j = r.f64();
  buckets_.clear();
  r.seq([this, &r](std::uint32_t) {
    BucketKey k;
    k.kind = r.u8();
    k.node = r.u32();
    k.tid = static_cast<std::int32_t>(r.u32());
    k.detail = r.u32();
    buckets_[k] = r.f64();
  });
  pending_.clear();
  r.seq([this, &r](std::uint32_t) {
    const std::uint32_t node = r.u32();
    const std::int32_t tid = static_cast<std::int32_t>(r.u32());
    const std::uint32_t pc = r.u32();
    pending_[PendKey{node, tid, pc}] = r.f64();
  });
  ctx_ = Ctx::kNone;  // snapshots land at chop points, outside charge sites
}

// ------------------------------------------------------- EnergyAttribution

AttrShard& EnergyAttribution::make_shard(std::string name,
                                         EnergyLedger& ledger) {
  shards_.emplace_back(std::move(name));
  shards_.back().attach(ledger);
  return shards_.back();
}

Joules EnergyAttribution::attributed_total(EnergyAccount a) const {
  Joules acc = 0;
  for (const AttrShard& s : shards_) acc += s.shadow(a);
  return acc;
}

Joules EnergyAttribution::attributed_grand_total() const {
  Joules sum = 0;
  for (std::size_t i = 0; i < kAccounts; ++i) {
    sum += attributed_total(static_cast<EnergyAccount>(i));
  }
  return sum;
}

std::string EnergyAttribution::conservation_error(
    const EnergyLedger& merged) const {
  for (std::size_t i = 0; i < kAccounts; ++i) {
    const EnergyAccount a = static_cast<EnergyAccount>(i);
    const Joules want = merged.total(a);
    const Joules got = attributed_total(a);
    if (std::bit_cast<std::uint64_t>(want) !=
        std::bit_cast<std::uint64_t>(got)) {
      return strprintf(
          "energy attribution violates conservation: account %s ledger "
          "%.17g (0x%016llx) != attributed %.17g (0x%016llx)",
          std::string(to_string(a)).c_str(), want,
          static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(want)),
          got,
          static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(got)));
    }
  }
  return "";
}

std::string EnergyAttribution::stack_of(
    const AttrShard& shard, const AttrShard::BucketKey& key) const {
  switch (key.kind) {
    case AttrShard::kBaseline:
      return strprintf("core_0x%04x;[baseline]", key.node);
    case AttrShard::kInstr:
      if (key.detail == AttrShard::kNoPc) {
        return strprintf("core_0x%04x;[instr]", key.node);
      }
      return strprintf("core_0x%04x;t%d;%s", key.node, key.tid,
                       symbols_.symbolize(key.node, key.detail).c_str());
    case AttrShard::kLink:
      return strprintf("node_0x%04x;link;%s", key.node,
                       direction_name(key.detail).c_str());
    case AttrShard::kLinkRetry:
      return strprintf("node_0x%04x;link.retry;%s", key.node,
                       direction_name(key.detail).c_str());
    case AttrShard::kNi:
      return strprintf("node_0x%04x;ni", key.node);
    case AttrShard::kAccount:
    default:
      return strprintf(
          "%s;%s", shard.name().c_str(),
          std::string(to_string(static_cast<EnergyAccount>(key.detail)))
              .c_str());
  }
}

std::map<std::string, Joules> EnergyAttribution::merged_buckets() const {
  std::map<std::string, Joules> out;
  for (const AttrShard& s : shards_) {
    for (const auto& [key, j] : s.buckets()) out[stack_of(s, key)] += j;
  }
  return out;
}

std::string EnergyAttribution::folded() const {
  std::string out;
  for (const auto& [stack, j] : merged_buckets()) {
    const long long pj = std::llround(j * 1e12);
    if (pj <= 0) continue;
    out += strprintf("%s %lld\n", stack.c_str(), pj);
  }
  return out;
}

std::string EnergyAttribution::to_json() const {
  std::string out = "{\"energyAttribution\": {\n  \"version\": 1,\n";
  out += strprintf("  \"shards\": %zu,\n", shards_.size());
  out += "  \"accounts\": {";
  for (std::size_t i = 0; i < kAccounts; ++i) {
    const EnergyAccount a = static_cast<EnergyAccount>(i);
    out += strprintf("%s\"%s\": %.17g", i == 0 ? "" : ", ",
                     std::string(to_string(a)).c_str(), attributed_total(a));
  }
  out += "},\n";
  out += strprintf("  \"totalJ\": %.17g,\n", attributed_grand_total());
  out += "  \"buckets\": [\n";
  const std::map<std::string, Joules> merged = merged_buckets();
  std::size_t n = 0;
  for (const auto& [stack, j] : merged) {
    out += strprintf("    {\"stack\": \"%s\", \"j\": %.17g}%s\n",
                     stack.c_str(), j, ++n == merged.size() ? "" : ",");
  }
  out += "  ]\n}}\n";
  return out;
}

void EnergyAttribution::save_state(StateWriter& w) const {
  w.u32(static_cast<std::uint32_t>(shards_.size()));
  for (const AttrShard& s : shards_) s.save_state(w);
}

void EnergyAttribution::load_state(StateReader& r) {
  const std::uint32_t n = r.u32();
  if (n != shards_.size()) {
    throw SnapError(SnapError::Code::kMalformed,
                    "snapshot: attribution shard count mismatch");
  }
  for (AttrShard& s : shards_) s.load_state(r);
}

}  // namespace swallow
