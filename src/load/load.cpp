#include "load/load.h"

#include <algorithm>

#include "api/nos.h"
#include "api/patterns.h"
#include "arch/assembler.h"
#include "common/error.h"
#include "common/strings.h"

namespace swallow {
namespace {

std::uint32_t le32(const std::vector<std::uint8_t>& p, std::size_t off) {
  return static_cast<std::uint32_t>(p[off]) |
         (static_cast<std::uint32_t>(p[off + 1]) << 8) |
         (static_cast<std::uint32_t>(p[off + 2]) << 16) |
         (static_cast<std::uint32_t>(p[off + 3]) << 24);
}

/// Per-request NOS packet: 3 words of payload.
constexpr std::size_t kRequestBytes = 12;

std::string work_loop(std::uint64_t iters, const char* prefix) {
  // Two instructions per iteration (subi + bt).
  return strprintf(R"(
      ldc   r2, 0x%x
      ldch  r2, 0x%04x     # work iterations
      bf    r2, %sd
  %sl:
      subi  r2, r2, 1
      bt    r2, %sl
  %sd:
)",
                   static_cast<unsigned>(iters >> 16),
                   static_cast<unsigned>(iters & 0xFFFF), prefix, prefix,
                   prefix, prefix);
}

}  // namespace

LoadGenerator::LoadGenerator(SwallowSystem& sys, LoadConfig cfg)
    : sys_(sys), cfg_(cfg) {}

std::string LoadGenerator::worker_service_body(std::uint64_t iters) {
  return work_loop(iters, "svw") +
         strprintf(R"(
      ldc   r2, 0x%x
      ldch  r2, 0x%04x     # reply magic
      xor   r0, r0, r2
      ret
)",
                   static_cast<unsigned>(kReplyMagic >> 16),
                   static_cast<unsigned>(kReplyMagic & 0xFFFF));
}

void LoadGenerator::deploy_farm_worker(NodeId node) {
  if (!load_images_) return;
  Core* core = sys_.find_core(node);
  require(core != nullptr, "LoadGenerator: worker node has no core");
  NosNode nos(*core);
  nos.add_service("work", worker_service_body(worker_iters_));
  nos.start();
}

void LoadGenerator::deploy_scatter_frontend(NodeId node,
                                            const std::vector<NodeId>& workers) {
  if (!load_images_) return;
  Core* core = sys_.find_core(node);
  require(core != nullptr, "LoadGenerator: frontend node has no core");
  const ResourceId gather =
      make_resource_id(node, 1, ResourceType::kChanend);
  const int k = static_cast<int>(workers.size());
  std::string src = strprintf(R"(
  front:
      getr  r4, 2          # chanend 0: bridge-facing request port
      getr  r3, 2          # chanend 1: scatter/gather port
  floop:
      in    r5, r4         # final reply chanend id
      in    r6, r4         # service index
      in    r0, r4         # request id
      chkct r4, 1
      not   r7, r6
      bf    r7, fexit      # shutdown: forward to the workers, then exit
      ldc   r8, wtab
      ldc   r9, %d
  sloop:
      ldw   r1, r8, 0      # next worker's request chanend
      setd  r3, r1
      ldc   r2, 0x%x
      ldch  r2, 0x%04x     # gather chanend id (reply-to)
      out   r3, r2
      ldc   r2, 0
      out   r3, r2         # worker service 0
      out   r3, r0         # request id as argument
      outct r3, 1
      addi  r8, r8, 4
      subi  r9, r9, 1
      bt    r9, sloop
      ldc   r9, %d
      ldc   r10, 0
  gloop:
      in    r2, r3
      chkct r3, 1
      add   r10, r10, r2
      subi  r9, r9, 1
      bt    r9, gloop
      bf    r5, floop
      setd  r4, r5
      out   r4, r0         # request id
      out   r4, r10        # combined result
      outct r4, 1
      bu    floop
  fexit:
      ldc   r8, wtab
      ldc   r9, %d
  xloop:
      ldw   r1, r8, 0
      setd  r3, r1
      ldc   r2, 0
      out   r3, r2         # reply-to 0: no reply wanted
      ldc   r2, 0xFFFF
      ldch  r2, 0xFFFF     # shutdown service
      out   r3, r2
      ldc   r2, 0
      out   r3, r2
      outct r3, 1
      addi  r8, r8, 4
      subi  r9, r9, 1
      bt    r9, xloop
      texit
  wtab:
)",
                              k, gather >> 16, gather & 0xFFFF, k, k);
  for (NodeId w : workers) {
    src += strprintf("      .word 0x%08x\n",
                     make_resource_id(w, 0, ResourceType::kChanend));
  }
  core->load(assemble(src));
  core->start();
}

void LoadGenerator::deploy_pipeline_stage(NodeId node, NodeId next,
                                          std::uint64_t iters) {
  if (!load_images_) return;
  Core* core = sys_.find_core(node);
  require(core != nullptr, "LoadGenerator: stage node has no core");
  const ResourceId next_ce = make_resource_id(next, 0, ResourceType::kChanend);
  std::string src = strprintf(R"(
  stage:
      getr  r4, 2          # upstream request port
      getr  r3, 2          # downstream port
      ldc   r1, 0x%x
      ldch  r1, 0x%04x     # next stage's request chanend
      setd  r3, r1
  ploop:
      in    r5, r4
      in    r6, r4
      in    r0, r4
      chkct r4, 1
)",
                              next_ce >> 16, next_ce & 0xFFFF) +
                    work_loop(iters, "pw") + R"(
      out   r3, r5
      out   r3, r6
      out   r3, r0
      outct r3, 1
      not   r7, r6
      bf    r7, pexit      # shutdown forwarded downstream; exit
      bu    ploop
  pexit:
      texit
)";
  core->load(assemble(src));
  core->start();
}

void LoadGenerator::build_partitions() {
  const SystemConfig& scfg = sys_.config();
  const int total = sys_.core_count();
  const int nb = static_cast<int>(bridges_.size());
  const int chunk = total / nb;
  require(chunk >= 1, "LoadGenerator: more bridges than cores");

  auto node_at = [&](int flat) {
    const Placement p = linear_placement(scfg, flat);
    return SwallowSystem::node_id(p.chip_x, p.chip_y, p.layer);
  };

  for (BridgeLoad& bl : bridges_) {
    const int base = bl.index * chunk;
    switch (cfg_.workload) {
      case LoadWorkload::kFarm: {
        int count = chunk;
        if (cfg_.groups_per_bridge > 0)
          count = std::min(count, cfg_.groups_per_bridge);
        worker_iters_ = cfg_.service_work / 2;
        for (int i = 0; i < count; ++i) {
          const NodeId n = node_at(base + i);
          deploy_farm_worker(n);
          const ResourceId ce = make_resource_id(n, 0, ResourceType::kChanend);
          bl.targets.push_back(ce);
          bl.shutdown_targets.push_back(ce);
        }
        break;
      }
      case LoadWorkload::kScatterGather: {
        const int gsz = 1 + cfg_.scatter_fanout;
        int groups = chunk / gsz;
        if (cfg_.groups_per_bridge > 0)
          groups = std::min(groups, cfg_.groups_per_bridge);
        require(groups >= 1,
                "LoadGenerator: bridge partition too small for one "
                "scatter-gather group");
        worker_iters_ =
            cfg_.service_work / 2 /
            static_cast<std::uint64_t>(cfg_.scatter_fanout);
        for (int g = 0; g < groups; ++g) {
          const int gbase = base + g * gsz;
          const NodeId front = node_at(gbase);
          std::vector<NodeId> workers;
          for (int w = 1; w < gsz; ++w) {
            const NodeId n = node_at(gbase + w);
            workers.push_back(n);
            deploy_farm_worker(n);
          }
          deploy_scatter_frontend(front, workers);
          const ResourceId ce =
              make_resource_id(front, 0, ResourceType::kChanend);
          bl.targets.push_back(ce);
          bl.shutdown_targets.push_back(ce);
        }
        break;
      }
      case LoadWorkload::kPipeline: {
        const int gsz = cfg_.pipeline_stages;
        require(gsz >= 2, "LoadGenerator: a pipeline needs >= 2 stages");
        int groups = chunk / gsz;
        if (cfg_.groups_per_bridge > 0)
          groups = std::min(groups, cfg_.groups_per_bridge);
        require(groups >= 1,
                "LoadGenerator: bridge partition too small for one pipeline");
        const std::uint64_t stage_iters =
            cfg_.service_work / 2 / static_cast<std::uint64_t>(gsz);
        worker_iters_ = stage_iters;
        for (int g = 0; g < groups; ++g) {
          const int gbase = base + g * gsz;
          for (int s = 0; s + 1 < gsz; ++s) {
            deploy_pipeline_stage(node_at(gbase + s), node_at(gbase + s + 1),
                                  stage_iters);
          }
          deploy_farm_worker(node_at(gbase + gsz - 1));
          const ResourceId ce =
              make_resource_id(node_at(gbase), 0, ResourceType::kChanend);
          bl.targets.push_back(ce);
          bl.shutdown_targets.push_back(ce);
        }
        break;
      }
    }
    require(!bl.targets.empty(), "LoadGenerator: bridge has no targets");
  }
}

void LoadGenerator::deploy(bool for_restore) {
  require(!deployed_, "LoadGenerator: already deployed");
  require(sys_.bridge_count() > 0,
          "LoadGenerator: system has no Ethernet bridges "
          "(SystemConfig::ethernet_bridges)");
  require(cfg_.requests > 0, "LoadGenerator: zero requests");
  require(!cfg_.closed_loop || cfg_.concurrency > 0,
          "LoadGenerator: closed loop needs concurrency >= 1");
  require(cfg_.ingress_capacity == 0 ||
              cfg_.ingress_capacity >=
                  EthernetBridge::packet_tokens(kRequestBytes),
          "LoadGenerator: ingress capacity below one request packet");
  deployed_ = true;
  load_images_ = !for_restore;

  const int nb = sys_.bridge_count();
  bridges_.resize(static_cast<std::size_t>(nb));
  for (int b = 0; b < nb; ++b) {
    BridgeLoad& bl = bridges_[static_cast<std::size_t>(b)];
    bl.index = b;
    bl.bridge = &sys_.bridge(b);
    bl.node = bl.bridge->node_id();
    bl.sim = &sys_.sim_for_node(bl.node);
    bl.rng.reseed(cfg_.seed ^
                  (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(b + 1)));
    bl.quota = cfg_.requests / static_cast<std::uint64_t>(nb) +
               (static_cast<std::uint64_t>(b) <
                        cfg_.requests % static_cast<std::uint64_t>(nb)
                    ? 1
                    : 0);
  }
  build_partitions();
  for (BridgeLoad& bl : bridges_) {
    bl.bridge->set_ingress_capacity(cfg_.ingress_capacity);
    BridgeLoad* p = &bl;  // stable: bridges_ is fully sized above
    bl.bridge->set_host_receiver(
        [this, p](std::vector<std::uint8_t> packet) { on_reply(*p, packet); });
    bl.bridge->subscribe_ingress_space([this, p] { pump_sends(*p); });
    bl.inflight.assign(bl.targets.size(), 0);
  }
}

void LoadGenerator::attach_metrics(MetricsRegistry& reg) {
  require(deployed_, "LoadGenerator: deploy before attach_metrics");
  for (BridgeLoad& bl : bridges_) {
    const auto owner = static_cast<std::uint32_t>(bl.node);
    bl.obs_latency = reg.histogram("load.request_latency_ns", owner);
    bl.obs_completed = reg.counter("load.requests_completed", owner);
    bl.obs_mismatch = reg.counter("load.reply_mismatches", owner);
    bl.obs_waits = reg.counter("load.backpressure_waits", owner);
  }
}

void LoadGenerator::arm() {
  require(deployed_, "LoadGenerator: deploy before arm");
  require(!armed_, "LoadGenerator: already armed");
  armed_ = true;
  sys_.settle_energy();
  EnergyLedger& led = sys_.ledger();
  for (std::size_t a = 0; a < energy_base_.size(); ++a) {
    energy_base_[a] = led.total(static_cast<EnergyAccount>(a));
  }
  for (BridgeLoad& bl : bridges_) {
    if (bl.quota == 0) continue;
    if (cfg_.closed_loop) {
      for (int i = 0; i < cfg_.concurrency; ++i) inject_one(bl);
    } else {
      schedule_arrival(bl);
    }
  }
}

std::uint32_t LoadGenerator::expected_reply(std::uint32_t id) const {
  return id ^ kReplyMagic;
}

void LoadGenerator::inject_one(BridgeLoad& bl) {
  if (bl.spawned >= bl.quota) return;
  const std::uint32_t id = make_id(bl.index, bl.spawned);
  ++bl.spawned;
  const auto tgt = static_cast<std::uint32_t>(
      bl.rng.next_below(bl.targets.size()));
  bl.outstanding.emplace(id, BridgeLoad::Request{bl.sim->now(), tgt});
  bl.sendq.push_back(id);
  pump_sends(bl);
}

// Put queued requests on the wire: skip requests whose target is busy (one
// in flight per service group — see the sendq comment in load.h), stop at
// a full ingress FIFO (counted; the ingress-space subscription re-drives
// us).  The latency clock started at generation, so queueing is counted.
void LoadGenerator::pump_sends(BridgeLoad& bl) {
  if (bl.pumping) return;  // host_try_send can re-enter via ingress subs
  bl.pumping = true;
  for (auto it = bl.sendq.begin(); it != bl.sendq.end();) {
    const std::uint32_t id = *it;
    const auto& req = bl.outstanding.at(id);
    if (bl.inflight[req.tgt] != 0) {
      ++it;  // target busy: later requests may go to other targets
      continue;
    }
    const auto wire =
        NosNode::encode_request(bl.bridge->chanend_id(), 0, id);
    if (!bl.bridge->ingress_can_accept(wire.size())) {
      ++bl.waits;
      if (bl.obs_waits != nullptr) bl.obs_waits->add();
      break;
    }
    bl.inflight[req.tgt] = 1;
    bl.bridge->host_try_send(bl.targets[req.tgt], wire);
    it = bl.sendq.erase(it);
  }
  bl.pumping = false;
}

void LoadGenerator::on_reply(BridgeLoad& bl,
                             const std::vector<std::uint8_t>& packet) {
  std::uint32_t id = 0;
  bool ok = false;
  if (cfg_.workload == LoadWorkload::kScatterGather) {
    if (packet.size() == 8) {
      id = le32(packet, 0);
      const auto want = static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(cfg_.scatter_fanout) *
          (id ^ kReplyMagic));
      ok = le32(packet, 4) == want;
    }
  } else if (packet.size() == 4) {
    id = le32(packet, 0) ^ kReplyMagic;
    ok = true;
  }
  auto it = ok ? bl.outstanding.find(id) : bl.outstanding.end();
  if (it == bl.outstanding.end()) {
    ++bl.mismatched;
    if (bl.obs_mismatch != nullptr) bl.obs_mismatch->add();
    return;
  }
  const TimePs now = bl.sim->now();
  const auto ns = static_cast<std::uint64_t>(now - it->second.at) / 1000;
  bl.latency_ns.add(ns);
  if (bl.obs_latency != nullptr) bl.obs_latency->add(ns);
  bl.inflight[it->second.tgt] = 0;
  bl.outstanding.erase(it);
  ++bl.completed;
  if (bl.obs_completed != nullptr) bl.obs_completed->add();
  bl.last_completion = now;
  if (cfg_.closed_loop) inject_one(bl);
  pump_sends(bl);  // the freed target can take its next queued request
}

void LoadGenerator::schedule_arrival(BridgeLoad& bl) {
  const TimePs gap = arrival_gap(cfg_.arrivals, bl.rng);
  bl.arrival_pending = true;
  BridgeLoad* p = &bl;
  bl.sim->after(gap, EventDesc{EventKind::kLoadArrival, bl.node},
                [this, p] { on_arrival(*p); });
}

void LoadGenerator::on_arrival(BridgeLoad& bl) {
  bl.arrival_pending = false;
  const int n = arrival_batch(cfg_.arrivals);
  for (int i = 0; i < n && bl.spawned < bl.quota; ++i) inject_one(bl);
  if (bl.spawned < bl.quota) schedule_arrival(bl);
}

TimePs LoadGenerator::run_to_completion(TimePs step, TimePs max_time) {
  require(armed_, "LoadGenerator: arm (or restore) before running");
  require(step > 0, "LoadGenerator: step must be positive");
  while (!done() && sys_.now() < max_time) {
    sys_.run_until(sys_.now() + step);
  }
  done_time_ = sys_.now();
  return done_time_;
}

void LoadGenerator::shutdown(TimePs step, TimePs drain) {
  const auto req =
      NosNode::encode_request(0, NosNode::kShutdownService, 0);
  for (BridgeLoad& bl : bridges_) {
    for (ResourceId t : bl.shutdown_targets) {
      while (!bl.bridge->ingress_can_accept(req.size())) {
        sys_.run_until(sys_.now() + step);
      }
      bl.bridge->host_try_send(t, req);
    }
  }
  sys_.run_until(sys_.now() + drain);
}

std::uint64_t LoadGenerator::completed() const {
  std::uint64_t n = 0;
  for (const BridgeLoad& bl : bridges_) n += bl.completed;
  return n;
}

std::uint64_t LoadGenerator::injected() const {
  std::uint64_t n = 0;
  for (const BridgeLoad& bl : bridges_) n += bl.spawned;
  return n;
}

std::uint64_t LoadGenerator::mismatches() const {
  std::uint64_t n = 0;
  for (const BridgeLoad& bl : bridges_) n += bl.mismatched;
  return n;
}

std::uint64_t LoadGenerator::backpressure_waits() const {
  std::uint64_t n = 0;
  for (const BridgeLoad& bl : bridges_) n += bl.waits;
  return n;
}

LogHistogram LoadGenerator::merged_latency() const {
  LogHistogram h;
  for (const BridgeLoad& bl : bridges_) h.merge(bl.latency_ns);
  return h;
}

TimePs LoadGenerator::last_completion() const {
  TimePs t = 0;
  for (const BridgeLoad& bl : bridges_) t = std::max(t, bl.last_completion);
  return t;
}

int LoadGenerator::target_count() const {
  int n = 0;
  for (const BridgeLoad& bl : bridges_) {
    n += static_cast<int>(bl.targets.size());
  }
  return n;
}

std::string LoadGenerator::report_json() {
  sys_.settle_energy();
  EnergyLedger& led = sys_.ledger();
  std::array<double, static_cast<std::size_t>(EnergyAccount::kCount)> delta{};
  double e_total = 0.0;
  for (std::size_t a = 0; a < delta.size(); ++a) {
    delta[a] = led.total(static_cast<EnergyAccount>(a)) - energy_base_[a];
    e_total += delta[a];
  }
  auto acc = [&](EnergyAccount a) {
    return delta[static_cast<std::size_t>(a)];
  };
  const double e_core =
      acc(EnergyAccount::kCoreBaseline) + acc(EnergyAccount::kCoreInstructions);
  const double e_net =
      acc(EnergyAccount::kNetworkInterface) + acc(EnergyAccount::kLinkOnChip) +
      acc(EnergyAccount::kLinkBoardVertical) +
      acc(EnergyAccount::kLinkBoardHorizontal) + acc(EnergyAccount::kLinkCable);
  const double e_bridge = acc(EnergyAccount::kEthernetBridge);
  const double e_other = acc(EnergyAccount::kDcDcIo) + acc(EnergyAccount::kOther);

  const std::uint64_t comp = completed();
  const double per_req = comp > 0 ? e_total / static_cast<double>(comp) : 0.0;
  const double per_req_scale =
      comp > 0 ? 1e9 / static_cast<double>(comp) : 0.0;
  std::uint64_t rejects = 0;
  for (const BridgeLoad& bl : bridges_) {
    rejects += bl.bridge->ingress_rejects();
  }
  const TimePs tend = last_completion();
  const double sim_s = static_cast<double>(tend) * 1e-12;
  const double rps = sim_s > 0 ? static_cast<double>(comp) / sim_s : 0.0;

  const LogHistogram h = merged_latency();
  std::string out = "{";
  out += strprintf(
      "\"workload\":\"%s\",\"arrivals\":\"%s\",\"closed_loop\":%s,"
      "\"concurrency\":%d,\"rate_rps\":%.3f,\"bridges\":%d,\"targets\":%d,"
      "\"service_work\":%llu,\"seed\":%llu,",
      to_string(cfg_.workload), to_string(cfg_.arrivals.kind),
      cfg_.closed_loop ? "true" : "false", cfg_.concurrency,
      cfg_.arrivals.rate_rps, static_cast<int>(bridges_.size()),
      target_count(), static_cast<unsigned long long>(cfg_.service_work),
      static_cast<unsigned long long>(cfg_.seed));
  out += strprintf(
      "\"requests\":%llu,\"injected\":%llu,\"completed\":%llu,"
      "\"mismatches\":%llu,\"backpressure_waits\":%llu,"
      "\"ingress_rejects\":%llu,\"last_completion_ps\":%lld,"
      "\"requests_per_sim_s\":%.3f,",
      static_cast<unsigned long long>(cfg_.requests),
      static_cast<unsigned long long>(injected()),
      static_cast<unsigned long long>(comp),
      static_cast<unsigned long long>(mismatches()),
      static_cast<unsigned long long>(backpressure_waits()),
      static_cast<unsigned long long>(rejects), static_cast<long long>(tend),
      rps);
  out += strprintf(
      "\"latency_ns\":{\"count\":%llu,\"mean\":%.3f,\"min\":%llu,"
      "\"p50\":%llu,\"p95\":%llu,\"p99\":%llu,\"p999\":%llu,\"max\":%llu},",
      static_cast<unsigned long long>(h.count()), h.mean(),
      static_cast<unsigned long long>(h.min()),
      static_cast<unsigned long long>(h.percentile(0.50)),
      static_cast<unsigned long long>(h.percentile(0.95)),
      static_cast<unsigned long long>(h.percentile(0.99)),
      static_cast<unsigned long long>(h.percentile(0.999)),
      static_cast<unsigned long long>(h.max()));
  out += strprintf(
      "\"energy\":{\"total_j\":%.9e,\"per_request_nj\":%.6f,"
      "\"core_nj\":%.6f,\"network_nj\":%.6f,\"bridge_nj\":%.6f,"
      "\"other_nj\":%.6f},",
      e_total, per_req * 1e9, e_core * per_req_scale, e_net * per_req_scale,
      e_bridge * per_req_scale, e_other * per_req_scale);
  out += "\"per_bridge\":[";
  for (std::size_t i = 0; i < bridges_.size(); ++i) {
    const BridgeLoad& bl = bridges_[i];
    out += strprintf(
        "%s{\"node\":%u,\"injected\":%llu,\"completed\":%llu,"
        "\"waits\":%llu,\"last_completion_ps\":%lld}",
        i == 0 ? "" : ",", static_cast<unsigned>(bl.node),
        static_cast<unsigned long long>(bl.spawned),
        static_cast<unsigned long long>(bl.completed),
        static_cast<unsigned long long>(bl.waits),
        static_cast<long long>(bl.last_completion));
  }
  out += "]}";
  return out;
}

void LoadGenerator::save_state(StateWriter& w) const {
  w.b(armed_);
  w.i64(done_time_);
  for (double d : energy_base_) w.f64(d);
  w.u32(static_cast<std::uint32_t>(bridges_.size()));
  for (const BridgeLoad& bl : bridges_) {
    bl.rng.save_state(w);
    w.u64(bl.spawned);
    w.u64(bl.completed);
    w.u64(bl.mismatched);
    w.u64(bl.waits);
    w.i64(bl.last_completion);
    w.b(bl.arrival_pending);
    w.seq(bl.outstanding,
          [&](const std::pair<const std::uint32_t, BridgeLoad::Request>& e) {
            w.u32(e.first);
            w.i64(e.second.at);
            w.u32(e.second.tgt);
          });
    w.seq(bl.sendq, [&](std::uint32_t id) { w.u32(id); });
    w.seq(bl.inflight, [&](std::uint8_t f) { w.u8(f); });
    bl.latency_ns.save_state(w);
  }
}

void LoadGenerator::load_state(StateReader& r) {
  require(deployed_, "LoadGenerator: deploy(for_restore) before load_state");
  armed_ = r.b();
  done_time_ = r.i64();
  for (double& d : energy_base_) d = r.f64();
  const std::uint32_t nb = r.u32();
  require(nb == bridges_.size(),
          "LoadGenerator: snapshot bridge count mismatch");
  for (BridgeLoad& bl : bridges_) {
    bl.rng.load_state(r);
    bl.spawned = r.u64();
    bl.completed = r.u64();
    bl.mismatched = r.u64();
    bl.waits = r.u64();
    bl.last_completion = r.i64();
    bl.arrival_pending = r.b();
    bl.outstanding.clear();
    r.seq([&](std::size_t) {
      const std::uint32_t id = r.u32();
      BridgeLoad::Request req;
      req.at = r.i64();
      req.tgt = r.u32();
      bl.outstanding.emplace(id, req);
    });
    bl.sendq.clear();
    r.seq([&](std::size_t) { bl.sendq.push_back(r.u32()); });
    r.seq_exactly(bl.inflight.size(), "load inflight",
                  [&](std::size_t i) { bl.inflight[i] = r.u8(); });
    bl.latency_ns.load_state(r);
  }
}

void LoadGenerator::restore_event(const LiveEvent& ev) {
  invariant(ev.desc.kind == EventKind::kLoadArrival,
            "LoadGenerator: unexpected event kind");
  for (BridgeLoad& bl : bridges_) {
    if (bl.node == ev.desc.node) {
      BridgeLoad* p = &bl;
      bl.sim->inject(ev.time, ev.stamp, ev.tie, ev.desc,
                     [this, p] { on_arrival(*p); });
      return;
    }
  }
  invariant(false, "LoadGenerator: arrival event for unknown bridge");
}

}  // namespace swallow
