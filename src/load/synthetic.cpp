#include "load/synthetic.h"

#include <cmath>

#include "api/patterns.h"
#include "common/error.h"
#include "common/strings.h"
#include "noc/routing.h"
#include "noc/switch.h"

namespace swallow {

const char* to_string(TrafficPattern p) {
  switch (p) {
    case TrafficPattern::kUniformRandom: return "uniform";
    case TrafficPattern::kHotspot: return "hotspot";
    case TrafficPattern::kTranspose: return "transpose";
    case TrafficPattern::kBitReversal: return "bitrev";
  }
  return "?";
}

TrafficPattern parse_traffic_pattern(const std::string& s) {
  if (s == "uniform") return TrafficPattern::kUniformRandom;
  if (s == "hotspot") return TrafficPattern::kHotspot;
  if (s == "transpose") return TrafficPattern::kTranspose;
  if (s == "bitrev") return TrafficPattern::kBitReversal;
  throw std::runtime_error("unknown traffic pattern: " + s +
                           " (uniform|hotspot|transpose|bitrev)");
}

void SyntheticTraffic::NodeTraffic::receive(const Token& t) {
  if (t.is_end()) {
    if (rx.size() >= 8) {
      std::uint64_t born = 0;
      for (int i = 0; i < 8; ++i) {
        born |= static_cast<std::uint64_t>(rx[static_cast<std::size_t>(i)])
                << (8 * i);
      }
      const TimePs now = sim->now();
      const auto ns =
          now > static_cast<TimePs>(born)
              ? static_cast<std::uint64_t>(now - static_cast<TimePs>(born)) /
                    1000
              : 0;
      latency_ns.add(ns);
      ++received;
    }
    rx.clear();
  } else if (!t.is_control) {
    rx.push_back(t.value);
  }
  for (const auto& cb : drain_subs) cb();
}

SyntheticTraffic::SyntheticTraffic(SwallowSystem& sys, SyntheticConfig cfg)
    : sys_(sys), cfg_(cfg) {}

void SyntheticTraffic::deploy() {
  require(!deployed_, "SyntheticTraffic: already deployed");
  require(cfg_.rate_pps > 0.0, "SyntheticTraffic: rate must be positive");
  require(cfg_.payload_bytes >= 8,
          "SyntheticTraffic: payload must hold the 8-byte timestamp");
  require(sys_.core_count() >= 2, "SyntheticTraffic: need at least 2 nodes");
  deployed_ = true;
  gap_ps_ = static_cast<TimePs>(1e12 / cfg_.rate_pps);
  if (gap_ps_ < 1) gap_ps_ = 1;

  const SystemConfig& scfg = sys_.config();
  const int n = sys_.core_count();
  for (int i = 0; i < n; ++i) {
    const Placement p = linear_placement(scfg, i);
    auto nt = std::make_unique<NodeTraffic>();
    nt->owner = this;
    nt->index = i;
    nt->node = SwallowSystem::node_id(p.chip_x, p.chip_y, p.layer);
    nt->sw = &sys_.switch_at(p.chip_x, p.chip_y, p.layer);
    nt->sim = &nt->sw->sim();
    nt->port = nt->sw->attach_endpoint(kSyntheticEndpoint, nt.get());
    nt->rng.reseed(cfg_.seed ^
                   (0xD1B54A32D192ED03ULL * static_cast<std::uint64_t>(i + 1)));
    NodeTraffic* raw = nt.get();
    nt->port->subscribe_space([this, raw] { drain_queue(*raw); });
    node_ids_.push_back(nt->node);
    nodes_.push_back(std::move(nt));
  }
}

void SyntheticTraffic::arm(TimePs duration) {
  require(deployed_, "SyntheticTraffic: deploy before arm");
  require(!armed_, "SyntheticTraffic: already armed");
  require(duration > 0, "SyntheticTraffic: window must be positive");
  armed_ = true;
  for (auto& nt : nodes_) {
    nt->stop_at = nt->sim->now() + duration;
    schedule_tick(*nt);
  }
}

bool SyntheticTraffic::window_closed() const {
  return armed_ && !nodes_.empty() && sys_.now() >= nodes_.front()->stop_at;
}

int SyntheticTraffic::pick_destination(NodeTraffic& nt) {
  const int n = static_cast<int>(nodes_.size());
  switch (cfg_.pattern) {
    case TrafficPattern::kUniformRandom:
      return (nt.index + 1 +
              static_cast<int>(nt.rng.next_below(
                  static_cast<std::uint64_t>(n - 1)))) %
             n;
    case TrafficPattern::kHotspot: {
      const int hot = std::min(cfg_.hotspot_count, n);
      int d;
      if (hot > 0 && nt.rng.next_double() < cfg_.hotspot_fraction) {
        d = static_cast<int>(
            nt.rng.next_below(static_cast<std::uint64_t>(hot)));
      } else {
        d = static_cast<int>(nt.rng.next_below(static_cast<std::uint64_t>(n)));
      }
      return d == nt.index ? (d + 1) % n : d;
    }
    case TrafficPattern::kTranspose: {
      const int side = static_cast<int>(std::sqrt(static_cast<double>(n)));
      if (nt.index >= side * side) return -1;  // off the square: silent
      const int r = nt.index / side;
      const int c = nt.index % side;
      const int d = c * side + r;
      return d == nt.index ? -1 : d;  // diagonal nodes do not inject
    }
    case TrafficPattern::kBitReversal: {
      int bits = 0;
      while ((1 << (bits + 1)) <= n) ++bits;
      if (nt.index >= (1 << bits)) return -1;
      int d = 0;
      for (int i = 0; i < bits; ++i) {
        if (nt.index & (1 << i)) d |= 1 << (bits - 1 - i);
      }
      return d == nt.index ? -1 : d;
    }
  }
  return -1;
}

void SyntheticTraffic::schedule_tick(NodeTraffic& nt) {
  if (nt.tick_scheduled) return;
  // Poisson process against simulated time.  Deliberately undescribed
  // (EventKind::kNone): live synthetic traffic refuses to snapshot.
  TimePs gap = static_cast<TimePs>(
      -std::log(1.0 - nt.rng.next_double()) *
      static_cast<double>(gap_ps_));
  if (gap < 1) gap = 1;
  if (nt.sim->now() + gap >= nt.stop_at) return;  // window over
  nt.tick_scheduled = true;
  NodeTraffic* raw = &nt;
  nt.sim->after(gap, [this, raw] {
    raw->tick_scheduled = false;
    on_tick(*raw);
  });
}

void SyntheticTraffic::on_tick(NodeTraffic& nt) {
  generate_packet(nt);
  schedule_tick(nt);
}

void SyntheticTraffic::generate_packet(NodeTraffic& nt) {
  const int dest = pick_destination(nt);
  if (dest < 0) return;  // pattern maps this node to itself: no traffic
  ++nt.offered;
  if (nt.queued_packets >= cfg_.source_queue_packets) {
    ++nt.dropped;  // source queue saturated: classic accepted-load cap
    return;
  }
  const ResourceId dst_ce =
      make_resource_id(node_ids_[static_cast<std::size_t>(dest)],
                       kSyntheticEndpoint, ResourceType::kChanend);
  const HeaderDest hd = chanend_dest(dst_ce);
  for (int i = 0; i < kHeaderTokens; ++i) {
    nt.queue.push_back(Token::data(header_byte(hd, i)));
  }
  const auto born = static_cast<std::uint64_t>(nt.sim->now());
  for (int i = 0; i < 8; ++i) {
    nt.queue.push_back(
        Token::data(static_cast<std::uint8_t>(born >> (8 * i))));
  }
  for (std::size_t i = 8; i < cfg_.payload_bytes; ++i) {
    nt.queue.push_back(Token::data(static_cast<std::uint8_t>(i & 0xFF)));
  }
  nt.queue.push_back(Token::control(ControlToken::kEnd));
  ++nt.queued_packets;
  drain_queue(nt);
}

void SyntheticTraffic::drain_queue(NodeTraffic& nt) {
  while (!nt.queue.empty() && nt.port->can_accept()) {
    const Token t = nt.queue.front();
    nt.queue.pop_front();
    if (t.is_end()) --nt.queued_packets;
    nt.port->push(t);
  }
}

std::uint64_t SyntheticTraffic::offered() const {
  std::uint64_t n = 0;
  for (const auto& nt : nodes_) n += nt->offered;
  return n;
}

std::uint64_t SyntheticTraffic::dropped() const {
  std::uint64_t n = 0;
  for (const auto& nt : nodes_) n += nt->dropped;
  return n;
}

std::uint64_t SyntheticTraffic::delivered() const {
  std::uint64_t n = 0;
  for (const auto& nt : nodes_) n += nt->received;
  return n;
}

LogHistogram SyntheticTraffic::merged_latency() const {
  LogHistogram h;
  for (const auto& nt : nodes_) h.merge(nt->latency_ns);
  return h;
}

std::string SyntheticTraffic::report_json() const {
  const std::uint64_t off = offered();
  const std::uint64_t del = delivered();
  const std::uint64_t drop = dropped();
  const auto n = static_cast<double>(nodes_.size());
  const double window_s =
      nodes_.empty()
          ? 0.0
          : static_cast<double>(nodes_.front()->stop_at) * 1e-12;
  const double offered_pps = window_s > 0 ? off / n / window_s : 0.0;
  const double accepted_pps = window_s > 0 ? del / n / window_s : 0.0;
  const LogHistogram h = merged_latency();
  std::string out = "{";
  out += strprintf(
      "\"mode\":\"synthetic\",\"pattern\":\"%s\",\"rate_pps\":%.3f,"
      "\"seed\":%llu,\"nodes\":%d,\"payload_bytes\":%zu,",
      to_string(cfg_.pattern), cfg_.rate_pps,
      static_cast<unsigned long long>(cfg_.seed),
      static_cast<int>(nodes_.size()), cfg_.payload_bytes);
  out += strprintf(
      "\"offered\":%llu,\"dropped\":%llu,\"delivered\":%llu,"
      "\"offered_pps_per_node\":%.3f,\"accepted_pps_per_node\":%.3f,",
      static_cast<unsigned long long>(off),
      static_cast<unsigned long long>(drop),
      static_cast<unsigned long long>(del), offered_pps, accepted_pps);
  out += strprintf(
      "\"latency_ns\":{\"count\":%llu,\"mean\":%.3f,\"min\":%llu,"
      "\"p50\":%llu,\"p95\":%llu,\"p99\":%llu,\"p999\":%llu,\"max\":%llu}}",
      static_cast<unsigned long long>(h.count()), h.mean(),
      static_cast<unsigned long long>(h.min()),
      static_cast<unsigned long long>(h.percentile(0.50)),
      static_cast<unsigned long long>(h.percentile(0.95)),
      static_cast<unsigned long long>(h.percentile(0.99)),
      static_cast<unsigned long long>(h.percentile(0.999)),
      static_cast<unsigned long long>(h.max()));
  return out;
}

}  // namespace swallow
