// Classic NoC synthetic traffic patterns, injected at the switch layer.
//
// Unlike the LoadGenerator (framed requests through the Ethernet bridges
// into real service programs), synthetic traffic bypasses the cores
// entirely: every core node gets a pseudo-chanend endpoint (index
// kSyntheticEndpoint) that sources fixed-size timestamped packets to a
// destination chosen by a spatial pattern — uniform random, hotspot,
// transpose or bit-reversal — at a seeded offered rate.  This is the
// standard methodology for offered-load vs throughput/latency curves
// (sweep the rate across invocations; each run is one point).
//
// Determinism: each node draws from its own seeded Rng and schedules only
// in its own switch's event domain, so results are bit-identical across
// `--jobs`.  Injection ticks are deliberately *undescribed* events
// (EventKind::kNone): a machine with live synthetic traffic refuses to
// snapshot with a structured kUndescribedEvent error — see docs/load.md.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "arch/comm.h"
#include "board/system.h"
#include "common/rng.h"
#include "obs/metrics.h"

namespace swallow {

enum class TrafficPattern : std::uint8_t {
  kUniformRandom = 0,  // every other node equally likely
  kHotspot = 1,        // a few hot nodes draw a configured share
  kTranspose = 2,      // (row, col) -> (col, row) over the core grid
  kBitReversal = 3,    // flat index -> bit-reversed flat index
};

const char* to_string(TrafficPattern p);
/// Parse "uniform" / "hotspot" / "transpose" / "bitrev"; throws on junk.
TrafficPattern parse_traffic_pattern(const std::string& s);

struct SyntheticConfig {
  TrafficPattern pattern = TrafficPattern::kUniformRandom;
  /// Offered load per node, packets per simulated second.
  double rate_pps = 1e6;
  std::uint64_t seed = 1;
  /// Packet payload size; the first 8 bytes carry the birth timestamp.
  std::size_t payload_bytes = 16;
  int hotspot_count = 4;          // kHotspot: number of hot destinations
  double hotspot_fraction = 0.5;  // kHotspot: share of traffic they draw
  /// Per-node source queue bound, in packets; arrivals beyond it are
  /// dropped at the source and counted (saturation measurement).
  std::size_t source_queue_packets = 16;
};

/// Injects pattern traffic at every core node's switch for a fixed window
/// of simulated time.  Lifecycle: construct -> deploy() -> arm(duration)
/// -> drive sys.run_until past the window -> report_json().
class SyntheticTraffic {
 public:
  /// Pseudo-chanend index used on every core node (0..31 are the core's
  /// chanends, 32 is the boot ROM).
  static constexpr int kSyntheticEndpoint = 33;

  SyntheticTraffic(SwallowSystem& sys, SyntheticConfig cfg);

  /// Attach the per-node endpoints.  Call once, before arm().
  void deploy();

  /// Start injecting: each node offers packets for `duration` picoseconds
  /// of simulated time starting now.
  void arm(TimePs duration);

  bool window_closed() const;

  // ----- Results -----
  std::uint64_t offered() const;    // packets generated (incl. dropped)
  std::uint64_t dropped() const;    // dropped at a full source queue
  std::uint64_t delivered() const;  // packets fully received
  LogHistogram merged_latency() const;  // packet latency, ns, node order

  /// The `load_json:` machine block for a synthetic run: offered vs
  /// accepted throughput per node per second, latency percentiles.
  std::string report_json() const;

  const SyntheticConfig& config() const { return cfg_; }

 private:
  struct NodeTraffic : TokenReceiver {
    SyntheticTraffic* owner = nullptr;
    int index = 0;  // flat core index
    NodeId node = 0;
    Switch* sw = nullptr;
    Simulator* sim = nullptr;
    TokenOutPort* port = nullptr;
    Rng rng{1};
    TimePs stop_at = 0;
    bool tick_scheduled = false;
    // Source side: flattened token queue, bounded in packets.
    std::deque<Token> queue;
    std::size_t queued_packets = 0;
    std::uint64_t offered = 0;
    std::uint64_t dropped = 0;
    // Sink side.
    std::vector<std::uint8_t> rx;
    std::uint64_t received = 0;
    LogHistogram latency_ns;

    // TokenReceiver (switch -> us): always ready, packets are consumed
    // into the latency histogram as they complete.
    bool can_receive() const override { return true; }
    std::size_t free_space() const override { return 1024; }
    void receive(const Token& t) override;
    void subscribe_drain(std::function<void()> cb) override {
      drain_subs.push_back(std::move(cb));
    }
    std::vector<std::function<void()>> drain_subs;
  };

  int pick_destination(NodeTraffic& nt);
  void schedule_tick(NodeTraffic& nt);
  void on_tick(NodeTraffic& nt);
  void generate_packet(NodeTraffic& nt);
  void drain_queue(NodeTraffic& nt);

  SwallowSystem& sys_;
  SyntheticConfig cfg_;
  std::vector<std::unique_ptr<NodeTraffic>> nodes_;
  std::vector<NodeId> node_ids_;  // flat index -> node id
  TimePs gap_ps_ = 0;             // mean inter-packet gap per node
  bool deployed_ = false;
  bool armed_ = false;
};

}  // namespace swallow
