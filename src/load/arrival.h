// Seeded deterministic arrival processes for the load subsystem.
//
// Every stochastic choice the load generator makes is drawn from one
// explicitly seeded Rng per bridge, and every draw happens inside that
// bridge's event domain — which is what makes a load run bit-reproducible
// across `--jobs` values and across snapshot/restore (the Rng state is
// part of the LoadGenerator's snapshot section).
//
// Rates are expressed against *simulated* time: `rate_rps` requests per
// simulated second, independent of host speed or engine configuration.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/error.h"
#include "common/rng.h"
#include "common/units.h"

namespace swallow {

enum class ArrivalKind : std::uint8_t {
  kPoisson = 0,  // exponential interarrival gaps (memoryless)
  kUniform = 1,  // gaps uniform in [0.5, 1.5) x mean
  kBurst = 2,    // `burst_size` back-to-back arrivals at fixed intervals
};

inline const char* to_string(ArrivalKind k) {
  switch (k) {
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kUniform: return "uniform";
    case ArrivalKind::kBurst: return "burst";
  }
  return "?";
}

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kPoisson;
  double rate_rps = 1e6;  // mean offered load, requests per simulated second
  int burst_size = 16;    // kBurst only: arrivals injected per tick
};

/// Requests injected by one arrival event (1, or the burst size).
inline int arrival_batch(const ArrivalConfig& cfg) {
  return cfg.kind == ArrivalKind::kBurst ? cfg.burst_size : 1;
}

/// Gap to the next arrival event in picoseconds (>= 1).  Draws from `rng`
/// for the stochastic processes; kBurst is a deterministic comb.
inline TimePs arrival_gap(const ArrivalConfig& cfg, Rng& rng) {
  require(cfg.rate_rps > 0.0, "arrival_gap: rate must be positive");
  const double mean_gap_ps =
      1e12 * static_cast<double>(arrival_batch(cfg)) / cfg.rate_rps;
  double gap = mean_gap_ps;
  switch (cfg.kind) {
    case ArrivalKind::kPoisson:
      // Inverse-CDF exponential; 1-U keeps the argument strictly positive.
      gap = -std::log(1.0 - rng.next_double()) * mean_gap_ps;
      break;
    case ArrivalKind::kUniform:
      gap = (0.5 + rng.next_double()) * mean_gap_ps;
      break;
    case ArrivalKind::kBurst:
      break;  // fixed comb
  }
  const auto ps = static_cast<TimePs>(gap);
  return ps < 1 ? 1 : ps;
}

}  // namespace swallow
