// Production traffic generation behind the Ethernet bridges (ROADMAP
// item 3).
//
// A LoadGenerator deploys NOS-style request/response service programs
// onto the grid — a request/response farm, scatter-gather groups, or
// pipelines — and injects framed requests through every configured
// EthernetBridge, either open-loop (a seeded arrival process offers load
// regardless of completions) or closed-loop (a fixed window of outstanding
// requests per bridge, refilled on every completion).
//
// Request wire format is nOS-lite's (src/api/nos.h):
//   [reply chanend id][service index][argument = request id]
// and the reply carries the request id transformed by the service, so the
// host side can match completions to arrivals and verify correctness —
// including under a seeded FaultPlan, where reliable links retransmit and
// the percentiles degrade but every reply still checks out.
//
// Determinism contract: every stochastic draw (arrival gaps, target
// selection) comes from one seeded Rng per bridge, and every injection
// after arm() happens inside that bridge's event domain (completion
// callbacks and kLoadArrival events both fire there) — so a load run is
// bit-reproducible across `--jobs` values, and the generator's full state
// snapshots/restores mid-run (src/snap/).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "board/system.h"
#include "common/rng.h"
#include "common/stateio.h"
#include "load/arrival.h"
#include "obs/metrics.h"
#include "sim/event_desc.h"

namespace swallow {

enum class LoadWorkload : std::uint8_t {
  kFarm = 0,           // every core an independent request/response worker
  kScatterGather = 1,  // frontends fan each request out to K workers
  kPipeline = 2,       // requests traverse S stages, last stage replies
};

inline const char* to_string(LoadWorkload w) {
  switch (w) {
    case LoadWorkload::kFarm: return "farm";
    case LoadWorkload::kScatterGather: return "scatter_gather";
    case LoadWorkload::kPipeline: return "pipeline";
  }
  return "?";
}

struct LoadConfig {
  LoadWorkload workload = LoadWorkload::kFarm;
  ArrivalConfig arrivals{};
  /// Closed loop keeps `concurrency` requests outstanding per bridge
  /// (classic zero-think-time closed system); open loop offers the arrival
  /// process's load regardless of completions.
  bool closed_loop = true;
  int concurrency = 32;
  std::uint64_t requests = 10000;  // total across all bridges
  std::uint64_t seed = 1;
  std::uint64_t service_work = 200;  // instructions burned per request
  int scatter_fanout = 4;            // kScatterGather: workers per frontend
  int pipeline_stages = 4;           // kPipeline: stages per pipeline
  /// Service groups built per bridge (0 = as many as the bridge's core
  /// partition allows).
  int groups_per_bridge = 0;
  /// Bound on each bridge's ingress FIFO, in tokens; injections that do
  /// not fit wait (counted) and retry on ingress-space notifications.
  std::size_t ingress_capacity = 4096;
};

/// Drives request traffic through a SwallowSystem's Ethernet bridges.
/// Lifecycle: construct -> deploy() -> [attach_metrics()] -> arm() ->
/// run_to_completion()/run_until loop -> report_json() [-> shutdown()].
class LoadGenerator {
 public:
  /// Replies are the request id XOR this magic (scatter-gather replies are
  /// fanout * (id ^ magic) mod 2^32); a reply that does not decode to an
  /// outstanding id counts as a mismatch.
  static constexpr std::uint32_t kReplyMagic = 0x600DF00Du;

  LoadGenerator(SwallowSystem& sys, LoadConfig cfg);

  /// Generate, assemble, load and start the service programs and wire the
  /// bridges (ingress bound, receive + ingress-space callbacks).  With
  /// `for_restore` the program load / core start / initial injection are
  /// skipped — that state comes back from the snapshot — but all host-side
  /// wiring still happens.  Call once.
  void deploy(bool for_restore = false);

  /// Mirror the SLO instruments into an attached metrics registry
  /// (optional; between deploy and arm / restore_machine).
  void attach_metrics(MetricsRegistry& reg);

  /// Capture the energy baseline and start the traffic: inject the initial
  /// closed-loop windows or schedule the first open-loop arrivals.  Not
  /// used when restoring — load_state resumes the armed state instead.
  void arm();

  /// All requests injected and completed.
  bool done() const { return completed() >= cfg_.requests; }

  /// Drive sys.run_until in `step` chops until done() or `max_time`;
  /// returns the machine time of the chop where done() first held.
  TimePs run_to_completion(TimePs step, TimePs max_time);

  /// Send the NOS shutdown request to every service group and give the
  /// grid `drain` picoseconds to wind down (optional, after done()).
  void shutdown(TimePs step, TimePs drain);

  // ----- Results -----
  std::uint64_t completed() const;
  std::uint64_t injected() const;
  std::uint64_t mismatches() const;
  std::uint64_t backpressure_waits() const;
  /// Request latency across all bridges (merged in bridge order), ns.
  LogHistogram merged_latency() const;
  /// Machine time of the last completion, ps.
  TimePs last_completion() const;
  int target_count() const;

  /// The `load_json:` machine block: SLO percentiles, throughput,
  /// per-request energy by account, per-bridge counters.  Deterministic
  /// across engine configurations.  Settles energy; call between chops.
  std::string report_json();

  const LoadConfig& config() const { return cfg_; }

  // ----- Snapshot (src/snap/) -----
  void save_state(StateWriter& w) const;
  void load_state(StateReader& r);
  /// Re-inject a pending kLoadArrival with its original queue keys.
  void restore_event(const LiveEvent& ev);

 private:
  struct BridgeLoad {
    int index = 0;
    NodeId node = 0;
    EthernetBridge* bridge = nullptr;
    Simulator* sim = nullptr;  // the bridge's event domain
    std::vector<ResourceId> targets;   // request chanends, selection pool
    std::vector<ResourceId> shutdown_targets;
    Rng rng{1};
    std::uint64_t quota = 0;     // requests this bridge injects in total
    std::uint64_t spawned = 0;   // ids drawn (sent or waiting)
    std::uint64_t completed = 0;
    std::uint64_t mismatched = 0;
    std::uint64_t waits = 0;     // sends deferred at a full ingress FIFO
    TimePs last_completion = 0;
    bool arrival_pending = false;  // a kLoadArrival event is live
    struct Request {
      TimePs at = 0;          // arrival (generation) time
      std::uint32_t tgt = 0;  // target index in `targets`
    };
    std::map<std::uint32_t, Request> outstanding;  // id -> request
    /// Ids generated but not yet on the wire.  One request is in flight
    /// per target at a time (single-threaded service groups; more would
    /// park a wormhole into a busy endpoint and can head-of-line block the
    /// group's own internal replies — deadlock).  Extra requests queue
    /// here, so measured latency includes host-side queueing.
    std::deque<std::uint32_t> sendq;
    std::vector<std::uint8_t> inflight;  // per target: 0 or 1
    bool pumping = false;  // transient pump_sends reentrancy guard
    LogHistogram latency_ns;
    // Optional registry mirrors (attach_metrics).
    LogHistogram* obs_latency = nullptr;
    MetricCounter* obs_completed = nullptr;
    MetricCounter* obs_mismatch = nullptr;
    MetricCounter* obs_waits = nullptr;
  };

  void build_partitions();
  void deploy_farm_worker(NodeId node);
  void deploy_scatter_frontend(NodeId node,
                               const std::vector<NodeId>& workers);
  void deploy_pipeline_stage(NodeId node, NodeId next, std::uint64_t iters);
  static std::string worker_service_body(std::uint64_t iters);

  static std::uint32_t make_id(int bridge, std::uint64_t seq) {
    return (static_cast<std::uint32_t>(bridge) << 26) |
           static_cast<std::uint32_t>(seq & 0x03FFFFFFu);
  }
  std::uint32_t expected_reply(std::uint32_t id) const;

  void inject_one(BridgeLoad& bl);
  void pump_sends(BridgeLoad& bl);
  void on_reply(BridgeLoad& bl, const std::vector<std::uint8_t>& packet);
  void on_arrival(BridgeLoad& bl);
  void schedule_arrival(BridgeLoad& bl);

  SwallowSystem& sys_;
  LoadConfig cfg_;
  std::vector<BridgeLoad> bridges_;
  bool deployed_ = false;
  bool armed_ = false;
  std::array<double, static_cast<std::size_t>(EnergyAccount::kCount)>
      energy_base_{};
  TimePs done_time_ = 0;
  bool load_images_ = true;  // false on restore: SRAM comes from the snap
  std::uint64_t worker_iters_ = 0;  // burn-loop iterations per worker
};

}  // namespace swallow
