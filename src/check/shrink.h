// Delta-shrinker (ISSUE 5 tentpole, part 4).
//
// Given a generated program whose differential run diverges, remove units
// until no single removal preserves the failure — a greedy ddmin over the
// generator's typed units.  Because removal happens at unit granularity
// (with matched comm send/recv pairs removed together, via pair_id), every
// candidate is again a well-formed, deadlock-free program, so the shrink
// loop never wastes runs on syntactically broken inputs.
#pragma once

#include <string>
#include <vector>

#include "check/differ.h"
#include "check/progen.h"

namespace swallow {

struct ShrinkOptions {
  DifferOptions differ;
  /// Cap on predicate evaluations (each is a full differential run).
  int max_attempts = 500;
};

struct ShrinkResult {
  bool reproduced = false;   // the full program diverged at all
  std::vector<bool> active;  // minimal unit mask
  SourceSet sources;         // rendered minimal program
  std::string divergence;    // the minimal program's failure description
  int instruction_count = 0; // instruction lines in the minimal sources
  int attempts = 0;          // differential runs spent
};

/// Count instruction lines (not labels, directives, comments or blanks)
/// across a source set — the "N-instruction repro" metric.
int count_instruction_lines(const SourceSet& s);

ShrinkResult shrink_program(const GenProgram& p, const ShrinkOptions& opts);

}  // namespace swallow
