#include "check/differ.h"

#include <algorithm>
#include <cmath>

#include "arch/assembler.h"
#include "board/system.h"
#include "common/error.h"
#include "common/strings.h"
#include "fault/fault.h"
#include "obs/trace.h"

namespace swallow {

std::string RunConfig::name() const {
  std::string n = strprintf("jobs=%d,trace=%s,faults=%s%s", jobs,
                            tracing ? "on" : "off", faults ? "on" : "off",
                            stepped ? ",batch=1" : "");
  if (granularity == DomainGranularity::kChip) n += ",gran=chip";
  if (granularity == DomainGranularity::kCore) n += ",gran=core";
  if (sync == SyncMode::kBounded) n += strprintf(",sync=bounded:%d", sync_bound);
  return n;
}

std::vector<int> differ_core_slots(int count) {
  // One core per slice of the 2x2 machine, so traffic crosses the
  // off-board cable links (slot i = slice i's first core).
  static const std::vector<int> kAll = {0, 17, 34, 51};
  require(count == 1 || count == 2 || count == 4,
          "differ_core_slots: count must be 1, 2 or 4");
  return {kAll.begin(), kAll.begin() + count};
}

std::vector<NodeId> differ_node_ids(const std::vector<int>& slots) {
  // Node ids are a pure function of the fixed 2x2 geometry; probe them
  // once per process.
  static const std::vector<NodeId> all = [] {
    Simulator sim;
    SystemConfig cfg;
    cfg.slices_x = 2;
    cfg.slices_y = 2;
    SwallowSystem sys(sim, cfg);
    std::vector<NodeId> ids;
    for (int i = 0; i < sys.core_count(); ++i) {
      ids.push_back(sys.core_by_index(i).node_id());
    }
    return ids;
  }();
  std::vector<NodeId> out;
  for (int slot : slots) out.push_back(all.at(static_cast<std::size_t>(slot)));
  return out;
}

GenProgram differ_generate(std::uint64_t seed) {
  // Slot count cycles with the seed so a sweep covers single-core golden
  // programs and 2- and 4-core communicating ones.
  const int slots = seed % 4 == 0 ? 1 : seed % 4 == 1 ? 2 : 4;
  ProgenOptions o;
  o.core_indices = differ_core_slots(slots);
  o.node_ids = differ_node_ids(o.core_indices);
  o.enable_comm = slots > 1;
  // Single-core seeds exist to exercise the golden oracle: keep them
  // inside its subset (GETTIME is timing, which the oracle doesn't model).
  // Multi-core seeds carry the timer coverage.
  o.enable_timers = slots > 1;
  o.allow_traps = slots == 1;
  return generate_program(seed, o);
}

SourceSet render_sources(const GenProgram& p,
                         const std::vector<bool>& active) {
  SourceSet s;
  s.seed = p.seed;
  s.core_indices = p.core_indices;
  for (std::size_t slot = 0; slot < p.core_indices.size(); ++slot) {
    s.sources.push_back(
        render_core_source(p, static_cast<int>(slot), active));
  }
  return s;
}

SourceSet render_sources(const GenProgram& p) {
  return render_sources(p, std::vector<bool>(p.units.size(), true));
}

namespace {

std::uint64_t digest_core_memory(const Core& core) {
  const std::size_t bytes = core.sram_bytes();
  std::vector<std::uint8_t> buf(bytes);
  for (std::uint32_t a = 0; a < bytes; a += 4) {
    const std::uint32_t w = core.peek_word(a);
    buf[a] = static_cast<std::uint8_t>(w);
    buf[a + 1] = static_cast<std::uint8_t>(w >> 8);
    buf[a + 2] = static_cast<std::uint8_t>(w >> 16);
    buf[a + 3] = static_cast<std::uint8_t>(w >> 24);
  }
  return fnv1a64(buf.data(), buf.size());
}

// The seeded fault schedule: a permanent low-rate corruption window on the
// first program core's links plus (with a partner to talk to) a bounded
// outage on the second's.  Reliable links turn both into pure
// timing/energy perturbations — exactly what the cross-group comparison
// needs.
FaultPlan make_fault_plan(std::uint64_t seed,
                          const std::vector<NodeId>& nodes) {
  FaultPlan plan;
  plan.seed = seed ^ 0xF001'5EEDull;
  plan.corrupt_link(nodes.at(0), -1, 0.02);
  if (nodes.size() >= 2) {
    plan.link_outage(nodes.at(1), -1, microseconds(5.0), microseconds(20.0));
  }
  return plan;
}

bool slot_done(const Core& c) { return c.finished() || c.trapped(); }

}  // namespace

RunObs run_config(const SourceSet& s, const RunConfig& cfg,
                  const DifferOptions& opts) {
  require(s.core_indices.size() == s.sources.size(),
          "run_config: sources/core_indices mismatch");

  Simulator sim;
  SystemConfig scfg;
  scfg.slices_x = 2;
  scfg.slices_y = 2;
  scfg.reliable_links = true;  // faults must be recoverable
  scfg.jobs = cfg.jobs;
  if (cfg.jobs > 0) {
    scfg.sync = cfg.sync;
    scfg.sync_bound = cfg.sync_bound;
  }
  scfg.granularity = cfg.granularity;
  if (cfg.stepped) scfg.core_batch = 1;
  SwallowSystem sys(sim, scfg);

  // Tracing runs also carry energy attribution, so the matrix proves the
  // attribution layer conserves energy and stays deterministic under
  // every engine, batching and fault combination.
  TraceSession session(TraceConfig{.tracing = true, .energy = true});
  if (cfg.tracing) sys.attach_observability(session);

  std::vector<NodeId> nodes;
  std::vector<Core*> cores;
  for (int idx : s.core_indices) {
    cores.push_back(&sys.core_by_index(idx));
    nodes.push_back(cores.back()->node_id());
  }

  FaultInjector injector(sys, cfg.faults ? make_fault_plan(s.seed, nodes)
                                         : FaultPlan{});
  if (cfg.faults) injector.arm();

  for (std::size_t i = 0; i < cores.size(); ++i) {
    const Image image = assemble(s.sources[i]);
    cores[i]->load(image);
    cores[i]->start(image.entry);
  }

  RunObs obs;
  obs.config = cfg;

  TimePs t = 0;
  while (t < opts.time_cap) {
    t = std::min<TimePs>(t + opts.step, opts.time_cap);
    sys.run_until(t);
    obs.completed = std::all_of(cores.begin(), cores.end(),
                                [](Core* c) { return slot_done(*c); });
    if (obs.completed) break;
  }
  if (obs.completed) {
    // Quiescence drain: in-flight tokens, acks and retry timers settle so
    // the wire conservation ledger can balance.
    for (int i = 0; i < opts.drain_chunks; ++i) {
      t += opts.step;
      sys.run_until(t);
    }
  }

  if (cfg.tracing) {
    sys.finish_observability();
    obs.trace_digest = fnv1a64(session.chrome_json());
  }
  sys.settle_energy();
  if (cfg.tracing) {
    // After the final settle: every joule is in the ledger, so the shadow
    // totals must match it exactly — in double bits, not to a tolerance.
    obs.attr_error =
        session.energy_attribution().conservation_error(sys.ledger());
    obs.attr_digest = fnv1a64(session.energy_attribution().to_json());
  }

  for (Core* c : cores) {
    CoreObs co;
    co.regs = c->thread_regs(0);
    co.mem_digest = digest_core_memory(*c);
    co.retired = c->instructions_retired();
    co.console = c->console();
    co.trap = c->trap().kind;
    co.trap_pc = c->trap().pc;
    co.finished = c->finished();
    obs.cores.push_back(std::move(co));
  }

  EnergyLedger& ledger = sys.ledger();
  for (std::size_t a = 0; a < obs.energy.size(); ++a) {
    obs.energy[a] = ledger.total(static_cast<EnergyAccount>(a));
  }
  obs.energy_total = ledger.grand_total();
  obs.conservation_slack = sys.network().wire_conservation_slack();
  return obs;
}

namespace {

std::string describe_core_mismatch(const CoreObs& a, const CoreObs& b,
                                   std::size_t slot) {
  for (int r = 0; r < kNumRegisters; ++r) {
    if (a.regs[static_cast<std::size_t>(r)] !=
        b.regs[static_cast<std::size_t>(r)]) {
      return strprintf("core slot %zu: %s = 0x%08x vs 0x%08x", slot,
                       std::string(register_name(r)).c_str(),
                       a.regs[static_cast<std::size_t>(r)],
                       b.regs[static_cast<std::size_t>(r)]);
    }
  }
  if (a.mem_digest != b.mem_digest) {
    return strprintf("core slot %zu: memory digest %016llx vs %016llx", slot,
                     static_cast<unsigned long long>(a.mem_digest),
                     static_cast<unsigned long long>(b.mem_digest));
  }
  if (a.retired != b.retired) {
    return strprintf("core slot %zu: retired %llu vs %llu", slot,
                     static_cast<unsigned long long>(a.retired),
                     static_cast<unsigned long long>(b.retired));
  }
  if (a.console != b.console) {
    return strprintf("core slot %zu: console '%s' vs '%s'", slot,
                     a.console.c_str(), b.console.c_str());
  }
  if (a.trap != b.trap || a.trap_pc != b.trap_pc) {
    return strprintf("core slot %zu: trap %s@%u vs %s@%u", slot,
                     std::string(to_string(a.trap)).c_str(), a.trap_pc,
                     std::string(to_string(b.trap)).c_str(), b.trap_pc);
  }
  if (a.finished != b.finished) {
    return strprintf("core slot %zu: finished %d vs %d", slot, a.finished,
                     b.finished);
  }
  return "";
}

/// Architectural comparison only (valid across fault groups).
std::string compare_architectural(const RunObs& a, const RunObs& b) {
  if (a.completed != b.completed) {
    return strprintf("[%s vs %s] completed %d vs %d", a.config.name().c_str(),
                     b.config.name().c_str(), a.completed, b.completed);
  }
  for (std::size_t i = 0; i < a.cores.size(); ++i) {
    if (a.cores[i] == b.cores[i]) continue;
    return strprintf("[%s vs %s] %s", a.config.name().c_str(),
                     b.config.name().c_str(),
                     describe_core_mismatch(a.cores[i], b.cores[i], i).c_str());
  }
  return "";
}

/// Per-account energy comparison within a stated relative bound.
std::string compare_energy_within(const RunObs& a, const RunObs& b,
                                  double rel_tol) {
  for (std::size_t acc = 0; acc < a.energy.size(); ++acc) {
    const double scale =
        std::max({1.0, std::abs(a.energy[acc]), std::abs(b.energy[acc])});
    if (std::abs(a.energy[acc] - b.energy[acc]) <= rel_tol * scale) continue;
    return strprintf(
        "[%s vs %s] energy account %s: %.17g vs %.17g J (bound %.3g rel)",
        a.config.name().c_str(), b.config.name().c_str(),
        std::string(to_string(static_cast<EnergyAccount>(acc))).c_str(),
        a.energy[acc], b.energy[acc], rel_tol);
  }
  return "";
}

/// Energy comparison across tracing modes or granularities: same physics,
/// different integration chunking or double summation order — allow
/// last-ulp reassociation drift only.
std::string compare_energy_tolerant(const RunObs& a, const RunObs& b) {
  return compare_energy_within(a, b, 1e-9);
}

/// Full bit-compare (same fault group: engine determinism contract).
std::string compare_strict(const RunObs& a, const RunObs& b) {
  std::string arch = compare_architectural(a, b);
  if (!arch.empty()) return arch;
  for (std::size_t acc = 0; acc < a.energy.size(); ++acc) {
    if (a.energy[acc] == b.energy[acc]) continue;
    return strprintf("[%s vs %s] energy account %s: %.17g vs %.17g J",
                     a.config.name().c_str(), b.config.name().c_str(),
                     std::string(to_string(static_cast<EnergyAccount>(acc)))
                         .c_str(),
                     a.energy[acc], b.energy[acc]);
  }
  if (a.energy_total != b.energy_total) {
    return strprintf("[%s vs %s] energy total: %.17g vs %.17g J",
                     a.config.name().c_str(), b.config.name().c_str(),
                     a.energy_total, b.energy_total);
  }
  if (a.config.tracing && b.config.tracing &&
      a.trace_digest != b.trace_digest) {
    return strprintf("[%s vs %s] trace JSON digest %016llx vs %016llx",
                     a.config.name().c_str(), b.config.name().c_str(),
                     static_cast<unsigned long long>(a.trace_digest),
                     static_cast<unsigned long long>(b.trace_digest));
  }
  if (a.config.tracing && b.config.tracing &&
      a.attr_digest != b.attr_digest) {
    return strprintf(
        "[%s vs %s] energy attribution digest %016llx vs %016llx",
        a.config.name().c_str(), b.config.name().c_str(),
        static_cast<unsigned long long>(a.attr_digest),
        static_cast<unsigned long long>(b.attr_digest));
  }
  return "";
}

std::string compare_to_golden(const SourceSet& s, const RunObs& base,
                              const DifferOptions& opts) {
  const Image image = assemble(s.sources[0]);
  RefOptions ropts;
  ropts.inject_bug = opts.inject_ref_bug;
  const RefResult ref = ref_run(image, ropts);
  if (ref.stop == RefStop::kUnsupported) return "";  // outside golden subset
  if (ref.stop == RefStop::kStepLimit) return "";    // oracle gave up
  const CoreObs& sim = base.cores[0];

  if (ref.stop == RefStop::kTrapped) {
    if (sim.trap != ref.trap || sim.trap_pc != ref.pc) {
      return strprintf("golden: trap %s@%u, sim: %s@%u",
                       std::string(to_string(ref.trap)).c_str(), ref.pc,
                       std::string(to_string(sim.trap)).c_str(), sim.trap_pc);
    }
  } else if (sim.trap != TrapKind::kNone || !sim.finished) {
    return strprintf("golden finished cleanly, sim: trap=%s finished=%d",
                     std::string(to_string(sim.trap)).c_str(), sim.finished);
  }

  for (int r = 0; r < kNumRegisters; ++r) {
    if (ref.regs[static_cast<std::size_t>(r)] !=
        sim.regs[static_cast<std::size_t>(r)]) {
      return strprintf("golden vs sim: %s = 0x%08x vs 0x%08x",
                       std::string(register_name(r)).c_str(),
                       ref.regs[static_cast<std::size_t>(r)],
                       sim.regs[static_cast<std::size_t>(r)]);
    }
  }
  const std::uint64_t ref_digest = fnv1a64(ref.sram.data(), ref.sram.size());
  if (ref_digest != sim.mem_digest) {
    return strprintf("golden vs sim: memory digest %016llx vs %016llx",
                     static_cast<unsigned long long>(ref_digest),
                     static_cast<unsigned long long>(sim.mem_digest));
  }
  if (ref.retired != sim.retired) {
    return strprintf("golden vs sim: retired %llu vs %llu",
                     static_cast<unsigned long long>(ref.retired),
                     static_cast<unsigned long long>(sim.retired));
  }
  if (ref.console != sim.console) {
    return strprintf("golden vs sim: console '%s' vs '%s'",
                     ref.console.c_str(), sim.console.c_str());
  }
  return "";
}

}  // namespace

DiffResult run_differential(const SourceSet& s, const DifferOptions& opts) {
  DiffResult res;
  res.seed = s.seed;

  std::vector<RunConfig> matrix;
  for (const bool faults : {false, true}) {
    if (faults && !opts.with_faults) continue;
    for (const bool tracing : {false, true}) {
      if (tracing && !opts.with_tracing) continue;
      for (int jobs : opts.jobs) {
        matrix.push_back(RunConfig{jobs, tracing, faults});
      }
      if (opts.with_stepped) {
        // One stepped engine per group: the strict within-group comparison
        // proves batched issue ≡ per-instruction stepping, bit for bit.
        matrix.push_back(
            RunConfig{opts.jobs.front(), tracing, faults, /*stepped=*/true});
      }
      if (opts.with_sync) {
        // Bounded-sync column: the per-chip strict subgroup (sequential,
        // exact-parallel, bounded:0 — bit-identity at the finer
        // granularity), plus fault-free bounded:N drift runs.
        RunConfig chip_seq{0, tracing, faults};
        chip_seq.granularity = DomainGranularity::kChip;
        matrix.push_back(chip_seq);
        RunConfig chip_exact = chip_seq;
        chip_exact.jobs = opts.sync_jobs;
        matrix.push_back(chip_exact);
        RunConfig chip_b0 = chip_exact;
        chip_b0.sync = SyncMode::kBounded;
        chip_b0.sync_bound = 0;
        matrix.push_back(chip_b0);
        if (!faults) {
          for (const int n : opts.sync_bounds) {
            if (n <= 0) continue;
            RunConfig b = chip_exact;
            b.sync = SyncMode::kBounded;
            b.sync_bound = n;
            matrix.push_back(b);
          }
        }
      }
    }
  }
  require(!matrix.empty(), "run_differential: empty config matrix");

  for (const RunConfig& cfg : matrix) {
    res.runs.push_back(run_config(s, cfg, opts));
  }

  auto fail = [&](std::string what) {
    res.divergence = std::move(what);
  };

  // Conservation in every run: negative slack is always a bug; at
  // quiescence (completed + drained) the slack must be exactly zero.
  for (const RunObs& r : res.runs) {
    if (r.conservation_slack < 0 ||
        (r.completed && r.conservation_slack != 0)) {
      fail(strprintf("[%s] wire token conservation slack = %lld",
                     r.config.name().c_str(),
                     static_cast<long long>(r.conservation_slack)));
      return res;
    }
  }

  // Energy-attribution conservation in every tracing run: the attribution
  // shards receive the exact charge stream of their ledger partition, so
  // the attributed totals must equal the merged ledger in double bits.
  for (const RunObs& r : res.runs) {
    if (!r.attr_error.empty()) {
      fail(strprintf("[%s] %s", r.config.name().c_str(),
                     r.attr_error.c_str()));
      return res;
    }
  }

  // Strictest comparison within each (faults, tracing, granularity) group:
  // the engine determinism contract promises bit-identical state, energy
  // and trace JSON across worker counts — including exact-mode and
  // bounded:0 parallel runs at any granularity.  Tracing changes how
  // run_until is chopped (flush-period multiples), so energy integrates in
  // different chunk sizes — identical physics, last-ulp float
  // reassociation — and is only tolerance-compared across tracing modes.
  // Fault runs take retry detours, so across fault groups only
  // architectural state must match.  Bounded:N (relaxed) runs may deviate
  // from the exact event order and are compared separately below.
  const RunObs* base_by_group[4] = {nullptr, nullptr, nullptr, nullptr};
  const RunObs* chip_base_by_group[4] = {nullptr, nullptr, nullptr, nullptr};
  for (const RunObs& r : res.runs) {
    if (r.config.relaxed()) continue;
    const std::size_t g = (r.config.faults ? 2u : 0u) +
                          (r.config.tracing ? 1u : 0u);
    const RunObs*& base =
        r.config.granularity == DomainGranularity::kSlice
            ? base_by_group[g]
            : chip_base_by_group[g];
    if (base == nullptr) {
      base = &r;
      continue;
    }
    std::string diff = compare_strict(*base, r);
    if (!diff.empty()) {
      fail(std::move(diff));
      return res;
    }
  }

  // Across granularities (same group): the domain refinement must be
  // architecturally invisible, and energy totals agree up to double
  // summation order (the per-partition ledgers merge in a different
  // order).
  for (std::size_t g = 0; g < 4; ++g) {
    const RunObs* a = base_by_group[g];
    const RunObs* b = chip_base_by_group[g];
    if (a == nullptr || b == nullptr) continue;
    std::string diff = compare_architectural(*a, *b);
    if (diff.empty()) diff = compare_energy_tolerant(*a, *b);
    if (!diff.empty()) {
      fail(std::move(diff));
      return res;
    }
  }

  // Bounded:N drift runs: architectural convergence must be exact (per-
  // core retired instruction counts included — CoreObs comparison), and
  // per-account energy must land within the stated relative bound of the
  // same-group exact base.
  for (const RunObs& r : res.runs) {
    if (!r.config.relaxed()) continue;
    const std::size_t g = (r.config.faults ? 2u : 0u) +
                          (r.config.tracing ? 1u : 0u);
    const RunObs* base = chip_base_by_group[g] != nullptr
                             ? chip_base_by_group[g]
                             : base_by_group[g];
    if (base == nullptr) continue;
    std::string diff = compare_architectural(*base, r);
    if (diff.empty()) {
      diff = compare_energy_within(*base, r, opts.sync_energy_rel_bound);
    }
    if (!diff.empty()) {
      fail(std::move(diff));
      return res;
    }
  }
  for (const int faults : {0, 2}) {
    const RunObs* off = base_by_group[faults];
    const RunObs* on = base_by_group[faults + 1];
    if (off == nullptr || on == nullptr) continue;
    std::string diff = compare_architectural(*off, *on);
    if (diff.empty()) diff = compare_energy_tolerant(*off, *on);
    if (!diff.empty()) {
      fail(std::move(diff));
      return res;
    }
  }
  {
    const RunObs* no_fault = base_by_group[0] != nullptr ? base_by_group[0]
                                                         : base_by_group[1];
    const RunObs* fault = base_by_group[2] != nullptr ? base_by_group[2]
                                                      : base_by_group[3];
    if (no_fault != nullptr && fault != nullptr) {
      std::string diff = compare_architectural(*no_fault, *fault);
      if (!diff.empty()) {
        fail(std::move(diff));
        return res;
      }
    }
  }

  // Golden-model check for single-core programs (no-fault base run).
  if (s.sources.size() == 1 && base_by_group[0] != nullptr &&
      base_by_group[0]->completed) {
    std::string diff = compare_to_golden(s, *base_by_group[0], opts);
    if (!diff.empty()) {
      fail(std::move(diff));
      return res;
    }
  }
  return res;
}

DiffResult run_differential_seed(std::uint64_t seed,
                                 const DifferOptions& opts) {
  return run_differential(render_sources(differ_generate(seed)), opts);
}

std::string format_repro(const SourceSet& s, const std::string& divergence) {
  std::string out;
  out += "# swallow_check repro\n";
  out += strprintf("# seed: %llu\n",
                   static_cast<unsigned long long>(s.seed));
  if (!divergence.empty()) {
    std::string first_line = divergence.substr(0, divergence.find('\n'));
    out += "# divergence: " + first_line + "\n";
  }
  out += "# re-run: swallow_check --repro <this file>\n";
  for (std::size_t i = 0; i < s.core_indices.size(); ++i) {
    out += strprintf("== core %d ==\n", s.core_indices[i]);
    out += s.sources[i];
    if (!s.sources[i].empty() && s.sources[i].back() != '\n') out += '\n';
  }
  return out;
}

SourceSet parse_repro(const std::string& text) {
  SourceSet s;
  std::size_t pos = 0;
  std::string* current = nullptr;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string line =
        text.substr(pos, eol == std::string::npos ? std::string::npos
                                                  : eol - pos);
    pos = eol == std::string::npos ? text.size() + 1 : eol + 1;

    if (line.rfind("# seed:", 0) == 0) {
      s.seed = std::strtoull(line.c_str() + 7, nullptr, 10);
      continue;
    }
    if (line.rfind("== core ", 0) == 0) {
      const int idx = std::atoi(line.c_str() + 8);
      s.core_indices.push_back(idx);
      s.sources.emplace_back();
      current = &s.sources.back();
      continue;
    }
    if (!line.empty() && line[0] == '#') continue;
    if (current != nullptr) {
      *current += line;
      *current += '\n';
    }
  }
  require(!s.sources.empty(), "parse_repro: no '== core N ==' sections");
  return s;
}

}  // namespace swallow
