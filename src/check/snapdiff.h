// Snapshot differ (PR 6): proves the checkpoint/restore keystone and
// drives time-bisection.
//
// snap_roundtrip() runs one workload twice: uninterrupted to 2T, and
// run-to-T / save_machine / encode / decode / restore into a freshly
// built machine / run-to-2T.  Both finals are rendered back through
// save_machine and compared section by section, byte by byte — so every
// register, SRAM word, fifo, energy double, rng stream, metric and trace
// event must match bit-for-bit, under any engine (--jobs) and with or
// without an armed fault plan.
//
// time_bisect() checkpoints two runs of the same workload — a reference
// and a subject carrying a planted divergence (an SRAM poke at an unknown
// time) — every `interval`, then binary-searches the per-checkpoint state
// digests to localise the first divergent interval.  This is the offline
// workflow (docs/testing.md §time-bisection) in library form: a soak that
// went wrong between checkpoints k-1 and k can be re-examined from the
// k-1 snapshot instead of from t = 0.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/differ.h"
#include "common/units.h"

namespace swallow {

struct SnapRoundtripOptions {
  int jobs = 0;          // SystemConfig::jobs for every machine built
  bool tracing = true;   // attach a TraceSession (pinned by the config hash)
  bool faults = true;    // arm the differ's seeded FaultPlan
  TimePs half = microseconds(200.0);  // T: snapshot point; runs end at 2T
  TimePs step = microseconds(50.0);   // host chop granularity
};

/// Returns "" when the restored run's final machine state is bit-identical
/// to the uninterrupted run's, else a description naming the first
/// differing section and byte.
std::string snap_roundtrip(const SourceSet& s,
                           const SnapRoundtripOptions& opts);

struct TimeBisectOptions {
  int jobs = 0;
  bool tracing = false;  // keep bisect probes cheap by default
  bool faults = true;
  TimePs interval = microseconds(50.0);  // checkpoint cadence
  TimePs horizon = microseconds(2000.0);
  /// When nonzero, the subject run pokes an SRAM word of the first program
  /// core at the chop point nearest this time (the "unknown" divergence
  /// the bisection must find).
  TimePs plant_at = 0;
};

struct TimeBisectResult {
  bool diverged = false;
  /// Divergence localised to (lo, hi] — one checkpoint interval wide.
  TimePs lo = 0;
  TimePs hi = 0;
  int probes = 0;       // digest comparisons the binary search spent
  int checkpoints = 0;  // snapshots taken per run
};

TimeBisectResult time_bisect(const SourceSet& s,
                             const TimeBisectOptions& opts);

}  // namespace swallow
