#include "check/ref_isa.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"
#include "common/strings.h"

namespace swallow {

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t fnv1a64(const std::string& s) {
  return fnv1a64(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

namespace {

// Everything the golden model knows about one executing program.  The
// point of this struct is what it does NOT contain: no clock, no event
// queue, no energy trace, no other threads.
struct RefState {
  std::array<std::uint32_t, kNumRegisters> regs{};
  std::uint32_t pc = 0;
  std::vector<std::uint8_t> sram;
  std::string console;
};

std::uint32_t ref_load_word(const RefState& st, std::uint32_t addr) {
  std::uint32_t v;
  std::memcpy(&v, st.sram.data() + addr, 4);
  return v;
}

void ref_store_word(RefState& st, std::uint32_t addr, std::uint32_t value) {
  std::memcpy(st.sram.data() + addr, &value, 4);
}

// Mirrors Core::mem_check ordering exactly: alignment first, then bounds
// (with the same wrap guard), so a doubly-bad address traps with the same
// kind on both engines.
TrapKind ref_mem_check(const RefState& st, std::uint32_t addr,
                       std::uint32_t size, std::uint32_t align,
                       std::string* msg) {
  if (addr % align != 0) {
    *msg = strprintf("unaligned access at 0x%x", addr);
    return TrapKind::kMemoryAlignment;
  }
  if (addr + size > st.sram.size() || addr + size < addr) {
    *msg = strprintf("access at 0x%x beyond %zu-byte SRAM", addr,
                     st.sram.size());
    return TrapKind::kMemoryBounds;
  }
  return TrapKind::kNone;
}

enum class Step { kNext, kBranched, kExited, kTrapped, kUnsupported };

Step ref_step(RefState& st, const Instruction& ins, const RefOptions& opts,
              TrapKind* trap, std::string* trap_msg) {
  auto& R = st.regs;
  const auto ra = ins.ra, rb = ins.rb, rc = ins.rc;
  const std::int32_t imm = ins.imm;

  switch (ins.op) {
    case Opcode::kNop:
      return Step::kNext;

    // ---- ALU ----
    case Opcode::kAdd:
      if (opts.inject_bug == kRefBugAddOddOperands && (R[rb] & 1) &&
          (R[rc] & 1)) {
        R[ra] = R[rb] + R[rc] + 1;  // the deliberate oracle bug
        return Step::kNext;
      }
      R[ra] = R[rb] + R[rc];
      return Step::kNext;
    case Opcode::kSub: R[ra] = R[rb] - R[rc]; return Step::kNext;
    case Opcode::kAnd: R[ra] = R[rb] & R[rc]; return Step::kNext;
    case Opcode::kOr: R[ra] = R[rb] | R[rc]; return Step::kNext;
    case Opcode::kXor: R[ra] = R[rb] ^ R[rc]; return Step::kNext;
    case Opcode::kEq: R[ra] = R[rb] == R[rc]; return Step::kNext;
    case Opcode::kLss:
      R[ra] = static_cast<std::int32_t>(R[rb]) < static_cast<std::int32_t>(R[rc]);
      return Step::kNext;
    case Opcode::kLsu: R[ra] = R[rb] < R[rc]; return Step::kNext;
    case Opcode::kNot: R[ra] = ~R[rb]; return Step::kNext;
    case Opcode::kNeg:
      // Unsigned negation: two's complement result, defined for INT_MIN.
      R[ra] = 0u - R[rb];
      return Step::kNext;
    case Opcode::kMkmsk:
      R[ra] = R[rb] >= 32 ? 0xFFFFFFFFu : (1u << R[rb]) - 1u;
      return Step::kNext;
    case Opcode::kMul: R[ra] = R[rb] * R[rc]; return Step::kNext;
    case Opcode::kMacc: R[ra] += R[rb] * R[rc]; return Step::kNext;
    case Opcode::kLmulh:
      R[ra] = static_cast<std::uint32_t>(
          (static_cast<std::uint64_t>(R[rb]) * R[rc]) >> 32);
      return Step::kNext;
    case Opcode::kDivu:
    case Opcode::kRemu:
      if (R[rc] == 0) {
        *trap = TrapKind::kBadOperand;
        *trap_msg = "divide by zero";
        return Step::kTrapped;
      }
      R[ra] = ins.op == Opcode::kDivu ? R[rb] / R[rc] : R[rb] % R[rc];
      return Step::kNext;
    case Opcode::kShl:
      R[ra] = R[rc] >= 32 ? 0 : R[rb] << R[rc];
      return Step::kNext;
    case Opcode::kShr:
      R[ra] = R[rc] >= 32 ? 0 : R[rb] >> R[rc];
      return Step::kNext;
    case Opcode::kAshr: {
      const std::uint32_t amt = std::min<std::uint32_t>(R[rc], 31);
      R[ra] = static_cast<std::uint32_t>(static_cast<std::int32_t>(R[rb]) >> amt);
      return Step::kNext;
    }

    // ---- Immediates ----
    case Opcode::kAddi:
      R[ra] = R[rb] + static_cast<std::uint32_t>(imm);
      return Step::kNext;
    case Opcode::kSubi:
      R[ra] = R[rb] - static_cast<std::uint32_t>(imm);
      return Step::kNext;
    case Opcode::kShli:
      R[ra] = static_cast<std::uint32_t>(imm) >= 32 ? 0 : R[rb] << (imm & 31);
      return Step::kNext;
    case Opcode::kShri:
      R[ra] = static_cast<std::uint32_t>(imm) >= 32 ? 0 : R[rb] >> (imm & 31);
      return Step::kNext;
    case Opcode::kEqi:
      R[ra] = R[rb] == static_cast<std::uint32_t>(imm);
      return Step::kNext;
    case Opcode::kAshri: {
      const std::uint32_t amt =
          std::min<std::uint32_t>(static_cast<std::uint32_t>(imm), 31);
      R[ra] = static_cast<std::uint32_t>(static_cast<std::int32_t>(R[rb]) >> amt);
      return Step::kNext;
    }
    case Opcode::kLdc:
      R[ra] = static_cast<std::uint32_t>(imm) & 0xFFFF;
      return Step::kNext;
    case Opcode::kLdch:
      R[ra] = (R[ra] << 16) | (static_cast<std::uint32_t>(imm) & 0xFFFF);
      return Step::kNext;

    // ---- Memory / stack ----
    case Opcode::kLdw:
    case Opcode::kStw:
    case Opcode::kLdb:
    case Opcode::kStb:
    case Opcode::kLdwsp:
    case Opcode::kStwsp: {
      std::uint32_t addr, size, align;
      switch (ins.op) {
        case Opcode::kLdw:
        case Opcode::kStw:
          addr = R[rb] + static_cast<std::uint32_t>(imm) * 4;
          size = align = 4;
          break;
        case Opcode::kLdb:
        case Opcode::kStb:
          addr = R[rb] + static_cast<std::uint32_t>(imm);
          size = align = 1;
          break;
        default:  // LDWSP / STWSP
          addr = R[kRegSp] + static_cast<std::uint32_t>(imm) * 4;
          size = align = 4;
          break;
      }
      *trap = ref_mem_check(st, addr, size, align, trap_msg);
      if (*trap != TrapKind::kNone) return Step::kTrapped;
      switch (ins.op) {
        case Opcode::kLdw:
        case Opcode::kLdwsp: R[ra] = ref_load_word(st, addr); break;
        case Opcode::kStw:
        case Opcode::kStwsp: ref_store_word(st, addr, R[ra]); break;
        case Opcode::kLdb: R[ra] = st.sram[addr]; break;
        case Opcode::kStb:
          st.sram[addr] = static_cast<std::uint8_t>(R[ra] & 0xFF);
          break;
        default: break;
      }
      return Step::kNext;
    }
    case Opcode::kLdawsp:
      R[ra] = R[kRegSp] + static_cast<std::uint32_t>(imm) * 4;
      return Step::kNext;
    case Opcode::kExtsp:
      R[kRegSp] -= static_cast<std::uint32_t>(imm) * 4;
      return Step::kNext;

    // ---- Control flow ----
    case Opcode::kBt:
    case Opcode::kBf: {
      const bool taken = (ins.op == Opcode::kBt) == (R[ra] != 0);
      if (!taken) return Step::kNext;
      st.pc = static_cast<std::uint32_t>(
          static_cast<std::int64_t>(st.pc) + 1 + imm);
      return Step::kBranched;
    }
    case Opcode::kBu:
      st.pc = static_cast<std::uint32_t>(
          static_cast<std::int64_t>(st.pc) + 1 + imm);
      return Step::kBranched;
    case Opcode::kBl:
      R[kRegLr] = st.pc + 1;
      st.pc = static_cast<std::uint32_t>(
          static_cast<std::int64_t>(st.pc) + 1 + imm);
      return Step::kBranched;
    case Opcode::kBau:
      st.pc = R[ra];
      return Step::kBranched;
    case Opcode::kRet:
      st.pc = R[kRegLr];
      return Step::kBranched;

    // ---- Console & exit ----
    case Opcode::kPrintc:
      st.console += static_cast<char>(R[ra] & 0xFF);
      return Step::kNext;
    case Opcode::kPrinti:
      st.console += std::to_string(static_cast<std::int32_t>(R[ra]));
      return Step::kNext;
    case Opcode::kTexit:
      return Step::kExited;

    // Everything else touches resources, threads, or time — outside the
    // golden subset by design.
    default:
      return Step::kUnsupported;
  }
}

}  // namespace

RefResult ref_run(const Image& image, const RefOptions& opts) {
  require(opts.sram_bytes % 4 == 0, "ref_run: SRAM size must be word aligned");
  require(image.size_bytes() <= opts.sram_bytes, "ref_run: image too large");

  RefState st;
  st.sram.assign(opts.sram_bytes, 0);
  for (std::size_t i = 0; i < image.words.size(); ++i) {
    ref_store_word(st, static_cast<std::uint32_t>(i * 4), image.words[i]);
  }
  st.regs.fill(0);
  st.regs[kRegSp] = static_cast<std::uint32_t>(st.sram.size());
  st.pc = image.entry;

  RefResult out;
  const std::uint32_t pc_limit =
      static_cast<std::uint32_t>(st.sram.size() / 4);
  std::string trap_msg;
  while (true) {
    if (out.retired >= opts.max_steps) {
      out.stop = RefStop::kStepLimit;
      break;
    }
    if (st.pc >= pc_limit) {
      out.stop = RefStop::kTrapped;
      out.trap = TrapKind::kMemoryBounds;
      break;
    }
    const Instruction ins = decode(ref_load_word(st, st.pc * 4));
    if (ins.op == Opcode::kNop && ins.rc == 0xF) {
      out.stop = RefStop::kTrapped;
      out.trap = TrapKind::kBadOpcode;
      break;
    }
    if (!registers_valid(ins)) {  // mirrors the core's decode check
      out.stop = RefStop::kTrapped;
      out.trap = TrapKind::kBadOpcode;
      break;
    }
    TrapKind trap = TrapKind::kNone;
    const Step step = ref_step(st, ins, opts, &trap, &trap_msg);
    if (step == Step::kTrapped) {
      // Like the core: the trapping instruction does not retire and pc
      // stays on it.
      out.stop = RefStop::kTrapped;
      out.trap = trap;
      break;
    }
    if (step == Step::kUnsupported) {
      out.stop = RefStop::kUnsupported;
      out.unsupported = ins.op;
      break;
    }
    ++out.retired;
    if (step == Step::kExited) {
      out.stop = RefStop::kFinished;
      break;
    }
    if (step == Step::kNext) st.pc += 1;
  }

  out.regs = st.regs;
  out.pc = st.pc;
  out.console = std::move(st.console);
  out.sram = std::move(st.sram);
  return out;
}

}  // namespace swallow
