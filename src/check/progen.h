// Typed random program generator (ISSUE 5 tentpole, part 2).
//
// Emits *well-formed* random programs — the opposite of a bit-level
// fuzzer.  Every generated program is built from typed units that are
// individually terminating and jointly deadlock-free:
//   * bounded loops (counted down in r10, backward branch only),
//   * in-SRAM loads/stores against a reserved per-core scratch area,
//   * balanced stack traffic (every EXTSP paired with its LDAWSP restore),
//   * call/return and computed-jump units with unit-local labels,
//   * timer waits whose result register is cleared after use (so the
//     architectural state stays comparable across timing-perturbed runs),
//   * matched channel send/receive pairs across cores, sequenced in one
//     global conversation order on both sides so the conversation graph
//     is acyclic and cannot deadlock.
//
// The unit structure is load-bearing: the delta-shrinker removes whole
// units (comm pairs as one atom, via pair_id) and re-renders, so every
// shrink step is again a well-formed program.
//
// Register convention (what makes random composition safe):
//   r0..r7  data registers, freely clobbered by ALU units
//   r8, r9  unit-local scratch (addresses, constants); r9 is cleared after
//           any timing-dependent use (GETTIME)
//   r10     loop counters (always counted to zero)
//   r11     this core's chanend, allocated once in the prologue
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/resource.h"

namespace swallow {

struct ProgenOptions {
  /// System cores (SwallowSystem::core_by_index slots) the program runs
  /// on; node_ids must be parallel to this when comm is enabled.
  std::vector<int> core_indices = {0};
  std::vector<NodeId> node_ids;

  int min_units = 3;             // per core
  int max_units = 8;
  bool enable_comm = true;       // needs >= 2 cores
  bool enable_timers = true;
  /// Allow a trapping unit (divide-by-zero, unaligned access, wild jump).
  /// Only honoured for single-core programs — a trapped core would hang
  /// its communication partners forever.
  bool allow_traps = false;
  std::uint32_t max_loop_iters = 8;
};

/// One generated unit: a few assembly lines for one core, plus optional
/// out-of-line code (function bodies) placed after TEXIT.
struct ProgenUnit {
  int slot = 0;       // index into GenProgram::core_indices
  int pair_id = -1;   // comm halves share an id; the shrinker removes both
  bool traps = false; // deliberately trapping unit (terminates the core)
  std::vector<std::string> lines;
  std::vector<std::string> footer;
};

struct GenProgram {
  std::uint64_t seed = 0;
  bool golden_eligible = false;  // single core, compute-only
  bool uses_comm = false;
  std::vector<int> core_indices;
  std::vector<NodeId> node_ids;
  /// Global order; each core executes its units in this order, and comm
  /// pairs appear at consistent positions on both sides.
  std::vector<ProgenUnit> units;
};

GenProgram generate_program(std::uint64_t seed, const ProgenOptions& opts);

/// Render the assembly source for one core, including only units whose
/// `active` flag is set (the shrinker's hook).  active.size() must equal
/// p.units.size().
std::string render_core_source(const GenProgram& p, int slot,
                               const std::vector<bool>& active);

/// All units active.
std::string render_core_source(const GenProgram& p, int slot);

}  // namespace swallow
