// Differential executor (ISSUE 5 tentpole, part 3).
//
// Runs one workload under every engine configuration the machine supports
// — sequential and parallel sharded ({--jobs 0, 1, 2, 4}), tracing on/off,
// seeded fault plan on/off (reliable links, so faults perturb timing and
// energy but never architectural results) — and cross-checks:
//   * bit-identical architectural state, retired counts, console output,
//     energy ledgers and trace JSON between runs in the same fault group
//     (the engine determinism contract),
//   * identical architectural state across fault groups (fault tolerance
//     must be architecturally invisible),
//   * wire token conservation (injected = delivered + accounted-dropped)
//     at quiescence in every run,
//   * energy-attribution conservation in every tracing run (the src/obs
//     attribution shards must account for the merged ledger's totals in
//     double bits, and the attribution JSON must be byte-identical across
//     worker counts),
//   * for single-core compute-only programs, agreement with the golden
//     reference interpreter (registers, memory digest, retired count,
//     console, trap).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "arch/isa.h"
#include "arch/trap.h"
#include "board/system.h"
#include "check/progen.h"
#include "check/ref_isa.h"
#include "common/units.h"
#include "energy/ledger.h"

namespace swallow {

/// One engine/instrumentation configuration of the matrix.
struct RunConfig {
  int jobs = 0;          // SystemConfig::jobs (0 = sequential engine)
  bool tracing = false;  // attach a TraceSession
  bool faults = false;   // arm the seeded FaultPlan
  bool stepped = false;  // core_batch=1: one-event-per-instruction issue
  /// Engine synchronization (SystemConfig::sync/sync_bound): kBounded with
  /// a nonzero bound may deviate from exact event order.
  SyncMode sync = SyncMode::kExact;
  int sync_bound = 0;
  /// Event-domain/ledger sharding (SystemConfig::granularity).  Runs at
  /// different granularities merge energy doubles in different orders, so
  /// each granularity forms its own strict-comparison subgroup.
  DomainGranularity granularity = DomainGranularity::kSlice;

  /// True when this run may drift from the exact event order.
  bool relaxed() const {
    return sync == SyncMode::kBounded && sync_bound > 0;
  }

  std::string name() const;
};

struct DifferOptions {
  std::vector<int> jobs = {0, 1, 2, 4};
  bool with_tracing = true;
  bool with_faults = true;
  /// Add one stepped (core_batch=1) run per (faults, tracing) group; the
  /// strict comparison then machine-checks that batched issue is
  /// bit-identical to the historical per-instruction engine.
  bool with_stepped = true;
  /// Bounded-sync column (swallow_check --sync-sweep).  Adds per-chip
  /// granularity runs to every group — sequential, exact-parallel and
  /// bounded:0, all strict-compared within the chip subgroup (machine-
  /// checking that exact mode and bounded:0 are bit-identical to the
  /// sequential engine at the finer granularity) and compared against the
  /// slice-granularity base architecturally with energy to last-ulp
  /// tolerance (the merge order of energy doubles differs).  Fault-free
  /// groups additionally run bounded:N for each entry of sync_bounds;
  /// those must converge architecturally (per-core retired instruction
  /// counts exact) with per-account energy within sync_energy_rel_bound.
  bool with_sync = false;
  std::vector<int> sync_bounds = {16, 64};
  double sync_energy_rel_bound = 0.02;
  /// Worker count for the parallel sync-column runs.
  int sync_jobs = 4;
  /// Golden-model bug shim (kRefBug*); the harness must then REPORT a
  /// divergence for programs exercising the buggy instruction.
  int inject_ref_bug = kRefBugNone;
  TimePs time_cap = milliseconds(20.0);
  TimePs step = microseconds(50.0);
  /// Extra post-completion chunks so in-flight acks/retries reach
  /// quiescence before the conservation check.
  int drain_chunks = 3;
};

/// The workload itself: per-core assembly sources, decoupled from the
/// generator so shrunk programs and repro files run through the same path.
struct SourceSet {
  std::uint64_t seed = 0;
  std::vector<int> core_indices;   // SwallowSystem::core_by_index slots
  std::vector<std::string> sources;
};

/// Architectural observation of one program core after a run.
struct CoreObs {
  std::array<std::uint32_t, kNumRegisters> regs{};
  std::uint64_t mem_digest = 0;
  std::uint64_t retired = 0;
  std::string console;
  TrapKind trap = TrapKind::kNone;
  std::uint32_t trap_pc = 0;
  bool finished = false;

  bool operator==(const CoreObs&) const = default;
};

/// Everything observed from one configuration's run.
struct RunObs {
  RunConfig config;
  std::vector<CoreObs> cores;
  bool completed = false;  // every program core finished or trapped in time
  std::array<double, static_cast<std::size_t>(EnergyAccount::kCount)>
      energy{};
  double energy_total = 0.0;
  std::uint64_t trace_digest = 0;  // fnv1a64(chrome_json), tracing runs only
  std::uint64_t attr_digest = 0;   // fnv1a64(attribution JSON), tracing only
  std::string attr_error;   // attribution conservation violation, "" if none
  std::int64_t conservation_slack = 0;
};

/// Outcome of one full differential: empty `divergence` means agreement.
struct DiffResult {
  std::uint64_t seed = 0;
  std::string divergence;  // human-readable description, "" if clean
  std::vector<RunObs> runs;

  bool diverged() const { return !divergence.empty(); }
};

/// The differ's standard machine: 2x2 slices (64 cores) so --jobs 4 is
/// legal and the chosen cores talk across FFC cable links.
std::vector<int> differ_core_slots(int count);

/// Node ids of the given core_by_index slots under the differ's standard
/// 2x2-slice geometry (builds a throwaway system once).
std::vector<NodeId> differ_node_ids(const std::vector<int>& slots);

/// Generate the seed's workload with the differ's conventions: the slot
/// count cycles 1/2/4 by seed, traps allowed only single-core.
GenProgram differ_generate(std::uint64_t seed);

SourceSet render_sources(const GenProgram& p);
SourceSet render_sources(const GenProgram& p, const std::vector<bool>& active);

/// Execute one configuration.  Deterministic: same sources + config in,
/// same RunObs out.
RunObs run_config(const SourceSet& s, const RunConfig& cfg,
                  const DifferOptions& opts);

/// Run the whole matrix for `s` and cross-check.  Single-core programs are
/// additionally checked against the golden interpreter (skipped if the
/// program leaves the golden subset).
DiffResult run_differential(const SourceSet& s, const DifferOptions& opts);

/// Convenience: generate + run the matrix for one seed.
DiffResult run_differential_seed(std::uint64_t seed,
                                 const DifferOptions& opts);

/// Serialize sources to the repro-file format swallow_check reads back.
std::string format_repro(const SourceSet& s, const std::string& divergence);
/// Parse a repro file; throws swallow::Error on malformed input.
SourceSet parse_repro(const std::string& text);

}  // namespace swallow
