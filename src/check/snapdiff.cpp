#include "check/snapdiff.h"

#include <memory>
#include <span>

#include "arch/assembler.h"
#include "board/system.h"
#include "check/ref_isa.h"
#include "common/error.h"
#include "common/strings.h"
#include "fault/fault.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "snap/machine.h"
#include "snap/snapfile.h"

namespace swallow {
namespace {

// Same machine and fault-schedule conventions as differ.cpp's run_config:
// the 2x2-slice 64-core board, reliable links so faults stay recoverable,
// a permanent low-rate corruption window on the first program core plus a
// bounded outage on the second.
FaultPlan snap_fault_plan(std::uint64_t seed,
                          const std::vector<NodeId>& nodes) {
  FaultPlan plan;
  plan.seed = seed ^ 0x5AFE'F00Dull;
  plan.corrupt_link(nodes.at(0), -1, 0.02);
  if (nodes.size() >= 2) {
    plan.link_outage(nodes.at(1), -1, microseconds(5.0), microseconds(20.0));
  }
  return plan;
}

// One complete machine: session first so the models' Track* stay valid
// through ~SwallowSystem.  Construction leaves it unstarted and unarmed —
// exactly what restore_machine() needs; start() is the fresh-run path.
struct Rig {
  TraceSession session;
  Simulator sim;
  SwallowSystem sys;
  std::unique_ptr<FaultInjector> injector;
  std::vector<Core*> cores;
  bool attached = false;

  Rig(const SourceSet& s, int jobs, bool tracing, bool faults)
      : session(tracing
                    ? TraceConfig{.tracing = true, .metrics = true,
                                  .profile = true}
                    : TraceConfig{}),
        sim(),
        sys(sim, [&] {
          SystemConfig scfg;
          scfg.slices_x = 2;
          scfg.slices_y = 2;
          scfg.reliable_links = true;
          scfg.jobs = jobs;
          return scfg;
        }()) {
    if (tracing) {
      sys.attach_observability(session);
      attached = true;
    }
    std::vector<NodeId> nodes;
    for (int idx : s.core_indices) {
      cores.push_back(&sys.core_by_index(idx));
      nodes.push_back(cores.back()->node_id());
    }
    if (faults) {
      injector =
          std::make_unique<FaultInjector>(sys, snap_fault_plan(s.seed, nodes));
    }
  }

  SnapTargets targets() {
    return SnapTargets{&sys, attached ? &session : nullptr, injector.get()};
  }

  void start(const SourceSet& s) {
    if (injector) injector->arm();
    for (std::size_t i = 0; i < cores.size(); ++i) {
      const Image image = assemble(s.sources[i]);
      cores[i]->load(image);
      cores[i]->start(image.entry);
    }
    sys.start_sampling();
  }

  void run_to(TimePs target, TimePs step) {
    TimePs t = sys.now();
    while (t < target) {
      t = std::min<TimePs>(t + step, target);
      sys.run_until(t);
    }
  }
};

constexpr SnapSection kAllSections[] = {
    SnapSection::kMeta, SnapSection::kSystem, SnapSection::kEvents,
    SnapSection::kObs, SnapSection::kFault};

std::string compare_snapshots(const SnapshotFile& a, const SnapshotFile& b) {
  for (SnapSection sct : kAllSections) {
    const std::vector<std::uint8_t>* pa = a.find(sct);
    const std::vector<std::uint8_t>* pb = b.find(sct);
    if ((pa == nullptr) != (pb == nullptr)) {
      return strprintf("section '%s' present in %s run only",
                       snap_section_name(sct),
                       pa != nullptr ? "the uninterrupted" : "the restored");
    }
    if (pa == nullptr || *pa == *pb) continue;
    std::size_t i = 0;
    const std::size_t n = std::min(pa->size(), pb->size());
    while (i < n && (*pa)[i] == (*pb)[i]) ++i;
    return strprintf(
        "section '%s' differs at byte %zu (sizes %zu vs %zu): state is not "
        "bit-identical after restore",
        snap_section_name(sct), i, pa->size(), pb->size());
  }
  return "";
}

std::uint64_t machine_digest(Rig& rig) {
  const std::vector<std::uint8_t> image = save_machine(rig.targets()).encode();
  return fnv1a64(image.data(), image.size());
}

void plant_divergence(Rig& rig) {
  // A single flipped data word high in the first program core's SRAM: it
  // perturbs nothing the program reads, but every snapshot taken at or
  // after the poke carries it — the monotone divergence bisection needs.
  Core& core = *rig.cores.at(0);
  const std::uint32_t addr =
      static_cast<std::uint32_t>(core.sram_bytes() - 4);
  const std::uint8_t bytes[4] = {0xEF, 0xBE, 0xAD, 0xDE};
  core.poke(addr, std::span<const std::uint8_t>(bytes, 4));
}

}  // namespace

std::string snap_roundtrip(const SourceSet& s,
                           const SnapRoundtripOptions& opts) {
  require(!s.sources.empty(), "snap_roundtrip: empty workload");
  const TimePs full = 2 * opts.half;

  // Uninterrupted reference: 0 -> 2T in one machine.
  Rig a(s, opts.jobs, opts.tracing, opts.faults);
  a.start(s);
  a.run_to(full, opts.step);
  const SnapshotFile final_a = save_machine(a.targets());

  // Interrupted run: 0 -> T, snapshot through the full file encoding...
  Rig b(s, opts.jobs, opts.tracing, opts.faults);
  b.start(s);
  b.run_to(opts.half, opts.step);
  const SnapshotFile mid = SnapshotFile::decode(save_machine(b.targets()).encode());

  // ...restored into a freshly built machine, then T -> 2T.
  Rig c(s, opts.jobs, opts.tracing, opts.faults);
  restore_machine(mid, c.targets());
  if (c.sys.now() != opts.half) {
    return strprintf("restored machine resumed at %lld ps, snapshot was at "
                     "%lld ps",
                     static_cast<long long>(c.sys.now()),
                     static_cast<long long>(opts.half));
  }
  c.run_to(full, opts.step);
  const SnapshotFile final_c = save_machine(c.targets());

  if (final_a.config_hash != final_c.config_hash) {
    return "final config hashes differ";
  }
  const std::string diff = compare_snapshots(final_a, final_c);
  if (!diff.empty()) return diff;

  // The rendered telemetry must match too, not just the internal state.
  if (opts.tracing &&
      a.session.chrome_json() != c.session.chrome_json()) {
    return "trace JSON differs between uninterrupted and restored runs";
  }
  return "";
}

TimeBisectResult time_bisect(const SourceSet& s,
                             const TimeBisectOptions& opts) {
  require(opts.interval > 0, "time_bisect: interval must be positive");
  const int n = static_cast<int>(opts.horizon / opts.interval);
  require(n >= 1, "time_bisect: horizon shorter than one interval");

  // Reference and subject runs, checkpoint digests every interval.  The
  // subject plants its divergence at the first chop point >= plant_at.
  std::vector<std::uint64_t> ref_digests, sub_digests;
  for (int pass = 0; pass < 2; ++pass) {
    const bool subject = pass == 1;
    Rig rig(s, opts.jobs, opts.tracing, opts.faults);
    rig.start(s);
    bool planted = false;
    std::vector<std::uint64_t>& out = subject ? sub_digests : ref_digests;
    for (int k = 1; k <= n; ++k) {
      rig.run_to(k * opts.interval, opts.interval);
      if (subject && !planted && opts.plant_at > 0 &&
          k * opts.interval >= opts.plant_at) {
        plant_divergence(rig);
        planted = true;
      }
      out.push_back(machine_digest(rig));
    }
  }

  TimeBisectResult result;
  result.checkpoints = n;
  if (ref_digests == sub_digests) return result;  // no divergence anywhere

  // The divergence is persistent (state snapshots carry it forward), so
  // the differ/agree boundary is monotone and binary search applies: find
  // the first index whose digests disagree.
  int lo = 0, hi = n - 1;  // invariant: first diff in [lo, hi]
  while (lo < hi) {
    const int midpoint = lo + (hi - lo) / 2;
    ++result.probes;
    if (ref_digests[static_cast<std::size_t>(midpoint)] !=
        sub_digests[static_cast<std::size_t>(midpoint)]) {
      hi = midpoint;
    } else {
      lo = midpoint + 1;
    }
  }
  result.diverged = true;
  result.lo = lo * opts.interval;          // digests still agreed here...
  result.hi = (lo + 1) * opts.interval;    // ...and differ by here
  return result;
}

}  // namespace swallow
