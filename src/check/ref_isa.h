// Golden reference interpreter (ISSUE 5 tentpole, part 1).
//
// A deliberately simple, timing-free big-switch executor of the XS1 ISA's
// single-thread compute subset, used as a *semantic oracle* for the
// differential checker: it shares no code with arch/core.cpp (no pipeline,
// no scheduler, no event queue, no energy model), so an agreement between
// the two is evidence about the ISA semantics rather than about a shared
// bug.  Graphite's reference-vs-simulated checker is the model here.
//
// Scope: everything a single hardware thread can do without touching
// resources or time — ALU, immediates, memory and stack, control flow,
// multiply/divide, console output, TEXIT.  Any communication, thread,
// timer, port or system-resource instruction stops the interpreter with
// RefStop::kUnsupported; the program generator marks programs using those
// as not golden-eligible, and the differential executor covers them by
// cross-engine comparison instead.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "arch/assembler.h"
#include "arch/isa.h"
#include "arch/trap.h"
#include "energy/params.h"

namespace swallow {

/// Why the golden interpreter stopped.
enum class RefStop {
  kFinished,     // TEXIT retired
  kTrapped,      // halted with `trap` set (the trapping instruction does
                 // not retire and pc stays on it, like the core)
  kUnsupported,  // hit an instruction outside the compute subset
  kStepLimit,    // max_steps retired without finishing (runaway loop)
};

/// Deliberate semantic-bug shims for exercising the divergence path: the
/// shrinker demo and swallow_check --inject-ref-bug use these to prove the
/// harness detects and minimises a real semantic difference.
enum : int {
  kRefBugNone = 0,
  kRefBugAddOddOperands = 1,  // ADD yields rb+rc+1 when both operands odd
};

struct RefOptions {
  std::uint64_t max_steps = 1'000'000;
  std::size_t sram_bytes = kSramBytesPerCore;
  int inject_bug = kRefBugNone;
};

struct RefResult {
  RefStop stop = RefStop::kFinished;
  std::array<std::uint32_t, kNumRegisters> regs{};
  std::uint32_t pc = 0;            // word index where execution stopped
  std::uint64_t retired = 0;       // instructions retired (traps excluded)
  std::string console;             // PRINTC/PRINTI output
  TrapKind trap = TrapKind::kNone;
  Opcode unsupported = Opcode::kNop;  // set when stop == kUnsupported
  std::vector<std::uint8_t> sram;     // final memory image
};

/// Execute `image` from its entry point to completion under the golden
/// semantics.  Timing-free: one instruction per step, no issue gaps, no
/// thread switching — architectural state is all that exists.
RefResult ref_run(const Image& image, const RefOptions& opts = {});

/// FNV-1a 64-bit digest of a byte range; the shared memory-digest function
/// of golden and simulated runs.
std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t n);

/// Digest of a string (console output, serialized registers, trace JSON).
std::uint64_t fnv1a64(const std::string& s);

}  // namespace swallow
