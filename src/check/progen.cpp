#include "check/progen.h"

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"
#include "common/strings.h"

namespace swallow {

namespace {

int reg(Rng& rng) { return static_cast<int>(rng.next_below(8)); }

// One random, always-safe ALU instruction over r0..r7 (divides prepare
// their own non-zero divisor in r9).
std::string alu_line(Rng& rng, std::vector<std::string>* out) {
  const int a = reg(rng), b = reg(rng), c = reg(rng);
  // ADD/SUB carry extra weight (cases 0-1 and 19-21): they dominate real
  // instruction mixes, and the planted-bug self-test needs ADDs to be
  // routine, not rare.  22-24 load fresh constants.
  switch (rng.next_below(25)) {
    case 0: return strprintf("add r%d, r%d, r%d", a, b, c);
    case 1: return strprintf("sub r%d, r%d, r%d", a, b, c);
    case 2: return strprintf("and r%d, r%d, r%d", a, b, c);
    case 3: return strprintf("or r%d, r%d, r%d", a, b, c);
    case 4: return strprintf("xor r%d, r%d, r%d", a, b, c);
    case 5: return strprintf("eq r%d, r%d, r%d", a, b, c);
    case 6: return strprintf("lss r%d, r%d, r%d", a, b, c);
    case 7: return strprintf("lsu r%d, r%d, r%d", a, b, c);
    case 8: return strprintf("not r%d, r%d", a, b);
    case 9: return strprintf("neg r%d, r%d", a, b);
    case 10: return strprintf("mkmsk r%d, r%d", a, b);
    case 11: return strprintf("mul r%d, r%d, r%d", a, b, c);
    case 12: return strprintf("macc r%d, r%d, r%d", a, b, c);
    case 13: return strprintf("lmulh r%d, r%d, r%d", a, b, c);
    case 14: {
      // Shift amounts deliberately span the interesting range: in-range,
      // >= 32, and negative immediates (which encode as huge unsigned).
      const long long amt = static_cast<long long>(rng.next_below(44)) - 4;
      const char* op = rng.next_bool() ? "shli" : "shri";
      return strprintf("%s r%d, r%d, %lld", op, a, b, amt);
    }
    case 15: {
      const long long amt = static_cast<long long>(rng.next_below(44)) - 4;
      return strprintf("ashri r%d, r%d, %lld", a, b, amt);
    }
    case 16: {
      const char* op = rng.next_bool() ? "shl"
                       : rng.next_bool() ? "shr"
                                         : "ashr";
      return strprintf("%s r%d, r%d, r%d", op, a, b, c);
    }
    case 17: {
      out->push_back(strprintf("ldc r9, %llu",
                               1ull + rng.next_below(999)));  // divisor != 0
      const char* op = rng.next_bool() ? "divu" : "remu";
      return strprintf("%s r%d, r%d, r9", op, a, b);
    }
    case 18: {
      const long long imm = static_cast<long long>(rng.next_below(1100)) - 100;
      const char* op = rng.next_bool() ? "addi" : "subi";
      return strprintf("%s r%d, r%d, %lld", op, a, b, imm);
    }
    case 19:
    case 20:
      return strprintf("add r%d, r%d, r%d", a, b, c);
    case 21:
      return strprintf("sub r%d, r%d, r%d", a, b, c);
    default:
      if (rng.next_bool()) {
        return strprintf("ldc r%d, %llu", a, rng.next_below(65536));
      }
      return strprintf("ldch r%d, %llu", a, rng.next_below(65536));
  }
}

void emit_alu_block(Rng& rng, int count, std::vector<std::string>* out) {
  for (int i = 0; i < count; ++i) {
    std::string line = alu_line(rng, out);
    out->push_back(std::move(line));
  }
}

}  // namespace

GenProgram generate_program(std::uint64_t seed, const ProgenOptions& opts) {
  require(!opts.core_indices.empty(), "progen: need at least one core");
  require(opts.min_units >= 1 && opts.max_units >= opts.min_units,
          "progen: bad unit count range");
  const int slots = static_cast<int>(opts.core_indices.size());
  const bool comm = opts.enable_comm && slots >= 2;
  if (comm) {
    require(opts.node_ids.size() == opts.core_indices.size(),
            "progen: node_ids must parallel core_indices when comm is on");
  }

  Rng rng(seed);
  GenProgram p;
  p.seed = seed;
  p.core_indices = opts.core_indices;
  p.node_ids = opts.node_ids;

  const int span = opts.max_units - opts.min_units + 1;
  std::vector<int> budget(static_cast<std::size_t>(slots));
  for (int& b : budget) {
    b = opts.min_units +
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(span)));
  }

  // Per-slot bookkeeping for scratch offsets (receivers store into scratch)
  // and whether the slot already emitted its trapping unit (which makes
  // everything after it dead code on that core).
  std::vector<int> scratch_next(static_cast<std::size_t>(slots), 0);
  std::vector<bool> slot_trapped(static_cast<std::size_t>(slots), false);
  int ordinal = 0;
  int next_pair = 0;

  // Seed every data register with a random 32-bit value first: the reset
  // state is all-zero, and ALU sequences over mostly-zero registers barely
  // exercise the interesting operand space (carries, sign bits, odd
  // values).  One tiny unit per register, so the shrinker keeps only the
  // initialisations a failure actually needs.
  for (int slot = 0; slot < slots; ++slot) {
    for (int r = 0; r < 8; ++r) {
      ProgenUnit init;
      init.slot = slot;
      const std::uint32_t v = static_cast<std::uint32_t>(rng.next_u64());
      init.lines.push_back(strprintf("ldc r%d, %u", r, v >> 16));
      init.lines.push_back(strprintf("ldch r%d, %u", r, v & 0xFFFF));
      ++ordinal;
      p.units.push_back(std::move(init));
    }
  }

  // Round-robin over slots so comm pairs land at consistent global
  // positions in every core's sequential order (deadlock freedom).
  bool work_left = true;
  while (work_left) {
    work_left = false;
    for (int slot = 0; slot < slots; ++slot) {
      if (budget[static_cast<std::size_t>(slot)] <= 0) continue;
      work_left = true;
      --budget[static_cast<std::size_t>(slot)];
      if (slot_trapped[static_cast<std::size_t>(slot)]) continue;

      const int id = ordinal++;
      ProgenUnit u;
      u.slot = slot;

      // Pick a unit kind.  Comm and timers are gated; traps only appear in
      // single-core programs and at most once per core.
      enum Kind { kAlu, kLoop, kMem, kStack, kCall, kJump, kTimer, kComm,
                  kTrap };
      Kind kind = kAlu;
      const std::uint64_t roll = rng.next_below(100);
      if (roll < 30) kind = kAlu;
      else if (roll < 45) kind = kLoop;
      else if (roll < 60) kind = kMem;
      else if (roll < 68) kind = kStack;
      else if (roll < 76) kind = kCall;
      else if (roll < 82) kind = kJump;
      else if (roll < 90) kind = comm ? kComm : kLoop;
      else if (roll < 96) kind = opts.enable_timers ? kTimer : kMem;
      else kind = (opts.allow_traps && slots == 1) ? kTrap : kAlu;

      switch (kind) {
        case kAlu:
          emit_alu_block(rng, 2 + static_cast<int>(rng.next_below(4)),
                         &u.lines);
          break;

        case kLoop: {
          const std::uint64_t iters = 1 + rng.next_below(opts.max_loop_iters);
          u.lines.push_back(strprintf("ldc r10, %llu", iters));
          u.lines.push_back(strprintf("u%dl:", id));
          emit_alu_block(rng, 1 + static_cast<int>(rng.next_below(3)),
                         &u.lines);
          u.lines.push_back("subi r10, r10, 1");
          u.lines.push_back(strprintf("bt r10, u%dl", id));
          break;
        }

        case kMem: {
          u.lines.push_back("ldc r8, scratch");
          const int ops = 2 + static_cast<int>(rng.next_below(4));
          for (int i = 0; i < ops; ++i) {
            const int r = reg(rng);
            switch (rng.next_below(4)) {
              case 0:
                u.lines.push_back(
                    strprintf("stw r%d, r8, %llu", r, rng.next_below(16)));
                break;
              case 1:
                u.lines.push_back(
                    strprintf("ldw r%d, r8, %llu", r, rng.next_below(16)));
                break;
              case 2:
                u.lines.push_back(
                    strprintf("stb r%d, r8, %llu", r, rng.next_below(64)));
                break;
              default:
                u.lines.push_back(
                    strprintf("ldb r%d, r8, %llu", r, rng.next_below(64)));
                break;
            }
          }
          break;
        }

        case kStack: {
          const std::uint64_t words = 1 + rng.next_below(4);
          u.lines.push_back(strprintf("extsp %llu", words));
          for (std::uint64_t i = 0; i < words; ++i) {
            u.lines.push_back(strprintf("stwsp r%d, %llu", reg(rng), i));
          }
          u.lines.push_back(strprintf("ldwsp r%d, %llu", reg(rng),
                                      rng.next_below(words)));
          // Balanced restore: sp += words * 4.
          u.lines.push_back(strprintf("ldawsp sp, %llu", words));
          break;
        }

        case kCall: {
          u.lines.push_back(strprintf("bl u%df", id));
          u.footer.push_back(strprintf("u%df:", id));
          emit_alu_block(rng, 1 + static_cast<int>(rng.next_below(3)),
                         &u.footer);
          u.footer.push_back("ret");
          break;
        }

        case kJump: {
          // Computed jump: LDC yields the label's *byte* address, BAU takes
          // a word index.
          u.lines.push_back(strprintf("ldc r9, u%dt", id));
          u.lines.push_back("shri r9, r9, 2");
          u.lines.push_back("bau r9");
          u.lines.push_back(strprintf("u%dt:", id));
          u.lines.push_back("ldc r9, 0");
          break;
        }

        case kTimer: {
          // Short reference-clock wait.  r9 is timing-dependent afterwards,
          // so clear it: architectural state must stay comparable between
          // runs whose timing differs (fault retries).
          u.lines.push_back("gettime r9");
          u.lines.push_back(strprintf("addi r9, r9, %llu",
                                      1 + rng.next_below(40)));
          u.lines.push_back("timewait r9");
          u.lines.push_back("ldc r9, 0");
          break;
        }

        case kComm: {
          // Matched pair: this slot sends one word to its fixed ring
          // neighbour, which receives it into scratch.  Both halves enter
          // the global unit order here, so both cores sequence the
          // conversation alike.  The ring topology is load-bearing: each
          // core receives from exactly ONE upstream sender, so the arrival
          // order at its chanend is the sender's program order — never a
          // timing-dependent merge of two senders (which would make the
          // memory digest diverge across fault/no-fault runs).
          const int peer = (slot + 1) % slots;
          if (slot_trapped[static_cast<std::size_t>(peer)]) {
            emit_alu_block(rng, 2, &u.lines);
            break;
          }
          const std::uint32_t value =
              static_cast<std::uint32_t>(rng.next_u64());
          const NodeId dest = p.node_ids[static_cast<std::size_t>(peer)];
          u.pair_id = next_pair++;
          p.uses_comm = true;
          u.lines.push_back(strprintf("ldc r8, %u",
                                      static_cast<unsigned>(dest)));
          u.lines.push_back("ldch r8, 2");  // peer chanend 0, type chanend
          u.lines.push_back("setd r11, r8");
          u.lines.push_back(strprintf("ldc r9, %u", value >> 16));
          u.lines.push_back(strprintf("ldch r9, %u", value & 0xFFFF));
          u.lines.push_back("out r11, r9");
          u.lines.push_back("outct r11, 1");
          p.units.push_back(std::move(u));

          ProgenUnit rxu;
          rxu.slot = peer;
          rxu.pair_id = u.pair_id;
          rxu.lines.push_back("in r9, r11");
          rxu.lines.push_back("chkct r11, 1");
          rxu.lines.push_back("ldc r8, scratch");
          int& off = scratch_next[static_cast<std::size_t>(peer)];
          rxu.lines.push_back(strprintf("stw r9, r8, %d", off));
          off = (off + 1) % 16;
          p.units.push_back(std::move(rxu));
          continue;  // both halves already pushed
        }

        case kTrap: {
          u.traps = true;
          slot_trapped[static_cast<std::size_t>(slot)] = true;
          switch (rng.next_below(3)) {
            case 0:  // divide by zero
              u.lines.push_back("ldc r9, 0");
              u.lines.push_back(strprintf("divu r%d, r%d, r9", reg(rng),
                                          reg(rng)));
              break;
            case 1:  // unaligned word access
              u.lines.push_back("ldc r8, scratch");
              u.lines.push_back(strprintf("addi r8, r8, %llu",
                                          1 + rng.next_below(3)));
              u.lines.push_back(strprintf("ldw r%d, r8, 0", reg(rng)));
              break;
            default:  // wild jump: fetch beyond SRAM
              u.lines.push_back("ldc r9, 0x7FFF");
              u.lines.push_back("bau r9");
              break;
          }
          break;
        }
      }
      p.units.push_back(std::move(u));
    }
  }

  p.golden_eligible = slots == 1 && !p.uses_comm;
  if (p.golden_eligible && opts.enable_timers) {
    for (const ProgenUnit& u : p.units) {
      for (const std::string& line : u.lines) {
        if (line.find("gettime") != std::string::npos) {
          // Timer units read the wall clock; the golden model has none.
          p.golden_eligible = false;
          break;
        }
      }
      if (!p.golden_eligible) break;
    }
  }
  return p;
}

std::string render_core_source(const GenProgram& p, int slot,
                               const std::vector<bool>& active) {
  require(active.size() == p.units.size(),
          "render_core_source: active mask size mismatch");
  std::string body, footer;
  for (std::size_t i = 0; i < p.units.size(); ++i) {
    if (!active[i]) continue;
    const ProgenUnit& u = p.units[i];
    if (u.slot != slot) continue;
    for (const std::string& line : u.lines) {
      body += "    ";
      body += line;
      body += '\n';
    }
    for (const std::string& line : u.footer) {
      footer += "    ";
      footer += line;
      footer += '\n';
    }
  }

  std::string src;
  if (p.uses_comm) src += "    getr r11, 2\n";
  src += body;
  src += "    texit\n";
  src += footer;
  src += "scratch:\n    .space 16\n";
  return src;
}

std::string render_core_source(const GenProgram& p, int slot) {
  return render_core_source(p, slot, std::vector<bool>(p.units.size(), true));
}

}  // namespace swallow
