#include "check/shrink.h"

#include <map>

namespace swallow {

int count_instruction_lines(const SourceSet& s) {
  int n = 0;
  for (const std::string& src : s.sources) {
    std::size_t pos = 0;
    while (pos < src.size()) {
      std::size_t eol = src.find('\n', pos);
      if (eol == std::string::npos) eol = src.size();
      std::string_view line(src.data() + pos, eol - pos);
      pos = eol + 1;
      while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
        line.remove_prefix(1);
      }
      while (!line.empty() && (line.back() == ' ' || line.back() == '\t' ||
                               line.back() == '\r')) {
        line.remove_suffix(1);
      }
      if (line.empty()) continue;
      if (line.front() == '#' || line.front() == ';') continue;
      if (line.size() >= 2 && line[0] == '/' && line[1] == '/') continue;
      // Strip an inline "label:" prefix ("done: .word 0") before judging
      // the rest of the line.
      if (const std::size_t colon = line.find(':');
          colon != std::string_view::npos &&
          line.find_first_of(" \t,") > colon) {
        line.remove_prefix(colon + 1);
        while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
          line.remove_prefix(1);
        }
      }
      if (line.empty()) continue;      // bare label
      if (line.front() == '.') continue;  // directive
      ++n;
    }
  }
  return n;
}

ShrinkResult shrink_program(const GenProgram& p, const ShrinkOptions& opts) {
  ShrinkResult res;
  res.active.assign(p.units.size(), true);

  auto diverges = [&](const std::vector<bool>& active,
                      std::string* what) -> bool {
    ++res.attempts;
    DiffResult d = run_differential(render_sources(p, active), opts.differ);
    if (d.diverged() && what != nullptr) *what = d.divergence;
    return d.diverged();
  };

  std::string what;
  if (!diverges(res.active, &what)) {
    res.sources = render_sources(p, res.active);
    res.instruction_count = count_instruction_lines(res.sources);
    return res;  // reproduced stays false: nothing to shrink
  }
  res.reproduced = true;
  res.divergence = what;

  // Removal atoms: each comm pair is one atom (both halves or neither —
  // a dangling receiver would block its core forever); every other unit
  // stands alone.
  std::map<int, std::vector<std::size_t>> pair_members;
  std::vector<std::vector<std::size_t>> atoms;
  for (std::size_t i = 0; i < p.units.size(); ++i) {
    if (p.units[i].pair_id >= 0) {
      pair_members[p.units[i].pair_id].push_back(i);
    } else {
      atoms.push_back({i});
    }
  }
  for (auto& [id, members] : pair_members) atoms.push_back(members);

  // Greedy fixed-point ddmin: keep sweeping while any single atom can go.
  bool changed = true;
  while (changed && res.attempts < opts.max_attempts) {
    changed = false;
    for (const std::vector<std::size_t>& atom : atoms) {
      if (res.attempts >= opts.max_attempts) break;
      if (!res.active[atom.front()]) continue;
      std::vector<bool> candidate = res.active;
      for (std::size_t i : atom) candidate[i] = false;
      std::string cand_what;
      if (diverges(candidate, &cand_what)) {
        res.active = std::move(candidate);
        res.divergence = std::move(cand_what);
        changed = true;
      }
    }
  }

  res.sources = render_sources(p, res.active);
  res.instruction_count = count_instruction_lines(res.sources);
  return res;
}

}  // namespace swallow
