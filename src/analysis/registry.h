// Related-work registries backing Table II (candidate processor
// comparison) and Table III (many-core system comparison) of the paper.
//
// Table II is a requirements evaluation: the rows are candidate processors
// with qualitative features, and the claim "only the XS1-L meets all
// requirements" is *computed* from the feature predicates rather than
// hard-coded.  Table III carries the published scale/technology/power
// figures with µW/MHz derived from power and frequency.
#pragma once

#include <string>
#include <vector>

namespace swallow {

// ----------------------------------------------------------- Table II

struct CandidateProcessor {
  std::string name;
  int cores;
  int data_width_bits;
  bool superscalar;
  enum class Cache { kNone, kOptional, kYes } cache;
  std::string memory_config;
  enum class Interconnect { kNone, kCoherentMem, kNocPlusExternal, kEthernet }
      interconnect;
  bool time_deterministic_base;   // deterministic in its base configuration
  bool time_deterministic_always; // deterministic in every configuration
};

/// The eight candidates of Table II, with the paper's entries.
std::vector<CandidateProcessor> table2_candidates();

/// The paper's platform requirements (§IV.A): time-deterministic execution
/// (scheduling + memory, so no cache) and a scalable multi-core
/// interconnect.
bool meets_requirements(const CandidateProcessor& p);

/// Human-readable cell values matching the paper's table.
std::string cache_cell(const CandidateProcessor& p);
std::string interconnect_cell(const CandidateProcessor& p);
std::string deterministic_cell(const CandidateProcessor& p);

// ----------------------------------------------------------- Table III

struct ManyCoreSystem {
  std::string name;
  std::string isa;
  int cores_per_chip;
  std::string total_cores;  // ranges in the paper ("16-480")
  int tech_node_nm;
  double power_per_core_mw;       // representative (max of a range)
  std::string power_per_core_txt; // as printed ("203-1851")
  double frequency_mhz;
  std::string uw_per_mhz_txt;     // as printed (ranges for Centip3De)
};

/// The five systems of Table III.
std::vector<ManyCoreSystem> table3_systems();

/// µW/MHz = power per core / frequency — the figure of merit the paper
/// uses to place Swallow among its peers.
double uw_per_mhz(const ManyCoreSystem& s);

}  // namespace swallow
