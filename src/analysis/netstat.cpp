#include "analysis/netstat.h"

#include <algorithm>

#include "board/system.h"
#include "common/strings.h"
#include "common/table.h"

namespace swallow {

NetworkStats collect_network_stats(Network& net, const EnergyLedger& ledger) {
  NetworkStats stats;
  for (std::size_t c = 0; c < 4; ++c) {
    const auto cls = static_cast<LinkClass>(c);
    LinkClassStats& s = stats.per_class[c];
    s.cls = cls;
    s.energy = ledger.total(link_account(cls));
  }
  for (std::size_t i = 0; i < net.switch_count(); ++i) {
    Switch& sw = net.switch_at(i);
    stats.tokens_forwarded += sw.tokens_forwarded();
    stats.packets_routed += sw.packets_routed();
    stats.packets_sunk += sw.packets_sunk();
    stats.faults += sw.fault_counters();
    for (std::size_t c = 0; c < 4; ++c) {
      const auto cls = static_cast<LinkClass>(c);
      LinkClassStats& s = stats.per_class[c];
      s.links += sw.link_count(cls);
      s.tokens += sw.link_tokens_sent(cls);
      s.busy_time += sw.link_busy_time(cls);
    }
  }
  return stats;
}

NetworkStats collect_network_stats(SwallowSystem& sys) {
  NetworkStats stats = collect_network_stats(sys.network(), sys.ledger());
  stats.bridge.bridges = sys.bridge_count();
  for (int i = 0; i < sys.bridge_count(); ++i) {
    EthernetBridge& br = sys.bridge(i);
    stats.bridge.bytes_from_host += br.bytes_from_host();
    stats.bridge.bytes_to_host += br.bytes_to_host();
    stats.bridge.ingress_rejects += br.ingress_rejects();
    stats.bridge.ingress_peak_tokens =
        std::max(stats.bridge.ingress_peak_tokens, br.ingress_peak_tokens());
  }
  return stats;
}

NetworkStats stats_delta(const NetworkStats& later,
                         const NetworkStats& earlier) {
  NetworkStats d = later;
  d.tokens_forwarded -= earlier.tokens_forwarded;
  d.packets_routed -= earlier.packets_routed;
  d.packets_sunk -= earlier.packets_sunk;
  for (std::size_t c = 0; c < 4; ++c) {
    d.per_class[c].tokens -= earlier.per_class[c].tokens;
    d.per_class[c].busy_time -= earlier.per_class[c].busy_time;
    d.per_class[c].energy -= earlier.per_class[c].energy;
    // Link counts are structural; keep the later value.
  }
  d.faults = later.faults;
  d.faults -= earlier.faults;
  return d;
}

std::string render_fault_summary(const FaultCounters& faults) {
  if (faults.total() == 0) return "";
  TextTable t("Fault / resilience summary");
  t.header({"counter", "count"});
  const auto values = faults.as_array();
  for (int i = 0; i < FaultCounters::kFieldCount; ++i) {
    if (values[static_cast<std::size_t>(i)] == 0) continue;
    t.row({FaultCounters::field_name(i),
           strprintf("%llu", static_cast<unsigned long long>(
                                 values[static_cast<std::size_t>(i)]))});
  }
  return t.render();
}

std::string render_network_stats(const NetworkStats& stats, TimePs window) {
  TextTable t("Network statistics");
  t.header({"link class", "links", "tokens", "Mbit", "utilisation",
            "energy (uJ)"});
  for (const LinkClassStats& s : stats.per_class) {
    t.row({std::string(to_string(s.cls)), strprintf("%d", s.links),
           strprintf("%llu", static_cast<unsigned long long>(s.tokens)),
           strprintf("%.2f", s.payload_mbit()),
           strprintf("%.1f %%", s.utilisation(window) * 100.0),
           strprintf("%.2f", s.energy * 1e6)});
  }
  t.rule();
  t.row({"forwarded tokens", strprintf("%llu", static_cast<unsigned long long>(
                                                   stats.tokens_forwarded))});
  t.row({"packets routed", strprintf("%llu", static_cast<unsigned long long>(
                                                 stats.packets_routed))});
  t.row({"packets sunk", strprintf("%llu", static_cast<unsigned long long>(
                                               stats.packets_sunk))});
  if (stats.bridge.bridges > 0) {
    t.rule();
    t.row({"bridge bytes host->grid",
           strprintf("%llu", static_cast<unsigned long long>(
                                 stats.bridge.bytes_from_host))});
    t.row({"bridge bytes grid->host",
           strprintf("%llu", static_cast<unsigned long long>(
                                 stats.bridge.bytes_to_host))});
    t.row({"bridge ingress rejects",
           strprintf("%llu", static_cast<unsigned long long>(
                                 stats.bridge.ingress_rejects))});
    t.row({"bridge ingress peak tokens",
           strprintf("%llu", static_cast<unsigned long long>(
                                 stats.bridge.ingress_peak_tokens))});
  }
  std::string out = t.render();
  const std::string faults = render_fault_summary(stats.faults);
  if (!faults.empty()) out += "\n" + faults;
  return out;
}

}  // namespace swallow
