// Reporting helpers shared by the benchmark harnesses: consistent series
// printing, paper-vs-measured comparison rows, and number formatting.
#pragma once

#include <string>
#include <vector>

#include "common/table.h"

namespace swallow {

struct StallReport;  // fault/watchdog.h

/// Format helpers used by the bench tables.
std::string fmt_double(double v, int decimals = 1);
std::string fmt_mw(double watts);
std::string fmt_percent(double fraction);

/// Print an x/y series as a two-column table (figure reproduction output).
std::string render_series(const std::string& title, const std::string& x_name,
                          const std::string& y_name,
                          const std::vector<double>& xs,
                          const std::vector<double>& ys);

/// Render a watchdog StallReport (fault/watchdog.h): when it was detected,
/// every blocked thread with what it waits on, trapped cores, and held or
/// parked wormhole routes.
std::string render_stall_report(const StallReport& report);

/// A paper-vs-measured comparison row collector, rendered at the end of
/// each bench and mirrored in EXPERIMENTS.md.
class Comparison {
 public:
  explicit Comparison(std::string title) : table_(std::move(title)) {
    table_.header({"quantity", "paper", "measured", "deviation"});
  }

  void add(const std::string& quantity, double paper, double measured,
           const std::string& unit = "");

  void add_text(const std::string& quantity, const std::string& paper,
                const std::string& measured);

  std::string render() const { return table_.render(); }

  /// Largest relative deviation over all numeric rows.
  double worst_deviation() const { return worst_; }

 private:
  TextTable table_;
  double worst_ = 0.0;
};

}  // namespace swallow
