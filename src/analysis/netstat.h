// Network statistics: per-link-class traffic, utilisation and energy over
// a measurement window, aggregated across a whole Network.  Used by the
// E/C benches and available to applications for §V.D-style analysis.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "energy/ledger.h"
#include "energy/link_energy.h"
#include "noc/network.h"

namespace swallow {

struct LinkClassStats {
  LinkClass cls = LinkClass::kOnChip;
  int links = 0;                   // connected transmitters of this class
  std::uint64_t tokens = 0;        // tokens sent
  TimePs busy_time = 0;            // cumulative wire-busy time
  Joules energy = 0;               // from the ledger account

  double payload_mbit() const {
    return static_cast<double>(tokens) * kBitsPerToken / 1e6;
  }
  /// Mean utilisation of this class's links over `window`.
  double utilisation(TimePs window) const {
    if (links == 0 || window == 0) return 0.0;
    return static_cast<double>(busy_time) /
           (static_cast<double>(window) * links);
  }
};

/// Host-side Ethernet bridge counters, aggregated over all bridges.  The
/// ingress FIFO never drops silently: packets that don't fit a bounded
/// FIFO are *rejected* back to the sender (host_try_send returns false)
/// and counted here.
struct BridgeIngressStats {
  int bridges = 0;
  std::uint64_t bytes_from_host = 0;
  std::uint64_t bytes_to_host = 0;
  std::uint64_t ingress_rejects = 0;      // backpressured host_try_send calls
  std::uint64_t ingress_peak_tokens = 0;  // max over bridges
};

struct NetworkStats {
  std::array<LinkClassStats, 4> per_class{};
  std::uint64_t tokens_forwarded = 0;
  std::uint64_t packets_routed = 0;
  std::uint64_t packets_sunk = 0;
  FaultCounters faults;    // network-wide fault/resilience totals
  BridgeIngressStats bridge;  // zero when collected from a bare Network

  const LinkClassStats& of(LinkClass cls) const {
    return per_class[static_cast<std::size_t>(cls)];
  }
};

class SwallowSystem;

/// Snapshot the network's counters (cumulative since construction).
NetworkStats collect_network_stats(Network& net, const EnergyLedger& ledger);

/// As above, but also folds in the system's Ethernet-bridge host-side
/// counters (ingress rejects, peak FIFO depth, host byte totals).
NetworkStats collect_network_stats(SwallowSystem& sys);

/// Difference of two snapshots (for windowed measurements).
NetworkStats stats_delta(const NetworkStats& later, const NetworkStats& earlier);

/// Render a utilisation/traffic table for a window of `window` picoseconds.
/// Appends the fault summary when any fault activity was recorded.
std::string render_network_stats(const NetworkStats& stats, TimePs window);

/// Render the fault/resilience counter table (corruptions, NAKs,
/// retransmissions, dead links) — empty string when all counters are zero.
std::string render_fault_summary(const FaultCounters& faults);

}  // namespace swallow
