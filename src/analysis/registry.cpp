#include "analysis/registry.h"

namespace swallow {

std::vector<CandidateProcessor> table2_candidates() {
  using C = CandidateProcessor::Cache;
  using I = CandidateProcessor::Interconnect;
  return {
      {"ARM Cortex M", 1, 32, false, C::kOptional, "<varies>", I::kNone, true,
       false},  // deterministic only without the optional cache
      {"ARM Cortex A, single core", 1, 32, true, C::kYes, "<varies>", I::kNone,
       false, false},
      {"ARM Cortex A, multi-core", 4, 32, true, C::kYes, "<varies>",
       I::kCoherentMem, false, false},
      {"Adapteva Epiphany", 64, 32, true, C::kNone, "Local + global SRAM",
       I::kNocPlusExternal, false, false},
      {"XMOS XS1-L", 1, 32, false, C::kNone, "Unified, single cycle SRAM",
       I::kNocPlusExternal, true, true},
      {"MSP430", 1, 16, false, C::kNone, "I-Flash + D-SRAM", I::kNone, true,
       true},
      {"AVR", 1, 8, false, C::kNone, "I-Flash + D-SRAM", I::kNone, false,
       false},
      {"Quark", 1, 32, false, C::kYes, "Unified DRAM", I::kEthernet, false,
       false},
  };
}

bool meets_requirements(const CandidateProcessor& p) {
  // §IV.A: time-deterministic instruction execution including the memory
  // hierarchy (rules out caches), plus an interconnect that scales into
  // the hundreds of cores (a NoC with external expansion).
  const bool deterministic = p.time_deterministic_always;
  const bool no_cache = p.cache == CandidateProcessor::Cache::kNone;
  const bool scalable =
      p.interconnect == CandidateProcessor::Interconnect::kNocPlusExternal;
  return deterministic && no_cache && scalable;
}

std::string cache_cell(const CandidateProcessor& p) {
  switch (p.cache) {
    case CandidateProcessor::Cache::kNone: return "No";
    case CandidateProcessor::Cache::kOptional: return "Optional";
    case CandidateProcessor::Cache::kYes: return "Yes";
  }
  return "?";
}

std::string interconnect_cell(const CandidateProcessor& p) {
  switch (p.interconnect) {
    case CandidateProcessor::Interconnect::kNone: return "No";
    case CandidateProcessor::Interconnect::kCoherentMem: return "Coherent mem.";
    case CandidateProcessor::Interconnect::kNocPlusExternal:
      return "NoC + external";
    case CandidateProcessor::Interconnect::kEthernet: return "Ethernet";
  }
  return "?";
}

std::string deterministic_cell(const CandidateProcessor& p) {
  if (p.time_deterministic_always) return "Yes";
  if (p.time_deterministic_base) return "W/o cache";
  return "No";
}

std::vector<ManyCoreSystem> table3_systems() {
  return {
      {"Swallow", "XS1", 2, "16-480", 65, 193.0, "193", 500.0, "300"},
      {"SpiNNaker", "ARM9", 17, "1,036,800", 130, 87.0, "87", 200.0, "435"},
      {"Centip3De", "Cortex-M3", 64, "64", 130, 1851.0, "203-1851", 80.0,
       "2540-2300"},
      {"Tile64", "Tile", 64, "64-480", 130, 300.0, "300", 1000.0, "300"},
      {"Epiphany-IV", "Epiphany", 64, "64", 28, 31.0, "31", 800.0, "38.8"},
  };
}

double uw_per_mhz(const ManyCoreSystem& s) {
  return s.power_per_core_mw * 1000.0 / s.frequency_mhz;
}

}  // namespace swallow
