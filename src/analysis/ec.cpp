#include "analysis/ec.h"

#include <algorithm>

#include "common/error.h"

namespace swallow {

std::vector<EcEntry> ec_ladder(const EcParams& p) {
  std::vector<EcEntry> out;
  // A thread issues f/max(4,Nt) MIPS; each 32-bit instruction can move 32
  // bits.  With >= 4 threads, E saturates at f Minstr/s x 32 bit.
  const double threads = static_cast<double>(std::max(p.active_threads, 1));
  const double ips_core =
      p.core_freq * 1e6 * std::min(threads, 4.0) / 4.0;
  const double e_core_gbps = ips_core * 32.0 / 1e9;

  // Core-local: the switch sustains the full rate (E = C).
  out.push_back({"core-local", e_core_gbps, e_core_gbps});

  // Chip-local: four internal links.
  const double c_chip =
      static_cast<double>(p.internal_links) * p.internal_link_mbps / 1e3;
  out.push_back({"chip-local (4 links)", e_core_gbps, c_chip});

  // External, uncontended: the package's four external links together are
  // a quarter of the chip-local bandwidth (§V.D), giving E/C = 64.
  const double c_ext_package =
      static_cast<double>(p.external_links_per_package) *
      p.external_link_mbps / 1e3;
  out.push_back({"external (package, 4 links)", e_core_gbps, c_ext_package});

  // External, contended: four threads' full demand over one 62.5 Mbit/s
  // link -> 256.
  const double c_one_link = p.external_link_mbps / 1e3;
  out.push_back({"external contended (4 threads, 1 link)", e_core_gbps,
                 c_one_link});

  // Slice bisection: the eight cores of one half streaming across the four
  // vertical links of the bisection -> 512.
  const double e_half_slice =
      e_core_gbps * static_cast<double>(p.cores_per_slice) / 2.0;
  const double c_bisect =
      static_cast<double>(p.bisection_links) * p.external_link_mbps / 1e3;
  out.push_back({"slice bisection (8 senders)", e_half_slice, c_bisect});
  return out;
}

double measured_ec(std::uint64_t instructions, std::uint64_t payload_bytes) {
  require(payload_bytes > 0, "measured_ec: no communication");
  const double e_bits = static_cast<double>(instructions) * 32.0;
  const double c_bits = static_cast<double>(payload_bytes) * 8.0;
  return e_bits / c_bits;
}

}  // namespace swallow
