// Computation-to-communication (E/C) ratio analysis, §V.D.
//
// E is the rate at which compute resources can produce/consume data
// (instructions/s x 32-bit operands), C the communication bandwidth
// actually available.  The paper derives the ladder
//   core-local 1, chip-local 16, external 64, contended external 256,
//   slice bisection 512
// from the architectural rates; ec_ladder() reproduces it analytically and
// MeasuredEc recovers E/C from live simulation counters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "energy/params.h"

namespace swallow {

struct EcEntry {
  std::string scope;
  double e_gbps;  // compute data rate
  double c_gbps;  // communication bandwidth
  double ratio() const { return e_gbps / c_gbps; }
};

struct EcParams {
  MegaHertz core_freq = kMaxCoreFrequencyMhz;   // 500 MHz
  int active_threads = 4;
  MegabitsPerSecond internal_link_mbps = 250.0;  // per on-chip link (§V.D)
  MegabitsPerSecond external_link_mbps = 62.5;   // worst case per §V.D
  int internal_links = 4;
  int external_links_per_package = 4;
  int cores_per_slice = kCoresPerSlice;
  int bisection_links = 4;  // vertical links crossing a slice's bisection
};

/// The paper's E/C ladder for the given parameters (defaults reproduce
/// §V.D exactly: 1, 16, 64, 256, 512).
std::vector<EcEntry> ec_ladder(const EcParams& p = {});

/// E/C from measured quantities: instructions executed (x 32 bits of data
/// operated upon) versus payload bits moved, over the same wall-clock span.
double measured_ec(std::uint64_t instructions, std::uint64_t payload_bytes);

}  // namespace swallow
