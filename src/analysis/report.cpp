#include "analysis/report.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace swallow {

std::string fmt_double(double v, int decimals) {
  return strprintf("%.*f", decimals, v);
}

std::string fmt_mw(double watts) {
  return strprintf("%.1f mW", watts * 1e3);
}

std::string fmt_percent(double fraction) {
  return strprintf("%.1f %%", fraction * 100.0);
}

std::string render_series(const std::string& title, const std::string& x_name,
                          const std::string& y_name,
                          const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  TextTable t(title);
  t.header({x_name, y_name});
  for (std::size_t i = 0; i < xs.size() && i < ys.size(); ++i) {
    t.row({fmt_double(xs[i]), fmt_double(ys[i], 2)});
  }
  return t.render();
}

void Comparison::add(const std::string& quantity, double paper,
                     double measured, const std::string& unit) {
  const double dev = paper != 0.0 ? std::abs(measured - paper) / std::abs(paper)
                                  : std::abs(measured);
  worst_ = std::max(worst_, dev);
  auto with_unit = [&](double v) {
    std::string s = fmt_double(v, 2);
    if (!unit.empty()) s += " " + unit;
    return s;
  };
  table_.row({quantity, with_unit(paper), with_unit(measured),
              fmt_percent(dev)});
}

void Comparison::add_text(const std::string& quantity, const std::string& paper,
                          const std::string& measured) {
  table_.row({quantity, paper, measured, "-"});
}

}  // namespace swallow
