#include "analysis/report.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "fault/watchdog.h"

namespace swallow {

std::string fmt_double(double v, int decimals) {
  return strprintf("%.*f", decimals, v);
}

std::string fmt_mw(double watts) {
  return strprintf("%.1f mW", watts * 1e3);
}

std::string fmt_percent(double fraction) {
  return strprintf("%.1f %%", fraction * 100.0);
}

std::string render_series(const std::string& title, const std::string& x_name,
                          const std::string& y_name,
                          const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  TextTable t(title);
  t.header({x_name, y_name});
  for (std::size_t i = 0; i < xs.size() && i < ys.size(); ++i) {
    t.row({fmt_double(xs[i]), fmt_double(ys[i], 2)});
  }
  return t.render();
}

void Comparison::add(const std::string& quantity, double paper,
                     double measured, const std::string& unit) {
  const double dev = paper != 0.0 ? std::abs(measured - paper) / std::abs(paper)
                                  : std::abs(measured);
  worst_ = std::max(worst_, dev);
  auto with_unit = [&](double v) {
    std::string s = fmt_double(v, 2);
    if (!unit.empty()) s += " " + unit;
    return s;
  };
  table_.row({quantity, with_unit(paper), with_unit(measured),
              fmt_percent(dev)});
}

void Comparison::add_text(const std::string& quantity, const std::string& paper,
                          const std::string& measured) {
  table_.row({quantity, paper, measured, "-"});
}

std::string render_stall_report(const StallReport& report) {
  TextTable t(strprintf("Stall detected at %.1f us (no progress for %.1f us, "
                        "metric frozen at %llu)",
                        to_microseconds(report.detected_at),
                        to_microseconds(report.window),
                        static_cast<unsigned long long>(report.progress)));
  t.header({"where", "what", "detail"});
  const SystemDiagnosis& d = report.diagnosis;
  for (const SystemDiagnosis::TrapInfo& tr : d.traps) {
    t.row({strprintf("core %04x t%d", tr.core, tr.thread),
           strprintf("TRAP %s", std::string(to_string(tr.kind)).c_str()),
           strprintf("pc %u: %s", tr.pc, tr.message.c_str())});
  }
  for (const SystemDiagnosis::StallInfo& s : d.blocked) {
    t.row({strprintf("core %04x t%d", s.core, s.thread),
           strprintf("blocked on %s%s", to_string(s.waiting_on),
                     s.self_waking ? " (self-waking)" : ""),
           strprintf("pc %u res 0x%08x", s.pc, s.resource)});
  }
  for (const Switch::OpenRoute& r : d.routes) {
    if (r.parked) {
      t.row({strprintf("node %04x in%d", r.node, r.input), "parked",
             strprintf("%zu tokens queued", r.queued_tokens)});
    } else {
      t.row({strprintf("node %04x in%d", r.node, r.input),
             strprintf("route -> out%d (%s)", r.output,
                       r.to_link ? "link" : "endpoint"),
             strprintf("held %.0f ns, %zu queued",
                       to_nanoseconds(r.held_for), r.queued_tokens)});
    }
  }
  if (d.faults.total() > 0) {
    t.rule();
    t.row({"network", "fault counters",
           strprintf("total %llu",
                     static_cast<unsigned long long>(d.faults.total()))});
  }
  return t.render();
}

}  // namespace swallow
