#include "snap/machine.h"

#include <algorithm>

#include "common/strings.h"
#include "load/load.h"

namespace swallow {
namespace {

// FNV-1a 64 over a serialized field list: cheap, stable, and good enough
// to distinguish machine configurations (this is a refusal check, not a
// security boundary).
std::uint64_t fnv1a64(const std::vector<std::uint8_t>& bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

struct SavedEvent {
  TimePs time;
  TimePs stamp;
  std::uint64_t tie;
  EventDesc desc;
};

void save_live_event(StateWriter& w, const SavedEvent& e) {
  w.i64(e.time);
  w.i64(e.stamp);
  w.u64(e.tie);
  w.u16(static_cast<std::uint16_t>(e.desc.kind));
  w.u16(e.desc.node);
  w.u32(e.desc.a);
  w.u64(e.desc.b);
  w.u64(e.desc.c);
}

LiveEvent load_live_event(StateReader& r) {
  LiveEvent e;
  e.time = r.i64();
  e.stamp = r.i64();
  e.tie = r.u64();
  e.desc.kind = static_cast<EventKind>(r.u16());
  e.desc.node = r.u16();
  e.desc.a = r.u32();
  e.desc.b = r.u64();
  e.desc.c = r.u64();
  return e;
}

bool is_fault_event(EventKind k) {
  return k == EventKind::kFaultActivate || k == EventKind::kFaultRepair ||
         k == EventKind::kFaultUnfreeze || k == EventKind::kFaultPeerKill;
}

bool is_load_event(EventKind k) { return k == EventKind::kLoadArrival; }

void expect_drained(const StateReader& r, const char* section) {
  if (!r.done()) {
    throw SnapError(
        SnapError::Code::kMalformed,
        strprintf("snapshot: section '%s' has %zu trailing bytes", section,
                  r.remaining()));
  }
}

}  // namespace

std::uint64_t snapshot_config_hash(const SystemConfig& cfg,
                                   const FaultPlan* plan,
                                   const TraceConfig* obs_cfg,
                                   const LoadConfig* load_cfg) {
  StateWriter w;
  w.u32(static_cast<std::uint32_t>(cfg.slices_x));
  w.u32(static_cast<std::uint32_t>(cfg.slices_y));
  w.f64(cfg.core_freq);
  w.u8(static_cast<std::uint8_t>(cfg.link_grade));
  w.u8(static_cast<std::uint8_t>(cfg.routing));
  w.b(cfg.use_table_routers);
  w.f64(cfg.cable_length_cm);
  w.u32(static_cast<std::uint32_t>(cfg.ethernet_bridges));
  w.f64(cfg.power_model.active_line().static_mw);
  w.f64(cfg.power_model.active_line().dyn_mw_per_mhz);
  w.f64(cfg.power_model.idle_line().static_mw);
  w.f64(cfg.power_model.idle_line().dyn_mw_per_mhz);
  w.f64(cfg.power_model.nominal_voltage());
  w.b(cfg.auto_dvfs);
  w.b(cfg.reliable_links);
  w.u64(cfg.seed);
  w.u32(static_cast<std::uint32_t>(cfg.jobs));
  w.u8(static_cast<std::uint8_t>(cfg.sync));
  w.u32(static_cast<std::uint32_t>(cfg.sync_bound));
  w.u8(static_cast<std::uint8_t>(cfg.granularity));
  w.b(plan != nullptr);
  if (plan != nullptr) {
    w.u64(plan->seed);
    w.seq(plan->faults, [&](const FaultSpec& f) {
      w.u8(static_cast<std::uint8_t>(f.kind));
      w.i64(f.at);
      w.i64(f.duration);
      w.u16(f.node);
      w.u32(static_cast<std::uint32_t>(f.direction));
      w.f64(f.rate);
    });
  }
  w.b(obs_cfg != nullptr);
  if (obs_cfg != nullptr) {
    w.b(obs_cfg->tracing);
    w.b(obs_cfg->metrics);
    w.b(obs_cfg->profile);
    w.u64(obs_cfg->track_capacity);
    w.i64(obs_cfg->flush_period);
    w.b(obs_cfg->energy);
    w.i64(obs_cfg->power_window);
  }
  w.b(load_cfg != nullptr);
  if (load_cfg != nullptr) {
    w.u8(static_cast<std::uint8_t>(load_cfg->workload));
    w.u8(static_cast<std::uint8_t>(load_cfg->arrivals.kind));
    w.f64(load_cfg->arrivals.rate_rps);
    w.u32(static_cast<std::uint32_t>(load_cfg->arrivals.burst_size));
    w.b(load_cfg->closed_loop);
    w.u32(static_cast<std::uint32_t>(load_cfg->concurrency));
    w.u64(load_cfg->requests);
    w.u64(load_cfg->seed);
    w.u64(load_cfg->service_work);
    w.u32(static_cast<std::uint32_t>(load_cfg->scatter_fanout));
    w.u32(static_cast<std::uint32_t>(load_cfg->pipeline_stages));
    w.u32(static_cast<std::uint32_t>(load_cfg->groups_per_bridge));
    w.u64(load_cfg->ingress_capacity);
  }
  return fnv1a64(w.data());
}

SnapshotFile save_machine(const SnapTargets& t) {
  require(t.system != nullptr, "save_machine: no system");
  SwallowSystem& sys = *t.system;
  SnapshotFile f;
  f.config_hash = snapshot_config_hash(
      sys.config(), t.fault != nullptr ? &t.fault->plan() : nullptr,
      t.obs != nullptr ? &t.obs->config() : nullptr,
      t.load != nullptr ? &t.load->config() : nullptr);

  // ---- kMeta: machine time + per-domain clock/ordering state.
  {
    StateWriter w;
    w.i64(sys.now());
    const int domains = sys.domain_count();
    w.u32(static_cast<std::uint32_t>(domains));
    for (int i = 0; i < domains; ++i) {
      const Simulator::ClockState cs = sys.domain_sim(i).clock_state();
      // Snapshots are only taken at run_until chop points, where both
      // engines clamp every domain clock to the deadline — a skew-zero
      // sync point.  In bounded mode a skewed save would bake transient
      // drift into the file, so refuse it outright rather than record an
      // inconsistent instant.
      if (cs.now != sys.now()) {
        throw SnapError(
            SnapError::Code::kSkewedClocks,
            strprintf("snapshot: domain %d clock at %lld ps but the machine "
                      "is at %lld ps — snapshots must be taken at a "
                      "skew-zero sync point (a run_until chop)",
                      i, static_cast<long long>(cs.now),
                      static_cast<long long>(sys.now())));
      }
      w.i64(cs.now);
      w.i64(cs.last_dispatch);
      w.u64(cs.dispatched);
      w.u64(cs.next_seq);
      w.u64(cs.fallback_tie);
    }
    // Parallel-engine sync state (zeros under the sequential engine): the
    // adaptive bounded-mode budget plus cumulative drift counters, so a
    // resumed run keeps the same quantum evolution and reports the same
    // totals as an uninterrupted one.
    ParallelEngine::SyncState ss{};
    if (sys.engine() != nullptr) ss = sys.engine()->sync_state();
    w.u64(ss.width);
    w.u64(ss.quanta);
    w.u64(ss.messages);
    w.u64(ss.merges);
    w.u64(ss.stragglers);
    w.u64(ss.max_skew_ps);
    f.add(SnapSection::kMeta, w.take());
  }

  // ---- kSystem: every component's architectural + energy state.
  {
    StateWriter w;
    sys.save_state(w);
    f.add(SnapSection::kSystem, w.take());
  }

  // ---- kEvents: the live queues, rendered through their descriptors and
  // sorted by ordering key so the section bytes are deterministic.
  {
    StateWriter w;
    const int domains = sys.domain_count();
    w.u32(static_cast<std::uint32_t>(domains));
    for (int i = 0; i < domains; ++i) {
      std::vector<SavedEvent> events;
      sys.domain_sim(i).for_each_pending([&](const LiveEvent& ev) {
        events.push_back(SavedEvent{ev.time, ev.stamp, ev.tie, ev.desc});
      });
      for (const SavedEvent& ev : events) {
        if (!ev.desc.described()) {
          throw SnapError(
              SnapError::Code::kUndescribedEvent,
              strprintf("snapshot: a pending event at t=%lld ps in domain %d "
                        "carries no descriptor — a component outside the "
                        "snapshot contract (telemetry streamer, governor, "
                        "resilience manager, test harness) scheduled it",
                        static_cast<long long>(ev.time), i));
        }
      }
      std::sort(events.begin(), events.end(),
                [](const SavedEvent& a, const SavedEvent& b) {
                  if (a.time != b.time) return a.time < b.time;
                  if (a.stamp != b.stamp) return a.stamp < b.stamp;
                  return a.tie < b.tie;
                });
      w.seq(events, [&](const SavedEvent& ev) { save_live_event(w, ev); });
    }
    f.add(SnapSection::kEvents, w.take());
  }

  if (t.obs != nullptr) {
    StateWriter w;
    t.obs->save_state(w);
    f.add(SnapSection::kObs, w.take());
  }
  if (t.fault != nullptr) {
    StateWriter w;
    t.fault->save_state(w);
    f.add(SnapSection::kFault, w.take());
  }
  if (t.load != nullptr) {
    StateWriter w;
    t.load->save_state(w);
    f.add(SnapSection::kLoad, w.take());
  }
  return f;
}

void restore_machine(const SnapshotFile& f, const SnapTargets& t) {
  require(t.system != nullptr, "restore_machine: no system");
  SwallowSystem& sys = *t.system;

  // ---- Refuse a snapshot from a differently configured machine before
  // touching any state.
  const std::uint64_t expect = snapshot_config_hash(
      sys.config(), t.fault != nullptr ? &t.fault->plan() : nullptr,
      t.obs != nullptr ? &t.obs->config() : nullptr,
      t.load != nullptr ? &t.load->config() : nullptr);
  if (f.config_hash != expect) {
    throw SnapError(
        SnapError::Code::kConfigMismatch,
        strprintf("snapshot: config hash %016llx does not match this "
                  "machine's %016llx (geometry, seed, jobs, fault plan and "
                  "observability config must all be identical)",
                  static_cast<unsigned long long>(f.config_hash),
                  static_cast<unsigned long long>(expect)));
  }

  // ---- kMeta: domain clocks.
  struct Clock {
    Simulator::ClockState cs;
  };
  std::vector<Simulator::ClockState> clocks;
  TimePs machine_now = 0;
  ParallelEngine::SyncState sync_state{};
  {
    StateReader r(f.need(SnapSection::kMeta));
    machine_now = r.i64();
    const std::uint32_t domains = r.u32();
    if (static_cast<int>(domains) != sys.domain_count()) {
      throw SnapError(SnapError::Code::kMalformed,
                      "snapshot: domain count does not match this machine");
    }
    for (std::uint32_t i = 0; i < domains; ++i) {
      Simulator::ClockState cs;
      cs.now = r.i64();
      cs.last_dispatch = r.i64();
      cs.dispatched = r.u64();
      cs.next_seq = r.u64();
      cs.fallback_tie = r.u64();
      clocks.push_back(cs);
    }
    sync_state.width = r.u64();
    sync_state.quanta = r.u64();
    sync_state.messages = r.u64();
    sync_state.merges = r.u64();
    sync_state.stragglers = r.u64();
    sync_state.max_skew_ps = r.u64();
    expect_drained(r, "meta");
  }

  // ---- kSystem: component state.
  {
    StateReader r(f.need(SnapSection::kSystem));
    sys.load_state(r);
    expect_drained(r, "system");
  }

  // ---- Clocks before events: Simulator::inject validates against now().
  for (int i = 0; i < sys.domain_count(); ++i) {
    sys.domain_sim(i).restore_clock_state(clocks[static_cast<std::size_t>(i)]);
  }
  if (sys.engine() != nullptr) {
    sys.engine()->restore_clock(machine_now);
    sys.engine()->restore_sync_state(sync_state);
  }

  // ---- Fault injector: hooks only, then its rng streams.  Must precede
  // event re-injection so kFault* events have an armed owner.
  if (t.fault != nullptr) {
    t.fault->arm_for_restore();
    StateReader r(f.need(SnapSection::kFault));
    t.fault->load_state(r);
    expect_drained(r, "fault");
  } else if (f.find(SnapSection::kFault) != nullptr) {
    // The config hash should have refused already; double-check anyway.
    throw SnapError(SnapError::Code::kMalformed,
                    "snapshot: carries fault state but no injector supplied");
  }

  // ---- Load generator counters/rngs before its kLoadArrival events.
  if (t.load != nullptr) {
    StateReader r(f.need(SnapSection::kLoad));
    t.load->load_state(r);
    expect_drained(r, "load");
  } else if (f.find(SnapSection::kLoad) != nullptr) {
    throw SnapError(SnapError::Code::kMalformed,
                    "snapshot: carries load state but no generator supplied");
  }

  // ---- kEvents: re-schedule every live event under its original key.
  {
    StateReader r(f.need(SnapSection::kEvents));
    const std::uint32_t domains = r.u32();
    if (static_cast<int>(domains) != sys.domain_count()) {
      throw SnapError(SnapError::Code::kMalformed,
                      "snapshot: event section domain count mismatch");
    }
    for (std::uint32_t i = 0; i < domains; ++i) {
      r.seq([&](std::size_t) {
        const LiveEvent ev = load_live_event(r);
        if (!ev.desc.described()) {
          throw SnapError(SnapError::Code::kMalformed,
                          "snapshot: stored event has no descriptor");
        }
        if (is_fault_event(ev.desc.kind)) {
          if (t.fault == nullptr) {
            throw SnapError(
                SnapError::Code::kMalformed,
                "snapshot: pending fault event but no injector supplied");
          }
          t.fault->restore_event(ev);
        } else if (is_load_event(ev.desc.kind)) {
          if (t.load == nullptr) {
            throw SnapError(
                SnapError::Code::kMalformed,
                "snapshot: pending load event but no generator supplied");
          }
          t.load->restore_event(ev);
        } else {
          sys.restore_event(ev);
        }
      });
    }
    expect_drained(r, "events");
  }

  // ---- Blocked-thread wake hooks: chanend-blocked threads re-arm their
  // readable/writable callbacks against the restored fifo state.
  for (int i = 0; i < sys.core_count(); ++i) {
    sys.core_by_index(i).rearm_blocked_waits();
  }

  // ---- kObs: merged stream, ring contents, metrics, profiler.
  if (t.obs != nullptr) {
    StateReader r(f.need(SnapSection::kObs));
    t.obs->load_state(r);
    expect_drained(r, "obs");
  } else if (f.find(SnapSection::kObs) != nullptr) {
    throw SnapError(SnapError::Code::kMalformed,
                    "snapshot: carries an observability section but no "
                    "session supplied");
  }
}

}  // namespace swallow
