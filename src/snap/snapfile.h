// Snapshot file container (docs/architecture.md §snapshot format).
//
// A snapshot is a single file: a fixed header (magic, format version,
// machine config hash), a section table, and the section payloads.  Every
// section carries a CRC32 over its bytes; readers validate magic, version
// and every CRC before any state is touched, and refuse with a structured
// SnapError otherwise — a corrupt or foreign snapshot never half-applies.
//
// Writes are crash-safe: the encoded image goes to `<path>.tmp`, is
// fsync'd, and is atomically renamed over `<path>`, so a kill at any
// instant leaves either the previous snapshot or the new one, never a
// torn file.  Checkpoint rotation keeps the last N files
// (`ckpt-<seq>.swsnap`); auto-resume walks them newest-first and falls
// back to an older snapshot when the newest refuses.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/stateio.h"

namespace swallow {

/// Section identifiers.  Part of the format: append, never renumber.
enum class SnapSection : std::uint32_t {
  kMeta = 1,    // format + domain clocks + machine time
  kSystem = 2,  // SwallowSystem component state
  kEvents = 3,  // per-domain live event queues (descriptors + keys)
  kObs = 4,     // TraceSession (present iff observability was attached)
  kFault = 5,   // FaultInjector rng streams (present iff a plan was armed)
  kLoad = 6,    // LoadGenerator state (present iff a load run was armed)
};

const char* snap_section_name(SnapSection s);

/// In-memory snapshot: a config hash plus ordered (section, bytes) pairs.
class SnapshotFile {
 public:
  static constexpr std::uint32_t kMagic = 0x4E535753;  // "SWSN" little-endian
  // v3: EthernetBridge state grew ingress-backpressure counters and the
  // optional kLoad section joined the format.
  // v4: kMeta carries the parallel engine's sync state (adaptive budget +
  // drift counters), the config hash covers sync mode/bound/granularity,
  // and partition ledgers joined kSystem at finer-than-slice granularity.
  static constexpr std::uint32_t kVersion = 4;

  std::uint64_t config_hash = 0;

  void add(SnapSection id, std::vector<std::uint8_t> bytes) {
    sections_.emplace_back(id, std::move(bytes));
  }
  /// nullptr when absent.
  const std::vector<std::uint8_t>* find(SnapSection id) const;
  /// Throws SnapError{kMissingSection} when absent.
  const std::vector<std::uint8_t>& need(SnapSection id) const;
  std::size_t section_count() const { return sections_.size(); }

  /// Serialise to the on-disk image (header + table + payloads, CRCs
  /// computed here).
  std::vector<std::uint8_t> encode() const;

  /// Parse and fully validate an on-disk image.  Throws SnapError with
  /// kBadMagic / kBadVersion / kTruncated / kBadCrc / kMalformed.
  static SnapshotFile decode(const std::uint8_t* data, std::size_t size);
  static SnapshotFile decode(const std::vector<std::uint8_t>& v) {
    return decode(v.data(), v.size());
  }

  /// Crash-safe write: encode to `<path>.tmp`, fsync, rename over `path`.
  /// Throws SnapError{kIoError} on any filesystem failure.
  void write_file(const std::string& path) const;

  /// Read + decode + validate.  Throws SnapError (kIoError when the file
  /// cannot be read at all).
  static SnapshotFile read_file(const std::string& path);

 private:
  std::vector<std::pair<SnapSection, std::vector<std::uint8_t>>> sections_;
};

// ----- Checkpoint rotation -----

/// `dir/ckpt-<seq>.swsnap` (seq zero-padded so lexical = numeric order).
std::string checkpoint_path(const std::string& dir, std::uint64_t seq);

/// Checkpoint files in `dir`, newest (highest seq) first.
std::vector<std::string> list_checkpoints(const std::string& dir);

/// Delete all but the newest `keep` checkpoints.  Best-effort: unlink
/// failures are ignored (an undeletable old file only wastes space).
void prune_checkpoints(const std::string& dir, int keep);

}  // namespace swallow
