#include "snap/snapfile.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#ifdef _WIN32
#include <io.h>
#else
#include <unistd.h>
#endif

#include "common/strings.h"

namespace swallow {

const char* snap_section_name(SnapSection s) {
  switch (s) {
    case SnapSection::kMeta: return "meta";
    case SnapSection::kSystem: return "system";
    case SnapSection::kEvents: return "events";
    case SnapSection::kObs: return "obs";
    case SnapSection::kFault: return "fault";
    case SnapSection::kLoad: return "load";
  }
  return "unknown";
}

const std::vector<std::uint8_t>* SnapshotFile::find(SnapSection id) const {
  for (const auto& [sid, bytes] : sections_) {
    if (sid == id) return &bytes;
  }
  return nullptr;
}

const std::vector<std::uint8_t>& SnapshotFile::need(SnapSection id) const {
  const auto* s = find(id);
  if (s == nullptr) {
    throw SnapError(SnapError::Code::kMissingSection,
                    strprintf("snapshot: required section '%s' is missing",
                              snap_section_name(id)));
  }
  return *s;
}

std::vector<std::uint8_t> SnapshotFile::encode() const {
  StateWriter w;
  w.u32(kMagic);
  w.u32(kVersion);
  w.u64(config_hash);
  w.u32(static_cast<std::uint32_t>(sections_.size()));
  // Table: (id, offset-from-payload-start, size, crc32).
  std::uint64_t offset = 0;
  for (const auto& [id, bytes] : sections_) {
    w.u32(static_cast<std::uint32_t>(id));
    w.u64(offset);
    w.u64(bytes.size());
    w.u32(crc32(bytes.data(), bytes.size()));
    offset += bytes.size();
  }
  for (const auto& [id, bytes] : sections_) {
    w.bytes(bytes.data(), bytes.size());
  }
  return w.take();
}

SnapshotFile SnapshotFile::decode(const std::uint8_t* data, std::size_t size) {
  StateReader r(data, size);
  // Distinguish "not a snapshot at all" from "snapshot cut short".
  if (size < 4) {
    throw SnapError(SnapError::Code::kBadMagic,
                    "snapshot: file too short to carry the magic");
  }
  if (r.u32() != kMagic) {
    throw SnapError(SnapError::Code::kBadMagic,
                    "snapshot: bad magic (not a snapshot file)");
  }
  const std::uint32_t version = r.u32();
  if (version != kVersion) {
    throw SnapError(
        SnapError::Code::kBadVersion,
        strprintf("snapshot: format version %u, this build reads %u", version,
                  kVersion));
  }
  SnapshotFile f;
  f.config_hash = r.u64();
  const std::uint32_t count = r.u32();
  struct Entry {
    std::uint32_t id;
    std::uint64_t offset;
    std::uint64_t size;
    std::uint32_t crc;
  };
  std::vector<Entry> table;
  for (std::uint32_t i = 0; i < count; ++i) {
    Entry e;
    e.id = r.u32();
    e.offset = r.u64();
    e.size = r.u64();
    e.crc = r.u32();
    table.push_back(e);
  }
  const std::size_t payload_start = size - r.remaining();
  for (const Entry& e : table) {
    if (e.offset + e.size < e.offset ||  // overflow
        payload_start + e.offset + e.size > size) {
      throw SnapError(
          SnapError::Code::kTruncated,
          strprintf("snapshot: section '%s' extends past end of file",
                    snap_section_name(static_cast<SnapSection>(e.id))));
    }
    const std::uint8_t* p = data + payload_start + e.offset;
    const std::uint32_t actual = crc32(p, static_cast<std::size_t>(e.size));
    if (actual != e.crc) {
      throw SnapError(
          SnapError::Code::kBadCrc,
          strprintf("snapshot: section '%s' CRC mismatch "
                    "(stored %08x, computed %08x)",
                    snap_section_name(static_cast<SnapSection>(e.id)), e.crc,
                    actual));
    }
    f.add(static_cast<SnapSection>(e.id),
          std::vector<std::uint8_t>(p, p + e.size));
  }
  return f;
}

void SnapshotFile::write_file(const std::string& path) const {
  const std::vector<std::uint8_t> image = encode();
  const std::string tmp = path + ".tmp";
  std::FILE* fp = std::fopen(tmp.c_str(), "wb");
  if (fp == nullptr) {
    throw SnapError(SnapError::Code::kIoError,
                    strprintf("snapshot: cannot open %s: %s", tmp.c_str(),
                              std::strerror(errno)));
  }
  const bool wrote =
      image.empty() || std::fwrite(image.data(), 1, image.size(), fp) ==
                           image.size();
  bool synced = wrote && std::fflush(fp) == 0;
#ifndef _WIN32
  synced = synced && fsync(fileno(fp)) == 0;
#endif
  const bool closed = std::fclose(fp) == 0;
  if (!wrote || !synced || !closed) {
    std::remove(tmp.c_str());
    throw SnapError(SnapError::Code::kIoError,
                    strprintf("snapshot: write to %s failed: %s", tmp.c_str(),
                              std::strerror(errno)));
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    throw SnapError(SnapError::Code::kIoError,
                    strprintf("snapshot: rename %s -> %s failed: %s",
                              tmp.c_str(), path.c_str(),
                              ec.message().c_str()));
  }
}

SnapshotFile SnapshotFile::read_file(const std::string& path) {
  std::FILE* fp = std::fopen(path.c_str(), "rb");
  if (fp == nullptr) {
    throw SnapError(SnapError::Code::kIoError,
                    strprintf("snapshot: cannot open %s: %s", path.c_str(),
                              std::strerror(errno)));
  }
  std::vector<std::uint8_t> image;
  std::uint8_t buf[65536];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, fp)) > 0) {
    image.insert(image.end(), buf, buf + n);
  }
  const bool read_ok = std::ferror(fp) == 0;
  std::fclose(fp);
  if (!read_ok) {
    throw SnapError(SnapError::Code::kIoError,
                    strprintf("snapshot: read of %s failed", path.c_str()));
  }
  return decode(image);
}

// ----- Checkpoint rotation -----

std::string checkpoint_path(const std::string& dir, std::uint64_t seq) {
  return strprintf("%s/ckpt-%012llu.swsnap", dir.c_str(),
                   static_cast<unsigned long long>(seq));
}

std::vector<std::string> list_checkpoints(const std::string& dir) {
  std::vector<std::string> found;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("ckpt-", 0) == 0 &&
        name.size() > 12 &&  // "ckpt-" + digits + ".swsnap"
        name.compare(name.size() - 7, 7, ".swsnap") == 0) {
      found.push_back(entry.path().string());
    }
  }
  // Zero-padded sequence numbers: lexically descending = newest first.
  std::sort(found.rbegin(), found.rend());
  return found;
}

void prune_checkpoints(const std::string& dir, int keep) {
  const std::vector<std::string> all = list_checkpoints(dir);
  for (std::size_t i = static_cast<std::size_t>(std::max(keep, 0));
       i < all.size(); ++i) {
    std::remove(all[i].c_str());
  }
}

}  // namespace swallow
