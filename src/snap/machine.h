// Whole-machine snapshot orchestration (the PR 6 tentpole).
//
// save_machine() serialises a SwallowSystem — with its attached
// observability session and armed fault injector, when present — into a
// SnapshotFile at a run_until chop point: component state, every domain's
// clock/ordering counters, and every live event rendered through its
// EventDesc (sim/event_desc.h).  restore_machine() is the mirror: the
// caller rebuilds an identically configured machine (same SystemConfig,
// attach_observability with the same TraceConfig, a freshly constructed
// *unarmed* FaultInjector with the same plan — and no program load, no
// core start, no start_sampling, no enable_loss_integration: all of that
// state, including SRAM contents, comes back from the snapshot), then a
// single call validates the config hash and re-applies everything.
//
// The keystone property: run-to-T, snapshot, restore, run-to-2T is
// bit-identical — instruction counts, energy doubles, telemetry bytes,
// trace output, fault counters — to an uninterrupted run to 2T, across
// engines and worker counts.
#pragma once

#include <cstdint>

#include "board/system.h"
#include "fault/fault.h"
#include "obs/trace.h"
#include "snap/snapfile.h"

namespace swallow {

class LoadGenerator;
struct LoadConfig;

/// The machine-level objects a snapshot covers.  `system` is required.
/// `obs` / `fault` / `load` must be present exactly when the snapshot
/// carries their sections (the config hash pins each, so a mismatch
/// refuses early).  A restored load generator must have been
/// deploy(for_restore)'d with the identical LoadConfig.
struct SnapTargets {
  SwallowSystem* system = nullptr;
  TraceSession* obs = nullptr;
  FaultInjector* fault = nullptr;
  LoadGenerator* load = nullptr;
};

/// Deterministic hash over everything that must match between the
/// snapshotting and the restoring machine: the full SystemConfig
/// (including jobs — cross-engine restore is refused by design), the
/// fault plan, the observability configuration, and the load
/// configuration.
std::uint64_t snapshot_config_hash(const SystemConfig& cfg,
                                   const FaultPlan* plan,
                                   const TraceConfig* obs_cfg,
                                   const LoadConfig* load_cfg = nullptr);

/// Serialise the machine.  Must be called at a chop point (between
/// run_until calls).  Throws SnapError{kUndescribedEvent} when any pending
/// event lacks a descriptor.
SnapshotFile save_machine(const SnapTargets& t);

/// Validate and re-apply a snapshot into freshly built targets.  Throws
/// SnapError and leaves the targets unusable on failure — build new ones
/// rather than resuming after a refusal.  The fault injector, when given,
/// must be unarmed (restore arms it hook-only via arm_for_restore()).
void restore_machine(const SnapshotFile& f, const SnapTargets& t);

}  // namespace swallow
