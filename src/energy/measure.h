// The measurement daughter-board (§II): shunt resistors on each supply
// output, differential amplifiers, and a multi-channel ADC sampling at up
// to 2 MS/s (1 MS/s when all channels sample simultaneously).
//
// The novel property carried over from the paper: samples are available
// *inside* the simulated system (PowerSampler::latest), so a running
// program can observe its own power draw and adapt — see
// examples/self_aware_power.cpp.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "common/stateio.h"
#include "common/units.h"
#include "energy/params.h"
#include "energy/supply.h"
#include "sim/event_desc.h"
#include "sim/simulator.h"

namespace swallow {

/// Shunt + differential amplifier + ADC front end for one supply channel.
struct AnalogFrontEnd {
  double shunt_ohms = 0.010;   // 10 mOhm sense resistor
  double amp_gain = 50.0;      // differential amplifier
  int adc_bits = 12;
  Volts adc_vref = 3.3;
  double noise_lsb_rms = 0.5;  // input-referred noise in LSBs

  std::uint32_t max_code() const { return (1u << adc_bits) - 1; }

  /// Quantise the rail's present draw into an ADC code.
  std::uint32_t sample_code(const Rail& rail, Rng& rng) const;

  /// Convert an ADC code back to watts for the given rail voltage.
  Watts code_to_watts(std::uint32_t code, Volts rail_volts) const;
};

/// One timestamped converted sample.
struct PowerSample {
  TimePs time = 0;
  Watts watts = 0;
  std::uint32_t code = 0;
};

/// Periodic sampler over the five slice supplies (or any set of rails).
/// Integrates energy per channel (trapezoidal) and keeps the latest sample
/// available for in-system reads.
class PowerSampler {
 public:
  enum class Mode {
    kSingleChannel,  // up to 2 MS/s, one chosen channel
    kSimultaneous,   // up to 1 MS/s, all channels each tick
  };

  PowerSampler(Simulator& sim, std::vector<const Rail*> rails,
               AnalogFrontEnd fe = {}, std::uint64_t noise_seed = 1);

  /// Begin sampling.  `rate_sps` must respect the mode's ADC limit.
  /// In single-channel mode `channel` selects which rail is converted.
  void start(Mode mode, double rate_sps, int channel = 0);
  void stop();

  bool running() const { return running_; }
  int channels() const { return static_cast<int>(rails_.size()); }

  /// Latest converted sample of a channel (zero-initialised before the
  /// first conversion).
  const PowerSample& latest(int channel) const {
    return latest_.at(static_cast<std::size_t>(channel));
  }

  /// Trapezoidal energy integral of a channel since start().
  Joules energy(int channel) const {
    return energy_.at(static_cast<std::size_t>(channel));
  }
  Joules total_energy() const;

  /// Number of conversions performed on a channel.
  std::uint64_t samples(int channel) const {
    return counts_.at(static_cast<std::size_t>(channel));
  }

  /// Optionally record every sample of every channel (off by default to
  /// keep long runs cheap).
  void record_trace(bool on) { record_ = on; }
  const std::vector<PowerSample>& trace(int channel) const {
    return traces_.at(static_cast<std::size_t>(channel));
  }

  // ----- Snapshot (src/snap/) -----
  /// Identify this sampler in event descriptors (kSamplerTick); the board
  /// layer assigns the owning slice's flat row-major index.
  void set_snap_node(std::uint16_t node) { snap_node_ = node; }
  void save_state(StateWriter& w) const;
  void load_state(StateReader& r);
  /// Re-inject the pending ADC tick with its original queue keys.
  void restore_event(const LiveEvent& ev);

 private:
  void tick();
  void convert(int channel);

  Simulator& sim_;
  std::vector<const Rail*> rails_;
  AnalogFrontEnd fe_;
  Rng rng_;
  Mode mode_ = Mode::kSimultaneous;
  TimePs interval_ = 0;
  int single_channel_ = 0;
  bool running_ = false;
  bool record_ = false;
  std::uint16_t snap_node_ = 0;
  EventHandle pending_;
  std::vector<PowerSample> latest_;
  std::vector<Joules> energy_;
  std::vector<std::uint64_t> counts_;
  std::vector<PowerSample> prev_;
  std::vector<std::vector<PowerSample>> traces_;
};

}  // namespace swallow
