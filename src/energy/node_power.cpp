#include "energy/node_power.h"

#include <algorithm>

#include "common/error.h"

namespace swallow {

NodePowerBreakdown NodePowerModel::breakdown(const NodeOperatingPoint& op) const {
  require(op.f_mhz > 0 && op.v > 0, "NodePowerModel: bad operating point");
  require(op.compute_util >= 0 && op.compute_util <= 1.0,
          "NodePowerModel: compute_util out of [0,1]");
  require(op.link_util >= 0 && op.link_util <= 1.0,
          "NodePowerModel: link_util out of [0,1]");

  const double fr = op.f_mhz / 500.0;  // frequency relative to nominal
  const double vr = op.v;              // nominal voltage is 1 V
  NodePowerBreakdown b;
  b.compute = milliwatts(nominal_.compute_mw * fr * op.compute_util * vr * vr);
  b.statics = milliwatts(nominal_.static_mw * vr);
  // Network interface: roughly half the nominal figure is switch static and
  // clocking; the rest follows link activity.
  b.network_interface = milliwatts(
      nominal_.network_interface_mw * (0.5 * vr + 0.5 * fr * op.link_util * vr * vr));
  b.other = milliwatts(nominal_.other_mw);
  // DC-DC loss is a fixed fraction of the power delivered to the above,
  // plus a constant I/O-rail share.  The fraction is chosen so the nominal
  // point yields the Fig. 2 value of 46 mW with 16 mW of constant I/O.
  const Watts delivered = b.compute + b.statics + b.network_interface + b.other;
  const Watts nominal_delivered = milliwatts(
      nominal_.compute_mw + nominal_.static_mw + nominal_.network_interface_mw +
      nominal_.other_mw);
  const Watts io_const = milliwatts(16.0);
  const double loss_fraction =
      (milliwatts(nominal_.dcdc_io_mw) - io_const) / nominal_delivered;
  b.dcdc_io = io_const + loss_fraction * delivered;
  return b;
}

}  // namespace swallow
