#include "energy/ledger.h"

namespace swallow {

std::string_view to_string(EnergyAccount a) {
  switch (a) {
    case EnergyAccount::kCoreBaseline: return "core-baseline";
    case EnergyAccount::kCoreInstructions: return "core-instructions";
    case EnergyAccount::kNetworkInterface: return "network-interface";
    case EnergyAccount::kLinkOnChip: return "link-on-chip";
    case EnergyAccount::kLinkBoardVertical: return "link-board-vertical";
    case EnergyAccount::kLinkBoardHorizontal: return "link-board-horizontal";
    case EnergyAccount::kLinkCable: return "link-cable";
    case EnergyAccount::kDcDcIo: return "dcdc-io";
    case EnergyAccount::kOther: return "other";
    case EnergyAccount::kEthernetBridge: return "ethernet-bridge";
    case EnergyAccount::kCount: break;
  }
  return "?";
}

}  // namespace swallow
