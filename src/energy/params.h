// Calibration constants taken directly from the Swallow paper (DATE 2016).
// Every number in this header is traceable to a specific table, figure or
// equation; the benches re-derive the paper's results *from the simulator*
// and check them against these.
#pragma once

#include "common/units.h"

namespace swallow {

/// Equation (1): active core power at 1 V, four threads under heavy load:
///   Pc = (46 + 0.30 f) mW.
struct ActivePowerLine {
  double static_mw = 46.0;
  double dyn_mw_per_mhz = 0.30;
};

/// Figure 3 idle line endpoints: 113 mW at 500 MHz and 50 mW at 71 MHz with
/// all threads idle.  Expressed as the equivalent line fit.
struct IdlePowerLine {
  // slope = (113 - 50) / (500 - 71); intercept from the 71 MHz point.
  double static_mw = 50.0 - (113.0 - 50.0) / (500.0 - 71.0) * 71.0;
  double dyn_mw_per_mhz = (113.0 - 50.0) / (500.0 - 71.0);
};

/// Section III.B / Figure 4: experimentally determined minimum supply
/// voltages, interpolated linearly in between.
struct VoltageCurvePoints {
  MegaHertz f_lo_mhz = 71.0;
  Volts v_lo = 0.60;
  MegaHertz f_hi_mhz = 500.0;
  Volts v_hi = 0.95;
  Volts v_nominal = 1.0;
};

/// Figure 2: power distribution for each Swallow node at the nominal
/// operating point (500 MHz, 1 V, fully loaded), 260 mW total.
struct NodeBreakdownNominal {
  double compute_mw = 78.0;        // "Computation & memory ops"
  double static_mw = 68.0;         // node static (core + switch + PLL)
  double network_interface_mw = 58.0;
  double dcdc_io_mw = 46.0;        // DC-DC conversion and I/O
  double other_mw = 10.0;
  double total_mw() const {
    return compute_mw + static_mw + network_interface_mw + dcdc_io_mw + other_mw;
  }
};

/// Table I: per-link-class data rate, maximum link power and energy/bit.
/// Note energy_pj_per_bit == max_power / rate exactly in the paper.
struct LinkClassParams {
  MegabitsPerSecond data_rate_mbps;
  double max_power_mw;
  double energy_pj_per_bit;
};

inline constexpr LinkClassParams kOnChipLink{250.0, 1.4, 5.6};
inline constexpr LinkClassParams kBoardVerticalLink{62.5, 13.3, 212.8};
inline constexpr LinkClassParams kBoardHorizontalLink{62.5, 12.6, 201.6};
inline constexpr LinkClassParams kOffBoardFfcLink{62.5, 680.0, 10880.0};

/// Off-board FFC cable reference length for the Table I energy (30 cm).
inline constexpr double kFfcReferenceLengthCm = 30.0;

/// Architectural maximum link rates (§V.C): 500 Mbit/s on-chip and
/// 125 Mbit/s external, versus the derated Table I operating rates.
inline constexpr MegabitsPerSecond kOnChipLinkMaxMbps = 500.0;
inline constexpr MegabitsPerSecond kExternalLinkMaxMbps = 125.0;

/// §III.A headline system numbers.
inline constexpr double kMaxCorePowerMw = 193.0;     // one core, 500 MHz, loaded
inline constexpr double kSliceCoresPowerW = 3.1;     // 16 cores
inline constexpr double kSlicePowerW = 4.5;          // incl. conversion losses
inline constexpr int kCoresPerSlice = 16;
inline constexpr int kChipsPerSlice = 8;
inline constexpr int kLargestSystemCores = 480;
inline constexpr int kLargestSystemSlices = 30;
inline constexpr double kLargestSystemPowerW = 134.0;

/// §II: measurement subsystem sampling rates.
inline constexpr double kAdcSingleChannelSps = 2'000'000.0;
inline constexpr double kAdcSimultaneousSps = 1'000'000.0;
inline constexpr int kSupplyChannelsPerSlice = 5;  // 4x 1V rails + 1x 3.3V

/// §V.E: Ethernet bridge full-duplex throughput cap.
inline constexpr MegabitsPerSecond kEthernetBridgeMbps = 80.0;

/// Core microarchitecture constants (§IV.A, §IV.C).
inline constexpr int kPipelineStages = 4;
inline constexpr int kMaxHardwareThreads = 8;
inline constexpr int kSramBytesPerCore = 64 * 1024;
inline constexpr MegaHertz kMaxCoreFrequencyMhz = 500.0;
inline constexpr MegaHertz kMinCoreFrequencyMhz = 71.0;
inline constexpr MegaHertz kReferenceClockMhz = 100.0;

}  // namespace swallow
