#include "energy/measure.h"

#include <algorithm>
#include <cmath>

namespace swallow {

std::uint32_t AnalogFrontEnd::sample_code(const Rail& rail, Rng& rng) const {
  // Vshunt = I * R; Vadc = gain * Vshunt (+ input-referred noise).
  const double v_shunt = rail.current_amps() * shunt_ohms;
  const double lsb = adc_vref / static_cast<double>(max_code() + 1);
  double v_adc = amp_gain * v_shunt + rng.next_gaussian() * noise_lsb_rms * lsb;
  v_adc = std::clamp(v_adc, 0.0, adc_vref);
  const double code = std::floor(v_adc / lsb);
  return static_cast<std::uint32_t>(std::min<double>(code, max_code()));
}

Watts AnalogFrontEnd::code_to_watts(std::uint32_t code, Volts rail_volts) const {
  const double lsb = adc_vref / static_cast<double>(max_code() + 1);
  // Convert at bucket centre to halve the quantisation bias.
  const double v_adc = (static_cast<double>(code) + 0.5) * lsb;
  const double amps = v_adc / amp_gain / shunt_ohms;
  return amps * rail_volts;
}

PowerSampler::PowerSampler(Simulator& sim, std::vector<const Rail*> rails,
                           AnalogFrontEnd fe, std::uint64_t noise_seed)
    : sim_(sim),
      rails_(std::move(rails)),
      fe_(fe),
      rng_(noise_seed),
      latest_(rails_.size()),
      energy_(rails_.size(), 0.0),
      counts_(rails_.size(), 0),
      prev_(rails_.size()),
      traces_(rails_.size()) {
  require(!rails_.empty(), "PowerSampler: no rails");
}

void PowerSampler::start(Mode mode, double rate_sps, int channel) {
  require(rate_sps > 0, "PowerSampler: rate must be positive");
  const double limit = mode == Mode::kSingleChannel ? kAdcSingleChannelSps
                                                    : kAdcSimultaneousSps;
  require(rate_sps <= limit, "PowerSampler: rate exceeds ADC capability");
  require(channel >= 0 && channel < channels(), "PowerSampler: bad channel");
  mode_ = mode;
  single_channel_ = channel;
  interval_ = static_cast<TimePs>(1e12 / rate_sps + 0.5);
  running_ = true;
  std::fill(prev_.begin(), prev_.end(), PowerSample{});
  pending_ = sim_.after(interval_, EventDesc{EventKind::kSamplerTick, snap_node_},
                        [this] { tick(); });
}

void PowerSampler::stop() {
  if (running_) {
    sim_.cancel(pending_);
    running_ = false;
  }
}

void PowerSampler::convert(int channel) {
  const std::size_t i = static_cast<std::size_t>(channel);
  const Rail& rail = *rails_[i];
  PowerSample s;
  s.time = sim_.now();
  s.code = fe_.sample_code(rail, rng_);
  s.watts = fe_.code_to_watts(s.code, rail.voltage());
  // Trapezoidal integration from the previous conversion of this channel.
  if (prev_[i].time > 0 || counts_[i] > 0) {
    const TimePs dt = s.time - prev_[i].time;
    energy_[i] += 0.5 * (s.watts + prev_[i].watts) * to_seconds(dt);
  }
  prev_[i] = s;
  latest_[i] = s;
  ++counts_[i];
  if (record_) traces_[i].push_back(s);
}

void PowerSampler::tick() {
  if (!running_) return;
  if (mode_ == Mode::kSimultaneous) {
    for (int c = 0; c < channels(); ++c) convert(c);
  } else {
    convert(single_channel_);
  }
  pending_ = sim_.after(interval_, EventDesc{EventKind::kSamplerTick, snap_node_},
                        [this] { tick(); });
}

namespace {

void save_sample(StateWriter& w, const PowerSample& s) {
  w.i64(s.time);
  w.f64(s.watts);
  w.u32(s.code);
}

PowerSample load_sample(StateReader& r) {
  PowerSample s;
  s.time = r.i64();
  s.watts = r.f64();
  s.code = r.u32();
  return s;
}

}  // namespace

void PowerSampler::save_state(StateWriter& w) const {
  rng_.save_state(w);
  w.u8(static_cast<std::uint8_t>(mode_));
  w.i64(interval_);
  w.u32(static_cast<std::uint32_t>(single_channel_));
  w.b(running_);
  w.b(record_);
  const std::size_t n = rails_.size();
  for (std::size_t i = 0; i < n; ++i) {
    save_sample(w, latest_[i]);
    save_sample(w, prev_[i]);
    w.f64(energy_[i]);
    w.u64(counts_[i]);
    w.seq(traces_[i], [&](const PowerSample& s) { save_sample(w, s); });
  }
}

void PowerSampler::load_state(StateReader& r) {
  rng_.load_state(r);
  mode_ = static_cast<Mode>(r.u8());
  interval_ = r.i64();
  single_channel_ = static_cast<int>(r.u32());
  running_ = r.b();
  record_ = r.b();
  const std::size_t n = rails_.size();
  for (std::size_t i = 0; i < n; ++i) {
    latest_[i] = load_sample(r);
    prev_[i] = load_sample(r);
    energy_[i] = r.f64();
    counts_[i] = r.u64();
    traces_[i].clear();
    r.seq([&](std::size_t) { traces_[i].push_back(load_sample(r)); });
  }
  pending_ = EventHandle{};
}

void PowerSampler::restore_event(const LiveEvent& ev) {
  invariant(ev.desc.kind == EventKind::kSamplerTick,
            "PowerSampler: unexpected event kind");
  pending_ = sim_.inject(ev.time, ev.stamp, ev.tie, ev.desc, [this] { tick(); });
}

Joules PowerSampler::total_energy() const {
  Joules sum = 0;
  for (Joules j : energy_) sum += j;
  return sum;
}

}  // namespace swallow
