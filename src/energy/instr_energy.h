// Instruction-class energy weights.
//
// Kerrison & Eder's ISA-level energy model of the XS1-L ([4] in the paper)
// showed per-instruction energy varies with the operation performed — the
// source of the paper's "71–193 mW dependent on workload" spread.  We carry
// that workload dependence as a per-class multiplier on the average
// instruction energy (weight 1.0 == the mix Eq. (1) was fitted on).
#pragma once

#include <cstdint>
#include <string_view>

namespace swallow {

enum class InstrClass {
  kNop,       // idle issue slot filler
  kAlu,       // add/sub/logic/compare
  kShift,
  kMul,
  kDiv,       // long-latency divide/remainder
  kMemory,    // loads/stores to local SRAM
  kBranch,
  kComm,      // channel input/output instructions
  kResource,  // resource allocation / configuration
  kSystem,    // frequency control, ADC reads, debug
};

/// Dynamic-energy multiplier relative to the average mix.
constexpr double instr_weight(InstrClass c) {
  switch (c) {
    case InstrClass::kNop: return 0.55;
    case InstrClass::kAlu: return 1.00;
    case InstrClass::kShift: return 0.95;
    case InstrClass::kMul: return 1.30;
    case InstrClass::kDiv: return 1.25;
    case InstrClass::kMemory: return 1.15;
    case InstrClass::kBranch: return 0.90;
    case InstrClass::kComm: return 1.10;
    case InstrClass::kResource: return 1.00;
    case InstrClass::kSystem: return 1.00;
  }
  return 1.0;
}

constexpr std::string_view to_string(InstrClass c) {
  switch (c) {
    case InstrClass::kNop: return "nop";
    case InstrClass::kAlu: return "alu";
    case InstrClass::kShift: return "shift";
    case InstrClass::kMul: return "mul";
    case InstrClass::kDiv: return "div";
    case InstrClass::kMemory: return "memory";
    case InstrClass::kBranch: return "branch";
    case InstrClass::kComm: return "comm";
    case InstrClass::kResource: return "resource";
    case InstrClass::kSystem: return "system";
  }
  return "?";
}

/// Optional detailed instruction-energy refinement, after the ISA-level
/// model of the paper's citation [4] (Kerrison & Eder, "Energy Modeling of
/// Software for a Hardware Multi-threaded Embedded Microprocessor"): the
/// issue energy of an instruction also depends on
///   * inter-instruction *circuit switching* — consecutive pipeline
///     instructions of different classes toggle more control logic, and
///   * *operand data* — datapath switching scales with operand Hamming
///     weight.
/// Both refinements are zero-mean over the calibration mix, so a typical
/// workload still lands on the Eq. (1) line; atypical workloads (monotone
/// instruction streams, all-zero or all-ones data) deviate, reproducing
/// the workload-dependent spread the paper reports (§I: 71-193 mW).
struct DetailedEnergyConfig {
  bool enabled = false;
  /// Extra weight when the class differs from the previous issue, minus
  /// the calibration mix's change rate (zero-mean).
  double switch_weight = 0.10;
  double change_prob_baseline = 0.7;
  /// Weight swing across operand Hamming weight 0..64 (two operands),
  /// centred on the calibration average of half the bits toggling.
  double data_weight = 0.25;
};

constexpr int popcount32(std::uint32_t v) {
  int n = 0;
  while (v != 0) {
    v &= v - 1;
    ++n;
  }
  return n;
}

/// Issue-energy weight for one instruction under the detailed model.
constexpr double detailed_weight(const DetailedEnergyConfig& cfg,
                                 InstrClass cls, InstrClass prev,
                                 std::uint32_t op_a, std::uint32_t op_b) {
  double w = instr_weight(cls);
  if (!cfg.enabled) return w;
  const double changed = cls == prev ? 0.0 : 1.0;
  w += cfg.switch_weight * (changed - cfg.change_prob_baseline);
  const double hamming =
      static_cast<double>(popcount32(op_a) + popcount32(op_b));
  w += cfg.data_weight * (hamming / 64.0 - 0.5);
  return w > 0.05 ? w : 0.05;  // energy never goes negative-ish
}

}  // namespace swallow
