// Core power model reproducing Eq. (1), Fig. 3 and Fig. 4 of the paper.
//
// The model decomposes the measured core-rail power into
//   * a continuous *baseline* equal to the all-threads-idle line of Fig. 3
//     (static leakage plus clock-tree dynamic power), and
//   * a per-issued-instruction *dynamic energy* calibrated so that a core
//     issuing one instruction per cycle (>= 4 active threads) sits exactly
//     on the Eq. (1) heavy-load line Pc = (46 + 0.30 f) mW.
//
// With Nt < 4 active threads the issue rate is Nt·f/4 (Eq. 2) and the model
// lands on the proportional interpolation between the two Fig. 3 lines —
// which is how the hardware behaves, since unused pipeline slots burn no
// issue energy.
//
// Voltage scaling (Fig. 4) follows P = C·V²·f: dynamic terms scale with
// (V/1V)², static leakage with (V/1V).
#pragma once

#include "common/units.h"
#include "energy/params.h"

namespace swallow {

class CorePowerModel {
 public:
  CorePowerModel() = default;
  CorePowerModel(ActivePowerLine active, IdlePowerLine idle,
                 VoltageCurvePoints volts)
      : active_(active), idle_(idle), volts_(volts) {}

  /// Baseline (all threads idle) power at frequency f and supply voltage V.
  Watts baseline_power(MegaHertz f, Volts v) const;

  /// Heavy-load (>= 4 active threads, average instruction mix) power.
  /// At v = 1.0 this is Eq. (1) exactly.
  Watts active_power(MegaHertz f, Volts v) const;

  /// Power with `active_threads` runnable threads (interpolates Fig. 3).
  Watts power(MegaHertz f, Volts v, double active_threads) const;

  /// Dynamic energy charged per issued instruction so that full-rate issue
  /// reproduces active_power().  `weight` is the instruction-class factor
  /// (1.0 = average mix).
  Joules instruction_energy(MegaHertz f, Volts v, double weight = 1.0) const;

  /// Minimum reliable supply voltage at frequency f (§III.B measurement,
  /// linear in between; clamped outside the measured range).
  Volts min_voltage(MegaHertz f) const;

  /// Nominal (1 V) supply.
  Volts nominal_voltage() const { return volts_.v_nominal; }

  const ActivePowerLine& active_line() const { return active_; }
  const IdlePowerLine& idle_line() const { return idle_; }

 private:
  // Split a power line into static (V-linear) and dynamic (V²-scaled) parts.
  static Watts scale_line(double static_mw, double dyn_mw_per_mhz, MegaHertz f,
                          Volts v, Volts v_nom);

  ActivePowerLine active_{};
  IdlePowerLine idle_{};
  VoltageCurvePoints volts_{};
};

}  // namespace swallow
