#include "energy/supply.h"

#include "common/strings.h"

namespace swallow {

Watts Rail::power() const {
  Watts sum = 0;
  for (const PowerTrace* t : traces_) sum += t->level();
  for (const auto& f : extra_) sum += f();
  return sum;
}

SliceSupplies::SliceSupplies() {
  rails_.reserve(kRailCount);
  for (int i = 0; i < kCoreRails; ++i) {
    rails_.emplace_back(strprintf("core-rail-%d", i), 1.0);
  }
  rails_.emplace_back("io-rail", 3.3);
  smps_.assign(kRailCount, Smps{});
}

Watts SliceSupplies::input_power() const {
  Watts total = 0;
  for (int i = 0; i < kRailCount; ++i) {
    total += smps_[static_cast<std::size_t>(i)].input_power(
        rails_[static_cast<std::size_t>(i)].power());
  }
  return total;
}

Watts SliceSupplies::conversion_loss() const {
  Watts total = 0;
  for (int i = 0; i < kRailCount; ++i) {
    total += smps_[static_cast<std::size_t>(i)].loss(
        rails_[static_cast<std::size_t>(i)].power());
  }
  return total;
}

}  // namespace swallow
