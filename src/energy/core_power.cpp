#include "energy/core_power.h"

#include <algorithm>

#include "common/error.h"
#include "common/mathutil.h"

namespace swallow {

Watts CorePowerModel::scale_line(double static_mw, double dyn_mw_per_mhz,
                                 MegaHertz f, Volts v, Volts v_nom) {
  const double vr = v / v_nom;
  return milliwatts(static_mw * vr + dyn_mw_per_mhz * f * vr * vr);
}

Watts CorePowerModel::baseline_power(MegaHertz f, Volts v) const {
  return scale_line(idle_.static_mw, idle_.dyn_mw_per_mhz, f, v,
                    volts_.v_nominal);
}

Watts CorePowerModel::active_power(MegaHertz f, Volts v) const {
  return scale_line(active_.static_mw, active_.dyn_mw_per_mhz, f, v,
                    volts_.v_nominal);
}

Watts CorePowerModel::power(MegaHertz f, Volts v, double active_threads) const {
  require(active_threads >= 0, "CorePowerModel: negative thread count");
  const double frac = std::min(active_threads, 4.0) / 4.0;
  const Watts idle = baseline_power(f, v);
  return idle + frac * (active_power(f, v) - idle);
}

Joules CorePowerModel::instruction_energy(MegaHertz f, Volts v,
                                          double weight) const {
  // Full-rate issue is f MHz instructions per second; the issue-dynamic
  // power is the gap between the two Fig. 3 lines at this frequency.
  const Watts gap = active_power(f, v) - baseline_power(f, v);
  const double issue_rate_hz = f * 1e6;
  return weight * gap / issue_rate_hz;
}

Volts CorePowerModel::min_voltage(MegaHertz f) const {
  return lerp_clamped(f, volts_.f_lo_mhz, volts_.v_lo, volts_.f_hi_mhz,
                      volts_.v_hi);
}

}  // namespace swallow
