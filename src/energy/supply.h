// Power-delivery model: voltage rails aggregating component power traces,
// and the switch-mode supplies that feed them (§II: five SMPS per slice —
// four 1 V rails of four cores each, one 3.3 V I/O rail).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/units.h"
#include "energy/ledger.h"

namespace swallow {

/// A voltage rail summing the instantaneous draw of attached sources.
/// Sources are non-owning: either PowerTrace levels kept current by their
/// owners, or arbitrary callables.
class Rail {
 public:
  Rail(std::string name, Volts volts) : name_(std::move(name)), volts_(volts) {}

  void attach(const PowerTrace* trace) { traces_.push_back(trace); }
  void attach(std::function<Watts()> source) {
    extra_.push_back(std::move(source));
  }

  /// Instantaneous power drawn from this rail.
  Watts power() const;

  /// Instantaneous current (P / V).
  double current_amps() const { return power() / volts_; }

  const std::string& name() const { return name_; }
  Volts voltage() const { return volts_; }

 private:
  std::string name_;
  Volts volts_;
  std::vector<const PowerTrace*> traces_;
  std::vector<std::function<Watts()>> extra_;
};

/// Switch-mode power supply: input power = output/efficiency + quiescent.
/// Efficiency calibrated so a fully loaded slice draws the paper's
/// ~4.5 W (§III.A) from its 5 V input.
struct Smps {
  double efficiency = 0.93;
  Watts quiescent = milliwatts(25.0);

  Watts input_power(Watts output) const {
    return output / efficiency + quiescent;
  }
  Watts loss(Watts output) const { return input_power(output) - output; }
};

/// The five measurable supplies of one Swallow slice, each fed from the
/// main 5 V input through its own SMPS with shunt probe points.
class SliceSupplies {
 public:
  SliceSupplies();

  /// Rails 0..3 are the 1 V core rails (two chips = four cores each);
  /// rail 4 is the 3.3 V I/O rail.
  static constexpr int kCoreRails = 4;
  static constexpr int kIoRail = 4;
  static constexpr int kRailCount = 5;

  Rail& rail(int i) { return rails_.at(static_cast<std::size_t>(i)); }
  const Rail& rail(int i) const { return rails_.at(static_cast<std::size_t>(i)); }
  const Smps& smps(int i) const { return smps_.at(static_cast<std::size_t>(i)); }

  /// Total power drawn from the slice's 5 V input right now.
  Watts input_power() const;

  /// Conversion losses across all five supplies right now.
  Watts conversion_loss() const;

 private:
  std::vector<Rail> rails_;
  std::vector<Smps> smps_;
};

}  // namespace swallow
