// Whole-node power model reproducing the Fig. 2 decomposition.
//
// A *node* is one core plus its switch, its share of the DC-DC conversion
// chain and board support logic — 260 mW at the nominal operating point
// (500 MHz, 1 V, fully loaded).  The components scale with frequency,
// voltage and utilisation so the model stays meaningful away from the
// nominal point:
//   * compute:            ∝ f · util · V²      (78 mW nominal)
//   * static:             ∝ V                  (68 mW nominal)
//   * network interface:  base + ∝ link util   (58 mW nominal)
//   * DC-DC & I/O:        conversion overhead fraction of delivered power
//                         plus constant I/O    (46 mW nominal)
//   * other:              constant             (10 mW nominal)
#pragma once

#include "common/units.h"
#include "energy/params.h"

namespace swallow {

struct NodeOperatingPoint {
  MegaHertz f_mhz = 500.0;
  Volts v = 1.0;
  double compute_util = 1.0;  // fraction of issue slots used, [0,1]
  double link_util = 1.0;     // fraction of link bandwidth in use, [0,1]
};

struct NodePowerBreakdown {
  Watts compute = 0;
  Watts statics = 0;
  Watts network_interface = 0;
  Watts dcdc_io = 0;
  Watts other = 0;
  Watts total() const {
    return compute + statics + network_interface + dcdc_io + other;
  }
};

class NodePowerModel {
 public:
  NodePowerModel() = default;
  explicit NodePowerModel(NodeBreakdownNominal nominal) : nominal_(nominal) {}

  NodePowerBreakdown breakdown(const NodeOperatingPoint& op) const;

  /// Per-slice constant not attributable to a node: Ethernet module socket,
  /// oscillators, LEDs (§III.A's ≈4.5 W/slice vs 16 × 260 mW).
  Watts slice_support_power() const { return milliwatts(slice_support_mw_); }

  const NodeBreakdownNominal& nominal() const { return nominal_; }

 private:
  NodeBreakdownNominal nominal_{};
  // 16 × 260 mW = 4.16 W; the paper says "approximately 4.5 W/slice".  The
  // ~0.34 W remainder is board-level support.
  double slice_support_mw_ = 340.0;
};

}  // namespace swallow
