// Energy accounting: every joule the simulator spends is attributed to a
// named account.  The ledger is the ground truth the measurement subsystem
// (shunts + ADC) samples, and what the benches reconcile against — the
// "energy transparency" property of the paper, made literal.
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

#include "common/stateio.h"
#include "common/units.h"

namespace swallow {

/// Where energy goes.  Mirrors the Fig. 2 decomposition plus the Table I
/// link classes.
enum class EnergyAccount : std::size_t {
  kCoreBaseline = 0,    // idle-line power: static + clock tree
  kCoreInstructions,    // per-instruction dynamic energy
  kNetworkInterface,    // switch + link-port logic
  kLinkOnChip,
  kLinkBoardVertical,
  kLinkBoardHorizontal,
  kLinkCable,
  kDcDcIo,              // conversion losses and I/O rail
  kOther,               // support logic, LEDs, oscillators
  kEthernetBridge,
  kCount,
};

std::string_view to_string(EnergyAccount a);

/// Observer of every charge flowing into one EnergyLedger.  The energy
/// attribution layer (src/obs/energy_attr.h) implements this to mirror the
/// ledger's exact `+=` sequence into fine-grained buckets; because the sink
/// sees the identical (account, joules) stream in the identical order, its
/// shadow totals equal the ledger totals bit for bit — the conservation
/// property is by construction, not by tolerance.
class EnergyAttrSink {
 public:
  virtual ~EnergyAttrSink() = default;
  virtual void on_charge(EnergyAccount account, Joules j) = 0;
};

/// Per-account joule totals.
class EnergyLedger {
 public:
  void add(EnergyAccount account, Joules j) {
    totals_[static_cast<std::size_t>(account)] += j;
    if (sink_ != nullptr) sink_->on_charge(account, j);
  }

  /// Attach/detach the attribution mirror.  One pointer test per charge
  /// when detached — cheap enough for the batched fast-run loop.
  void set_attr_sink(EnergyAttrSink* sink) { sink_ = sink; }
  EnergyAttrSink* attr_sink() const { return sink_; }

  Joules total(EnergyAccount account) const {
    return totals_[static_cast<std::size_t>(account)];
  }

  Joules grand_total() const {
    Joules sum = 0;
    for (Joules j : totals_) sum += j;
    return sum;
  }

  /// Sum of the four link accounts.
  Joules link_total() const {
    return total(EnergyAccount::kLinkOnChip) +
           total(EnergyAccount::kLinkBoardVertical) +
           total(EnergyAccount::kLinkBoardHorizontal) +
           total(EnergyAccount::kLinkCable);
  }

  void reset() { totals_.fill(0.0); }

  /// Bit-exact round trip: totals are serialized as raw double bits so a
  /// restored run reports identical joules to an uninterrupted one.
  void save_state(StateWriter& w) const {
    for (Joules j : totals_) w.f64(j);
  }
  void load_state(StateReader& r) {
    for (Joules& j : totals_) j = r.f64();
  }

 private:
  std::array<Joules, static_cast<std::size_t>(EnergyAccount::kCount)> totals_{};
  EnergyAttrSink* sink_ = nullptr;  // wiring, not state: never serialized
};

/// Piecewise-constant power source integrated into a ledger account.
/// Components call set_level() whenever their power draw changes; the
/// interval since the previous change is charged at the old level.
class PowerTrace {
 public:
  PowerTrace(EnergyLedger& ledger, EnergyAccount account)
      : ledger_(&ledger), account_(account) {}

  /// Change the power level at time `now`, charging the elapsed interval.
  void set_level(TimePs now, Watts watts) {
    settle(now);
    level_ = watts;
  }

  /// Charge energy up to `now` at the current level without changing it.
  void settle(TimePs now) {
    if (now > last_) {
      const Joules j = energy_over(level_, now - last_);
      ledger_->add(account_, j);
      local_total_ += j;
      last_ = now;
    }
  }

  /// Charge a one-off energy amount at `now` (per-instruction / per-token
  /// costs that are not modelled as a continuous level).
  void add_pulse(Joules j) {
    ledger_->add(account_, j);
    local_total_ += j;
  }

  Watts level() const { return level_; }
  TimePs last_update() const { return last_; }

  /// Energy this trace alone has charged (per-component attribution on top
  /// of the per-account ledger totals).
  Joules total() const { return local_total_; }

  /// Ledger/account are wiring; level, settle point and local total are
  /// state.  Deliberately no settle() at save time — that would change the
  /// float summation order versus an uninterrupted run.
  void save_state(StateWriter& w) const {
    w.f64(level_);
    w.i64(last_);
    w.f64(local_total_);
  }
  void load_state(StateReader& r) {
    level_ = r.f64();
    last_ = r.i64();
    local_total_ = r.f64();
  }

 private:
  EnergyLedger* ledger_;
  EnergyAccount account_;
  Watts level_ = 0.0;
  TimePs last_ = 0;
  Joules local_total_ = 0.0;
};

}  // namespace swallow
