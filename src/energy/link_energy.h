// Per-link-class electrical parameters (Table I of the paper).
#pragma once

#include <string_view>

#include "common/units.h"
#include "energy/ledger.h"
#include "energy/params.h"

namespace swallow {

/// The four physical link classes of a Swallow system.
enum class LinkClass {
  kOnChip,           // between the two switches inside an XS1-L2 package
  kBoardVertical,    // PCB trace, vertical-layer neighbours on a slice
  kBoardHorizontal,  // PCB trace, horizontal-layer neighbours on a slice
  kOffBoardCable,    // 30 cm FFC ribbon between slices
};

constexpr std::string_view to_string(LinkClass c) {
  switch (c) {
    case LinkClass::kOnChip: return "on-chip";
    case LinkClass::kBoardVertical: return "on-board vertical";
    case LinkClass::kBoardHorizontal: return "on-board horizontal";
    case LinkClass::kOffBoardCable: return "off-board FFC";
  }
  return "?";
}

constexpr const LinkClassParams& link_params(LinkClass c) {
  switch (c) {
    case LinkClass::kOnChip: return kOnChipLink;
    case LinkClass::kBoardVertical: return kBoardVerticalLink;
    case LinkClass::kBoardHorizontal: return kBoardHorizontalLink;
    case LinkClass::kOffBoardCable: return kOffBoardFfcLink;
  }
  return kOnChipLink;
}

/// Ledger account a link class charges to.
constexpr EnergyAccount link_account(LinkClass c) {
  switch (c) {
    case LinkClass::kOnChip: return EnergyAccount::kLinkOnChip;
    case LinkClass::kBoardVertical: return EnergyAccount::kLinkBoardVertical;
    case LinkClass::kBoardHorizontal: return EnergyAccount::kLinkBoardHorizontal;
    case LinkClass::kOffBoardCable: return EnergyAccount::kLinkCable;
  }
  return EnergyAccount::kLinkOnChip;
}

/// Energy for one transferred bit.  Off-board cable energy is dominated by
/// cable capacitance (§II), so it scales linearly with length from the
/// 30 cm Table I reference.
constexpr Joules link_energy_per_bit(LinkClass c, double cable_length_cm =
                                                      kFfcReferenceLengthCm) {
  const LinkClassParams& p = link_params(c);
  double pj = p.energy_pj_per_bit;
  if (c == LinkClass::kOffBoardCable) {
    pj *= cable_length_cm / kFfcReferenceLengthCm;
  }
  return picojoules(pj);
}

/// Architectural maximum data rate for a class (§V.C), as opposed to the
/// derated Table I operating rate Swallow ships with.
constexpr MegabitsPerSecond link_max_rate(LinkClass c) {
  return c == LinkClass::kOnChip ? kOnChipLinkMaxMbps : kExternalLinkMaxMbps;
}

/// Operating rate grade for a whole system.
enum class LinkGrade {
  kSwallowDefault,  // Table I rates: 250 Mbit/s on-chip, 62.5 Mbit/s external
  kArchitecturalMax  // §V.C rates: 500 Mbit/s on-chip, 125 Mbit/s external
};

constexpr MegabitsPerSecond link_rate(LinkClass c, LinkGrade g) {
  if (g == LinkGrade::kArchitecturalMax) return link_max_rate(c);
  return link_params(c).data_rate_mbps;
}

}  // namespace swallow
