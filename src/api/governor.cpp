#include "api/governor.h"

#include <algorithm>

#include "common/error.h"

namespace swallow {

DfsGovernor::DfsGovernor(Simulator& sim, Core& core, Config cfg)
    : sim_(sim), core_(&core), cfg_(cfg) {
  require(cfg_.period > 0, "DfsGovernor: period must be positive");
  require(cfg_.utilisation_lo < cfg_.utilisation_hi,
          "DfsGovernor: utilisation band inverted");
}

void DfsGovernor::start() {
  require(!running_, "DfsGovernor: already running");
  running_ = true;
  last_retired_ = core_->instructions_retired();
  sim_.after(cfg_.period, [this] { tick(); });
}

void DfsGovernor::tick() {
  if (!running_) return;
  const std::uint64_t retired = core_->instructions_retired();
  const double cycles =
      core_->frequency() * 1e6 * to_seconds(cfg_.period);
  // Normalise by what the live thread count could retire (Eq. 2), so a
  // single compute-bound thread reads as fully utilised and only genuine
  // blocking (communication waits) reads as headroom.
  const double capacity_frac =
      std::min(4, std::max(1, core_->live_threads())) / 4.0;
  const double utilisation =
      static_cast<double>(retired - last_retired_) / (cycles * capacity_frac);
  last_retired_ = retired;

  MegaHertz f = core_->frequency();
  if (utilisation > cfg_.utilisation_hi && f < cfg_.f_max) {
    f = std::min(cfg_.f_max, f + cfg_.step);
    core_->set_frequency(f);
    ++adjustments_;
  } else if (utilisation < cfg_.utilisation_lo && f > cfg_.f_min) {
    f = std::max(cfg_.f_min, f - cfg_.step);
    core_->set_frequency(f);
    ++adjustments_;
  }
  trace_.push_back(Decision{sim_.now(), utilisation, f});
  sim_.after(cfg_.period, [this] { tick(); });
}

}  // namespace swallow
