// nOS-lite: a nano-sized distributed service runtime, modelled on the
// companion system the paper cites ([3]: "nOS: a nano-sized distributed
// operating system for resource optimisation on many-core systems").
//
// Each participating core runs a generated *service kernel* (in Swallow
// assembly) that listens on its chanend 0 for request packets
//   [reply chanend id][service index][argument]   (three words, END-framed)
// dispatches to a registered handler, and sends the result word back to
// the reply chanend — which may belong to another core or to an Ethernet
// bridge, so the same kernel serves both core-to-core and host RPC.
// Service index 0xFFFFFFFF shuts the kernel down.
//
// Handler contract: the argument arrives in r0 and the result is returned
// in r0; handlers may clobber r1-r3 and r6-r11 but must preserve r4, r5
// and sp, and must end with `ret`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/core.h"
#include "arch/resource.h"

namespace swallow {

class NosNode {
 public:
  static constexpr std::uint32_t kShutdownService = 0xFFFFFFFF;

  explicit NosNode(Core& core) : core_(&core) {}

  /// Register a service; returns its index.  `body` is assembly ending in
  /// `ret` (see the handler contract above).
  int add_service(const std::string& name, const std::string& body);

  /// Assemble the kernel + services, load and start the core.
  void start();

  /// The chanend requests are sent to.
  ResourceId request_chanend() const {
    return make_resource_id(core_->node_id(), 0, ResourceType::kChanend);
  }

  Core& core() { return *core_; }
  int service_count() const { return static_cast<int>(services_.size()); }
  const std::string& kernel_source() const { return source_; }

  /// Wire form of one request packet.
  static std::vector<std::uint8_t> encode_request(ResourceId reply_to,
                                                  std::uint32_t service,
                                                  std::uint32_t argument);

  /// Assembly for a core-side client that calls `service` on `server`
  /// with `argument`, stores the result word at label `result`, and
  /// exits.  (Client cores allocate their chanend 0 for the reply.)
  static std::string client_source(ResourceId server_request_chanend,
                                   NodeId client_node, std::uint32_t service,
                                   std::uint32_t argument);

 private:
  struct Service {
    std::string name;
    std::string body;
  };

  Core* core_;
  std::vector<Service> services_;
  std::string source_;
  bool started_ = false;
};

}  // namespace swallow
