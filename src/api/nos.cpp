#include "api/nos.h"

#include "arch/assembler.h"
#include "common/error.h"
#include "common/strings.h"

namespace swallow {

int NosNode::add_service(const std::string& name, const std::string& body) {
  require(!started_, "NosNode: cannot add services after start");
  services_.push_back(Service{name, body});
  return static_cast<int>(services_.size()) - 1;
}

void NosNode::start() {
  require(!started_, "NosNode: already started");
  require(!services_.empty(), "NosNode: no services registered");
  started_ = true;

  std::string src = R"(
  kernel:
      getr  r4, 2          # chanend 0: the request port
  kloop:
      in    r5, r4         # reply chanend id (0 = fire-and-forget)
      in    r6, r4         # service index
      in    r0, r4         # argument
      chkct r4, 1
      not   r7, r6
      bf    r7, kexit      # ~service == 0  <=>  shutdown
      # bounds check the service index
      ldc   r7, svccount
      ldw   r7, r7, 0
      lsu   r7, r6, r7
      bf    r7, kloop      # unknown service: drop the request
      # dispatch through the service table
      ldc   r8, svctab
      shli  r9, r6, 2
      add   r8, r8, r9
      ldw   r9, r8, 0      # handler byte address
      shri  r9, r9, 2      # -> word index
      ldc   lr, kret
      shri  lr, lr, 2
      bau   r9
  kret:
      bf    r5, kloop      # no reply requested
      setd  r4, r5
      out   r4, r0
      outct r4, 1
      bu    kloop
  kexit:
      texit
)";
  for (std::size_t i = 0; i < services_.size(); ++i) {
    src += strprintf("svc_%zu:   # %s\n", i, services_[i].name.c_str());
    src += services_[i].body;
    if (src.back() != '\n') src += '\n';
  }
  src += "svctab:\n";
  for (std::size_t i = 0; i < services_.size(); ++i) {
    src += strprintf("    .word svc_%zu\n", i);
  }
  src += strprintf("svccount:\n    .word %zu\n", services_.size());

  source_ = src;
  core_->load(assemble(src));
  core_->start();
}

std::vector<std::uint8_t> NosNode::encode_request(ResourceId reply_to,
                                                  std::uint32_t service,
                                                  std::uint32_t argument) {
  std::vector<std::uint8_t> out;
  for (std::uint32_t w : {reply_to, service, argument}) {
    out.push_back(static_cast<std::uint8_t>(w));
    out.push_back(static_cast<std::uint8_t>(w >> 8));
    out.push_back(static_cast<std::uint8_t>(w >> 16));
    out.push_back(static_cast<std::uint8_t>(w >> 24));
  }
  return out;
}

std::string NosNode::client_source(ResourceId server_request_chanend,
                                   NodeId client_node, std::uint32_t service,
                                   std::uint32_t argument) {
  const ResourceId own =
      make_resource_id(client_node, 0, ResourceType::kChanend);
  return strprintf(R"(
      getr  r0, 2          # chanend 0: our reply port
      ldc   r1, 0x%x
      ldch  r1, 0x%04x     # the server's request chanend
      setd  r0, r1
      ldc   r2, 0x%x
      ldch  r2, 0x%04x     # our own chanend id (reply-to)
      out   r0, r2
      ldc   r2, %u
      out   r0, r2         # service index
      ldc   r2, 0x%x
      ldch  r2, 0x%x       # argument
      out   r0, r2
      outct r0, 1
      in    r3, r0         # result
      chkct r0, 1
      ldc   r4, result
      stw   r3, r4, 0
      texit
  result: .word 0
  )",
                   server_request_chanend >> 16,
                   server_request_chanend & 0xFFFF, own >> 16, own & 0xFFFF,
                   service, argument >> 16, argument & 0xFFFF);
}

}  // namespace swallow
