// Task-level programming layer (§I: "support a variety of parallel
// application types ... groups of tasks, pipelines, client/server, message
// passing and shared memory").
//
// A TaskSpec describes one task as a sequence of compute / send / receive
// steps; AppBuilder places tasks on cores, wires logical channels between
// them and *compiles each task to Swallow assembly*, so task-level
// workloads run on the real ISA interpreter, network and energy models
// rather than on a separate analytic model.
//
// Channel wiring is deterministic: each task allocates its channel ends in
// declaration order, so peers know each other's chanend indices at code
// generation time.  Channel-end ids are kept in a data table in SRAM and
// loaded before each transfer, which allows an arbitrary number of
// channels per task.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/core.h"
#include "board/system.h"

namespace swallow {

struct TaskStep {
  enum class Op {
    kCompute,  // amount = instructions to execute
    kSend,     // amount = bytes, channel = logical channel index
    kRecv,     // amount = bytes, channel = logical channel index
    kDelay,    // amount = 100 MHz reference ticks to sleep (rate limiting)
  };
  Op op;
  std::uint64_t amount = 0;
  int channel = -1;

  static TaskStep compute(std::uint64_t instructions) {
    return {Op::kCompute, instructions, -1};
  }
  static TaskStep send(int channel, std::uint64_t bytes) {
    return {Op::kSend, bytes, channel};
  }
  static TaskStep recv(int channel, std::uint64_t bytes) {
    return {Op::kRecv, bytes, channel};
  }
  /// Sleep for `microseconds` (a blocked thread burns no issue energy).
  static TaskStep delay_us(std::uint64_t microseconds) {
    return {Op::kDelay, microseconds * 100, -1};
  }
};

struct TaskSpec {
  std::vector<TaskStep> steps;
  int iterations = 1;  // the whole step sequence repeats this many times
};

class AppBuilder {
 public:
  explicit AppBuilder(SwallowSystem& system) : sys_(&system) {}

  /// Place a task on a core; returns the task id.  Several tasks may be
  /// placed on the same core: each runs as its own hardware thread (up to
  /// eight per core), sharing the core's chanends and issue slots per
  /// Eq. (2).
  int add_task(TaskSpec spec, int chip_x, int chip_y, Layer layer);

  /// Connect a unidirectional logical channel; returns the channel id used
  /// in TaskStep::send/recv.
  int connect(int from_task, int to_task);

  /// Replace a task's steps (patterns that wire channels after placing
  /// tasks use this; only valid before start()).
  void set_steps(int task, std::vector<TaskStep> steps);

  /// Assign `channel` to the first step of `op` kind whose channel is
  /// still the -1 placeholder.
  void patch_channel(int task, TaskStep::Op op, int channel);

  /// Generate, load and start every task's program.
  void start();

  /// Run until all tasks finish (or `timeout`); returns true on success.
  bool run_to_completion(TimePs timeout);

  /// Generated assembly for a task (inspection / debugging).
  const std::string& program(int task) const {
    return tasks_.at(static_cast<std::size_t>(task)).source;
  }
  Core& task_core(int task) {
    return *tasks_.at(static_cast<std::size_t>(task)).core;
  }
  int task_count() const { return static_cast<int>(tasks_.size()); }

  /// Completion time of the whole application (valid after
  /// run_to_completion succeeded).
  TimePs completion_time() const { return completion_time_; }

  /// Total payload bytes each task sent (for EC accounting).
  std::uint64_t bytes_sent(int task) const {
    return tasks_.at(static_cast<std::size_t>(task)).bytes_sent;
  }

 private:
  struct ChannelEnd {
    int channel = -1;   // logical channel id
    bool is_output = false;
    int local_index = -1;  // chanend index on the owning core
  };
  struct TaskInfo {
    TaskSpec spec;
    Core* core = nullptr;
    NodeId node = 0;
    std::vector<ChannelEnd> ends;  // in allocation order
    std::string source;
    std::uint64_t bytes_sent = 0;
  };
  struct ChannelInfo {
    int from_task = -1;
    int to_task = -1;
    int from_end = -1;  // chanend index on the sender core
    int to_end = -1;    // chanend index on the receiver core
  };

  /// Combined program for all tasks placed on one core (`group` holds
  /// task ids; task 0 of the group runs on thread 0, the rest as slaves).
  std::string generate_core_program(const std::vector<int>& group) const;
  std::string generate_task_body(int task_id, int group_pos) const;

  SwallowSystem* sys_;
  std::vector<TaskInfo> tasks_;
  std::vector<ChannelInfo> channels_;
  bool started_ = false;
  TimePs completion_time_ = 0;
};

}  // namespace swallow
