// Run-time frequency governor (§III.B: "The XS1-L used in Swallow supports
// dynamic frequency scaling, based on run-time load factors").
//
// The governor samples a core's issue-slot utilisation (instructions
// retired per core cycle) every `period` and steps the clock frequency so
// utilisation tracks a target band: a saturated core is raised towards
// 500 MHz, an underused core is lowered towards 71 MHz.  With the core's
// auto_dvfs option the supply voltage follows, yielding the full Fig. 4
// saving.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/core.h"
#include "energy/params.h"
#include "sim/simulator.h"

namespace swallow {

class DfsGovernor {
 public:
  struct Config {
    TimePs period = microseconds(20.0);
    double utilisation_hi = 0.90;  // above: raise frequency
    double utilisation_lo = 0.55;  // below: lower frequency
    MegaHertz f_min = kMinCoreFrequencyMhz;
    MegaHertz f_max = kMaxCoreFrequencyMhz;
    MegaHertz step = 71.0;  // multiplicative-ish step in MHz
  };

  DfsGovernor(Simulator& sim, Core& core, Config cfg);

  /// Begin governing (schedules the periodic controller).
  void start();
  void stop() { running_ = false; }

  MegaHertz current_frequency() const { return core_->frequency(); }
  std::uint64_t adjustments() const { return adjustments_; }

  /// (time, frequency) decision trace for reporting.
  struct Decision {
    TimePs time;
    double utilisation;
    MegaHertz frequency;
  };
  const std::vector<Decision>& trace() const { return trace_; }

 private:
  void tick();

  Simulator& sim_;
  Core* core_;
  Config cfg_;
  bool running_ = false;
  std::uint64_t last_retired_ = 0;
  std::uint64_t adjustments_ = 0;
  std::vector<Decision> trace_;
};

}  // namespace swallow
