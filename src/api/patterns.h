// Parallel application patterns built on AppBuilder: the structures the
// paper's aims call out (§I) — pipelines, task farms (client/server),
// neighbour rings, and the bisection stress pattern used by the §V.D
// computation-to-communication analysis.
#pragma once

#include <cstdint>
#include <vector>

#include "api/taskgen.h"
#include "board/system.h"

namespace swallow {

/// Core placement in global chip coordinates.
struct Placement {
  int chip_x = 0;
  int chip_y = 0;
  Layer layer = Layer::kVertical;
};

/// Flat enumeration of all cores in a system: chip-major, vertical node
/// first — the natural "next core" order used by the default placements.
Placement linear_placement(const SystemConfig& cfg, int index);

struct PipelineConfig {
  int stages = 4;
  int items = 16;                     // items flowing through the pipeline
  std::uint64_t work_per_item = 3000; // instructions per stage per item
  std::uint64_t bytes_per_item = 64;  // payload between stages
};

/// Build a linear pipeline; stage i runs at `places[i]`.  Returns the task
/// ids, stage order.
std::vector<int> build_pipeline(AppBuilder& app, const PipelineConfig& cfg,
                                const std::vector<Placement>& places);

struct FarmConfig {
  int workers = 3;
  int rounds = 8;                     // synchronous scatter/gather rounds
  std::uint64_t work_per_item = 5000; // instructions per worker per round
  std::uint64_t bytes_per_item = 64;  // request and reply payload
};

/// Build a client/server task farm: the master at `places[0]`, workers at
/// `places[1..]`.  Each round the master scatters one item to every worker
/// and gathers every reply.  Returns {master, workers...}.
std::vector<int> build_farm(AppBuilder& app, const FarmConfig& cfg,
                            const std::vector<Placement>& places);

struct RingConfig {
  int tasks = 8;
  int rounds = 16;
  std::uint64_t work_per_round = 2000;
  std::uint64_t bytes_per_round = 32;
};

/// Build a unidirectional neighbour ring (each task sends to its successor
/// and receives from its predecessor every round).
std::vector<int> build_ring(AppBuilder& app, const RingConfig& cfg,
                            const std::vector<Placement>& places);

struct TreeReduceConfig {
  int leaves = 8;
  int fanout = 2;                    // children per inner node
  std::uint64_t work_per_leaf = 4000;
  /// Reduced values are single words.  A one-word message (4 data tokens
  /// + END) is fully absorbed by the destination chanend's buffer, so a
  /// not-yet-consumed value never holds network links — which makes the
  /// pattern deadlock-free for ANY placement.  Larger messages can
  /// deadlock through shared last-hop links when siblings contend (the
  /// §V.D wormhole hazard).
  std::uint64_t bytes_per_value = 4;
  std::uint64_t combine_work = 1000; // per child combined at an inner node
  /// Build multi-word configurations anyway.  Off by default because they
  /// can deadlock (above); the fault layer's watchdog tests construct the
  /// hazardous shape on purpose to prove the deadlock is *diagnosed*.
  bool acknowledge_deadlock_hazard = false;
};

/// Build a k-ary reduction tree (a "group of tasks", §I): every leaf
/// computes a partial result and sends it up; inner nodes combine their
/// children's values and forward; the root finishes the reduction.
/// Placements are consumed leaves-first, then level by level up to the
/// root.  Returns all task ids with the root last.
std::vector<int> build_tree_reduce(AppBuilder& app,
                                   const TreeReduceConfig& cfg,
                                   const std::vector<Placement>& places);

struct BisectionConfig {
  std::uint64_t bytes_per_pair = 4096;  // payload each pair moves south
  std::uint64_t work_per_pair = 0;      // optional compute between sends
  int iterations = 1;
};

/// Pair every core in the top half of the machine with the core at the
/// same (x, layer) in the bottom half and stream `bytes_per_pair` across
/// the vertical bisection (the worst-case pattern of §V.D).  Returns the
/// sender task ids.
std::vector<int> build_bisection_stress(AppBuilder& app,
                                        const SystemConfig& cfg,
                                        const BisectionConfig& bcfg);

}  // namespace swallow
