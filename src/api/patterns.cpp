#include "api/patterns.h"

#include "common/error.h"

namespace swallow {

Placement linear_placement(const SystemConfig& cfg, int index) {
  require(index >= 0 && index < cfg.core_count(),
          "linear_placement: index out of range");
  const int chip = index / 2;
  Placement p;
  p.chip_x = chip % cfg.chip_cols();
  p.chip_y = chip / cfg.chip_cols();
  p.layer = index % 2 == 0 ? Layer::kVertical : Layer::kHorizontal;
  return p;
}

std::vector<int> build_pipeline(AppBuilder& app, const PipelineConfig& cfg,
                                const std::vector<Placement>& places) {
  require(cfg.stages >= 2, "pipeline needs at least two stages");
  require(static_cast<int>(places.size()) >= cfg.stages,
          "pipeline: not enough placements");
  std::vector<int> tasks;
  for (int s = 0; s < cfg.stages; ++s) {
    TaskSpec spec;
    spec.iterations = cfg.items;
    if (s == 0) {
      spec.steps = {TaskStep::compute(cfg.work_per_item),
                    TaskStep::send(-1, cfg.bytes_per_item)};
    } else if (s == cfg.stages - 1) {
      spec.steps = {TaskStep::recv(-1, cfg.bytes_per_item),
                    TaskStep::compute(cfg.work_per_item)};
    } else {
      spec.steps = {TaskStep::recv(-1, cfg.bytes_per_item),
                    TaskStep::compute(cfg.work_per_item),
                    TaskStep::send(-1, cfg.bytes_per_item)};
    }
    tasks.push_back(app.add_task(spec, places[static_cast<std::size_t>(s)].chip_x,
                                 places[static_cast<std::size_t>(s)].chip_y,
                                 places[static_cast<std::size_t>(s)].layer));
  }
  // Wire stage i -> i+1 and patch the placeholder channel ids.
  // Channels must be connected before start(); AppBuilder resolves steps by
  // channel id, so rebuild the specs with real ids via a second pass is not
  // possible — instead we rely on connect() returning ids in creation
  // order and fix the steps in place.
  for (int s = 0; s + 1 < cfg.stages; ++s) {
    const int ch = app.connect(tasks[static_cast<std::size_t>(s)],
                               tasks[static_cast<std::size_t>(s + 1)]);
    app.patch_channel(tasks[static_cast<std::size_t>(s)], TaskStep::Op::kSend,
                      ch);
    app.patch_channel(tasks[static_cast<std::size_t>(s + 1)],
                      TaskStep::Op::kRecv, ch);
  }
  return tasks;
}

std::vector<int> build_farm(AppBuilder& app, const FarmConfig& cfg,
                            const std::vector<Placement>& places) {
  require(cfg.workers >= 1, "farm needs at least one worker");
  require(static_cast<int>(places.size()) >= cfg.workers + 1,
          "farm: not enough placements");

  // Master: per round, send one item to each worker then gather replies.
  TaskSpec master_spec;
  master_spec.iterations = cfg.rounds;
  std::vector<int> tasks;
  tasks.push_back(app.add_task(master_spec, places[0].chip_x, places[0].chip_y,
                               places[0].layer));

  for (int w = 0; w < cfg.workers; ++w) {
    TaskSpec wspec;
    wspec.iterations = cfg.rounds;
    wspec.steps = {TaskStep::recv(-1, cfg.bytes_per_item),
                   TaskStep::compute(cfg.work_per_item),
                   TaskStep::send(-1, cfg.bytes_per_item)};
    const Placement& p = places[static_cast<std::size_t>(w + 1)];
    tasks.push_back(app.add_task(wspec, p.chip_x, p.chip_y, p.layer));
  }

  std::vector<TaskStep> master_steps;
  for (int w = 0; w < cfg.workers; ++w) {
    const int request = app.connect(tasks[0], tasks[static_cast<std::size_t>(w + 1)]);
    app.patch_channel(tasks[static_cast<std::size_t>(w + 1)],
                      TaskStep::Op::kRecv, request);
    master_steps.push_back(TaskStep::send(request, cfg.bytes_per_item));
  }
  for (int w = 0; w < cfg.workers; ++w) {
    const int reply = app.connect(tasks[static_cast<std::size_t>(w + 1)], tasks[0]);
    app.patch_channel(tasks[static_cast<std::size_t>(w + 1)],
                      TaskStep::Op::kSend, reply);
    master_steps.push_back(TaskStep::recv(reply, cfg.bytes_per_item));
  }
  app.set_steps(tasks[0], master_steps);
  return tasks;
}

std::vector<int> build_ring(AppBuilder& app, const RingConfig& cfg,
                            const std::vector<Placement>& places) {
  require(cfg.tasks >= 2, "ring needs at least two tasks");
  require(static_cast<int>(places.size()) >= cfg.tasks,
          "ring: not enough placements");
  std::vector<int> tasks;
  for (int i = 0; i < cfg.tasks; ++i) {
    TaskSpec spec;
    spec.iterations = cfg.rounds;
    const Placement& p = places[static_cast<std::size_t>(i)];
    tasks.push_back(app.add_task(spec, p.chip_x, p.chip_y, p.layer));
  }
  std::vector<std::vector<TaskStep>> steps(
      static_cast<std::size_t>(cfg.tasks));
  for (int i = 0; i < cfg.tasks; ++i) {
    const int next = (i + 1) % cfg.tasks;
    const int ch = app.connect(tasks[static_cast<std::size_t>(i)],
                               tasks[static_cast<std::size_t>(next)]);
    steps[static_cast<std::size_t>(i)].push_back(
        TaskStep::send(ch, cfg.bytes_per_round));
    steps[static_cast<std::size_t>(next)].push_back(
        TaskStep::recv(ch, cfg.bytes_per_round));
  }
  for (int i = 0; i < cfg.tasks; ++i) {
    steps[static_cast<std::size_t>(i)].push_back(
        TaskStep::compute(cfg.work_per_round));
    app.set_steps(tasks[static_cast<std::size_t>(i)],
                  steps[static_cast<std::size_t>(i)]);
  }
  return tasks;
}

std::vector<int> build_tree_reduce(AppBuilder& app,
                                   const TreeReduceConfig& cfg,
                                   const std::vector<Placement>& places) {
  require(cfg.leaves >= 2, "tree reduce needs at least two leaves");
  require(cfg.fanout >= 2, "tree reduce needs fanout >= 2");
  require(cfg.bytes_per_value <= 4 || cfg.acknowledge_deadlock_hazard,
          "tree reduce: values above one word can deadlock under sibling "
          "link contention (see TreeReduceConfig)");

  // Build level sizes bottom-up.
  std::vector<int> level_sizes{cfg.leaves};
  while (level_sizes.back() > 1) {
    level_sizes.push_back(
        (level_sizes.back() + cfg.fanout - 1) / cfg.fanout);
  }
  int total = 0;
  for (int s : level_sizes) total += s;
  require(static_cast<int>(places.size()) >= total,
          "tree reduce: not enough placements");

  // Create all tasks level by level (leaves first).
  std::vector<std::vector<int>> levels;
  std::vector<int> all;
  int place_idx = 0;
  for (int s : level_sizes) {
    std::vector<int> level;
    for (int i = 0; i < s; ++i) {
      TaskSpec spec;
      const Placement& p = places[static_cast<std::size_t>(place_idx++)];
      const int t = app.add_task(spec, p.chip_x, p.chip_y, p.layer);
      level.push_back(t);
      all.push_back(t);
    }
    levels.push_back(std::move(level));
  }

  // Leaves: compute then send up.
  std::vector<std::vector<TaskStep>> steps(static_cast<std::size_t>(total));
  auto pos_of = [&](int task) {
    for (std::size_t i = 0; i < all.size(); ++i) {
      if (all[i] == task) return i;
    }
    return std::size_t{0};
  };
  for (int leaf : levels[0]) {
    steps[pos_of(leaf)].push_back(TaskStep::compute(cfg.work_per_leaf));
  }
  // Wire each level into its parents: receives before the parent's own
  // upward send (the deadlock-free discipline).
  for (std::size_t lvl = 0; lvl + 1 < levels.size(); ++lvl) {
    for (std::size_t i = 0; i < levels[lvl].size(); ++i) {
      const int child = levels[lvl][i];
      const int parent =
          levels[lvl + 1][i / static_cast<std::size_t>(cfg.fanout)];
      const int ch = app.connect(child, parent);
      steps[pos_of(child)].push_back(
          TaskStep::send(ch, cfg.bytes_per_value));
      auto& parent_steps = steps[pos_of(parent)];
      // Receives are prepended in child order; combine work after each.
      parent_steps.push_back(TaskStep::recv(ch, cfg.bytes_per_value));
      parent_steps.push_back(TaskStep::compute(cfg.combine_work));
    }
  }
  // Reorder every inner node: all receives+combines already precede the
  // send because sends are appended when the node acts as a child of the
  // next level — which happens after this loop body reaches that level.
  for (int t : all) {
    app.set_steps(t, steps[pos_of(t)]);
  }
  return all;
}

std::vector<int> build_bisection_stress(AppBuilder& app,
                                        const SystemConfig& cfg,
                                        const BisectionConfig& bcfg) {
  const int rows = cfg.chip_rows();
  require(rows % 2 == 0, "bisection: need an even number of chip rows");
  std::vector<int> senders;
  for (int x = 0; x < cfg.chip_cols(); ++x) {
    for (int y = 0; y < rows / 2; ++y) {
      for (Layer layer : {Layer::kVertical, Layer::kHorizontal}) {
        TaskSpec tx;
        tx.iterations = bcfg.iterations;
        TaskSpec rx;
        rx.iterations = bcfg.iterations;
        const int sender =
            app.add_task(tx, x, y, layer);
        const int receiver =
            app.add_task(rx, x, y + rows / 2, layer);
        const int ch = app.connect(sender, receiver);
        std::vector<TaskStep> tx_steps;
        if (bcfg.work_per_pair > 0) {
          tx_steps.push_back(TaskStep::compute(bcfg.work_per_pair));
        }
        tx_steps.push_back(TaskStep::send(ch, bcfg.bytes_per_pair));
        app.set_steps(sender, tx_steps);
        app.set_steps(receiver, {TaskStep::recv(ch, bcfg.bytes_per_pair)});
        senders.push_back(sender);
      }
    }
  }
  return senders;
}

}  // namespace swallow
