#include "api/taskgen.h"

#include <map>

#include "arch/assembler.h"
#include "common/error.h"
#include "common/strings.h"

namespace swallow {

int AppBuilder::add_task(TaskSpec spec, int chip_x, int chip_y, Layer layer) {
  require(!started_, "AppBuilder: cannot add tasks after start");
  require(spec.iterations >= 1 && spec.iterations <= 65535,
          "AppBuilder: iterations out of range");
  TaskInfo info;
  info.spec = std::move(spec);
  info.core = &sys_->core(chip_x, chip_y, layer);
  info.node = info.core->node_id();
  require(!info.core->trapped(), "AppBuilder: core unusable");
  tasks_.push_back(std::move(info));
  return static_cast<int>(tasks_.size()) - 1;
}

int AppBuilder::connect(int from_task, int to_task) {
  require(!started_, "AppBuilder: cannot connect after start");
  TaskInfo& from = tasks_.at(static_cast<std::size_t>(from_task));
  TaskInfo& to = tasks_.at(static_cast<std::size_t>(to_task));
  const int channel = static_cast<int>(channels_.size());
  ChannelInfo ch;
  ch.from_task = from_task;
  ch.to_task = to_task;
  ch.from_end = static_cast<int>(from.ends.size());  // position within task
  ch.to_end = static_cast<int>(to.ends.size());
  from.ends.push_back(ChannelEnd{channel, true, -1});
  to.ends.push_back(ChannelEnd{channel, false, -1});
  channels_.push_back(ch);
  return channel;
}

void AppBuilder::set_steps(int task, std::vector<TaskStep> steps) {
  require(!started_, "AppBuilder: cannot set steps after start");
  tasks_.at(static_cast<std::size_t>(task)).spec.steps = std::move(steps);
}

void AppBuilder::patch_channel(int task, TaskStep::Op op, int channel) {
  require(!started_, "AppBuilder: cannot patch after start");
  for (TaskStep& step : tasks_.at(static_cast<std::size_t>(task)).spec.steps) {
    if (step.op == op && step.channel == -1) {
      step.channel = channel;
      return;
    }
  }
  throw Error("AppBuilder::patch_channel: no unpatched step of that kind");
}

std::string AppBuilder::generate_task_body(int task_id, int group_pos) const {
  const TaskInfo& task = tasks_[static_cast<std::size_t>(task_id)];
  std::string src;
  // Per-thread table base registers (registers are per hardware thread).
  src += "    ldc r8, chtab\n";
  src += "    ldc r9, dsttab\n";
  src += strprintf("    ldc r10, %d\nt%d_main:\n", task.spec.iterations,
                   group_pos);

  int label = 0;
  auto find_end = [&](int channel, bool output) -> const ChannelEnd* {
    for (const ChannelEnd& e : task.ends) {
      if (e.channel == channel && e.is_output == output) return &e;
    }
    return nullptr;
  };

  for (const TaskStep& step : task.spec.steps) {
    switch (step.op) {
      case TaskStep::Op::kCompute: {
        // 3 retired instructions per loop iteration (add/subi/bt).
        std::uint64_t remaining = step.amount / 3;
        while (remaining > 0) {
          const std::uint64_t chunk = std::min<std::uint64_t>(remaining, 65535);
          src += strprintf("    ldc r2, %llu\nt%d_w%d:\n",
                           static_cast<unsigned long long>(chunk), group_pos,
                           label);
          src += "    add r6, r6, r7\n";
          src += "    subi r2, r2, 1\n";
          src += strprintf("    bt r2, t%d_w%d\n", group_pos, label);
          ++label;
          remaining -= chunk;
        }
        break;
      }
      case TaskStep::Op::kDelay: {
        require(step.amount >= 1 && step.amount <= 65535,
                "AppBuilder: delay out of range (1..65535 ticks)");
        src += "    gettime r3\n";
        src += strprintf("    ldc r2, %llu\n",
                         static_cast<unsigned long long>(step.amount));
        src += "    add r3, r3, r2\n";
        src += "    timewait r3\n";
        break;
      }
      case TaskStep::Op::kSend:
      case TaskStep::Op::kRecv: {
        const bool is_send = step.op == TaskStep::Op::kSend;
        const ChannelEnd* end = find_end(step.channel, is_send);
        require(end != nullptr,
                "AppBuilder: step uses a channel not connected to this task "
                "in that direction");
        const std::uint64_t words = (step.amount + 3) / 4;
        require(words >= 1 && words <= 65535, "AppBuilder: transfer size");
        src += strprintf("    ldw r1, r8, %d\n", end->local_index);
        src += strprintf("    ldc r2, %llu\nt%d_w%d:\n",
                         static_cast<unsigned long long>(words), group_pos,
                         label);
        src += is_send ? "    out r1, r3\n" : "    in r3, r1\n";
        src += "    subi r2, r2, 1\n";
        src += strprintf("    bt r2, t%d_w%d\n", group_pos, label);
        src += is_send ? "    outct r1, 1\n" : "    chkct r1, 1\n";
        ++label;
        break;
      }
    }
  }
  src += "    subi r10, r10, 1\n";
  src += strprintf("    bt r10, t%d_main\n", group_pos);
  src += "    ret\n";
  return src;
}

std::string AppBuilder::generate_core_program(const std::vector<int>& group) const {
  require(group.size() >= 1 && group.size() <= 8,
          "AppBuilder: 1..8 tasks per core");
  std::string src;

  // ---- Allocate every chanend used by any co-located task, in the order
  // of their (already assigned) local indices.
  int total_ends = 0;
  for (int t : group) {
    total_ends += static_cast<int>(tasks_[static_cast<std::size_t>(t)].ends.size());
  }
  for (int i = 0; i < total_ends; ++i) src += "    getr r1, 2\n";

  // ---- Program destinations for all output ends.
  src += "    ldc r8, chtab\n";
  src += "    ldc r9, dsttab\n";
  for (int t : group) {
    for (const ChannelEnd& end : tasks_[static_cast<std::size_t>(t)].ends) {
      if (!end.is_output) continue;
      src += strprintf("    ldw r1, r8, %d\n", end.local_index);
      src += strprintf("    ldw r2, r9, %d\n", end.local_index);
      src += "    setd r1, r2\n";
    }
  }

  // ---- Fork one slave thread per additional task.
  if (group.size() > 1) {
    src += "    getr r4, 3\n";
    for (std::size_t g = 1; g < group.size(); ++g) {
      src += strprintf("    getst r5, r4\n    tinitpc r5, entry%zu\n", g);
      // Stacks: 4 KiB apart below the main thread's.
      src += strprintf("    ldc r6, %zu\n    tinitsp r5, r6\n",
                       65536 - 4096 * g);
    }
    src += "    msync r4\n";
  }
  src += "    bl task0\n";
  if (group.size() > 1) src += "    tjoin r4\n";
  src += "    texit\n";

  // ---- Slave entries and task bodies.
  for (std::size_t g = 1; g < group.size(); ++g) {
    src += strprintf("entry%zu:\n    bl task%zu\n    texit\n", g, g);
  }
  for (std::size_t g = 0; g < group.size(); ++g) {
    src += strprintf("task%zu:\n", g);
    src += generate_task_body(group[g], static_cast<int>(g));
  }

  // ---- Data tables: own chanend ids and destination chanend ids, indexed
  // by core-local chanend index.
  const NodeId node = tasks_[static_cast<std::size_t>(group[0])].node;
  std::vector<ResourceId> own(static_cast<std::size_t>(total_ends), 0);
  std::vector<ResourceId> dest(static_cast<std::size_t>(total_ends), 0);
  for (int t : group) {
    const TaskInfo& task = tasks_[static_cast<std::size_t>(t)];
    for (const ChannelEnd& end : task.ends) {
      const auto idx = static_cast<std::size_t>(end.local_index);
      own[idx] = make_resource_id(node,
                                  static_cast<std::uint8_t>(end.local_index),
                                  ResourceType::kChanend);
      if (end.is_output) {
        const ChannelInfo& ch = channels_[static_cast<std::size_t>(end.channel)];
        const TaskInfo& peer = tasks_[static_cast<std::size_t>(ch.to_task)];
        const ChannelEnd& peer_end =
            peer.ends[static_cast<std::size_t>(ch.to_end)];
        dest[idx] = make_resource_id(
            peer.node, static_cast<std::uint8_t>(peer_end.local_index),
            ResourceType::kChanend);
      }
    }
  }
  src += "chtab:\n";
  for (ResourceId id : own) src += strprintf("    .word 0x%08x\n", id);
  if (own.empty()) src += "    .word 0\n";
  src += "dsttab:\n";
  for (ResourceId id : dest) src += strprintf("    .word 0x%08x\n", id);
  if (dest.empty()) src += "    .word 0\n";
  return src;
}

void AppBuilder::start() {
  require(!started_, "AppBuilder: already started");
  started_ = true;

  // Group tasks by core and assign final core-local chanend indices in
  // task order (deterministic, so peers know each other's indices).
  std::map<Core*, std::vector<int>> groups;
  for (std::size_t t = 0; t < tasks_.size(); ++t) {
    groups[tasks_[t].core].push_back(static_cast<int>(t));
  }
  for (auto& [core, group] : groups) {
    int next_index = 0;
    for (int t : group) {
      for (ChannelEnd& end : tasks_[static_cast<std::size_t>(t)].ends) {
        end.local_index = next_index++;
      }
    }
    require(next_index <= kChanendsPerCore,
            "AppBuilder: more channels than chanends on one core");
  }

  for (auto& [core, group] : groups) {
    const std::string source = generate_core_program(group);
    for (int t : group) tasks_[static_cast<std::size_t>(t)].source = source;
    core->load(assemble(source));
    core->start();
  }

  for (TaskInfo& task : tasks_) {
    for (const TaskStep& step : task.spec.steps) {
      if (step.op == TaskStep::Op::kSend) {
        task.bytes_sent += ((step.amount + 3) / 4) * 4 *
                           static_cast<std::uint64_t>(task.spec.iterations);
      }
    }
  }
}

bool AppBuilder::run_to_completion(TimePs timeout) {
  require(started_, "AppBuilder: start() first");
  const TimePs step = microseconds(1.0);
  TimePs t = sys_->now();
  while (t < timeout) {
    t += step;
    sys_->run_until(t);
    bool all_done = true;
    for (const TaskInfo& task : tasks_) {
      if (task.core->trapped()) {
        throw Error("AppBuilder: task trapped: " + task.core->trap().message +
                    "\nprogram:\n" + task.source);
      }
      all_done &= task.core->finished();
    }
    if (all_done) {
      completion_time_ = sys_->now();
      return true;
    }
  }
  return false;
}

}  // namespace swallow
