// The per-node network switch (§IV.D, §V.B).
//
// One switch per core, as in the XS1-L.  Ports come in two kinds:
//   * processor ports — one per channel end of the attached core; tokens
//     enter after the 3-cycle injection latency the paper quotes (6 ns at
//     500 MHz) and are delivered to destination chanends at one token per
//     switch cycle (the 4 Gbit/s per-thread core-local rate of §V.D);
//   * link ports — paired with a port on a peer switch via a physical link
//     with a class (Table I), a data rate and a wire latency.
//
// Forwarding is wormhole with credit-based flow control: a route opens
// when three header bytes arrive, holds its output link until an END or
// PAUSE control token passes (§V.B — a circuit if the close token is never
// sent), and tokens only move when the downstream buffer has credit, so
// tokens are never dropped.  Several links may serve one direction; a new
// packet takes the first free link of the group and otherwise queues.
//
// Energy: every token sent over a link charges the Table I per-bit energy
// to that link class's ledger account, and every forwarded token charges a
// small network-interface energy (the dynamic half of Fig. 2's 58 mW NI
// share; the static half is a constant trace owned by the board layer).
//
// Resilience (src/fault/): links can optionally run a *reliable* framing
// protocol — every token carries a sequence number and CRC (modelled as
// kReliableFramingBits extra wire bits per token), the receiver discards
// corrupt or out-of-order tokens and NAKs the first missing sequence
// number, and the sender go-back-N retransmits from a bounded replay
// window with exponential backoff.  The receiver cumulatively acks each
// token as it is *accepted into the input fifo* (not as it is consumed),
// so downstream backpressure never masquerades as loss to the retry
// timer; acks ride the reverse wire next to credit returns and their
// cost is part of the framing overhead.  Credits still bound the replay
// window (at most one credit window of tokens is unacked).  Acks, NAKs
// and framing all charge the Table I per-bit energy: a degraded link is
// *visibly* more expensive in the ledger.  A sender that exhausts its
// retry budget declares the link dead and reports it through the
// link-dead callback so the fault layer can route around it.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arch/comm.h"
#include "arch/resource.h"
#include "energy/ledger.h"
#include "energy/link_energy.h"
#include "noc/routing.h"
#include "noc/token.h"
#include "obs/probes.h"
#include "sim/domain.h"
#include "sim/event_desc.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace swallow {

class AttrShard;
class Core;

/// Extra wire bits per token on a reliable link: sequence + CRC framing,
/// amortised (the real 5-wire encoding has spare symbols for this).  The
/// protocol overhead is charged per bit like payload — energy transparency
/// includes the cost of protection.
inline constexpr int kReliableFramingBits = 2;

/// What the fault-injection hook did to a token about to cross a link.
enum class LinkFaultAction {
  kNone,     // token crosses intact
  kCorrupt,  // hook flipped bits; a reliable receiver's CRC catches it
  kDrop,     // token lost on the wire (outage)
};

class Switch {
 public:
  struct Config {
    NodeId node = 0;
    MegaHertz clock_mhz = 500.0;     // switch clock, independent of core DFS
    std::size_t buffer_tokens = 8;   // per-input FIFO / credit window
    // Reliable-link retry policy (used only on links marked reliable).
    TimePs retry_timeout = microseconds(2.0);  // base retransmit timeout
    int max_retry_rounds = 8;        // no-progress rounds before link death
    int max_backoff_doublings = 5;   // bound on the exponential backoff
  };

  /// Fault-injection hook, consulted once per token transmitted on a link
  /// (including retransmissions).  May mutate the token on kCorrupt.
  /// `now` is the transmitting switch's clock — the hook must not reach
  /// for a global one, since switches may live in different event domains.
  using LinkFaultHook = std::function<LinkFaultAction(
      NodeId node, int direction, Token& t, TimePs now)>;

  /// Called when the retry protocol declares an outgoing link dead.
  using LinkDeadCallback =
      std::function<void(Switch& sw, int output_port, int direction)>;

  /// Machine-readable snapshot of one open or parked wormhole route
  /// (deadlock diagnostics; see open_routes()).
  struct OpenRoute {
    NodeId node = 0;
    int input = -1;
    int output = -1;     // -1 when parked waiting for a free output
    bool to_link = false;
    bool parked = false;
    TimePs held_for = 0;
    std::size_t queued_tokens = 0;
  };

  /// Static description of one connected link port (topology
  /// introspection for the fault layer's reroute computation).
  struct LinkPortInfo {
    int port = -1;
    int direction = -1;
    NodeId peer = 0;
    int peer_port = -1;
    LinkClass cls = LinkClass::kOnChip;
    bool up = true;        // transient outage state
    bool dead = false;     // permanently failed (retry budget exhausted)
    bool reliable = false;
  };

  Switch(Simulator& sim, EnergyLedger& ledger, Config cfg,
         std::shared_ptr<Router> router);
  ~Switch();

  Switch(const Switch&) = delete;
  Switch& operator=(const Switch&) = delete;

  NodeId node_id() const { return cfg_.node; }

  /// Create processor ports for every chanend of `core` and wire the
  /// chanend output sides to them.
  void attach_core(Core& core);

  /// Attach a bare token receiver as pseudo-chanend `index` (used by the
  /// Ethernet bridge and the task-level API, which are network endpoints
  /// without a full core).  Returns the TokenOutPort the endpoint emits to.
  TokenOutPort* attach_endpoint(int index, TokenReceiver* receiver);

  /// Create one direction-labelled link port; returns its port id.
  /// Wire both sides with connect_link().
  int add_link_port(int direction);

  /// Connect link port `my_port` to `peer`'s `peer_port` (one direction of
  /// the full-duplex link; call twice, swapped, for both directions).
  void connect_link(int my_port, Switch& peer, int peer_port, LinkClass cls,
                    MegabitsPerSecond rate_mbps, TimePs wire_latency,
                    double cable_length_cm = kFfcReferenceLengthCm);

  /// Reprogram the routing strategy at run time (§V.A).
  void set_router(std::shared_ptr<Router> router) { router_ = std::move(router); }
  Router* router() { return router_.get(); }

  /// The event domain this switch schedules in.
  Simulator& sim() { return sim_; }

  /// Mark link port `port` as crossing into the peer's event domain:
  /// token deliveries (forward) and credit/ack/NAK returns (reverse) are
  /// handed to `to_peer` instead of being scheduled directly.  nullptr
  /// restores the same-domain direct path.
  void set_link_crossing(int port, DomainPost* to_peer);

  // ----- Resilience / fault injection -----
  /// Enable the reliable framing protocol on outgoing link `port` and on
  /// the paired receive side at the peer.  Call on both switches (as
  /// Network::set_links_reliable does) to protect both directions.
  void set_link_reliable(int port, bool reliable);

  /// Transient outage control: while a direction's links are down, tokens
  /// sent on them are lost on the wire (recovered only by reliable links).
  void set_links_up(int direction, bool up);

  /// Install the per-token fault hook (nullptr to clear).
  void set_link_fault_hook(LinkFaultHook hook) { fault_hook_ = std::move(hook); }

  /// Install the link-death notification (nullptr to clear).
  void set_link_dead_callback(LinkDeadCallback cb) { on_link_dead_ = std::move(cb); }

  /// Freeze input processing until `when` (switch-buffer stall fault).
  void stall_inputs_until(TimePs when);

  /// Immediately declare outgoing link `port` dead (permanent fault
  /// injection; the retry protocol reaches the same state organically when
  /// its retry budget is exhausted).  Fires the link-dead callback.
  void kill_link(int port) { mark_link_dead(port); }

  /// Re-run route resolution for inputs parked on `direction` (the fault
  /// layer calls this after reprogramming tables around a dead link).
  /// Returns the number of inputs that found a new route.
  int reresolve_parked(int direction);

  /// Description of every connected link port.
  std::vector<LinkPortInfo> link_ports() const;

  const FaultCounters& fault_counters() const { return fault_counters_; }

  // ----- observability -----
  /// Attach the observability probe bundle (obs/probes.h): route spans,
  /// token transit and queue occupancy go to the trace track; queueing
  /// delay, backoff and end-to-end latency to the metric instruments.
  /// Null members disable the corresponding pillar at one pointer test.
  void set_obs(const SwitchProbe& probe) { obs_ = probe; }

  /// Attach the energy attribution shard of this switch's ledger partition
  /// (obs/energy_attr.h): wire transmissions, NI token costs and go-back-N
  /// retransmissions are labelled per (node, direction), with retries in a
  /// distinct link.retry bucket.  nullptr detaches.
  void set_energy_attr(AttrShard* attr) { attr_ = attr; }

  /// Close any still-open route spans at the current time (end of a trace
  /// session; keeps B/E spans balanced in the exported trace).
  void obs_close_spans();

  // ----- statistics -----
  std::uint64_t tokens_forwarded() const { return tokens_forwarded_; }
  std::uint64_t packets_routed() const { return packets_routed_; }
  std::uint64_t packets_sunk() const { return packets_sunk_; }
  /// Tokens sent over link ports, per link class.
  std::uint64_t link_tokens_sent(LinkClass cls) const {
    return link_tokens_sent_[static_cast<std::size_t>(cls)];
  }

  // Wire-level token conservation (ISSUE 5 invariant probes).  Every token
  // this switch puts on a wire — retransmissions included — is either
  // dropped on that wire (fault injection, downed link) or arrives at the
  // peer's input port.  So once the network is quiescent,
  //   sum(wire_tokens_tx) == sum(wire_tokens_rx) + sum(wire_tokens_dropped)
  // over all switches; Network::wire_conservation_slack() checks it.
  std::uint64_t wire_tokens_tx() const { return wire_tokens_tx_; }
  std::uint64_t wire_tokens_rx() const { return wire_tokens_rx_; }
  std::uint64_t wire_tokens_dropped() const { return wire_tokens_dropped_; }

  /// Power drawn right now by this switch's transmitting link drivers
  /// (rate x energy/bit while a token is on the wire) — sampled by the
  /// measurement subsystem's I/O rail.
  Watts instantaneous_link_power(TimePs now) const;

  /// Cumulative wire-busy time of this switch's transmitters, per class
  /// (for utilisation reports: busy / (window * link_count)).
  TimePs link_busy_time(LinkClass cls) const {
    return link_busy_time_[static_cast<std::size_t>(cls)];
  }
  /// Number of connected outgoing links of a class.
  int link_count(LinkClass cls) const;

  /// Distribution of route hold times at this switch (nanoseconds from a
  /// route opening to its END/PAUSE passing) — long holds flag circuit
  /// behaviour or head-of-line blocking (§V.B).
  const Sampler& route_hold_ns() const { return route_hold_ns_; }

  /// Machine-readable list of currently open routes and parked packets at
  /// this switch; empty when quiescent.
  std::vector<OpenRoute> open_routes(TimePs now) const;

  /// Human-readable rendering of open_routes(); empty string when
  /// quiescent.
  std::string open_routes_summary(TimePs now) const;

  // ----- internal (peer-to-peer) entry points -----
  /// `seq`/`corrupt` carry the reliable-framing sideband; both are ignored
  /// on unprotected links (a corrupt token is then delivered as-is —
  /// silent data corruption, the failure mode CRC framing exists to stop).
  void deliver_link_token(int port, const Token& t, std::uint64_t seq = 0,
                          bool corrupt = false);
  void on_credit(int output_idx);
  /// Cumulative ack: the peer accepted every sequence number < cum_seq.
  void on_link_ack(int output_idx, std::uint64_t cum_seq);
  void on_link_nak(int output_idx, std::uint64_t expect_seq);

  // ----- Snapshot (src/snap/) -----
  /// Serialize per-port dynamic state (fifos, route bindings, the reliable
  /// protocol windows) and the switch counters.  Wiring — peers, routers,
  /// crossings, hooks, the reliable flags — is rebuilt from config before
  /// load_state().
  void save_state(StateWriter& w) const;
  void load_state(StateReader& r);
  /// Re-inject one pending event this switch acts on (kSwitch*) with its
  /// original queue keys.  Peer-targeted events (ack/NAK/credit/deliver)
  /// dispatch here on the *receiving* switch.
  void restore_event(const LiveEvent& ev);

 private:
  struct ProcPortImpl;

  struct Input {
    enum class Kind { kLink, kProc } kind = Kind::kLink;
    std::deque<Token> fifo;
    int in_flight = 0;  // tokens in the injection pipeline (proc ports)
    // Route state.
    std::vector<std::uint8_t> header;
    std::deque<Token> pending_out;  // header bytes awaiting re-emission
    int output = -1;                // bound output (kSink when unroutable)
    TimePs route_opened_at = 0;
    bool waiting_output = false;
    bool process_scheduled = false;
    // Link inputs: where to return credits.
    Switch* peer = nullptr;
    int peer_output = -1;
    TimePs credit_latency = 0;
    DomainPost* post_back = nullptr;  // cross-domain credit/ack/NAK return
    // Reliable-link receive side.
    bool reliable = false;
    std::uint64_t rel_expect = 0;   // next expected sequence number
    bool nak_outstanding = false;   // suppress duplicate NAKs per gap
    // Proc inputs: space notifications back to the producing chanend.
    std::vector<std::function<void()>> space_subs;
    // Observability: fifo entry times, maintained only while a metrics
    // session is attached (queueing-delay histogram).
    std::deque<TimePs> entry_times;
  };

  struct Output {
    enum class Kind { kLink, kProc } kind = Kind::kLink;
    int direction = -1;
    // Link outputs.
    Switch* peer = nullptr;
    int peer_port = -1;
    DomainPost* post_fwd = nullptr;  // cross-domain token delivery
    LinkClass cls = LinkClass::kOnChip;
    MegabitsPerSecond rate = 0;
    TimePs wire_latency = 0;
    double cable_cm = kFfcReferenceLengthCm;
    int credits = 0;
    // Reliable-link transmit side (go-back-N with a replay window bounded
    // by the credit window; credits double as cumulative acks).
    bool reliable = false;
    bool link_up = true;            // transient outage (fault injection)
    bool dead = false;              // permanent failure declared
    std::uint64_t tx_seq = 0;       // sequence of the next new token
    std::uint64_t rel_base = 0;     // oldest unacked sequence
    std::deque<Token> replay;       // tokens [rel_base, tx_seq)
    std::int64_t resend_cursor = -1;  // next seq to resend; -1 = idle
    std::uint64_t resend_gen = 0;   // invalidates stale resend events
    std::uint64_t timer_gen = 0;    // invalidates stale timeout events
    bool timer_armed = false;
    int backoff_level = 0;          // consecutive no-progress rounds
    // Proc outputs.
    TokenReceiver* receiver = nullptr;
    int deliveries_in_flight = 0;
    std::deque<int> waiters;  // inputs queued for this endpoint
    // Shared dynamics.
    TimePs busy_until = 0;
    int bound_input = -1;
  };

  static constexpr int kSink = -2;

  void schedule_process(int input_idx, TimePs when = -1);
  void process_input(int input_idx);
  bool resolve_route(int input_idx);
  bool try_bind_direction(int input_idx, int direction);
  void unbind(int input_idx);
  void send_token(int input_idx, Output& out, const Token& t);
  void consume_from_fifo(Input& in);
  TimePs token_time(const Output& out) const;
  int link_bits_per_token(const Output& out) const;
  // Reliable-link machinery.
  void transmit_on_link(Output& out, const Token& t, std::uint64_t seq);
  void request_retransmit(int port);
  void send_link_ack(int port);
  void resend_step(int output_idx, std::uint64_t gen);
  void arm_retry_timer(int output_idx);
  void on_retry_timeout(int output_idx, std::uint64_t gen);
  TimePs backoff_delay(const Output& out) const;
  void mark_link_dead(int output_idx);
  // Observability emission helpers (no-ops when the probe is empty).
  void obs_fault(int field);
  void obs_route_open(int input_idx);
  void obs_route_close(int input_idx);
  void obs_park(int input_idx, int direction);
  void obs_fifo_push(int input_idx);
  void obs_fifo_pop(Input& in);

  Simulator& sim_;
  EnergyLedger& ledger_;
  Config cfg_;
  std::shared_ptr<Router> router_;
  Core* core_ = nullptr;

  std::vector<Input> inputs_;
  std::vector<Output> outputs_;
  std::vector<std::unique_ptr<ProcPortImpl>> proc_ports_;
  std::vector<std::deque<int>> dir_waiters_;   // per-direction parked inputs
  std::vector<std::vector<int>> dir_groups_;   // per-direction output ports
  std::vector<int> proc_out_idx_;              // endpoint index -> output port

  // Proc timing constants (switch cycles).
  TimePs cycle_ps_;
  TimePs inject_latency_;   // 3 cycles: core -> network hardware (§V.A)
  TimePs hop_latency_;      // per-hop routing decision time
  TimePs proc_token_time_;  // 1 cycle per token to a local chanend

  std::uint64_t tokens_forwarded_ = 0;
  std::uint64_t packets_routed_ = 0;
  std::uint64_t packets_sunk_ = 0;
  std::uint64_t wire_tokens_tx_ = 0;       // tokens put on outgoing wires
  std::uint64_t wire_tokens_rx_ = 0;       // tokens arriving on input ports
  std::uint64_t wire_tokens_dropped_ = 0;  // lost on our outgoing wires
  std::array<std::uint64_t, 4> link_tokens_sent_{};
  std::array<TimePs, 4> link_busy_time_{};
  Sampler route_hold_ns_;

  // Fault / resilience state.
  FaultCounters fault_counters_;
  LinkFaultHook fault_hook_;
  LinkDeadCallback on_link_dead_;
  TimePs stalled_until_ = 0;

  // Observability probe (empty = disabled).
  SwitchProbe obs_;

  // Energy attribution shard (nullptr = disabled) and whether the current
  // transmit_on_link call is a go-back-N retransmission (resend_step sets
  // it so the wire charge lands in the link.retry bucket).
  AttrShard* attr_ = nullptr;
  bool resending_ = false;
};

}  // namespace swallow
