// The per-node network switch (§IV.D, §V.B).
//
// One switch per core, as in the XS1-L.  Ports come in two kinds:
//   * processor ports — one per channel end of the attached core; tokens
//     enter after the 3-cycle injection latency the paper quotes (6 ns at
//     500 MHz) and are delivered to destination chanends at one token per
//     switch cycle (the 4 Gbit/s per-thread core-local rate of §V.D);
//   * link ports — paired with a port on a peer switch via a physical link
//     with a class (Table I), a data rate and a wire latency.
//
// Forwarding is wormhole with credit-based flow control: a route opens
// when three header bytes arrive, holds its output link until an END or
// PAUSE control token passes (§V.B — a circuit if the close token is never
// sent), and tokens only move when the downstream buffer has credit, so
// tokens are never dropped.  Several links may serve one direction; a new
// packet takes the first free link of the group and otherwise queues.
//
// Energy: every token sent over a link charges the Table I per-bit energy
// to that link class's ledger account, and every forwarded token charges a
// small network-interface energy (the dynamic half of Fig. 2's 58 mW NI
// share; the static half is a constant trace owned by the board layer).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arch/comm.h"
#include "arch/resource.h"
#include "energy/ledger.h"
#include "energy/link_energy.h"
#include "noc/routing.h"
#include "noc/token.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace swallow {

class Core;

class Switch {
 public:
  struct Config {
    NodeId node = 0;
    MegaHertz clock_mhz = 500.0;     // switch clock, independent of core DFS
    std::size_t buffer_tokens = 8;   // per-input FIFO / credit window
  };

  Switch(Simulator& sim, EnergyLedger& ledger, Config cfg,
         std::shared_ptr<Router> router);
  ~Switch();

  Switch(const Switch&) = delete;
  Switch& operator=(const Switch&) = delete;

  NodeId node_id() const { return cfg_.node; }

  /// Create processor ports for every chanend of `core` and wire the
  /// chanend output sides to them.
  void attach_core(Core& core);

  /// Attach a bare token receiver as pseudo-chanend `index` (used by the
  /// Ethernet bridge and the task-level API, which are network endpoints
  /// without a full core).  Returns the TokenOutPort the endpoint emits to.
  TokenOutPort* attach_endpoint(int index, TokenReceiver* receiver);

  /// Create one direction-labelled link port; returns its port id.
  /// Wire both sides with connect_link().
  int add_link_port(int direction);

  /// Connect link port `my_port` to `peer`'s `peer_port` (one direction of
  /// the full-duplex link; call twice, swapped, for both directions).
  void connect_link(int my_port, Switch& peer, int peer_port, LinkClass cls,
                    MegabitsPerSecond rate_mbps, TimePs wire_latency,
                    double cable_length_cm = kFfcReferenceLengthCm);

  /// Reprogram the routing strategy at run time (§V.A).
  void set_router(std::shared_ptr<Router> router) { router_ = std::move(router); }
  Router* router() { return router_.get(); }

  // ----- statistics -----
  std::uint64_t tokens_forwarded() const { return tokens_forwarded_; }
  std::uint64_t packets_routed() const { return packets_routed_; }
  std::uint64_t packets_sunk() const { return packets_sunk_; }
  /// Tokens sent over link ports, per link class.
  std::uint64_t link_tokens_sent(LinkClass cls) const {
    return link_tokens_sent_[static_cast<std::size_t>(cls)];
  }

  /// Power drawn right now by this switch's transmitting link drivers
  /// (rate x energy/bit while a token is on the wire) — sampled by the
  /// measurement subsystem's I/O rail.
  Watts instantaneous_link_power(TimePs now) const;

  /// Cumulative wire-busy time of this switch's transmitters, per class
  /// (for utilisation reports: busy / (window * link_count)).
  TimePs link_busy_time(LinkClass cls) const {
    return link_busy_time_[static_cast<std::size_t>(cls)];
  }
  /// Number of connected outgoing links of a class.
  int link_count(LinkClass cls) const;

  /// Distribution of route hold times at this switch (nanoseconds from a
  /// route opening to its END/PAUSE passing) — long holds flag circuit
  /// behaviour or head-of-line blocking (§V.B).
  const Sampler& route_hold_ns() const { return route_hold_ns_; }

  /// Human-readable list of currently open routes and parked packets at
  /// this switch (deadlock diagnostics); empty string when quiescent.
  std::string open_routes_summary(TimePs now) const;

  // ----- internal (peer-to-peer) entry points -----
  void deliver_link_token(int port, const Token& t);
  void on_credit(int output_idx);

 private:
  struct ProcPortImpl;

  struct Input {
    enum class Kind { kLink, kProc } kind = Kind::kLink;
    std::deque<Token> fifo;
    int in_flight = 0;  // tokens in the injection pipeline (proc ports)
    // Route state.
    std::vector<std::uint8_t> header;
    std::deque<Token> pending_out;  // header bytes awaiting re-emission
    int output = -1;                // bound output (kSink when unroutable)
    TimePs route_opened_at = 0;
    bool waiting_output = false;
    bool process_scheduled = false;
    // Link inputs: where to return credits.
    Switch* peer = nullptr;
    int peer_output = -1;
    TimePs credit_latency = 0;
    // Proc inputs: space notifications back to the producing chanend.
    std::vector<std::function<void()>> space_subs;
  };

  struct Output {
    enum class Kind { kLink, kProc } kind = Kind::kLink;
    int direction = -1;
    // Link outputs.
    Switch* peer = nullptr;
    int peer_port = -1;
    LinkClass cls = LinkClass::kOnChip;
    MegabitsPerSecond rate = 0;
    TimePs wire_latency = 0;
    double cable_cm = kFfcReferenceLengthCm;
    int credits = 0;
    // Proc outputs.
    TokenReceiver* receiver = nullptr;
    int deliveries_in_flight = 0;
    std::deque<int> waiters;  // inputs queued for this endpoint
    // Shared dynamics.
    TimePs busy_until = 0;
    int bound_input = -1;
  };

  static constexpr int kSink = -2;

  void schedule_process(int input_idx, TimePs when = -1);
  void process_input(int input_idx);
  bool resolve_route(int input_idx);
  bool try_bind_direction(int input_idx, int direction);
  void unbind(int input_idx);
  void send_token(int input_idx, Output& out, const Token& t);
  void consume_from_fifo(Input& in);
  TimePs token_time(const Output& out) const;

  Simulator& sim_;
  EnergyLedger& ledger_;
  Config cfg_;
  std::shared_ptr<Router> router_;
  Core* core_ = nullptr;

  std::vector<Input> inputs_;
  std::vector<Output> outputs_;
  std::vector<std::unique_ptr<ProcPortImpl>> proc_ports_;
  std::vector<std::deque<int>> dir_waiters_;   // per-direction parked inputs
  std::vector<std::vector<int>> dir_groups_;   // per-direction output ports
  std::vector<int> proc_out_idx_;              // endpoint index -> output port

  // Proc timing constants (switch cycles).
  TimePs cycle_ps_;
  TimePs inject_latency_;   // 3 cycles: core -> network hardware (§V.A)
  TimePs hop_latency_;      // per-hop routing decision time
  TimePs proc_token_time_;  // 1 cycle per token to a local chanend

  std::uint64_t tokens_forwarded_ = 0;
  std::uint64_t packets_routed_ = 0;
  std::uint64_t packets_sunk_ = 0;
  std::array<std::uint64_t, 4> link_tokens_sent_{};
  std::array<TimePs, 4> link_busy_time_{};
  Sampler route_hold_ns_;
};

}  // namespace swallow
