// Routing strategies for Swallow switches.
//
// Each switch asks its router for an abstract *direction* for a destination
// node; the switch maps directions to groups of physical links (§V.B:
// several links may serve the same direction, and a new communication uses
// the next unused link of the group).
//
// Two mechanisms are provided:
//   * TableRouter — fully software-defined destination→direction tables,
//     the mechanism Swallow uses ("new routing algorithms can simply be
//     programmed in software", §V.A).  The board library programs these to
//     implement 2.5-dimensional dimension-order routing on the unwoven
//     lattice.
//   * BitCompareRouter — the XS1 hardware mechanism: the direction is
//     chosen by the position of the highest bit in which the destination
//     differs from the switch's own node id.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "arch/resource.h"

namespace swallow {

/// Conventional direction labels.  Values are arbitrary small ints; a
/// switch supports directions 0..kMaxDirections-1.
enum SwitchDir : int {
  kDirNorth = 0,
  kDirSouth = 1,
  kDirEast = 2,
  kDirWest = 3,
  kDirInternal = 4,  // to the sibling node inside the package
  kDirBridge = 5,    // towards an Ethernet bridge
};
inline constexpr int kMaxDirections = 8;

/// Direction returned when a destination is unroutable; the switch sinks
/// the packet and counts it.
inline constexpr int kDirUnroutable = -1;

class Router {
 public:
  virtual ~Router() = default;
  /// Direction from `self` towards `dest` (never called with self == dest).
  virtual int route(NodeId self, NodeId dest) const = 0;
};

/// Software destination table with optional default direction.
class TableRouter : public Router {
 public:
  void set_route(NodeId dest, int direction) { table_[dest] = direction; }
  void set_default(int direction) { default_dir_ = direction; }

  int route(NodeId /*self*/, NodeId dest) const override {
    const auto it = table_.find(dest);
    if (it != table_.end()) return it->second;
    return default_dir_;
  }

  std::size_t entries() const { return table_.size(); }

 private:
  std::unordered_map<NodeId, int> table_;
  int default_dir_ = kDirUnroutable;
};

/// XS1-style routing: direction indexed by the highest differing bit of
/// the 16-bit node ids.
class BitCompareRouter : public Router {
 public:
  BitCompareRouter() { dirs_.fill(kDirUnroutable); }

  void set_bit_direction(int bit, int direction) {
    dirs_.at(static_cast<std::size_t>(bit)) = direction;
  }

  int route(NodeId self, NodeId dest) const override {
    const std::uint16_t diff = static_cast<std::uint16_t>(self ^ dest);
    if (diff == 0) return kDirUnroutable;
    int bit = 15;
    while (((diff >> bit) & 1u) == 0) --bit;
    return dirs_[static_cast<std::size_t>(bit)];
  }

 private:
  std::array<int, 16> dirs_{};
};

}  // namespace swallow
