#include "noc/network.h"

#include "common/error.h"

namespace swallow {

Switch& Network::add_switch(NodeId node, std::shared_ptr<Router> router,
                            MegaHertz clock_mhz, Simulator* sim,
                            EnergyLedger* ledger) {
  require(find_switch(node) == nullptr, "Network: duplicate node id");
  Switch::Config cfg;
  cfg.node = node;
  cfg.clock_mhz = clock_mhz;
  switches_.push_back(std::make_unique<Switch>(
      sim != nullptr ? *sim : sim_, ledger != nullptr ? *ledger : ledger_,
      cfg, std::move(router)));
  return *switches_.back();
}

void Network::connect(Switch& a, int dir_ab, Switch& b, int dir_ba,
                      LinkClass cls, int count, double cable_length_cm) {
  require(count >= 1, "Network: link count must be >= 1");
  const MegabitsPerSecond rate = link_rate(cls, grade_);
  const TimePs wire = link_wire_latency(cls, cable_length_cm);
  for (int i = 0; i < count; ++i) {
    const int pa = a.add_link_port(dir_ab);
    const int pb = b.add_link_port(dir_ba);
    a.connect_link(pa, b, pb, cls, rate, wire, cable_length_cm);
    b.connect_link(pb, a, pa, cls, rate, wire, cable_length_cm);
  }
}

Switch* Network::find_switch(NodeId node) {
  for (const auto& s : switches_) {
    if (s->node_id() == node) return s.get();
  }
  return nullptr;
}

void Network::set_links_reliable(bool reliable) {
  for (const auto& s : switches_) {
    for (const Switch::LinkPortInfo& info : s->link_ports()) {
      s->set_link_reliable(info.port, reliable);
    }
  }
}

void Network::set_link_fault_hook(Switch::LinkFaultHook hook) {
  for (const auto& s : switches_) s->set_link_fault_hook(hook);
}

void Network::set_link_dead_callback(Switch::LinkDeadCallback cb) {
  for (const auto& s : switches_) s->set_link_dead_callback(cb);
}

FaultCounters Network::total_fault_counters() const {
  FaultCounters total;
  for (const auto& s : switches_) total += s->fault_counters();
  return total;
}

std::uint64_t Network::total_tokens_forwarded() const {
  std::uint64_t n = 0;
  for (const auto& s : switches_) n += s->tokens_forwarded();
  return n;
}

std::uint64_t Network::total_packets_sunk() const {
  std::uint64_t n = 0;
  for (const auto& s : switches_) n += s->packets_sunk();
  return n;
}

std::int64_t Network::wire_conservation_slack() const {
  std::uint64_t tx = 0, rx = 0, dropped = 0;
  for (const auto& s : switches_) {
    tx += s->wire_tokens_tx();
    rx += s->wire_tokens_rx();
    dropped += s->wire_tokens_dropped();
  }
  return static_cast<std::int64_t>(tx) - static_cast<std::int64_t>(rx) -
         static_cast<std::int64_t>(dropped);
}

}  // namespace swallow
