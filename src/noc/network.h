// Network container: owns switches and wires full-duplex links between
// them with the Table I link classes and per-grade data rates.
#pragma once

#include <memory>
#include <vector>

#include "energy/ledger.h"
#include "energy/link_energy.h"
#include "noc/routing.h"
#include "noc/switch.h"
#include "sim/simulator.h"

namespace swallow {

/// Propagation delay per link class (electrical length, not serialisation).
constexpr TimePs link_wire_latency(LinkClass cls,
                                   double cable_length_cm = kFfcReferenceLengthCm) {
  switch (cls) {
    case LinkClass::kOnChip: return 200;          // 0.2 ns in-package
    case LinkClass::kBoardVertical: return 1000;  // 1 ns of PCB trace
    case LinkClass::kBoardHorizontal: return 1000;
    case LinkClass::kOffBoardCable:
      // ~5 ns/m in FFC; scales with length.
      return static_cast<TimePs>(50.0 * cable_length_cm + 0.5);
  }
  return 0;
}

class Network {
 public:
  Network(Simulator& sim, EnergyLedger& ledger,
          LinkGrade grade = LinkGrade::kSwallowDefault)
      : sim_(sim), ledger_(ledger), grade_(grade) {}

  LinkGrade grade() const { return grade_; }

  /// Create a switch for `node`.  The router may be shared between
  /// switches or unique per switch.  `sim`/`ledger` override the network's
  /// defaults for this switch — the parallel engine uses this to place each
  /// slice's switches in that slice's event domain and energy ledger.
  Switch& add_switch(NodeId node, std::shared_ptr<Router> router,
                     MegaHertz clock_mhz = 500.0, Simulator* sim = nullptr,
                     EnergyLedger* ledger = nullptr);

  /// Wire a full-duplex link: direction `dir_ab` as seen from a, `dir_ba`
  /// as seen from b.  `count` parallel links join the same direction
  /// groups (§V.B link aggregation).
  void connect(Switch& a, int dir_ab, Switch& b, int dir_ba, LinkClass cls,
               int count = 1, double cable_length_cm = kFfcReferenceLengthCm);

  Switch* find_switch(NodeId node);
  std::size_t switch_count() const { return switches_.size(); }
  Switch& switch_at(std::size_t i) { return *switches_.at(i); }

  /// Enable (or disable) the reliable CRC/retry framing protocol on every
  /// connected link in the network.  Must be called before traffic flows
  /// (reliability cannot change mid-stream).
  void set_links_reliable(bool reliable);

  /// Install `hook` on every switch (see Switch::set_link_fault_hook).
  void set_link_fault_hook(Switch::LinkFaultHook hook);

  /// Install `cb` on every switch (see Switch::set_link_dead_callback).
  void set_link_dead_callback(Switch::LinkDeadCallback cb);

  /// Aggregate statistics over all switches.
  std::uint64_t total_tokens_forwarded() const;
  std::uint64_t total_packets_sunk() const;

  /// Token conservation over every wire in the network: tokens transmitted
  /// minus (tokens received + tokens dropped on the wire).  Positive slack
  /// means tokens are still in flight; once the machine is quiescent the
  /// slack must be exactly zero — injected = delivered + accounted-dropped
  /// (ISSUE 5 invariant; the differential checker asserts it after every
  /// run).  Negative slack is always a bug.
  std::int64_t wire_conservation_slack() const;

  /// Sum of every switch's fault counters.
  FaultCounters total_fault_counters() const;

 private:
  Simulator& sim_;
  EnergyLedger& ledger_;
  LinkGrade grade_;
  std::vector<std::unique_ptr<Switch>> switches_;
};

}  // namespace swallow
