// Network tokens: the unit of transfer on every Swallow link (§V.C).
//
// Links carry eight-bit tokens composed of two-bit symbols.  Tokens are
// either data or control; control tokens delimit packets and manage routes.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/stateio.h"
#include "common/units.h"

namespace swallow {

/// Control token values (subset of the XS1 set that Swallow software uses).
enum class ControlToken : std::uint8_t {
  kEnd = 0x01,    // closes the route and is delivered to the destination
  kPause = 0x02,  // closes the route without being delivered
  kAck = 0x03,
  kNack = 0x04,
};

struct Token {
  std::uint8_t value = 0;
  bool is_control = false;
  /// Observability sideband: ingress timestamp stamped at the proc port
  /// when a trace/metrics session is attached (0 = unstamped).  Rides
  /// along for end-to-end latency measurement; not part of the token's
  /// identity on the wire.
  TimePs born = 0;

  static Token data(std::uint8_t v) { return Token{v, false}; }
  static Token control(ControlToken ct) {
    return Token{static_cast<std::uint8_t>(ct), true};
  }

  bool is_end() const {
    return is_control && value == static_cast<std::uint8_t>(ControlToken::kEnd);
  }
  bool is_pause() const {
    return is_control && value == static_cast<std::uint8_t>(ControlToken::kPause);
  }
  /// Route-closing tokens (END travels to the endpoint, PAUSE does not).
  bool closes_route() const { return is_end() || is_pause(); }

  /// Identity is the wire content only — the `born` sideband is ignored.
  bool operator==(const Token& o) const {
    return value == o.value && is_control == o.is_control;
  }
};

/// Snapshot helpers: `born` is serialized too so end-to-end latency
/// measurements survive a checkpoint/restore round trip.
inline void save_token(StateWriter& w, const Token& t) {
  w.u8(t.value);
  w.b(t.is_control);
  w.i64(t.born);
}
inline Token load_token(StateReader& r) {
  Token t;
  t.value = r.u8();
  t.is_control = r.b();
  t.born = r.i64();
  return t;
}

/// Bits on the wire per token: 8 data bits; the 4-transition 5-wire
/// encoding is captured in the per-bit link energies of Table I.
inline constexpr int kBitsPerToken = 8;

/// A route-opening header is three bytes (§V.B) carrying the 24-bit
/// destination: 16-bit node id then 8-bit channel-end index.
inline constexpr int kHeaderTokens = 3;

struct HeaderDest {
  std::uint16_t node = 0;
  std::uint8_t chanend = 0;
};

constexpr std::uint8_t header_byte(HeaderDest d, int i) {
  switch (i) {
    case 0: return static_cast<std::uint8_t>(d.node >> 8);
    case 1: return static_cast<std::uint8_t>(d.node & 0xFF);
    default: return d.chanend;
  }
}

constexpr HeaderDest header_from_bytes(std::uint8_t b0, std::uint8_t b1,
                                       std::uint8_t b2) {
  return HeaderDest{static_cast<std::uint16_t>((b0 << 8) | b1), b2};
}

}  // namespace swallow
